GO ?= go

.PHONY: all build test race race-pools race-metrics vet fmt-check chaos pool-chaos characterize trace-smoke metrics-smoke bench bench-gate cover-pool clean

# Benchmark artifact for this PR and the committed baseline it is gated
# against (previous PR's numbers).
BENCH_OUT      ?= BENCH_10.json
BENCH_BASELINE ?= BENCH_9.json

all: vet fmt-check build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Fail when any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Run the link-fault chaos harness (nonzero exit on invariant violations).
chaos:
	$(GO) run ./cmd/chaos -failover

# Run the N×M pool chaos campaign: region churn + lender crash/restore
# under the deadline+ARQ stack, audited (nonzero exit on violations).
pool-chaos:
	$(GO) run ./cmd/chaos -pool

# Coverage floor for the pooling and observability layers: the cluster
# node graph, the pool allocator/policies, and the metrics plane must
# stay >= 80% covered by their own tests.
cover-pool:
	@for pkg in ./internal/cluster ./internal/pool ./internal/metricsplane ./internal/metricsplane/monitor; do \
		$(GO) test -coverprofile=/tmp/cover.out $$pkg >/dev/null || exit 1; \
		pct=$$($(GO) tool cover -func=/tmp/cover.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
		echo "$$pkg coverage: $$pct%"; \
		ok=$$(awk -v p="$$pct" 'BEGIN {print (p >= 80.0) ? 1 : 0}'); \
		if [ "$$ok" != 1 ]; then echo "$$pkg below the 80% floor"; exit 1; fi; \
	done

# Run the sim/core/obs benchmarks with allocation stats and record them as
# a machine-diffable JSON artifact (uploaded by CI).
bench:
	$(GO) test -run '^$$' -bench . -benchmem \
		./internal/sim ./internal/core ./internal/obs > bench.out
	$(GO) run ./cmd/benchjson -out $(BENCH_OUT) < bench.out
	@rm -f bench.out

# Allocation-regression gate: rerun the benchmarks and fail if any of them
# regressed >20% in ns/op or grew allocs/op at all vs the committed baseline.
bench-gate:
	$(GO) test -run '^$$' -bench . -benchmem \
		./internal/sim ./internal/core ./internal/obs > bench.out
	$(GO) run ./cmd/benchjson -baseline $(BENCH_BASELINE) -gate < bench.out > /dev/null
	@rm -f bench.out

# Race-check the pool-heavy packages: pooled transactions, free-listed
# continuations, and the sharded event runtime (cross-shard inbox rings,
# spin barrier) must stay data-race-free under concurrent sweep workers
# and goroutine-per-shard rounds.
race-pools:
	$(GO) test -race ./internal/sim ./internal/cluster ./internal/pool \
		./internal/fabric ./internal/tfnic ./internal/ocapi \
		./internal/control ./internal/memport \
		./internal/workloads/kvstore ./internal/core

# Race-check the metrics plane: an 8-worker pool sweep writes every
# instrument while the exposition endpoint is scraped concurrently.
race-metrics:
	$(GO) test -race ./internal/metricsplane/...

# Regenerate every figure/table CSV under results/.
characterize:
	$(GO) run ./cmd/characterize -out results

# Smoke-test span tracing: a tiny traced STREAM run must emit valid
# Chrome-trace JSON and a nonempty per-stage breakdown.
trace-smoke:
	$(GO) run ./cmd/tfsim -workload stream -elements 4096 \
		-trace /tmp/thymesim-trace.json | tee /tmp/thymesim-trace.out
	grep -q '"traceEvents"' /tmp/thymesim-trace.json
	grep -q 'end_to_end' /tmp/thymesim-trace.out
	grep -q 'valid JSON' /tmp/thymesim-trace.out

# Smoke-test the live run monitor: build characterize, run the
# pool-contention sweep with -serve, scrape /metrics mid-run, and
# validate the exposition with the in-repo parser.
metrics-smoke:
	$(GO) test -run TestMetricsServeSmoke -v ./cmd/characterize

clean:
	$(GO) clean ./...
