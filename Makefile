GO ?= go

.PHONY: all build test race vet chaos characterize clean

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Run the link-fault chaos harness (nonzero exit on invariant violations).
chaos:
	$(GO) run ./cmd/chaos -failover

# Regenerate every figure/table CSV under results/.
characterize:
	$(GO) run ./cmd/characterize -out results

clean:
	$(GO) clean ./...
