GO ?= go

.PHONY: all build test race vet fmt-check chaos characterize trace-smoke bench clean

all: vet fmt-check build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Fail when any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Run the link-fault chaos harness (nonzero exit on invariant violations).
chaos:
	$(GO) run ./cmd/chaos -failover

# Run the sim/core/obs benchmarks with allocation stats and record them as
# a machine-diffable JSON artifact (uploaded by CI).
bench:
	$(GO) test -run '^$$' -bench . -benchmem \
		./internal/sim ./internal/core ./internal/obs > bench.out
	$(GO) run ./cmd/benchjson -out BENCH_4.json < bench.out
	@rm -f bench.out

# Regenerate every figure/table CSV under results/.
characterize:
	$(GO) run ./cmd/characterize -out results

# Smoke-test span tracing: a tiny traced STREAM run must emit valid
# Chrome-trace JSON and a nonempty per-stage breakdown.
trace-smoke:
	$(GO) run ./cmd/tfsim -workload stream -elements 4096 \
		-trace /tmp/thymesim-trace.json | tee /tmp/thymesim-trace.out
	grep -q '"traceEvents"' /tmp/thymesim-trace.json
	grep -q 'end_to_end' /tmp/thymesim-trace.out
	grep -q 'valid JSON' /tmp/thymesim-trace.out

clean:
	$(GO) clean ./...
