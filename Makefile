GO ?= go

.PHONY: all build test race race-pools vet fmt-check chaos characterize trace-smoke bench bench-gate clean

# Benchmark artifact for this PR and the committed baseline it is gated
# against (previous PR's numbers).
BENCH_OUT      ?= BENCH_6.json
BENCH_BASELINE ?= BENCH_5.json

all: vet fmt-check build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Fail when any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Run the link-fault chaos harness (nonzero exit on invariant violations).
chaos:
	$(GO) run ./cmd/chaos -failover

# Run the sim/core/obs benchmarks with allocation stats and record them as
# a machine-diffable JSON artifact (uploaded by CI).
bench:
	$(GO) test -run '^$$' -bench . -benchmem \
		./internal/sim ./internal/core ./internal/obs > bench.out
	$(GO) run ./cmd/benchjson -out $(BENCH_OUT) < bench.out
	@rm -f bench.out

# Allocation-regression gate: rerun the benchmarks and fail if any of them
# regressed >20% in ns/op or grew allocs/op at all vs the committed baseline.
bench-gate:
	$(GO) test -run '^$$' -bench . -benchmem \
		./internal/sim ./internal/core ./internal/obs > bench.out
	$(GO) run ./cmd/benchjson -baseline $(BENCH_BASELINE) -gate < bench.out > /dev/null
	@rm -f bench.out

# Race-check the pool-heavy packages: pooled transactions and free-listed
# continuations must stay data-race-free under concurrent sweep workers.
race-pools:
	$(GO) test -race ./internal/cluster ./internal/tfnic ./internal/ocapi \
		./internal/workloads/kvstore ./internal/core

# Regenerate every figure/table CSV under results/.
characterize:
	$(GO) run ./cmd/characterize -out results

# Smoke-test span tracing: a tiny traced STREAM run must emit valid
# Chrome-trace JSON and a nonempty per-stage breakdown.
trace-smoke:
	$(GO) run ./cmd/tfsim -workload stream -elements 4096 \
		-trace /tmp/thymesim-trace.json | tee /tmp/thymesim-trace.out
	grep -q '"traceEvents"' /tmp/thymesim-trace.json
	grep -q 'end_to_end' /tmp/thymesim-trace.out
	grep -q 'valid JSON' /tmp/thymesim-trace.out

clean:
	$(GO) clean ./...
