// Package thymesim is a simulation-based reproduction of "Evaluating
// Hardware Memory Disaggregation under Delay and Contention" (IPPS 2022):
// a transaction-level model of the ThymesisFlow hardware disaggregated
// memory prototype — borrower CPU cache hierarchy, OpenCAPI-style
// protocol, FPGA NIC datapath with the paper's delay-injection module,
// 100 Gb/s link, lender DRAM — together with real workload implementations
// (STREAM, a Redis-like store driven by a Memtier-style generator, and
// Graph500 BFS/SSSP) and a characterization harness that regenerates every
// figure and table of the paper's evaluation.
//
// The benchmark functions in bench_test.go regenerate the paper's results:
// one benchmark per figure/table, printing the measured series. See
// DESIGN.md for the system inventory and EXPERIMENTS.md for paper-vs-
// measured numbers.
package thymesim
