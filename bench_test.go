package thymesim

import (
	"testing"

	"thymesim/internal/core"
	"thymesim/internal/sim"
)

// Each benchmark regenerates one table or figure from the paper's
// evaluation (§IV) and prints the measured series with -v. The absolute
// numbers come from the simulated testbed, not POWER9 silicon; the shapes
// (linearity, BDP constancy, who degrades and by what factor, where the
// resilience cliff falls, how contention divides) are the reproduction
// targets. See EXPERIMENTS.md.

func benchOptions() core.Options {
	o := core.Default()
	o.StreamElements = 1 << 14
	return o
}

// BenchmarkFigure2LatencyVsPeriod: STREAM-measured latency vs PERIOD —
// linear, spanning the paper's 1.2-150us datacenter-network regime.
func BenchmarkFigure2LatencyVsPeriod(b *testing.B) {
	o := benchOptions()
	var v *core.DelayValidation
	for i := 0; i < b.N; i++ {
		v = o.RunDelayValidation(core.DefaultPeriods())
	}
	b.ReportMetric(v.Slope, "us/PERIOD")
	b.ReportMetric(v.R2, "r2")
	b.Logf("Figure 2 series (PERIOD -> latency us):")
	for _, p := range v.Latency.Series[0].Points {
		b.Logf("  PERIOD=%-4.0f latency=%8.3f us", p.X, p.Y)
	}
}

// BenchmarkFigure3BandwidthVsPeriod: STREAM bandwidth collapse with PERIOD
// and the constant bandwidth-delay product (~16.5 kB).
func BenchmarkFigure3BandwidthVsPeriod(b *testing.B) {
	o := benchOptions()
	var v *core.DelayValidation
	for i := 0; i < b.N; i++ {
		v = o.RunDelayValidation(core.DefaultPeriods())
	}
	lo, hi, _ := v.BDP.Series[0].MinMaxY()
	b.ReportMetric((lo+hi)/2, "BDP-kB")
	b.Logf("Figure 3 series (PERIOD -> bandwidth GB/s, BDP kB):")
	for i, p := range v.Bandwidth.Series[0].Points {
		b.Logf("  PERIOD=%-4.0f bw=%8.4f GB/s  BDP=%6.2f kB", p.X, p.Y, v.BDP.Series[0].Points[i].Y)
	}
}

// BenchmarkFigure4Resilience: exponential PERIOD stress; the attach
// handshake survives PERIOD<=1000 (~400us latency) and the FPGA detection
// times out at PERIOD=10000, as in the paper.
func BenchmarkFigure4Resilience(b *testing.B) {
	o := benchOptions()
	var r *core.Resilience
	for i := 0; i < b.N; i++ {
		r = o.RunResilience(core.ResiliencePeriods())
	}
	survived := 0
	for _, p := range r.Points {
		if p.AttachOK {
			survived++
		}
		status := "functional"
		if p.Crashed {
			status = "FAILED: " + p.AttachReason
		}
		b.Logf("  PERIOD=%-6d latency=%8.4g us  %s", p.Period, p.LatencyUs, status)
	}
	b.ReportMetric(float64(survived), "periods-survived")
}

// BenchmarkTable1HighDelay: slowdown vs local memory at PERIOD=1 and
// PERIOD=1000 for Redis and Graph500 (paper: 1.01x/1.73x, 6x/2209x,
// 5.3x/1800x).
func BenchmarkTable1HighDelay(b *testing.B) {
	o := core.Default()
	var t *core.Table1
	for i := 0; i < b.N; i++ {
		t = o.RunTable1()
	}
	b.ReportMetric(t.RedisHigh, "redis-P1000-x")
	b.ReportMetric(t.BFSHigh, "bfs-P1000-x")
	b.ReportMetric(t.SSSPHigh, "sssp-P1000-x")
	b.Logf("Table I (slowdown vs local):")
	b.Logf("  Redis         %6.2fx %8.4gx", t.RedisLow, t.RedisHigh)
	b.Logf("  Graph500 BFS  %6.2fx %8.4gx", t.BFSLow, t.BFSHigh)
	b.Logf("  Graph500 SSSP %6.2fx %8.4gx", t.SSSPLow, t.SSSPHigh)
}

// BenchmarkFigure5AppDegradation: per-application slowdown vs injected
// delay — Redis nearly flat, Graph500 order-of-magnitude.
func BenchmarkFigure5AppDegradation(b *testing.B) {
	o := core.Default()
	o.GraphScale = 11 // keep the 8-point sweep tractable per iteration
	var d *core.AppDegradation
	for i := 0; i < b.N; i++ {
		d = o.RunAppDegradation(core.Fig5Periods())
	}
	b.Logf("Figure 5 series (delay us -> slowdown):")
	redis, bfs, sssp := d.Figure.Get("redis"), d.Figure.Get("graph500-bfs"), d.Figure.Get("graph500-sssp")
	for i := range redis.Points {
		b.Logf("  delay=%8.3fus redis=%6.3fx bfs=%8.3fx sssp=%8.3fx",
			redis.Points[i].X, redis.Points[i].Y, bfs.Points[i].Y, sssp.Points[i].Y)
	}
	_, hiR, _ := redis.MinMaxY()
	_, hiB, _ := bfs.MinMaxY()
	b.ReportMetric(hiR, "redis-max-x")
	b.ReportMetric(hiB, "bfs-max-x")
}

// BenchmarkFigure6MCBN: equal division of bandwidth among N borrower
// STREAM instances.
func BenchmarkFigure6MCBN(b *testing.B) {
	o := benchOptions()
	var c *core.Contention
	for i := 0; i < b.N; i++ {
		c = o.RunMCBN([]int{1, 2, 4, 8})
	}
	b.Logf("Figure 6 series (instances -> per-instance GB/s):")
	for i, n := range c.Counts {
		b.Logf("  n=%d  %7.3f GB/s", n, c.BorrowerBps[i]/1e9)
	}
	b.ReportMetric(c.BorrowerBps[0]/c.BorrowerBps[len(c.BorrowerBps)-1], "division-x")
}

// BenchmarkFigure7MCLN: borrower bandwidth stays flat as lender-local
// STREAM instances contend for the lender's memory bus.
func BenchmarkFigure7MCLN(b *testing.B) {
	o := benchOptions()
	var c *core.Contention
	for i := 0; i < b.N; i++ {
		c = o.RunMCLN([]int{0, 1, 2, 4})
	}
	b.Logf("Figure 7 series (lender instances -> borrower GB/s):")
	for i, n := range c.Counts {
		b.Logf("  n=%d  %7.3f GB/s", n, c.BorrowerBps[i]/1e9)
	}
	b.ReportMetric(c.BorrowerBps[len(c.BorrowerBps)-1]/c.BorrowerBps[0], "retained-frac")
}

// BenchmarkAblationPooling: the §V discussion — against a CPU-less memory
// pool, lender-side contention becomes visible at the borrower.
func BenchmarkAblationPooling(b *testing.B) {
	o := benchOptions()
	var c *core.Contention
	for i := 0; i < b.N; i++ {
		c = o.RunMCLNPool([]int{0, 1, 2, 4}, 25e9)
	}
	b.Logf("Pooling ablation (pool-local instances -> borrower GB/s):")
	for i, n := range c.Counts {
		b.Logf("  n=%d  %7.3f GB/s", n, c.BorrowerBps[i]/1e9)
	}
	b.ReportMetric(c.BorrowerBps[len(c.BorrowerBps)-1]/c.BorrowerBps[0], "retained-frac")
}

// BenchmarkAblationDistributions: the §VII future-work extension —
// distribution-based injection at equal mean delay differentiates tail
// latency, not bandwidth.
func BenchmarkAblationDistributions(b *testing.B) {
	o := benchOptions()
	var d *core.DistImpact
	for i := 0; i < b.N; i++ {
		d = o.RunDistImpact(2 * sim.Microsecond)
	}
	b.Logf("Distribution ablation:")
	for _, row := range d.Table.Rows {
		b.Logf("  %-16s bw=%s GB/s  mean=%s us  p99=%s us", row[0], row[1], row[2], row[3])
	}
}

// BenchmarkAblationQoSPriority: the packet-scheduling QoS mechanism §IV-D
// motivates — a latency-sensitive pointer chase sharing the injector with
// a bulk STREAM, FIFO vs priority arbitration.
func BenchmarkAblationQoSPriority(b *testing.B) {
	o := benchOptions()
	var q *core.QoSResult
	for i := 0; i < b.N; i++ {
		q = o.RunQoSPriority(100)
	}
	b.Logf("chase alone %.2fus | FIFO %.2fus | priority %.2fus (bulk %.3f -> %.3f GB/s)",
		q.ChaseAloneUs, q.ChaseFIFOUs, q.ChasePrioUs, q.BulkFIFOBps/1e9, q.BulkPrioBps/1e9)
	b.ReportMetric(q.ChaseFIFOUs/q.ChasePrioUs, "protection-x")
}

// BenchmarkAblationMigration: the page-migration QoS mechanism §IV-D
// motivates — a hot remote working set promoted to local frames during a
// delayed run.
func BenchmarkAblationMigration(b *testing.B) {
	o := benchOptions()
	var m *core.MigrationResult
	for i := 0; i < b.N; i++ {
		m = o.RunMigration(100)
	}
	b.Logf("remote-only %.2fus | with migration %.2fus (%d promotions, %d lines copied)",
		m.NoMigrationUs, m.WithMigrationUs, m.Promotions, m.CopiedLines)
	b.ReportMetric(m.NoMigrationUs/m.WithMigrationUs, "improvement-x")
}

// BenchmarkAblationInterconnect: the §V protocol discussion quantified —
// OpenCAPI-over-Ethernet framing vs a CXL-like native fabric.
func BenchmarkAblationInterconnect(b *testing.B) {
	o := benchOptions()
	var r *core.InterconnectResult
	for i := 0; i < b.N; i++ {
		r = o.RunInterconnectComparison()
	}
	for _, row := range r.Rows {
		b.Logf("%-18s chase %.2fus  stream %.2f GB/s  chase@P250 %.2fus",
			row.Name, row.ChaseUs, row.StreamGBs, row.DelayedChase)
	}
	b.ReportMetric(r.Rows[1].StreamGBs/r.Rows[0].StreamGBs, "cxl-speedup-x")
}

// BenchmarkAblationPrefetch: hardware stream prefetching on disaggregated
// memory — hides the base RTT, cannot beat the injector's release rate.
func BenchmarkAblationPrefetch(b *testing.B) {
	o := benchOptions()
	var r *core.PrefetchResult
	for i := 0; i < b.N; i++ {
		r = o.RunPrefetchAblation(250)
	}
	b.Logf("vanilla: %.2f -> %.2f us/line | delayed: %.2f -> %.2f us/line",
		r.OffVanillaUs, r.OnVanillaUs, r.OffDelayedUs, r.OnDelayedUs)
	b.ReportMetric(r.OffVanillaUs/r.OnVanillaUs, "vanilla-gain-x")
}
