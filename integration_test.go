package thymesim

import (
	"testing"

	"thymesim/internal/cluster"
	"thymesim/internal/core"
	"thymesim/internal/inject"
	"thymesim/internal/memport"
	"thymesim/internal/ocapi"
	"thymesim/internal/sim"
)

// flatTrace is one phase of n independent line reads.
type flatTrace struct {
	base uint64
	n    int
	buf  []memport.Op
}

func (f *flatTrace) NumPhases() int { return 1 }
func (f *flatTrace) Phase(int) []memport.Op {
	f.buf = f.buf[:0]
	for i := 0; i < f.n; i++ {
		f.buf = append(f.buf, memport.Op{Addr: f.base + uint64(i)*ocapi.CacheLineSize, Size: 8})
	}
	return f.buf
}
func (f *flatTrace) ComputeTime(int) sim.Duration { return 0 }

// eventSaturated drives n independent line reads through the full event
// datapath with an MSHR-sized issue window (as a real CPU would) and
// returns achieved bandwidth and mean fill latency.
func eventSaturated(period int64, n int) (bps float64, latUs float64) {
	cfg := cluster.DefaultConfig(period)
	cfg.LLC.SizeBytes = 64 << 10
	cfg.LLC.Ways = 4
	tb := cluster.NewTestbed(cfg)
	h := tb.NewRemoteHierarchy()
	tb.K.At(0, func() {
		memport.Replay(tb.K, h, &flatTrace{base: cluster.RemoteBase, n: n}, memport.DefaultMSHRs, func(sim.Duration) {})
	})
	end := tb.K.Run()
	return float64(n*ocapi.CacheLineSize) / sim.Time(end).Seconds(), h.FillLatency().Mean()
}

// fastSaturated drives the same pattern through the analytic FastPort.
func fastSaturated(tb *cluster.Testbed, period int64, n int) (bps float64, latUs float64) {
	slot := sim.Duration(period) * inject.DefaultFPGACycle
	p := memport.NewFastPort(tb.BaseRTT(), slot, memport.DefaultMSHRs)
	for i := 0; i < n; i++ {
		p.Access(0)
	}
	return p.BandwidthBps(), p.MeanLatency().Micros()
}

// TestFastPortTracksEventModel is the cross-validation DESIGN.md promises:
// with identical parameters and access streams, the O(1) analytic model
// must agree with the event-level datapath on bandwidth and latency within
// tolerance, across injection regimes.
func TestFastPortTracksEventModel(t *testing.T) {
	tb := cluster.NewTestbed(cluster.DefaultConfig(1))
	const n = 3000
	for _, period := range []int64{10, 50, 200, 1000} {
		eBps, eLat := eventSaturated(period, n)
		fBps, fLat := fastSaturated(tb, period, n)
		if r := fBps / eBps; r < 0.8 || r > 1.25 {
			t.Errorf("PERIOD=%d bandwidth: fast %.3g vs event %.3g (ratio %.3f)", period, fBps, eBps, r)
		}
		if r := fLat / eLat; r < 0.7 || r > 1.4 {
			t.Errorf("PERIOD=%d latency: fast %.3g vs event %.3g us (ratio %.3f)", period, fLat, eLat, r)
		}
	}
}

// TestDeterminism: identical options and seeds produce identical results
// across full experiment runs — the property every other regression test
// relies on.
func TestDeterminism(t *testing.T) {
	run := func() (float64, float64) {
		o := core.Default()
		o.StreamElements = 1 << 13
		m := o.StreamRemote(25)
		kv := o.KVRemote(25)
		return m.BandwidthBps, kv.Throughput
	}
	b1, t1 := run()
	b2, t2 := run()
	if b1 != b2 || t1 != t2 {
		t.Fatalf("nondeterministic: (%v,%v) vs (%v,%v)", b1, t1, b2, t2)
	}
}

// TestEndToEndDelayMonotonicity: across the full stack, raising PERIOD
// must never improve any workload.
func TestEndToEndDelayMonotonicity(t *testing.T) {
	o := core.Default()
	o.StreamElements = 1 << 13
	o.GraphScale = 9
	o.KVRequests = 5
	periods := []int64{1, 25, 250}
	var prevStream, prevKV float64
	var prevBFS sim.Duration
	for i, p := range periods {
		s := o.StreamRemote(p)
		g := o.GraphRemote(p)
		kv := o.KVRemote(p)
		if i > 0 {
			if s.BandwidthBps > prevStream*1.01 {
				t.Errorf("STREAM improved with delay: P=%d %v > %v", p, s.BandwidthBps, prevStream)
			}
			if g.BFSTime < prevBFS {
				t.Errorf("BFS improved with delay at P=%d", p)
			}
			if kv.Throughput > prevKV*1.01 {
				t.Errorf("Redis improved with delay at P=%d", p)
			}
		}
		prevStream, prevBFS, prevKV = s.BandwidthBps, g.BFSTime, kv.Throughput
	}
}

// TestPaperOptionsSmoke: the paper-sized configuration validates and the
// testbed constructed from it works (full paper-sized runs are exercised
// via cmd/characterize -paper, not in CI-speed tests).
func TestPaperOptionsSmoke(t *testing.T) {
	o := core.Paper()
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	tb := o.Testbed(1)
	done := false
	tb.K.At(0, func() {
		h := tb.NewRemoteHierarchy()
		h.Access(tb.RemoteAddr(0), 8, false, func() { done = true })
	})
	tb.K.Run()
	if !done {
		t.Fatal("paper-sized testbed inert")
	}
}
