module thymesim

go 1.22
