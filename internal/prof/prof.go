// Package prof wires runtime/pprof capture into the command-line tools:
// a CPU profile spanning the experiment runs and an allocation profile
// snapshotted after them, for feeding `go tool pprof` when hunting
// datapath regressions.
package prof

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to path; an empty path is a no-op. The
// returned stop function finishes and flushes the profile.
func Start(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap dumps the allocation profile (every allocation since program
// start, plus live-heap stats) to path; an empty path is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC() // settle live-object stats before snapshotting
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
