// Package prof wires runtime/pprof capture into the command-line tools:
// a CPU profile spanning the experiment runs and an allocation profile
// snapshotted after them, for feeding `go tool pprof` when hunting
// datapath regressions.
package prof

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to path; an empty path is a no-op. The
// returned stop function finishes and flushes the profile.
func Start(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap dumps the allocation profile (every allocation since program
// start, plus live-heap stats) to path; an empty path is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC() // settle live-object stats before snapshotting
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// StartMutex enables mutex-contention profiling and returns a stop
// function that writes the profile to path and disables sampling; an
// empty path is a no-op. The sharded event kernels synchronize through
// atomics and a spin barrier, so mutex samples point at the layers that
// do lock — the metrics plane, the sweep pool, the monitor endpoint.
func StartMutex(path string) (stop func() error, err error) {
	if path == "" {
		return func() error { return nil }, nil
	}
	runtime.SetMutexProfileFraction(1)
	return func() error {
		defer runtime.SetMutexProfileFraction(0)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := pprof.Lookup("mutex").WriteTo(f, 0); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}, nil
}

// StartBlock enables goroutine blocking profiling (every blocking event)
// and returns a stop function that writes the profile to path and
// disables sampling; an empty path is a no-op. Under the sharded runtime
// this is the profile that shows shard goroutines stalled at the round
// barrier — load imbalance across the partition.
func StartBlock(path string) (stop func() error, err error) {
	if path == "" {
		return func() error { return nil }, nil
	}
	runtime.SetBlockProfileRate(1)
	return func() error {
		defer runtime.SetBlockProfileRate(0)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := pprof.Lookup("block").WriteTo(f, 0); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}, nil
}
