package dram

import (
	"testing"

	"thymesim/internal/ocapi"
	"thymesim/internal/sim"
)

func testConfig() Config {
	return Config{Channels: 2, AccessLatency: 100 * sim.Nanosecond, BandwidthBps: 2e9, QueueDepth: 4}
}

func TestSingleAccessLatency(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, testConfig())
	var doneAt sim.Time
	k.At(0, func() { d.ReadLine(0, func() { doneAt = k.Now() }) })
	k.Run()
	// 100ns access + 128B at 1GB/s per channel = 128ns burst.
	want := sim.Time(100*sim.Nanosecond + 128*sim.Nanosecond)
	if doneAt != want {
		t.Fatalf("done at %v, want %v", doneAt, want)
	}
	if d.Reads() != 1 || d.Bytes() != ocapi.CacheLineSize {
		t.Fatalf("reads=%d bytes=%d", d.Reads(), d.Bytes())
	}
}

func TestChannelParallelism(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, testConfig())
	var times []sim.Time
	k.At(0, func() {
		// Lines 0 and 1 map to different channels.
		d.ReadLine(0, func() { times = append(times, k.Now()) })
		d.ReadLine(ocapi.CacheLineSize, func() { times = append(times, k.Now()) })
	})
	k.Run()
	if len(times) != 2 {
		t.Fatal("missing completions")
	}
	if times[0] != times[1] {
		t.Fatalf("different channels should complete in parallel: %v", times)
	}
}

func TestSameChannelSerializesOnBus(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, testConfig())
	var times []sim.Time
	k.At(0, func() {
		// Lines 0 and 2 map to the same channel (2 channels, line%2).
		d.ReadLine(0, func() { times = append(times, k.Now()) })
		d.ReadLine(2*ocapi.CacheLineSize, func() { times = append(times, k.Now()) })
	})
	k.Run()
	if len(times) != 2 {
		t.Fatal("missing completions")
	}
	gap := times[1].Sub(times[0])
	if gap != 128*sim.Nanosecond {
		t.Fatalf("bus gap = %v, want one burst (128ns)", gap)
	}
}

func TestWriteCounting(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, testConfig())
	k.At(0, func() {
		d.WriteLine(0, nil)
		d.ReadLine(ocapi.CacheLineSize, nil)
	})
	k.Run()
	if d.Writes() != 1 || d.Reads() != 1 {
		t.Fatalf("writes=%d reads=%d", d.Writes(), d.Reads())
	}
}

func TestQueueDepthBackpressure(t *testing.T) {
	k := sim.NewKernel()
	cfg := testConfig()
	cfg.Channels = 1
	cfg.QueueDepth = 2
	d := New(k, cfg)
	completed := 0
	k.At(0, func() {
		for i := 0; i < 10; i++ {
			d.ReadLine(0, func() { completed++ })
		}
	})
	k.Run()
	if completed != 10 {
		t.Fatalf("completed = %d", completed)
	}
	// All must eventually finish despite depth 2; bandwidth bound gives a
	// lower bound on the finish time: 10 bursts of 64ns at 2GB/s... here
	// channel bw = 2e9 (1 channel): burst = 64ns. Total >= 640ns.
	if k.Now() < sim.Time(640*sim.Nanosecond) {
		t.Fatalf("finished implausibly fast: %v", k.Now())
	}
}

func TestSustainedBandwidth(t *testing.T) {
	k := sim.NewKernel()
	cfg := Config{Channels: 4, AccessLatency: 50 * sim.Nanosecond, BandwidthBps: 4e9, QueueDepth: 16}
	d := New(k, cfg)
	const n = 4000
	k.At(0, func() {
		for i := 0; i < n; i++ {
			d.ReadLine(uint64(i)*ocapi.CacheLineSize, nil)
		}
	})
	end := k.Run()
	got := float64(d.Bytes()) / sim.Time(end).Seconds()
	if got < 0.9*cfg.BandwidthBps || got > 1.05*cfg.BandwidthBps {
		t.Fatalf("sustained %v B/s, want ~%v", got, cfg.BandwidthBps)
	}
	if u := d.Utilization(); u < 0.9 {
		t.Fatalf("utilization = %v", u)
	}
}

func TestContentionHalvesPerFlowBandwidth(t *testing.T) {
	// Two equal request streams to the same DRAM must each get about half
	// of what one alone gets — the substrate of the MCLN/MCBN experiments.
	run := func(flows int) float64 {
		k := sim.NewKernel()
		cfg := Config{Channels: 1, AccessLatency: 10 * sim.Nanosecond, BandwidthBps: 1e9, QueueDepth: 64}
		d := New(k, cfg)
		const perFlow = 500
		done := 0
		var flowBytes uint64
		k.At(0, func() {
			for f := 0; f < flows; f++ {
				f := f
				for i := 0; i < perFlow; i++ {
					d.ReadLine(uint64(i)*ocapi.CacheLineSize, func() {
						done++
						if f == 0 {
							flowBytes += ocapi.CacheLineSize
						}
					})
				}
			}
		})
		end := k.Run()
		if done != flows*perFlow {
			t.Fatalf("done = %d", done)
		}
		return float64(flowBytes) / sim.Time(end).Seconds()
	}
	alone := run(1)
	shared := run(2)
	ratio := shared / alone
	if ratio < 0.4 || ratio > 0.6 {
		t.Fatalf("contention ratio = %v, want ~0.5", ratio)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Channels: 0, AccessLatency: 1, BandwidthBps: 1, QueueDepth: 1},
		{Channels: 1, AccessLatency: -1, BandwidthBps: 1, QueueDepth: 1},
		{Channels: 1, AccessLatency: 1, BandwidthBps: 0, QueueDepth: 1},
		{Channels: 1, AccessLatency: 1, BandwidthBps: 1, QueueDepth: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
	if err := AC922Config().Validate(); err != nil {
		t.Errorf("AC922Config invalid: %v", err)
	}
	if err := PoolConfig(30e9).Validate(); err != nil {
		t.Errorf("PoolConfig invalid: %v", err)
	}
}

func TestAccessSizePanics(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, testConfig())
	defer func() {
		if recover() == nil {
			t.Error("zero-size access did not panic")
		}
	}()
	d.Access(0, 0, false, nil)
}
