// Package dram models a node's local memory subsystem: multiple interleaved
// channels, each with a fixed access latency and a data bus whose bandwidth
// is shared by everything using the channel. It is the substrate for both
// sides of the paper's contention experiments: the lender's memory serves
// remote (NIC) traffic and any co-located local applications (MCLN,
// Fig. 7), and the memory-bus-vs-network bandwidth ratio is the mechanism
// behind the paper's third key finding.
package dram

import (
	"fmt"

	"thymesim/internal/metricsplane"
	"thymesim/internal/obs"
	"thymesim/internal/ocapi"
	"thymesim/internal/sim"
)

// Config describes a memory subsystem.
type Config struct {
	// Channels is the number of interleaved memory channels.
	Channels int
	// AccessLatency is the fixed row/column access time per request.
	AccessLatency sim.Duration
	// BandwidthBps is the aggregate data-bus bandwidth in bytes/second,
	// divided evenly across channels.
	BandwidthBps float64
	// QueueDepth bounds outstanding requests per channel; further requests
	// wait (memory controller queue).
	QueueDepth int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Channels <= 0 {
		return fmt.Errorf("dram: channels = %d", c.Channels)
	}
	if c.AccessLatency < 0 {
		return fmt.Errorf("dram: negative access latency")
	}
	if c.BandwidthBps <= 0 {
		return fmt.Errorf("dram: bandwidth = %v", c.BandwidthBps)
	}
	if c.QueueDepth <= 0 {
		return fmt.Errorf("dram: queue depth = %d", c.QueueDepth)
	}
	return nil
}

// AC922Config approximates one IBM AC922 node: 8 DDR4 channels, ~140 GB/s
// aggregate, ~90 ns device access.
func AC922Config() Config {
	return Config{
		Channels:      8,
		AccessLatency: 90 * sim.Nanosecond,
		BandwidthBps:  140e9,
		QueueDepth:    32,
	}
}

// PoolConfig approximates a CPU-less memory pool device (§V discussion):
// a single controller with modest bandwidth, so that contention shifts from
// the network to the pool itself.
func PoolConfig(bandwidthBps float64) Config {
	return Config{
		Channels:      2,
		AccessLatency: 120 * sim.Nanosecond,
		BandwidthBps:  bandwidthBps,
		QueueDepth:    32,
	}
}

// DRAM is the memory subsystem instance.
type DRAM struct {
	k        *sim.Kernel
	cfg      Config
	channels []*channel
	// slowdown inflates device access and bus burst times (brownout
	// injection); 1 is nominal service.
	slowdown float64

	reads  uint64
	writes uint64
	bytes  uint64
	mx     *metricsplane.DRAMMetrics // nil when the metrics plane is disabled
	// free is an intrusive free list of staged access contexts; a
	// warmed-up DRAM serves requests without allocating.
	free *accessCtx
}

// accessCtx carries one in-flight request through the channel's three
// stages — slot grant (arg 0), device latency (arg 1), bus burst (arg 2)
// — as a pooled continuation instead of nested closures.
type accessCtx struct {
	d     *DRAM
	ch    *channel
	bytes int
	write bool
	tr    *obs.Tracer
	sp    obs.SpanID
	h     sim.Handler
	arg   uint64
	next  *accessCtx
}

// Handle implements sim.Handler.
func (c *accessCtx) Handle(stage uint64) {
	d := c.d
	switch stage {
	case 0: // memory-controller slot granted
		c.tr.Enter(c.sp, obs.StageDRAMAccess)
		d.k.AfterH(d.accessTime(), c, 1)
	case 1: // device access done; occupy the data bus
		c.ch.bus.ServeH(d.burstTime(c.bytes), c, 2)
	default: // burst complete
		if c.write {
			d.writes++
		} else {
			d.reads++
		}
		d.bytes += uint64(c.bytes)
		if d.mx != nil {
			d.mx.Access(c.write, uint64(c.bytes), d.Utilization())
		}
		ch, h, arg := c.ch, c.h, c.arg
		c.tr, c.h = nil, nil
		c.next = d.free
		d.free = c
		ch.slots.Release()
		h.Handle(arg)
	}
}

type channel struct {
	bus   *sim.Server
	slots *sim.CreditPool
}

// New builds a memory subsystem.
func New(k *sim.Kernel, cfg Config) *DRAM {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	d := &DRAM{k: k, cfg: cfg, slowdown: 1}
	for i := 0; i < cfg.Channels; i++ {
		d.channels = append(d.channels, &channel{
			bus:   sim.NewServer(k),
			slots: sim.NewCreditPool(k, cfg.QueueDepth),
		})
	}
	return d
}

// Config returns the active configuration.
func (d *DRAM) Config() Config { return d.cfg }

// SetMetrics attaches the metrics plane's per-device access counters and
// utilization gauge (observe-only; nil disables).
func (d *DRAM) SetMetrics(m *metricsplane.DRAMMetrics) { d.mx = m }

// SetSlowdown sets the service-time inflation factor (brownout injection):
// device access latency and bus burst time both scale by it. factor must
// be >= 1; 1 restores nominal service. It applies to accesses whose
// affected stage begins after the call — requests already past that stage
// keep their old timing, like a real controller finishing in-flight work.
func (d *DRAM) SetSlowdown(factor float64) {
	if factor < 1 {
		panic(fmt.Sprintf("dram: slowdown %g < 1", factor))
	}
	d.slowdown = factor
}

// Slowdown returns the active service-time inflation factor.
func (d *DRAM) Slowdown() float64 { return d.slowdown }

// Reads returns the number of completed read requests.
func (d *DRAM) Reads() uint64 { return d.reads }

// Writes returns the number of completed write requests.
func (d *DRAM) Writes() uint64 { return d.writes }

// Bytes returns the cumulative bytes transferred.
func (d *DRAM) Bytes() uint64 { return d.bytes }

// channelFor interleaves cache lines across channels.
func (d *DRAM) channelFor(addr uint64) *channel {
	line := addr / ocapi.CacheLineSize
	return d.channels[line%uint64(len(d.channels))]
}

// burstTime is the data-bus occupancy of one request on one channel,
// including any active brownout inflation.
func (d *DRAM) burstTime(bytes int) sim.Duration {
	perChan := d.cfg.BandwidthBps / float64(d.cfg.Channels)
	return sim.Duration(float64(bytes) / perChan * 1e12 * d.slowdown)
}

// accessTime is the device access latency under the active slowdown.
func (d *DRAM) accessTime() sim.Duration {
	if d.slowdown == 1 {
		return d.cfg.AccessLatency
	}
	return sim.Duration(float64(d.cfg.AccessLatency) * d.slowdown)
}

// Access performs a memory request of the given size at addr and calls done
// when the data has transferred. Concurrent requests to different channels
// proceed in parallel; requests to one channel share its bus.
func (d *DRAM) Access(addr uint64, bytes int, write bool, done func()) {
	d.AccessSpan(addr, bytes, write, nil, 0, done)
}

// AccessSpan is Access with span tracing: the memory-controller queue wait
// and the device access + bus burst are attributed to sp as separate
// stages. tr may be nil and sp zero (untraced).
func (d *DRAM) AccessSpan(addr uint64, bytes int, write bool, tr *obs.Tracer, sp obs.SpanID, done func()) {
	if bytes <= 0 {
		panic("dram: non-positive access size")
	}
	ch := d.channelFor(addr)
	tr.Enter(sp, obs.StageDRAMQueue)
	ch.slots.Acquire(func() {
		tr.Enter(sp, obs.StageDRAMAccess)
		// Device access latency, then bus occupancy.
		d.k.After(d.accessTime(), func() {
			ch.bus.Serve(d.burstTime(bytes), func() {
				if write {
					d.writes++
				} else {
					d.reads++
				}
				d.bytes += uint64(bytes)
				if d.mx != nil {
					d.mx.Access(write, uint64(bytes), d.Utilization())
				}
				ch.slots.Release()
				if done != nil {
					done()
				}
			})
		})
	})
}

// AccessSpanH is the closure-free analog of AccessSpan: h.Handle(arg)
// fires at completion, and the request's whole channel traversal rides a
// pooled context so steady-state accesses allocate nothing.
func (d *DRAM) AccessSpanH(addr uint64, bytes int, write bool, tr *obs.Tracer, sp obs.SpanID, h sim.Handler, arg uint64) {
	if bytes <= 0 {
		panic("dram: non-positive access size")
	}
	ch := d.channelFor(addr)
	tr.Enter(sp, obs.StageDRAMQueue)
	c := d.free
	if c == nil {
		c = &accessCtx{d: d}
	} else {
		d.free = c.next
		c.next = nil
	}
	c.ch, c.bytes, c.write, c.tr, c.sp, c.h, c.arg = ch, bytes, write, tr, sp, h, arg
	ch.slots.AcquireH(c, 0)
}

// ReadLine reads one cache line.
func (d *DRAM) ReadLine(addr uint64, done func()) {
	d.Access(addr, ocapi.CacheLineSize, false, done)
}

// WriteLine writes one cache line.
func (d *DRAM) WriteLine(addr uint64, done func()) {
	d.Access(addr, ocapi.CacheLineSize, true, done)
}

// Utilization returns the mean bus utilization across channels.
func (d *DRAM) Utilization() float64 {
	var sum float64
	for _, ch := range d.channels {
		sum += ch.bus.Utilization()
	}
	return sum / float64(len(d.channels))
}

// DeliveredBps returns achieved bandwidth since simulation start.
func (d *DRAM) DeliveredBps() float64 {
	now := d.k.Now()
	if now == 0 {
		return 0
	}
	return float64(d.bytes) / now.Seconds()
}
