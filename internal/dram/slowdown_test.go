package dram

import (
	"testing"

	"thymesim/internal/sim"
)

// TestSlowdownInflatesServiceTime pins the brownout model: a factor-2
// slowdown doubles both the access latency and the burst time.
func TestSlowdownInflatesServiceTime(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, testConfig())
	d.SetSlowdown(2)
	var doneAt sim.Time
	k.At(0, func() { d.ReadLine(0, func() { doneAt = k.Now() }) })
	k.Run()
	// Nominal 100ns access + 128ns burst, both doubled.
	want := sim.Time(2 * (100*sim.Nanosecond + 128*sim.Nanosecond))
	if doneAt != want {
		t.Fatalf("done at %v, want %v", doneAt, want)
	}
}

// TestSlowdownRampAndRecovery checks a brownout can ramp and then clear
// back to nominal timing mid-run.
func TestSlowdownRampAndRecovery(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, testConfig())
	nominal := sim.Duration(100*sim.Nanosecond + 128*sim.Nanosecond)
	var times []sim.Duration
	issue := func(at sim.Time) {
		k.At(at, func() {
			start := k.Now()
			d.ReadLine(0, func() { times = append(times, sim.Duration(k.Now()-start)) })
		})
	}
	issue(0)
	k.At(sim.Time(10*sim.Microsecond), func() { d.SetSlowdown(4) })
	issue(sim.Time(10 * sim.Microsecond))
	k.At(sim.Time(20*sim.Microsecond), func() { d.SetSlowdown(1) })
	issue(sim.Time(20 * sim.Microsecond))
	k.Run()
	want := []sim.Duration{nominal, 4 * nominal, nominal}
	for i, got := range times {
		if got != want[i] {
			t.Fatalf("access %d took %v, want %v", i, got, want[i])
		}
	}
	if d.Slowdown() != 1 {
		t.Fatalf("slowdown = %g after recovery", d.Slowdown())
	}
}

// TestSlowdownBandwidthScales checks sustained bandwidth drops by the
// brownout factor, not just first-access latency.
func TestSlowdownBandwidthScales(t *testing.T) {
	run := func(factor float64) float64 {
		k := sim.NewKernel()
		cfg := Config{Channels: 1, AccessLatency: 10 * sim.Nanosecond, BandwidthBps: 1e9, QueueDepth: 32}
		d := New(k, cfg)
		d.SetSlowdown(factor)
		const n = 1000
		k.At(0, func() {
			for i := 0; i < n; i++ {
				d.ReadLine(0, nil)
			}
		})
		end := k.Run()
		return float64(d.Bytes()) / sim.Time(end).Seconds()
	}
	full := run(1)
	browned := run(2)
	ratio := browned / full
	if ratio < 0.45 || ratio > 0.55 {
		t.Fatalf("brownout bandwidth ratio = %v, want ~0.5", ratio)
	}
}

func TestSlowdownBelowOnePanics(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, testConfig())
	defer func() {
		if recover() == nil {
			t.Error("slowdown 0.5 accepted")
		}
	}()
	d.SetSlowdown(0.5)
}
