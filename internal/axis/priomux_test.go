package axis

import (
	"testing"

	"thymesim/internal/sim"
)

func TestPriorityMuxStrictOrder(t *testing.T) {
	k := sim.NewKernel()
	hi := NewFIFO("hi", 64)
	lo := NewFIFO("lo", 64)
	out := NewFIFO("out", 256)
	m := NewPriorityMux(k, []*FIFO{hi, lo}, out, sim.Nanosecond, nil)
	k.At(0, func() {
		for i := 0; i < 10; i++ {
			lo.Push(Beat{Flow: 2})
		}
		for i := 0; i < 5; i++ {
			hi.Push(Beat{Flow: 1})
		}
	})
	k.Run()
	if m.Transfers() != 15 {
		t.Fatalf("transfers = %d", m.Transfers())
	}
	// After the first low beat (already in service race), all high beats
	// must drain before remaining low ones.
	var order []int
	for {
		b, ok := out.Pop()
		if !ok {
			break
		}
		order = append(order, b.Flow)
	}
	lastHi := -1
	firstLoAfterStart := -1
	for i, f := range order {
		if f == 1 {
			lastHi = i
		}
		if f == 2 && firstLoAfterStart == -1 && i > 0 {
			firstLoAfterStart = i
		}
	}
	// Count low beats before the last high beat: at most 1 (the head
	// transferred in the same instant the high beats arrived).
	loBefore := 0
	for _, f := range order[:lastHi] {
		if f == 2 {
			loBefore++
		}
	}
	if loBefore > 1 {
		t.Fatalf("low class not preempted: order %v", order)
	}
	if m.ClassTransfers(0) != 5 || m.ClassTransfers(1) != 10 {
		t.Fatalf("class counts = %d/%d", m.ClassTransfers(0), m.ClassTransfers(1))
	}
}

func TestPriorityMuxGated(t *testing.T) {
	// With a gate limiting slots, every free slot must go to the high
	// class while it has backlog.
	k := sim.NewKernel()
	hi := NewFIFO("hi", 64)
	lo := NewFIFO("lo", 64)
	out := NewFIFO("out", 256)
	gate := &slotGate{interval: 100 * sim.Nanosecond}
	NewPriorityMux(k, []*FIFO{hi, lo}, out, sim.Nanosecond, gate)
	k.At(0, func() {
		for i := 0; i < 4; i++ {
			lo.Push(Beat{Flow: 2})
			hi.Push(Beat{Flow: 1})
		}
	})
	k.Run()
	var order []int
	for {
		b, ok := out.Pop()
		if !ok {
			break
		}
		order = append(order, b.Flow)
	}
	want := []int{1, 1, 1, 1, 2, 2, 2, 2}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order = %v, want all high first", order)
		}
	}
}

func TestPriorityMuxBackpressure(t *testing.T) {
	k := sim.NewKernel()
	hi := NewFIFO("hi", 8)
	out := NewFIFO("out", 1)
	NewPriorityMux(k, []*FIFO{hi}, out, sim.Nanosecond, nil)
	k.At(0, func() {
		for i := 0; i < 4; i++ {
			hi.Push(Beat{})
		}
	})
	k.Run()
	if out.Len() != 1 || hi.Len() != 3 {
		t.Fatalf("out=%d hi=%d", out.Len(), hi.Len())
	}
}

func TestPriorityMuxNeedsInputs(t *testing.T) {
	k := sim.NewKernel()
	defer func() {
		if recover() == nil {
			t.Error("no inputs did not panic")
		}
	}()
	NewPriorityMux(k, nil, NewFIFO("out", 1), 0, nil)
}

// slotGate permits one transfer per fixed interval, grid-aligned.
type slotGate struct {
	interval sim.Duration
	last     sim.Time
	used     bool
}

func (g *slotGate) Next(now sim.Time) sim.Time {
	iv := sim.Time(g.interval)
	idx := now / iv
	if idx*iv < now {
		idx++
	}
	slot := idx * iv
	if g.used && slot <= g.last {
		slot = g.last + iv
	}
	return slot
}

func (g *slotGate) Commit(t sim.Time) {
	g.last = t
	g.used = true
}
