package axis

import (
	"testing"

	"thymesim/internal/sim"
)

func TestDelayLineFixedLatency(t *testing.T) {
	k := sim.NewKernel()
	in := NewFIFO("in", 8)
	out := NewFIFO("out", 8)
	d := NewDelayLine(k, in, out, 100*sim.Nanosecond)
	var at []sim.Time
	out.OnData(func() { at = append(at, k.Now()) })
	k.At(0, func() { in.Push(Beat{Dest: 1}) })
	k.At(10, func() { in.Push(Beat{Dest: 2}) })
	k.Run()
	if len(at) != 2 {
		t.Fatalf("deliveries = %d", len(at))
	}
	if at[0] != sim.Time(100*sim.Nanosecond) || at[1] != sim.Time(10+100*int(sim.Nanosecond)) {
		t.Fatalf("delivery times = %v", at)
	}
	if d.Moved() != 2 {
		t.Fatalf("moved = %d", d.Moved())
	}
}

func TestDelayLinePipelines(t *testing.T) {
	// Unlike a Pump, a DelayLine overlaps beats: n beats injected at t=0
	// all arrive at t=delay.
	k := sim.NewKernel()
	in := NewFIFO("in", 16)
	out := NewFIFO("out", 16)
	NewDelayLine(k, in, out, sim.Duration(sim.Microsecond))
	k.At(0, func() {
		for i := 0; i < 10; i++ {
			in.Push(Beat{Dest: i})
		}
	})
	end := k.Run()
	if end != sim.Time(sim.Microsecond) {
		t.Fatalf("end = %v, want 1us (full pipelining)", end)
	}
	if out.Len() != 10 {
		t.Fatalf("out = %d", out.Len())
	}
	// Order preserved.
	for i := 0; i < 10; i++ {
		b, _ := out.Pop()
		if b.Dest != i {
			t.Fatalf("order violated at %d: %d", i, b.Dest)
		}
	}
}

func TestDelayLineBackpressureWithInflight(t *testing.T) {
	k := sim.NewKernel()
	in := NewFIFO("in", 16)
	out := NewFIFO("out", 2)
	NewDelayLine(k, in, out, sim.Duration(sim.Microsecond))
	k.At(0, func() {
		for i := 0; i < 8; i++ {
			in.Push(Beat{Dest: i})
		}
	})
	k.Run()
	// Only out's capacity may be launched: 2 delivered, 6 held upstream.
	if out.Len() != 2 || in.Len() != 6 {
		t.Fatalf("out=%d in=%d", out.Len(), in.Len())
	}
	k.At(k.Now(), func() { out.Pop(); out.Pop() })
	k.Run()
	if out.Len() != 2 || in.Len() != 4 {
		t.Fatalf("resume: out=%d in=%d", out.Len(), in.Len())
	}
}

func TestDelayLineZeroDelay(t *testing.T) {
	k := sim.NewKernel()
	in := NewFIFO("in", 4)
	out := NewFIFO("out", 4)
	NewDelayLine(k, in, out, 0)
	k.At(5, func() { in.Push(Beat{}) })
	end := k.Run()
	if end != 5 || out.Len() != 1 {
		t.Fatalf("end=%v out=%d", end, out.Len())
	}
}

func TestDelayLineNegativePanics(t *testing.T) {
	k := sim.NewKernel()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	NewDelayLine(k, NewFIFO("a", 1), NewFIFO("b", 1), -1)
}
