package axis

import "thymesim/internal/sim"

// PriorityMux arbitrates N input FIFOs onto one output with strict
// priority: input 0 always wins over input 1, and so on. Combined with a
// delay-injection or rate-limiting gate it implements the paper's
// "packet scheduling at the network" QoS mechanism: when the bottleneck
// frees a transfer slot, the latency-sensitive class takes it first.
// Strict priority can starve low classes under persistent high-class
// backlog; the experiments quantify exactly that trade.
type PriorityMux struct {
	k         *sim.Kernel
	ins       []*FIFO // index = priority, 0 highest
	out       *FIFO
	cycle     sim.Duration
	gate      Gate
	busyUntil sim.Time
	armed     bool

	transfers uint64
	perClass  []uint64
	dropped   uint64
	corrupted uint64
}

// NewPriorityMux wires a strict-priority multiplexer; gate may be nil.
func NewPriorityMux(k *sim.Kernel, ins []*FIFO, out *FIFO, cycle sim.Duration, gate Gate) *PriorityMux {
	if len(ins) == 0 {
		panic("axis: PriorityMux needs at least one input")
	}
	if gate == nil {
		gate = PassGate{}
	}
	m := &PriorityMux{k: k, ins: ins, out: out, cycle: cycle, gate: gate, perClass: make([]uint64, len(ins))}
	for _, in := range ins {
		in.OnData(m.kick)
	}
	out.OnSpace(m.kick)
	return m
}

// Transfers returns the beats moved so far.
func (m *PriorityMux) Transfers() uint64 { return m.transfers }

// ClassTransfers returns the beats moved for a priority class.
func (m *PriorityMux) ClassTransfers(class int) uint64 { return m.perClass[class] }

// Dropped returns the beats discarded by the gate's fault model.
func (m *PriorityMux) Dropped() uint64 { return m.dropped }

// Corrupted returns the beats damaged by the gate's fault model.
func (m *PriorityMux) Corrupted() uint64 { return m.corrupted }

func (m *PriorityMux) anyValid() bool {
	for _, in := range m.ins {
		if in.Len() > 0 {
			return true
		}
	}
	return false
}

func (m *PriorityMux) kick() {
	if m.armed || m.out.Space() == 0 || !m.anyValid() {
		return
	}
	t := m.k.Now()
	if m.busyUntil > t {
		t = m.busyUntil
	}
	t = m.gate.Next(t)
	m.armed = true
	m.k.AtH(t, m, 0)
}

// Handle implements sim.Handler for closure-free arming.
func (m *PriorityMux) Handle(uint64) { m.fire() }

func (m *PriorityMux) fire() {
	m.armed = false
	if m.out.Space() == 0 || !m.anyValid() {
		return
	}
	now := m.k.Now()
	if next := m.gate.Next(now); next > now {
		m.kick()
		return
	}
	for class, in := range m.ins {
		if in.Len() == 0 {
			continue
		}
		b, _ := in.Pop()
		m.gate.Commit(now)
		m.busyUntil = now.Add(m.cycle)
		m.transfers++
		m.perClass[class]++
		if f, ok := m.gate.(Faulter); ok {
			switch f.Fault(now, b) {
			case FaultDrop:
				m.dropped++
				m.kick()
				return
			case FaultCorrupt:
				m.corrupted++
				b.Corrupt = true
			}
		}
		m.out.Push(b)
		break
	}
	m.kick()
}
