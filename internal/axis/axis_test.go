package axis

import (
	"testing"
	"testing/quick"

	"thymesim/internal/sim"
)

func TestFIFOBasics(t *testing.T) {
	f := NewFIFO("q", 2)
	if f.Len() != 0 || f.Space() != 2 || f.Cap() != 2 {
		t.Fatal("fresh FIFO state wrong")
	}
	if !f.TryPush(Beat{Bytes: 10}) || !f.TryPush(Beat{Bytes: 20}) {
		t.Fatal("pushes failed")
	}
	if f.TryPush(Beat{}) {
		t.Fatal("push to full FIFO succeeded")
	}
	if f.Bytes() != 30 || f.Pushed() != 2 {
		t.Fatalf("bytes=%d pushed=%d", f.Bytes(), f.Pushed())
	}
	b, ok := f.Peek()
	if !ok || b.Bytes != 10 {
		t.Fatal("peek wrong")
	}
	b, ok = f.Pop()
	if !ok || b.Bytes != 10 {
		t.Fatal("pop wrong")
	}
	b, _ = f.Pop()
	if b.Bytes != 20 {
		t.Fatal("FIFO order violated")
	}
	if _, ok := f.Pop(); ok {
		t.Fatal("pop from empty succeeded")
	}
	if f.Popped() != 2 {
		t.Fatalf("popped=%d", f.Popped())
	}
}

func TestFIFOWrapAround(t *testing.T) {
	f := NewFIFO("q", 3)
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			f.Push(Beat{Dest: round*10 + i})
		}
		for i := 0; i < 3; i++ {
			b, ok := f.Pop()
			if !ok || b.Dest != round*10+i {
				t.Fatalf("round %d item %d: got %v", round, i, b.Dest)
			}
		}
	}
}

func TestFIFOCallbacks(t *testing.T) {
	f := NewFIFO("q", 1)
	data, space := 0, 0
	f.OnData(func() { data++ })
	f.OnSpace(func() { space++ })
	f.Push(Beat{})
	f.Pop()
	if data != 1 || space != 1 {
		t.Fatalf("callbacks data=%d space=%d", data, space)
	}
}

func TestFIFOPushFullPanics(t *testing.T) {
	f := NewFIFO("q", 1)
	f.Push(Beat{})
	defer func() {
		if recover() == nil {
			t.Error("Push to full FIFO did not panic")
		}
	}()
	f.Push(Beat{})
}

func TestPumpMovesAtCycleRate(t *testing.T) {
	k := sim.NewKernel()
	in := NewFIFO("in", 16)
	out := NewFIFO("out", 16)
	p := NewPump(k, in, out, 10*sim.Nanosecond, nil)
	k.At(0, func() {
		for i := 0; i < 5; i++ {
			in.Push(Beat{Dest: i, Born: k.Now()})
		}
	})
	end := k.Run()
	if p.Transfers() != 5 || out.Len() != 5 {
		t.Fatalf("transfers=%d outLen=%d", p.Transfers(), out.Len())
	}
	// First beat at t=0, one per 10ns after: last at 40ns.
	if end != sim.Time(40*sim.Nanosecond) {
		t.Fatalf("end = %v, want 40ns", end)
	}
}

func TestPumpBackpressure(t *testing.T) {
	k := sim.NewKernel()
	in := NewFIFO("in", 16)
	out := NewFIFO("out", 2)
	NewPump(k, in, out, sim.Nanosecond, nil)
	k.At(0, func() {
		for i := 0; i < 6; i++ {
			in.Push(Beat{Dest: i})
		}
	})
	k.Run()
	if out.Len() != 2 || in.Len() != 4 {
		t.Fatalf("backpressure failed: out=%d in=%d", out.Len(), in.Len())
	}
	// Drain one: pump must resume.
	k.At(k.Now()+1, func() { out.Pop() })
	k.Run()
	if out.Len() != 2 || in.Len() != 3 {
		t.Fatalf("resume failed: out=%d in=%d", out.Len(), in.Len())
	}
}

func TestPumpPreservesOrder(t *testing.T) {
	k := sim.NewKernel()
	in := NewFIFO("in", 64)
	mid := NewFIFO("mid", 4)
	out := NewFIFO("out", 64)
	NewPump(k, in, mid, 2*sim.Nanosecond, nil)
	NewPump(k, mid, out, 3*sim.Nanosecond, nil)
	k.At(0, func() {
		for i := 0; i < 30; i++ {
			in.Push(Beat{Dest: i})
		}
	})
	k.Run()
	if out.Len() != 30 {
		t.Fatalf("out = %d", out.Len())
	}
	for i := 0; i < 30; i++ {
		b, _ := out.Pop()
		if b.Dest != i {
			t.Fatalf("order violated at %d: %d", i, b.Dest)
		}
	}
}

func TestPumpOnForward(t *testing.T) {
	k := sim.NewKernel()
	in := NewFIFO("in", 4)
	out := NewFIFO("out", 4)
	p := NewPump(k, in, out, sim.Nanosecond, nil)
	var seen []int
	p.OnForward(func(b Beat) { seen = append(seen, b.Dest) })
	k.At(0, func() { in.Push(Beat{Dest: 7}) })
	k.Run()
	if len(seen) != 1 || seen[0] != 7 {
		t.Fatalf("seen = %v", seen)
	}
}

func TestMuxRoundRobinFairness(t *testing.T) {
	k := sim.NewKernel()
	a := NewFIFO("a", 100)
	b := NewFIFO("b", 100)
	out := NewFIFO("out", 1000)
	m := NewMux(k, []*FIFO{a, b}, out, sim.Nanosecond, nil)
	k.At(0, func() {
		for i := 0; i < 50; i++ {
			a.Push(Beat{Flow: 1})
			b.Push(Beat{Flow: 2})
		}
	})
	k.Run()
	if m.Transfers() != 100 {
		t.Fatalf("transfers = %d", m.Transfers())
	}
	if m.FlowTransfers(1) != 50 || m.FlowTransfers(2) != 50 {
		t.Fatalf("flow counts = %d/%d", m.FlowTransfers(1), m.FlowTransfers(2))
	}
	// Strict alternation when both inputs are backlogged.
	prev := -1
	same := 0
	for {
		beat, ok := out.Pop()
		if !ok {
			break
		}
		if beat.Flow == prev {
			same++
		}
		prev = beat.Flow
	}
	if same != 0 {
		t.Fatalf("mux not alternating: %d repeats", same)
	}
}

func TestMuxSingleActiveInput(t *testing.T) {
	k := sim.NewKernel()
	a := NewFIFO("a", 10)
	b := NewFIFO("b", 10)
	out := NewFIFO("out", 100)
	NewMux(k, []*FIFO{a, b}, out, sim.Nanosecond, nil)
	k.At(0, func() {
		for i := 0; i < 5; i++ {
			a.Push(Beat{Flow: 1, Dest: i})
		}
	})
	end := k.Run()
	if out.Len() != 5 {
		t.Fatalf("out = %d", out.Len())
	}
	// Full rate despite idle second input: 5 beats, 1/ns, first immediate.
	if end != sim.Time(4*sim.Nanosecond) {
		t.Fatalf("end = %v", end)
	}
}

func TestRouterRoutesByDest(t *testing.T) {
	k := sim.NewKernel()
	in := NewFIFO("in", 100)
	o1 := NewFIFO("o1", 100)
	o2 := NewFIFO("o2", 100)
	r := NewRouter(k, in, map[int]*FIFO{1: o1, 2: o2}, sim.Nanosecond, false)
	k.At(0, func() {
		in.Push(Beat{Dest: 1})
		in.Push(Beat{Dest: 2})
		in.Push(Beat{Dest: 1})
	})
	k.Run()
	if o1.Len() != 2 || o2.Len() != 1 {
		t.Fatalf("o1=%d o2=%d", o1.Len(), o2.Len())
	}
	if r.Transfers() != 3 {
		t.Fatalf("transfers=%d", r.Transfers())
	}
}

func TestRouterDropsUnroutable(t *testing.T) {
	k := sim.NewKernel()
	in := NewFIFO("in", 10)
	o1 := NewFIFO("o1", 10)
	r := NewRouter(k, in, map[int]*FIFO{1: o1}, sim.Nanosecond, true)
	k.At(0, func() {
		in.Push(Beat{Dest: 99})
		in.Push(Beat{Dest: 1})
	})
	k.Run()
	if r.Dropped() != 1 || o1.Len() != 1 {
		t.Fatalf("dropped=%d o1=%d", r.Dropped(), o1.Len())
	}
}

func TestRouterHeadOfLineBlocking(t *testing.T) {
	k := sim.NewKernel()
	in := NewFIFO("in", 10)
	o1 := NewFIFO("o1", 1)
	o2 := NewFIFO("o2", 10)
	NewRouter(k, in, map[int]*FIFO{1: o1, 2: o2}, sim.Nanosecond, false)
	k.At(0, func() {
		in.Push(Beat{Dest: 1})
		in.Push(Beat{Dest: 1}) // blocks on full o1
		in.Push(Beat{Dest: 2}) // behind the blocked head
	})
	k.Run()
	if o1.Len() != 1 || o2.Len() != 0 || in.Len() != 2 {
		t.Fatalf("HOL blocking violated: o1=%d o2=%d in=%d", o1.Len(), o2.Len(), in.Len())
	}
	k.At(k.Now(), func() { o1.Pop() })
	k.Run()
	if o2.Len() != 1 || in.Len() != 0 {
		t.Fatalf("did not resume after unblock: o2=%d in=%d", o2.Len(), in.Len())
	}
}

func TestProbe(t *testing.T) {
	k := sim.NewKernel()
	p := NewProbe(k)
	k.At(100, func() { p.Observe(Beat{Bytes: 64, Born: 0}) })
	k.At(200, func() { p.Observe(Beat{Bytes: 64, Born: 100}) })
	k.Run()
	if p.Beats() != 2 || p.Bytes() != 128 {
		t.Fatalf("beats=%d bytes=%d", p.Beats(), p.Bytes())
	}
	if p.MeanAge() != 100 {
		t.Fatalf("mean age = %v", p.MeanAge())
	}
	want := 128.0 / sim.Duration(100).Seconds()
	if got := p.ThroughputBps(); got != want {
		t.Fatalf("throughput = %v, want %v", got, want)
	}
}

// Property: no beats are lost or duplicated through a pump chain, and FIFO
// order is preserved, for arbitrary arrival patterns.
func TestPumpConservationProperty(t *testing.T) {
	f := func(arrivals []uint8) bool {
		k := sim.NewKernel()
		in := NewFIFO("in", 4096)
		mid := NewFIFO("mid", 2)
		out := NewFIFO("out", 4096)
		NewPump(k, in, mid, sim.Nanosecond, nil)
		NewPump(k, mid, out, 2*sim.Nanosecond, nil)
		for i, a := range arrivals {
			i, a := i, a
			k.At(sim.Time(a)*sim.Time(sim.Nanosecond), func() {
				in.Push(Beat{Dest: i})
			})
		}
		k.Run()
		if int(out.Len()) != len(arrivals) {
			return false
		}
		// Beats pushed at the same instant keep index order; across
		// different instants order follows time. Verify no dup/loss.
		seen := make(map[int]bool)
		for {
			b, ok := out.Pop()
			if !ok {
				break
			}
			if seen[b.Dest] {
				return false
			}
			seen[b.Dest] = true
		}
		return len(seen) == len(arrivals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
