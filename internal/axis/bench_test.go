package axis

import (
	"testing"

	"thymesim/internal/sim"
)

// BenchmarkPumpChain measures beats/second through a three-stage AXI
// pipeline — the unit of datapath simulation cost.
func BenchmarkPumpChain(b *testing.B) {
	k := sim.NewKernel()
	a := NewFIFO("a", 4096)
	m1 := NewFIFO("m1", 64)
	m2 := NewFIFO("m2", 64)
	out := NewFIFO("out", b.N+1)
	NewPump(k, a, m1, sim.Nanosecond, nil)
	NewPump(k, m1, m2, sim.Nanosecond, nil)
	NewPump(k, m2, out, sim.Nanosecond, nil)
	fed := 0
	var feed func()
	feed = func() {
		for a.Space() > 0 && fed < b.N {
			a.Push(Beat{Bytes: 64})
			fed++
		}
		if fed < b.N {
			k.After(sim.Microsecond, feed)
		}
	}
	k.At(0, feed)
	b.ResetTimer()
	k.Run()
	if int(out.Len()) != b.N {
		b.Fatalf("moved %d/%d", out.Len(), b.N)
	}
}

// BenchmarkFIFOPushPop measures the raw queue operations.
func BenchmarkFIFOPushPop(b *testing.B) {
	f := NewFIFO("f", 1024)
	beat := Beat{Bytes: 64}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Push(beat)
		f.Pop()
	}
}
