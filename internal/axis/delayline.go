package axis

import "thymesim/internal/sim"

// DelayLine moves beats from in to out after a fixed latency, preserving
// order and allowing arbitrary pipelining (every beat is in flight
// independently). It models the fixed traversal latency of a multi-stage
// FPGA pipeline without simulating each stage. Backpressure: beats are
// launched only when output space, net of in-flight beats, is available.
type DelayLine struct {
	k        *sim.Kernel
	in, out  *FIFO
	delay    sim.Duration
	inflight int
	moved    uint64
}

// NewDelayLine wires a fixed-latency stage between in and out.
func NewDelayLine(k *sim.Kernel, in, out *FIFO, delay sim.Duration) *DelayLine {
	if delay < 0 {
		panic("axis: negative delay line")
	}
	d := &DelayLine{k: k, in: in, out: out, delay: delay}
	in.OnData(d.kick)
	out.OnSpace(d.kick)
	return d
}

// Moved returns the number of beats delivered so far.
func (d *DelayLine) Moved() uint64 { return d.moved }

func (d *DelayLine) kick() {
	for d.in.Len() > 0 && d.out.Space()-d.inflight > 0 {
		b, _ := d.in.Pop()
		d.inflight++
		d.k.After(d.delay, func() {
			d.inflight--
			d.moved++
			d.out.Push(b)
		})
	}
}
