package axis

import "thymesim/internal/sim"

// DelayLine moves beats from in to out after a fixed latency, preserving
// order and allowing arbitrary pipelining (every beat is in flight
// independently). It models the fixed traversal latency of a multi-stage
// FPGA pipeline without simulating each stage. Backpressure: beats are
// launched only when output space, net of in-flight beats, is available.
type DelayLine struct {
	k        *sim.Kernel
	in, out  *FIFO
	delay    sim.Duration
	inflight int
	moved    uint64
	// free is an intrusive free list of flight contexts; each in-flight
	// beat borrows one and returns it on delivery, so a warmed-up line
	// schedules without allocating.
	free *flight
}

// flight carries one in-transit beat through the kernel schedule. It is
// the DelayLine's pooled continuation: the beat payload rides in the
// struct instead of a captured closure variable.
type flight struct {
	d    *DelayLine
	b    Beat
	next *flight
}

// Handle implements sim.Handler: the beat arrives at the output and the
// context returns to the pool.
func (f *flight) Handle(uint64) {
	d := f.d
	d.inflight--
	d.moved++
	b := f.b
	f.b = Beat{} // drop payload refs before pooling
	f.next = d.free
	d.free = f
	d.out.Push(b)
}

// NewDelayLine wires a fixed-latency stage between in and out.
func NewDelayLine(k *sim.Kernel, in, out *FIFO, delay sim.Duration) *DelayLine {
	if delay < 0 {
		panic("axis: negative delay line")
	}
	d := &DelayLine{k: k, in: in, out: out, delay: delay}
	in.OnData(d.kick)
	out.OnSpace(d.kick)
	return d
}

// Moved returns the number of beats delivered so far.
func (d *DelayLine) Moved() uint64 { return d.moved }

func (d *DelayLine) kick() {
	for d.in.Len() > 0 && d.out.Space()-d.inflight > 0 {
		b, _ := d.in.Pop()
		d.inflight++
		f := d.free
		if f == nil {
			f = &flight{d: d}
		} else {
			d.free = f.next
			f.next = nil
		}
		f.b = b
		d.k.AfterH(d.delay, f, 0)
	}
}
