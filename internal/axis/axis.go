// Package axis models AXI4-Stream interconnect at transaction granularity.
//
// The ThymesisFlow FPGA design wires its internal blocks (routing,
// multiplexing, serialization) with AXI4-Stream channels, whose two-way
// VALID/READY handshake is the exact mechanism the paper's delay injector
// subverts (Eq. 1: READY_NEW = READY_OLD && (COUNTER % PERIOD == 0)).
//
// Rather than simulating every clock edge, this package models the
// handshake event-wise: a FIFO is VALID while non-empty and READY while it
// has space; Pumps move beats between FIFOs subject to a per-transfer cycle
// time and an optional Gate that restricts the instants at which a transfer
// may proceed. A Gate aligned to a PERIOD-cycle grid reproduces the
// injector's behaviour exactly at the transfer level while remaining fast
// enough to push hundreds of millions of simulated bytes.
package axis

import (
	"fmt"

	"thymesim/internal/sim"
)

// Beat is one AXI4-Stream transfer: a data word (here: up to a full
// transaction's flits collapsed into one beat of Bytes bytes on the wire)
// plus routing metadata.
type Beat struct {
	Bytes int      // wire size, used for link serialization downstream
	Last  bool     // TLAST: end of packet
	Dest  int      // TDEST: routing key
	Flow  int      // source identifier for fairness accounting
	Born  sim.Time // when the beat entered the pipeline (for latency probes)
	Meta  any      // carried transaction (e.g. *ocapi.Packet)
	// Corrupt marks a beat damaged in flight (bit errors on the wire or in
	// the FPGA datapath). The payload still occupies its full wire size;
	// receivers detect the damage via CRC and must not trust the contents.
	Corrupt bool
}

// FIFO is a bounded queue of beats. VALID corresponds to Len() > 0 and
// READY to Space() > 0. onData fires after each Push and onSpace after each
// Pop; consumers/producers attach idempotent kick functions at wiring time.
//
// The backing ring is sized lazily: capacity is the handshake bound
// (Space/Cap report against it), but the buffer only grows — by doubling,
// up to capacity — when occupancy demands. Deep queues that back-pressure
// long before they fill (the common case in wide fan-in topologies) then
// cost no memory for their unreached headroom, which keeps testbed
// construction off the large-allocation path.
type FIFO struct {
	name     string
	buf      []Beat
	capacity int
	head     int
	count    int
	onData   []func()
	onSpace  []func()
	onPush   func(Beat)

	pushed uint64
	popped uint64
	bytes  uint64
}

// fifoInitialCap bounds the first ring allocation; rings smaller than this
// are allocated at full capacity up front.
const fifoInitialCap = 64

// NewFIFO returns a FIFO with the given capacity (entries, not bytes).
func NewFIFO(name string, capacity int) *FIFO {
	if capacity <= 0 {
		panic("axis: FIFO capacity must be positive")
	}
	return &FIFO{name: name, capacity: capacity}
}

// Name returns the FIFO's wiring label.
func (f *FIFO) Name() string { return f.name }

// Cap returns the capacity in beats.
func (f *FIFO) Cap() int { return f.capacity }

// Len returns the number of queued beats (VALID when > 0).
func (f *FIFO) Len() int { return f.count }

// Space returns the free entries (READY when > 0).
func (f *FIFO) Space() int { return f.capacity - f.count }

// Pushed returns the cumulative number of beats accepted.
func (f *FIFO) Pushed() uint64 { return f.pushed }

// Popped returns the cumulative number of beats removed.
func (f *FIFO) Popped() uint64 { return f.popped }

// Bytes returns the cumulative wire bytes accepted.
func (f *FIFO) Bytes() uint64 { return f.bytes }

// OnData registers fn to run after every Push. Registration order is
// preserved.
func (f *FIFO) OnData(fn func()) { f.onData = append(f.onData, fn) }

// OnSpace registers fn to run after every Pop.
func (f *FIFO) OnSpace(fn func()) { f.onSpace = append(f.onSpace, fn) }

// OnPush registers the per-beat push observer: unlike OnData it receives
// the accepted beat, which observability taps need to attribute queue
// residency to a transaction. A single observer keeps the untraced fast
// path to one nil check; wire a fan-out closure for more.
func (f *FIFO) OnPush(fn func(Beat)) {
	if f.onPush != nil {
		panic(fmt.Sprintf("axis: second push observer on FIFO %q", f.name))
	}
	f.onPush = fn
}

// TryPush appends b and reports success; it fails when the FIFO is full.
func (f *FIFO) TryPush(b Beat) bool {
	if f.count == f.capacity {
		return false
	}
	if f.count == len(f.buf) {
		f.grow()
	}
	f.buf[(f.head+f.count)%len(f.buf)] = b
	f.count++
	f.pushed++
	f.bytes += uint64(b.Bytes)
	if f.onPush != nil {
		f.onPush(b)
	}
	for _, fn := range f.onData {
		fn()
	}
	return true
}

// grow doubles the ring (unwrapping it into the new buffer) up to the
// capacity bound. Called only when the ring is full but capacity remains.
func (f *FIFO) grow() {
	n := len(f.buf) * 2
	if n < fifoInitialCap {
		n = fifoInitialCap
	}
	if n > f.capacity {
		n = f.capacity
	}
	nb := make([]Beat, n)
	m := copy(nb, f.buf[f.head:])
	copy(nb[m:], f.buf[:f.head])
	f.buf, f.head = nb, 0
}

// Push appends b and panics on overflow; use it where the producer has
// already checked Space (protocol bugs should fail loudly).
func (f *FIFO) Push(b Beat) {
	if !f.TryPush(b) {
		panic(fmt.Sprintf("axis: push to full FIFO %q", f.name))
	}
}

// Peek returns the head beat without removing it; ok is false when empty.
func (f *FIFO) Peek() (Beat, bool) {
	if f.count == 0 {
		return Beat{}, false
	}
	return f.buf[f.head], true
}

// Pop removes and returns the head beat; ok is false when empty.
func (f *FIFO) Pop() (Beat, bool) {
	if f.count == 0 {
		return Beat{}, false
	}
	b := f.buf[f.head]
	f.buf[f.head] = Beat{}
	f.head = (f.head + 1) % len(f.buf)
	f.count--
	f.popped++
	for _, fn := range f.onSpace {
		fn()
	}
	return b, true
}

// Gate restricts the instants at which a Pump may perform a transfer. Next
// must be monotone, pure (no state change), and idempotent —
// Next(Next(t)) == Next(t) — or pumps will re-arm forever chasing a
// receding release instant; Commit records that a transfer happened at t.
type Gate interface {
	// Next returns the earliest instant >= now at which one transfer may
	// proceed.
	Next(now sim.Time) sim.Time
	// Commit informs the gate that a transfer occurred at t.
	Commit(t sim.Time)
}

// PassGate is the no-op gate: always ready.
type PassGate struct{}

// Next returns now.
func (PassGate) Next(now sim.Time) sim.Time { return now }

// Commit does nothing.
func (PassGate) Commit(sim.Time) {}

// FaultAction is a faulty link's verdict on one admitted transfer.
type FaultAction int

// Fault verdicts, in increasing severity. When several fault models stack,
// the most severe verdict wins.
const (
	// FaultNone passes the beat through untouched.
	FaultNone FaultAction = iota
	// FaultCorrupt forwards the beat with Corrupt set (CRC failure at the
	// receiver).
	FaultCorrupt
	// FaultDrop silently discards the beat; it still consumed its transfer
	// slot and link time up to the fault point.
	FaultDrop
)

// Faulter is an optional Gate extension for link-fault injection. After the
// timing handshake admits a transfer (Next returned now and the beat is
// about to move), the pump asks the gate what the faulty link does to it.
// Fault is called exactly once per transfer, immediately after Commit, so
// implementations may consume randomness.
type Faulter interface {
	Fault(t sim.Time, b Beat) FaultAction
}
