package axis

import (
	"thymesim/internal/sim"
)

// Pump moves beats from one FIFO to another, one beat per Cycle at most,
// optionally gated. It models a pipeline stage of the FPGA datapath: the
// stage asserts READY toward its input whenever its output has space, the
// gate permits, and the stage is not mid-transfer.
type Pump struct {
	k         *sim.Kernel
	in, out   *FIFO
	cycle     sim.Duration
	gate      Gate
	busyUntil sim.Time
	armed     bool

	transfers uint64
	dropped   uint64
	corrupted uint64
	// onForward, if set, observes each beat as it moves (monitor taps).
	onForward func(Beat)
}

// NewPump wires a pump between in and out. cycle is the minimum interval
// between transfers (use the FPGA clock period for full-rate stages); gate
// may be nil for an ungated stage. The pump registers itself for data/space
// notifications.
func NewPump(k *sim.Kernel, in, out *FIFO, cycle sim.Duration, gate Gate) *Pump {
	if cycle < 0 {
		panic("axis: negative pump cycle")
	}
	if gate == nil {
		gate = PassGate{}
	}
	p := &Pump{k: k, in: in, out: out, cycle: cycle, gate: gate}
	in.OnData(p.kick)
	out.OnSpace(p.kick)
	return p
}

// Transfers returns the number of beats moved so far.
func (p *Pump) Transfers() uint64 { return p.transfers }

// Dropped returns the number of beats discarded by the gate's fault model.
func (p *Pump) Dropped() uint64 { return p.dropped }

// Corrupted returns the number of beats damaged by the gate's fault model.
func (p *Pump) Corrupted() uint64 { return p.corrupted }

// OnForward registers an observer invoked for every transferred beat.
func (p *Pump) OnForward(fn func(Beat)) { p.onForward = fn }

// kick arms the pump if a transfer could proceed. It is idempotent.
func (p *Pump) kick() {
	if p.armed || p.in.Len() == 0 || p.out.Space() == 0 {
		return
	}
	now := p.k.Now()
	t := now
	if p.busyUntil > t {
		t = p.busyUntil
	}
	t = p.gate.Next(t)
	p.armed = true
	p.k.AtH(t, p, 0)
}

// Handle implements sim.Handler so arming the pump does not allocate a
// method-value closure per transfer.
func (p *Pump) Handle(uint64) { p.fire() }

// fire performs one transfer if the handshake still holds, then re-arms.
func (p *Pump) fire() {
	p.armed = false
	if p.in.Len() == 0 || p.out.Space() == 0 {
		return // conditions changed while armed; kicks will rearm
	}
	now := p.k.Now()
	// The gate may have moved on (another pump sharing it committed a
	// transfer in our slot); if so, re-arm for the new instant.
	if next := p.gate.Next(now); next > now {
		p.kick()
		return
	}
	b, _ := p.in.Pop()
	p.gate.Commit(now)
	p.busyUntil = now.Add(p.cycle)
	p.transfers++
	if f, ok := p.gate.(Faulter); ok {
		switch f.Fault(now, b) {
		case FaultDrop:
			p.dropped++
			p.kick()
			return
		case FaultCorrupt:
			p.corrupted++
			b.Corrupt = true
		}
	}
	if p.onForward != nil {
		p.onForward(b)
	}
	p.out.Push(b)
	p.kick()
}

// Mux arbitrates N input FIFOs onto one output FIFO with round-robin
// fairness, one beat per Cycle. It models the ThymesisFlow egress
// multiplexer downstream of the delay-injection point.
type Mux struct {
	k         *sim.Kernel
	ins       []*FIFO
	out       *FIFO
	cycle     sim.Duration
	gate      Gate
	rr        int
	busyUntil sim.Time
	armed     bool
	transfers uint64
	perFlow   map[int]uint64
}

// NewMux wires a round-robin multiplexer. gate may be nil.
func NewMux(k *sim.Kernel, ins []*FIFO, out *FIFO, cycle sim.Duration, gate Gate) *Mux {
	if len(ins) == 0 {
		panic("axis: Mux needs at least one input")
	}
	if gate == nil {
		gate = PassGate{}
	}
	m := &Mux{k: k, ins: ins, out: out, cycle: cycle, gate: gate, perFlow: make(map[int]uint64)}
	for _, in := range ins {
		in.OnData(m.kick)
	}
	out.OnSpace(m.kick)
	return m
}

// Transfers returns the number of beats moved so far.
func (m *Mux) Transfers() uint64 { return m.transfers }

// FlowTransfers returns beats moved for a given Beat.Flow value.
func (m *Mux) FlowTransfers(flow int) uint64 { return m.perFlow[flow] }

func (m *Mux) anyValid() bool {
	for _, in := range m.ins {
		if in.Len() > 0 {
			return true
		}
	}
	return false
}

func (m *Mux) kick() {
	if m.armed || m.out.Space() == 0 || !m.anyValid() {
		return
	}
	t := m.k.Now()
	if m.busyUntil > t {
		t = m.busyUntil
	}
	t = m.gate.Next(t)
	m.armed = true
	m.k.AtH(t, m, 0)
}

// Handle implements sim.Handler for closure-free arming.
func (m *Mux) Handle(uint64) { m.fire() }

func (m *Mux) fire() {
	m.armed = false
	if m.out.Space() == 0 || !m.anyValid() {
		return
	}
	now := m.k.Now()
	if next := m.gate.Next(now); next > now {
		m.kick()
		return
	}
	// Round-robin: start after the last-served input.
	n := len(m.ins)
	for i := 1; i <= n; i++ {
		idx := (m.rr + i) % n
		if m.ins[idx].Len() > 0 {
			b, _ := m.ins[idx].Pop()
			m.rr = idx
			m.gate.Commit(now)
			m.busyUntil = now.Add(m.cycle)
			m.transfers++
			m.perFlow[b.Flow]++
			m.out.Push(b)
			break
		}
	}
	m.kick()
}

// Router demultiplexes one input FIFO onto N outputs keyed by Beat.Dest,
// one beat per Cycle. It models the ThymesisFlow routing block upstream of
// the delay-injection point.
type Router struct {
	k         *sim.Kernel
	in        *FIFO
	outs      map[int]*FIFO
	cycle     sim.Duration
	busyUntil sim.Time
	armed     bool
	transfers uint64
	dropped   uint64
	dropNoWay bool
}

// NewRouter wires a router. If dropUnroutable is true, beats with a Dest
// not present in outs are discarded (counted); otherwise they panic.
func NewRouter(k *sim.Kernel, in *FIFO, outs map[int]*FIFO, cycle sim.Duration, dropUnroutable bool) *Router {
	r := &Router{k: k, in: in, outs: outs, cycle: cycle, dropNoWay: dropUnroutable}
	in.OnData(r.kick)
	for _, out := range outs {
		out.OnSpace(r.kick)
	}
	return r
}

// Transfers returns the number of beats routed so far.
func (r *Router) Transfers() uint64 { return r.transfers }

// Dropped returns the number of unroutable beats discarded.
func (r *Router) Dropped() uint64 { return r.dropped }

func (r *Router) kick() {
	if r.armed || r.in.Len() == 0 {
		return
	}
	head, _ := r.in.Peek()
	out, ok := r.outs[head.Dest]
	if ok && out.Space() == 0 {
		return // head-of-line blocked; out's OnSpace will kick us
	}
	t := r.k.Now()
	if r.busyUntil > t {
		t = r.busyUntil
	}
	r.armed = true
	r.k.AtH(t, r, 0)
}

// Handle implements sim.Handler for closure-free arming.
func (r *Router) Handle(uint64) { r.fire() }

func (r *Router) fire() {
	r.armed = false
	if r.in.Len() == 0 {
		return
	}
	head, _ := r.in.Peek()
	out, ok := r.outs[head.Dest]
	if !ok {
		if !r.dropNoWay {
			panic("axis: unroutable beat")
		}
		r.in.Pop()
		r.dropped++
		r.kick()
		return
	}
	if out.Space() == 0 {
		return
	}
	b, _ := r.in.Pop()
	r.busyUntil = r.k.Now().Add(r.cycle)
	r.transfers++
	out.Push(b)
	r.kick()
}

// Probe measures the latency of beats between two pipeline points using
// Beat.Born timestamps, and throughput at its observation point.
type Probe struct {
	k       *sim.Kernel
	beats   uint64
	bytes   uint64
	firstAt sim.Time
	lastAt  sim.Time
	ageSum  sim.Duration
}

// NewProbe returns a probe bound to kernel k.
func NewProbe(k *sim.Kernel) *Probe { return &Probe{k: k} }

// Observe records the passage of b at the current instant.
func (p *Probe) Observe(b Beat) {
	now := p.k.Now()
	if p.beats == 0 {
		p.firstAt = now
	}
	p.lastAt = now
	p.beats++
	p.bytes += uint64(b.Bytes)
	p.ageSum += now.Sub(b.Born)
}

// Beats returns the number of observations.
func (p *Probe) Beats() uint64 { return p.beats }

// Bytes returns the cumulative observed wire bytes.
func (p *Probe) Bytes() uint64 { return p.bytes }

// MeanAge returns the mean Born-to-observation latency.
func (p *Probe) MeanAge() sim.Duration {
	if p.beats == 0 {
		return 0
	}
	return p.ageSum / sim.Duration(p.beats)
}

// ThroughputBps returns observed bytes/second between first and last
// observation (0 with fewer than 2 beats).
func (p *Probe) ThroughputBps() float64 {
	if p.beats < 2 || p.lastAt == p.firstAt {
		return 0
	}
	return float64(p.bytes) / p.lastAt.Sub(p.firstAt).Seconds()
}
