// Package ocapi models the cache-coherent interconnect protocol that
// carries borrower cache misses to the disaggregated-memory NIC and across
// the network, in the style of OpenCAPI (the protocol ThymesisFlow uses on
// POWER9). Remote memory is accessed in cache-line-sized blocks; each
// command carries a tag for out-of-order completion, and commands are
// encapsulated with a network header for transmission (§II-A of the paper).
package ocapi

import (
	"encoding/binary"
	"errors"
	"fmt"

	"thymesim/internal/sim"
)

// CacheLineSize is the POWER9 cache-line size in bytes; all remote memory
// transfers are multiples of it.
const CacheLineSize = 128

// Wire-format overheads, in bytes. A command or response is encapsulated
// into a network packet with destination address, checksum, etc. (Fig. 1).
const (
	HeaderBytes = 30 // network encapsulation: addressing, checksum, flags
	CmdBytes    = 16 // OpenCAPI command: opcode, tag, address, size
)

// Op identifies a protocol operation.
type Op uint8

// Protocol operations.
const (
	OpInvalid    Op = iota
	OpReadBlock     // read one cache line from remote memory
	OpWriteBlock    // write one cache line to remote memory
	OpReadResp      // data response to OpReadBlock
	OpWriteAck      // completion response to OpWriteBlock
	OpProbe         // control-plane liveness/config probe (FPGA detection)
	OpProbeResp     // response to OpProbe
	OpNack          // lender rejection of a damaged request (CRC failure)
)

var opNames = map[Op]string{
	OpInvalid:    "invalid",
	OpReadBlock:  "read_block",
	OpWriteBlock: "write_block",
	OpReadResp:   "read_resp",
	OpWriteAck:   "write_ack",
	OpProbe:      "probe",
	OpProbeResp:  "probe_resp",
	OpNack:       "nack",
}

// String implements fmt.Stringer.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsRequest reports whether the operation originates at the borrower.
func (o Op) IsRequest() bool {
	return o == OpReadBlock || o == OpWriteBlock || o == OpProbe
}

// IsResponse reports whether the operation is a lender-side reply.
func (o Op) IsResponse() bool {
	return o == OpReadResp || o == OpWriteAck || o == OpProbeResp || o == OpNack
}

// Packet is one protocol message. Data payloads are modelled by size, not
// content: workload data lives in real Go memory at the workload layer and
// only timing flows through the datapath.
type Packet struct {
	Op     Op
	Tag    uint32   // transaction tag for out-of-order completion
	Addr   uint64   // borrower-side physical address
	Size   uint32   // payload bytes (CacheLineSize for block ops)
	Src    uint16   // source node id
	Dst    uint16   // destination node id
	Issued sim.Time // when the command entered the NIC (latency accounting)
	// Prio is the QoS class for egress scheduling: 0 is the highest
	// priority. It only affects requests (responses bypass the injector).
	Prio uint8
	// Seq is the ARQ attempt number for this transmission of the tag: 0 on
	// first send, incremented per retransmission. Responses echo it so the
	// sender can discard replies to superseded attempts.
	Seq uint16
	// Corrupt marks a packet damaged on the wire (CRC failure at the
	// receiver). The payload sizes stay intact in this timing model; the
	// flag is what the lender's CRC check observes.
	Corrupt bool
	// Poison marks a response whose data must not be consumed: the lender
	// nacked the request or the ARQ layer exhausted its retries and
	// completed the transaction as dead.
	Poison bool
	// Trace carries the observability span id of the transaction this
	// packet belongs to (0 = untraced). Simulation metadata only — it is
	// never encoded on the wire — but it rides through retransmissions and
	// into responses so the span tracer can stitch per-stage timings
	// across the full datapath.
	Trace uint64
}

// Validate checks protocol invariants.
func (p *Packet) Validate() error {
	switch p.Op {
	case OpReadBlock, OpWriteBlock:
		if p.Size != CacheLineSize {
			return fmt.Errorf("ocapi: %v size %d, want cache line %d", p.Op, p.Size, CacheLineSize)
		}
		if p.Addr%CacheLineSize != 0 {
			return fmt.Errorf("ocapi: %v address %#x not line-aligned", p.Op, p.Addr)
		}
	case OpReadResp:
		if p.Size != CacheLineSize {
			return fmt.Errorf("ocapi: read_resp size %d", p.Size)
		}
	case OpWriteAck, OpProbe, OpProbeResp:
		if p.Size != 0 {
			return fmt.Errorf("ocapi: %v carries unexpected payload %d", p.Op, p.Size)
		}
	case OpNack:
		if p.Size != 0 {
			return fmt.Errorf("ocapi: nack carries unexpected payload %d", p.Size)
		}
		if !p.Poison {
			return fmt.Errorf("ocapi: nack must be poisoned")
		}
	default:
		return fmt.Errorf("ocapi: invalid op %v", p.Op)
	}
	if p.Poison && !p.Op.IsResponse() {
		return fmt.Errorf("ocapi: poison on non-response %v", p.Op)
	}
	return nil
}

// WireBytes returns the packet's size on the network under the default
// (OpenCAPI-over-Ethernet) profile.
func (p *Packet) WireBytes() int { return DefaultProfile.WireBytes(p) }

// Profile describes an interconnect's per-packet overheads. The paper's
// §V discussion contrasts ThymesisFlow's OpenCAPI-over-Ethernet framing
// with CXL's native switched fabric; profiles make that overhead a
// first-class parameter.
type Profile struct {
	// Name labels the profile in reports.
	Name string
	// Header is the network encapsulation per packet (addressing,
	// checksum, flags).
	Header int
	// Cmd is the protocol command/response framing per packet.
	Cmd int
}

// DefaultProfile is ThymesisFlow's OpenCAPI-over-Ethernet framing.
var DefaultProfile = Profile{Name: "opencapi-ethernet", Header: HeaderBytes, Cmd: CmdBytes}

// CXLProfile approximates CXL's native flit framing: no Ethernet
// encapsulation, 68B flits with ~6B of slotting/CRC overhead per message.
var CXLProfile = Profile{Name: "cxl-native", Header: 6, Cmd: 10}

// WireBytes returns a packet's size on the wire under this profile.
func (pr Profile) WireBytes(p *Packet) int {
	n := pr.Header + pr.Cmd
	switch p.Op {
	case OpWriteBlock, OpReadResp:
		n += int(p.Size)
	}
	return n
}

// Response constructs the reply packet for a request, swapping direction
// and preserving the tag, attempt sequence, and issue timestamp.
func (p *Packet) Response() Packet {
	r := Packet{Tag: p.Tag, Addr: p.Addr, Src: p.Dst, Dst: p.Src, Issued: p.Issued, Prio: p.Prio, Seq: p.Seq, Trace: p.Trace}
	switch p.Op {
	case OpReadBlock:
		r.Op = OpReadResp
		r.Size = CacheLineSize
	case OpWriteBlock:
		r.Op = OpWriteAck
	case OpProbe:
		r.Op = OpProbeResp
	default:
		panic(fmt.Sprintf("ocapi: Response of non-request %v", p.Op))
	}
	return r
}

// Nack constructs the lender's rejection of a damaged request: a poisoned,
// payload-free reply echoing the tag and attempt sequence so the sender's
// ARQ layer can retransmit the right attempt.
func (p *Packet) Nack() Packet {
	if !p.Op.IsRequest() {
		panic(fmt.Sprintf("ocapi: Nack of non-request %v", p.Op))
	}
	return Packet{
		Op: OpNack, Tag: p.Tag, Addr: p.Addr,
		Src: p.Dst, Dst: p.Src,
		Issued: p.Issued, Prio: p.Prio, Seq: p.Seq,
		Poison: true, Trace: p.Trace,
	}
}

// RespondInPlace mutates a request packet into its reply, swapping
// direction and preserving tag, attempt sequence, issue timestamp, and
// trace id. It is the allocation-free sibling of Response, used on the
// pooled wire path where the same *Packet object rides the Beat back to
// the requester. A corrupt request's flag is cleared: the reply is a
// fresh transmission.
func (p *Packet) RespondInPlace() {
	switch p.Op {
	case OpReadBlock:
		p.Op = OpReadResp
		p.Size = CacheLineSize
	case OpWriteBlock:
		p.Op = OpWriteAck
		p.Size = 0
	case OpProbe:
		p.Op = OpProbeResp
		p.Size = 0
	default:
		panic(fmt.Sprintf("ocapi: RespondInPlace of non-request %v", p.Op))
	}
	p.Src, p.Dst = p.Dst, p.Src
	p.Corrupt = false
	p.Poison = false
}

// NackInPlace mutates a damaged request into the lender's poisoned,
// payload-free rejection, the allocation-free sibling of Nack.
func (p *Packet) NackInPlace() {
	if !p.Op.IsRequest() {
		panic(fmt.Sprintf("ocapi: NackInPlace of non-request %v", p.Op))
	}
	p.Op = OpNack
	p.Size = 0
	p.Src, p.Dst = p.Dst, p.Src
	p.Corrupt = false
	p.Poison = true
}

// PacketPool is a free list of wire Packet objects for the pooled
// datapath: a NIC borrows one per transmission, the far side mutates it in
// place into the response, and the originator frees it on delivery. It is
// single-threaded like everything else attached to a kernel.
type PacketPool struct {
	free []*Packet
}

// Get returns a zeroed *Packet, reusing a freed one when available.
func (pp *PacketPool) Get() *Packet {
	if n := len(pp.free); n > 0 {
		p := pp.free[n-1]
		pp.free[n-1] = nil
		pp.free = pp.free[:n-1]
		*p = Packet{}
		return p
	}
	return new(Packet)
}

// Put returns a packet to the pool. Putting nil is a no-op. The caller
// must not retain p afterwards: the next Get may hand it out again.
func (pp *PacketPool) Put(p *Packet) {
	if p == nil {
		return
	}
	pp.free = append(pp.free, p)
}

// encodedLen is the fixed marshalled header length (payload is size-only):
// op, tag, addr, size, src, dst, issued, prio, seq, flags.
const encodedLen = 1 + 4 + 8 + 4 + 2 + 2 + 8 + 1 + 2 + 1

// Flag bits in the marshalled flags byte.
const (
	flagCorrupt = 1 << 0
	flagPoison  = 1 << 1
)

// ErrShortBuffer reports a truncated encoding.
var ErrShortBuffer = errors.New("ocapi: short buffer")

// MarshalBinary encodes the packet header (big-endian, fixed layout).
func (p *Packet) MarshalBinary() ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	buf := make([]byte, encodedLen)
	buf[0] = byte(p.Op)
	binary.BigEndian.PutUint32(buf[1:], p.Tag)
	binary.BigEndian.PutUint64(buf[5:], p.Addr)
	binary.BigEndian.PutUint32(buf[13:], p.Size)
	binary.BigEndian.PutUint16(buf[17:], p.Src)
	binary.BigEndian.PutUint16(buf[19:], p.Dst)
	binary.BigEndian.PutUint64(buf[21:], uint64(p.Issued))
	buf[29] = p.Prio
	binary.BigEndian.PutUint16(buf[30:], p.Seq)
	var flags byte
	if p.Corrupt {
		flags |= flagCorrupt
	}
	if p.Poison {
		flags |= flagPoison
	}
	buf[32] = flags
	return buf, nil
}

// UnmarshalBinary decodes a packet header produced by MarshalBinary.
func (p *Packet) UnmarshalBinary(buf []byte) error {
	if len(buf) < encodedLen {
		return ErrShortBuffer
	}
	p.Op = Op(buf[0])
	p.Tag = binary.BigEndian.Uint32(buf[1:])
	p.Addr = binary.BigEndian.Uint64(buf[5:])
	p.Size = binary.BigEndian.Uint32(buf[13:])
	p.Src = binary.BigEndian.Uint16(buf[17:])
	p.Dst = binary.BigEndian.Uint16(buf[19:])
	p.Issued = sim.Time(binary.BigEndian.Uint64(buf[21:]))
	p.Prio = buf[29]
	p.Seq = binary.BigEndian.Uint16(buf[30:])
	p.Corrupt = buf[32]&flagCorrupt != 0
	p.Poison = buf[32]&flagPoison != 0
	return p.Validate()
}

// TagAllocator hands out transaction tags from a bounded space, mirroring
// the AFU tag pool that bounds outstanding OpenCAPI commands.
type TagAllocator struct {
	free []uint32
	out  map[uint32]bool
}

// NewTagAllocator returns an allocator with n tags (0..n-1).
func NewTagAllocator(n int) *TagAllocator {
	if n <= 0 {
		panic("ocapi: tag space must be positive")
	}
	a := &TagAllocator{out: make(map[uint32]bool, n)}
	for i := n - 1; i >= 0; i-- {
		a.free = append(a.free, uint32(i))
	}
	return a
}

// Alloc takes a free tag; ok is false when the space is exhausted.
func (a *TagAllocator) Alloc() (uint32, bool) {
	if len(a.free) == 0 {
		return 0, false
	}
	t := a.free[len(a.free)-1]
	a.free = a.free[:len(a.free)-1]
	a.out[t] = true
	return t, true
}

// Release returns a tag; releasing a tag not outstanding panics (protocol
// corruption).
func (a *TagAllocator) Release(tag uint32) {
	if !a.out[tag] {
		panic(fmt.Sprintf("ocapi: release of non-outstanding tag %d", tag))
	}
	delete(a.out, tag)
	a.free = append(a.free, tag)
}

// Outstanding returns the number of tags in flight.
func (a *TagAllocator) Outstanding() int { return len(a.out) }

// LineAlign rounds addr down to a cache-line boundary.
func LineAlign(addr uint64) uint64 { return addr &^ uint64(CacheLineSize-1) }

// LinesCovering returns how many cache lines the byte range [addr,
// addr+size) touches.
func LinesCovering(addr uint64, size int) int {
	if size <= 0 {
		return 0
	}
	first := LineAlign(addr)
	last := LineAlign(addr + uint64(size) - 1)
	return int((last-first)/CacheLineSize) + 1
}
