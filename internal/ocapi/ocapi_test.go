package ocapi

import (
	"testing"
	"testing/quick"
)

func TestPacketValidate(t *testing.T) {
	good := Packet{Op: OpReadBlock, Addr: 0x1000, Size: CacheLineSize}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid packet rejected: %v", err)
	}
	cases := []Packet{
		{Op: OpReadBlock, Addr: 0x1001, Size: CacheLineSize}, // misaligned
		{Op: OpReadBlock, Addr: 0x1000, Size: 64},            // wrong size
		{Op: OpWriteAck, Size: 8},                            // ack with payload
		{Op: OpProbe, Size: 1},                               // probe with payload
		{Op: OpInvalid},
		{Op: Op(200)},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid packet accepted: %+v", i, p)
		}
	}
}

func TestPacketWireBytes(t *testing.T) {
	read := Packet{Op: OpReadBlock, Addr: 0, Size: CacheLineSize}
	if got := read.WireBytes(); got != HeaderBytes+CmdBytes {
		t.Errorf("read wire = %d", got)
	}
	write := Packet{Op: OpWriteBlock, Addr: 0, Size: CacheLineSize}
	if got := write.WireBytes(); got != HeaderBytes+CmdBytes+CacheLineSize {
		t.Errorf("write wire = %d", got)
	}
	resp := Packet{Op: OpReadResp, Size: CacheLineSize}
	if got := resp.WireBytes(); got != HeaderBytes+CmdBytes+CacheLineSize {
		t.Errorf("resp wire = %d", got)
	}
	ack := Packet{Op: OpWriteAck}
	if got := ack.WireBytes(); got != HeaderBytes+CmdBytes {
		t.Errorf("ack wire = %d", got)
	}
}

func TestPacketResponse(t *testing.T) {
	req := Packet{Op: OpReadBlock, Tag: 7, Addr: 0x2000, Size: CacheLineSize, Src: 1, Dst: 2, Issued: 99}
	resp := req.Response()
	if resp.Op != OpReadResp || resp.Tag != 7 || resp.Src != 2 || resp.Dst != 1 || resp.Issued != 99 {
		t.Fatalf("response = %+v", resp)
	}
	if resp.Size != CacheLineSize {
		t.Fatalf("read response size = %d", resp.Size)
	}
	w := Packet{Op: OpWriteBlock, Tag: 3, Addr: 0x80, Size: CacheLineSize, Src: 1, Dst: 2}
	if r := w.Response(); r.Op != OpWriteAck || r.Size != 0 {
		t.Fatalf("write response = %+v", r)
	}
	p := Packet{Op: OpProbe, Src: 1, Dst: 2}
	if r := p.Response(); r.Op != OpProbeResp {
		t.Fatalf("probe response = %+v", r)
	}
}

func TestPacketResponseOfResponsePanics(t *testing.T) {
	resp := Packet{Op: OpReadResp, Size: CacheLineSize}
	defer func() {
		if recover() == nil {
			t.Error("Response of a response did not panic")
		}
	}()
	resp.Response()
}

func TestPacketMarshalRoundTrip(t *testing.T) {
	orig := Packet{Op: OpWriteBlock, Tag: 0xDEAD, Addr: 0xA000, Size: CacheLineSize, Src: 3, Dst: 9, Issued: 123456}
	buf, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Packet
	if err := got.UnmarshalBinary(buf); err != nil {
		t.Fatal(err)
	}
	if got != orig {
		t.Fatalf("round trip: got %+v, want %+v", got, orig)
	}
	var short Packet
	if err := short.UnmarshalBinary(buf[:5]); err != ErrShortBuffer {
		t.Fatalf("short buffer error = %v", err)
	}
}

// Property: marshal/unmarshal round-trips every valid block packet.
func TestPacketRoundTripProperty(t *testing.T) {
	f := func(tag uint32, lineIdx uint32, src, dst uint16, write bool) bool {
		op := OpReadBlock
		if write {
			op = OpWriteBlock
		}
		p := Packet{Op: op, Tag: tag, Addr: uint64(lineIdx) * CacheLineSize, Size: CacheLineSize, Src: src, Dst: dst}
		buf, err := p.MarshalBinary()
		if err != nil {
			return false
		}
		var got Packet
		return got.UnmarshalBinary(buf) == nil && got == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpPredicatesAndNames(t *testing.T) {
	if !OpReadBlock.IsRequest() || OpReadBlock.IsResponse() {
		t.Error("OpReadBlock predicates wrong")
	}
	if !OpReadResp.IsResponse() || OpReadResp.IsRequest() {
		t.Error("OpReadResp predicates wrong")
	}
	if OpReadBlock.String() != "read_block" {
		t.Errorf("name = %q", OpReadBlock.String())
	}
	if Op(99).String() == "" {
		t.Error("unknown op has empty string")
	}
}

func TestTagAllocator(t *testing.T) {
	a := NewTagAllocator(3)
	seen := map[uint32]bool{}
	for i := 0; i < 3; i++ {
		tag, ok := a.Alloc()
		if !ok || seen[tag] {
			t.Fatalf("alloc %d failed or dup: %v %v", i, tag, ok)
		}
		seen[tag] = true
	}
	if _, ok := a.Alloc(); ok {
		t.Fatal("alloc beyond capacity succeeded")
	}
	if a.Outstanding() != 3 {
		t.Fatalf("outstanding = %d", a.Outstanding())
	}
	a.Release(1)
	if tag, ok := a.Alloc(); !ok || tag != 1 {
		t.Fatalf("realloc = %v %v", tag, ok)
	}
}

func TestTagAllocatorDoubleReleasePanics(t *testing.T) {
	a := NewTagAllocator(2)
	tag, _ := a.Alloc()
	a.Release(tag)
	defer func() {
		if recover() == nil {
			t.Error("double release did not panic")
		}
	}()
	a.Release(tag)
}

func TestLineHelpers(t *testing.T) {
	if LineAlign(0x1234) != 0x1200 {
		t.Errorf("LineAlign = %#x", LineAlign(0x1234))
	}
	if n := LinesCovering(0, 128); n != 1 {
		t.Errorf("LinesCovering(0,128) = %d", n)
	}
	if n := LinesCovering(0, 129); n != 2 {
		t.Errorf("LinesCovering(0,129) = %d", n)
	}
	if n := LinesCovering(127, 2); n != 2 {
		t.Errorf("LinesCovering(127,2) = %d", n)
	}
	if n := LinesCovering(0, 0); n != 0 {
		t.Errorf("LinesCovering(0,0) = %d", n)
	}
}

// Property: LinesCovering is consistent with enumerating lines.
func TestLinesCoveringProperty(t *testing.T) {
	f := func(addr32 uint32, size16 uint16) bool {
		addr, size := uint64(addr32), int(size16)
		got := LinesCovering(addr, size)
		if size == 0 {
			return got == 0
		}
		count := 0
		for a := LineAlign(addr); a < addr+uint64(size); a += CacheLineSize {
			count++
		}
		return got == count
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPacketNack(t *testing.T) {
	req := Packet{Op: OpWriteBlock, Tag: 12, Addr: 0x3000, Size: CacheLineSize, Src: 1, Dst: 2, Issued: 77, Seq: 3}
	n := req.Nack()
	if n.Op != OpNack || n.Tag != 12 || n.Src != 2 || n.Dst != 1 || n.Seq != 3 || n.Issued != 77 {
		t.Fatalf("nack = %+v", n)
	}
	if !n.Poison || n.Size != 0 {
		t.Fatalf("nack not poisoned/payload-free: %+v", n)
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("nack invalid: %v", err)
	}
	if !OpNack.IsResponse() || OpNack.IsRequest() {
		t.Error("OpNack predicates wrong")
	}
}

func TestPacketNackOfResponsePanics(t *testing.T) {
	resp := Packet{Op: OpReadResp, Size: CacheLineSize}
	defer func() {
		if recover() == nil {
			t.Error("Nack of a response did not panic")
		}
	}()
	resp.Nack()
}

func TestPacketValidateFaultFlags(t *testing.T) {
	// Poison is a response-only property; an unpoisoned nack is malformed.
	bad := []Packet{
		{Op: OpReadBlock, Addr: 0, Size: CacheLineSize, Poison: true},
		{Op: OpNack},
		{Op: OpNack, Size: 4, Poison: true},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid packet accepted: %+v", i, p)
		}
	}
	ok := []Packet{
		{Op: OpNack, Poison: true},
		{Op: OpReadResp, Size: CacheLineSize, Poison: true},
		{Op: OpWriteBlock, Addr: 0, Size: CacheLineSize, Corrupt: true},
	}
	for i, p := range ok {
		if err := p.Validate(); err != nil {
			t.Errorf("case %d: valid packet rejected: %v", i, err)
		}
	}
}

func TestPacketMarshalRoundTripFaultFields(t *testing.T) {
	for _, orig := range []Packet{
		{Op: OpWriteBlock, Tag: 1, Addr: 0x80, Size: CacheLineSize, Src: 1, Dst: 2, Seq: 9, Corrupt: true},
		{Op: OpNack, Tag: 2, Addr: 0x80, Src: 2, Dst: 1, Seq: 65535, Poison: true},
		{Op: OpReadResp, Tag: 3, Size: CacheLineSize, Poison: true, Corrupt: true},
	} {
		buf, err := orig.MarshalBinary()
		if err != nil {
			t.Fatalf("%+v: %v", orig, err)
		}
		var got Packet
		if err := got.UnmarshalBinary(buf); err != nil {
			t.Fatalf("%+v: %v", orig, err)
		}
		if got != orig {
			t.Fatalf("round trip: got %+v, want %+v", got, orig)
		}
	}
}

func TestResponseEchoesSeq(t *testing.T) {
	req := Packet{Op: OpReadBlock, Tag: 4, Addr: 0x100, Size: CacheLineSize, Seq: 2}
	if r := req.Response(); r.Seq != 2 {
		t.Fatalf("response seq = %d, want 2", r.Seq)
	}
}

// TestRespondInPlaceMatchesResponse pins the pooled in-place reply to the
// value-returning Response for every request op, including the fault
// flags the in-place path must clear.
func TestRespondInPlaceMatchesResponse(t *testing.T) {
	for _, req := range []Packet{
		{Op: OpReadBlock, Tag: 7, Addr: 0x2000, Size: CacheLineSize, Src: 1, Dst: 2, Issued: 99, Seq: 3, Prio: 2, Trace: 11},
		{Op: OpWriteBlock, Tag: 3, Addr: 0x80, Size: CacheLineSize, Src: 1, Dst: 2, Seq: 1},
		{Op: OpProbe, Tag: 9, Src: 1, Dst: 2},
		{Op: OpReadBlock, Tag: 8, Addr: 0x100, Size: CacheLineSize, Src: 4, Dst: 5, Corrupt: true},
	} {
		want := req.Response()
		got := req
		got.RespondInPlace()
		if got != want {
			t.Errorf("%v: RespondInPlace = %+v, Response = %+v", req.Op, got, want)
		}
	}
}

// TestNackInPlaceSemantics checks the poisoned in-place nack: op, size,
// direction swap, and fault-flag handling.
func TestNackInPlaceSemantics(t *testing.T) {
	p := Packet{Op: OpReadBlock, Tag: 5, Addr: 0x400, Size: CacheLineSize, Src: 1, Dst: 2, Seq: 7, Corrupt: true}
	p.NackInPlace()
	if p.Op != OpNack || p.Size != 0 || p.Src != 2 || p.Dst != 1 || !p.Poison || p.Corrupt {
		t.Fatalf("NackInPlace = %+v", p)
	}
	if p.Tag != 5 || p.Seq != 7 {
		t.Fatalf("NackInPlace lost identity: %+v", p)
	}
	defer func() {
		if recover() == nil {
			t.Error("NackInPlace of a response did not panic")
		}
	}()
	p.NackInPlace()
}

// TestPacketPoolRecycleZeroes checks pool hygiene: recycled packets come
// back zeroed (no stale tag, fault flag, or payload metadata can leak into
// the next transaction) and nil Puts are ignored.
func TestPacketPoolRecycleZeroes(t *testing.T) {
	var pool PacketPool
	p := pool.Get()
	*p = Packet{Op: OpReadResp, Tag: 42, Addr: 0x1000, Size: CacheLineSize, Poison: true, Corrupt: true, Seq: 9}
	pool.Put(p)
	q := pool.Get()
	if q != p {
		t.Fatal("pool did not recycle the packet")
	}
	if *q != (Packet{}) {
		t.Fatalf("recycled packet not zeroed: %+v", *q)
	}
	pool.Put(nil) // must be a no-op
	pool.Put(q)
	if r := pool.Get(); r != q {
		t.Fatal("pool lost the packet after nil Put")
	}
}

// TestTagAllocatorExhaustRecycleEpochs exhausts the tag space repeatedly,
// releasing in a different order each epoch: every tag must be issued
// exactly once per epoch and allocation must fail exactly at exhaustion.
func TestTagAllocatorExhaustRecycleEpochs(t *testing.T) {
	const n = 16
	a := NewTagAllocator(n)
	held := make([]uint32, 0, n)
	for epoch := 0; epoch < 8; epoch++ {
		seen := map[uint32]bool{}
		held = held[:0]
		for i := 0; i < n; i++ {
			tag, ok := a.Alloc()
			if !ok {
				t.Fatalf("epoch %d: alloc %d failed", epoch, i)
			}
			if seen[tag] {
				t.Fatalf("epoch %d: tag %d double-issued", epoch, tag)
			}
			seen[tag] = true
			held = append(held, tag)
		}
		if _, ok := a.Alloc(); ok {
			t.Fatalf("epoch %d: alloc beyond capacity succeeded", epoch)
		}
		// Release in a rotating order so the free list sees every pattern.
		for i := range held {
			a.Release(held[(i+epoch)%n])
		}
		if a.Outstanding() != 0 {
			t.Fatalf("epoch %d: outstanding = %d", epoch, a.Outstanding())
		}
	}
}

// TestTagAllocatorChurnWithPacketPool drives an interleaved alloc/release
// churn through a PacketPool — the NIC's steady-state pattern — asserting
// a tag is never issued while a pooled packet still carries it
// outstanding.
func TestTagAllocatorChurnWithPacketPool(t *testing.T) {
	const n = 8
	a := NewTagAllocator(n)
	var pool PacketPool
	inflight := map[uint32]*Packet{}
	rng := uint64(0x9E3779B97F4A7C15)
	next := func(mod int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(mod))
	}
	for step := 0; step < 4096; step++ {
		if len(inflight) < n && (len(inflight) == 0 || next(2) == 0) {
			tag, ok := a.Alloc()
			if !ok {
				t.Fatalf("step %d: alloc failed with %d in flight", step, len(inflight))
			}
			if _, dup := inflight[tag]; dup {
				t.Fatalf("step %d: tag %d issued while outstanding", step, tag)
			}
			p := pool.Get()
			if p.Tag != 0 || p.Op != OpInvalid {
				t.Fatalf("step %d: pooled packet dirty: %+v", step, *p)
			}
			p.Op, p.Tag, p.Addr, p.Size = OpReadBlock, tag, uint64(step)*CacheLineSize, CacheLineSize
			inflight[tag] = p
		} else {
			// Complete a pseudo-random outstanding transaction.
			k := next(len(inflight))
			for tag, p := range inflight {
				if k--; k < 0 {
					if p.Tag != tag {
						t.Fatalf("step %d: packet tag mutated: %d != %d", step, p.Tag, tag)
					}
					p.RespondInPlace()
					delete(inflight, tag)
					pool.Put(p)
					a.Release(tag)
					break
				}
			}
		}
	}
	if a.Outstanding() != len(inflight) {
		t.Fatalf("outstanding %d != inflight %d", a.Outstanding(), len(inflight))
	}
}
