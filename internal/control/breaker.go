// Circuit breaker over the remote-memory datapath. Deadlines turn a hung
// lender into prompt poisoned completions, but every poisoned fill still
// burns a full deadline of latency. The breaker watches the outcome stream
// and, once the windowed error rate crosses the trip ratio, fast-fails
// subsequent accesses to the local fallback (Closed -> Open). After a
// dwell it admits a few trial transactions (Half-Open); sustained success
// re-promotes the remote path (-> Closed), failure re-opens with a longer
// dwell — hysteresis against flapping on a marginal lender.
package control

import (
	"fmt"

	"thymesim/internal/metricsplane"
	"thymesim/internal/sim"
)

// BreakerState is the circuit breaker's state.
type BreakerState int

// Breaker states.
const (
	// BreakerClosed passes traffic and watches the error rate.
	BreakerClosed BreakerState = iota
	// BreakerOpen fast-fails everything until the dwell elapses.
	BreakerOpen
	// BreakerHalfOpen admits a bounded number of trial transactions.
	BreakerHalfOpen
)

var breakerStateNames = map[BreakerState]string{
	BreakerClosed:   "closed",
	BreakerOpen:     "open",
	BreakerHalfOpen: "half-open",
}

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	if n, ok := breakerStateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("breaker(%d)", int(s))
}

// ValidBreakerTransition reports whether from -> to is a legal breaker
// edge: Closed -> Open, Open -> Half-Open, Half-Open -> Open or Closed.
// The chaos audit checks every logged transition against this.
func ValidBreakerTransition(from, to BreakerState) bool {
	switch from {
	case BreakerClosed:
		return to == BreakerOpen
	case BreakerOpen:
		return to == BreakerHalfOpen
	case BreakerHalfOpen:
		return to == BreakerOpen || to == BreakerClosed
	}
	return false
}

// BreakerConfig parameterizes the circuit breaker.
type BreakerConfig struct {
	// Window is the sliding outcome window size (count-based).
	Window int
	// MinSamples is the minimum outcomes in the window before the error
	// rate is judged at all (avoids tripping on the first failure).
	MinSamples int
	// TripRatio is the windowed error fraction at which Closed trips Open.
	TripRatio float64
	// OpenTimeout is the initial Open dwell before probing Half-Open;
	// each re-trip from Half-Open grows it by OpenMult (>= 1, 0 = no
	// growth) up to OpenCap (0 = uncapped). A successful close resets it.
	OpenTimeout sim.Duration
	OpenMult    float64
	OpenCap     sim.Duration
	// HalfOpenProbes bounds concurrently outstanding trial transactions in
	// Half-Open.
	HalfOpenProbes int
	// CloseAfter is how many consecutive trial successes re-close the
	// breaker; any trial failure re-opens immediately.
	CloseAfter int
}

// Validate checks the configuration. Zero windows and thresholds are
// rejected here — a breaker that silently never trips (or trips on
// nothing) is worse than no breaker.
func (c BreakerConfig) Validate() error {
	if c.Window <= 0 {
		return fmt.Errorf("control: breaker Window = %d", c.Window)
	}
	if c.MinSamples <= 0 || c.MinSamples > c.Window {
		return fmt.Errorf("control: breaker MinSamples = %d outside [1,%d]", c.MinSamples, c.Window)
	}
	if c.TripRatio <= 0 || c.TripRatio > 1 {
		return fmt.Errorf("control: breaker TripRatio = %g outside (0,1]", c.TripRatio)
	}
	if c.OpenTimeout <= 0 {
		return fmt.Errorf("control: breaker OpenTimeout = %v", c.OpenTimeout)
	}
	if c.OpenMult != 0 && c.OpenMult < 1 {
		return fmt.Errorf("control: breaker OpenMult = %g < 1", c.OpenMult)
	}
	if c.OpenCap < 0 {
		return fmt.Errorf("control: negative breaker OpenCap")
	}
	if c.OpenCap > 0 && c.OpenCap < c.OpenTimeout {
		return fmt.Errorf("control: breaker OpenCap %v below OpenTimeout %v", c.OpenCap, c.OpenTimeout)
	}
	if c.HalfOpenProbes <= 0 {
		return fmt.Errorf("control: breaker HalfOpenProbes = %d", c.HalfOpenProbes)
	}
	if c.CloseAfter <= 0 {
		return fmt.Errorf("control: breaker CloseAfter = %d", c.CloseAfter)
	}
	return nil
}

// DefaultBreakerConfig returns a breaker tuned to the testbed's fill
// rates: trip when half of the last 64 outcomes failed, probe after 200us,
// and back off to 2ms across consecutive re-trips.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{
		Window:         64,
		MinSamples:     16,
		TripRatio:      0.5,
		OpenTimeout:    200 * sim.Microsecond,
		OpenMult:       2,
		OpenCap:        2 * sim.Millisecond,
		HalfOpenProbes: 4,
		CloseAfter:     8,
	}
}

// BreakerTransition is one logged state change.
type BreakerTransition struct {
	At       sim.Time
	From, To BreakerState
}

// BreakerStats counts breaker activity.
type BreakerStats struct {
	Allowed        uint64 // Allow() = true
	ShortCircuited uint64 // Allow() = false (fast-failed to fallback)
	Successes      uint64 // healthy outcomes recorded
	Failures       uint64 // failed outcomes recorded
	Trips          uint64 // Closed -> Open transitions
	Reopens        uint64 // Half-Open -> Open transitions
	Closes         uint64 // Half-Open -> Closed transitions
}

// Breaker is a count-window circuit breaker. Allow gates each access;
// Record feeds it the outcome stream (wire it to the remote backend's
// outcome observer). Both are allocation-free; only state transitions
// allocate (log entry — the dwell timer lives on the kernel's wheel).
type Breaker struct {
	k   *sim.Kernel
	cfg BreakerConfig

	state BreakerState
	// window is a ring of recent outcomes (true = failure) with a running
	// failure count, so the trip check is O(1) per outcome.
	window   []bool
	head     int
	samples  int
	failures int

	dwell      sim.Duration // next Open dwell (backoff state)
	dwellTimer sim.TimerID  // armed Open→Half-Open transition
	inFlight   int          // outstanding Half-Open trials
	streak     int          // consecutive Half-Open successes

	transitions []BreakerTransition
	stats       BreakerStats

	// OnStateChange, when set, observes every transition.
	OnStateChange func(from, to BreakerState)

	mx *metricsplane.BreakerMetrics // nil when the metrics plane is disabled
}

// NewBreaker builds a breaker in the Closed state. Invalid configurations
// are reported, not panicked over, so harness code can surface them.
func NewBreaker(k *sim.Kernel, cfg BreakerConfig) (*Breaker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Breaker{
		k:      k,
		cfg:    cfg,
		window: make([]bool, cfg.Window),
		dwell:  cfg.OpenTimeout,
	}, nil
}

// SetMetrics attaches the metrics plane's breaker bundle (state gauge
// plus transition/short-circuit counters). Observe-only; composes with
// OnStateChange rather than occupying it.
func (b *Breaker) SetMetrics(m *metricsplane.BreakerMetrics) { b.mx = m }

// State returns the current breaker state.
func (b *Breaker) State() BreakerState { return b.state }

// Stats returns the activity counters.
func (b *Breaker) Stats() BreakerStats { return b.stats }

// Transitions returns the logged state changes in order.
func (b *Breaker) Transitions() []BreakerTransition { return b.transitions }

// ErrorRate returns the windowed failure fraction (0 with no samples).
func (b *Breaker) ErrorRate() float64 {
	if b.samples == 0 {
		return 0
	}
	return float64(b.failures) / float64(b.samples)
}

// Allow reports whether an access may take the remote path right now.
// Open fast-fails; Half-Open admits a bounded number of trials.
func (b *Breaker) Allow() bool {
	switch b.state {
	case BreakerClosed:
		b.stats.Allowed++
		return true
	case BreakerHalfOpen:
		if b.inFlight < b.cfg.HalfOpenProbes {
			b.inFlight++
			b.stats.Allowed++
			return true
		}
	}
	b.stats.ShortCircuited++
	b.mx.ShortCircuit()
	return false
}

// Record feeds one transaction outcome (ok = healthy completion).
func (b *Breaker) Record(ok bool) {
	if ok {
		b.stats.Successes++
	} else {
		b.stats.Failures++
	}
	switch b.state {
	case BreakerClosed:
		b.push(!ok)
		if b.samples >= b.cfg.MinSamples &&
			float64(b.failures) >= b.cfg.TripRatio*float64(b.samples) {
			b.stats.Trips++
			b.trip()
		}
	case BreakerHalfOpen:
		if b.inFlight > 0 {
			b.inFlight--
		}
		if !ok {
			// One failed trial is enough: re-open with a longer dwell.
			b.stats.Reopens++
			if m := b.cfg.OpenMult; m > 1 {
				b.dwell = sim.Duration(float64(b.dwell) * m)
				if b.cfg.OpenCap > 0 && b.dwell > b.cfg.OpenCap {
					b.dwell = b.cfg.OpenCap
				}
			}
			b.trip()
			return
		}
		b.streak++
		if b.streak >= b.cfg.CloseAfter {
			b.stats.Closes++
			b.dwell = b.cfg.OpenTimeout
			b.resetWindow()
			b.transition(BreakerClosed)
		}
	case BreakerOpen:
		// Straggler outcome from before the trip; stats only.
	}
}

// push records one outcome in the ring window.
func (b *Breaker) push(failed bool) {
	if b.samples == len(b.window) {
		if b.window[b.head] {
			b.failures--
		}
	} else {
		b.samples++
	}
	b.window[b.head] = failed
	if failed {
		b.failures++
	}
	b.head++
	if b.head == len(b.window) {
		b.head = 0
	}
}

// resetWindow clears the outcome window (a re-closed breaker starts with a
// clean slate rather than the error burst that tripped it).
func (b *Breaker) resetWindow() {
	for i := range b.window {
		b.window[i] = false
	}
	b.head, b.samples, b.failures = 0, 0, 0
}

// trip opens the breaker and arms the dwell timer toward Half-Open on the
// kernel's timer wheel. Re-tripping (Half-Open failure) cancels any prior
// dwell for real, so a firing timer always belongs to the current Open
// episode.
func (b *Breaker) trip() {
	b.transition(BreakerOpen)
	b.k.CancelTimer(b.dwellTimer)
	b.dwellTimer = b.k.ArmTimer(b.dwell, b, 0)
}

// Handle implements sim.Handler: the Open dwell elapsed; admit trial
// traffic.
func (b *Breaker) Handle(uint64) {
	if b.state != BreakerOpen {
		return
	}
	b.inFlight, b.streak = 0, 0
	b.transition(BreakerHalfOpen)
}

func (b *Breaker) transition(to BreakerState) {
	from := b.state
	if from == to {
		return
	}
	if !ValidBreakerTransition(from, to) {
		panic(fmt.Sprintf("control: illegal breaker transition %v -> %v", from, to))
	}
	b.state = to
	b.transitions = append(b.transitions, BreakerTransition{At: b.k.Now(), From: from, To: to})
	b.mx.Transition(int(from), int(to), b.k.Now().Micros())
	if b.OnStateChange != nil {
		b.OnStateChange(from, to)
	}
}
