package control

import (
	"strings"
	"testing"
	"testing/quick"

	"thymesim/internal/sim"
)

func newPlane3() *Plane {
	p := NewPlane()
	p.AddNode(0, 512<<30)
	p.AddNode(1, 512<<30)
	p.AddNode(2, 512<<30)
	return p
}

func TestReserveAssignsRoles(t *testing.T) {
	p := newPlane3()
	r, err := p.Reserve(0, 64<<30, ClassLatencyTolerant, FirstFit{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Borrower != 0 || r.Lender != 1 {
		t.Fatalf("reservation = %+v", r)
	}
	if p.Node(0).Role != RoleBorrower || p.Node(1).Role != RoleLender {
		t.Fatalf("roles = %v/%v", p.Node(0).Role, p.Node(1).Role)
	}
	if p.Node(1).FreeMem != 448<<30 {
		t.Fatalf("lender free = %d", p.Node(1).FreeMem)
	}
	if len(p.Reservations()) != 1 {
		t.Fatal("reservation not tracked")
	}
}

func TestReleaseRestoresState(t *testing.T) {
	p := newPlane3()
	r, _ := p.Reserve(0, 64<<30, ClassLatencyTolerant, FirstFit{})
	if err := p.Release(r.ID); err != nil {
		t.Fatal(err)
	}
	if p.Node(1).FreeMem != 512<<30 {
		t.Fatalf("free not restored: %d", p.Node(1).FreeMem)
	}
	if p.Node(0).Role != RoleIdle || p.Node(1).Role != RoleIdle {
		t.Fatal("roles not reset")
	}
	if err := p.Release(r.ID); err != ErrNotFound {
		t.Fatalf("double release = %v", err)
	}
}

func TestReserveNoCapacity(t *testing.T) {
	p := NewPlane()
	p.AddNode(0, 512<<30)
	p.AddNode(1, 16<<30)
	if _, err := p.Reserve(0, 64<<30, ClassLatencyTolerant, FirstFit{}); err != ErrNoLender {
		t.Fatalf("err = %v", err)
	}
	if _, err := p.Reserve(99, 1, ClassLatencyTolerant, FirstFit{}); err != ErrUnknownNode {
		t.Fatalf("err = %v", err)
	}
}

func TestBorrowerCannotLend(t *testing.T) {
	p := newPlane3()
	if _, err := p.Reserve(0, 64<<30, ClassLatencyTolerant, FirstFit{}); err != nil {
		t.Fatal(err)
	}
	// Node 1 is now a lender; node 2 reserving must not choose node 0
	// (a borrower).
	r, err := p.Reserve(2, 64<<30, ClassLatencyTolerant, FirstFit{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Lender == 0 {
		t.Fatal("borrower chosen as lender")
	}
	// A lender cannot start borrowing.
	if _, err := p.Reserve(1, 1<<30, ClassLatencyTolerant, FirstFit{}); err != ErrRoleConflict {
		t.Fatalf("err = %v", err)
	}
}

func TestPolicies(t *testing.T) {
	nodes := []*Node{
		{ID: 1, FreeMem: 100, RunningApps: 5},
		{ID: 2, FreeMem: 50, RunningApps: 0},
		{ID: 3, FreeMem: 200, RunningApps: 2},
	}
	if i := (FirstFit{}).Pick(nodes, 10, ClassLatencyTolerant); nodes[i].ID != 1 {
		t.Errorf("first-fit picked %d", nodes[i].ID)
	}
	if i := (BestFit{}).Pick(nodes, 10, ClassLatencyTolerant); nodes[i].ID != 2 {
		t.Errorf("best-fit picked %d", nodes[i].ID)
	}
	if i := (ContentionAware{}).Pick(nodes, 10, ClassLatencyTolerant); nodes[i].ID != 2 {
		t.Errorf("contention-aware picked %d", nodes[i].ID)
	}
	r := Random{Rng: sim.NewRand(1)}
	counts := map[int]int{}
	for i := 0; i < 300; i++ {
		counts[r.Pick(nodes, 10, ClassLatencyTolerant)]++
	}
	for i := 0; i < 3; i++ {
		if counts[i] < 50 {
			t.Errorf("random skewed: %v", counts)
		}
	}
	for _, pol := range []Policy{FirstFit{}, BestFit{}, Random{Rng: sim.NewRand(2)}, ContentionAware{}} {
		if pol.Pick(nil, 1, ClassLatencyTolerant) != -1 {
			t.Errorf("%s picked from empty candidates", pol.Name())
		}
		if pol.Name() == "" {
			t.Error("empty policy name")
		}
	}
}

// Property: free memory is conserved across any reserve/release sequence.
func TestPlaneConservationProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		p := newPlane3()
		total := func() uint64 {
			var sum uint64
			for _, n := range p.Nodes() {
				sum += n.FreeMem
			}
			for _, r := range p.Reservations() {
				sum += r.Size
			}
			return sum
		}
		want := total()
		var live []int
		for _, op := range ops {
			if op%2 == 0 {
				r, err := p.Reserve(int(op/2)%3, uint64(op)<<28, ClassLatencyTolerant, FirstFit{})
				if err == nil {
					live = append(live, r.ID)
				}
			} else if len(live) > 0 {
				if err := p.Release(live[0]); err != nil {
					return false
				}
				live = live[1:]
			}
			if total() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// fakeProber answers probes after a fixed RTT.
type fakeProber struct {
	k    *sim.Kernel
	rtt  sim.Duration
	fail int // first n sends rejected
}

func (f *fakeProber) SendProbe(done func(sim.Duration)) bool {
	if f.fail > 0 {
		f.fail--
		return false
	}
	rtt := f.rtt
	f.k.After(rtt, func() { done(rtt) })
	return true
}

func (f *fakeProber) Kernel() *sim.Kernel { return f.k }

func TestAttachSucceedsWithinDeadline(t *testing.T) {
	k := sim.NewKernel()
	p := &fakeProber{k: k, rtt: sim.Duration(sim.Microsecond)}
	cfg := AttachConfig{ConfigOps: 100, Timeout: sim.Duration(sim.Millisecond), Retry: sim.Duration(sim.Microsecond)}
	var res AttachResult
	k.At(0, func() { Attach(p, cfg, func(r AttachResult) { res = r }) })
	k.Run()
	if !res.OK || res.OpsDone != 100 {
		t.Fatalf("attach failed: %+v", res)
	}
	if res.Elapsed < 100*sim.Microsecond {
		t.Fatalf("elapsed = %v implausible", res.Elapsed)
	}
	if res.MaxRTT != sim.Duration(sim.Microsecond) {
		t.Fatalf("max rtt = %v", res.MaxRTT)
	}
}

func TestAttachTimesOutUnderHighDelay(t *testing.T) {
	k := sim.NewKernel()
	p := &fakeProber{k: k, rtt: 40 * sim.Microsecond} // PERIOD=10000-like
	cfg := AttachConfig{ConfigOps: 256, Timeout: 5 * sim.Millisecond, Retry: 10 * sim.Microsecond}
	var res AttachResult
	k.At(0, func() { Attach(p, cfg, func(r AttachResult) { res = r }) })
	k.Run()
	if res.OK {
		t.Fatalf("attach succeeded despite %v per op: %+v", p.rtt, res)
	}
	if !strings.Contains(res.Reason, "not detected") {
		t.Fatalf("reason = %q", res.Reason)
	}
	if res.OpsDone >= 256 {
		t.Fatalf("ops done = %d", res.OpsDone)
	}
}

func TestAttachRetriesOnBusyNIC(t *testing.T) {
	k := sim.NewKernel()
	p := &fakeProber{k: k, rtt: sim.Duration(sim.Microsecond), fail: 5}
	cfg := AttachConfig{ConfigOps: 10, Timeout: sim.Duration(sim.Millisecond), Retry: sim.Duration(sim.Microsecond)}
	var res AttachResult
	k.At(0, func() { Attach(p, cfg, func(r AttachResult) { res = r }) })
	k.Run()
	if !res.OK {
		t.Fatalf("attach with retries failed: %+v", res)
	}
}

func TestAttachCallbackExactlyOnce(t *testing.T) {
	k := sim.NewKernel()
	p := &fakeProber{k: k, rtt: sim.Duration(sim.Microsecond)}
	cfg := AttachConfig{ConfigOps: 2, Timeout: 10 * sim.Microsecond, Retry: sim.Duration(sim.Microsecond)}
	calls := 0
	k.At(0, func() { Attach(p, cfg, func(AttachResult) { calls++ }) })
	k.Run()
	if calls != 1 {
		t.Fatalf("done called %d times", calls)
	}
}

func TestAttachConfigValidation(t *testing.T) {
	k := sim.NewKernel()
	p := &fakeProber{k: k, rtt: 1}
	for _, cfg := range []AttachConfig{
		{ConfigOps: 0, Timeout: 1, Retry: 1},
		{ConfigOps: 1, Timeout: 0, Retry: 1},
		{ConfigOps: 1, Timeout: 1, Retry: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			Attach(p, cfg, func(AttachResult) {})
		}()
	}
	if err := DefaultAttachConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRoleAndClassStrings(t *testing.T) {
	if RoleBorrower.String() != "borrower" || RoleLender.String() != "lender" || RoleIdle.String() != "idle" {
		t.Error("role strings wrong")
	}
	if ClassLatencySensitive.String() != "latency-sensitive" {
		t.Error("class string wrong")
	}
	if Role(9).String() == "" {
		t.Error("unknown role empty")
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	p := NewPlane()
	p.AddNode(0, 1)
	defer func() {
		if recover() == nil {
			t.Error("duplicate node did not panic")
		}
	}()
	p.AddNode(0, 1)
}

func TestQoSAwarePolicy(t *testing.T) {
	p := newPlane3()
	// Sensitive workloads are refused remote memory entirely.
	if _, err := p.Reserve(0, 1<<30, ClassLatencySensitive, QoSAware{}); err != ErrNoLender {
		t.Fatalf("sensitive reservation = %v, want ErrNoLender", err)
	}
	// Tolerant ones place via the fallback.
	r, err := p.Reserve(0, 1<<30, ClassLatencyTolerant, QoSAware{Fallback: BestFit{}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Class != ClassLatencyTolerant {
		t.Fatalf("class = %v", r.Class)
	}
	if (QoSAware{}).Name() != "qos-aware" {
		t.Fatal("name wrong")
	}
	// Nil fallback defaults to first-fit.
	nodes := []*Node{{ID: 3, FreeMem: 10}, {ID: 1, FreeMem: 10}}
	if i := (QoSAware{}).Pick(nodes, 1, ClassLatencyTolerant); nodes[i].ID != 1 {
		t.Fatalf("fallback pick = %d", nodes[i].ID)
	}
}
