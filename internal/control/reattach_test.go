package control

import (
	"testing"

	"thymesim/internal/sim"
)

// fakeLinkProber answers probes after rtt while healthy; while down,
// probes get no response (the deadline expires them).
type fakeLinkProber struct {
	k    *sim.Kernel
	rtt  sim.Duration
	down bool
}

func (f *fakeLinkProber) SendProbe(done func(sim.Duration)) bool {
	return f.Probe(0, func(ok bool, rtt sim.Duration) {
		if ok {
			done(rtt)
		}
	})
}

func (f *fakeLinkProber) Probe(deadline sim.Duration, done func(bool, sim.Duration)) bool {
	if f.down {
		if deadline > 0 {
			f.k.After(deadline, func() { done(false, 0) })
		}
		return true // accepted, but the response never comes
	}
	rtt := f.rtt
	f.k.After(rtt, func() { done(true, rtt) })
	return true
}

func (f *fakeLinkProber) Kernel() *sim.Kernel { return f.k }

func supConfig() SupervisorConfig {
	return SupervisorConfig{
		Heartbeat:     10 * sim.Microsecond,
		ProbeDeadline: 5 * sim.Microsecond,
		MissThreshold: 2,
		Attach:        AttachConfig{ConfigOps: 8, Timeout: sim.Duration(sim.Millisecond), Retry: sim.Duration(sim.Microsecond)},
		ReattachPause: 20 * sim.Microsecond,
		ReattachMult:  2,
		ReattachCap:   200 * sim.Microsecond,
		MaxReattach:   4,
		Seed:          1,
	}
}

func TestSupervisorStaysUpOnHealthyLink(t *testing.T) {
	k := sim.NewKernel()
	p := &fakeLinkProber{k: k, rtt: sim.Duration(sim.Microsecond)}
	s := NewSupervisor(p, supConfig())
	s.Start()
	k.After(500*sim.Microsecond, s.Stop)
	k.Run()
	if s.State() != LinkUp {
		t.Fatalf("state = %v", s.State())
	}
	st := s.Stats()
	if st.Heartbeats < 10 || st.Misses != 0 || st.Downs != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSupervisorDetectsDownAndReattaches(t *testing.T) {
	k := sim.NewKernel()
	p := &fakeLinkProber{k: k, rtt: sim.Duration(sim.Microsecond)}
	s := NewSupervisor(p, supConfig())
	var transitions []LinkState
	s.OnStateChange = func(_, to LinkState) { transitions = append(transitions, to) }
	s.Start()
	k.After(100*sim.Microsecond, func() { p.down = true })
	k.After(300*sim.Microsecond, func() { p.down = false })
	k.After(2*sim.Millisecond, s.Stop)
	k.Run()

	if s.State() != LinkUp {
		t.Fatalf("final state = %v (transitions %v)", s.State(), transitions)
	}
	st := s.Stats()
	if st.Downs != 1 || st.Recoveries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MeanRecovery() <= 0 || st.RecoveryMaxPs < st.RecoverySumPs/st.Recoveries {
		t.Fatalf("recovery latency accounting: %+v", st)
	}
	// Saw Down, then Reattaching, eventually Up.
	sawDown, sawRe, sawUp := false, false, false
	for _, tr := range transitions {
		switch tr {
		case LinkDown:
			sawDown = true
		case LinkReattaching:
			sawRe = sawDown
		case LinkUp:
			sawUp = sawRe
		}
	}
	if !sawUp {
		t.Fatalf("transitions = %v", transitions)
	}
}

func TestSupervisorDeclaresDeadAfterBudget(t *testing.T) {
	k := sim.NewKernel()
	p := &fakeLinkProber{k: k, rtt: sim.Duration(sim.Microsecond)}
	cfg := supConfig()
	cfg.Attach.Timeout = 50 * sim.Microsecond // fail fast while down
	s := NewSupervisor(p, cfg)
	s.Start()
	k.After(50*sim.Microsecond, func() { p.down = true }) // and stays down
	k.Run()

	if s.State() != LinkDead {
		t.Fatalf("state = %v, want dead", s.State())
	}
	st := s.Stats()
	if st.FailedAttaches != uint64(cfg.MaxReattach) {
		t.Fatalf("failed attaches = %d, want %d", st.FailedAttaches, cfg.MaxReattach)
	}
	if st.Recoveries != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Dead is terminal: the kernel drained, no timers left.
}

func TestSupervisorStopQuiesces(t *testing.T) {
	k := sim.NewKernel()
	p := &fakeLinkProber{k: k, rtt: sim.Duration(sim.Microsecond)}
	s := NewSupervisor(p, supConfig())
	s.Start()
	k.After(30*sim.Microsecond, s.Stop)
	k.Run()
	if now := k.Now(); now > sim.Time(50*sim.Microsecond) {
		t.Fatalf("kernel ran to %v after Stop", now)
	}
}

func TestSupervisorConfigValidation(t *testing.T) {
	base := supConfig()
	muts := []func(*SupervisorConfig){
		func(c *SupervisorConfig) { c.Heartbeat = 0 },
		func(c *SupervisorConfig) { c.ProbeDeadline = 0 },
		func(c *SupervisorConfig) { c.MissThreshold = 0 },
		func(c *SupervisorConfig) { c.ReattachPause = 0 },
		func(c *SupervisorConfig) { c.ReattachMult = 0.5 },
		func(c *SupervisorConfig) { c.JitterFrac = 1 },
		func(c *SupervisorConfig) { c.MaxReattach = -1 },
		func(c *SupervisorConfig) { c.Attach.ConfigOps = 0 },
	}
	for i, mut := range muts {
		c := base
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := DefaultSupervisorConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAttachBackoffGrowsAndResets(t *testing.T) {
	pacer := newRetryPacer(AttachConfig{
		ConfigOps: 1, Timeout: 1, Retry: 10,
		RetryMult: 2, RetryCap: 50,
	})
	var got []sim.Duration
	for i := 0; i < 5; i++ {
		got = append(got, pacer.pause())
	}
	want := []sim.Duration{10, 20, 40, 50, 50}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pause %d = %v, want %v (all %v)", i, got[i], want[i], got)
		}
	}
	pacer.reset()
	if p := pacer.pause(); p != 10 {
		t.Fatalf("pause after reset = %v", p)
	}
}

func TestAttachBackoffJitterDeterministic(t *testing.T) {
	mk := func() *retryPacer {
		return newRetryPacer(AttachConfig{
			ConfigOps: 1, Timeout: 1, Retry: 1000,
			RetryMult: 2, RetryJitter: 0.2, RetrySeed: 7,
		})
	}
	a, b := mk(), mk()
	for i := 0; i < 10; i++ {
		pa, pb := a.pause(), b.pause()
		if pa != pb {
			t.Fatalf("pause %d nondeterministic: %v vs %v", i, pa, pb)
		}
		if pa < 800 {
			t.Fatalf("pause %d = %v below jitter floor", i, pa)
		}
	}
}

func TestAttachFixedPauseDefaultUnchanged(t *testing.T) {
	// The default config must reproduce the prototype's fixed pause so the
	// Fig. 4 attach numbers are untouched.
	pacer := newRetryPacer(DefaultAttachConfig())
	for i := 0; i < 5; i++ {
		if p := pacer.pause(); p != DefaultAttachConfig().Retry {
			t.Fatalf("default pause %d = %v", i, p)
		}
	}
}
