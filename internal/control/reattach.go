// Link supervision and automatic re-attach. The prototype leaves recovery
// to the operator: a flapped link means a dead attach and a manual re-run.
// The Supervisor closes that loop — heartbeat probes detect the failure,
// a backoff-paced re-attach restores the window when the link returns, and
// a link that never returns is declared dead instead of retried forever.
package control

import (
	"fmt"

	"thymesim/internal/sim"
)

// HeartbeatProber extends Prober with a deadline-bounded probe — the
// primitive link supervision needs (*cluster.Testbed satisfies it).
type HeartbeatProber interface {
	Prober
	// Probe sends one liveness transaction; done(false, 0) fires if no
	// healthy response arrives within the deadline.
	Probe(deadline sim.Duration, done func(ok bool, rtt sim.Duration)) bool
}

// LinkState is the supervisor's view of the link.
type LinkState int

// Supervisor states.
const (
	LinkUp          LinkState = iota // heartbeats healthy
	LinkDown                         // misses crossed the threshold
	LinkReattaching                  // re-attach handshake in progress
	LinkDead                         // re-attach budget exhausted
)

var linkStateNames = map[LinkState]string{
	LinkUp:          "up",
	LinkDown:        "down",
	LinkReattaching: "reattaching",
	LinkDead:        "dead",
}

// String implements fmt.Stringer.
func (s LinkState) String() string {
	if n, ok := linkStateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// SupervisorConfig parameterizes link supervision.
type SupervisorConfig struct {
	// Heartbeat is the probe interval while the link is up.
	Heartbeat sim.Duration
	// ProbeDeadline bounds each heartbeat's response time; a probe that
	// misses it counts as a failure.
	ProbeDeadline sim.Duration
	// MissThreshold is how many consecutive failed heartbeats declare the
	// link down.
	MissThreshold int
	// Attach parameterizes each re-attach handshake.
	Attach AttachConfig
	// ReattachPause is the wait before the first re-attach attempt;
	// consecutive failures grow it by ReattachMult (>= 1) up to
	// ReattachCap (0 = uncapped), jittered by JitterFrac from Seed.
	ReattachPause sim.Duration
	ReattachMult  float64
	ReattachCap   sim.Duration
	JitterFrac    float64
	Seed          uint64
	// MaxReattach bounds consecutive failed re-attach attempts before the
	// link is declared dead (0 = retry forever).
	MaxReattach int
}

// Validate checks the configuration.
func (c SupervisorConfig) Validate() error {
	if c.Heartbeat <= 0 {
		return fmt.Errorf("control: Heartbeat = %v", c.Heartbeat)
	}
	if c.ProbeDeadline <= 0 {
		return fmt.Errorf("control: ProbeDeadline = %v", c.ProbeDeadline)
	}
	if c.MissThreshold <= 0 {
		return fmt.Errorf("control: MissThreshold = %d", c.MissThreshold)
	}
	if c.ReattachPause <= 0 {
		return fmt.Errorf("control: ReattachPause = %v", c.ReattachPause)
	}
	if c.ReattachMult != 0 && c.ReattachMult < 1 {
		return fmt.Errorf("control: ReattachMult = %g < 1", c.ReattachMult)
	}
	if c.ReattachCap < 0 {
		return fmt.Errorf("control: negative ReattachCap")
	}
	if c.JitterFrac < 0 || c.JitterFrac >= 1 {
		return fmt.Errorf("control: JitterFrac = %g outside [0,1)", c.JitterFrac)
	}
	if c.MaxReattach < 0 {
		return fmt.Errorf("control: MaxReattach = %d", c.MaxReattach)
	}
	return c.Attach.Validate()
}

// DefaultSupervisorConfig returns supervision tuned to the testbed: a
// heartbeat every 50us detects a dead link within ~150us, and re-attach
// retries back off from 100us to 5ms.
func DefaultSupervisorConfig() SupervisorConfig {
	return SupervisorConfig{
		Heartbeat:     50 * sim.Microsecond,
		ProbeDeadline: 30 * sim.Microsecond,
		MissThreshold: 3,
		Attach:        DefaultAttachConfig(),
		ReattachPause: 100 * sim.Microsecond,
		ReattachMult:  2,
		ReattachCap:   5 * sim.Millisecond,
		JitterFrac:    0.1,
		Seed:          1,
		MaxReattach:   8,
	}
}

// SupervisorStats counts supervision events.
type SupervisorStats struct {
	Heartbeats     uint64 // probes sent (or attempted) while up
	Misses         uint64 // heartbeats failed or expired
	Downs          uint64 // up -> down transitions
	Reattaches     uint64 // re-attach handshakes started
	Recoveries     uint64 // down -> up transitions
	RecoverySumPs  uint64 // total down-to-up latency, picoseconds
	RecoveryMaxPs  uint64 // worst down-to-up latency, picoseconds
	FailedAttaches uint64 // re-attach handshakes that timed out
}

// MeanRecovery returns the average down-to-up latency.
func (s SupervisorStats) MeanRecovery() sim.Duration {
	if s.Recoveries == 0 {
		return 0
	}
	return sim.Duration(s.RecoverySumPs / s.Recoveries)
}

// Supervisor watches a link with heartbeat probes and re-attaches after
// failures. Start it once the initial attach has succeeded; Stop it before
// expecting the kernel to drain (it keeps timers armed while running).
type Supervisor struct {
	p   HeartbeatProber
	cfg SupervisorConfig
	rng *sim.Rand

	state   LinkState
	stopped bool
	// gen invalidates in-flight probe/attach callbacks after Stop or a
	// restart. The supervisor's own timers need no such guard: they live
	// on the kernel's timer wheel and Stop cancels them for real.
	gen uint64
	// timer is the armed heartbeat or re-attach pause (the two are
	// mutually exclusive: heartbeats run while up, the pause while down).
	timer   sim.TimerID
	downAt  sim.Time
	retries int // consecutive failed re-attach attempts
	misses  int // consecutive failed heartbeats

	// OnStateChange, when set, observes every transition.
	OnStateChange func(from, to LinkState)

	stats SupervisorStats
}

// NewSupervisor builds a supervisor; call Start to begin heartbeating.
// Invalid configurations panic; harness code that assembles configurations
// at runtime should prefer NewSupervisorChecked.
func NewSupervisor(p HeartbeatProber, cfg SupervisorConfig) *Supervisor {
	s, err := NewSupervisorChecked(p, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// NewSupervisorChecked is NewSupervisor returning configuration errors
// instead of panicking — a zero Heartbeat or MissThreshold would otherwise
// be accepted as "supervision that never detects anything".
func NewSupervisorChecked(p HeartbeatProber, cfg SupervisorConfig) (*Supervisor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Supervisor{p: p, cfg: cfg, rng: sim.NewRand(cfg.Seed), state: LinkUp}, nil
}

// State returns the current link state.
func (s *Supervisor) State() LinkState { return s.state }

// Stats returns the supervision counters.
func (s *Supervisor) Stats() SupervisorStats { return s.stats }

// Start begins heartbeat supervision from the up state.
func (s *Supervisor) Start() {
	s.stopped = false
	s.gen++
	s.scheduleHeartbeat()
}

// Stop halts supervision: armed timers are cancelled on the wheel and
// in-flight probe/attach callbacks become no-ops, so the kernel can drain.
func (s *Supervisor) Stop() {
	s.stopped = true
	s.gen++
	s.p.Kernel().CancelTimer(s.timer)
}

func (s *Supervisor) transition(to LinkState) {
	from := s.state
	if from == to {
		return
	}
	s.state = to
	if s.OnStateChange != nil {
		s.OnStateChange(from, to)
	}
}

// jittered applies the configured jitter spread to d.
func (s *Supervisor) jittered(d float64) sim.Duration {
	if s.cfg.JitterFrac > 0 {
		d *= 1 + s.cfg.JitterFrac*(2*s.rng.Float64()-1)
	}
	if d < 1 {
		d = 1
	}
	return sim.Duration(d)
}

// Timer contexts for the supervisor's Handle dispatch.
const (
	supHeartbeat = iota // the heartbeat interval elapsed
	supReattach         // the re-attach backoff pause elapsed
)

// Handle implements sim.Handler for the supervisor's wheel timers. Stop
// cancels them for real, so a firing always belongs to the live
// supervision epoch; the state checks only guard transitions made by
// callbacks that ran between arm and fire.
func (s *Supervisor) Handle(arg uint64) {
	switch arg {
	case supHeartbeat:
		if s.state != LinkUp {
			return
		}
		s.heartbeat(s.gen)
	case supReattach:
		if s.state == LinkDead {
			return
		}
		s.reattach(s.gen)
	}
}

func (s *Supervisor) scheduleHeartbeat() {
	s.timer = s.p.Kernel().ArmTimer(s.jittered(float64(s.cfg.Heartbeat)), s, supHeartbeat)
}

func (s *Supervisor) heartbeat(gen uint64) {
	s.stats.Heartbeats++
	sent := s.p.Probe(s.cfg.ProbeDeadline, func(ok bool, _ sim.Duration) {
		if s.stopped || s.gen != gen || s.state != LinkUp {
			return
		}
		if ok {
			s.misses = 0
		} else {
			s.miss()
		}
		if s.state == LinkUp {
			s.scheduleHeartbeat()
		}
	})
	if !sent {
		// Egress saturated: indistinguishable from congestion; count a
		// miss and keep probing.
		s.miss()
		if s.state == LinkUp {
			s.scheduleHeartbeat()
		}
	}
}

func (s *Supervisor) miss() {
	s.stats.Misses++
	s.misses++
	if s.misses < s.cfg.MissThreshold {
		return
	}
	s.misses = 0
	s.stats.Downs++
	s.downAt = s.p.Kernel().Now()
	s.transition(LinkDown)
	s.retries = 0
	s.scheduleReattach()
}

// reattachPause returns the backoff before re-attach attempt n (0-based).
func (s *Supervisor) reattachPause(n int) sim.Duration {
	d := float64(s.cfg.ReattachPause)
	if m := s.cfg.ReattachMult; m > 1 {
		for i := 0; i < n; i++ {
			d *= m
			if cap := float64(s.cfg.ReattachCap); cap > 0 && d > cap {
				d = cap
				break
			}
		}
	}
	return s.jittered(d)
}

func (s *Supervisor) scheduleReattach() {
	if s.cfg.MaxReattach > 0 && s.retries >= s.cfg.MaxReattach {
		s.transition(LinkDead)
		return
	}
	s.timer = s.p.Kernel().ArmTimer(s.reattachPause(s.retries), s, supReattach)
}

// reattach runs one re-attach handshake; gen pins the supervision epoch
// for the handshake's asynchronous completion callback.
func (s *Supervisor) reattach(gen uint64) {
	s.transition(LinkReattaching)
	s.stats.Reattaches++
	Attach(s.p, s.cfg.Attach, func(r AttachResult) {
		if s.stopped || s.gen != gen || s.state == LinkDead {
			return
		}
		if !r.OK {
			s.stats.FailedAttaches++
			s.retries++
			s.transition(LinkDown)
			s.scheduleReattach()
			return
		}
		rec := uint64(s.p.Kernel().Now().Sub(s.downAt))
		s.stats.Recoveries++
		s.stats.RecoverySumPs += rec
		if rec > s.stats.RecoveryMaxPs {
			s.stats.RecoveryMaxPs = rec
		}
		s.retries = 0
		s.transition(LinkUp)
		s.scheduleHeartbeat()
	})
}
