package control

import (
	"fmt"

	"thymesim/internal/sim"
)

// Prober abstracts the borrower's ability to exchange control-plane
// transactions with the lender NIC over the (delay-injected) datapath.
// *cluster.Testbed satisfies it.
type Prober interface {
	// SendProbe transmits one config/liveness transaction, calling done
	// with the round-trip time when the response arrives. It reports false
	// if the transaction could not be enqueued.
	SendProbe(done func(rtt sim.Duration)) bool
	// Kernel returns the simulation kernel for timers.
	Kernel() *sim.Kernel
}

// AttachConfig parameterizes the hot-plug handshake that libthymesisflow
// performs when configuring the FPGAs and attaching remote memory.
type AttachConfig struct {
	// ConfigOps is the number of sequential configuration transactions the
	// attach requires (FPGA register setup, window programming, ...).
	ConfigOps int
	// Timeout is the overall detection deadline: if the handshake has not
	// completed, the FPGA is declared "not detected" and the attach fails
	// — the Fig. 4 failure mode at PERIOD=10000.
	Timeout sim.Duration
	// Retry is the pause before re-attempting a transaction the NIC
	// couldn't accept.
	Retry sim.Duration
}

// DefaultAttachConfig mirrors the prototype's observed behaviour: the
// attach survives PERIOD=1000 (≈4 µs per gated transaction) but times out
// at PERIOD=10000 (≈40 µs per transaction).
func DefaultAttachConfig() AttachConfig {
	return AttachConfig{
		ConfigOps: 256,
		Timeout:   5 * sim.Millisecond,
		Retry:     10 * sim.Microsecond,
	}
}

// Validate checks the configuration.
func (c AttachConfig) Validate() error {
	if c.ConfigOps <= 0 {
		return fmt.Errorf("control: ConfigOps = %d", c.ConfigOps)
	}
	if c.Timeout <= 0 {
		return fmt.Errorf("control: Timeout = %v", c.Timeout)
	}
	if c.Retry <= 0 {
		return fmt.Errorf("control: Retry = %v", c.Retry)
	}
	return nil
}

// AttachResult reports the outcome of a hot-plug attempt.
type AttachResult struct {
	OK      bool
	Elapsed sim.Duration
	OpsDone int
	// MaxRTT is the slowest observed config transaction.
	MaxRTT sim.Duration
	Reason string
}

// Attach runs the hot-plug handshake: ConfigOps sequential transactions
// through the gated egress, with an overall detection deadline. done is
// called exactly once.
func Attach(p Prober, cfg AttachConfig, done func(AttachResult)) {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	k := p.Kernel()
	start := k.Now()
	res := AttachResult{}
	finished := false
	finish := func(ok bool, reason string) {
		if finished {
			return
		}
		finished = true
		res.OK = ok
		res.Reason = reason
		res.Elapsed = k.Now().Sub(start)
		done(res)
	}
	// Detection watchdog.
	k.After(cfg.Timeout, func() {
		finish(false, fmt.Sprintf("FPGA not detected: %d/%d config ops within %v",
			res.OpsDone, cfg.ConfigOps, cfg.Timeout))
	})
	var step func()
	step = func() {
		if finished {
			return
		}
		if res.OpsDone == cfg.ConfigOps {
			finish(true, "attached")
			return
		}
		ok := p.SendProbe(func(rtt sim.Duration) {
			if rtt > res.MaxRTT {
				res.MaxRTT = rtt
			}
			res.OpsDone++
			step()
		})
		if !ok {
			k.After(cfg.Retry, step)
		}
	}
	step()
}
