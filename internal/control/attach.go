package control

import (
	"fmt"

	"thymesim/internal/sim"
)

// Prober abstracts the borrower's ability to exchange control-plane
// transactions with the lender NIC over the (delay-injected) datapath.
// *cluster.Testbed satisfies it.
type Prober interface {
	// SendProbe transmits one config/liveness transaction, calling done
	// with the round-trip time when the response arrives. It reports false
	// if the transaction could not be enqueued.
	SendProbe(done func(rtt sim.Duration)) bool
	// Kernel returns the simulation kernel for timers.
	Kernel() *sim.Kernel
}

// AttachConfig parameterizes the hot-plug handshake that libthymesisflow
// performs when configuring the FPGAs and attaching remote memory.
type AttachConfig struct {
	// ConfigOps is the number of sequential configuration transactions the
	// attach requires (FPGA register setup, window programming, ...).
	ConfigOps int
	// Timeout is the overall detection deadline: if the handshake has not
	// completed, the FPGA is declared "not detected" and the attach fails
	// — the Fig. 4 failure mode at PERIOD=10000.
	Timeout sim.Duration
	// Retry is the pause before re-attempting a transaction the NIC
	// couldn't accept.
	Retry sim.Duration
	// RetryMult grows the pause across consecutive rejections (exponential
	// backoff); 0 or 1 keeps the pause fixed, reproducing the prototype's
	// behaviour. The pause resets to Retry after any accepted transaction.
	RetryMult float64
	// RetryCap bounds the grown pause (0 = uncapped).
	RetryCap sim.Duration
	// RetryJitter spreads each pause uniformly over [1-j, 1+j]; 0 disables
	// jitter. Jitter draws come from RetrySeed for reproducibility.
	RetryJitter float64
	RetrySeed   uint64
}

// DefaultAttachConfig mirrors the prototype's observed behaviour: the
// attach survives PERIOD=1000 (≈4 µs per gated transaction) but times out
// at PERIOD=10000 (≈40 µs per transaction).
func DefaultAttachConfig() AttachConfig {
	return AttachConfig{
		ConfigOps: 256,
		Timeout:   5 * sim.Millisecond,
		Retry:     10 * sim.Microsecond,
	}
}

// Validate checks the configuration.
func (c AttachConfig) Validate() error {
	if c.ConfigOps <= 0 {
		return fmt.Errorf("control: ConfigOps = %d", c.ConfigOps)
	}
	if c.Timeout <= 0 {
		return fmt.Errorf("control: Timeout = %v", c.Timeout)
	}
	if c.Retry <= 0 {
		return fmt.Errorf("control: Retry = %v", c.Retry)
	}
	if c.RetryMult != 0 && c.RetryMult < 1 {
		return fmt.Errorf("control: RetryMult = %g < 1", c.RetryMult)
	}
	if c.RetryCap < 0 {
		return fmt.Errorf("control: negative RetryCap")
	}
	if c.RetryJitter < 0 || c.RetryJitter >= 1 {
		return fmt.Errorf("control: RetryJitter = %g outside [0,1)", c.RetryJitter)
	}
	return nil
}

// retryPacer produces the sequence of backoff pauses an AttachConfig
// describes: fixed at Retry by default, exponential with optional cap and
// jitter when RetryMult > 1.
type retryPacer struct {
	cfg  AttachConfig
	rng  *sim.Rand
	next float64
}

func newRetryPacer(cfg AttachConfig) *retryPacer {
	p := &retryPacer{cfg: cfg, next: float64(cfg.Retry)}
	if cfg.RetryJitter > 0 {
		p.rng = sim.NewRand(cfg.RetrySeed)
	}
	return p
}

// pause returns the next pause and advances the backoff.
func (p *retryPacer) pause() sim.Duration {
	d := p.next
	if m := p.cfg.RetryMult; m > 1 {
		p.next *= m
		if cap := float64(p.cfg.RetryCap); cap > 0 && p.next > cap {
			p.next = cap
		}
	}
	if p.rng != nil {
		d *= 1 + p.cfg.RetryJitter*(2*p.rng.Float64()-1)
	}
	if d < 1 {
		d = 1
	}
	return sim.Duration(d)
}

// reset returns the backoff to its base pause (after a successful send).
func (p *retryPacer) reset() { p.next = float64(p.cfg.Retry) }

// AttachResult reports the outcome of a hot-plug attempt.
type AttachResult struct {
	OK      bool
	Elapsed sim.Duration
	OpsDone int
	// MaxRTT is the slowest observed config transaction.
	MaxRTT sim.Duration
	Reason string
}

// Attach runs the hot-plug handshake: ConfigOps sequential transactions
// through the gated egress, with an overall detection deadline. done is
// called exactly once.
func Attach(p Prober, cfg AttachConfig, done func(AttachResult)) {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	k := p.Kernel()
	start := k.Now()
	res := AttachResult{}
	finished := false
	finish := func(ok bool, reason string) {
		if finished {
			return
		}
		finished = true
		res.OK = ok
		res.Reason = reason
		res.Elapsed = k.Now().Sub(start)
		done(res)
	}
	// Detection watchdog.
	k.After(cfg.Timeout, func() {
		finish(false, fmt.Sprintf("FPGA not detected: %d/%d config ops within %v",
			res.OpsDone, cfg.ConfigOps, cfg.Timeout))
	})
	pacer := newRetryPacer(cfg)
	var step func()
	step = func() {
		if finished {
			return
		}
		if res.OpsDone == cfg.ConfigOps {
			finish(true, "attached")
			return
		}
		ok := p.SendProbe(func(rtt sim.Duration) {
			if rtt > res.MaxRTT {
				res.MaxRTT = rtt
			}
			res.OpsDone++
			step()
		})
		if !ok {
			k.After(pacer.pause(), step)
			return
		}
		pacer.reset()
	}
	step()
}
