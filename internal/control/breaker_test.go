package control

import (
	"testing"

	"thymesim/internal/sim"
)

func breakerConfig() BreakerConfig {
	return BreakerConfig{
		Window:         8,
		MinSamples:     4,
		TripRatio:      0.5,
		OpenTimeout:    100 * sim.Microsecond,
		OpenMult:       2,
		OpenCap:        400 * sim.Microsecond,
		HalfOpenProbes: 2,
		CloseAfter:     3,
	}
}

func mustBreaker(t *testing.T, k *sim.Kernel) *Breaker {
	t.Helper()
	b, err := NewBreaker(k, breakerConfig())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBreakerConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*BreakerConfig)
	}{
		{"zero window", func(c *BreakerConfig) { c.Window = 0 }},
		{"zero min samples", func(c *BreakerConfig) { c.MinSamples = 0 }},
		{"min samples above window", func(c *BreakerConfig) { c.MinSamples = c.Window + 1 }},
		{"trip ratio zero", func(c *BreakerConfig) { c.TripRatio = 0 }},
		{"trip ratio above one", func(c *BreakerConfig) { c.TripRatio = 1.5 }},
		{"zero dwell", func(c *BreakerConfig) { c.OpenTimeout = 0 }},
		{"open mult below one", func(c *BreakerConfig) { c.OpenMult = 0.5 }},
		{"cap below dwell", func(c *BreakerConfig) { c.OpenCap = c.OpenTimeout / 2 }},
		{"zero half-open probes", func(c *BreakerConfig) { c.HalfOpenProbes = 0 }},
		{"zero close-after", func(c *BreakerConfig) { c.CloseAfter = 0 }},
	}
	for _, tc := range cases {
		cfg := breakerConfig()
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if err := DefaultBreakerConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestBreakerTripsAtWindowThreshold(t *testing.T) {
	k := sim.NewKernel()
	b := mustBreaker(t, k)
	if b.State() != BreakerClosed {
		t.Fatalf("initial state %v", b.State())
	}
	// Three samples: below MinSamples, never trips even at 100% failure.
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker denied")
		}
		b.Record(false)
	}
	if b.State() != BreakerClosed {
		t.Fatal("tripped below MinSamples")
	}
	// Fourth failure reaches MinSamples=4 with ratio 1.0 >= 0.5: trip.
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after threshold", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed")
	}
	st := b.Stats()
	if st.Trips != 1 || st.ShortCircuited != 1 {
		t.Fatalf("trips=%d shortCircuited=%d", st.Trips, st.ShortCircuited)
	}
}

func TestBreakerMixedWindowBelowRatioStaysClosed(t *testing.T) {
	k := sim.NewKernel()
	b := mustBreaker(t, k)
	// 1 failure in every 4 samples: 25% < 50% trip ratio.
	for i := 0; i < 32; i++ {
		b.Record(i%4 == 0)
		b.Record(true)
		b.Record(true)
		b.Record(i%4 != 0)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("tripped at %.2f error rate", b.ErrorRate())
	}
}

func TestBreakerHalfOpenProbeLimit(t *testing.T) {
	k := sim.NewKernel()
	b := mustBreaker(t, k)
	for i := 0; i < 4; i++ {
		b.Record(false)
	}
	k.Run() // dwell elapses -> half-open
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v after dwell", b.State())
	}
	// Exactly HalfOpenProbes=2 trials admitted while none resolve.
	if !b.Allow() || !b.Allow() {
		t.Fatal("half-open denied a trial")
	}
	if b.Allow() {
		t.Fatal("half-open exceeded its trial budget")
	}
	// A resolved trial frees a slot.
	b.Record(true)
	if !b.Allow() {
		t.Fatal("resolved trial did not free a probe slot")
	}
}

func TestBreakerReopenDoublesDwell(t *testing.T) {
	k := sim.NewKernel()
	b := mustBreaker(t, k)
	for i := 0; i < 4; i++ {
		b.Record(false)
	}
	tripAt := k.Now()
	k.Run() // -> half-open after 100us
	b.Allow()
	b.Record(false) // trial fails -> reopen, dwell 200us
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after failed trial", b.State())
	}
	k.Run() // -> half-open again
	b.Allow()
	b.Record(false) // dwell 400us (capped)
	k.Run()
	b.Allow()
	b.Record(false) // dwell stays at cap 400us
	k.Run()
	tr := b.Transitions()
	// closed->open, open->half, half->open, open->half, half->open, open->half,
	// half->open, open->half.
	var halfAt []sim.Time
	for _, e := range tr {
		if e.To == BreakerHalfOpen {
			halfAt = append(halfAt, e.At)
		}
	}
	if len(halfAt) != 4 {
		t.Fatalf("half-open entries = %d", len(halfAt))
	}
	gaps := []sim.Duration{
		sim.Duration(halfAt[0] - tripAt),
		sim.Duration(halfAt[1] - halfAt[0]),
		sim.Duration(halfAt[2] - halfAt[1]),
		sim.Duration(halfAt[3] - halfAt[2]),
	}
	want := []sim.Duration{100 * sim.Microsecond, 200 * sim.Microsecond,
		400 * sim.Microsecond, 400 * sim.Microsecond}
	for i, g := range gaps {
		if g != want[i] {
			t.Fatalf("dwell %d = %v, want %v (backoff must double then cap)", i, g, want[i])
		}
	}
	if b.Stats().Reopens != 3 {
		t.Fatalf("reopens = %d", b.Stats().Reopens)
	}
}

func TestBreakerClosesAfterStreakAndResetsWindow(t *testing.T) {
	k := sim.NewKernel()
	b := mustBreaker(t, k)
	for i := 0; i < 4; i++ {
		b.Record(false)
	}
	k.Run() // -> half-open
	// CloseAfter=3 consecutive successes re-close the breaker.
	for i := 0; i < 3; i++ {
		if b.State() != BreakerHalfOpen {
			t.Fatalf("state %v mid-streak", b.State())
		}
		b.Allow()
		b.Record(true)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after success streak", b.State())
	}
	if b.ErrorRate() != 0 {
		t.Fatalf("window not reset on close: rate %.2f", b.ErrorRate())
	}
	if b.Stats().Closes != 1 {
		t.Fatalf("closes = %d", b.Stats().Closes)
	}
	// Dwell resets too: a fresh trip waits the base 100us again.
	for i := 0; i < 4; i++ {
		b.Record(false)
	}
	tripAt := k.Now()
	k.Run()
	tr := b.Transitions()
	last := tr[len(tr)-1]
	if last.To != BreakerHalfOpen || sim.Duration(last.At-tripAt) != 100*sim.Microsecond {
		t.Fatalf("dwell not reset on close: %+v (trip at %v)", last, tripAt)
	}
}

func TestBreakerTransitionLogLegal(t *testing.T) {
	k := sim.NewKernel()
	b := mustBreaker(t, k)
	for i := 0; i < 4; i++ {
		b.Record(false)
	}
	k.Run()
	b.Allow()
	b.Record(false)
	k.Run()
	for i := 0; i < 3; i++ {
		b.Allow()
		b.Record(true)
	}
	prev := BreakerClosed
	for i, e := range b.Transitions() {
		if e.From != prev {
			t.Fatalf("transition %d: from %v, previous state %v", i, e.From, prev)
		}
		if !ValidBreakerTransition(e.From, e.To) {
			t.Fatalf("illegal transition %v -> %v", e.From, e.To)
		}
		prev = e.To
	}
	if prev != b.State() {
		t.Fatalf("log ends at %v, state is %v", prev, b.State())
	}
}

func TestValidBreakerTransitionTable(t *testing.T) {
	legal := map[[2]BreakerState]bool{
		{BreakerClosed, BreakerOpen}:     true,
		{BreakerOpen, BreakerHalfOpen}:   true,
		{BreakerHalfOpen, BreakerOpen}:   true,
		{BreakerHalfOpen, BreakerClosed}: true,
	}
	states := []BreakerState{BreakerClosed, BreakerOpen, BreakerHalfOpen}
	for _, from := range states {
		for _, to := range states {
			want := legal[[2]BreakerState{from, to}]
			if got := ValidBreakerTransition(from, to); got != want {
				t.Errorf("ValidBreakerTransition(%v, %v) = %t, want %t", from, to, got, want)
			}
		}
	}
}

func TestBreakerClosedPathAllocs(t *testing.T) {
	k := sim.NewKernel()
	b := mustBreaker(t, k)
	// Warm the ring.
	for i := 0; i < 16; i++ {
		b.Allow()
		b.Record(true)
	}
	if n := testing.AllocsPerRun(1000, func() {
		b.Allow()
		b.Record(true)
	}); n != 0 {
		t.Fatalf("closed-path Allow+Record allocates %.1f/op", n)
	}
}
