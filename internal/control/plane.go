// Package control models the disaggregation control plane of §II-A: it
// assigns borrower/lender roles, reserves lender memory, drives the
// hot-plug attach handshake (libthymesisflow's job in the prototype), and
// hosts the allocation policies the paper's insights motivate —
// contention-aware placement and QoS-aware treatment of latency-sensitive
// workloads.
package control

import (
	"errors"
	"fmt"
	"sort"

	"thymesim/internal/sim"
)

// Role is a node's current function in the memory-borrowing model.
type Role int

// Roles. A node may be Idle (neither borrowing nor lending); role
// assignment is dynamic (§II-A).
const (
	RoleIdle Role = iota
	RoleBorrower
	RoleLender
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleIdle:
		return "idle"
	case RoleBorrower:
		return "borrower"
	case RoleLender:
		return "lender"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// Node is the control plane's view of one machine.
type Node struct {
	ID       int
	TotalMem uint64
	FreeMem  uint64
	Role     Role
	// RunningApps counts applications currently executing on the node —
	// the contention signal the paper's Fig. 6/7 insight concerns.
	RunningApps int
}

// Reservation is a granted block of lender memory.
type Reservation struct {
	ID       int
	Borrower int
	Lender   int
	Size     uint64
	// Class is the QoS class of the borrowing application.
	Class QoSClass
}

// QoSClass labels an application's sensitivity to remote-memory latency
// (the paper's Fig. 5 shows this varies by orders of magnitude).
type QoSClass int

// QoS classes.
const (
	// ClassLatencyTolerant suits network-stack-bound services (Redis-like):
	// <1% degradation under tens of microseconds of injected delay.
	ClassLatencyTolerant QoSClass = iota
	// ClassLatencySensitive suits memory-bound applications (Graph500-like):
	// order-of-magnitude slowdowns under the same delay.
	ClassLatencySensitive
)

// String implements fmt.Stringer.
func (c QoSClass) String() string {
	if c == ClassLatencySensitive {
		return "latency-sensitive"
	}
	return "latency-tolerant"
}

// Policy selects a lender for a reservation.
type Policy interface {
	// Pick returns the chosen lender's index within candidates, or -1 if
	// none is acceptable. candidates all have enough free memory.
	Pick(candidates []*Node, size uint64, class QoSClass) int
	// Name identifies the policy in reports.
	Name() string
}

// FirstFit picks the lowest-ID candidate.
type FirstFit struct{}

// Pick implements Policy.
func (FirstFit) Pick(c []*Node, _ uint64, _ QoSClass) int {
	if len(c) == 0 {
		return -1
	}
	best := 0
	for i, n := range c {
		if n.ID < c[best].ID {
			best = i
		}
	}
	return best
}

// Name implements Policy.
func (FirstFit) Name() string { return "first-fit" }

// BestFit picks the candidate with least free memory that still fits,
// minimizing fragmentation.
type BestFit struct{}

// Pick implements Policy.
func (BestFit) Pick(c []*Node, _ uint64, _ QoSClass) int {
	if len(c) == 0 {
		return -1
	}
	best := 0
	for i, n := range c {
		if n.FreeMem < c[best].FreeMem {
			best = i
		}
	}
	return best
}

// Name implements Policy.
func (BestFit) Name() string { return "best-fit" }

// Random picks uniformly.
type Random struct{ Rng *sim.Rand }

// Pick implements Policy.
func (r Random) Pick(c []*Node, _ uint64, _ QoSClass) int {
	if len(c) == 0 {
		return -1
	}
	return r.Rng.Intn(len(c))
}

// Name implements Policy.
func (Random) Name() string { return "random" }

// ContentionAware prefers the lender with the fewest running applications.
// The paper's Fig. 7 finding — lender-side memory contention barely affects
// the borrower — means this policy buys little for borrowing placement,
// making busy and idle lenders "equally viable candidates"; the policy
// exists so the ablation bench can demonstrate exactly that.
type ContentionAware struct{}

// Pick implements Policy.
func (ContentionAware) Pick(c []*Node, _ uint64, _ QoSClass) int {
	if len(c) == 0 {
		return -1
	}
	best := 0
	for i, n := range c {
		if n.RunningApps < c[best].RunningApps {
			best = i
		}
	}
	return best
}

// Name implements Policy.
func (ContentionAware) Name() string { return "contention-aware" }

// Errors returned by Plane.
var (
	ErrNoLender     = errors.New("control: no lender with sufficient free memory")
	ErrUnknownNode  = errors.New("control: unknown node")
	ErrNotFound     = errors.New("control: reservation not found")
	ErrSelfLending  = errors.New("control: node cannot lend to itself")
	ErrRoleConflict = errors.New("control: node already has conflicting role")
)

// Plane is the datacenter-wide control plane state.
type Plane struct {
	nodes  map[int]*Node
	order  []int
	resv   map[int]*Reservation
	nextID int
}

// NewPlane returns an empty control plane.
func NewPlane() *Plane {
	return &Plane{nodes: make(map[int]*Node), resv: make(map[int]*Reservation)}
}

// AddNode registers a machine.
func (p *Plane) AddNode(id int, totalMem uint64) *Node {
	if _, dup := p.nodes[id]; dup {
		panic(fmt.Sprintf("control: duplicate node %d", id))
	}
	n := &Node{ID: id, TotalMem: totalMem, FreeMem: totalMem}
	p.nodes[id] = n
	p.order = append(p.order, id)
	sort.Ints(p.order)
	return n
}

// Node returns the node with the given id, or nil.
func (p *Plane) Node(id int) *Node { return p.nodes[id] }

// Nodes returns all nodes in id order.
func (p *Plane) Nodes() []*Node {
	out := make([]*Node, 0, len(p.order))
	for _, id := range p.order {
		out = append(out, p.nodes[id])
	}
	return out
}

// Reservations returns all live reservations in id order.
func (p *Plane) Reservations() []*Reservation {
	ids := make([]int, 0, len(p.resv))
	for id := range p.resv {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]*Reservation, 0, len(ids))
	for _, id := range ids {
		out = append(out, p.resv[id])
	}
	return out
}

// Reserve allocates size bytes for borrower using policy, assigning roles.
func (p *Plane) Reserve(borrower int, size uint64, class QoSClass, policy Policy) (*Reservation, error) {
	b, ok := p.nodes[borrower]
	if !ok {
		return nil, ErrUnknownNode
	}
	if b.Role == RoleLender {
		return nil, ErrRoleConflict
	}
	var candidates []*Node
	for _, id := range p.order {
		n := p.nodes[id]
		if n.ID == borrower || n.Role == RoleBorrower {
			continue
		}
		if n.FreeMem >= size {
			candidates = append(candidates, n)
		}
	}
	idx := policy.Pick(candidates, size, class)
	if idx < 0 || idx >= len(candidates) {
		return nil, ErrNoLender
	}
	lender := candidates[idx]
	if lender.ID == borrower {
		return nil, ErrSelfLending
	}
	lender.FreeMem -= size
	lender.Role = RoleLender
	b.Role = RoleBorrower
	p.nextID++
	r := &Reservation{ID: p.nextID, Borrower: borrower, Lender: lender.ID, Size: size, Class: class}
	p.resv[r.ID] = r
	return r, nil
}

// Release frees a reservation and demotes roles that are no longer held.
func (p *Plane) Release(id int) error {
	r, ok := p.resv[id]
	if !ok {
		return ErrNotFound
	}
	delete(p.resv, id)
	p.nodes[r.Lender].FreeMem += r.Size
	lends, borrows := false, false
	for _, other := range p.resv {
		if other.Lender == r.Lender {
			lends = true
		}
		if other.Borrower == r.Borrower {
			borrows = true
		}
	}
	if !lends {
		p.nodes[r.Lender].Role = RoleIdle
	}
	if !borrows {
		p.nodes[r.Borrower].Role = RoleIdle
	}
	return nil
}

// QoSAware places by measured latency sensitivity: latency-tolerant
// applications take any lender (delegating to Fallback), while
// latency-sensitive ones are refused remote placement altogether — the
// control plane should keep them on local memory (or migrate them there,
// see internal/migrate) during periods of elevated network latency.
type QoSAware struct {
	// Fallback picks the lender for tolerant classes (FirstFit if nil).
	Fallback Policy
}

// Pick implements Policy.
func (q QoSAware) Pick(c []*Node, size uint64, class QoSClass) int {
	if class == ClassLatencySensitive {
		return -1
	}
	fb := q.Fallback
	if fb == nil {
		fb = FirstFit{}
	}
	return fb.Pick(c, size, class)
}

// Name implements Policy.
func (QoSAware) Name() string { return "qos-aware" }
