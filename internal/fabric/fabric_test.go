package fabric

import (
	"testing"

	"thymesim/internal/axis"
	"thymesim/internal/memport"
	"thymesim/internal/ocapi"
	"thymesim/internal/sim"
)

func TestSwitchConfigValidation(t *testing.T) {
	if err := DefaultSwitchConfig(4).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []SwitchConfig{
		{Ports: 1, LinkBandwidthBps: 1, OutputQueue: 1},
		{Ports: 2, LinkBandwidthBps: 0, OutputQueue: 1},
		{Ports: 2, LinkBandwidthBps: 1, OutputQueue: 0},
		{Ports: 2, LinkBandwidthBps: 1, OutputQueue: 1, SwitchLatency: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSwitchForwardsByPacketDst(t *testing.T) {
	k := sim.NewKernel()
	sw := NewSwitch(k, DefaultSwitchConfig(3))
	mk := func(dst uint16) axis.Beat {
		p := ocapi.Packet{Op: ocapi.OpProbe, Src: 0, Dst: dst}
		return axis.Beat{Bytes: p.WireBytes(), Meta: p}
	}
	k.At(0, func() {
		sw.ports[0].In.Push(mk(1))
		sw.ports[0].In.Push(mk(2))
		sw.ports[0].In.Push(mk(1))
	})
	k.Run()
	if sw.ports[1].Out.Len() != 2 || sw.ports[2].Out.Len() != 1 {
		t.Fatalf("out lens = %d/%d", sw.ports[1].Out.Len(), sw.ports[2].Out.Len())
	}
	if sw.Forwarded() != 3 {
		t.Fatalf("forwarded = %d", sw.Forwarded())
	}
}

func TestSwitchDropsUnroutable(t *testing.T) {
	k := sim.NewKernel()
	sw := NewSwitch(k, DefaultSwitchConfig(2))
	k.At(0, func() {
		p := ocapi.Packet{Op: ocapi.OpProbe, Src: 0, Dst: 99}
		sw.ports[0].In.Push(axis.Beat{Bytes: 10, Meta: p})
		sw.ports[0].In.Push(axis.Beat{Bytes: 10, Meta: "garbage"})
	})
	k.Run()
	if sw.Dropped() != 2 {
		t.Fatalf("dropped = %d", sw.Dropped())
	}
}

func TestSwitchLatencyApplied(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultSwitchConfig(2)
	cfg.SwitchLatency = sim.Duration(sim.Microsecond)
	sw := NewSwitch(k, cfg)
	var at sim.Time
	sw.ports[1].Out.OnData(func() { at = k.Now() })
	k.At(0, func() {
		p := ocapi.Packet{Op: ocapi.OpProbe, Src: 0, Dst: 1}
		sw.ports[0].In.Push(axis.Beat{Bytes: 10, Meta: p})
	})
	k.Run()
	if at != sim.Time(sim.Microsecond) {
		t.Fatalf("forwarded at %v, want 1us", at)
	}
}

func TestDCConfigValidation(t *testing.T) {
	if err := DefaultDCConfig(4).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultDCConfig(4)
	bad.Nodes = 1
	if err := bad.Validate(); err == nil {
		t.Error("1 node accepted")
	}
	bad = DefaultDCConfig(4)
	bad.Switch.Ports = 2
	if err := bad.Validate(); err == nil {
		t.Error("ports < nodes accepted")
	}
}

// dcRead reads n distinct lines from lender memory through the fabric and
// returns the elapsed simulated time.
func dcRead(t *testing.T, d *Datacenter, h *memport.Hierarchy, base uint64, n int) {
	t.Helper()
	done := 0
	d.K.At(d.K.Now(), func() {
		for i := 0; i < n; i++ {
			h.Access(base+uint64(i)*ocapi.CacheLineSize, 8, false, func() { done++ })
		}
	})
	d.K.Run()
	if done != n {
		t.Fatalf("completed %d/%d", done, n)
	}
}

func TestDatacenterBorrowAndAccess(t *testing.T) {
	d := NewDatacenter(DefaultDCConfig(3))
	base, err := d.Borrow(0, 1, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	h := d.NewHierarchy(0, 1)
	dcRead(t, d, h, base, 100)
	if d.Nodes[1].Mem.Reads() != 100 {
		t.Fatalf("lender reads = %d", d.Nodes[1].Mem.Reads())
	}
	if d.Nodes[2].Mem.Reads() != 0 {
		t.Fatalf("bystander touched: %d", d.Nodes[2].Mem.Reads())
	}
	if d.Switch.Forwarded() == 0 {
		t.Fatal("traffic bypassed the switch")
	}
}

func TestDatacenterSelfBorrowRejected(t *testing.T) {
	d := NewDatacenter(DefaultDCConfig(2))
	if _, err := d.Borrow(0, 0, 1<<20); err == nil {
		t.Fatal("self borrow accepted")
	}
}

func TestDatacenterMultipleBorrowersShareLenderLink(t *testing.T) {
	// Incast: two borrowers streaming from the same lender must each see
	// roughly half the single-borrower bandwidth (the lender's switch
	// port is the shared bottleneck).
	run := func(borrowers int) float64 {
		d := NewDatacenter(DefaultDCConfig(4))
		type flow struct {
			h    *memport.Hierarchy
			base uint64
		}
		var flows []flow
		for b := 0; b < borrowers; b++ {
			base, err := d.Borrow(b, 3, 1<<30)
			if err != nil {
				t.Fatal(err)
			}
			flows = append(flows, flow{d.NewHierarchy(b, 3), base})
		}
		const lines = 1500
		done := 0
		d.K.At(0, func() {
			for _, f := range flows {
				f := f
				for i := 0; i < lines; i++ {
					f.h.Access(f.base+uint64(i)*ocapi.CacheLineSize, 8, false, func() { done++ })
				}
			}
		})
		end := d.K.Run()
		if done != borrowers*lines {
			t.Fatalf("done = %d", done)
		}
		// Per-borrower bandwidth.
		return float64(lines*ocapi.CacheLineSize) / sim.Time(end).Seconds()
	}
	alone := run(1)
	shared := run(2)
	ratio := shared / alone
	if ratio < 0.35 || ratio > 0.7 {
		t.Fatalf("incast ratio = %v, want ~0.5", ratio)
	}
}

func TestDatacenterDisjointPairsDoNotInterfere(t *testing.T) {
	run := func(pairs int) sim.Time {
		d := NewDatacenter(DefaultDCConfig(4))
		done := 0
		var hs []*memport.Hierarchy
		var bases []uint64
		for p := 0; p < pairs; p++ {
			base, err := d.Borrow(2*p, 2*p+1, 1<<30)
			if err != nil {
				t.Fatal(err)
			}
			hs = append(hs, d.NewHierarchy(2*p, 2*p+1))
			bases = append(bases, base)
		}
		const lines = 800
		d.K.At(0, func() {
			for i, h := range hs {
				h, base := h, bases[i]
				for j := 0; j < lines; j++ {
					h.Access(base+uint64(j)*ocapi.CacheLineSize, 8, false, func() { done++ })
				}
			}
		})
		end := d.K.Run()
		if done != pairs*lines {
			t.Fatalf("done = %d", done)
		}
		return end
	}
	one := run(1)
	two := run(2)
	// Disjoint pairs through an output-queued switch: no shared
	// bottleneck, so wall time barely changes.
	if float64(two) > 1.2*float64(one) {
		t.Fatalf("disjoint pairs interfered: %v vs %v", two, one)
	}
}

func TestDatacenterWithInjectionGate(t *testing.T) {
	// Install a pathological gate on node 0 only: its traffic crawls,
	// node 2's traffic is unaffected.
	cfg := DefaultDCConfig(4)
	cfg.Gate = func(node int) axis.Gate {
		if node == 0 {
			return slowGate{}
		}
		return nil
	}
	d := NewDatacenter(cfg)
	b0, _ := d.Borrow(0, 1, 1<<30)
	b2, _ := d.Borrow(2, 3, 1<<30)
	h0 := d.NewHierarchy(0, 1)
	h2 := d.NewHierarchy(2, 3)
	var t0, t2 sim.Time
	d.K.At(0, func() {
		h0.Access(b0, 8, false, func() { t0 = d.K.Now() })
		h2.Access(b2, 8, false, func() { t2 = d.K.Now() })
	})
	d.K.Run()
	if t0 <= t2+sim.Time(50*sim.Microsecond) {
		t.Fatalf("gated node not delayed: %v vs %v", t0, t2)
	}
}

// slowGate quantizes transfers onto a 100us grid (Next must be idempotent
// per the axis.Gate contract).
type slowGate struct{}

func (slowGate) Next(now sim.Time) sim.Time {
	const q = sim.Time(100 * sim.Microsecond)
	return (now + q - 1) / q * q
}
func (slowGate) Commit(sim.Time) {}

// TestSwitchBlockedInputResumesOnCredit pins the head-of-line wakeup path:
// an input blocked on a full output must resume — through the per-output
// waiting list, not a broadcast subscription — as soon as the output
// drains, and beats must arrive complete and in order.
func TestSwitchBlockedInputResumesOnCredit(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultSwitchConfig(3)
	cfg.OutputQueue = 2 // tiny, so the input blocks quickly
	sw := NewSwitch(k, cfg)
	const beats = 8
	sent := 0
	var feed func()
	feed = func() {
		for sent < beats && sw.ports[0].In.Space() > 0 {
			p := ocapi.Packet{Op: ocapi.OpProbe, Src: 0, Dst: 1, Tag: uint32(sent)}
			sw.ports[0].In.Push(axis.Beat{Bytes: 10, Meta: p})
			sent++
		}
		if sent < beats {
			k.After(sim.Microsecond, feed)
		}
	}
	k.At(0, feed)
	// A slow consumer: drain one beat per 10us, forcing repeated
	// block/unblock cycles at the forwarding engine.
	var got []uint32
	var drain func()
	drain = func() {
		if b, ok := sw.ports[1].Out.Pop(); ok {
			got = append(got, b.Meta.(ocapi.Packet).Tag)
		}
		if len(got) < beats {
			k.After(10*sim.Microsecond, drain)
		}
	}
	k.After(10*sim.Microsecond, drain)
	k.Run()
	if len(got) != beats {
		t.Fatalf("drained %d of %d beats", len(got), beats)
	}
	for i, tag := range got {
		if tag != uint32(i) {
			t.Fatalf("beat %d has tag %d: reordered across block/unblock", i, tag)
		}
	}
	if sw.Forwarded() != beats {
		t.Fatalf("forwarded = %d", sw.Forwarded())
	}
}

// TestSwitchRejectsDoubleAttach pins the one-NIC-per-port contract.
func TestSwitchRejectsDoubleAttach(t *testing.T) {
	k := sim.NewKernel()
	sw := NewSwitch(k, DefaultSwitchConfig(2))
	nic := NICPorts{
		TxQ: axis.NewFIFO("tx", 4),
		RxQ: axis.NewFIFO("rx", 4),
	}
	sw.AttachNIC(0, nic)
	defer func() {
		if recover() == nil {
			t.Fatal("double attach accepted")
		}
	}()
	sw.AttachNIC(0, NICPorts{TxQ: axis.NewFIFO("tx2", 4), RxQ: axis.NewFIFO("rx2", 4)})
}

// TestDatacenterRepeatedBorrowsDisjoint is the regression test for the
// overlapping-window bug: two borrows by the same borrower from the same
// lender used to map to the same lender base address. They must carve
// disjoint lender segments, and writes through one window must not be
// visible through the other.
func TestDatacenterRepeatedBorrowsDisjoint(t *testing.T) {
	d := NewDatacenter(DefaultDCConfig(3))
	const size = 1 << 20
	a, err := d.Borrow(0, 1, size)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Borrow(0, 1, size)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatalf("both borrows landed at borrower base %#x", a)
	}
	xl := d.Nodes[0].NIC.Translator()
	_, la, ok := xl.Translate(a)
	if !ok {
		t.Fatalf("window %#x does not translate", a)
	}
	_, lb, ok := xl.Translate(b)
	if !ok {
		t.Fatalf("window %#x does not translate", b)
	}
	if la == lb {
		t.Fatalf("both windows alias lender address %#x", la)
	}
	if la+size > lb && lb+size > la {
		t.Fatalf("lender segments overlap: %#x and %#x", la, lb)
	}
	// A second borrower carves from the same reservation — still disjoint.
	c, err := d.Borrow(2, 1, size)
	if err != nil {
		t.Fatal(err)
	}
	_, lc, ok := d.Nodes[2].NIC.Translator().Translate(c)
	if !ok {
		t.Fatalf("window %#x does not translate", c)
	}
	if lc == la || lc == lb {
		t.Fatalf("borrower 2's segment aliases borrower 0's: %#x", lc)
	}
	if got := d.Nodes[1].Alloc.Allocated(); got != 3*size {
		t.Fatalf("lender carved %d bytes, want %d", got, 3*size)
	}
}

// TestDatacenterBorrowExhaustsLender pins overcommit rejection: borrows
// beyond the lender's reservation fail instead of aliasing memory.
func TestDatacenterBorrowExhaustsLender(t *testing.T) {
	cfg := DefaultDCConfig(2)
	cfg.LenderCapacity = 1 << 20
	d := NewDatacenter(cfg)
	if _, err := d.Borrow(0, 1, 1<<20); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Borrow(0, 1, ocapi.CacheLineSize); err == nil {
		t.Fatal("borrow beyond the lender reservation accepted")
	}
}
