package fabric

import (
	"fmt"

	"thymesim/internal/axis"
	"thymesim/internal/cache"
	"thymesim/internal/dram"
	"thymesim/internal/memport"
	"thymesim/internal/ocapi"
	"thymesim/internal/pool"
	"thymesim/internal/sim"
	"thymesim/internal/tfnic"
)

// BorrowBase is where hot-plugged windows begin in every borrower's
// physical address space; LendBase is where each node's lendable
// reservation sits in its own memory.
const (
	BorrowBase uint64 = 0x1000_0000_0000
	LendBase   uint64 = 0x20_0000_0000
)

// DCConfig parameterizes a switched multi-node deployment.
type DCConfig struct {
	Nodes  int
	Switch SwitchConfig
	NIC    tfnic.Config // NodeID is overwritten per node
	DRAM   dram.Config
	LLC    cache.Config
	// PortLatency is the CPU<->NIC transport per direction.
	PortLatency sim.Duration
	MSHRs       int
	TagSpace    int
	// Gate optionally installs a delay-injection gate at every borrower
	// egress (nil = vanilla).
	Gate func(node int) axis.Gate
	// LenderCapacity is the lendable reservation each node exposes, in
	// bytes (0 = 64 GiB). Borrows carve disjoint segments out of it.
	LenderCapacity uint64
}

// lenderCapacity returns the effective per-node reservation.
func (c DCConfig) lenderCapacity() uint64 {
	if c.LenderCapacity != 0 {
		return c.LenderCapacity
	}
	return 64 << 30
}

// DefaultDCConfig returns an N-node rack with AC922-like nodes.
func DefaultDCConfig(nodes int) DCConfig {
	return DCConfig{
		Nodes:       nodes,
		Switch:      DefaultSwitchConfig(nodes),
		NIC:         tfnic.DefaultConfig(0),
		DRAM:        dram.AC922Config(),
		LLC:         cache.Config{SizeBytes: 64 << 10, Ways: 4, LineSize: ocapi.CacheLineSize},
		PortLatency: 150 * sim.Nanosecond,
		MSHRs:       memport.DefaultMSHRs,
		TagSpace:    256,
	}
}

// Validate checks the configuration.
func (c DCConfig) Validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("fabric: nodes = %d", c.Nodes)
	}
	if c.Nodes > c.Switch.Ports {
		return fmt.Errorf("fabric: %d nodes exceed %d switch ports", c.Nodes, c.Switch.Ports)
	}
	if c.MSHRs <= 0 || c.TagSpace < c.MSHRs {
		return fmt.Errorf("fabric: MSHRs=%d tags=%d", c.MSHRs, c.TagSpace)
	}
	if err := c.Switch.Validate(); err != nil {
		return err
	}
	if c.LenderCapacity%ocapi.CacheLineSize != 0 {
		return fmt.Errorf("fabric: LenderCapacity %d not line-aligned", c.LenderCapacity)
	}
	if err := c.DRAM.Validate(); err != nil {
		return err
	}
	return c.LLC.Validate()
}

// DCNode is one machine in the deployment.
type DCNode struct {
	ID  int
	NIC *tfnic.NIC
	Mem *dram.DRAM
	// Alloc carves this node's lendable reservation into the disjoint
	// segments other nodes borrow.
	Alloc *pool.Allocator
	// nextWindow tracks where the next borrow window lands in this
	// borrower's address space; tagCursor hands out disjoint tag ranges
	// to the node's backends.
	nextWindow uint64
	tagCursor  uint32
	backends   []*memport.RemoteBackend
}

// Datacenter is a switched multi-node disaggregated-memory deployment.
type Datacenter struct {
	K      *sim.Kernel
	Switch *Switch
	Nodes  []*DCNode
	cfg    DCConfig
}

// NewDatacenter wires cfg.Nodes machines to one switch.
func NewDatacenter(cfg DCConfig) *Datacenter {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	k := sim.NewKernel()
	d := &Datacenter{K: k, cfg: cfg}
	d.Switch = NewSwitch(k, cfg.Switch)
	for i := 0; i < cfg.Nodes; i++ {
		nicCfg := cfg.NIC
		nicCfg.NodeID = i
		var gate axis.Gate
		if cfg.Gate != nil {
			gate = cfg.Gate(i)
		}
		mem := dram.New(k, cfg.DRAM)
		nic := tfnic.New(k, nicCfg, gate, mem)
		alloc, err := pool.NewAllocator(i, LendBase, cfg.lenderCapacity(), ocapi.CacheLineSize)
		if err != nil {
			panic(err)
		}
		node := &DCNode{ID: i, NIC: nic, Mem: mem, Alloc: alloc, nextWindow: BorrowBase}
		nic.OnDeliver = node.deliver
		d.Switch.AttachNIC(i, NICPorts{TxQ: nic.TxQ, RxQ: nic.RxQ})
		d.Nodes = append(d.Nodes, node)
	}
	return d
}

// Borrow carves size bytes out of the lender's reservation, programs a
// window for it on the borrower's NIC, and returns the borrower-side base
// address. Each borrow gets a disjoint lender segment, so repeated borrows
// — by one borrower or many — never alias the same lender memory, and a
// drained lender rejects further borrows instead of silently overcommitting.
func (d *Datacenter) Borrow(borrower, lender int, size uint64) (uint64, error) {
	if borrower == lender {
		return 0, fmt.Errorf("fabric: node %d cannot borrow from itself", borrower)
	}
	b := d.Nodes[borrower]
	seg, err := d.Nodes[lender].Alloc.Alloc(size)
	if err != nil {
		return 0, err
	}
	base := b.nextWindow
	w := tfnic.Window{
		BorrowerBase: base,
		LenderBase:   seg.Base,
		Size:         seg.Size,
		LenderNode:   lender,
	}
	if err := b.NIC.Translator().AddWindow(w); err != nil {
		if ferr := d.Nodes[lender].Alloc.Free(seg); ferr != nil {
			panic(ferr)
		}
		return 0, err
	}
	b.nextWindow += seg.Size
	return base, nil
}

// deliver routes a response to the backend owning its tag range.
func (n *DCNode) deliver(p ocapi.Packet) {
	for _, b := range n.backends {
		if b.Owns(p.Tag) {
			b.Deliver(p)
			return
		}
	}
	panic(fmt.Sprintf("fabric: node %d received response with unowned tag %d", n.ID, p.Tag))
}

// NewHierarchy returns a CPU-side hierarchy on the given borrower whose
// misses traverse the switched fabric to the given lender. Each call
// creates a dedicated backend with a disjoint tag range so several
// hierarchies (and lenders) can share one NIC.
func (d *Datacenter) NewHierarchy(borrower, lender int) *memport.Hierarchy {
	node := d.Nodes[borrower]
	base := node.tagCursor
	node.tagCursor += uint32(d.cfg.TagSpace)
	backend := memport.NewRemoteBackendTags(d.K, node.NIC, base, d.cfg.TagSpace, d.cfg.PortLatency, uint16(borrower), uint16(lender))
	node.backends = append(node.backends, backend)
	return memport.NewHierarchy(d.K, cache.New(d.cfg.LLC), backend, d.cfg.MSHRs)
}
