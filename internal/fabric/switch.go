// Package fabric models the switched datacenter network that beyond-rack
// memory disaggregation requires (§II-B): an output-queued switch with
// per-port links, so that multiple borrower-lender pairs share paths and
// congestion manifests as increased, variable remote-memory latency — the
// failure mode the paper's delay injector emulates on the point-to-point
// prototype.
package fabric

import (
	"fmt"

	"thymesim/internal/axis"
	"thymesim/internal/metricsplane"
	"thymesim/internal/netlink"
	"thymesim/internal/ocapi"
	"thymesim/internal/sim"
)

// SwitchConfig parameterizes the switch.
type SwitchConfig struct {
	// Ports is the number of switch ports.
	Ports int
	// LinkBandwidthBps and LinkPropagation describe each port's cable.
	LinkBandwidthBps float64
	LinkPropagation  sim.Duration
	// SwitchLatency is the fixed forwarding latency (lookup + crossbar).
	SwitchLatency sim.Duration
	// OutputQueue bounds each output port's queue in beats; when full,
	// upstream backpressure applies (PFC-style lossless fabric).
	OutputQueue int
	// InputQueue bounds each input port's queue in beats; zero means
	// OutputQueue. Sharded pools deepen inputs past the worst-case
	// outstanding-tag population so the cable never backpressures at the
	// shard cut (see cluster.PoolConfig), while output queues keep
	// modeling egress contention.
	InputQueue int
}

// DefaultSwitchConfig returns a 100 Gb/s, shallow-buffer ToR-like switch.
func DefaultSwitchConfig(ports int) SwitchConfig {
	return SwitchConfig{
		Ports:            ports,
		LinkBandwidthBps: netlink.DefaultBandwidthBps,
		LinkPropagation:  netlink.DefaultPropagation,
		SwitchLatency:    300 * sim.Nanosecond,
		OutputQueue:      256,
	}
}

// Validate checks the configuration.
func (c SwitchConfig) Validate() error {
	if c.Ports < 2 {
		return fmt.Errorf("fabric: ports = %d", c.Ports)
	}
	if c.LinkBandwidthBps <= 0 {
		return fmt.Errorf("fabric: bandwidth = %v", c.LinkBandwidthBps)
	}
	if c.SwitchLatency < 0 || c.LinkPropagation < 0 {
		return fmt.Errorf("fabric: negative latency")
	}
	if c.OutputQueue <= 0 {
		return fmt.Errorf("fabric: output queue = %d", c.OutputQueue)
	}
	if c.InputQueue < 0 {
		return fmt.Errorf("fabric: input queue = %d", c.InputQueue)
	}
	return nil
}

// Port is one switch port's endpoint-facing FIFO pair: the attached device
// writes to In (toward the switch) and reads from Out.
type Port struct {
	In  *axis.FIFO
	Out *axis.FIFO
}

// Switch is an output-queued crossbar. Beats are routed by the node id in
// their ocapi.Packet metadata: attach each node's NIC to the port matching
// its id (port i serves node i).
type Switch struct {
	k     *sim.Kernel
	cfg   SwitchConfig
	ports []Port

	forwarded uint64
	dropped   uint64
	// occupancy peaks per output for congestion diagnostics; outInflight
	// counts beats in the forwarding pipeline per output so concurrent
	// input ports cannot jointly overflow an output queue.
	peakOcc     []int
	outInflight []int
	// kicks holds each input's forwarding engine; waiting[out][in] marks
	// inputs head-of-line blocked on an output, so freed credit wakes
	// exactly the blocked engines (in input order) instead of every input
	// subscribing to every output — O(P) callbacks, not O(P²).
	kicks    []func()
	waiting  [][]bool
	attached []bool

	// mx holds per-output-port metric bundles; mxDropped the switch-wide
	// drop counter. Both nil when the metrics plane is disabled.
	mx        []*metricsplane.SwitchPortMetrics
	mxDropped *metricsplane.Counter
}

// NewSwitch builds the switch and its port FIFOs; devices are attached by
// connecting their NIC TxQ/RxQ to a port via netlink channels (see
// AttachNIC).
func NewSwitch(k *sim.Kernel, cfg SwitchConfig) *Switch {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &Switch{
		k: k, cfg: cfg,
		peakOcc:     make([]int, cfg.Ports),
		outInflight: make([]int, cfg.Ports),
		kicks:       make([]func(), cfg.Ports),
		waiting:     make([][]bool, cfg.Ports),
		attached:    make([]bool, cfg.Ports),
	}
	inQ := cfg.InputQueue
	if inQ == 0 {
		inQ = cfg.OutputQueue
	}
	outs := make([]*axis.FIFO, cfg.Ports)
	for i := 0; i < cfg.Ports; i++ {
		in := axis.NewFIFO(fmt.Sprintf("sw-in%d", i), inQ)
		out := axis.NewFIFO(fmt.Sprintf("sw-out%d", i), cfg.OutputQueue)
		s.ports = append(s.ports, Port{In: in, Out: out})
		outs[i] = out
		s.waiting[i] = make([]bool, cfg.Ports)
	}
	// One forwarding engine per input port: parse destination, apply
	// switch latency, enqueue at the output (blocking when full).
	for i := 0; i < cfg.Ports; i++ {
		s.forwardLoop(i, s.ports[i].In, outs)
	}
	// One waker per output: when credit frees, resume only the inputs
	// blocked on this output, in input-index order (the same order the
	// broadcast subscription fired them in, so scheduling is unchanged).
	for o := 0; o < cfg.Ports; o++ {
		o := o
		outs[o].OnSpace(func() {
			blocked := s.waiting[o]
			for i := range blocked {
				if blocked[i] {
					blocked[i] = false
					s.kicks[i]()
				}
			}
		})
	}
	return s
}

// forwardLoop moves beats from one input to their output queues. The
// lookup/crossbar latency is fully pipelined: a beat leaves the input as
// soon as its output has credit (counting in-flight beats), and lands at
// the output SwitchLatency later.
func (s *Switch) forwardLoop(port int, in *axis.FIFO, outs []*axis.FIFO) {
	inflight := s.outInflight
	var kick func()
	kick = func() {
		for in.Len() > 0 {
			head, _ := in.Peek()
			dst := s.dstOf(head)
			if dst < 0 || dst >= len(outs) {
				in.Pop()
				s.dropped++
				s.mxDropped.Inc()
				continue
			}
			out := outs[dst]
			if out.Space()-inflight[dst] <= 0 {
				s.waiting[dst][port] = true
				return // head-of-line blocked; out's waker rekicks
			}
			b, _ := in.Pop()
			inflight[dst]++
			s.k.After(s.cfg.SwitchLatency, func() {
				inflight[dst]--
				s.forwarded++
				out.Push(b)
				if out.Len() > s.peakOcc[dst] {
					s.peakOcc[dst] = out.Len()
				}
				if s.mx != nil {
					s.mx[dst].Forwarded(out.Len(), s.peakOcc[dst])
				}
			})
		}
	}
	s.kicks[port] = kick
	in.OnData(kick)
}

// dstOf extracts the destination port from a beat's packet metadata. The
// pooled datapath carries *ocapi.Packet; value packets (tests, legacy
// producers) are still understood.
func (s *Switch) dstOf(b axis.Beat) int {
	switch p := b.Meta.(type) {
	case *ocapi.Packet:
		return int(p.Dst)
	case ocapi.Packet:
		return int(p.Dst)
	default:
		return -1
	}
}

// Forwarded returns the number of beats switched.
func (s *Switch) Forwarded() uint64 { return s.forwarded }

// Ports returns the number of switch ports.
func (s *Switch) Ports() int { return s.cfg.Ports }

// SetMetrics attaches per-output-port forward/queue-depth instruments
// and the switch-wide drop counter (observe-only; empty slice or nil
// disables).
func (s *Switch) SetMetrics(ports []*metricsplane.SwitchPortMetrics, dropped *metricsplane.Counter) {
	if len(ports) != 0 && len(ports) != s.cfg.Ports {
		panic("fabric: SetMetrics port bundle count mismatch")
	}
	s.mx = ports
	s.mxDropped = dropped
}

// Dropped returns the number of unroutable beats discarded.
func (s *Switch) Dropped() uint64 { return s.dropped }

// PeakOccupancy returns the deepest queue observed at the given output.
func (s *Switch) PeakOccupancy(port int) int { return s.peakOcc[port] }

// NICPorts is the FIFO surface a NIC exposes (satisfied by *tfnic.NIC via
// its exported TxQ/RxQ fields wrapped by the caller).
type NICPorts struct {
	TxQ *axis.FIFO
	RxQ *axis.FIFO
}

// AttachNIC cables a NIC to switch port i with a full-duplex link. Each
// port takes exactly one NIC: double-attaching would silently interleave
// two devices on one queue pair.
func (s *Switch) AttachNIC(i int, nic NICPorts) *netlink.Link {
	if i < 0 || i >= len(s.ports) {
		panic(fmt.Sprintf("fabric: port %d out of range", i))
	}
	if s.attached[i] {
		panic(fmt.Sprintf("fabric: port %d already has a NIC", i))
	}
	s.attached[i] = true
	p := s.ports[i]
	return netlink.NewLink(s.k,
		nic.TxQ, p.In, // NIC -> switch
		p.Out, nic.RxQ, // switch -> NIC
		s.cfg.LinkBandwidthBps, s.cfg.LinkPropagation)
}

// AttachRemoteNIC cables a NIC living on another shard to switch port i.
// nodeK is the NIC's kernel; toSwitch/toSwitchBack are the node→switch
// and switch→node streams of the cable's shard pair (the cable's
// propagation is the pair's lookahead edge). Same one-NIC-per-port rule
// as AttachNIC.
func (s *Switch) AttachRemoteNIC(i int, nic NICPorts, nodeK *sim.Kernel, toSwitch, toNode *sim.Stream) *netlink.CrossLink {
	if i < 0 || i >= len(s.ports) {
		panic(fmt.Sprintf("fabric: port %d out of range", i))
	}
	if s.attached[i] {
		panic(fmt.Sprintf("fabric: port %d already has a NIC", i))
	}
	s.attached[i] = true
	p := s.ports[i]
	return netlink.NewCrossLink(nodeK, s.k, toSwitch, toNode,
		nic.TxQ, p.In, // NIC -> switch
		p.Out, nic.RxQ, // switch -> NIC
		s.cfg.LinkBandwidthBps, s.cfg.LinkPropagation)
}
