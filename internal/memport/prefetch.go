package memport

import (
	"thymesim/internal/ocapi"
)

// Prefetcher is a POWER9-style hardware stream prefetcher model: it
// watches the demand-miss address stream, confirms ascending sequential
// streams, and issues line fetches ahead of the demand pointer. Prefetches
// share the backend (and therefore the injector and link) with demand
// traffic but do not occupy MSHR window slots visible to the core —
// matching engines that use dedicated prefetch machines.
//
// The model is optimistic about fill visibility: a prefetched line is
// installed in the cache at issue time, so a demand access that arrives
// before the data would have landed still hits. Measurements with the
// prefetcher enabled are therefore an upper bound on its benefit; the
// ablation quantifies that bound.
type Prefetcher struct {
	h       *Hierarchy
	degree  int // lines fetched ahead once a stream is confirmed
	streams []pfStream
	// stats
	issued    uint64
	confirmed uint64
}

type pfStream struct {
	lastLine uint64
	hits     int
	nextPref uint64
	valid    bool
}

// maxStreams bounds tracked concurrent streams (POWER9 tracks 16/core).
const maxStreams = 16

// streamConfirm is the ascending-miss count that arms a stream.
const streamConfirm = 2

// AttachPrefetcher arms a stream prefetcher of the given degree on h.
// Degree 0 disables prefetching (returns nil).
func AttachPrefetcher(h *Hierarchy, degree int) *Prefetcher {
	if degree <= 0 {
		return nil
	}
	p := &Prefetcher{h: h, degree: degree}
	h.onMiss = p.observe
	return p
}

// Issued returns prefetch fetches launched.
func (p *Prefetcher) Issued() uint64 { return p.issued }

// Confirmed returns streams that reached the confirmation threshold.
func (p *Prefetcher) Confirmed() uint64 { return p.confirmed }

// observe processes one demand miss at line address addr.
func (p *Prefetcher) observe(addr uint64) {
	line := addr / ocapi.CacheLineSize
	// Match an existing stream expecting this line.
	for i := range p.streams {
		s := &p.streams[i]
		if !s.valid {
			continue
		}
		if line == s.lastLine+1 {
			s.lastLine = line
			s.hits++
			if s.hits == streamConfirm {
				p.confirmed++
				s.nextPref = line + 1
			}
			if s.hits >= streamConfirm {
				p.runAhead(s, line)
			}
			return
		}
	}
	// New stream: replace an invalid or the oldest slot.
	slot := -1
	for i := range p.streams {
		if !p.streams[i].valid {
			slot = i
			break
		}
	}
	if slot == -1 {
		if len(p.streams) < maxStreams {
			p.streams = append(p.streams, pfStream{})
			slot = len(p.streams) - 1
		} else {
			slot = 0 // crude replacement; fine for the model
		}
	}
	p.streams[slot] = pfStream{lastLine: line, valid: true}
}

// runAhead keeps the prefetch pointer degree lines ahead of the demand
// pointer, fetching through the cache so duplicates are filtered.
func (p *Prefetcher) runAhead(s *pfStream, demandLine uint64) {
	target := demandLine + uint64(p.degree)
	for s.nextPref <= target {
		addr := s.nextPref * ocapi.CacheLineSize
		s.nextPref++
		res := p.h.llc.Access(addr, false)
		if res.Writeback {
			p.h.stats.Writebacks++
			p.h.stats.BytesMoved += ocapi.CacheLineSize
			p.h.backend.WriteLine(res.VictimAddr, nil)
		}
		if res.Hit {
			continue
		}
		p.issued++
		p.h.stats.BytesMoved += ocapi.CacheLineSize
		p.h.backend.ReadLine(addr, nil)
	}
}
