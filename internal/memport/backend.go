package memport

import (
	"thymesim/internal/dram"
	"thymesim/internal/obs"
	"thymesim/internal/ocapi"
	"thymesim/internal/sim"
)

// DRAMBackend services lines against local memory — the baseline
// ("local") configuration of the paper's Table I.
type DRAMBackend struct {
	mem    *dram.DRAM
	tracer *obs.Tracer
}

// NewDRAMBackend wraps a DRAM instance.
func NewDRAMBackend(mem *dram.DRAM) *DRAMBackend { return &DRAMBackend{mem: mem} }

// SetTracer enables span attribution of the DRAM queue/access stages.
func (b *DRAMBackend) SetTracer(tr *obs.Tracer) { b.tracer = tr }

// ReadLine implements LineBackend.
func (b *DRAMBackend) ReadLine(addr uint64, done func()) { b.mem.ReadLine(addr, done) }

// ReadLineSpan implements SpanBackend.
func (b *DRAMBackend) ReadLineSpan(addr uint64, sp obs.SpanID, done func()) {
	b.mem.AccessSpan(addr, ocapi.CacheLineSize, false, b.tracer, sp, done)
}

// ReadLineSpanH implements HandlerBackend.
func (b *DRAMBackend) ReadLineSpanH(addr uint64, sp obs.SpanID, h sim.Handler, arg uint64) {
	b.mem.AccessSpanH(addr, ocapi.CacheLineSize, false, b.tracer, sp, h, arg)
}

// WriteLine implements LineBackend.
func (b *DRAMBackend) WriteLine(addr uint64, done func()) { b.mem.WriteLine(addr, done) }

// Sender is the slice of the NIC the remote backend needs (satisfied by
// *tfnic.NIC).
type Sender interface {
	TrySend(p ocapi.Packet) bool
	OnCmdSpace(fn func())
}

// RemoteBackend services lines across the ThymesisFlow datapath: each miss
// becomes an OpenCAPI read/write command through the borrower NIC (and
// therefore through the delay injector), as in Fig. 1.
type RemoteBackend struct {
	k    *sim.Kernel
	nic  Sender
	tags *ocapi.TagAllocator
	// tagBase offsets this backend's tags so several backends can share
	// one NIC with disjoint tag ranges (multi-lender borrowing).
	tagBase  uint32
	tagCount uint32
	// portLatency is the CPU-to-NIC OpenCAPI transport cost, applied per
	// direction.
	portLatency sim.Duration
	src, dst    uint16
	prio        uint8

	// pending maps outstanding tags to their transaction contexts; sendQ
	// holds contexts waiting for a tag or for NIC command-queue space.
	pending map[uint32]*rtxn
	sendQ   []*rtxn
	// free recycles transaction contexts so steady-state issues allocate
	// nothing.
	free *rtxn

	reads, writes uint64
	poisoned      uint64

	tracer *obs.Tracer // nil when tracing is disabled
}

// rtxn is the pooled per-command context: it rides the two port-latency
// hops (arg 0 = CPU→NIC transport done, arg 1 = NIC→CPU transport done)
// and carries everything the pump and the completion need, replacing the
// per-issue closures and the parallel callback/pendWrite bookkeeping.
type rtxn struct {
	b      *RemoteBackend
	op     ocapi.Op
	addr   uint64
	issued sim.Time
	sp     obs.SpanID
	tag    uint32
	// Completion: done for closure callers (LineBackend), or h/arg for
	// the pooled fill path. At most one is set; both may be nil for
	// fire-and-forget writebacks.
	done func()
	h    sim.Handler
	arg  uint64
	next *rtxn
}

// Handle implements sim.Handler.
func (t *rtxn) Handle(stage uint64) {
	b := t.b
	if stage == 0 {
		// Arrived at the NIC port: wait for a tag + command-queue entry.
		b.tracer.Enter(t.sp, obs.StageTagWait)
		t.issued = b.k.Now()
		b.sendQ = append(b.sendQ, t)
		b.pump()
		return
	}
	// Response crossed the port back to the CPU.
	if t.op == ocapi.OpWriteBlock {
		b.writes++
	} else {
		b.reads++
	}
	tag, done, h, arg := t.tag, t.done, t.h, t.arg
	t.done, t.h = nil, nil
	t.next = b.free
	b.free = t
	b.tagsRelease(tag)
	b.pump()
	if h != nil {
		h.Handle(arg)
	} else if done != nil {
		done()
	}
}

// NewRemoteBackend builds the borrower-side remote memory backend. tags
// bounds outstanding OpenCAPI commands (set it >= the MSHR window plus
// writeback slack).
func NewRemoteBackend(k *sim.Kernel, nic Sender, tagSpace int, portLatency sim.Duration, src, dst uint16) *RemoteBackend {
	return NewRemoteBackendTags(k, nic, 0, tagSpace, portLatency, src, dst)
}

// NewRemoteBackendTags is NewRemoteBackend with an explicit tag range
// [tagBase, tagBase+tagSpace): backends sharing a NIC must use disjoint
// ranges so responses route unambiguously.
func NewRemoteBackendTags(k *sim.Kernel, nic Sender, tagBase uint32, tagSpace int, portLatency sim.Duration, src, dst uint16) *RemoteBackend {
	b := &RemoteBackend{
		k:           k,
		nic:         nic,
		tags:        ocapi.NewTagAllocator(tagSpace),
		tagBase:     tagBase,
		tagCount:    uint32(tagSpace),
		portLatency: portLatency,
		src:         src,
		dst:         dst,
		pending:     make(map[uint32]*rtxn),
	}
	nic.OnCmdSpace(b.pump)
	return b
}

// SetTracer enables span attribution of the port/tag stages; the span id
// is stamped into outgoing packets so the NIC layers downstream can keep
// attributing.
func (b *RemoteBackend) SetTracer(tr *obs.Tracer) { b.tracer = tr }

// SetPriority assigns the QoS class stamped on this backend's requests
// (0 = highest). It takes effect for subsequently issued commands.
func (b *RemoteBackend) SetPriority(p uint8) { b.prio = p }

// Priority returns the backend's QoS class.
func (b *RemoteBackend) Priority() uint8 { return b.prio }

// Owns reports whether a response tag belongs to this backend's range and
// is outstanding.
func (b *RemoteBackend) Owns(tag uint32) bool {
	if tag < b.tagBase || tag >= b.tagBase+b.tagCount {
		return false
	}
	_, ok := b.pending[tag]
	return ok
}

// Reads returns completed line reads.
func (b *RemoteBackend) Reads() uint64 { return b.reads }

// Writes returns completed line writes.
func (b *RemoteBackend) Writes() uint64 { return b.writes }

// Poisoned returns completions whose data must not be trusted: lender
// nacks consumed without an ARQ layer, or transactions the ARQ layer
// declared dead. The access completes (no hang); the damage is visible
// here.
func (b *RemoteBackend) Poisoned() uint64 { return b.poisoned }

// Outstanding returns commands in flight.
func (b *RemoteBackend) Outstanding() int { return b.tags.Outstanding() }

// QueuedSends returns requests waiting to enter the NIC.
func (b *RemoteBackend) QueuedSends() int { return len(b.sendQ) }

// ReadLine implements LineBackend.
func (b *RemoteBackend) ReadLine(addr uint64, done func()) {
	t := b.newTxn(ocapi.OpReadBlock, addr, 0)
	t.done = done
	b.issue(t)
}

// ReadLineSpan implements SpanBackend.
func (b *RemoteBackend) ReadLineSpan(addr uint64, sp obs.SpanID, done func()) {
	t := b.newTxn(ocapi.OpReadBlock, addr, sp)
	t.done = done
	b.issue(t)
}

// ReadLineSpanH implements HandlerBackend: the closure-free fill path.
func (b *RemoteBackend) ReadLineSpanH(addr uint64, sp obs.SpanID, h sim.Handler, arg uint64) {
	t := b.newTxn(ocapi.OpReadBlock, addr, sp)
	t.h, t.arg = h, arg
	b.issue(t)
}

// WriteLine implements LineBackend.
func (b *RemoteBackend) WriteLine(addr uint64, done func()) {
	t := b.newTxn(ocapi.OpWriteBlock, addr, 0)
	t.done = done
	b.issue(t)
}

// newTxn borrows a transaction context from the free list.
func (b *RemoteBackend) newTxn(op ocapi.Op, addr uint64, sp obs.SpanID) *rtxn {
	t := b.free
	if t == nil {
		t = &rtxn{b: b}
	} else {
		b.free = t.next
		t.next = nil
	}
	t.op, t.addr, t.sp = op, ocapi.LineAlign(addr), sp
	return t
}

func (b *RemoteBackend) issue(t *rtxn) {
	// CPU -> NIC transport latency, then queue for a tag + NIC entry.
	b.tracer.Enter(t.sp, obs.StagePortTx)
	b.k.AfterH(b.portLatency, t, 0)
}

// pump drains the send queue while tags and NIC space allow.
func (b *RemoteBackend) pump() {
	for len(b.sendQ) > 0 {
		raw, ok := b.tags.Alloc()
		if !ok {
			return
		}
		tag := b.tagBase + raw
		t := b.sendQ[0]
		p := ocapi.Packet{
			Op:     t.op,
			Tag:    tag,
			Addr:   t.addr,
			Size:   ocapi.CacheLineSize,
			Src:    b.src,
			Dst:    b.dst,
			Issued: t.issued,
			Prio:   b.prio,
			Trace:  uint64(t.sp),
		}
		if !b.nic.TrySend(p) {
			b.tags.Release(raw)
			return
		}
		t.tag = tag
		copy(b.sendQ, b.sendQ[1:])
		b.sendQ[len(b.sendQ)-1] = nil
		b.sendQ = b.sendQ[:len(b.sendQ)-1]
		b.pending[tag] = t
	}
}

// tagsRelease returns a tag's allocator slot.
func (b *RemoteBackend) tagsRelease(tag uint32) { b.tags.Release(tag - b.tagBase) }

// Deliver completes a response from the NIC; wire it to NIC.OnDeliver.
func (b *RemoteBackend) Deliver(p ocapi.Packet) {
	t, ok := b.pending[p.Tag]
	if !ok {
		panic("memport: response for unknown tag")
	}
	delete(b.pending, p.Tag)
	if p.Poison || p.Op == ocapi.OpNack {
		b.poisoned++
	}
	// NIC -> CPU transport latency before the fill reaches the cache.
	b.tracer.Enter(obs.SpanID(p.Trace), obs.StagePortRx)
	b.k.AfterH(b.portLatency, t, 1)
}
