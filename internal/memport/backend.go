package memport

import (
	"fmt"

	"thymesim/internal/dram"
	"thymesim/internal/metricsplane"
	"thymesim/internal/obs"
	"thymesim/internal/ocapi"
	"thymesim/internal/sim"
)

// DRAMBackend services lines against local memory — the baseline
// ("local") configuration of the paper's Table I.
type DRAMBackend struct {
	mem    *dram.DRAM
	tracer *obs.Tracer
}

// NewDRAMBackend wraps a DRAM instance.
func NewDRAMBackend(mem *dram.DRAM) *DRAMBackend { return &DRAMBackend{mem: mem} }

// SetTracer enables span attribution of the DRAM queue/access stages.
func (b *DRAMBackend) SetTracer(tr *obs.Tracer) { b.tracer = tr }

// ReadLine implements LineBackend.
func (b *DRAMBackend) ReadLine(addr uint64, done func()) { b.mem.ReadLine(addr, done) }

// ReadLineSpan implements SpanBackend.
func (b *DRAMBackend) ReadLineSpan(addr uint64, sp obs.SpanID, done func()) {
	b.mem.AccessSpan(addr, ocapi.CacheLineSize, false, b.tracer, sp, done)
}

// ReadLineSpanH implements HandlerBackend.
func (b *DRAMBackend) ReadLineSpanH(addr uint64, sp obs.SpanID, h sim.Handler, arg uint64) {
	b.mem.AccessSpanH(addr, ocapi.CacheLineSize, false, b.tracer, sp, h, arg)
}

// WriteLine implements LineBackend.
func (b *DRAMBackend) WriteLine(addr uint64, done func()) { b.mem.WriteLine(addr, done) }

// Sender is the slice of the NIC the remote backend needs (satisfied by
// *tfnic.NIC).
type Sender interface {
	TrySend(p ocapi.Packet) bool
	OnCmdSpace(fn func())
}

// RemoteBackend services lines across the ThymesisFlow datapath: each miss
// becomes an OpenCAPI read/write command through the borrower NIC (and
// therefore through the delay injector), as in Fig. 1.
type RemoteBackend struct {
	k    *sim.Kernel
	nic  Sender
	tags *ocapi.TagAllocator
	// tagBase offsets this backend's tags so several backends can share
	// one NIC with disjoint tag ranges (multi-lender borrowing).
	tagBase  uint32
	tagCount uint32
	// portLatency is the CPU-to-NIC OpenCAPI transport cost, applied per
	// direction.
	portLatency sim.Duration
	src, dst    uint16
	prio        uint8

	// pending maps outstanding tags to their transaction contexts; sendQ
	// holds contexts waiting for a tag or for NIC command-queue space.
	pending map[uint32]*rtxn
	sendQ   []*rtxn
	// free recycles transaction contexts so steady-state issues allocate
	// nothing.
	free *rtxn

	// deadline bounds each transaction end to end (issue to response
	// delivery); 0 disables. An expired transaction completes immediately
	// with poisoned semantics, and its late response — if one ever comes —
	// is consumed silently. Deadlines are armed on the kernel's timer
	// wheel and cancelled for real at delivery.
	deadline sim.Duration
	// onOutcome, when set, observes every transaction outcome exactly once
	// (the circuit breaker's feed): true for a healthy completion, false
	// for poisoned, nacked, or deadline-expired ones.
	onOutcome func(ok bool)

	reads, writes uint64
	poisoned      uint64
	expired       uint64 // transactions completed by deadline expiry
	expiredUnsent uint64 // expired before ever entering the NIC
	lateResponses uint64 // responses that arrived after their deadline

	tracer *obs.Tracer               // nil when tracing is disabled
	mx     *metricsplane.FillMetrics // nil when the metrics plane is disabled
}

// tagNone marks a transaction that holds no tag yet (still crossing the
// CPU→NIC port hop or queued for a tag). It sits inside the probe range,
// which backends never allocate from.
const tagNone = ^uint32(0)

// rtxn is the pooled per-command context: it rides the two port-latency
// hops (arg 0 = CPU→NIC transport done, arg 1 = NIC→CPU transport done)
// plus its own deadline expiry (arg 2, armed on the timer wheel) and
// carries everything the pump and the completion need, replacing the
// per-issue closures and the parallel callback/pendWrite bookkeeping.
type rtxn struct {
	b      *RemoteBackend
	op     ocapi.Op
	addr   uint64
	issued sim.Time
	sp     obs.SpanID
	tag    uint32
	// dl is the armed end-to-end deadline; Deliver cancels it for real on
	// the wheel, so a deadline that fires always belongs to the live
	// transaction.
	dl sim.TimerID
	// expired marks a transaction already completed by its deadline; its
	// eventual response is consumed without a second completion.
	expired bool
	// poisonedResp records that the delivered response carried poison (the
	// outcome feed and the completion run one port hop after delivery).
	poisonedResp bool
	// Completion: done for closure callers (LineBackend), or h/arg for
	// the pooled fill path. At most one is set; both may be nil for
	// fire-and-forget writebacks.
	done func()
	h    sim.Handler
	arg  uint64
	next *rtxn
}

// Handle implements sim.Handler.
func (t *rtxn) Handle(stage uint64) {
	b := t.b
	if stage == 2 {
		// The end-to-end deadline fired. Delivery cancels the timer, so a
		// firing always means the transaction is still unresolved.
		if !t.expired {
			b.expire(t)
		}
		return
	}
	if stage == 0 {
		if t.expired {
			// Deadline fired while the command was still crossing the
			// CPU→NIC hop; the completion already ran. Drop it here.
			b.expiredUnsent++
			b.mx.FillExpiredUnsent(b.k.Now().Micros())
			b.recycle(t)
			return
		}
		// Arrived at the NIC port: wait for a tag + command-queue entry.
		b.tracer.Enter(t.sp, obs.StageTagWait)
		t.issued = b.k.Now()
		b.sendQ = append(b.sendQ, t)
		b.pump()
		return
	}
	// Response crossed the port back to the CPU.
	tag := t.tag
	if t.expired {
		// Already completed poisoned at the deadline; just settle the
		// accounting so the tag and context recirculate.
		b.recycle(t)
		b.tagsRelease(tag)
		b.pump()
		return
	}
	if t.op == ocapi.OpWriteBlock {
		b.writes++
	} else {
		b.reads++
	}
	ok := !t.poisonedResp
	if b.mx != nil {
		now := b.k.Now()
		b.mx.FillDone(now.Sub(t.issued).Micros(), t.op == ocapi.OpWriteBlock, t.poisonedResp, now.Micros())
	}
	done, h, arg := t.done, t.h, t.arg
	b.recycle(t)
	b.tagsRelease(tag)
	b.pump()
	if b.onOutcome != nil {
		b.onOutcome(ok)
	}
	if h != nil {
		h.Handle(arg)
	} else if done != nil {
		done()
	}
}

// recycle returns a context to the free list. The deadline id is cleared
// defensively — on every recycle path the timer has already fired or been
// cancelled, and the wheel's generation guard would reject a stale cancel
// anyway.
func (b *RemoteBackend) recycle(t *rtxn) {
	b.k.CancelTimer(t.dl)
	t.dl = sim.TimerID{}
	t.done, t.h = nil, nil
	t.next = b.free
	b.free = t
}

// expire completes a transaction poisoned at its deadline. The completion
// runs now; the transaction's wire state unwinds on its own — a queued
// command is withdrawn, an in-flight one resolves later and is consumed
// silently.
func (b *RemoteBackend) expire(t *rtxn) {
	t.expired = true
	b.expired++
	b.poisoned++
	if t.op == ocapi.OpWriteBlock {
		b.writes++
	} else {
		b.reads++
	}
	b.mx.FillExpired(t.op == ocapi.OpWriteBlock, b.k.Now().Micros())
	done, h, arg := t.done, t.h, t.arg
	t.done, t.h = nil, nil
	if t.tag == tagNone {
		// Never sent. If it still waits in the send queue, withdraw it;
		// otherwise it is mid port-hop and Handle(0) cleans up.
		for i, q := range b.sendQ {
			if q == t {
				copy(b.sendQ[i:], b.sendQ[i+1:])
				b.sendQ[len(b.sendQ)-1] = nil
				b.sendQ = b.sendQ[:len(b.sendQ)-1]
				b.expiredUnsent++
				b.mx.FillExpiredUnsent(b.k.Now().Micros())
				b.recycle(t)
				break
			}
		}
	}
	if b.onOutcome != nil {
		b.onOutcome(false)
	}
	if h != nil {
		h.Handle(arg)
	} else if done != nil {
		done()
	}
}

// armDeadline schedules a transaction's end-to-end deadline on the
// kernel's timer wheel (stage 2 of the transaction's own handler).
func (b *RemoteBackend) armDeadline(t *rtxn) {
	t.dl = b.k.ArmTimer(b.deadline, t, 2)
}

// NewRemoteBackend builds the borrower-side remote memory backend. tags
// bounds outstanding OpenCAPI commands (set it >= the MSHR window plus
// writeback slack).
func NewRemoteBackend(k *sim.Kernel, nic Sender, tagSpace int, portLatency sim.Duration, src, dst uint16) *RemoteBackend {
	return NewRemoteBackendTags(k, nic, 0, tagSpace, portLatency, src, dst)
}

// NewRemoteBackendTags is NewRemoteBackend with an explicit tag range
// [tagBase, tagBase+tagSpace): backends sharing a NIC must use disjoint
// ranges so responses route unambiguously.
func NewRemoteBackendTags(k *sim.Kernel, nic Sender, tagBase uint32, tagSpace int, portLatency sim.Duration, src, dst uint16) *RemoteBackend {
	b := &RemoteBackend{
		k:           k,
		nic:         nic,
		tags:        ocapi.NewTagAllocator(tagSpace),
		tagBase:     tagBase,
		tagCount:    uint32(tagSpace),
		portLatency: portLatency,
		src:         src,
		dst:         dst,
		pending:     make(map[uint32]*rtxn),
	}
	nic.OnCmdSpace(b.pump)
	return b
}

// SetTracer enables span attribution of the port/tag stages; the span id
// is stamped into outgoing packets so the NIC layers downstream can keep
// attributing.
func (b *RemoteBackend) SetTracer(tr *obs.Tracer) { b.tracer = tr }

// SetMetrics attaches the metrics plane's remote-fill bundle: latency
// histogram plus poisoned/expiry counters. A nil bundle (plane
// disabled) keeps the datapath on its zero-overhead fast path.
func (b *RemoteBackend) SetMetrics(m *metricsplane.FillMetrics) { b.mx = m }

// SetDeadline bounds every subsequently issued transaction end to end:
// a transaction that has not delivered its response within d completes
// poisoned instead (the consumer learns promptly; the data must not be
// trusted). 0 disables. Negative deadlines are rejected.
func (b *RemoteBackend) SetDeadline(d sim.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("memport: negative deadline %v", d))
	}
	b.deadline = d
}

// Deadline returns the active per-transaction deadline (0 = disabled).
func (b *RemoteBackend) Deadline() sim.Duration { return b.deadline }

// SetOutcomeObserver registers fn to observe every transaction outcome
// exactly once: true for healthy completions, false for poisoned, nacked,
// or deadline-expired ones. This is the circuit breaker's feed.
func (b *RemoteBackend) SetOutcomeObserver(fn func(ok bool)) { b.onOutcome = fn }

// SetPriority assigns the QoS class stamped on this backend's requests
// (0 = highest). It takes effect for subsequently issued commands.
func (b *RemoteBackend) SetPriority(p uint8) { b.prio = p }

// Priority returns the backend's QoS class.
func (b *RemoteBackend) Priority() uint8 { return b.prio }

// Owns reports whether a response tag belongs to this backend's range and
// is outstanding.
func (b *RemoteBackend) Owns(tag uint32) bool {
	if tag < b.tagBase || tag >= b.tagBase+b.tagCount {
		return false
	}
	_, ok := b.pending[tag]
	return ok
}

// Reads returns completed line reads.
func (b *RemoteBackend) Reads() uint64 { return b.reads }

// Writes returns completed line writes.
func (b *RemoteBackend) Writes() uint64 { return b.writes }

// Poisoned returns completions whose data must not be trusted: lender
// nacks consumed without an ARQ layer, or transactions the ARQ layer
// declared dead. The access completes (no hang); the damage is visible
// here.
func (b *RemoteBackend) Poisoned() uint64 { return b.poisoned }

// Expired returns transactions completed poisoned by their deadline.
func (b *RemoteBackend) Expired() uint64 { return b.expired }

// ExpiredUnsent returns the subset of Expired that never entered the NIC
// (the command was withdrawn before it could be sent).
func (b *RemoteBackend) ExpiredUnsent() uint64 { return b.expiredUnsent }

// LateResponses returns responses that arrived after their transaction's
// deadline had already completed it; they were consumed silently.
func (b *RemoteBackend) LateResponses() uint64 { return b.lateResponses }

// Outstanding returns commands in flight.
func (b *RemoteBackend) Outstanding() int { return b.tags.Outstanding() }

// QueuedSends returns requests waiting to enter the NIC.
func (b *RemoteBackend) QueuedSends() int { return len(b.sendQ) }

// ReadLine implements LineBackend.
func (b *RemoteBackend) ReadLine(addr uint64, done func()) {
	t := b.newTxn(ocapi.OpReadBlock, addr, 0)
	t.done = done
	b.issue(t)
}

// ReadLineSpan implements SpanBackend.
func (b *RemoteBackend) ReadLineSpan(addr uint64, sp obs.SpanID, done func()) {
	t := b.newTxn(ocapi.OpReadBlock, addr, sp)
	t.done = done
	b.issue(t)
}

// ReadLineSpanH implements HandlerBackend: the closure-free fill path.
func (b *RemoteBackend) ReadLineSpanH(addr uint64, sp obs.SpanID, h sim.Handler, arg uint64) {
	t := b.newTxn(ocapi.OpReadBlock, addr, sp)
	t.h, t.arg = h, arg
	b.issue(t)
}

// WriteLine implements LineBackend.
func (b *RemoteBackend) WriteLine(addr uint64, done func()) {
	t := b.newTxn(ocapi.OpWriteBlock, addr, 0)
	t.done = done
	b.issue(t)
}

// newTxn borrows a transaction context from the free list.
func (b *RemoteBackend) newTxn(op ocapi.Op, addr uint64, sp obs.SpanID) *rtxn {
	t := b.free
	if t == nil {
		t = &rtxn{b: b}
	} else {
		b.free = t.next
		t.next = nil
	}
	t.op, t.addr, t.sp = op, ocapi.LineAlign(addr), sp
	t.tag = tagNone
	t.expired, t.poisonedResp = false, false
	return t
}

func (b *RemoteBackend) issue(t *rtxn) {
	// CPU -> NIC transport latency, then queue for a tag + NIC entry.
	b.tracer.Enter(t.sp, obs.StagePortTx)
	if b.deadline > 0 {
		b.armDeadline(t)
	}
	b.k.AfterH(b.portLatency, t, 0)
}

// pump drains the send queue while tags and NIC space allow.
func (b *RemoteBackend) pump() {
	for len(b.sendQ) > 0 {
		raw, ok := b.tags.Alloc()
		if !ok {
			return
		}
		tag := b.tagBase + raw
		t := b.sendQ[0]
		p := ocapi.Packet{
			Op:     t.op,
			Tag:    tag,
			Addr:   t.addr,
			Size:   ocapi.CacheLineSize,
			Src:    b.src,
			Dst:    b.dst,
			Issued: t.issued,
			Prio:   b.prio,
			Trace:  uint64(t.sp),
		}
		if !b.nic.TrySend(p) {
			b.tags.Release(raw)
			return
		}
		t.tag = tag
		copy(b.sendQ, b.sendQ[1:])
		b.sendQ[len(b.sendQ)-1] = nil
		b.sendQ = b.sendQ[:len(b.sendQ)-1]
		b.pending[tag] = t
	}
}

// tagsRelease returns a tag's allocator slot.
func (b *RemoteBackend) tagsRelease(tag uint32) { b.tags.Release(tag - b.tagBase) }

// Deliver completes a response from the NIC; wire it to NIC.OnDeliver.
func (b *RemoteBackend) Deliver(p ocapi.Packet) {
	t, ok := b.pending[p.Tag]
	if !ok {
		panic("memport: response for unknown tag")
	}
	delete(b.pending, p.Tag)
	// Delivery beats any armed deadline: the response reached the port, so
	// expiry is moot from here on.
	b.k.CancelTimer(t.dl)
	if t.expired {
		// Already completed poisoned at its deadline; the straggler is
		// consumed silently (Handle(1) settles the tag and context).
		b.lateResponses++
		b.mx.FillLate(b.k.Now().Micros())
	} else {
		t.poisonedResp = p.Poison || p.Op == ocapi.OpNack
		if t.poisonedResp {
			b.poisoned++
		}
	}
	// NIC -> CPU transport latency before the fill reaches the cache.
	b.tracer.Enter(obs.SpanID(p.Trace), obs.StagePortRx)
	b.k.AfterH(b.portLatency, t, 1)
}
