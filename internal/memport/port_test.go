package memport

import (
	"testing"

	"thymesim/internal/cache"
	"thymesim/internal/dram"
	"thymesim/internal/ocapi"
	"thymesim/internal/sim"
)

func testLLC() *cache.Cache {
	return cache.New(cache.Config{SizeBytes: 16 << 10, Ways: 2, LineSize: ocapi.CacheLineSize})
}

// fakeBackend completes reads/writes after a fixed latency.
type fakeBackend struct {
	k       *sim.Kernel
	latency sim.Duration
	reads   int
	writes  int
	maxOut  int
	out     int
}

func (f *fakeBackend) ReadLine(addr uint64, done func()) {
	f.reads++
	f.out++
	if f.out > f.maxOut {
		f.maxOut = f.out
	}
	f.k.After(f.latency, func() {
		f.out--
		if done != nil {
			done()
		}
	})
}

func (f *fakeBackend) WriteLine(addr uint64, done func()) {
	f.writes++
	f.k.After(f.latency, func() {
		if done != nil {
			done()
		}
	})
}

func TestHierarchyHitIsImmediate(t *testing.T) {
	k := sim.NewKernel()
	fb := &fakeBackend{k: k, latency: 100 * sim.Nanosecond}
	h := NewHierarchy(k, testLLC(), fb, 8)
	var firstDone, secondDone sim.Time
	k.At(0, func() {
		h.Access(0, 8, false, func() {
			firstDone = k.Now()
			h.Access(8, 8, false, func() { secondDone = k.Now() })
		})
	})
	k.Run()
	if firstDone != sim.Time(100*sim.Nanosecond) {
		t.Fatalf("miss completed at %v", firstDone)
	}
	if secondDone != firstDone {
		t.Fatalf("hit was not immediate: %v vs %v", secondDone, firstDone)
	}
	if fb.reads != 1 {
		t.Fatalf("reads = %d", fb.reads)
	}
}

func TestHierarchyMultiLineAccess(t *testing.T) {
	k := sim.NewKernel()
	fb := &fakeBackend{k: k, latency: 50 * sim.Nanosecond}
	h := NewHierarchy(k, testLLC(), fb, 8)
	done := false
	// 300 bytes spanning 4 lines starting mid-line.
	k.At(0, func() { h.Access(64, 300, false, func() { done = true }) })
	k.Run()
	if !done {
		t.Fatal("never completed")
	}
	if fb.reads != ocapi.LinesCovering(64, 300) {
		t.Fatalf("reads = %d, want %d", fb.reads, ocapi.LinesCovering(64, 300))
	}
}

func TestHierarchyMSHRWindowLimitsOutstanding(t *testing.T) {
	k := sim.NewKernel()
	fb := &fakeBackend{k: k, latency: sim.Duration(sim.Microsecond)}
	const window = 4
	h := NewHierarchy(k, testLLC(), fb, window)
	k.At(0, func() {
		for i := 0; i < 64; i++ {
			h.Access(uint64(i)*4096, 8, false, nil) // distinct sets, all miss
		}
	})
	k.Run()
	if fb.maxOut > window {
		t.Fatalf("outstanding fills reached %d, window is %d", fb.maxOut, window)
	}
	if fb.reads != 64 {
		t.Fatalf("reads = %d", fb.reads)
	}
}

func TestHierarchyWritebackTraffic(t *testing.T) {
	k := sim.NewKernel()
	fb := &fakeBackend{k: k, latency: 10 * sim.Nanosecond}
	// 1KiB cache: 4 sets, 2 ways.
	llc := cache.New(cache.Config{SizeBytes: 1024, Ways: 2, LineSize: 128})
	h := NewHierarchy(k, llc, fb, 8)
	k.At(0, func() {
		// Dirty two lines of set 0, then stream two more through it.
		h.Access(0, 8, true, nil)
		h.Access(4*128, 8, true, nil)
		h.Access(8*128, 8, false, nil)
		h.Access(12*128, 8, false, nil)
	})
	k.Run()
	if fb.writes != 2 {
		t.Fatalf("writebacks = %d, want 2", fb.writes)
	}
	if h.Stats().Writebacks != 2 {
		t.Fatalf("stats writebacks = %d", h.Stats().Writebacks)
	}
}

func TestHierarchyFillLatencyRecorded(t *testing.T) {
	k := sim.NewKernel()
	fb := &fakeBackend{k: k, latency: 2 * sim.Microsecond}
	h := NewHierarchy(k, testLLC(), fb, 8)
	k.At(0, func() { h.Access(0, 8, false, nil) })
	k.Run()
	if h.FillLatency().Count() != 1 {
		t.Fatal("fill latency not recorded")
	}
	if m := h.FillLatency().Mean(); m < 1.9 || m > 2.1 {
		t.Fatalf("fill latency = %v us, want ~2", m)
	}
}

func TestHierarchyBadSizePanics(t *testing.T) {
	k := sim.NewKernel()
	h := NewHierarchy(k, testLLC(), &fakeBackend{k: k}, 8)
	defer func() {
		if recover() == nil {
			t.Error("zero-size access did not panic")
		}
	}()
	h.Access(0, 0, false, nil)
}

func TestDRAMBackend(t *testing.T) {
	k := sim.NewKernel()
	mem := dram.New(k, dram.Config{Channels: 1, AccessLatency: 10 * sim.Nanosecond, BandwidthBps: 128e9, QueueDepth: 8})
	b := NewDRAMBackend(mem)
	var reads, writes int
	k.At(0, func() {
		b.ReadLine(0, func() { reads++ })
		b.WriteLine(128, func() { writes++ })
	})
	k.Run()
	if reads != 1 || writes != 1 {
		t.Fatalf("reads=%d writes=%d", reads, writes)
	}
	if mem.Reads() != 1 || mem.Writes() != 1 {
		t.Fatalf("dram reads=%d writes=%d", mem.Reads(), mem.Writes())
	}
}

// fakeSender models the NIC interface with bounded space.
type fakeSender struct {
	space   int
	sent    []ocapi.Packet
	onSpace []func()
}

func (f *fakeSender) TrySend(p ocapi.Packet) bool {
	if f.space == 0 {
		return false
	}
	f.space--
	f.sent = append(f.sent, p)
	return true
}

func (f *fakeSender) OnCmdSpace(fn func()) { f.onSpace = append(f.onSpace, fn) }

func (f *fakeSender) free() {
	f.space++
	for _, fn := range f.onSpace {
		fn()
	}
}

func TestRemoteBackendTagFlowAndDelivery(t *testing.T) {
	k := sim.NewKernel()
	fs := &fakeSender{space: 100}
	b := NewRemoteBackend(k, fs, 4, 10*sim.Nanosecond, 0, 1)
	completions := 0
	k.At(0, func() {
		for i := 0; i < 6; i++ {
			b.ReadLine(uint64(i)*128, func() { completions++ })
		}
	})
	k.RunUntil(sim.Time(sim.Microsecond))
	// Only 4 tags: 4 sent, 2 queued.
	if len(fs.sent) != 4 || b.QueuedSends() != 2 {
		t.Fatalf("sent=%d queued=%d", len(fs.sent), b.QueuedSends())
	}
	// Deliver responses for the first two.
	for _, p := range fs.sent[:2] {
		resp := p.Response()
		k.Post(func() { b.Deliver(resp) })
	}
	k.Run()
	if completions != 2 {
		t.Fatalf("completions = %d", completions)
	}
	if len(fs.sent) != 6 {
		t.Fatalf("queued sends not drained: sent=%d", len(fs.sent))
	}
	if b.Reads() != 2 {
		t.Fatalf("reads = %d", b.Reads())
	}
}

func TestRemoteBackendRetriesOnNICSpace(t *testing.T) {
	k := sim.NewKernel()
	fs := &fakeSender{space: 1}
	b := NewRemoteBackend(k, fs, 8, 0, 0, 1)
	k.At(0, func() {
		b.ReadLine(0, nil)
		b.ReadLine(128, nil)
	})
	k.Run()
	if len(fs.sent) != 1 {
		t.Fatalf("sent = %d, want 1 (NIC full)", len(fs.sent))
	}
	k.At(k.Now(), func() { fs.free() })
	k.Run()
	if len(fs.sent) != 2 {
		t.Fatalf("sent = %d after space freed", len(fs.sent))
	}
}

func TestRemoteBackendUnknownTagPanics(t *testing.T) {
	k := sim.NewKernel()
	b := NewRemoteBackend(k, &fakeSender{space: 1}, 2, 0, 0, 1)
	defer func() {
		if recover() == nil {
			t.Error("unknown tag did not panic")
		}
	}()
	b.Deliver(ocapi.Packet{Op: ocapi.OpReadResp, Tag: 7, Size: ocapi.CacheLineSize})
}

func TestRemoteBackendAddressAlignment(t *testing.T) {
	k := sim.NewKernel()
	fs := &fakeSender{space: 10}
	b := NewRemoteBackend(k, fs, 8, 0, 3, 9)
	k.At(0, func() { b.ReadLine(1000, nil) })
	k.Run()
	if len(fs.sent) != 1 {
		t.Fatal("not sent")
	}
	p := fs.sent[0]
	if p.Addr != ocapi.LineAlign(1000) || p.Src != 3 || p.Dst != 9 || p.Op != ocapi.OpReadBlock {
		t.Fatalf("packet = %+v", p)
	}
}
