package memport

import (
	"testing"

	"thymesim/internal/ocapi"
	"thymesim/internal/sim"
)

func deadlineBackend(k *sim.Kernel, fs *fakeSender, d sim.Duration) *RemoteBackend {
	b := NewRemoteBackend(k, fs, 4, 10*sim.Nanosecond, 0, 1)
	b.SetDeadline(d)
	return b
}

func TestDeadlineDeliveryBeatsExpiry(t *testing.T) {
	k := sim.NewKernel()
	fs := &fakeSender{space: 10}
	b := deadlineBackend(k, fs, sim.Microsecond)
	var outcomes []bool
	b.SetOutcomeObserver(func(ok bool) { outcomes = append(outcomes, ok) })
	completions := 0
	k.At(0, func() { b.ReadLine(0, func() { completions++ }) })
	k.At(sim.Time(100*sim.Nanosecond), func() { b.Deliver(fs.sent[0].Response()) })
	k.Run()
	if completions != 1 {
		t.Fatalf("completions = %d", completions)
	}
	if b.Expired() != 0 || b.Poisoned() != 0 || b.LateResponses() != 0 {
		t.Fatalf("expired=%d poisoned=%d late=%d", b.Expired(), b.Poisoned(), b.LateResponses())
	}
	if len(outcomes) != 1 || !outcomes[0] {
		t.Fatalf("outcomes = %v", outcomes)
	}
	if b.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", b.Outstanding())
	}
}

func TestDeadlineExpiresInFlight(t *testing.T) {
	k := sim.NewKernel()
	fs := &fakeSender{space: 10}
	b := deadlineBackend(k, fs, sim.Microsecond)
	var outcomes []bool
	b.SetOutcomeObserver(func(ok bool) { outcomes = append(outcomes, ok) })
	completions := 0
	var completedAt sim.Time
	k.At(0, func() { b.ReadLine(0, func() { completions++; completedAt = k.Now() }) })
	// The response arrives long after the deadline.
	k.At(sim.Time(3*sim.Microsecond), func() { b.Deliver(fs.sent[0].Response()) })
	k.Run()
	if completions != 1 {
		t.Fatalf("completions = %d (late response must not complete twice)", completions)
	}
	if completedAt != sim.Time(sim.Microsecond) {
		t.Fatalf("completed at %v, want the deadline instant", completedAt)
	}
	if b.Expired() != 1 || b.Poisoned() != 1 {
		t.Fatalf("expired=%d poisoned=%d", b.Expired(), b.Poisoned())
	}
	if b.LateResponses() != 1 {
		t.Fatalf("late responses = %d", b.LateResponses())
	}
	if b.ExpiredUnsent() != 0 {
		t.Fatalf("expired unsent = %d", b.ExpiredUnsent())
	}
	if len(outcomes) != 1 || outcomes[0] {
		t.Fatalf("outcomes = %v (expiry must report failure exactly once)", outcomes)
	}
	// The tag recirculates once the straggler settles.
	if b.Outstanding() != 0 || b.Reads() != 1 {
		t.Fatalf("outstanding=%d reads=%d", b.Outstanding(), b.Reads())
	}
}

func TestDeadlineExpiresQueuedSend(t *testing.T) {
	k := sim.NewKernel()
	fs := &fakeSender{space: 0} // NIC saturated: the command never leaves
	b := deadlineBackend(k, fs, sim.Microsecond)
	completions := 0
	k.At(0, func() { b.ReadLine(0, func() { completions++ }) })
	k.Run()
	if completions != 1 {
		t.Fatalf("completions = %d", completions)
	}
	if b.Expired() != 1 || b.ExpiredUnsent() != 1 {
		t.Fatalf("expired=%d unsent=%d", b.Expired(), b.ExpiredUnsent())
	}
	if b.QueuedSends() != 0 {
		t.Fatalf("queued sends = %d (withdrawn command must leave the queue)", b.QueuedSends())
	}
	if len(fs.sent) != 0 {
		t.Fatalf("sent = %d", len(fs.sent))
	}
	// Accounting identity: completions == sent-and-tracked + expired-unsent.
	if b.Reads() != uint64(len(fs.sent))+b.ExpiredUnsent() {
		t.Fatalf("reads=%d sent=%d unsent=%d", b.Reads(), len(fs.sent), b.ExpiredUnsent())
	}
}

func TestDeadlineExpiresMidPortHop(t *testing.T) {
	k := sim.NewKernel()
	fs := &fakeSender{space: 10}
	// Deadline shorter than the CPU->NIC hop: the command expires before it
	// can even queue for a tag.
	b := NewRemoteBackend(k, fs, 4, 10*sim.Nanosecond, 0, 1)
	b.SetDeadline(5 * sim.Nanosecond)
	completions := 0
	k.At(0, func() { b.ReadLine(0, func() { completions++ }) })
	k.Run()
	if completions != 1 || b.ExpiredUnsent() != 1 {
		t.Fatalf("completions=%d unsent=%d", completions, b.ExpiredUnsent())
	}
	if len(fs.sent) != 0 || b.QueuedSends() != 0 {
		t.Fatalf("sent=%d queued=%d", len(fs.sent), b.QueuedSends())
	}
}

func TestDeadlineNackStillCountsOneOutcome(t *testing.T) {
	k := sim.NewKernel()
	fs := &fakeSender{space: 10}
	b := deadlineBackend(k, fs, sim.Microsecond)
	var outcomes []bool
	b.SetOutcomeObserver(func(ok bool) { outcomes = append(outcomes, ok) })
	k.At(0, func() { b.ReadLine(0, func() {}) })
	k.At(sim.Time(100*sim.Nanosecond), func() {
		p := fs.sent[0]
		p.NackInPlace()
		b.Deliver(p)
	})
	k.Run()
	if len(outcomes) != 1 || outcomes[0] {
		t.Fatalf("outcomes = %v (nack is a failure outcome)", outcomes)
	}
	if b.Poisoned() != 1 || b.Expired() != 0 {
		t.Fatalf("poisoned=%d expired=%d", b.Poisoned(), b.Expired())
	}
}

func TestDeadlinePooledTimersRecycle(t *testing.T) {
	k := sim.NewKernel()
	fs := &fakeSender{space: 10}
	b := deadlineBackend(k, fs, sim.Microsecond)
	// Several generations of transactions through the same contexts: stale
	// timers must never expire a successor.
	for round := 0; round < 5; round++ {
		completions := 0
		k.At(k.Now(), func() { b.ReadLine(0, func() { completions++ }) })
		k.Post(func() {
			k.After(100*sim.Nanosecond, func() { b.Deliver(fs.sent[len(fs.sent)-1].Response()) })
		})
		k.Run()
		if completions != 1 {
			t.Fatalf("round %d: completions = %d", round, completions)
		}
	}
	if b.Expired() != 0 {
		t.Fatalf("stale timer expired a live transaction: %d", b.Expired())
	}
	if b.Reads() != 5 {
		t.Fatalf("reads = %d", b.Reads())
	}
}

func TestNegativeDeadlinePanics(t *testing.T) {
	k := sim.NewKernel()
	b := NewRemoteBackend(k, &fakeSender{space: 1}, 4, 0, 0, 1)
	defer func() {
		if recover() == nil {
			t.Error("negative deadline accepted")
		}
	}()
	b.SetDeadline(-sim.Nanosecond)
}

// TestDeadlineZeroKeepsLegacyPath pins that the default (0) arms nothing.
func TestDeadlineZeroKeepsLegacyPath(t *testing.T) {
	k := sim.NewKernel()
	fs := &fakeSender{space: 10}
	b := NewRemoteBackend(k, fs, 4, 10*sim.Nanosecond, 0, 1)
	completions := 0
	k.At(0, func() { b.ReadLine(0, func() { completions++ }) })
	k.At(sim.Time(50*sim.Microsecond), func() { b.Deliver(fs.sent[0].Response()) })
	k.Run()
	if completions != 1 || b.Expired() != 0 || b.Poisoned() != 0 {
		t.Fatalf("completions=%d expired=%d poisoned=%d", completions, b.Expired(), b.Poisoned())
	}
	_ = ocapi.CacheLineSize
}
