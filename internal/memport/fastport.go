package memport

import (
	"fmt"

	"thymesim/internal/ocapi"
	"thymesim/internal/sim"
)

// FastPort is an O(1)-per-access analytic model of the remote datapath,
// used for large workload sweeps (full-scale Graph500, long Memtier runs)
// where driving every cache line through the event-level pipeline would be
// needlessly slow. It models the two mechanisms that dominate end-to-end
// behaviour:
//
//  1. the delay injector's release grid: successive requests leave the NIC
//     no faster than one per SlotInterval, aligned to the grid, and
//  2. the MSHR window: at most Window line fills outstanding.
//
// It is validated against the event-level model by cross-checking tests in
// this package (same parameters, same access stream, bandwidth and latency
// within tolerance).
type FastPort struct {
	baseRTT sim.Duration
	slot    sim.Duration
	window  int

	// ring holds completion times of the last `window` fills.
	ring    []sim.Time
	head    int
	inUse   int
	lastRel sim.Time

	lines   uint64
	latSum  sim.Duration
	firstAt sim.Time
	lastAt  sim.Time
}

// NewFastPort builds the analytic port. baseRTT is the uncontended
// line-fill round trip; slotInterval is PERIOD × FPGA cycle (0 or the
// cycle time for vanilla behaviour); window is the MSHR count.
func NewFastPort(baseRTT, slotInterval sim.Duration, window int) *FastPort {
	if baseRTT <= 0 || slotInterval < 0 || window <= 0 {
		panic(fmt.Sprintf("memport: bad FastPort params rtt=%v slot=%v window=%d", baseRTT, slotInterval, window))
	}
	return &FastPort{
		baseRTT: baseRTT,
		slot:    slotInterval,
		window:  window,
		ring:    make([]sim.Time, window),
		lastRel: -1,
	}
}

// Access issues one line fill at virtual time now and returns its
// completion time. Callers model dependent accesses by passing the
// previous completion as the next now, and independent accesses by
// reusing the same now.
func (f *FastPort) Access(now sim.Time) sim.Time {
	// MSHR window: wait for the oldest outstanding fill if full. ring is
	// ordered because releases are monotone.
	if f.inUse == f.window {
		oldest := f.ring[f.head]
		if oldest > now {
			now = oldest
		}
		f.head = (f.head + 1) % f.window
		f.inUse--
	}
	// Injector release grid: align up to the next unused slot.
	rel := now
	if f.slot > 0 {
		s := int64(f.slot)
		idx := int64(rel) / s
		if sim.Time(idx)*sim.Time(s) < rel {
			idx++
		}
		if last := f.lastRel; last >= 0 {
			lastIdx := int64(last) / s
			if idx <= lastIdx {
				idx = lastIdx + 1
			}
		}
		rel = sim.Time(idx) * sim.Time(s)
	}
	f.lastRel = rel
	complete := rel.Add(f.baseRTT)
	f.ring[(f.head+f.inUse)%f.window] = complete
	f.inUse++
	if f.lines == 0 {
		f.firstAt = now
	}
	f.lastAt = complete
	f.lines++
	f.latSum += complete.Sub(now)
	return complete
}

// Lines returns the number of fills issued.
func (f *FastPort) Lines() uint64 { return f.lines }

// MeanLatency returns the mean issue-to-completion latency.
func (f *FastPort) MeanLatency() sim.Duration {
	if f.lines == 0 {
		return 0
	}
	return f.latSum / sim.Duration(f.lines)
}

// BandwidthBps returns achieved line bandwidth over the active span.
func (f *FastPort) BandwidthBps() float64 {
	if f.lines < 2 || f.lastAt <= f.firstAt {
		return 0
	}
	return float64(f.lines*ocapi.CacheLineSize) / f.lastAt.Sub(f.firstAt).Seconds()
}

// Drain returns the completion time of the last outstanding fill (now if
// none) — the virtual time at which all issued traffic has landed.
func (f *FastPort) Drain(now sim.Time) sim.Time {
	if f.inUse == 0 {
		return now
	}
	last := f.ring[(f.head+f.inUse-1)%f.window]
	if last > now {
		return last
	}
	return now
}
