// Package memport is the CPU-side memory interface workloads run against.
//
// A Hierarchy combines the LLC model with a line-granular backend (local
// DRAM or the remote ThymesisFlow datapath) and enforces the MSHR
// discipline: at most Window line fills may be outstanding, which is the
// architectural source of the paper's constant bandwidth-delay product.
package memport

import (
	"fmt"

	"thymesim/internal/cache"
	"thymesim/internal/metrics"
	"thymesim/internal/obs"
	"thymesim/internal/ocapi"
	"thymesim/internal/sim"
)

// DefaultMSHRs is the modelled outstanding-miss window. 129 lines × 128 B
// ≈ 16.5 kB, the BDP the paper measures in Fig. 3.
const DefaultMSHRs = 129

// LineBackend services whole cache lines asynchronously.
type LineBackend interface {
	// ReadLine fetches the line at addr and calls done when data arrives.
	ReadLine(addr uint64, done func())
	// WriteLine writes the line at addr and calls done (may be nil) when
	// the write is acknowledged.
	WriteLine(addr uint64, done func())
}

// SpanBackend is an optional LineBackend extension: backends that can
// attribute their per-stage latency to an obs span implement it, and a
// traced Hierarchy routes line fills through it. sp may be zero (the fill
// was sampled out), in which case it behaves exactly like ReadLine.
type SpanBackend interface {
	ReadLineSpan(addr uint64, sp obs.SpanID, done func())
}

// HandlerBackend is the closure-free LineBackend extension: h.Handle(arg)
// fires when the line arrives. The in-tree backends implement it; the
// Hierarchy falls back to ReadLine with a cached closure for third-party
// backends that don't.
type HandlerBackend interface {
	ReadLineSpanH(addr uint64, sp obs.SpanID, h sim.Handler, arg uint64)
}

// Stats aggregates hierarchy-level counters.
type Stats struct {
	Accesses   uint64
	LineFills  uint64
	Writebacks uint64
	BytesMoved uint64 // bytes moved between cache and backend
}

// Hierarchy is an LLC in front of a LineBackend with an MSHR window.
type Hierarchy struct {
	k       *sim.Kernel
	llc     *cache.Cache
	backend LineBackend
	mshr    *sim.CreditPool

	stats    Stats
	fillLat  *metrics.Histogram // line-fill latency in microseconds
	onFill   func(sim.Duration)
	onAccess func(addr uint64, size int, write bool)
	onMiss   func(lineAddr uint64) // prefetcher hook

	tracer *obs.Tracer // nil when tracing is disabled
	spanBE SpanBackend // backend's traced read path, if it has one
	hndlBE HandlerBackend

	// freeAccess and freeFills recycle the per-access join contexts and
	// per-miss fill continuations, so a warmed-up hierarchy resolves
	// misses without allocating.
	freeAccess *accessCtx
	freeFills  *fillCtx
}

// accessCtx joins a multi-line access: it counts outstanding fills and
// runs done when the last one lands, replacing the captured
// sim.WaitGroup. It exists only for accesses with at least one miss.
type accessCtx struct {
	n    int
	done func()
	next *accessCtx
}

// fillCtx carries one line miss through MSHR grant (arg 0) and backend
// completion (arg 1).
type fillCtx struct {
	h        *Hierarchy
	ac       *accessCtx
	lineAddr uint64
	issued   sim.Time
	sp       obs.SpanID
	// fn is the lazily built, cached fallback closure for backends that
	// do not implement HandlerBackend; amortized by pooling.
	fn   func()
	next *fillCtx
}

// Handle implements sim.Handler.
func (fc *fillCtx) Handle(stage uint64) {
	h := fc.h
	if stage == 0 {
		// MSHR granted: issue the line read.
		if fc.sp != 0 && h.spanBE != nil && h.hndlBE == nil {
			h.spanBE.ReadLineSpan(fc.lineAddr, fc.sp, fc.doneFn())
			return
		}
		if h.hndlBE != nil {
			h.hndlBE.ReadLineSpanH(fc.lineAddr, fc.sp, fc, 1)
			return
		}
		h.backend.ReadLine(fc.lineAddr, fc.doneFn())
		return
	}
	// Line arrived.
	lat := h.k.Now().Sub(fc.issued)
	h.fillLat.Observe(lat.Micros())
	if h.onFill != nil {
		h.onFill(lat)
	}
	h.tracer.Finish(fc.sp)
	h.stats.LineFills++
	h.stats.BytesMoved += ocapi.CacheLineSize
	ac := fc.ac
	fc.ac = nil
	fc.next = h.freeFills
	h.freeFills = fc
	h.mshr.Release()
	ac.n--
	if ac.n == 0 && ac.done != nil {
		done := ac.done
		ac.done = nil
		ac.next = h.freeAccess
		h.freeAccess = ac
		done()
	}
}

// doneFn returns the cached closure completing this fill, for backends
// without a handler path.
func (fc *fillCtx) doneFn() func() {
	if fc.fn == nil {
		fc.fn = func() { fc.Handle(1) }
	}
	return fc.fn
}

// NewHierarchy builds a hierarchy with the given LLC and backend. mshrs
// bounds outstanding line fills.
func NewHierarchy(k *sim.Kernel, llc *cache.Cache, backend LineBackend, mshrs int) *Hierarchy {
	if mshrs <= 0 {
		panic("memport: mshrs must be positive")
	}
	h := &Hierarchy{
		k:       k,
		llc:     llc,
		backend: backend,
		mshr:    sim.NewCreditPool(k, mshrs),
		fillLat: metrics.NewHistogram(0.001), // 1ns first bucket, in us
	}
	h.hndlBE, _ = backend.(HandlerBackend)
	return h
}

// Stats returns the counters so far.
func (h *Hierarchy) Stats() Stats { return h.stats }

// CacheStats returns the LLC event counters.
func (h *Hierarchy) CacheStats() cache.Stats { return h.llc.Stats() }

// FillLatency returns the line-fill latency distribution (microseconds).
func (h *Hierarchy) FillLatency() *metrics.Histogram { return h.fillLat }

// OutstandingFills returns the MSHRs currently in use.
func (h *Hierarchy) OutstandingFills() int { return h.mshr.InUse() }

// OnFill registers an observer invoked with every line-fill latency, in
// completion order — used to capture latency traces for replay.
func (h *Hierarchy) OnFill(fn func(sim.Duration)) { h.onFill = fn }

// OnAccess registers an observer invoked with every Access call (before
// cache lookup) — used to capture workload memory traces.
func (h *Hierarchy) OnAccess(fn func(addr uint64, size int, write bool)) { h.onAccess = fn }

// SetTracer enables span tracing: each sampled line fill opens a span
// covering the same interval as the fill-latency histogram (MSHR acquire
// through response delivery), and LLC evictions become instant events.
// Tracing observes only — it schedules no events and consumes no
// randomness — so timing is bit-identical with it on or off.
func (h *Hierarchy) SetTracer(tr *obs.Tracer) {
	if tr == nil {
		return
	}
	h.tracer = tr
	h.spanBE, _ = h.backend.(SpanBackend)
	h.llc.OnEviction(func(victimAddr uint64, dirty bool) {
		name := "llc_evict"
		if dirty {
			name = "llc_writeback"
		}
		tr.Instant(name, victimAddr)
	})
}

// Access touches [addr, addr+size) with the given intent and calls done
// when every line is resolved (hits immediately; misses when their fill
// completes). Writebacks of dirty victims are posted: they consume backend
// bandwidth but do not delay done.
func (h *Hierarchy) Access(addr uint64, size int, write bool, done func()) {
	if size <= 0 {
		panic(fmt.Sprintf("memport: access size %d", size))
	}
	h.stats.Accesses++
	if h.onAccess != nil {
		h.onAccess(addr, size, write)
	}
	var ac *accessCtx
	first := ocapi.LineAlign(addr)
	for a := first; a < addr+uint64(size); a += ocapi.CacheLineSize {
		res := h.llc.Access(a, write)
		if res.Writeback {
			h.stats.Writebacks++
			h.stats.BytesMoved += ocapi.CacheLineSize
			h.backend.WriteLine(res.VictimAddr, nil)
		}
		if res.Hit {
			continue
		}
		if ac == nil {
			ac = h.freeAccess
			if ac == nil {
				ac = &accessCtx{}
			} else {
				h.freeAccess = ac.next
				ac.next = nil
			}
		}
		ac.n++
		lineAddr := a
		if h.onMiss != nil {
			h.onMiss(lineAddr)
		}
		sp := h.tracer.Start(obs.KindRead, lineAddr)
		h.tracer.Enter(sp, obs.StageMSHR)
		fc := h.freeFills
		if fc == nil {
			fc = &fillCtx{h: h}
		} else {
			h.freeFills = fc.next
			fc.next = nil
		}
		fc.ac, fc.lineAddr, fc.issued, fc.sp = ac, lineAddr, h.k.Now(), sp
		h.mshr.AcquireH(fc, 0)
	}
	if ac == nil {
		// Every line hit: complete synchronously, as WaitGroup.OnZero did.
		if done != nil {
			done()
		}
		return
	}
	// Fills never complete synchronously (every backend path crosses at
	// least one kernel event), so registering done after the loop cannot
	// miss the last fill.
	ac.done = done
	if ac.done == nil {
		ac.done = nopDone
	}
}

// nopDone stands in for a nil done so the join context always fires and
// recycles.
func nopDone() {}

// Flush invalidates the cache, accounting dirty lines as writebacks. The
// flush's backend traffic is not modelled: it is used between benchmark
// kernels, which are separated by barriers in the harness anyway.
func (h *Hierarchy) Flush() {
	wb := h.llc.Flush()
	for i := 0; i < wb; i++ {
		h.stats.Writebacks++
		h.stats.BytesMoved += ocapi.CacheLineSize
	}
}
