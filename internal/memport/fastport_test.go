package memport

import (
	"testing"
	"testing/quick"

	"thymesim/internal/ocapi"
	"thymesim/internal/sim"
)

func TestFastPortDependentChain(t *testing.T) {
	// Dependent accesses with no injection pay one RTT each.
	p := NewFastPort(sim.Duration(sim.Microsecond), 0, 16)
	now := sim.Time(0)
	for i := 0; i < 10; i++ {
		now = p.Access(now)
	}
	if now != sim.Time(10*sim.Microsecond) {
		t.Fatalf("chain end = %v, want 10us", now)
	}
	if p.MeanLatency() != sim.Duration(sim.Microsecond) {
		t.Fatalf("mean latency = %v", p.MeanLatency())
	}
}

func TestFastPortSlotGridThrottlesIndependentStream(t *testing.T) {
	// Independent accesses issued at t=0 release one per slot.
	slot := sim.Duration(40 * sim.Nanosecond) // PERIOD=10 @ 4ns
	p := NewFastPort(sim.Duration(sim.Microsecond), slot, 1<<20)
	var last sim.Time
	const n = 100
	for i := 0; i < n; i++ {
		last = p.Access(0)
	}
	want := sim.Time((n-1)*int(slot)) + sim.Time(sim.Microsecond)
	if last != want {
		t.Fatalf("last completion = %v, want %v", last, want)
	}
}

func TestFastPortWindowCausesBDP(t *testing.T) {
	// Saturated: bandwidth = window*line/latency; latency = window*slot.
	const window = 64
	slot := sim.Duration(400 * sim.Nanosecond) // PERIOD=100
	p := NewFastPort(sim.Duration(sim.Microsecond), slot, window)
	for i := 0; i < 20000; i++ {
		p.Access(0)
	}
	bw := p.BandwidthBps()
	lat := p.MeanLatency()
	bdp := bw * lat.Seconds()
	wantBDP := float64(window * ocapi.CacheLineSize)
	if bdp < 0.85*wantBDP || bdp > 1.15*wantBDP {
		t.Fatalf("BDP = %v, want ~%v (bw=%v lat=%v)", bdp, wantBDP, bw, lat)
	}
}

func TestFastPortDrain(t *testing.T) {
	p := NewFastPort(sim.Duration(sim.Microsecond), 0, 4)
	if d := p.Drain(100); d != 100 {
		t.Fatalf("empty drain = %v", d)
	}
	c := p.Access(0)
	if d := p.Drain(0); d != c {
		t.Fatalf("drain = %v, want %v", d, c)
	}
}

func TestFastPortValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewFastPort(0, 0, 1) },
		func() { NewFastPort(1, -1, 1) },
		func() { NewFastPort(1, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: completion times are monotone non-decreasing for monotone
// issue times, and never precede issue + baseRTT.
func TestFastPortMonotoneProperty(t *testing.T) {
	f := func(gaps []uint16, window8, slot8 uint8) bool {
		window := int(window8%32) + 1
		slot := sim.Duration(slot8) * sim.Nanosecond
		base := sim.Duration(500 * sim.Nanosecond)
		p := NewFastPort(base, slot, window)
		now := sim.Time(0)
		var prev sim.Time
		for _, g := range gaps {
			now = now.Add(sim.Duration(g))
			c := p.Access(now)
			if c < prev {
				return false
			}
			if c < now.Add(base) {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
