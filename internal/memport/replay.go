package memport

import (
	"thymesim/internal/sim"
)

// Op is one memory operation of a replay trace.
type Op struct {
	Addr  uint64
	Size  int32
	Write bool
}

// TraceSource yields the memory behaviour of an algorithm as a sequence of
// phases: operations within a phase are independent (issued up to the
// window limit), phases are separated by barriers (dependency structure —
// BFS levels, delta-stepping buckets, a request's pointer-chase steps).
type TraceSource interface {
	NumPhases() int
	// Phase returns the operations of phase i. The slice may be built on
	// demand and is owned by the replayer until the next call.
	Phase(i int) []Op
	// ComputeTime returns the CPU time of phase i, overlapped with its
	// memory time (the phase takes max(memory, compute)).
	ComputeTime(i int) sim.Duration
}

// Replay drives a trace through a hierarchy with the given issue window
// and calls done with the total elapsed simulated time.
func Replay(k *sim.Kernel, h *Hierarchy, src TraceSource, window int, done func(sim.Duration)) {
	if window <= 0 {
		panic("memport: replay window must be positive")
	}
	start := k.Now()
	phase := 0
	var runPhase func()
	runPhase = func() {
		if phase == src.NumPhases() {
			done(k.Now().Sub(start))
			return
		}
		ops := src.Phase(phase)
		compute := src.ComputeTime(phase)
		phaseStart := k.Now()
		idx := 0
		inflight := 0
		pumping := false
		finished := false
		var pump func()
		finishPhase := func() {
			finished = true
			phase++
			// Overlap compute with memory: the phase cannot end before
			// its compute completes.
			minEnd := phaseStart.Add(compute)
			if k.Now() < minEnd {
				k.At(minEnd, runPhase)
			} else {
				k.Post(runPhase)
			}
		}
		// One completion closure for the whole phase: Access must not be
		// handed a fresh closure per operation on the hot path.
		opDone := func() {
			inflight--
			pump()
		}
		pump = func() {
			if pumping || finished {
				return
			}
			pumping = true
			for inflight < window && idx < len(ops) {
				op := ops[idx]
				idx++
				inflight++
				h.Access(op.Addr, int(op.Size), op.Write, opDone)
			}
			pumping = false
			if !finished && idx == len(ops) && inflight == 0 {
				finishPhase()
			}
		}
		if len(ops) == 0 {
			finishPhase()
			return
		}
		pump()
	}
	runPhase()
}
