package memport

import (
	"testing"

	"thymesim/internal/cache"
	"thymesim/internal/sim"
)

// sliceTrace adapts explicit phases for tests.
type sliceTrace struct {
	phases  [][]Op
	compute []sim.Duration
}

func (s *sliceTrace) NumPhases() int   { return len(s.phases) }
func (s *sliceTrace) Phase(i int) []Op { return s.phases[i] }
func (s *sliceTrace) ComputeTime(i int) sim.Duration {
	if s.compute == nil {
		return 0
	}
	return s.compute[i]
}

func replayHierarchy(k *sim.Kernel, latency sim.Duration) (*Hierarchy, *fakeBackend) {
	fb := &fakeBackend{k: k, latency: latency}
	llc := cache.New(cache.Config{SizeBytes: 16 << 10, Ways: 2, LineSize: 128})
	return NewHierarchy(k, llc, fb, 8), fb
}

func TestReplayPhasesAreBarriers(t *testing.T) {
	k := sim.NewKernel()
	h, fb := replayHierarchy(k, 100*sim.Nanosecond)
	// Two phases of 4 independent misses each: with window 8 they could
	// overlap, but the barrier forces 2 x 100ns.
	tr := &sliceTrace{phases: [][]Op{
		{{Addr: 0, Size: 8}, {Addr: 4096, Size: 8}, {Addr: 8192, Size: 8}, {Addr: 12288, Size: 8}},
		{{Addr: 1 << 20, Size: 8}, {Addr: 1<<20 + 4096, Size: 8}},
	}}
	var elapsed sim.Duration
	k.At(0, func() { Replay(k, h, tr, 8, func(d sim.Duration) { elapsed = d }) })
	k.Run()
	if elapsed != 200*sim.Nanosecond {
		t.Fatalf("elapsed = %v, want 200ns (two barriered phases)", elapsed)
	}
	if fb.reads != 6 {
		t.Fatalf("reads = %d", fb.reads)
	}
}

func TestReplayWindowLimits(t *testing.T) {
	k := sim.NewKernel()
	h, fb := replayHierarchy(k, 100*sim.Nanosecond)
	ops := make([]Op, 6)
	for i := range ops {
		ops[i] = Op{Addr: uint64(i) * 4096, Size: 8}
	}
	var elapsed sim.Duration
	k.At(0, func() {
		Replay(k, h, &sliceTrace{phases: [][]Op{ops}}, 2, func(d sim.Duration) { elapsed = d })
	})
	k.Run()
	// Window 2 over 6 misses of 100ns each: 3 rounds.
	if elapsed != 300*sim.Nanosecond {
		t.Fatalf("elapsed = %v, want 300ns", elapsed)
	}
	if fb.maxOut > 2 {
		t.Fatalf("outstanding = %d, window 2", fb.maxOut)
	}
}

func TestReplayComputeOverlap(t *testing.T) {
	k := sim.NewKernel()
	h, _ := replayHierarchy(k, 100*sim.Nanosecond)
	tr := &sliceTrace{
		phases:  [][]Op{{{Addr: 0, Size: 8}}, {{Addr: 4096, Size: 8}}},
		compute: []sim.Duration{500 * sim.Nanosecond, 10 * sim.Nanosecond},
	}
	var elapsed sim.Duration
	k.At(0, func() { Replay(k, h, tr, 4, func(d sim.Duration) { elapsed = d }) })
	k.Run()
	// Phase 1: max(100ns mem, 500ns compute) = 500ns; phase 2: max(100,
	// 10) = 100ns.
	if elapsed != 600*sim.Nanosecond {
		t.Fatalf("elapsed = %v, want 600ns", elapsed)
	}
}

func TestReplayEmptyPhases(t *testing.T) {
	k := sim.NewKernel()
	h, _ := replayHierarchy(k, 100*sim.Nanosecond)
	called := false
	tr := &sliceTrace{phases: [][]Op{{}, {}, {}}}
	k.At(0, func() { Replay(k, h, tr, 4, func(sim.Duration) { called = true }) })
	k.Run()
	if !called {
		t.Fatal("empty replay never finished")
	}
}

func TestReplayCacheHitsAreFree(t *testing.T) {
	k := sim.NewKernel()
	h, fb := replayHierarchy(k, 100*sim.Nanosecond)
	same := []Op{{Addr: 0, Size: 8}, {Addr: 8, Size: 8}, {Addr: 16, Size: 8}}
	var elapsed sim.Duration
	k.At(0, func() {
		Replay(k, h, &sliceTrace{phases: [][]Op{same}}, 4, func(d sim.Duration) { elapsed = d })
	})
	k.Run()
	if fb.reads != 1 {
		t.Fatalf("reads = %d, want 1 (same line)", fb.reads)
	}
	if elapsed != 100*sim.Nanosecond {
		t.Fatalf("elapsed = %v", elapsed)
	}
}

func TestReplayZeroWindowPanics(t *testing.T) {
	k := sim.NewKernel()
	h, _ := replayHierarchy(k, 0)
	defer func() {
		if recover() == nil {
			t.Error("zero window did not panic")
		}
	}()
	Replay(k, h, &sliceTrace{}, 0, func(sim.Duration) {})
}
