package memport

import (
	"testing"

	"thymesim/internal/cache"
	"thymesim/internal/ocapi"
	"thymesim/internal/sim"
)

func prefetchHierarchy(k *sim.Kernel, degree int) (*Hierarchy, *Prefetcher, *fakeBackend) {
	fb := &fakeBackend{k: k, latency: sim.Duration(sim.Microsecond)}
	llc := cache.New(cache.Config{SizeBytes: 64 << 10, Ways: 4, LineSize: ocapi.CacheLineSize})
	h := NewHierarchy(k, llc, fb, 8)
	p := AttachPrefetcher(h, degree)
	return h, p, fb
}

func TestAttachDegreeZeroDisables(t *testing.T) {
	k := sim.NewKernel()
	h, p, _ := prefetchHierarchy(k, 0)
	if p != nil {
		t.Fatal("degree 0 returned a prefetcher")
	}
	if h.onMiss != nil {
		t.Fatal("hook installed at degree 0")
	}
}

func TestSequentialStreamConfirmsAndRunsAhead(t *testing.T) {
	k := sim.NewKernel()
	h, p, fb := prefetchHierarchy(k, 4)
	// Touch 8 sequential lines: after 2 misses the stream confirms and
	// the prefetcher runs ahead.
	k.At(0, func() {
		var next func(i int)
		next = func(i int) {
			if i == 8 {
				return
			}
			h.Access(uint64(i)*ocapi.CacheLineSize, 8, false, func() { next(i + 1) })
		}
		next(0)
	})
	k.Run()
	if p.Confirmed() != 1 {
		t.Fatalf("confirmed = %d", p.Confirmed())
	}
	if p.Issued() == 0 {
		t.Fatal("no prefetches issued")
	}
	// Demand misses: first 2 lines miss (confirmation), the rest hit on
	// prefetched data.
	if fills := h.Stats().LineFills; fills > 4 {
		t.Fatalf("demand fills = %d, want few after confirmation", fills)
	}
	// Total backend traffic covers all touched lines (demand + prefetch,
	// no duplicates), plus run-ahead of at most the degree.
	total := uint64(fb.reads)
	if total < 8 || total > 8+4 {
		t.Fatalf("backend reads = %d, want 8..12", total)
	}
}

func TestRandomPatternDoesNotPrefetch(t *testing.T) {
	k := sim.NewKernel()
	h, p, _ := prefetchHierarchy(k, 4)
	rng := sim.NewRand(3)
	k.At(0, func() {
		for i := 0; i < 50; i++ {
			h.Access(uint64(rng.Intn(1<<20))&^127, 8, false, nil)
		}
	})
	k.Run()
	if p.Issued() > 5 {
		t.Fatalf("random pattern issued %d prefetches", p.Issued())
	}
}

func TestPrefetcherSpeedsUpStreamingScan(t *testing.T) {
	run := func(degree int) sim.Time {
		k := sim.NewKernel()
		h, _, _ := prefetchHierarchy(k, degree)
		k.At(0, func() {
			var next func(i int)
			next = func(i int) {
				if i == 200 {
					return
				}
				// Dependent sequential scan: worst case without prefetch.
				h.Access(uint64(i)*ocapi.CacheLineSize, 8, false, func() { next(i + 1) })
			}
			next(0)
		})
		return k.Run()
	}
	off := run(0)
	on := run(8)
	if float64(on) > 0.5*float64(off) {
		t.Fatalf("prefetcher gained too little: %v vs %v", on, off)
	}
}

func TestPrefetcherTracksMultipleStreams(t *testing.T) {
	k := sim.NewKernel()
	h, p, _ := prefetchHierarchy(k, 4)
	k.At(0, func() {
		var next func(i int)
		next = func(i int) {
			if i == 6 {
				return
			}
			// Interleave two distant sequential streams.
			a := uint64(i) * ocapi.CacheLineSize
			b := 1<<30 + uint64(i)*ocapi.CacheLineSize
			h.Access(a, 8, false, nil)
			h.Access(b, 8, false, func() { next(i + 1) })
		}
		next(0)
	})
	k.Run()
	if p.Confirmed() != 2 {
		t.Fatalf("confirmed = %d, want 2 streams", p.Confirmed())
	}
}
