// Package sweep fans independent experiment points out across a bounded
// worker pool. Every figure in the paper is a sweep — PERIOD grids,
// instance counts, fault levels — and each point builds its own testbed
// with its own single-threaded kernel, so points share nothing and can run
// on separate goroutines. Results are always collected in input order,
// which together with per-point seed derivation makes parallel output
// byte-identical to serial: the worker count is a throughput knob, never a
// results knob.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count request: values below 1 mean "one per
// available CPU" (GOMAXPROCS).
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(i) for every i in [0, n) across at most workers goroutines
// and returns the results indexed by input position. workers < 1 uses
// Workers' default. fn must be safe to call concurrently with itself;
// distinct calls must not share mutable state. A panic in any fn is
// re-raised on the caller's goroutine after the pool drains.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	Run(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// Run is Map without results: it calls fn(i) for every i in [0, n) across
// the pool and returns once all calls finish.
func Run(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Serial fast path: no goroutines, same call order as the pool's
		// index order, so -j 1 is the reference execution.
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Pointer[panicValue]
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicked.CompareAndSwap(nil, &panicValue{index: i, value: r})
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if pv := panicked.Load(); pv != nil {
		panic(fmt.Sprintf("sweep: point %d panicked: %v", pv.index, pv.value))
	}
}

type panicValue struct {
	index int
	value any
}
