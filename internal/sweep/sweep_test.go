package sweep

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapPreservesInputOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		got := Map(workers, 50, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapZeroPoints(t *testing.T) {
	if got := Map(4, 0, func(i int) int { t.Fatal("fn called"); return 0 }); len(got) != 0 {
		t.Fatalf("len = %d, want 0", len(got))
	}
	Run(4, 0, func(i int) { t.Fatal("fn called") })
}

func TestRunCoversEveryIndexOnce(t *testing.T) {
	const n = 200
	var calls [n]atomic.Int32
	Run(7, n, func(i int) { calls[i].Add(1) })
	for i := range calls {
		if c := calls[i].Load(); c != 1 {
			t.Fatalf("index %d called %d times", i, c)
		}
	}
}

func TestWorkersDefault(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int32
	Run(workers, 64, func(i int) {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		inFlight.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent calls, cap is %d", p, workers)
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic not propagated")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
			t.Fatalf("panic payload %v does not mention the cause", r)
		}
	}()
	Run(4, 16, func(i int) {
		if i == 9 {
			panic("boom")
		}
	})
}
