package cache

import (
	"testing"
	"testing/quick"

	"thymesim/internal/ocapi"
)

func smallCache() *Cache {
	// 4 sets x 2 ways x 128B lines = 1 KiB.
	return New(Config{SizeBytes: 1024, Ways: 2, LineSize: 128})
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{SizeBytes: 1024, Ways: 2, LineSize: 100}, // line not pow2
		{SizeBytes: 1000, Ways: 2, LineSize: 128}, // size not divisible
		{SizeBytes: 1024, Ways: 0, LineSize: 128}, // no ways
		{SizeBytes: 1152, Ways: 3, LineSize: 128}, // 3 sets: not pow2
		{SizeBytes: -128, Ways: 1, LineSize: 128}, // negative
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
	if err := AC922LLC().Validate(); err != nil {
		t.Errorf("AC922LLC invalid: %v", err)
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := smallCache()
	r := c.Access(0x1000, false)
	if r.Hit {
		t.Fatal("cold access hit")
	}
	r = c.Access(0x1000, false)
	if !r.Hit {
		t.Fatal("second access missed")
	}
	// Same line, different offset.
	r = c.Access(0x1000+64, false)
	if !r.Hit {
		t.Fatal("same-line access missed")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := smallCache() // 4 sets, 2 ways
	// Three lines mapping to set 0: line addresses 0, 4*128, 8*128.
	a0 := uint64(0)
	a1 := uint64(4 * 128)
	a2 := uint64(8 * 128)
	c.Access(a0, false)
	c.Access(a1, false)
	c.Access(a0, false) // a0 now MRU
	r := c.Access(a2, false)
	if r.Hit || !r.Evicted {
		t.Fatalf("expected eviction: %+v", r)
	}
	if c.Contains(a1) {
		t.Fatal("LRU victim a1 still present")
	}
	if !c.Contains(a0) || !c.Contains(a2) {
		t.Fatal("wrong lines evicted")
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	c := smallCache()
	a0 := uint64(0)
	a1 := uint64(4 * 128)
	a2 := uint64(8 * 128)
	c.Access(a0, true) // dirty
	c.Access(a1, false)
	r := c.Access(a2, false) // evicts a0 (LRU)
	if !r.Writeback {
		t.Fatalf("dirty eviction produced no writeback: %+v", r)
	}
	if r.VictimAddr != a0 {
		t.Fatalf("victim = %#x, want %#x", r.VictimAddr, a0)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d", c.Stats().Writebacks)
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	c := smallCache()
	c.Access(0, false)
	c.Access(4*128, false)
	r := c.Access(8*128, false)
	if !r.Evicted || r.Writeback {
		t.Fatalf("clean eviction: %+v", r)
	}
}

func TestWriteHitMarksDirty(t *testing.T) {
	c := smallCache()
	c.Access(0, false)
	c.Access(0, true) // write hit dirties the line
	c.Access(4*128, false)
	r := c.Access(8*128, false)
	if !r.Writeback || r.VictimAddr != 0 {
		t.Fatalf("write-hit dirty not written back: %+v", r)
	}
}

func TestFlush(t *testing.T) {
	c := smallCache()
	c.Access(0, true)
	c.Access(128, false)
	if wb := c.Flush(); wb != 1 {
		t.Fatalf("flush writebacks = %d", wb)
	}
	if c.Contains(0) || c.Contains(128) {
		t.Fatal("lines survived flush")
	}
}

func TestStreamingMissRate(t *testing.T) {
	// Sequentially touching a region much larger than the cache must miss
	// once per line — the STREAM working-set condition in §IV-A.
	c := smallCache()
	const lines = 1000
	for i := 0; i < lines; i++ {
		for off := uint64(0); off < 128; off += 8 {
			c.Access(uint64(i)*128+off, false)
		}
	}
	st := c.Stats()
	if st.Misses != lines {
		t.Fatalf("misses = %d, want %d (one per line)", st.Misses, lines)
	}
	wantHits := uint64(lines * 15) // 16 accesses per line, 15 hit
	if st.Hits != wantHits {
		t.Fatalf("hits = %d, want %d", st.Hits, wantHits)
	}
}

func TestHitRate(t *testing.T) {
	c := smallCache()
	if c.Stats().HitRate() != 0 {
		t.Fatal("empty hit rate not 0")
	}
	c.Access(0, false)
	c.Access(0, false)
	if hr := c.Stats().HitRate(); hr != 0.5 {
		t.Fatalf("hit rate = %v", hr)
	}
}

func TestVictimAddressMapsToSameSet(t *testing.T) {
	// Property: an evicted victim's address must map to the set that was
	// accessed (correct address reconstruction).
	f := func(lineIdx []uint16) bool {
		c := New(Config{SizeBytes: 2048, Ways: 2, LineSize: 128})
		sets := uint64(c.Sets())
		for _, li := range lineIdx {
			addr := uint64(li) * 128
			r := c.Access(addr, li%3 == 0)
			if r.Writeback {
				if (r.VictimAddr/128)%sets != (addr/128)%sets {
					return false
				}
				if r.VictimAddr%128 != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: hits + misses equals accesses, and a working set no larger than
// one set's ways never evicts.
func TestCacheAccountingProperty(t *testing.T) {
	f := func(seq []uint8) bool {
		c := smallCache()
		for _, s := range seq {
			// Two distinct lines in set 0 (ways=2): never evicts.
			addr := uint64(s%2) * 4 * 128
			c.Access(addr, false)
		}
		st := c.Stats()
		return st.Hits+st.Misses == uint64(len(seq)) && st.Evictions == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLinesHelperConsistency(t *testing.T) {
	// The cache's line geometry agrees with ocapi's.
	c := New(Config{SizeBytes: 4096, Ways: 2, LineSize: ocapi.CacheLineSize})
	c.Access(ocapi.CacheLineSize-1, false)
	if !c.Contains(0) {
		t.Fatal("offset within line 0 did not load line 0")
	}
}
