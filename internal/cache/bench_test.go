package cache

import "testing"

// BenchmarkAccessHit measures the hot path: repeated hits to a resident
// line.
func BenchmarkAccessHit(b *testing.B) {
	c := New(Config{SizeBytes: 1 << 20, Ways: 8, LineSize: 128})
	c.Access(0, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0, false)
	}
}

// BenchmarkAccessStreaming measures the miss/evict path of a streaming
// scan much larger than the cache.
func BenchmarkAccessStreaming(b *testing.B) {
	c := New(Config{SizeBytes: 1 << 20, Ways: 8, LineSize: 128})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i)*128, i%4 == 0)
	}
}

// BenchmarkAccessRandom measures a uniform working set 8x the cache.
func BenchmarkAccessRandom(b *testing.B) {
	c := New(Config{SizeBytes: 1 << 20, Ways: 8, LineSize: 128})
	var x uint64 = 0x9e3779b97f4a7c15
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		c.Access((x%(8<<20))&^127, false)
	}
}
