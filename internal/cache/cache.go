// Package cache models the borrower CPU's last-level cache as a
// set-associative, write-back, write-allocate state machine, plus the MSHR
// discipline that bounds outstanding misses.
//
// The cache is purely functional state (hit/miss/eviction decisions);
// timing lives in internal/memport. The MSHR window is the architectural
// origin of the paper's constant bandwidth-delay product (Fig. 3): at most
// Window cache lines can be in flight to remote memory, so achieved
// bandwidth is Window×LineSize / latency, i.e. BDP ≈ Window×LineSize ≈
// 16.5 kB on the POWER9 testbed.
package cache

import (
	"fmt"

	"thymesim/internal/metricsplane"
	"thymesim/internal/ocapi"
)

// Config describes an LLC.
type Config struct {
	SizeBytes int // total capacity
	Ways      int // associativity
	LineSize  int // bytes per line (ocapi.CacheLineSize on POWER9)
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache: line size %d not a positive power of two", c.LineSize)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache: ways = %d", c.Ways)
	}
	if c.SizeBytes <= 0 || c.SizeBytes%(c.LineSize*c.Ways) != 0 {
		return fmt.Errorf("cache: size %d not divisible by ways*line", c.SizeBytes)
	}
	sets := c.SizeBytes / (c.LineSize * c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// AC922LLC approximates the testbed's 120 MiB of last-level cache per node
// (paper §IV-A): 128 MiB modelled (nearest power-of-two geometry), 16-way.
func AC922LLC() Config {
	return Config{SizeBytes: 128 << 20, Ways: 16, LineSize: ocapi.CacheLineSize}
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // larger = more recent
}

// Stats counts cache events.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
}

// HitRate returns hits/(hits+misses), or 0 with no accesses.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a set-associative write-back cache model.
type Cache struct {
	cfg      Config
	sets     [][]line
	setMask  uint64
	lineBits uint
	clock    uint64
	stats    Stats
	onEvict  func(victimAddr uint64, dirty bool)
	mx       *metricsplane.CacheMetrics // nil when the metrics plane is disabled
}

// New builds a cache; invalid configs panic.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.SizeBytes / (cfg.LineSize * cfg.Ways)
	c := &Cache{cfg: cfg, setMask: uint64(nsets - 1)}
	c.sets = make([][]line, nsets)
	backing := make([]line, nsets*cfg.Ways)
	for i := range c.sets {
		c.sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
	}
	for bits := cfg.LineSize; bits > 1; bits >>= 1 {
		c.lineBits++
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// SetMetrics attaches the metrics plane's hit/miss/eviction counters
// (observe-only; nil disables).
func (c *Cache) SetMetrics(m *metricsplane.CacheMetrics) { c.mx = m }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return len(c.sets) }

// OnEviction registers an observer fired whenever a valid line is
// displaced, with the victim's line address and dirtiness. A single
// observer keeps Access allocation-free; a second registration panics.
func (c *Cache) OnEviction(fn func(victimAddr uint64, dirty bool)) {
	if c.onEvict != nil {
		panic("cache: second eviction observer")
	}
	c.onEvict = fn
}

func (c *Cache) index(addr uint64) (set uint64, tag uint64) {
	lineAddr := addr >> c.lineBits
	return lineAddr & c.setMask, lineAddr >> 0
}

// Result describes the outcome of an access.
type Result struct {
	Hit bool
	// Evicted reports that a valid victim line was displaced.
	Evicted bool
	// Writeback reports that the victim was dirty and must be written to
	// memory; VictimAddr is its line address.
	Writeback  bool
	VictimAddr uint64
}

// Access performs a read (write=false) or write (write=true) of the line
// containing addr, allocating on miss, and returns what happened. The
// caller charges timing for misses and writebacks.
func (c *Cache) Access(addr uint64, write bool) Result {
	set, tag := c.index(addr)
	lines := c.sets[set]
	c.clock++
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			lines[i].lru = c.clock
			if write {
				lines[i].dirty = true
			}
			c.stats.Hits++
			c.mx.Access(true, false, false)
			return Result{Hit: true}
		}
	}
	c.stats.Misses++
	// Choose victim: invalid way first, else LRU.
	victim := 0
	for i := range lines {
		if !lines[i].valid {
			victim = i
			break
		}
		if lines[i].lru < lines[victim].lru {
			victim = i
		}
	}
	res := Result{}
	if lines[victim].valid {
		res.Evicted = true
		c.stats.Evictions++
		if lines[victim].dirty {
			res.Writeback = true
			res.VictimAddr = c.lineAddr(set, lines[victim].tag)
			c.stats.Writebacks++
		}
		if c.onEvict != nil {
			c.onEvict(c.lineAddr(set, lines[victim].tag), lines[victim].dirty)
		}
	}
	lines[victim] = line{tag: tag, valid: true, dirty: write, lru: c.clock}
	c.mx.Access(false, res.Evicted, res.Writeback)
	return res
}

// lineAddr reconstructs a byte address from set and tag.
func (c *Cache) lineAddr(set, tag uint64) uint64 {
	// tag includes the set bits (we keep the full line address as tag and
	// mask at lookup), so reconstruct directly from the tag.
	return tag << c.lineBits
}

// Contains reports whether the line holding addr is present (no LRU
// update) — a test/debug helper.
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.index(addr)
	for _, l := range c.sets[set] {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Flush invalidates the whole cache, returning the number of dirty lines
// that a real flush would write back.
func (c *Cache) Flush() (writebacks int) {
	for si := range c.sets {
		for wi := range c.sets[si] {
			if c.sets[si][wi].valid && c.sets[si][wi].dirty {
				writebacks++
			}
			c.sets[si][wi] = line{}
		}
	}
	return writebacks
}
