package kvstore

import (
	"testing"

	"thymesim/internal/cluster"
	"thymesim/internal/sim"
)

func testbed(period int64) *cluster.Testbed {
	cfg := cluster.DefaultConfig(period)
	cfg.LLC.SizeBytes = 256 << 10
	cfg.LLC.Ways = 4
	return cluster.NewTestbed(cfg)
}

func newServer(tb *cluster.Testbed, remote bool) *Server {
	var base uint64
	h := tb.NewLocalHierarchy()
	if remote {
		base = tb.RemoteAddr(0)
		h = tb.NewRemoteHierarchy()
	}
	scfg := DefaultConfig(base)
	scfg.InitialBuckets = 1 << 10
	store := NewStore(scfg)
	return NewServer(tb.K, h, store, DefaultServerConfig())
}

func TestServerServesRequests(t *testing.T) {
	tb := testbed(1)
	srv := newServer(tb, true)
	var got Response
	tb.K.At(0, func() {
		srv.Submit(Request{Cmd: CmdSet, Key: "a", Value: []byte("1")}, func(Response) {})
		srv.Submit(Request{Cmd: CmdGet, Key: "a"}, func(r Response) { got = r })
	})
	tb.K.Run()
	if !got.OK || string(got.Value) != "1" {
		t.Fatalf("response = %+v", got)
	}
	if srv.Stats().Requests != 2 || srv.Stats().Hits != 1 {
		t.Fatalf("stats = %+v", srv.Stats())
	}
}

func TestServerSingleThreadedQueueing(t *testing.T) {
	tb := testbed(1)
	srv := newServer(tb, true)
	var doneAt []sim.Time
	tb.K.At(0, func() {
		for i := 0; i < 4; i++ {
			srv.Submit(Request{Cmd: CmdGet, Key: "missing"}, func(Response) {
				doneAt = append(doneAt, tb.K.Now())
			})
		}
	})
	tb.K.Run()
	if len(doneAt) != 4 {
		t.Fatal("not all served")
	}
	// Single-threaded: completions strictly spaced by at least the
	// netstack+CPU cost.
	minGap := DefaultServerConfig().NetStack
	for i := 1; i < len(doneAt); i++ {
		if doneAt[i].Sub(doneAt[i-1]) < minGap {
			t.Fatalf("requests overlapped: %v", doneAt)
		}
	}
	if srv.PeakQueueDepth() < 3 {
		t.Fatalf("peak queue depth = %d", srv.PeakQueueDepth())
	}
}

func TestServerAllCommands(t *testing.T) {
	tb := testbed(1)
	srv := newServer(tb, false)
	type out struct {
		resp Response
		cmd  CmdType
	}
	var outs []out
	run := func(req Request) {
		srv.Submit(req, func(r Response) { outs = append(outs, out{r, req.Cmd}) })
	}
	tb.K.At(0, func() {
		run(Request{Cmd: CmdSet, Key: "s", Value: []byte("v")})
		run(Request{Cmd: CmdGet, Key: "s"})
		run(Request{Cmd: CmdIncr, Key: "n"})
		run(Request{Cmd: CmdIncr, Key: "n"})
		run(Request{Cmd: CmdLPush, Key: "l", Value: []byte("x")})
		run(Request{Cmd: CmdLRange, Key: "l", Count: 10})
		run(Request{Cmd: CmdDel, Key: "s"})
		run(Request{Cmd: CmdGet, Key: "s"})
	})
	tb.K.Run()
	if len(outs) != 8 {
		t.Fatalf("served %d", len(outs))
	}
	if !outs[1].resp.OK || string(outs[1].resp.Value) != "v" {
		t.Fatalf("GET = %+v", outs[1].resp)
	}
	if outs[3].resp.Int != 2 {
		t.Fatalf("INCR = %d", outs[3].resp.Int)
	}
	if len(outs[5].resp.List) != 1 {
		t.Fatalf("LRANGE = %+v", outs[5].resp)
	}
	if outs[7].resp.OK {
		t.Fatal("GET after DEL succeeded")
	}
}

func runBench(t *testing.T, period int64, remote bool) BenchResult {
	t.Helper()
	tb := testbed(period)
	srv := newServer(tb, remote)
	cfg := DefaultBenchConfig()
	cfg.Threads = 2
	cfg.ConnsPerThread = 10
	cfg.RequestsPerClient = 10
	cfg.KeySpace = 1 << 12
	var res BenchResult
	got := false
	tb.K.At(0, func() {
		RunBench(tb.K, srv, cfg, func(r BenchResult) { res = r; got = true })
	})
	tb.K.Run()
	if !got {
		t.Fatal("bench never finished")
	}
	return res
}

func TestBenchCompletes(t *testing.T) {
	res := runBench(t, 1, true)
	if res.Requests != 200 {
		t.Fatalf("requests = %d, want 200", res.Requests)
	}
	if res.Throughput <= 0 || res.Elapsed <= 0 {
		t.Fatalf("throughput=%v elapsed=%v", res.Throughput, res.Elapsed)
	}
	if res.LatencyUs.Count() != 200 {
		t.Fatalf("latency samples = %d", res.LatencyUs.Count())
	}
	// Mix approximates 1:10 SET:GET.
	frac := float64(res.Sets) / float64(res.Requests)
	if frac < 0.02 || frac > 0.2 {
		t.Fatalf("set fraction = %v", frac)
	}
}

func TestRedisInsensitiveToModerateDelay(t *testing.T) {
	// The headline Redis result: remote at PERIOD=1 within a few percent
	// of local; throughput ratio near 1.
	local := runBench(t, 1, false)
	remote := runBench(t, 1, true)
	ratio := local.Throughput / remote.Throughput
	if ratio > 1.25 {
		t.Fatalf("remote Redis degraded %vx at PERIOD=1, want ~1x", ratio)
	}
}

func TestRedisDegradesModeratelyAtHighDelay(t *testing.T) {
	local := runBench(t, 1, false)
	slow := runBench(t, 1000, true)
	ratio := local.Throughput / slow.Throughput
	// Table I: 1.73x. Accept 1.2-4x — the point is "moderate, not
	// catastrophic" in contrast with Graph500's >100x.
	if ratio < 1.2 || ratio > 4 {
		t.Fatalf("PERIOD=1000 Redis degradation = %vx, want ~1.7x regime", ratio)
	}
}

func TestBenchConfigValidation(t *testing.T) {
	bad := []BenchConfig{
		{Threads: 0, ConnsPerThread: 1, RequestsPerClient: 1, KeySpace: 1, ValueBytes: 1},
		{Threads: 1, ConnsPerThread: 1, RequestsPerClient: 1, SetFraction: 2, KeySpace: 1, ValueBytes: 1},
		{Threads: 1, ConnsPerThread: 1, RequestsPerClient: 1, KeySpace: 0, ValueBytes: 1},
		{Threads: 1, ConnsPerThread: 1, RequestsPerClient: 1, KeySpace: 1, ValueBytes: 1, ClientRTT: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := PaperBenchConfig().Validate(); err != nil {
		t.Error(err)
	}
	if DefaultBenchConfig().Clients() != 200 {
		t.Errorf("clients = %d", DefaultBenchConfig().Clients())
	}
}

func TestCmdStrings(t *testing.T) {
	for _, c := range []CmdType{CmdGet, CmdSet, CmdDel, CmdIncr, CmdLPush, CmdLRange, CmdType(99)} {
		if c.String() == "" {
			t.Errorf("empty name for %d", int(c))
		}
	}
}

func TestServerExpireAndTTLCommands(t *testing.T) {
	tb := testbed(1)
	srv := newServer(tb, false)
	var ttlResp, getResp Response
	tb.K.At(0, func() {
		srv.Submit(Request{Cmd: CmdSet, Key: "s", Value: []byte("v")}, func(Response) {})
		srv.Submit(Request{Cmd: CmdExpire, Key: "s", TTL: 200 * sim.Microsecond}, func(r Response) {
			if !r.OK {
				t.Error("EXPIRE failed")
			}
		})
		srv.Submit(Request{Cmd: CmdTTL, Key: "s"}, func(r Response) { ttlResp = r })
	})
	tb.K.Run()
	if !ttlResp.OK || ttlResp.Int <= 0 {
		t.Fatalf("TTL response = %+v", ttlResp)
	}
	// Query long after the expiry instant: lazily reaped.
	tb.K.At(tb.K.Now().Add(sim.Duration(sim.Second)), func() {
		srv.Submit(Request{Cmd: CmdGet, Key: "s"}, func(r Response) { getResp = r })
	})
	tb.K.Run()
	if getResp.OK {
		t.Fatal("GET found an expired key")
	}
	if srv.Store().Expired() != 1 {
		t.Fatalf("expired = %d", srv.Store().Expired())
	}
}
