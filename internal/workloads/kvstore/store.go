// Package kvstore implements the paper's Redis workload: a real in-memory
// key-value store (chained hash table with Redis-style incremental rehash,
// string/counter/list values) whose operations emit phase-structured
// memory traces, an event-loop server model with network-stack service
// costs, and a Memtier-style closed-loop load generator (§IV-A: 4 threads
// × 50 connections × 10000 requests each).
//
// The store is real — commands mutate real Go data and return real
// results — while every operation also reports the cache-line accesses it
// would perform against its simulated heap placement, so the simulated
// clock advances exactly as a remote-memory-resident Redis would.
package kvstore

import (
	"fmt"
	"strconv"

	"thymesim/internal/memport"
	"thymesim/internal/sim"
)

// Simulated heap layout constants.
const (
	bucketBytes = 8   // one pointer per bucket
	entryBytes  = 64  // key header + pointers + metadata
	nodeBytes   = 64  // list node header
	lineBytes   = 128 // ocapi.CacheLineSize, kept literal to avoid the dep
)

// Trace is the memory behaviour of one command: groups are sequential
// (dependent pointer-chase steps), operations within a group are
// independent.
//
// Traces built by a Store draw their group storage from the store's
// recycling pools; callers that are done with a trace should hand it back
// via Store.RecycleTrace so steady-state serving allocates nothing. A
// zero-value Trace still works (groups are allocated fresh).
type Trace struct {
	Groups [][]memport.Op

	s *Store // pool owner; nil for zero-value traces
}

// newGroup returns an empty op slice, pooled when the trace has a store.
func (t *Trace) newGroup() []memport.Op {
	if t.s == nil {
		return nil
	}
	if n := len(t.s.freeOps); n > 0 {
		g := t.s.freeOps[n-1]
		t.s.freeOps[n-1] = nil
		t.s.freeOps = t.s.freeOps[:n-1]
		return g
	}
	return make([]memport.Op, 0, 8)
}

// add starts a new dependent group with the given ops. The ops are copied
// into pooled storage, so the variadic temporary stays on the stack.
func (t *Trace) add(ops ...memport.Op) {
	t.Groups = append(t.Groups, append(t.newGroup(), ops...))
}

// appendTo extends the last group (independent with it).
func (t *Trace) appendTo(ops ...memport.Op) {
	if len(t.Groups) == 0 {
		t.add(ops...)
		return
	}
	t.Groups[len(t.Groups)-1] = append(t.Groups[len(t.Groups)-1], ops...)
}

// addValue starts a new group covering a value's line accesses.
func (t *Trace) addValue(addr uint64, n int, write bool) {
	t.Groups = append(t.Groups, appendValueOps(t.newGroup(), addr, n, write))
}

// appendValueTo extends the last group with a value's line accesses.
func (t *Trace) appendValueTo(addr uint64, n int, write bool) {
	if len(t.Groups) == 0 {
		t.addValue(addr, n, write)
		return
	}
	i := len(t.Groups) - 1
	t.Groups[i] = appendValueOps(t.Groups[i], addr, n, write)
}

// Ops returns the total operation count.
func (t *Trace) Ops() int {
	n := 0
	for _, g := range t.Groups {
		n += len(g)
	}
	return n
}

type entry struct {
	key     string
	val     []byte
	listHd  int32 // head node index+1, 0 = not a list
	listLen int
	next    int32 // chain: entry index+1, 0 = end
	valAddr uint64
	valCap  int
	// expireAt is the absolute expiry instant; 0 means no TTL.
	expireAt sim.Time
}

type listNode struct {
	data []byte
	next int32 // node index+1
	addr uint64
}

// Store is the key-value store instance.
type Store struct {
	// Primary and (during rehash) secondary bucket tables, holding entry
	// index+1.
	buckets    []int32
	oldBuckets []int32 // non-nil while incrementally rehashing
	rehashPos  int

	entries []entry
	freeEnt []int32
	nodes   []listNode
	freeNod []int32
	size    int

	// Simulated placement.
	base      uint64
	bucketsAt uint64
	entriesAt uint64
	nodesAt   uint64
	valuesAt  uint64
	valBump   uint64

	// capacity bounds for the simulated regions
	maxEntries int
	maxNodes   int
	valBytes   uint64

	// clock supplies the current simulated time for TTL checks; nil means
	// TTLs never fire (a store outside a simulation).
	clock func() sim.Time
	// expired counts lazily deleted entries.
	expired uint64

	// freeOps and freeGroups recycle trace storage (op slices and group
	// lists) returned through RecycleTrace, so steady-state command
	// execution generates traces without allocating.
	freeOps    [][]memport.Op
	freeGroups [][][]memport.Op
}

// Config sizes the store's simulated heap.
type Config struct {
	// InitialBuckets must be a power of two.
	InitialBuckets int
	// MaxEntries and MaxNodes bound the slabs (simulated placement needs
	// fixed regions).
	MaxEntries int
	MaxNodes   int
	// ValueArenaBytes bounds total value storage.
	ValueArenaBytes uint64
	// BaseAddr places the heap (remote window offset or local).
	BaseAddr uint64
}

// DefaultConfig sizes the store for the benchmark defaults.
func DefaultConfig(baseAddr uint64) Config {
	return Config{
		InitialBuckets:  1 << 14,
		MaxEntries:      1 << 20,
		MaxNodes:        1 << 18,
		ValueArenaBytes: 1 << 30,
		BaseAddr:        baseAddr,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.InitialBuckets <= 0 || c.InitialBuckets&(c.InitialBuckets-1) != 0 {
		return fmt.Errorf("kvstore: InitialBuckets %d not a power of two", c.InitialBuckets)
	}
	if c.MaxEntries <= 0 || c.MaxNodes <= 0 || c.ValueArenaBytes == 0 {
		return fmt.Errorf("kvstore: zero capacity")
	}
	return nil
}

// NewStore builds an empty store.
func NewStore(cfg Config) *Store {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &Store{
		buckets:    make([]int32, cfg.InitialBuckets),
		base:       cfg.BaseAddr,
		maxEntries: cfg.MaxEntries,
		maxNodes:   cfg.MaxNodes,
		valBytes:   cfg.ValueArenaBytes,
	}
	// Layout: buckets | entries | nodes | values. The bucket region is
	// sized for the maximum table (entries capacity) so rehashed tables
	// stay in-region.
	align := func(x uint64) uint64 { return (x + lineBytes - 1) &^ uint64(lineBytes-1) }
	s.bucketsAt = s.base
	bucketSpan := align(uint64(cfg.MaxEntries*2) * bucketBytes)
	s.entriesAt = s.bucketsAt + bucketSpan
	entrySpan := align(uint64(cfg.MaxEntries) * entryBytes)
	s.nodesAt = s.entriesAt + entrySpan
	nodeSpan := align(uint64(cfg.MaxNodes) * nodeBytes)
	s.valuesAt = s.nodesAt + nodeSpan
	return s
}

// SetClock installs the time source used for TTL expiry (Redis checks
// TTLs lazily on access, as this store does).
func (s *Store) SetClock(clock func() sim.Time) { s.clock = clock }

// Expired returns the number of entries lazily deleted after their TTL.
func (s *Store) Expired() uint64 { return s.expired }

// Size returns the number of live keys (possibly including entries whose
// TTL has passed but which have not been touched since).
func (s *Store) Size() int { return s.size }

// Footprint returns the simulated bytes of the store's heap regions.
func (s *Store) Footprint() uint64 {
	return (s.valuesAt + s.valBump) - s.base
}

// newTrace starts a trace backed by the store's recycling pools.
func (s *Store) newTrace() Trace {
	t := Trace{s: s}
	if n := len(s.freeGroups); n > 0 {
		t.Groups = s.freeGroups[n-1]
		s.freeGroups[n-1] = nil
		s.freeGroups = s.freeGroups[:n-1]
	}
	return t
}

// RecycleTrace returns a trace's storage to the store's pools once its
// consumer (the replayer) is done with it. Recycling is optional — an
// unrecycled trace is simply collected — and idempotent; traces from other
// stores (or zero-value traces) are ignored.
func (s *Store) RecycleTrace(t *Trace) {
	if t.s != s || t.Groups == nil {
		return
	}
	for i, g := range t.Groups {
		if g != nil {
			s.freeOps = append(s.freeOps, g[:0])
		}
		t.Groups[i] = nil
	}
	s.freeGroups = append(s.freeGroups, t.Groups[:0])
	t.Groups = nil
	t.s = nil
}

// hash is FNV-1a over the key.
func hash(key string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

func (s *Store) bucketAddr(idx int, old bool) uint64 {
	// Old and new tables interleave in the bucket region; offset old
	// tables by half the region.
	off := uint64(idx) * bucketBytes
	if old {
		off += uint64(s.maxEntries) * bucketBytes
	}
	return s.bucketsAt + off
}

func (s *Store) entryAddr(i int32) uint64 { return s.entriesAt + uint64(i)*entryBytes }

// allocValue reserves simulated space for n bytes (line-rounded bump).
func (s *Store) allocValue(n int) uint64 {
	span := uint64(n+lineBytes-1) &^ uint64(lineBytes-1)
	if s.valBump+span > s.valBytes {
		panic("kvstore: value arena exhausted")
	}
	addr := s.valuesAt + s.valBump
	s.valBump += span
	return addr
}

func (s *Store) allocEntry() int32 {
	if n := len(s.freeEnt); n > 0 {
		i := s.freeEnt[n-1]
		s.freeEnt = s.freeEnt[:n-1]
		s.entries[i] = entry{}
		return i
	}
	if len(s.entries) >= s.maxEntries {
		panic("kvstore: entry slab exhausted")
	}
	s.entries = append(s.entries, entry{})
	return int32(len(s.entries) - 1)
}

func (s *Store) allocNode() int32 {
	if n := len(s.freeNod); n > 0 {
		i := s.freeNod[n-1]
		s.freeNod = s.freeNod[:n-1]
		s.nodes[i] = listNode{}
		return i
	}
	if len(s.nodes) >= s.maxNodes {
		panic("kvstore: node slab exhausted")
	}
	s.nodes = append(s.nodes, listNode{})
	return int32(len(s.nodes) - 1)
}

// appendValueOps appends the independent line accesses covering a value.
func appendValueOps(ops []memport.Op, addr uint64, n int, write bool) []memport.Op {
	for off := 0; off < n; off += lineBytes {
		sz := lineBytes
		if n-off < sz {
			sz = n - off
		}
		ops = append(ops, memport.Op{Addr: addr + uint64(off), Size: int32(sz), Write: write})
	}
	return ops
}

// rehashStep migrates a couple of old buckets, Redis-style, charging their
// accesses to the trace.
func (s *Store) rehashStep(t *Trace) {
	if s.oldBuckets == nil {
		return
	}
	const step = 2
	for i := 0; i < step && s.rehashPos < len(s.oldBuckets); i++ {
		bi := s.rehashPos
		s.rehashPos++
		t.add(memport.Op{Addr: s.bucketAddr(bi, true), Size: bucketBytes})
		ei := s.oldBuckets[bi]
		for ei != 0 {
			e := &s.entries[ei-1]
			next := e.next
			nb := int(hash(e.key) & uint64(len(s.buckets)-1))
			e.next = s.buckets[nb]
			s.buckets[nb] = ei
			t.appendTo(
				memport.Op{Addr: s.entryAddr(ei - 1), Size: entryBytes, Write: true},
				memport.Op{Addr: s.bucketAddr(nb, false), Size: bucketBytes, Write: true},
			)
			ei = next
		}
		s.oldBuckets[bi] = 0
	}
	if s.rehashPos >= len(s.oldBuckets) {
		s.oldBuckets = nil
		s.rehashPos = 0
	}
}

// maybeGrow starts an incremental rehash when load factor exceeds 1.
func (s *Store) maybeGrow() {
	if s.oldBuckets != nil || s.size <= len(s.buckets) {
		return
	}
	if len(s.buckets)*2 > s.maxEntries*2 {
		return // bucket region exhausted; keep chaining
	}
	s.oldBuckets = s.buckets
	s.buckets = make([]int32, len(s.oldBuckets)*2)
	s.rehashPos = 0
}

// lookup walks the chain for key, emitting the dependent accesses. It
// returns the entry index+1 and its predecessor index+1 (0 = chain head).
func (s *Store) lookup(key string, t *Trace) (ei, prev int32, inOld bool) {
	h := hash(key)
	// During rehash a miss in the new table falls back to the old one,
	// exactly like Redis's dictFind.
	bi := int(h & uint64(len(s.buckets)-1))
	t.add(memport.Op{Addr: s.bucketAddr(bi, false), Size: bucketBytes})
	ei = s.buckets[bi]
	for ei != 0 {
		t.add(memport.Op{Addr: s.entryAddr(ei - 1), Size: entryBytes})
		if s.entries[ei-1].key == key {
			if s.ttlExpired(ei) {
				s.reapLocked(key, ei, prev, false, t)
				return 0, 0, false
			}
			return ei, prev, false
		}
		prev = ei
		ei = s.entries[ei-1].next
	}
	if s.oldBuckets != nil {
		ob := int(h & uint64(len(s.oldBuckets)-1))
		if ob >= s.rehashPos {
			t.add(memport.Op{Addr: s.bucketAddr(ob, true), Size: bucketBytes})
			prev = 0
			ei = s.oldBuckets[ob]
			for ei != 0 {
				t.add(memport.Op{Addr: s.entryAddr(ei - 1), Size: entryBytes})
				if s.entries[ei-1].key == key {
					if s.ttlExpired(ei) {
						s.reapLocked(key, ei, prev, true, t)
						return 0, 0, false
					}
					return ei, prev, true
				}
				prev = ei
				ei = s.entries[ei-1].next
			}
		}
	}
	return 0, 0, false
}

// Set stores a string value, returning the command's memory trace.
func (s *Store) Set(key string, val []byte) Trace {
	t := s.newTrace()
	s.rehashStep(&t)
	s.maybeGrow()
	ei, _, _ := s.lookup(key, &t)
	if ei != 0 {
		e := &s.entries[ei-1]
		if len(val) > e.valCap {
			e.valAddr = s.allocValue(len(val))
			e.valCap = len(val)
		}
		e.val = append(e.val[:0], val...)
		e.listHd, e.listLen = 0, 0
		t.add(memport.Op{Addr: s.entryAddr(ei - 1), Size: entryBytes, Write: true})
		t.appendValueTo(e.valAddr, len(val), true)
		return t
	}
	ni := s.allocEntry()
	e := &s.entries[ni]
	e.key = key
	e.val = append([]byte(nil), val...)
	e.valAddr = s.allocValue(len(val))
	e.valCap = len(val)
	bi := int(hash(key) & uint64(len(s.buckets)-1))
	e.next = s.buckets[bi]
	s.buckets[bi] = ni + 1
	s.size++
	t.add(
		memport.Op{Addr: s.entryAddr(ni), Size: entryBytes, Write: true},
		memport.Op{Addr: s.bucketAddr(bi, false), Size: bucketBytes, Write: true},
	)
	t.appendValueTo(e.valAddr, len(val), true)
	return t
}

// Get fetches a string value.
func (s *Store) Get(key string) (val []byte, ok bool, t Trace) {
	t = s.newTrace()
	s.rehashStep(&t)
	ei, _, _ := s.lookup(key, &t)
	if ei == 0 {
		return nil, false, t
	}
	e := &s.entries[ei-1]
	if e.listHd != 0 {
		return nil, false, t // wrong type, like Redis WRONGTYPE
	}
	t.addValue(e.valAddr, len(e.val), false)
	return e.val, true, t
}

// Del removes a key, reporting whether it existed.
func (s *Store) Del(key string) (existed bool, t Trace) {
	t = s.newTrace()
	s.rehashStep(&t)
	ei, prev, inOld := s.lookup(key, &t)
	if ei == 0 {
		return false, t
	}
	e := &s.entries[ei-1]
	// Free list nodes.
	for ni := e.listHd; ni != 0; {
		next := s.nodes[ni-1].next
		s.freeNod = append(s.freeNod, ni-1)
		ni = next
	}
	h := hash(key)
	if prev != 0 {
		s.entries[prev-1].next = e.next
		t.add(memport.Op{Addr: s.entryAddr(prev - 1), Size: entryBytes, Write: true})
	} else if inOld {
		ob := int(h & uint64(len(s.oldBuckets)-1))
		s.oldBuckets[ob] = e.next
		t.add(memport.Op{Addr: s.bucketAddr(ob, true), Size: bucketBytes, Write: true})
	} else {
		bi := int(h & uint64(len(s.buckets)-1))
		s.buckets[bi] = e.next
		t.add(memport.Op{Addr: s.bucketAddr(bi, false), Size: bucketBytes, Write: true})
	}
	s.freeEnt = append(s.freeEnt, ei-1)
	*e = entry{}
	s.size--
	return true, t
}

// Incr atomically increments an integer-valued key (creating it at 1),
// returning the new value, like Redis INCR.
func (s *Store) Incr(key string) (int64, error, Trace) {
	t := s.newTrace()
	s.rehashStep(&t)
	s.maybeGrow()
	ei, _, _ := s.lookup(key, &t)
	if ei == 0 {
		st := s.Set(key, []byte("1"))
		// Splice the nested Set's groups: the op slices now belong to t, so
		// only st's emptied outer list goes back to the pool.
		t.Groups = append(t.Groups, st.Groups...)
		for i := range st.Groups {
			st.Groups[i] = nil
		}
		s.freeGroups = append(s.freeGroups, st.Groups[:0])
		return 1, nil, t
	}
	e := &s.entries[ei-1]
	n, err := strconv.ParseInt(string(e.val), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("kvstore: value of %q is not an integer", key), t
	}
	n++
	e.val = strconv.AppendInt(e.val[:0], n, 10)
	t.addValue(e.valAddr, len(e.val), true)
	return n, nil, t
}

// LPush prepends a value to the list at key (creating it), returning the
// new length.
func (s *Store) LPush(key string, val []byte) (int, Trace) {
	t := s.newTrace()
	s.rehashStep(&t)
	s.maybeGrow()
	ei, _, _ := s.lookup(key, &t)
	if ei == 0 {
		ni := s.allocEntry()
		e := &s.entries[ni]
		e.key = key
		bi := int(hash(key) & uint64(len(s.buckets)-1))
		e.next = s.buckets[bi]
		s.buckets[bi] = ni + 1
		s.size++
		t.add(
			memport.Op{Addr: s.entryAddr(ni), Size: entryBytes, Write: true},
			memport.Op{Addr: s.bucketAddr(bi, false), Size: bucketBytes, Write: true},
		)
		ei = ni + 1
	}
	e := &s.entries[ei-1]
	nd := s.allocNode()
	node := &s.nodes[nd]
	node.data = append([]byte(nil), val...)
	node.addr = s.allocValue(nodeBytes + len(val))
	node.next = e.listHd
	e.listHd = nd + 1
	e.listLen++
	t.add(
		memport.Op{Addr: node.addr, Size: int32(nodeBytes + len(val)), Write: true},
		memport.Op{Addr: s.entryAddr(ei - 1), Size: entryBytes, Write: true},
	)
	return e.listLen, t
}

// LRange returns up to count values from the head of the list at key. The
// traversal is a genuine pointer chase: one dependent group per node.
func (s *Store) LRange(key string, count int) ([][]byte, Trace) {
	t := s.newTrace()
	s.rehashStep(&t)
	ei, _, _ := s.lookup(key, &t)
	if ei == 0 {
		return nil, t
	}
	var out [][]byte
	ni := s.entries[ei-1].listHd
	for ni != 0 && len(out) < count {
		node := &s.nodes[ni-1]
		t.add(memport.Op{Addr: node.addr, Size: int32(nodeBytes + len(node.data))})
		out = append(out, node.data)
		ni = node.next
	}
	return out, t
}

// Rehashing reports whether an incremental rehash is in progress.
func (s *Store) Rehashing() bool { return s.oldBuckets != nil }

// NumBuckets returns the current primary table size.
func (s *Store) NumBuckets() int { return len(s.buckets) }

// ttlExpired reports whether entry ei+0's TTL has passed.
func (s *Store) ttlExpired(ei int32) bool {
	e := &s.entries[ei-1]
	return e.expireAt != 0 && s.clock != nil && s.clock() >= e.expireAt
}

// reapLocked removes an expired entry found during lookup, charging the
// unlink writes to the trace.
func (s *Store) reapLocked(key string, ei, prev int32, inOld bool, t *Trace) {
	e := &s.entries[ei-1]
	for ni := e.listHd; ni != 0; {
		next := s.nodes[ni-1].next
		s.freeNod = append(s.freeNod, ni-1)
		ni = next
	}
	h := hash(key)
	if prev != 0 {
		s.entries[prev-1].next = e.next
		t.add(memport.Op{Addr: s.entryAddr(prev - 1), Size: entryBytes, Write: true})
	} else if inOld {
		ob := int(h & uint64(len(s.oldBuckets)-1))
		s.oldBuckets[ob] = e.next
		t.add(memport.Op{Addr: s.bucketAddr(ob, true), Size: bucketBytes, Write: true})
	} else {
		bi := int(h & uint64(len(s.buckets)-1))
		s.buckets[bi] = e.next
		t.add(memport.Op{Addr: s.bucketAddr(bi, false), Size: bucketBytes, Write: true})
	}
	s.freeEnt = append(s.freeEnt, ei-1)
	*e = entry{}
	s.size--
	s.expired++
}

// Expire sets an absolute expiry on a key, returning whether it existed.
// A zero instant clears the TTL (PERSIST).
func (s *Store) Expire(key string, at sim.Time) (bool, Trace) {
	t := s.newTrace()
	s.rehashStep(&t)
	ei, _, _ := s.lookup(key, &t)
	if ei == 0 {
		return false, t
	}
	s.entries[ei-1].expireAt = at
	t.add(memport.Op{Addr: s.entryAddr(ei - 1), Size: entryBytes, Write: true})
	return true, t
}

// TTL returns the remaining lifetime of key: ok is false when the key is
// missing; a zero duration with ok means no TTL is set.
func (s *Store) TTL(key string) (remaining sim.Duration, hasTTL, ok bool, t Trace) {
	t = s.newTrace()
	s.rehashStep(&t)
	ei, _, _ := s.lookup(key, &t)
	if ei == 0 {
		return 0, false, false, t
	}
	e := &s.entries[ei-1]
	if e.expireAt == 0 {
		return 0, false, true, t
	}
	if s.clock != nil {
		return e.expireAt.Sub(s.clock()), true, true, t
	}
	return 0, true, true, t
}
