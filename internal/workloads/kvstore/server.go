package kvstore

import (
	"fmt"

	"thymesim/internal/memport"
	"thymesim/internal/sim"
)

// CmdType enumerates the supported commands.
type CmdType int

// Commands.
const (
	CmdGet CmdType = iota
	CmdSet
	CmdDel
	CmdIncr
	CmdLPush
	CmdLRange
	CmdExpire
	CmdTTL
)

// String implements fmt.Stringer.
func (c CmdType) String() string {
	switch c {
	case CmdGet:
		return "GET"
	case CmdSet:
		return "SET"
	case CmdDel:
		return "DEL"
	case CmdIncr:
		return "INCR"
	case CmdLPush:
		return "LPUSH"
	case CmdLRange:
		return "LRANGE"
	case CmdExpire:
		return "EXPIRE"
	case CmdTTL:
		return "TTL"
	default:
		return fmt.Sprintf("CMD(%d)", int(c))
	}
}

// Request is one client command.
type Request struct {
	Cmd   CmdType
	Key   string
	Value []byte
	Count int          // LRANGE
	TTL   sim.Duration // EXPIRE
}

// Response is the server's reply.
type Response struct {
	OK    bool
	Value []byte
	Int   int64
	List  [][]byte
}

// ServerConfig models the serving costs around the store.
type ServerConfig struct {
	// NetStack is the kernel network stack + RESP parsing + syscall cost
	// per request — the overhead §IV-D identifies as the reason Redis
	// barely degrades under injected delay.
	NetStack sim.Duration
	// PerOpCPU is the command execution CPU cost.
	PerOpCPU sim.Duration
	// Window bounds outstanding memory operations within one trace group
	// (Redis is single-threaded; within one step it still has a few
	// overlapping loads).
	Window int
}

// DefaultServerConfig approximates a tuned Redis on the testbed.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		NetStack: 50 * sim.Microsecond,
		PerOpCPU: 2 * sim.Microsecond,
		Window:   4,
	}
}

// Validate checks the configuration.
func (c ServerConfig) Validate() error {
	if c.NetStack < 0 || c.PerOpCPU < 0 {
		return fmt.Errorf("kvstore: negative cost")
	}
	if c.Window <= 0 {
		return fmt.Errorf("kvstore: window %d", c.Window)
	}
	return nil
}

// Stats counts server-side events.
type Stats struct {
	Requests uint64
	Hits     uint64
	Misses   uint64
}

// Server is the single-threaded event-loop serving model: requests queue
// and are processed one at a time, each charged network-stack time plus
// its command's memory trace against the hierarchy.
type Server struct {
	k     *sim.Kernel
	h     *memport.Hierarchy
	store *Store
	cfg   ServerConfig

	queue []pendingReq
	busy  bool
	stats Stats
	depth int // peak queue depth

	// In-flight request state (the loop serves one request at a time), plus
	// the one replay-completion closure reused for every request: the
	// per-request service path allocates nothing beyond what the command
	// itself needs.
	cur        pendingReq
	curResp    Response
	curTrace   Trace
	replayDone func(sim.Duration)
}

type pendingReq struct {
	req  Request
	done func(Response)
}

// NewServer builds a server around a store, wiring the simulation clock
// into the store's TTL machinery.
func NewServer(k *sim.Kernel, h *memport.Hierarchy, store *Store, cfg ServerConfig) *Server {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	store.SetClock(k.Now)
	s := &Server{k: k, h: h, store: store, cfg: cfg}
	s.replayDone = func(sim.Duration) {
		s.store.RecycleTrace(&s.curTrace)
		done, resp := s.cur.done, s.curResp
		s.cur, s.curResp = pendingReq{}, Response{}
		s.busy = false
		done(resp)
		s.pump()
	}
	return s
}

// Store returns the underlying store.
func (s *Server) Store() *Store { return s.store }

// Stats returns the counters so far.
func (s *Server) Stats() Stats { return s.stats }

// PeakQueueDepth returns the deepest request backlog observed.
func (s *Server) PeakQueueDepth() int { return s.depth }

// Submit enqueues a request; done is called with the response when the
// request completes service.
func (s *Server) Submit(req Request, done func(Response)) {
	s.queue = append(s.queue, pendingReq{req, done})
	if len(s.queue) > s.depth {
		s.depth = len(s.queue)
	}
	s.pump()
}

func (s *Server) pump() {
	if s.busy || len(s.queue) == 0 {
		return
	}
	s.busy = true
	s.cur = s.queue[0]
	copy(s.queue, s.queue[1:])
	s.queue[len(s.queue)-1] = pendingReq{}
	s.queue = s.queue[:len(s.queue)-1]
	s.stats.Requests++

	s.curResp, s.curTrace = s.execute(s.cur.req)
	// Service: network stack + command CPU, then the command's memory
	// trace (Redis interleaves them; serializing is a conservative
	// single-thread model).
	s.k.AfterH(s.cfg.NetStack+s.cfg.PerOpCPU, s, 0)
}

// Handle implements sim.Handler: service time elapsed, replay the
// command's memory trace.
func (s *Server) Handle(uint64) {
	memport.Replay(s.k, s.h, traceSource{t: s.curTrace}, s.cfg.Window, s.replayDone)
}

// execute runs the real command against the real store.
func (s *Server) execute(req Request) (Response, Trace) {
	switch req.Cmd {
	case CmdGet:
		val, ok, t := s.store.Get(req.Key)
		if ok {
			s.stats.Hits++
		} else {
			s.stats.Misses++
		}
		return Response{OK: ok, Value: val}, t
	case CmdSet:
		t := s.store.Set(req.Key, req.Value)
		return Response{OK: true}, t
	case CmdDel:
		ok, t := s.store.Del(req.Key)
		return Response{OK: ok}, t
	case CmdIncr:
		n, err, t := s.store.Incr(req.Key)
		return Response{OK: err == nil, Int: n}, t
	case CmdLPush:
		n, t := s.store.LPush(req.Key, req.Value)
		return Response{OK: true, Int: int64(n)}, t
	case CmdLRange:
		list, t := s.store.LRange(req.Key, req.Count)
		return Response{OK: list != nil, List: list}, t
	case CmdExpire:
		ok, t := s.store.Expire(req.Key, s.k.Now().Add(req.TTL))
		return Response{OK: ok}, t
	case CmdTTL:
		remaining, hasTTL, ok, t := s.store.TTL(req.Key)
		n := int64(-1)
		if hasTTL {
			n = int64(remaining)
		}
		return Response{OK: ok, Int: n}, t
	default:
		panic(fmt.Sprintf("kvstore: unknown command %v", req.Cmd))
	}
}

// traceSource adapts a Trace to memport.TraceSource: one phase per
// dependent group, no extra compute (charged separately).
type traceSource struct{ t Trace }

func (ts traceSource) NumPhases() int               { return len(ts.t.Groups) }
func (ts traceSource) Phase(i int) []memport.Op     { return ts.t.Groups[i] }
func (ts traceSource) ComputeTime(int) sim.Duration { return 0 }
