package kvstore

import (
	"fmt"

	"thymesim/internal/metrics"
	"thymesim/internal/sim"
)

// BenchConfig parameterizes the Memtier-style closed-loop load generator.
// Paper (§IV-A): 4 threads, 50 connections per thread, 10000 requests per
// client, ~4 GB working set.
type BenchConfig struct {
	Threads           int
	ConnsPerThread    int
	RequestsPerClient int
	// SetFraction is the SET share of the mix (memtier default 1:10 =>
	// 0.0909...).
	SetFraction float64
	// KeySpace is the number of distinct keys; ValueBytes their value
	// size. KeySpace*ValueBytes is the working set.
	KeySpace   int
	ValueBytes int
	// ClientRTT is the client<->server network round trip outside the
	// server's own stack time.
	ClientRTT sim.Duration
	// Seed drives key selection.
	Seed uint64
	// Prepopulate loads every key before timing starts.
	Prepopulate bool
}

// DefaultBenchConfig returns a scaled-down memtier setup (the paper's
// connection counts, fewer requests per client, working set beyond LLC).
func DefaultBenchConfig() BenchConfig {
	return BenchConfig{
		Threads:           4,
		ConnsPerThread:    50,
		RequestsPerClient: 50,
		SetFraction:       1.0 / 11.0,
		KeySpace:          1 << 15,
		ValueBytes:        512,
		ClientRTT:         30 * sim.Microsecond,
		Seed:              0xBEEF,
		Prepopulate:       true,
	}
}

// PaperBenchConfig returns the paper's full configuration.
func PaperBenchConfig() BenchConfig {
	c := DefaultBenchConfig()
	c.RequestsPerClient = 10000
	c.KeySpace = 1 << 23 // ~4GB at 512B values
	return c
}

// Validate checks the configuration.
func (c BenchConfig) Validate() error {
	if c.Threads <= 0 || c.ConnsPerThread <= 0 || c.RequestsPerClient <= 0 {
		return fmt.Errorf("kvstore: bad client counts %+v", c)
	}
	if c.SetFraction < 0 || c.SetFraction > 1 {
		return fmt.Errorf("kvstore: SetFraction %v", c.SetFraction)
	}
	if c.KeySpace <= 0 || c.ValueBytes <= 0 {
		return fmt.Errorf("kvstore: keyspace %d x %d", c.KeySpace, c.ValueBytes)
	}
	if c.ClientRTT < 0 {
		return fmt.Errorf("kvstore: negative client RTT")
	}
	return nil
}

// Clients returns the total connection count.
func (c BenchConfig) Clients() int { return c.Threads * c.ConnsPerThread }

// BenchResult reports the load generator's measurements.
type BenchResult struct {
	Requests   uint64
	Elapsed    sim.Duration
	Throughput float64 // requests per second
	// LatencyUs is the client-observed request latency distribution in
	// microseconds.
	LatencyUs *metrics.Histogram
	Sets      uint64
	Gets      uint64
}

// keyName formats key i (fixed width, memtier-style).
func keyName(i int) string { return fmt.Sprintf("memtier-%012d", i) }

// makeKeyTable formats the full keyspace once, so the request loop picks
// keys by index instead of formatting a fresh string per request.
func makeKeyTable(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = keyName(i)
	}
	return keys
}

// Prepopulate loads the full keyspace directly (untimed setup, as memtier
// does before its measured phase).
func Prepopulate(store *Store, cfg BenchConfig, rng *sim.Rand) {
	prepopulate(store, cfg, makeKeyTable(cfg.KeySpace))
}

func prepopulate(store *Store, cfg BenchConfig, keys []string) {
	val := make([]byte, cfg.ValueBytes)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	for _, key := range keys {
		t := store.Set(key, val)
		store.RecycleTrace(&t)
	}
}

// benchRun is the state shared by every client of one RunBench call.
type benchRun struct {
	k    *sim.Kernel
	srv  *Server
	cfg  BenchConfig
	keys []string
	val  []byte

	res       BenchResult
	start     sim.Time
	remaining int
	done      func(BenchResult)
}

// benchClient is one closed-loop connection. It is a sim.Handler so the
// two half-RTT hops of every request reuse the client object instead of
// allocating closures: arg 0 = request reached the server, arg 1 =
// response reached the client.
type benchClient struct {
	run    *benchRun
	rng    *sim.Rand
	sent   int
	issued sim.Time
	req    Request
	respFn func(Response) // cached Submit callback
}

// Handle implements sim.Handler.
func (c *benchClient) Handle(arg uint64) {
	r := c.run
	if arg == 0 {
		r.srv.Submit(c.req, c.respFn)
		return
	}
	r.res.Requests++
	if c.req.Cmd == CmdSet {
		r.res.Sets++
	} else {
		r.res.Gets++
	}
	r.res.LatencyUs.Observe(r.k.Now().Sub(c.issued).Micros())
	c.sendNext()
}

func (c *benchClient) sendNext() {
	r := c.run
	if c.sent == r.cfg.RequestsPerClient {
		r.remaining--
		if r.remaining == 0 {
			r.res.Elapsed = r.k.Now().Sub(r.start)
			r.res.Throughput = sim.PerSecond(float64(r.res.Requests), r.res.Elapsed)
			r.done(r.res)
		}
		return
	}
	c.sent++
	key := r.keys[c.rng.Intn(r.cfg.KeySpace)]
	c.req = Request{Cmd: CmdGet, Key: key}
	if c.rng.Float64() < r.cfg.SetFraction {
		c.req = Request{Cmd: CmdSet, Key: key, Value: r.val}
	}
	c.issued = r.k.Now()
	// Half RTT to the server, service, half RTT back.
	r.k.AfterH(sim.Duration(r.cfg.ClientRTT/2), c, 0)
}

// RunBench drives the closed-loop benchmark against a server and calls
// done with the results when every client finishes.
func RunBench(k *sim.Kernel, srv *Server, cfg BenchConfig, done func(BenchResult)) {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	rng := sim.NewRand(cfg.Seed)
	keys := makeKeyTable(cfg.KeySpace)
	if cfg.Prepopulate {
		prepopulate(srv.Store(), cfg, keys)
	}
	val := make([]byte, cfg.ValueBytes)
	for i := range val {
		val[i] = byte('A' + i%26)
	}

	run := &benchRun{
		k:         k,
		srv:       srv,
		cfg:       cfg,
		keys:      keys,
		val:       val,
		res:       BenchResult{LatencyUs: metrics.NewHistogram(0.1)},
		start:     k.Now(),
		remaining: cfg.Clients(),
		done:      done,
	}
	for i := 0; i < cfg.Clients(); i++ {
		c := &benchClient{run: run, rng: rng.Split()}
		c.respFn = func(Response) {
			c.run.k.AfterH(sim.Duration(c.run.cfg.ClientRTT/2), c, 1)
		}
		c.sendNext()
	}
}
