package kvstore

import (
	"fmt"

	"thymesim/internal/metrics"
	"thymesim/internal/sim"
)

// BenchConfig parameterizes the Memtier-style closed-loop load generator.
// Paper (§IV-A): 4 threads, 50 connections per thread, 10000 requests per
// client, ~4 GB working set.
type BenchConfig struct {
	Threads           int
	ConnsPerThread    int
	RequestsPerClient int
	// SetFraction is the SET share of the mix (memtier default 1:10 =>
	// 0.0909...).
	SetFraction float64
	// KeySpace is the number of distinct keys; ValueBytes their value
	// size. KeySpace*ValueBytes is the working set.
	KeySpace   int
	ValueBytes int
	// ClientRTT is the client<->server network round trip outside the
	// server's own stack time.
	ClientRTT sim.Duration
	// Seed drives key selection.
	Seed uint64
	// Prepopulate loads every key before timing starts.
	Prepopulate bool
}

// DefaultBenchConfig returns a scaled-down memtier setup (the paper's
// connection counts, fewer requests per client, working set beyond LLC).
func DefaultBenchConfig() BenchConfig {
	return BenchConfig{
		Threads:           4,
		ConnsPerThread:    50,
		RequestsPerClient: 50,
		SetFraction:       1.0 / 11.0,
		KeySpace:          1 << 15,
		ValueBytes:        512,
		ClientRTT:         30 * sim.Microsecond,
		Seed:              0xBEEF,
		Prepopulate:       true,
	}
}

// PaperBenchConfig returns the paper's full configuration.
func PaperBenchConfig() BenchConfig {
	c := DefaultBenchConfig()
	c.RequestsPerClient = 10000
	c.KeySpace = 1 << 23 // ~4GB at 512B values
	return c
}

// Validate checks the configuration.
func (c BenchConfig) Validate() error {
	if c.Threads <= 0 || c.ConnsPerThread <= 0 || c.RequestsPerClient <= 0 {
		return fmt.Errorf("kvstore: bad client counts %+v", c)
	}
	if c.SetFraction < 0 || c.SetFraction > 1 {
		return fmt.Errorf("kvstore: SetFraction %v", c.SetFraction)
	}
	if c.KeySpace <= 0 || c.ValueBytes <= 0 {
		return fmt.Errorf("kvstore: keyspace %d x %d", c.KeySpace, c.ValueBytes)
	}
	if c.ClientRTT < 0 {
		return fmt.Errorf("kvstore: negative client RTT")
	}
	return nil
}

// Clients returns the total connection count.
func (c BenchConfig) Clients() int { return c.Threads * c.ConnsPerThread }

// BenchResult reports the load generator's measurements.
type BenchResult struct {
	Requests   uint64
	Elapsed    sim.Duration
	Throughput float64 // requests per second
	// LatencyUs is the client-observed request latency distribution in
	// microseconds.
	LatencyUs *metrics.Histogram
	Sets      uint64
	Gets      uint64
}

// keyName formats key i (fixed width, memtier-style).
func keyName(i int) string { return fmt.Sprintf("memtier-%012d", i) }

// Prepopulate loads the full keyspace directly (untimed setup, as memtier
// does before its measured phase).
func Prepopulate(store *Store, cfg BenchConfig, rng *sim.Rand) {
	val := make([]byte, cfg.ValueBytes)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	for i := 0; i < cfg.KeySpace; i++ {
		store.Set(keyName(i), val)
	}
}

// RunBench drives the closed-loop benchmark against a server and calls
// done with the results when every client finishes.
func RunBench(k *sim.Kernel, srv *Server, cfg BenchConfig, done func(BenchResult)) {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	rng := sim.NewRand(cfg.Seed)
	if cfg.Prepopulate {
		Prepopulate(srv.Store(), cfg, rng)
	}
	val := make([]byte, cfg.ValueBytes)
	for i := range val {
		val[i] = byte('A' + i%26)
	}

	res := BenchResult{LatencyUs: metrics.NewHistogram(0.1)}
	start := k.Now()
	remaining := cfg.Clients()

	clientLoop := func(clientRng *sim.Rand) {
		sent := 0
		var sendNext func()
		sendNext = func() {
			if sent == cfg.RequestsPerClient {
				remaining--
				if remaining == 0 {
					res.Elapsed = k.Now().Sub(start)
					res.Throughput = sim.PerSecond(float64(res.Requests), res.Elapsed)
					done(res)
				}
				return
			}
			sent++
			key := keyName(clientRng.Intn(cfg.KeySpace))
			req := Request{Cmd: CmdGet, Key: key}
			if clientRng.Float64() < cfg.SetFraction {
				req = Request{Cmd: CmdSet, Key: key, Value: val}
			}
			issued := k.Now()
			// Half RTT to the server, service, half RTT back.
			k.After(sim.Duration(cfg.ClientRTT/2), func() {
				srv.Submit(req, func(resp Response) {
					k.After(sim.Duration(cfg.ClientRTT/2), func() {
						res.Requests++
						if req.Cmd == CmdSet {
							res.Sets++
						} else {
							res.Gets++
						}
						res.LatencyUs.Observe(k.Now().Sub(issued).Micros())
						sendNext()
					})
				})
			})
		}
		sendNext()
	}
	for c := 0; c < cfg.Clients(); c++ {
		clientLoop(rng.Split())
	}
}
