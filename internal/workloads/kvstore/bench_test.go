package kvstore

import (
	"fmt"
	"testing"
)

func benchStore(b *testing.B) *Store {
	b.Helper()
	cfg := DefaultConfig(0)
	cfg.InitialBuckets = 1 << 12
	return NewStore(cfg)
}

// BenchmarkStoreSet measures the real hash-table insert path (including
// trace generation, as the simulator pays it).
func BenchmarkStoreSet(b *testing.B) {
	s := benchStore(b)
	val := make([]byte, 128)
	keys := make([]string, 4096)
	for i := range keys {
		keys[i] = fmt.Sprintf("bench-key-%06d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Set(keys[i%len(keys)], val)
	}
}

// BenchmarkStoreGet measures the lookup path.
func BenchmarkStoreGet(b *testing.B) {
	s := benchStore(b)
	val := make([]byte, 128)
	keys := make([]string, 4096)
	for i := range keys {
		keys[i] = fmt.Sprintf("bench-key-%06d", i)
		s.Set(keys[i], val)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, _ := s.Get(keys[i%len(keys)]); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkStoreIncr measures the read-modify-write path.
func BenchmarkStoreIncr(b *testing.B) {
	s := benchStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err, _ := s.Incr("counter"); err != nil {
			b.Fatal(err)
		}
	}
}
