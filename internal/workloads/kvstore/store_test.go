package kvstore

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"thymesim/internal/sim"
)

func testStore() *Store {
	cfg := DefaultConfig(0)
	cfg.InitialBuckets = 16
	cfg.MaxEntries = 1 << 16
	cfg.MaxNodes = 1 << 14
	cfg.ValueArenaBytes = 1 << 26
	return NewStore(cfg)
}

func TestSetGetDel(t *testing.T) {
	s := testStore()
	tr := s.Set("k1", []byte("hello"))
	if tr.Ops() == 0 {
		t.Fatal("SET produced no memory trace")
	}
	val, ok, tr2 := s.Get("k1")
	if !ok || !bytes.Equal(val, []byte("hello")) {
		t.Fatalf("GET = %q, %v", val, ok)
	}
	if tr2.Ops() < 2 {
		t.Fatalf("GET trace too small: %d ops", tr2.Ops())
	}
	if s.Size() != 1 {
		t.Fatalf("size = %d", s.Size())
	}
	existed, _ := s.Del("k1")
	if !existed || s.Size() != 0 {
		t.Fatalf("DEL failed: %v size=%d", existed, s.Size())
	}
	if _, ok, _ := s.Get("k1"); ok {
		t.Fatal("GET after DEL succeeded")
	}
	if existed, _ := s.Del("k1"); existed {
		t.Fatal("double DEL succeeded")
	}
}

func TestSetOverwrite(t *testing.T) {
	s := testStore()
	s.Set("k", []byte("first"))
	s.Set("k", []byte("second value that is longer"))
	val, ok, _ := s.Get("k")
	if !ok || string(val) != "second value that is longer" {
		t.Fatalf("overwrite failed: %q", val)
	}
	if s.Size() != 1 {
		t.Fatalf("size = %d after overwrite", s.Size())
	}
}

func TestIncr(t *testing.T) {
	s := testStore()
	n, err, _ := s.Incr("counter")
	if err != nil || n != 1 {
		t.Fatalf("first incr = %d, %v", n, err)
	}
	for i := 0; i < 9; i++ {
		n, err, _ = s.Incr("counter")
		if err != nil {
			t.Fatal(err)
		}
	}
	if n != 10 {
		t.Fatalf("counter = %d", n)
	}
	val, _, _ := s.Get("counter")
	if string(val) != "10" {
		t.Fatalf("raw value = %q", val)
	}
	s.Set("text", []byte("abc"))
	if _, err, _ := s.Incr("text"); err == nil {
		t.Fatal("INCR of non-integer succeeded")
	}
}

func TestListOps(t *testing.T) {
	s := testStore()
	for i := 1; i <= 5; i++ {
		n, tr := s.LPush("list", []byte(fmt.Sprintf("v%d", i)))
		if n != i {
			t.Fatalf("LPUSH len = %d, want %d", n, i)
		}
		if tr.Ops() == 0 {
			t.Fatal("LPUSH no trace")
		}
	}
	vals, tr := s.LRange("list", 3)
	if len(vals) != 3 {
		t.Fatalf("LRANGE = %d items", len(vals))
	}
	// LPUSH prepends: order is v5, v4, v3.
	if string(vals[0]) != "v5" || string(vals[2]) != "v3" {
		t.Fatalf("LRANGE order: %q", vals)
	}
	// Each node is a dependent group: at least 3 groups beyond lookup.
	if len(tr.Groups) < 4 {
		t.Fatalf("LRANGE trace groups = %d, want pointer-chase structure", len(tr.Groups))
	}
	if vals, _ := s.LRange("missing", 3); vals != nil {
		t.Fatal("LRANGE of missing key returned data")
	}
	// Wrong type: GET of a list fails.
	if _, ok, _ := s.Get("list"); ok {
		t.Fatal("GET of list succeeded")
	}
}

func TestIncrementalRehash(t *testing.T) {
	s := testStore() // 16 buckets
	for i := 0; i < 64; i++ {
		s.Set(fmt.Sprintf("key-%d", i), []byte("v"))
	}
	if !s.Rehashing() && s.NumBuckets() == 16 {
		t.Fatal("no growth after 4x load factor")
	}
	// All keys must stay reachable through the rehash.
	for i := 0; i < 64; i++ {
		if _, ok, _ := s.Get(fmt.Sprintf("key-%d", i)); !ok {
			t.Fatalf("key-%d lost during rehash", i)
		}
	}
	// Keep operating until the rehash completes.
	for i := 0; s.Rehashing() && i < 10000; i++ {
		s.Get("key-0")
	}
	if s.Rehashing() {
		t.Fatal("rehash never completed")
	}
	for i := 0; i < 64; i++ {
		if _, ok, _ := s.Get(fmt.Sprintf("key-%d", i)); !ok {
			t.Fatalf("key-%d lost after rehash", i)
		}
	}
}

func TestDelDuringRehash(t *testing.T) {
	s := testStore()
	for i := 0; i < 40; i++ {
		s.Set(fmt.Sprintf("key-%d", i), []byte("v"))
	}
	if !s.Rehashing() {
		t.Skip("rehash finished too quickly for this geometry")
	}
	for i := 0; i < 40; i++ {
		existed, _ := s.Del(fmt.Sprintf("key-%d", i))
		if !existed {
			t.Fatalf("key-%d missing at delete", i)
		}
	}
	if s.Size() != 0 {
		t.Fatalf("size = %d after deleting all", s.Size())
	}
}

func TestTraceStructure(t *testing.T) {
	s := testStore()
	s.Set("k", make([]byte, 512))
	_, ok, tr := s.Get("k")
	if !ok {
		t.Fatal("GET failed")
	}
	// Lookup groups (bucket + >=1 entry) then one value group of 4 lines.
	last := tr.Groups[len(tr.Groups)-1]
	if len(last) != 4 {
		t.Fatalf("value group = %d ops, want 4 (512B/128B)", len(last))
	}
	for _, op := range last {
		if op.Write {
			t.Fatal("GET emitted writes")
		}
	}
	if len(tr.Groups) < 3 {
		t.Fatalf("GET groups = %d, want dependent chain", len(tr.Groups))
	}
}

func TestFootprintGrows(t *testing.T) {
	s := testStore()
	before := s.Footprint()
	s.Set("k", make([]byte, 4096))
	if s.Footprint() <= before {
		t.Fatal("footprint did not grow")
	}
}

// Property: the store behaves like a map[string][]byte under arbitrary
// set/get/del sequences.
func TestStoreMatchesMapProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		s := testStore()
		ref := map[string]string{}
		for _, op := range ops {
			key := fmt.Sprintf("k%d", op%64)
			switch op % 3 {
			case 0:
				val := fmt.Sprintf("v%d", op)
				s.Set(key, []byte(val))
				ref[key] = val
			case 1:
				got, ok, _ := s.Get(key)
				want, wantOK := ref[key]
				if ok != wantOK {
					return false
				}
				if ok && string(got) != want {
					return false
				}
			case 2:
				existed, _ := s.Del(key)
				_, wantOK := ref[key]
				if existed != wantOK {
					return false
				}
				delete(ref, key)
			}
			if s.Size() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{InitialBuckets: 3, MaxEntries: 1, MaxNodes: 1, ValueArenaBytes: 1},
		{InitialBuckets: 4, MaxEntries: 0, MaxNodes: 1, ValueArenaBytes: 1},
		{InitialBuckets: 4, MaxEntries: 1, MaxNodes: 1, ValueArenaBytes: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := DefaultConfig(0).Validate(); err != nil {
		t.Error(err)
	}
}

func TestTTLLazyExpiry(t *testing.T) {
	s := testStore()
	now := int64(0)
	s.SetClock(func() sim.Time { return sim.Time(now) })
	s.Set("k", []byte("v"))
	if ok, _ := s.Expire("k", 100); !ok {
		t.Fatal("EXPIRE on live key failed")
	}
	if rem, hasTTL, ok, _ := s.TTL("k"); !ok || !hasTTL || rem != 100 {
		t.Fatalf("TTL = %v %v %v", rem, hasTTL, ok)
	}
	now = 99
	if _, ok, _ := s.Get("k"); !ok {
		t.Fatal("key expired early")
	}
	now = 100
	if _, ok, _ := s.Get("k"); ok {
		t.Fatal("key survived its TTL")
	}
	if s.Expired() != 1 {
		t.Fatalf("expired = %d", s.Expired())
	}
	if s.Size() != 0 {
		t.Fatalf("size = %d after expiry", s.Size())
	}
	// Expired key behaves like a missing one everywhere.
	if ok, _ := s.Expire("k", 500); ok {
		t.Fatal("EXPIRE on expired key succeeded")
	}
}

func TestTTLClearAndNoClock(t *testing.T) {
	s := testStore()
	now := int64(0)
	s.SetClock(func() sim.Time { return sim.Time(now) })
	s.Set("k", []byte("v"))
	s.Expire("k", 50)
	// Zero instant clears the TTL (PERSIST).
	s.Expire("k", 0)
	now = 1000
	if _, ok, _ := s.Get("k"); !ok {
		t.Fatal("persisted key expired")
	}
	if _, hasTTL, ok, _ := s.TTL("k"); !ok || hasTTL {
		t.Fatal("TTL not cleared")
	}
	// Without a clock, TTLs never fire.
	s2 := testStore()
	s2.Set("k", []byte("v"))
	s2.Expire("k", 1)
	if _, ok, _ := s2.Get("k"); !ok {
		t.Fatal("clockless store expired a key")
	}
}

func TestTTLOfMissingKey(t *testing.T) {
	s := testStore()
	if _, _, ok, _ := s.TTL("nope"); ok {
		t.Fatal("TTL of missing key ok")
	}
}
