package graph500

import (
	"testing"

	"thymesim/internal/sim"
)

// BenchmarkKroneckerGenerate measures edge generation (kernel 0).
func BenchmarkKroneckerGenerate(b *testing.B) {
	rng := sim.NewRand(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GenerateKronecker(14, 16, rng)
	}
	b.ReportMetric(float64(16*(1<<14)), "edges/op")
}

// BenchmarkBuildCSR measures graph construction (kernel 1).
func BenchmarkBuildCSR(b *testing.B) {
	e := GenerateKronecker(14, 16, sim.NewRand(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildCSR(e)
	}
}

// BenchmarkBFS measures the pure traversal (no simulation) in TEPS.
func BenchmarkBFS(b *testing.B) {
	g := BuildCSR(GenerateKronecker(14, 16, sim.NewRand(3)))
	root := PickRoots(g, 1, sim.NewRand(4))[0]
	b.ResetTimer()
	var edges int64
	for i := 0; i < b.N; i++ {
		r := BFS(g, root)
		edges = r.EdgesTouched
	}
	b.ReportMetric(float64(edges), "edges/op")
}

// BenchmarkDeltaStepping measures the SSSP kernel.
func BenchmarkDeltaStepping(b *testing.B) {
	g := BuildCSR(GenerateKronecker(13, 16, sim.NewRand(5)))
	root := PickRoots(g, 1, sim.NewRand(6))[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DeltaStepping(g, root, 0.1)
	}
}
