package graph500

import (
	"thymesim/internal/memport"
	"thymesim/internal/sim"
)

// Op, TraceSource and Replay are shared with other workloads via memport.
type (
	// Op is one memory operation of a replay trace.
	Op = memport.Op
	// TraceSource is the phase-structured trace interface.
	TraceSource = memport.TraceSource
)

// Replay drives a trace through a hierarchy (see memport.Replay).
func Replay(k *sim.Kernel, h *memport.Hierarchy, src TraceSource, window int, done func(sim.Duration)) {
	memport.Replay(k, h, src, window, done)
}

// CostModel carries the CPU-side per-operation costs of the replay.
type CostModel struct {
	// PerEdge is the CPU time to scan one adjacency entry.
	PerEdge sim.Duration
	// PerVertex is the CPU time to dequeue/settle one vertex.
	PerVertex sim.Duration
}

// DefaultCostModel approximates a POWER9 core traversing CSR.
func DefaultCostModel() CostModel {
	return CostModel{PerEdge: sim.Nanosecond, PerVertex: 2 * sim.Nanosecond}
}

// bfsTrace adapts a BFSResult to a TraceSource.
type bfsTrace struct {
	g    *Graph
	r    *BFSResult
	cost CostModel
	buf  []Op
}

// NewBFSTrace builds the replayable memory behaviour of a completed BFS:
// per level, the frontier's offset reads, adjacency scans, and per-neighbor
// state reads plus discovery writes.
func NewBFSTrace(g *Graph, r *BFSResult, cost CostModel) TraceSource {
	if g.stateBase == 0 && g.adjBase == 0 {
		panic("graph500: graph not placed (call Place)")
	}
	return &bfsTrace{g: g, r: r, cost: cost}
}

func (t *bfsTrace) NumPhases() int { return len(t.r.Frontiers) }

func (t *bfsTrace) Phase(i int) []Op {
	t.buf = t.buf[:0]
	depth := int64(i)
	for _, u := range t.r.Frontiers[i] {
		deg := t.g.Degree(u)
		t.buf = append(t.buf, Op{Addr: t.g.offAddr(u), Size: 16})
		if deg > 0 {
			t.buf = append(t.buf, Op{Addr: t.g.adjAddr(t.g.Offs[u]), Size: int32(deg * 16)})
		}
		for _, v := range t.g.Neighbors(u) {
			t.buf = append(t.buf, Op{Addr: t.g.stateAddr(v), Size: 16})
			if t.r.Parent[v] == u && t.r.Level[v] == depth+1 {
				t.buf = append(t.buf, Op{Addr: t.g.stateAddr(v), Size: 16, Write: true})
			}
		}
	}
	return t.buf
}

func (t *bfsTrace) ComputeTime(i int) sim.Duration {
	var edges int64
	for _, u := range t.r.Frontiers[i] {
		edges += t.g.Degree(u)
	}
	return sim.Duration(edges)*t.cost.PerEdge + sim.Duration(len(t.r.Frontiers[i]))*t.cost.PerVertex
}

// ssspTrace adapts an SSSPResult to a TraceSource.
type ssspTrace struct {
	g    *Graph
	r    *SSSPResult
	cost CostModel
	buf  []Op
}

// NewSSSPTrace builds the replayable memory behaviour of a completed
// delta-stepping run: per phase, adjacency scans of the settled set and
// per-neighbor tentative-distance reads with a deterministic share of
// relaxation writes.
func NewSSSPTrace(g *Graph, r *SSSPResult, cost CostModel) TraceSource {
	if g.stateBase == 0 && g.adjBase == 0 {
		panic("graph500: graph not placed (call Place)")
	}
	return &ssspTrace{g: g, r: r, cost: cost}
}

func (t *ssspTrace) NumPhases() int { return len(t.r.Phases) }

func (t *ssspTrace) Phase(i int) []Op {
	t.buf = t.buf[:0]
	for _, u := range t.r.Phases[i] {
		deg := t.g.Degree(u)
		t.buf = append(t.buf, Op{Addr: t.g.offAddr(u), Size: 16})
		if deg > 0 {
			t.buf = append(t.buf, Op{Addr: t.g.adjAddr(t.g.Offs[u]), Size: int32(deg * 16)})
		}
		for j, v := range t.g.Neighbors(u) {
			t.buf = append(t.buf, Op{Addr: t.g.stateAddr(v), Size: 16})
			// Roughly a quarter of relaxations improve the tentative
			// distance on Kronecker graphs; write deterministically so
			// replays are reproducible.
			if j%4 == 0 {
				t.buf = append(t.buf, Op{Addr: t.g.stateAddr(v), Size: 16, Write: true})
			}
		}
	}
	return t.buf
}

func (t *ssspTrace) ComputeTime(i int) sim.Duration {
	var edges int64
	for _, u := range t.r.Phases[i] {
		edges += t.g.Degree(u)
	}
	// Delta-stepping does slightly more bookkeeping per edge (bucket
	// updates) than BFS.
	return sim.Duration(edges)*(t.cost.PerEdge+t.cost.PerEdge/2) + sim.Duration(len(t.r.Phases[i]))*t.cost.PerVertex
}
