package graph500

import (
	"math"
	"testing"
	"testing/quick"

	"thymesim/internal/cluster"
	"thymesim/internal/sim"
)

func smallGraph(scale int, seed uint64) *Graph {
	rng := sim.NewRand(seed)
	e := GenerateKronecker(scale, 16, rng)
	return BuildCSR(e)
}

func TestKroneckerShape(t *testing.T) {
	rng := sim.NewRand(1)
	e := GenerateKronecker(10, 16, rng)
	if e.NumVertices() != 1024 {
		t.Fatalf("vertices = %d", e.NumVertices())
	}
	if e.NumEdges() != 16*1024 {
		t.Fatalf("edges = %d", e.NumEdges())
	}
	for i := range e.Src {
		if e.Src[i] < 0 || e.Src[i] >= 1024 || e.Dst[i] < 0 || e.Dst[i] >= 1024 {
			t.Fatalf("edge %d out of range: (%d,%d)", i, e.Src[i], e.Dst[i])
		}
		if e.Weight[i] < 0 || e.Weight[i] >= 1 {
			t.Fatalf("weight %v out of range", e.Weight[i])
		}
	}
}

func TestKroneckerSkewedDegrees(t *testing.T) {
	// R-MAT graphs have heavy-tailed degree distributions: the max degree
	// should be far above the mean (16*2 with symmetrization).
	g := smallGraph(12, 2)
	var maxDeg int64
	for v := int64(0); v < g.N; v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 200 {
		t.Fatalf("max degree %d: not heavy-tailed", maxDeg)
	}
}

func TestKroneckerDeterministic(t *testing.T) {
	a := GenerateKronecker(8, 4, sim.NewRand(7))
	b := GenerateKronecker(8, 4, sim.NewRand(7))
	for i := range a.Src {
		if a.Src[i] != b.Src[i] || a.Dst[i] != b.Dst[i] || a.Weight[i] != b.Weight[i] {
			t.Fatal("same-seed generation diverged")
		}
	}
}

func TestCSRSymmetryAndSelfLoops(t *testing.T) {
	e := &EdgeList{Scale: 2, EdgeFactor: 1,
		Src:    []int64{0, 1, 2, 3},
		Dst:    []int64{1, 2, 2, 0},
		Weight: []float64{0.1, 0.2, 0.9, 0.4},
	}
	g := BuildCSR(e)
	// Edge (2,2) is a self-loop: dropped. Each other edge appears twice.
	if int64(len(g.Adj)) != 6 {
		t.Fatalf("adj len = %d, want 6", len(g.Adj))
	}
	if g.Degree(2) != 1 { // only (1,2)
		t.Fatalf("deg(2) = %d", g.Degree(2))
	}
	found := false
	for _, v := range g.Neighbors(1) {
		if v == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("reverse edge (1,0) missing")
	}
}

func TestBFSTreeValid(t *testing.T) {
	g := smallGraph(10, 3)
	roots := PickRoots(g, 4, sim.NewRand(4))
	if len(roots) != 4 {
		t.Fatalf("roots = %d", len(roots))
	}
	for _, root := range roots {
		r := BFS(g, root)
		if err := ValidateBFS(g, r); err != nil {
			t.Fatalf("root %d: %v", root, err)
		}
		if r.Reached() < 2 {
			t.Fatalf("root %d reached only %d", root, r.Reached())
		}
	}
}

func TestValidateBFSCatchesCorruption(t *testing.T) {
	g := smallGraph(8, 5)
	root := PickRoots(g, 1, sim.NewRand(6))[0]
	r := BFS(g, root)
	// Corrupt a level.
	for v := int64(0); v < g.N; v++ {
		if r.Parent[v] != -1 && v != root {
			r.Level[v] += 5
			break
		}
	}
	if err := ValidateBFS(g, r); err == nil {
		t.Fatal("corrupted level accepted")
	}
}

func TestDeltaSteppingMatchesDijkstra(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		g := smallGraph(9, seed)
		root := PickRoots(g, 1, sim.NewRand(seed+10))[0]
		ds := DeltaStepping(g, root, 0.1)
		exact := Dijkstra(g, root)
		if err := ValidateSSSP(g, ds, exact); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// Property: delta-stepping equals Dijkstra for any delta.
func TestDeltaSteppingDeltaInvariantProperty(t *testing.T) {
	f := func(seed uint16, deltaRaw uint8) bool {
		delta := 0.02 + float64(deltaRaw)/256.0
		g := smallGraph(7, uint64(seed)+1)
		root := PickRoots(g, 1, sim.NewRand(uint64(seed)+99))
		if len(root) == 0 {
			return true
		}
		ds := DeltaStepping(g, root[0], delta)
		exact := Dijkstra(g, root[0])
		for v := int64(0); v < g.N; v++ {
			if math.IsInf(ds.Dist[v], 1) != math.IsInf(exact[v], 1) {
				return false
			}
			if !math.IsInf(exact[v], 1) && math.Abs(ds.Dist[v]-exact[v]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceAndFootprint(t *testing.T) {
	g := smallGraph(8, 11)
	g.Place(0x1000_0000)
	if g.offAddr(0) != 0x1000_0000 {
		t.Fatalf("offs base = %#x", g.offAddr(0))
	}
	if g.adjAddr(0) <= g.offAddr(g.N) {
		t.Fatal("adjacency overlaps offsets")
	}
	if g.stateAddr(0) <= g.adjAddr(int64(len(g.Adj))-1) {
		t.Fatal("state overlaps adjacency")
	}
	fp := g.Footprint()
	wantMin := uint64(len(g.Offs))*8 + uint64(len(g.Adj))*16 + uint64(g.N)*16
	if fp < wantMin {
		t.Fatalf("footprint %d < %d", fp, wantMin)
	}
}

func testbed(period int64) *cluster.Testbed {
	cfg := cluster.DefaultConfig(period)
	cfg.LLC.SizeBytes = 256 << 10
	cfg.LLC.Ways = 4
	return cluster.NewTestbed(cfg)
}

func runG500(t *testing.T, period int64, remote bool) *RunResult {
	t.Helper()
	tb := testbed(period)
	var base uint64
	var h = tb.NewLocalHierarchy()
	if remote {
		base = tb.RemoteAddr(0)
		h = tb.NewRemoteHierarchy()
	}
	cfg := DefaultConfig(base)
	cfg.Scale = 9
	cfg.Roots = 1
	r := New(tb.K, h, cfg)
	var out *RunResult
	tb.K.At(0, func() { r.Run(func(res *RunResult) { out = res }) })
	tb.K.Run()
	if out == nil {
		t.Fatal("graph500 did not complete")
	}
	return out
}

func TestRunCompletesWithValidation(t *testing.T) {
	res := runG500(t, 1, true)
	if len(res.BFS) != 1 || len(res.SSSP) != 1 {
		t.Fatalf("results: bfs=%d sssp=%d", len(res.BFS), len(res.SSSP))
	}
	if res.MeanBFSTime <= 0 || res.MeanSSSPTime <= 0 {
		t.Fatalf("times: %v/%v", res.MeanBFSTime, res.MeanSSSPTime)
	}
	if res.BFS[0].TEPS <= 0 {
		t.Fatal("TEPS not computed")
	}
}

func TestRemoteSlowerThanLocal(t *testing.T) {
	local := runG500(t, 1, false)
	remote := runG500(t, 1, true)
	ratio := float64(remote.MeanBFSTime) / float64(local.MeanBFSTime)
	// Paper Table I: ~6x at PERIOD=1. Accept the regime 2-20x.
	if ratio < 2 || ratio > 20 {
		t.Fatalf("remote/local BFS ratio = %v, want ~6x regime", ratio)
	}
}

func TestHighDelayCatastrophicForBFS(t *testing.T) {
	local := runG500(t, 1, false)
	slow := runG500(t, 1000, true)
	ratio := float64(slow.MeanBFSTime) / float64(local.MeanBFSTime)
	// Paper Table I: 2209x at PERIOD=1000. Accept two-orders-plus.
	if ratio < 100 {
		t.Fatalf("PERIOD=1000 BFS ratio = %v, want >100x", ratio)
	}
}

func TestReplayEmptyTrace(t *testing.T) {
	tb := testbed(1)
	h := tb.NewLocalHierarchy()
	called := false
	src := &bfsTrace{g: &Graph{N: 1, Offs: []int64{0, 0}, adjBase: 1}, r: &BFSResult{}, cost: DefaultCostModel()}
	tb.K.At(0, func() {
		Replay(tb.K, h, src, 8, func(d sim.Duration) { called = true })
	})
	tb.K.Run()
	if !called {
		t.Fatal("empty replay never completed")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Scale: 0, EdgeFactor: 1, Roots: 1, Delta: 0.1, Window: 1},
		{Scale: 5, EdgeFactor: 0, Roots: 1, Delta: 0.1, Window: 1},
		{Scale: 5, EdgeFactor: 1, Roots: 0, Delta: 0.1, Window: 1},
		{Scale: 5, EdgeFactor: 1, Roots: 1, Delta: 0, Window: 1},
		{Scale: 5, EdgeFactor: 1, Roots: 1, Delta: 0.1, Window: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := PaperConfig(0).Validate(); err != nil {
		t.Error(err)
	}
}

func TestPickRootsDistinctNonZeroDegree(t *testing.T) {
	g := smallGraph(8, 13)
	roots := PickRoots(g, 8, sim.NewRand(14))
	seen := map[int64]bool{}
	for _, r := range roots {
		if seen[r] {
			t.Fatal("duplicate root")
		}
		seen[r] = true
		if g.Degree(r) == 0 {
			t.Fatal("zero-degree root")
		}
	}
}

func TestTEPSStats(t *testing.T) {
	if h, m, lo, hi := TEPSStats(nil); h != 0 || m != 0 || lo != 0 || hi != 0 {
		t.Fatal("empty stats not zero")
	}
	rs := []KernelResult{{TEPS: 100}, {TEPS: 400}}
	h, m, lo, hi := TEPSStats(rs)
	if m != 250 || lo != 100 || hi != 400 {
		t.Fatalf("mean/min/max = %v/%v/%v", m, lo, hi)
	}
	// Harmonic mean of 100 and 400 = 2/(1/100+1/400) = 160.
	if h < 159.9 || h > 160.1 {
		t.Fatalf("harmonic mean = %v, want 160", h)
	}
	// Harmonic <= arithmetic always.
	if h > m {
		t.Fatal("harmonic exceeded arithmetic mean")
	}
}

func TestMultiRootRunStats(t *testing.T) {
	tb := testbed(1)
	cfg := DefaultConfig(tb.RemoteAddr(0))
	cfg.Scale = 9
	cfg.Roots = 4
	r := New(tb.K, tb.NewRemoteHierarchy(), cfg)
	var out *RunResult
	tb.K.At(0, func() { r.Run(func(res *RunResult) { out = res }) })
	tb.K.Run()
	if len(out.BFS) != 4 || len(out.SSSP) != 4 {
		t.Fatalf("kernels = %d/%d", len(out.BFS), len(out.SSSP))
	}
	h, m, lo, hi := TEPSStats(out.BFS)
	if h <= 0 || m <= 0 || lo <= 0 || hi < lo || h > m {
		t.Fatalf("stats = %v %v %v %v", h, m, lo, hi)
	}
}
