package graph500

// DirectionOptimizingBFS implements the Beamer-style hybrid traversal used
// by tuned Graph500 submissions: top-down while the frontier is small,
// switching to bottom-up when the frontier's out-degree sum exceeds alpha
// times the unexplored edges, and back when the frontier shrinks below
// 1/beta of the vertices. It produces the same tree levels as plain BFS
// (parents may differ within a level) with far fewer edge touches on
// low-diameter Kronecker graphs.
func DirectionOptimizingBFS(g *Graph, root int64, alpha, beta float64) *BFSResult {
	if alpha <= 0 || beta <= 0 {
		panic("graph500: alpha and beta must be positive")
	}
	res := &BFSResult{
		Root:   root,
		Parent: make([]int64, g.N),
		Level:  make([]int64, g.N),
	}
	for i := range res.Parent {
		res.Parent[i] = -1
		res.Level[i] = -1
	}
	res.Parent[root] = root
	res.Level[root] = 0
	frontier := []int64{root}
	res.Frontiers = append(res.Frontiers, frontier)

	totalEdges := int64(len(g.Adj))
	exploredEdges := g.Degree(root)
	depth := int64(0)
	bottomUp := false

	for len(frontier) > 0 {
		depth++
		// Heuristic switch (Beamer et al.): compare the frontier's edge
		// mass against the remaining unexplored edges.
		var frontierEdges int64
		for _, u := range frontier {
			frontierEdges += g.Degree(u)
		}
		if !bottomUp && float64(frontierEdges) > float64(totalEdges-exploredEdges)/alpha {
			bottomUp = true
		} else if bottomUp && float64(len(frontier)) < float64(g.N)/beta {
			bottomUp = false
		}

		var next []int64
		if bottomUp {
			// Bottom-up: every unvisited vertex scans its neighbors for a
			// parent in the current frontier.
			inFrontier := make(map[int64]bool, len(frontier))
			for _, u := range frontier {
				inFrontier[u] = true
			}
			for v := int64(0); v < g.N; v++ {
				if res.Parent[v] != -1 {
					continue
				}
				for _, u := range g.Neighbors(v) {
					res.EdgesTouched++
					if inFrontier[u] {
						res.Parent[v] = u
						res.Level[v] = depth
						next = append(next, v)
						break
					}
				}
			}
		} else {
			for _, u := range frontier {
				for _, v := range g.Neighbors(u) {
					res.EdgesTouched++
					if res.Parent[v] == -1 {
						res.Parent[v] = u
						res.Level[v] = depth
						next = append(next, v)
					}
				}
			}
		}
		for _, v := range next {
			exploredEdges += g.Degree(v)
		}
		frontier = next
		if len(frontier) > 0 {
			res.Frontiers = append(res.Frontiers, frontier)
		}
	}
	return res
}

// DefaultAlpha and DefaultBeta are the Beamer-paper switch parameters.
const (
	DefaultAlpha = 14.0
	DefaultBeta  = 24.0
)
