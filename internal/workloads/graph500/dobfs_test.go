package graph500

import (
	"testing"

	"thymesim/internal/sim"
)

func TestDirectionOptimizingBFSValidTree(t *testing.T) {
	for _, seed := range []uint64{1, 5, 9} {
		g := smallGraph(11, seed)
		root := PickRoots(g, 1, sim.NewRand(seed+100))[0]
		r := DirectionOptimizingBFS(g, root, DefaultAlpha, DefaultBeta)
		if err := ValidateBFS(g, r); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestDirectionOptimizingBFSMatchesLevels(t *testing.T) {
	g := smallGraph(11, 3)
	root := PickRoots(g, 1, sim.NewRand(7))[0]
	plain := BFS(g, root)
	hybrid := DirectionOptimizingBFS(g, root, DefaultAlpha, DefaultBeta)
	for v := int64(0); v < g.N; v++ {
		if plain.Level[v] != hybrid.Level[v] {
			t.Fatalf("vertex %d: levels %d vs %d", v, plain.Level[v], hybrid.Level[v])
		}
	}
	if plain.Reached() != hybrid.Reached() {
		t.Fatalf("reached %d vs %d", plain.Reached(), hybrid.Reached())
	}
}

func TestDirectionOptimizingBFSTouchesFewerEdges(t *testing.T) {
	// On low-diameter Kronecker graphs the bottom-up phases skip most of
	// the giant middle frontier's edge scans.
	g := smallGraph(12, 4)
	root := PickRoots(g, 1, sim.NewRand(8))[0]
	plain := BFS(g, root)
	hybrid := DirectionOptimizingBFS(g, root, DefaultAlpha, DefaultBeta)
	if hybrid.EdgesTouched >= plain.EdgesTouched {
		t.Fatalf("hybrid touched %d edges, plain %d — no saving", hybrid.EdgesTouched, plain.EdgesTouched)
	}
	saving := float64(plain.EdgesTouched) / float64(hybrid.EdgesTouched)
	if saving < 1.2 {
		t.Fatalf("saving only %.2fx", saving)
	}
}

func TestDirectionOptimizingBFSBadParamsPanic(t *testing.T) {
	g := smallGraph(6, 1)
	defer func() {
		if recover() == nil {
			t.Error("alpha=0 did not panic")
		}
	}()
	DirectionOptimizingBFS(g, 0, 0, DefaultBeta)
}

func TestDirectionOptimizingBFSReplayable(t *testing.T) {
	// The hybrid result drives the same TraceSource machinery.
	tb := testbed(1)
	h := tb.NewRemoteHierarchy()
	g := smallGraph(9, 6)
	g.Place(tb.RemoteAddr(0))
	root := PickRoots(g, 1, sim.NewRand(11))[0]
	r := DirectionOptimizingBFS(g, root, DefaultAlpha, DefaultBeta)
	var elapsed sim.Duration
	tb.K.At(0, func() {
		Replay(tb.K, h, NewBFSTrace(g, r, DefaultCostModel()), 32, func(d sim.Duration) { elapsed = d })
	})
	tb.K.Run()
	if elapsed <= 0 {
		t.Fatal("replay produced no time")
	}
}
