package graph500

import (
	"fmt"

	"thymesim/internal/memport"
	"thymesim/internal/sim"
)

// Config parameterizes a Graph500 run.
type Config struct {
	// Scale and EdgeFactor define the Kronecker graph (paper: 20 and 16).
	Scale      int
	EdgeFactor int
	// Roots is the number of search keys (spec: 64; scaled down for
	// simulation tractability).
	Roots int
	// Delta is the delta-stepping bucket width.
	Delta float64
	// Window bounds outstanding memory operations during replay (memory
	// level parallelism of the traversal loop).
	Window int
	// BaseAddr places the graph in simulated memory.
	BaseAddr uint64
	// Cost is the CPU-side cost model.
	Cost CostModel
	// Seed drives generation and root selection.
	Seed uint64
	// Check runs the spec validation after each kernel (skippable for
	// large sweeps).
	Check bool
}

// DefaultConfig returns a scaled-down but structurally faithful setup.
func DefaultConfig(baseAddr uint64) Config {
	return Config{
		Scale:      12,
		EdgeFactor: 16,
		Roots:      2,
		Delta:      0.1,
		Window:     32,
		BaseAddr:   baseAddr,
		Cost:       DefaultCostModel(),
		Seed:       0x9500,
		Check:      true,
	}
}

// PaperConfig returns the paper's configuration (scale 20, edgefactor 16).
func PaperConfig(baseAddr uint64) Config {
	c := DefaultConfig(baseAddr)
	c.Scale = 20
	c.Roots = 1
	c.Check = false
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Scale < 1 || c.Scale > 30 {
		return fmt.Errorf("graph500: scale %d", c.Scale)
	}
	if c.EdgeFactor < 1 {
		return fmt.Errorf("graph500: edge factor %d", c.EdgeFactor)
	}
	if c.Roots < 1 {
		return fmt.Errorf("graph500: roots %d", c.Roots)
	}
	if c.Delta <= 0 {
		return fmt.Errorf("graph500: delta %v", c.Delta)
	}
	if c.Window < 1 {
		return fmt.Errorf("graph500: window %d", c.Window)
	}
	return nil
}

// KernelResult reports one timed kernel execution.
type KernelResult struct {
	Kernel  string // "bfs" or "sssp"
	Root    int64
	Elapsed sim.Duration
	// Edges is the number of input edges counted by the TEPS metric
	// (traversed edges for BFS, relaxations for SSSP).
	Edges int64
	TEPS  float64
}

// RunResult aggregates a full benchmark execution.
type RunResult struct {
	Graph *Graph
	BFS   []KernelResult
	SSSP  []KernelResult
	// MeanBFSTime and MeanSSSPTime are the per-root averages used as the
	// paper's job-completion-time metric.
	MeanBFSTime  sim.Duration
	MeanSSSPTime sim.Duration
}

// Runner executes Graph500 kernels against a hierarchy.
type Runner struct {
	k   *sim.Kernel
	h   *memport.Hierarchy
	cfg Config

	g     *Graph
	roots []int64
}

// New generates the graph (kernel 0), builds CSR (kernel 1), and places it
// at the configured base address.
func New(k *sim.Kernel, h *memport.Hierarchy, cfg Config) *Runner {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	rng := sim.NewRand(cfg.Seed)
	edges := GenerateKronecker(cfg.Scale, cfg.EdgeFactor, rng)
	g := BuildCSR(edges)
	g.Place(cfg.BaseAddr)
	roots := PickRoots(g, cfg.Roots, rng)
	if len(roots) == 0 {
		panic("graph500: no usable roots")
	}
	return &Runner{k: k, h: h, cfg: cfg, g: g, roots: roots}
}

// Graph exposes the constructed graph.
func (r *Runner) Graph() *Graph { return r.g }

// Roots exposes the chosen search keys.
func (r *Runner) Roots() []int64 { return r.roots }

// Run executes the timed BFS and SSSP kernels for every root and calls
// done with the aggregate result.
func (r *Runner) Run(done func(*RunResult)) {
	res := &RunResult{Graph: r.g}
	ri := 0
	var nextRoot func()
	nextRoot = func() {
		if ri == len(r.roots) {
			finish(res)
			done(res)
			return
		}
		root := r.roots[ri]
		ri++
		bfs := BFS(r.g, root)
		if r.cfg.Check {
			if err := ValidateBFS(r.g, bfs); err != nil {
				panic(err)
			}
		}
		Replay(r.k, r.h, NewBFSTrace(r.g, bfs, r.cfg.Cost), r.cfg.Window, func(elapsed sim.Duration) {
			res.BFS = append(res.BFS, KernelResult{
				Kernel:  "bfs",
				Root:    root,
				Elapsed: elapsed,
				Edges:   bfs.EdgesTouched,
				TEPS:    sim.PerSecond(float64(bfs.EdgesTouched), elapsed),
			})
			sssp := DeltaStepping(r.g, root, r.cfg.Delta)
			if r.cfg.Check {
				if err := ValidateSSSP(r.g, sssp, nil); err != nil {
					panic(err)
				}
			}
			Replay(r.k, r.h, NewSSSPTrace(r.g, sssp, r.cfg.Cost), r.cfg.Window, func(elapsed sim.Duration) {
				res.SSSP = append(res.SSSP, KernelResult{
					Kernel:  "sssp",
					Root:    root,
					Elapsed: elapsed,
					Edges:   sssp.Relaxations,
					TEPS:    sim.PerSecond(float64(sssp.Relaxations), elapsed),
				})
				nextRoot()
			})
		})
	}
	nextRoot()
}

func finish(res *RunResult) {
	var bsum, ssum sim.Duration
	for _, b := range res.BFS {
		bsum += b.Elapsed
	}
	for _, s := range res.SSSP {
		ssum += s.Elapsed
	}
	if n := len(res.BFS); n > 0 {
		res.MeanBFSTime = bsum / sim.Duration(n)
	}
	if n := len(res.SSSP); n > 0 {
		res.MeanSSSPTime = ssum / sim.Duration(n)
	}
}

// TEPSStats summarizes per-root TEPS the way the Graph500 specification
// reports kernel performance: the harmonic mean (the spec's official
// statistic, robust to a single fast root), plus arithmetic mean and
// extrema. It returns zeros for an empty slice.
func TEPSStats(results []KernelResult) (harmonicMean, mean, min, max float64) {
	if len(results) == 0 {
		return 0, 0, 0, 0
	}
	var invSum, sum float64
	min, max = results[0].TEPS, results[0].TEPS
	for _, r := range results {
		sum += r.TEPS
		if r.TEPS > 0 {
			invSum += 1 / r.TEPS
		}
		if r.TEPS < min {
			min = r.TEPS
		}
		if r.TEPS > max {
			max = r.TEPS
		}
	}
	n := float64(len(results))
	mean = sum / n
	if invSum > 0 {
		harmonicMean = n / invSum
	}
	return harmonicMean, mean, min, max
}
