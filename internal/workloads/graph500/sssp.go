package graph500

import (
	"container/heap"
	"math"
)

// SSSPResult holds the output of kernel 3: distances and parents, plus the
// per-phase relaxation sets used by the memory replay.
type SSSPResult struct {
	Root   int64
	Dist   []float64 // +Inf = unreached
	Parent []int64   // -1 = unreached
	// Phases[k] is the set of vertices settled/relaxed in delta-stepping
	// phase k (bucket processing round).
	Phases [][]int64
	// Relaxations counts edge relaxation attempts.
	Relaxations int64
}

// DeltaStepping runs single-source shortest paths with the delta-stepping
// algorithm (the Graph500 reference SSSP), bucketing vertices by
// distance/delta and separating light (< delta) from heavy edges within a
// bucket.
func DeltaStepping(g *Graph, root int64, delta float64) *SSSPResult {
	if delta <= 0 {
		panic("graph500: delta must be positive")
	}
	res := &SSSPResult{
		Root:   root,
		Dist:   make([]float64, g.N),
		Parent: make([]int64, g.N),
	}
	for i := range res.Dist {
		res.Dist[i] = math.Inf(1)
		res.Parent[i] = -1
	}
	res.Dist[root] = 0
	res.Parent[root] = root

	buckets := map[int64][]int64{0: {root}}
	inBucket := make([]int64, g.N) // bucket index + 1 (0 = none)
	inBucket[root] = 1
	maxBucket := int64(0)

	relax := func(v int64, d float64, parent int64) {
		res.Relaxations++
		if d < res.Dist[v] {
			res.Dist[v] = d
			res.Parent[v] = parent
			b := int64(d / delta)
			buckets[b] = append(buckets[b], v)
			inBucket[v] = b + 1
			if b > maxBucket {
				maxBucket = b
			}
		}
	}

	for b := int64(0); b <= maxBucket; b++ {
		var settled []int64
		// Light-edge phases: re-process the bucket until it stops
		// refilling.
		for len(buckets[b]) > 0 {
			req := buckets[b]
			buckets[b] = nil
			var phase []int64
			for _, u := range req {
				// Skip stale entries that moved to an earlier bucket.
				if int64(res.Dist[u]/delta) != b {
					continue
				}
				phase = append(phase, u)
				adj := g.Neighbors(u)
				ws := g.Weights(u)
				for i, v := range adj {
					if ws[i] < delta {
						relax(v, res.Dist[u]+ws[i], u)
					}
				}
			}
			if len(phase) > 0 {
				res.Phases = append(res.Phases, phase)
				settled = append(settled, phase...)
			}
		}
		// Heavy-edge phase over everything settled in this bucket.
		var heavyPhase []int64
		for _, u := range settled {
			adj := g.Neighbors(u)
			ws := g.Weights(u)
			touched := false
			for i, v := range adj {
				if ws[i] >= delta {
					relax(v, res.Dist[u]+ws[i], u)
					touched = true
				}
			}
			if touched {
				heavyPhase = append(heavyPhase, u)
			}
		}
		if len(heavyPhase) > 0 {
			res.Phases = append(res.Phases, heavyPhase)
		}
	}
	return res
}

// distHeap is a binary heap for the Dijkstra reference implementation.
type distHeap struct {
	v []int64
	d []float64
}

func (h *distHeap) Len() int           { return len(h.v) }
func (h *distHeap) Less(i, j int) bool { return h.d[i] < h.d[j] }
func (h *distHeap) Swap(i, j int)      { h.v[i], h.v[j] = h.v[j], h.v[i]; h.d[i], h.d[j] = h.d[j], h.d[i] }
func (h *distHeap) Push(x interface{}) { panic("use push2") }
func (h *distHeap) Pop() interface{}   { panic("use pop2") }

func (h *distHeap) push2(v int64, d float64) {
	h.v = append(h.v, v)
	h.d = append(h.d, d)
	heap.Fix(h, len(h.v)-1)
}

func (h *distHeap) pop2() (int64, float64) {
	v, d := h.v[0], h.d[0]
	n := len(h.v) - 1
	h.Swap(0, n)
	h.v = h.v[:n]
	h.d = h.d[:n]
	if n > 0 {
		heap.Fix(h, 0)
	}
	return v, d
}

// Dijkstra is the exact reference used to validate DeltaStepping.
func Dijkstra(g *Graph, root int64) []float64 {
	dist := make([]float64, g.N)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[root] = 0
	h := &distHeap{}
	h.push2(root, 0)
	for h.Len() > 0 {
		u, d := h.pop2()
		if d > dist[u] {
			continue
		}
		adj := g.Neighbors(u)
		ws := g.Weights(u)
		for i, v := range adj {
			if nd := d + ws[i]; nd < dist[v] {
				dist[v] = nd
				h.push2(v, nd)
			}
		}
	}
	return dist
}
