package graph500

import (
	"fmt"
	"math"
)

// ValidateBFS checks the spec's kernel-2 correctness conditions:
//  1. the root's parent is itself,
//  2. every tree edge (parent[v], v) exists in the graph,
//  3. tree levels differ by exactly one across tree edges,
//  4. every vertex connected to the root appears in the tree.
func ValidateBFS(g *Graph, r *BFSResult) error {
	if r.Parent[r.Root] != r.Root {
		return fmt.Errorf("graph500: root %d parent is %d", r.Root, r.Parent[r.Root])
	}
	if r.Level[r.Root] != 0 {
		return fmt.Errorf("graph500: root level %d", r.Level[r.Root])
	}
	for v := int64(0); v < g.N; v++ {
		p := r.Parent[v]
		if p == -1 {
			continue
		}
		if v == r.Root {
			continue
		}
		if r.Level[v] != r.Level[p]+1 {
			return fmt.Errorf("graph500: level(%d)=%d but level(parent %d)=%d", v, r.Level[v], p, r.Level[p])
		}
		found := false
		for _, u := range g.Neighbors(p) {
			if u == v {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("graph500: tree edge (%d,%d) not in graph", p, v)
		}
	}
	// Reachability: any graph edge with exactly one endpoint in the tree
	// is a violation.
	for u := int64(0); u < g.N; u++ {
		inU := r.Parent[u] != -1
		for _, v := range g.Neighbors(u) {
			if inU != (r.Parent[v] != -1) {
				return fmt.Errorf("graph500: edge (%d,%d) crosses tree boundary", u, v)
			}
		}
	}
	return nil
}

// ValidateSSSP checks kernel-3 conditions against triangle inequality and
// the parent structure, and optionally against exact distances.
func ValidateSSSP(g *Graph, r *SSSPResult, exact []float64) error {
	if r.Dist[r.Root] != 0 {
		return fmt.Errorf("graph500: root distance %v", r.Dist[r.Root])
	}
	for u := int64(0); u < g.N; u++ {
		du := r.Dist[u]
		if math.IsInf(du, 1) {
			continue
		}
		adj := g.Neighbors(u)
		ws := g.Weights(u)
		for i, v := range adj {
			if r.Dist[v] > du+ws[i]+1e-12 {
				return fmt.Errorf("graph500: edge (%d,%d) violates triangle: %v > %v+%v", u, v, r.Dist[v], du, ws[i])
			}
		}
		if u != r.Root {
			p := r.Parent[u]
			if p == -1 {
				return fmt.Errorf("graph500: reached vertex %d has no parent", u)
			}
			// dist[u] must equal dist[p] + w for some edge (p,u).
			ok := false
			adjP := g.Neighbors(p)
			wsP := g.Weights(p)
			for i, v := range adjP {
				if v == u && math.Abs(r.Dist[p]+wsP[i]-du) < 1e-9 {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("graph500: vertex %d distance %v unsupported by parent %d (%v)", u, du, p, r.Dist[p])
			}
		}
	}
	if exact != nil {
		for v := int64(0); v < g.N; v++ {
			a, b := r.Dist[v], exact[v]
			if math.IsInf(a, 1) != math.IsInf(b, 1) {
				return fmt.Errorf("graph500: vertex %d reachability mismatch", v)
			}
			if !math.IsInf(a, 1) && math.Abs(a-b) > 1e-9 {
				return fmt.Errorf("graph500: vertex %d dist %v, exact %v", v, a, b)
			}
		}
	}
	return nil
}
