package graph500

// BFSResult holds the output of kernel 2: the parent array (tree) and the
// per-level frontiers used by the memory replay.
type BFSResult struct {
	Root   int64
	Parent []int64 // -1 = unreached
	Level  []int64 // -1 = unreached
	// Frontiers[k] is the list of vertices first reached at depth k.
	Frontiers [][]int64
	// EdgesTouched counts adjacency entries scanned (traversed edges).
	EdgesTouched int64
}

// BFS runs a level-synchronous top-down breadth-first search from root.
func BFS(g *Graph, root int64) *BFSResult {
	res := &BFSResult{
		Root:   root,
		Parent: make([]int64, g.N),
		Level:  make([]int64, g.N),
	}
	for i := range res.Parent {
		res.Parent[i] = -1
		res.Level[i] = -1
	}
	res.Parent[root] = root
	res.Level[root] = 0
	frontier := []int64{root}
	res.Frontiers = append(res.Frontiers, frontier)
	depth := int64(0)
	for len(frontier) > 0 {
		depth++
		var next []int64
		for _, u := range frontier {
			for _, v := range g.Neighbors(u) {
				res.EdgesTouched++
				if res.Parent[v] == -1 {
					res.Parent[v] = u
					res.Level[v] = depth
					next = append(next, v)
				}
			}
		}
		frontier = next
		if len(frontier) > 0 {
			res.Frontiers = append(res.Frontiers, frontier)
		}
	}
	return res
}

// Reached returns the number of vertices in the BFS tree.
func (r *BFSResult) Reached() int64 {
	var n int64
	for _, p := range r.Parent {
		if p != -1 {
			n++
		}
	}
	return n
}
