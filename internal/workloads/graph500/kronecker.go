// Package graph500 implements the Graph500 benchmark against the simulated
// memory system: Kronecker graph generation (R-MAT), CSR construction,
// breadth-first search and single-source shortest paths, specification
// validation, and a level-synchronous memory replay that charges the
// algorithms' access streams to a memport.Hierarchy.
//
// Paper configuration (§IV-A): scale 20, edgefactor 16 (~1 GB working
// set). Tests and default benches use smaller scales; the access-pattern
// shape (dependent, low-locality traversal) is scale-invariant.
package graph500

import (
	"fmt"

	"thymesim/internal/sim"
)

// Kronecker initiator probabilities from the Graph500 specification.
const (
	initA = 0.57
	initB = 0.19
	initC = 0.19
	// initD = 1 - A - B - C = 0.05
)

// EdgeList is a generated list of (possibly duplicated, self-looping)
// edges, as the spec's kernel 0 produces.
type EdgeList struct {
	Scale      int
	EdgeFactor int
	Src, Dst   []int64
	// Weight holds uniform [0,1) edge weights for SSSP (spec kernel 3).
	Weight []float64
}

// NumVertices returns 2^Scale.
func (e *EdgeList) NumVertices() int64 { return int64(1) << uint(e.Scale) }

// NumEdges returns the generated edge count (EdgeFactor * 2^Scale).
func (e *EdgeList) NumEdges() int64 { return int64(len(e.Src)) }

// GenerateKronecker produces an edge list per the Graph500 reference:
// R-MAT sampling with per-level noise-free initiator, followed by vertex
// relabeling so degree is decorrelated from vertex id.
func GenerateKronecker(scale, edgeFactor int, rng *sim.Rand) *EdgeList {
	if scale < 1 || scale > 32 {
		panic(fmt.Sprintf("graph500: scale %d out of range", scale))
	}
	if edgeFactor < 1 {
		panic(fmt.Sprintf("graph500: edge factor %d", edgeFactor))
	}
	n := int64(1) << uint(scale)
	m := int64(edgeFactor) * n
	e := &EdgeList{
		Scale:      scale,
		EdgeFactor: edgeFactor,
		Src:        make([]int64, m),
		Dst:        make([]int64, m),
		Weight:     make([]float64, m),
	}
	ab := initA + initB
	cNorm := initC / (1 - ab)
	aNorm := initA / ab
	for i := int64(0); i < m; i++ {
		var src, dst int64
		for bit := 0; bit < scale; bit++ {
			iiBit := rng.Float64() > ab
			var jjBit bool
			if iiBit {
				jjBit = rng.Float64() > cNorm
			} else {
				jjBit = rng.Float64() > aNorm
			}
			if iiBit {
				src |= 1 << uint(bit)
			}
			if jjBit {
				dst |= 1 << uint(bit)
			}
		}
		e.Src[i] = src
		e.Dst[i] = dst
		e.Weight[i] = rng.Float64()
	}
	// Permute vertex labels (spec requirement).
	perm := make([]int64, n)
	for i := range perm {
		perm[i] = int64(i)
	}
	rng.Shuffle(int(n), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	for i := range e.Src {
		e.Src[i] = perm[e.Src[i]]
		e.Dst[i] = perm[e.Dst[i]]
	}
	return e
}

// Graph is a compressed-sparse-row adjacency structure treated as
// undirected: every generated edge appears in both endpoint rows.
// Self-loops are dropped and duplicate edges retained (the spec permits
// either; BFS/SSSP are insensitive to duplicates).
type Graph struct {
	N    int64
	Offs []int64 // len N+1
	Adj  []int64
	W    []float64 // parallel to Adj

	// Simulated placement of the three big arrays, for memory replay.
	offsBase, adjBase, stateBase uint64
}

// BuildCSR constructs the CSR form of an edge list.
func BuildCSR(e *EdgeList) *Graph {
	n := e.NumVertices()
	g := &Graph{N: n, Offs: make([]int64, n+1)}
	deg := make([]int64, n)
	for i := range e.Src {
		if e.Src[i] == e.Dst[i] {
			continue
		}
		deg[e.Src[i]]++
		deg[e.Dst[i]]++
	}
	var total int64
	for v := int64(0); v < n; v++ {
		g.Offs[v] = total
		total += deg[v]
	}
	g.Offs[n] = total
	g.Adj = make([]int64, total)
	g.W = make([]float64, total)
	fill := make([]int64, n)
	copy(fill, g.Offs[:n])
	for i := range e.Src {
		s, d := e.Src[i], e.Dst[i]
		if s == d {
			continue
		}
		g.Adj[fill[s]] = d
		g.W[fill[s]] = e.Weight[i]
		fill[s]++
		g.Adj[fill[d]] = s
		g.W[fill[d]] = e.Weight[i]
		fill[d]++
	}
	return g
}

// Degree returns vertex v's adjacency length.
func (g *Graph) Degree(v int64) int64 { return g.Offs[v+1] - g.Offs[v] }

// Neighbors returns v's adjacency slice (shared storage; do not mutate).
func (g *Graph) Neighbors(v int64) []int64 { return g.Adj[g.Offs[v]:g.Offs[v+1]] }

// Weights returns the edge weights parallel to Neighbors(v).
func (g *Graph) Weights(v int64) []float64 { return g.W[g.Offs[v]:g.Offs[v+1]] }

// Place assigns simulated base addresses to the graph's arrays: the CSR
// offsets, the adjacency/weight arrays, and the per-vertex algorithm state
// (parent/dist/visited). These drive the memory replay.
func (g *Graph) Place(base uint64) {
	const line = 128
	align := func(x uint64) uint64 { return (x + line - 1) &^ uint64(line-1) }
	g.offsBase = base
	offsSpan := align(uint64(len(g.Offs)) * 8)
	g.adjBase = g.offsBase + offsSpan
	adjSpan := align(uint64(len(g.Adj)) * 16) // adjacency id + weight
	g.stateBase = g.adjBase + adjSpan
}

// Footprint returns the total simulated bytes of the placed arrays.
func (g *Graph) Footprint() uint64 {
	const line = 128
	align := func(x uint64) uint64 { return (x + line - 1) &^ uint64(line-1) }
	return align(uint64(len(g.Offs))*8) + align(uint64(len(g.Adj))*16) + align(uint64(g.N)*16)
}

// Addresses of the placed arrays (valid after Place).
func (g *Graph) offAddr(v int64) uint64   { return g.offsBase + uint64(v)*8 }
func (g *Graph) adjAddr(i int64) uint64   { return g.adjBase + uint64(i)*16 }
func (g *Graph) stateAddr(v int64) uint64 { return g.stateBase + uint64(v)*16 }

// PickRoots selects nroots distinct search keys with nonzero degree, per
// the spec's sampling procedure.
func PickRoots(g *Graph, nroots int, rng *sim.Rand) []int64 {
	roots := make([]int64, 0, nroots)
	seen := make(map[int64]bool, nroots)
	for int64(len(roots)) < int64(nroots) {
		v := rng.Int63n(g.N)
		if seen[v] || g.Degree(v) == 0 {
			// Give up gracefully on pathological tiny graphs.
			if int64(len(seen)) >= g.N {
				break
			}
			seen[v] = true
			continue
		}
		seen[v] = true
		roots = append(roots, v)
	}
	return roots
}
