// Package latmem is a lat_mem_rd-style pointer-chasing microbenchmark: it
// builds a random cyclic permutation over a buffer and walks it, so every
// load depends on the previous one and the measured time per hop is the
// true (unoverlapped) memory access latency. The paper's Fig. 2/4
// "latency measured by STREAM" is a throughput-derived estimate; the
// pointer chase measures the same quantity directly and the two agree
// under saturation.
package latmem

import (
	"fmt"

	"thymesim/internal/memport"
	"thymesim/internal/ocapi"
	"thymesim/internal/sim"
)

// Config parameterizes a chase.
type Config struct {
	// BufferBytes is the walked buffer size; make it far larger than the
	// LLC to measure memory, not cache.
	BufferBytes int
	// Hops is the number of dependent loads to time.
	Hops int
	// Stride spaces the permutation entries; use the cache-line size to
	// defeat spatial locality.
	Stride int
	// BaseAddr places the buffer.
	BaseAddr uint64
	// Seed shuffles the permutation.
	Seed uint64
}

// DefaultConfig returns a chase suited to the scaled testbed.
func DefaultConfig(baseAddr uint64) Config {
	return Config{
		BufferBytes: 1 << 20,
		Hops:        2000,
		Stride:      ocapi.CacheLineSize,
		BaseAddr:    baseAddr,
		Seed:        42,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Stride < 8 || c.Stride%8 != 0 {
		return fmt.Errorf("latmem: stride %d", c.Stride)
	}
	if c.BufferBytes < 2*c.Stride {
		return fmt.Errorf("latmem: buffer %d too small for stride %d", c.BufferBytes, c.Stride)
	}
	if c.Hops < 1 {
		return fmt.Errorf("latmem: hops %d", c.Hops)
	}
	if c.BaseAddr%ocapi.CacheLineSize != 0 {
		return fmt.Errorf("latmem: base %#x unaligned", c.BaseAddr)
	}
	return nil
}

// Result reports the measured chase.
type Result struct {
	Hops    int
	Elapsed sim.Duration
	// PerHop is the mean dependent-load latency — the headline number.
	PerHop sim.Duration
}

// Runner owns the permutation and drives the chase.
type Runner struct {
	k   *sim.Kernel
	h   *memport.Hierarchy
	cfg Config
	// next[i] holds the index of the slot the chase visits after slot i —
	// a real permutation in Go memory, walked for real.
	next []int32
}

// New builds the cyclic permutation (Sattolo's algorithm, so the walk is a
// single cycle covering every slot).
func New(k *sim.Kernel, h *memport.Hierarchy, cfg Config) *Runner {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	slots := cfg.BufferBytes / cfg.Stride
	next := make([]int32, slots)
	perm := make([]int32, slots)
	for i := range perm {
		perm[i] = int32(i)
	}
	rng := sim.NewRand(cfg.Seed)
	// Sattolo: single-cycle permutation.
	for i := slots - 1; i > 0; i-- {
		j := rng.Intn(i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i := 0; i < slots; i++ {
		next[perm[i]] = perm[(i+1)%slots]
	}
	return &Runner{k: k, h: h, cfg: cfg, next: next}
}

// addrOf returns the simulated address of slot i.
func (r *Runner) addrOf(slot int32) uint64 {
	return r.cfg.BaseAddr + uint64(slot)*uint64(r.cfg.Stride)
}

// Run walks the chase and calls done with the result. Every hop issues
// exactly one dependent load: the next access is issued only when the
// previous completes.
func (r *Runner) Run(done func(Result)) {
	start := r.k.Now()
	slot := int32(0)
	hop := 0
	var step func()
	step = func() {
		if hop == r.cfg.Hops {
			elapsed := r.k.Now().Sub(start)
			done(Result{
				Hops:    r.cfg.Hops,
				Elapsed: elapsed,
				PerHop:  elapsed / sim.Duration(r.cfg.Hops),
			})
			return
		}
		hop++
		addr := r.addrOf(slot)
		slot = r.next[slot] // the real pointer dereference
		r.h.Access(addr, 8, false, step)
	}
	step()
}

// CycleLen verifies the permutation is a single cycle (test helper).
func (r *Runner) CycleLen() int {
	seen := 0
	slot := int32(0)
	for {
		slot = r.next[slot]
		seen++
		if slot == 0 {
			return seen
		}
		if seen > len(r.next) {
			return -1
		}
	}
}
