package latmem

import (
	"testing"

	"thymesim/internal/cluster"
	"thymesim/internal/sim"
)

func testbed(period int64) *cluster.Testbed {
	cfg := cluster.DefaultConfig(period)
	cfg.LLC.SizeBytes = 16 << 10
	cfg.LLC.Ways = 4
	return cluster.NewTestbed(cfg)
}

func chase(t *testing.T, period int64, remote bool) Result {
	t.Helper()
	tb := testbed(period)
	var h = tb.NewLocalHierarchy()
	var base uint64
	if remote {
		h = tb.NewRemoteHierarchy()
		base = tb.RemoteAddr(0)
	}
	cfg := DefaultConfig(base)
	cfg.BufferBytes = 1 << 18
	cfg.Hops = 500
	r := New(tb.K, h, cfg)
	var out Result
	tb.K.At(0, func() { r.Run(func(res Result) { out = res }) })
	tb.K.Run()
	if out.Hops != cfg.Hops {
		t.Fatal("chase did not complete")
	}
	return out
}

func TestPermutationIsSingleCycle(t *testing.T) {
	tb := testbed(1)
	cfg := DefaultConfig(0)
	cfg.BufferBytes = 1 << 16
	r := New(tb.K, tb.NewLocalHierarchy(), cfg)
	slots := cfg.BufferBytes / cfg.Stride
	if got := r.CycleLen(); got != slots {
		t.Fatalf("cycle length = %d, want %d", got, slots)
	}
}

func TestRemoteChaseMeasuresBaseRTT(t *testing.T) {
	res := chase(t, 1, true)
	// Dependent loads cannot overlap: per-hop ~= the uncontended remote
	// RTT (~1.2us modelled), well above local.
	if res.PerHop < 800*sim.Nanosecond || res.PerHop > 2500*sim.Nanosecond {
		t.Fatalf("remote per-hop = %v, want ~1.2us", res.PerHop)
	}
	local := chase(t, 1, false)
	if local.PerHop >= res.PerHop {
		t.Fatalf("local %v not faster than remote %v", local.PerHop, res.PerHop)
	}
}

func TestChaseSeesInjectedDelay(t *testing.T) {
	fast := chase(t, 1, true)
	slow := chase(t, 500, true) // 2us slots
	// A dependent chain phase-locks to the grid: release at slot k,
	// completion at k*slot + RTT, so the next load waits slot - (RTT mod
	// slot) ~= 0.8us with RTT ~1.2us. The per-hop gain must be that
	// deterministic alignment wait.
	gain := slow.PerHop - fast.PerHop
	if gain < 300*sim.Nanosecond || gain > 2*sim.Microsecond {
		t.Fatalf("per-hop gain = %v, want grid-alignment wait (~0.8us)", gain)
	}
	// And the per-hop period must quantize to the slot grid: hops land
	// one slot apart once locked.
	if slow.PerHop < 1800*sim.Nanosecond || slow.PerHop > 2200*sim.Nanosecond {
		t.Fatalf("per-hop = %v, want ~one 2us slot", slow.PerHop)
	}
}

func TestCacheResidentChaseIsFast(t *testing.T) {
	tb := testbed(1)
	cfg := DefaultConfig(tb.RemoteAddr(0))
	cfg.BufferBytes = 8 << 10 // fits the 16KB LLC
	cfg.Hops = 2000
	r := New(tb.K, tb.NewRemoteHierarchy(), cfg)
	var out Result
	tb.K.At(0, func() { r.Run(func(res Result) { out = res }) })
	tb.K.Run()
	// After the first lap everything hits: mean per-hop far below RTT.
	if out.PerHop > 300*sim.Nanosecond {
		t.Fatalf("cache-resident per-hop = %v, want near zero", out.PerHop)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{BufferBytes: 1 << 20, Hops: 1, Stride: 7},
		{BufferBytes: 128, Hops: 1, Stride: 128},
		{BufferBytes: 1 << 20, Hops: 0, Stride: 128},
		{BufferBytes: 1 << 20, Hops: 1, Stride: 128, BaseAddr: 13},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := DefaultConfig(0).Validate(); err != nil {
		t.Error(err)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := chase(t, 25, true)
	b := chase(t, 25, true)
	if a.Elapsed != b.Elapsed {
		t.Fatalf("nondeterministic: %v vs %v", a.Elapsed, b.Elapsed)
	}
}
