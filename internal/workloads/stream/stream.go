// Package stream implements the STREAM benchmark (McCalpin) against the
// simulated memory hierarchy: the four kernels (copy, scale, add, triad)
// run real floating-point math over real Go slices, while their memory
// traffic is replayed line-by-line through a memport.Hierarchy so the
// simulated clock advances exactly as the modelled hardware would.
//
// Paper configuration (§IV-A): 10 M elements (~0.2 GiB), beyond the
// 120 MiB LLC, so every line streams through the cache with one fill per
// line. The scaled-down defaults preserve that property against the
// modelled LLC.
package stream

import (
	"fmt"
	"math"

	"thymesim/internal/memport"
	"thymesim/internal/ocapi"
	"thymesim/internal/sim"
)

// Kernel identifies one STREAM kernel.
type Kernel int

// The four kernels, in canonical order.
const (
	Copy Kernel = iota
	Scale
	Add
	Triad
)

// String implements fmt.Stringer.
func (k Kernel) String() string {
	switch k {
	case Copy:
		return "copy"
	case Scale:
		return "scale"
	case Add:
		return "add"
	case Triad:
		return "triad"
	default:
		return fmt.Sprintf("kernel(%d)", int(k))
	}
}

// bytesPerElement returns the STREAM-accounted traffic per iteration:
// copy/scale move 16 B (1 read + 1 write), add/triad 24 B (2 reads +
// 1 write), per §IV-A.
func (k Kernel) bytesPerElement() int {
	switch k {
	case Copy, Scale:
		return 16
	default:
		return 24
	}
}

const scalar = 3.0

// Config parameterizes a STREAM run.
type Config struct {
	// Elements per array (paper: 10_000_000).
	Elements int
	// Iterations of the four-kernel sequence.
	Iterations int
	// Window bounds software-visible outstanding line groups (OoO window +
	// prefetch depth); the MSHR pool below it is usually the binding limit.
	Window int
	// BaseAddr is where the three arrays are placed in the address space
	// (use Testbed.RemoteAddr(0) for disaggregated memory, any local
	// address for the local baseline).
	BaseAddr uint64
}

// DefaultConfig returns a scaled-down configuration that preserves the
// paper's "working set beyond LLC" property.
// The default window matches the hardware MSHR window (129 fills => BDP
// ~= 16.5 kB): the CPU cannot expose more outstanding misses than its
// MSHRs, so a larger software window would only queue in front of them.
func DefaultConfig(baseAddr uint64) Config {
	return Config{Elements: 1 << 17, Iterations: 1, Window: 128, BaseAddr: baseAddr}
}

// PaperConfig returns the paper's full-size configuration (10 M elements).
func PaperConfig(baseAddr uint64) Config {
	return Config{Elements: 10_000_000, Iterations: 1, Window: 64, BaseAddr: baseAddr}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Elements < elemsPerLine {
		return fmt.Errorf("stream: Elements = %d (need >= %d)", c.Elements, elemsPerLine)
	}
	if c.Iterations <= 0 {
		return fmt.Errorf("stream: Iterations = %d", c.Iterations)
	}
	if c.Window <= 0 {
		return fmt.Errorf("stream: Window = %d", c.Window)
	}
	if c.BaseAddr%ocapi.CacheLineSize != 0 {
		return fmt.Errorf("stream: BaseAddr %#x not line-aligned", c.BaseAddr)
	}
	return nil
}

// Result reports one kernel's measured performance.
type Result struct {
	Kernel       Kernel
	Bytes        uint64       // STREAM-accounted bytes moved
	Elapsed      sim.Duration // simulated kernel time
	BandwidthBps float64
	// AvgFillLatencyUs is the mean line-fill latency observed during the
	// kernel, in microseconds — the "latency measured by STREAM" of
	// Fig. 2.
	AvgFillLatencyUs float64
	LineFills        uint64
}

const (
	elemBytes    = 8
	elemsPerLine = ocapi.CacheLineSize / elemBytes
)

// Runner executes STREAM against one hierarchy.
type Runner struct {
	k   *sim.Kernel
	h   *memport.Hierarchy
	cfg Config

	a, b, c []float64
	results []Result
}

// New allocates the arrays (initialized per STREAM: a=1, b=2, c=0) and
// returns a runner.
func New(k *sim.Kernel, h *memport.Hierarchy, cfg Config) *Runner {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	r := &Runner{k: k, h: h, cfg: cfg}
	r.a = make([]float64, cfg.Elements)
	r.b = make([]float64, cfg.Elements)
	r.c = make([]float64, cfg.Elements)
	for i := range r.a {
		r.a[i] = 1
		r.b[i] = 2
	}
	return r
}

// Results returns results recorded so far (one per kernel per iteration).
func (r *Runner) Results() []Result { return r.results }

// arrayBase returns the simulated address of array idx (0=a, 1=b, 2=c).
// Arrays are laid out back to back, line-aligned.
func (r *Runner) arrayBase(idx int) uint64 {
	span := uint64((r.cfg.Elements*elemBytes + ocapi.CacheLineSize - 1) &^ (ocapi.CacheLineSize - 1))
	return r.cfg.BaseAddr + uint64(idx)*span
}

// Run executes Iterations of the four kernels and calls done with all
// results.
func (r *Runner) Run(done func([]Result)) {
	iter := 0
	var runIter func()
	runIter = func() {
		r.runKernel(Copy, func() {
			r.runKernel(Scale, func() {
				r.runKernel(Add, func() {
					r.runKernel(Triad, func() {
						iter++
						if iter < r.cfg.Iterations {
							runIter()
							return
						}
						if err := r.Check(); err != nil {
							panic(err)
						}
						done(r.results)
					})
				})
			})
		})
	}
	runIter()
}

// lineGroup computes the real math for elements [lo, hi) of the kernel and
// returns the (addr, write) accesses the group generates.
func (r *Runner) compute(kern Kernel, lo, hi int) {
	switch kern {
	case Copy:
		copy(r.c[lo:hi], r.a[lo:hi])
	case Scale:
		for i := lo; i < hi; i++ {
			r.b[i] = scalar * r.c[i]
		}
	case Add:
		for i := lo; i < hi; i++ {
			r.c[i] = r.a[i] + r.b[i]
		}
	case Triad:
		for i := lo; i < hi; i++ {
			r.a[i] = r.b[i] + scalar*r.c[i]
		}
	}
}

// accesses returns the per-line-group memory operations of a kernel:
// (arrayIndex, write) pairs.
func (kern Kernel) accesses() [](struct {
	arr   int
	write bool
}) {
	type op = struct {
		arr   int
		write bool
	}
	switch kern {
	case Copy: // c = a
		return []op{{0, false}, {2, true}}
	case Scale: // b = s*c
		return []op{{2, false}, {1, true}}
	case Add: // c = a + b
		return []op{{0, false}, {1, false}, {2, true}}
	default: // Triad: a = b + s*c
		return []op{{1, false}, {2, false}, {0, true}}
	}
}

// runKernel streams the kernel through the hierarchy with a bounded issue
// window and records a Result.
func (r *Runner) runKernel(kern Kernel, done func()) {
	start := r.k.Now()
	startFills := r.h.Stats().LineFills
	startHist := r.h.FillLatency().Count()
	startLatSum := r.h.FillLatency().Sum()

	lines := (r.cfg.Elements + elemsPerLine - 1) / elemsPerLine
	ops := kern.accesses()
	idx := 0
	inflight := 0
	pumping := false
	finished := false

	var pump func()
	// One completion closure for the whole kernel: Access must not be
	// handed a fresh closure per line group on the hot path.
	accessDone := func() {
		inflight--
		pump()
	}
	pump = func() {
		if pumping {
			return
		}
		pumping = true
		for inflight < r.cfg.Window && idx < lines {
			lo := idx * elemsPerLine
			hi := lo + elemsPerLine
			if hi > r.cfg.Elements {
				hi = r.cfg.Elements
			}
			r.compute(kern, lo, hi)
			lineOff := uint64(idx * ocapi.CacheLineSize)
			n := uint64(hi - lo)
			for _, op := range ops {
				addr := r.arrayBase(op.arr) + lineOff
				inflight++
				r.h.Access(addr, int(n)*elemBytes, op.write, accessDone)
			}
			idx++
		}
		pumping = false
		if !finished && idx == lines && inflight == 0 {
			finished = true
			r.record(kern, start, startFills, startHist, startLatSum)
			done()
		}
	}
	pump()
}

func (r *Runner) record(kern Kernel, start sim.Time, startFills, histCount uint64, latSum float64) {
	elapsed := r.k.Now().Sub(start)
	bytes := uint64(r.cfg.Elements) * uint64(kern.bytesPerElement())
	fills := r.h.Stats().LineFills - startFills
	var avgLat float64
	if dc := r.h.FillLatency().Count() - histCount; dc > 0 {
		avgLat = (r.h.FillLatency().Sum() - latSum) / float64(dc)
	}
	res := Result{
		Kernel:           kern,
		Bytes:            bytes,
		Elapsed:          elapsed,
		BandwidthBps:     sim.PerSecond(float64(bytes), elapsed),
		AvgFillLatencyUs: avgLat,
		LineFills:        fills,
	}
	r.results = append(r.results, res)
}

// Check verifies array contents against the analytically expected values,
// as the reference STREAM implementation does.
func (r *Runner) Check() error {
	ea, eb, ec := 1.0, 2.0, 0.0
	for i := 0; i < r.cfg.Iterations; i++ {
		ec = ea          // copy
		eb = scalar * ec // scale
		ec = ea + eb     // add
		ea = eb + scalar*ec
	}
	for i := 0; i < r.cfg.Elements; i++ {
		if math.Abs(r.a[i]-ea) > 1e-8 || math.Abs(r.b[i]-eb) > 1e-8 || math.Abs(r.c[i]-ec) > 1e-8 {
			return fmt.Errorf("stream: validation failed at %d: got (%g,%g,%g), want (%g,%g,%g)",
				i, r.a[i], r.b[i], r.c[i], ea, eb, ec)
		}
	}
	return nil
}

// Summary aggregates per-kernel results: total STREAM bytes over total time
// and the mean of per-kernel fill latencies.
func Summary(results []Result) (bandwidthBps float64, avgFillLatencyUs float64) {
	var bytes uint64
	var elapsed sim.Duration
	var latSum float64
	var latN int
	for _, r := range results {
		bytes += r.Bytes
		elapsed += r.Elapsed
		if r.AvgFillLatencyUs > 0 {
			latSum += r.AvgFillLatencyUs
			latN++
		}
	}
	if latN > 0 {
		avgFillLatencyUs = latSum / float64(latN)
	}
	return sim.PerSecond(float64(bytes), elapsed), avgFillLatencyUs
}
