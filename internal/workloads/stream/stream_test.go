package stream

import (
	"testing"

	"thymesim/internal/cluster"
	"thymesim/internal/ocapi"
	"thymesim/internal/sim"
)

// testbed returns a testbed whose LLC is small enough that the test-sized
// arrays stream through it (the paper sizes STREAM beyond the LLC).
func testbed(period int64) *cluster.Testbed {
	cfg := cluster.DefaultConfig(period)
	cfg.LLC.SizeBytes = 64 << 10
	cfg.LLC.Ways = 4
	return cluster.NewTestbed(cfg)
}

func runStream(t *testing.T, period int64, elements int, remote bool) []Result {
	t.Helper()
	tb := testbed(period)
	var r *Runner
	if remote {
		cfg := DefaultConfig(tb.RemoteAddr(0))
		cfg.Elements = elements
		r = New(tb.K, tb.NewRemoteHierarchy(), cfg)
	} else {
		cfg := DefaultConfig(0)
		cfg.Elements = elements
		r = New(tb.K, tb.NewLocalHierarchy(), cfg)
	}
	var out []Result
	tb.K.At(0, func() { r.Run(func(res []Result) { out = res }) })
	tb.K.Run()
	if out == nil {
		t.Fatal("stream did not complete")
	}
	return out
}

func TestStreamCompletesAndValidates(t *testing.T) {
	res := runStream(t, 1, 1<<14, true)
	if len(res) != 4 {
		t.Fatalf("results = %d", len(res))
	}
	order := []Kernel{Copy, Scale, Add, Triad}
	for i, r := range res {
		if r.Kernel != order[i] {
			t.Errorf("kernel %d = %v", i, r.Kernel)
		}
		if r.BandwidthBps <= 0 || r.Elapsed <= 0 {
			t.Errorf("%v: bw=%v elapsed=%v", r.Kernel, r.BandwidthBps, r.Elapsed)
		}
	}
	// copy/scale move 16B/elem; add/triad 24B/elem.
	if res[0].Bytes != uint64(1<<14*16) || res[3].Bytes != uint64(1<<14*24) {
		t.Errorf("bytes = %d/%d", res[0].Bytes, res[3].Bytes)
	}
}

func TestStreamLocalFasterThanRemote(t *testing.T) {
	local := runStream(t, 1, 1<<14, false)
	remote := runStream(t, 1, 1<<14, true)
	lb, _ := Summary(local)
	rb, _ := Summary(remote)
	if lb <= rb {
		t.Fatalf("local %v B/s not faster than remote %v B/s", lb, rb)
	}
}

func TestStreamBandwidthDropsWithPeriod(t *testing.T) {
	fast := runStream(t, 1, 1<<14, true)
	slow := runStream(t, 100, 1<<14, true)
	fb, fl := Summary(fast)
	sb, sl := Summary(slow)
	if sb >= fb/10 {
		t.Fatalf("PERIOD=100 bandwidth %v vs %v: expected ~30x drop", sb, fb)
	}
	if sl <= fl {
		t.Fatalf("PERIOD=100 latency %v <= %v", sl, fl)
	}
}

func TestStreamSaturatedInjectorRate(t *testing.T) {
	// Under saturation, the injector must release exactly one request per
	// PERIOD cycles: transfers/elapsed ~= 1/(PERIOD*4ns).
	const period = 50
	tb := testbed(period)
	cfg := DefaultConfig(tb.RemoteAddr(0))
	cfg.Elements = 1 << 14
	r := New(tb.K, tb.NewRemoteHierarchy(), cfg)
	tb.K.At(0, func() { r.Run(func([]Result) {}) })
	end := tb.K.Run()
	rate := float64(tb.BorrowerNIC.InjectorTransfers()) / sim.Time(end).Seconds()
	want := 1.0 / (float64(period) * 4e-9)
	if rate < 0.85*want || rate > 1.02*want {
		t.Fatalf("injector rate = %.4g/s, want ~%.4g/s", rate, want)
	}
}

func TestStreamBDPConstant(t *testing.T) {
	bdp := func(period int64) float64 {
		res := runStream(t, period, 1<<14, true)
		bw, lat := Summary(res)
		return bw * lat / 1e6
	}
	a := bdp(25)
	b := bdp(100)
	ratio := a / b
	if ratio < 0.6 || ratio > 1.6 {
		t.Fatalf("BDP not ~constant: %v vs %v", a, b)
	}
	// And in the right regime: window(129) * 128B ≈ 16.5kB.
	if a < 4_000 || a > 40_000 {
		t.Fatalf("BDP = %v B, want ~16.5kB regime", a)
	}
}

func TestStreamValidationCatchesCorruption(t *testing.T) {
	tb := testbed(1)
	cfg := DefaultConfig(tb.RemoteAddr(0))
	cfg.Elements = 1 << 10
	r := New(tb.K, tb.NewRemoteHierarchy(), cfg)
	r.a[5] = 42 // corrupt before run: copy propagates, triad overwrites a.
	if err := r.Check(); err == nil {
		t.Fatal("Check accepted unexpected initial state")
	}
}

func TestStreamConfigValidation(t *testing.T) {
	bad := []Config{
		{Elements: 4, Iterations: 1, Window: 1},
		{Elements: 1 << 12, Iterations: 0, Window: 1},
		{Elements: 1 << 12, Iterations: 1, Window: 0},
		{Elements: 1 << 12, Iterations: 1, Window: 1, BaseAddr: 3},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := PaperConfig(0).Validate(); err != nil {
		t.Error(err)
	}
}

func TestStreamMultiIteration(t *testing.T) {
	tb := testbed(1)
	cfg := DefaultConfig(tb.RemoteAddr(0))
	cfg.Elements = 1 << 12
	cfg.Iterations = 3
	r := New(tb.K, tb.NewRemoteHierarchy(), cfg)
	var out []Result
	tb.K.At(0, func() { r.Run(func(res []Result) { out = res }) })
	tb.K.Run()
	if len(out) != 12 {
		t.Fatalf("results = %d, want 12 (4 kernels x 3 iterations)", len(out))
	}
}

func TestStreamFillsMatchWorkingSet(t *testing.T) {
	// With a cold cache and arrays beyond LLC, each kernel must fill
	// roughly (arrays touched x lines per array) lines.
	res := runStream(t, 1, 1<<14, true)
	linesPerArray := uint64(1 << 14 * 8 / ocapi.CacheLineSize)
	// copy touches 2 arrays.
	if f := res[0].LineFills; f < linesPerArray*2-64 || f > linesPerArray*2+512 {
		t.Errorf("copy fills = %d, want ~%d", f, 2*linesPerArray)
	}
	// add touches 3 arrays.
	if f := res[2].LineFills; f < linesPerArray*3-64 || f > linesPerArray*3+512 {
		t.Errorf("add fills = %d, want ~%d", f, 3*linesPerArray)
	}
}

func TestKernelStrings(t *testing.T) {
	if Copy.String() != "copy" || Triad.String() != "triad" || Kernel(9).String() == "" {
		t.Error("kernel names wrong")
	}
}

var _ = sim.Time(0)
