package inject

import (
	"testing"

	"thymesim/internal/sim"
)

func TestOutageGateBlocksWindow(t *testing.T) {
	g := NewOutageGate([]Window{{Start: 100, Duration: 50}}, 1)
	if n := g.Next(50); n != 50 {
		t.Fatalf("pre-outage Next = %v", n)
	}
	if n := g.Next(120); n != 150 {
		t.Fatalf("mid-outage Next = %v, want 150", n)
	}
	if n := g.Next(150); n != 150 {
		t.Fatalf("post-outage Next = %v", n)
	}
	if g.Blocked() != 1 {
		t.Fatalf("blocked = %d", g.Blocked())
	}
}

func TestOutageGateSequentialWindows(t *testing.T) {
	g := NewOutageGate([]Window{
		{Start: 100, Duration: 10},
		{Start: 105 + 5, Duration: 10}, // starts exactly at first end
	}, 1)
	// A request at 102 skips to 110, which is inside the second window,
	// so it skips to 120.
	if n := g.Next(102); n != 120 {
		t.Fatalf("chained outages Next = %v, want 120", n)
	}
}

func TestOutageGateValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewOutageGate([]Window{{Start: 0, Duration: 0}}, 1) },
		func() {
			NewOutageGate([]Window{
				{Start: 0, Duration: 100},
				{Start: 50, Duration: 10},
			}, 1)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestOutageGateZeroWindows(t *testing.T) {
	g := NewOutageGate(nil, 1)
	for _, q := range []int64{0, 7, 1000} {
		if n := g.Next(sim.Time(q)); n != sim.Time(q) {
			t.Fatalf("Next(%d) = %v with no windows", q, n)
		}
	}
	if g.Blocked() != 0 {
		t.Fatalf("blocked = %d with no windows", g.Blocked())
	}
	g.Commit(0)
	if n := g.Next(0); n != 1 {
		t.Fatalf("minGap not honoured: Next = %v", n)
	}
}

func TestOutageGateBackToBackBoundary(t *testing.T) {
	// Second window starts exactly where the first ends: a transfer inside
	// the first must skip both, counting ONE blocked attempt for the call.
	g := NewOutageGate([]Window{
		{Start: 100, Duration: 20}, // [100,120)
		{Start: 120, Duration: 30}, // [120,150)
	}, 1)
	if n := g.Next(110); n != 150 {
		t.Fatalf("Next(110) = %v, want 150", n)
	}
	if g.Blocked() != 1 {
		t.Fatalf("blocked = %d, want 1 (one attempt, two windows crossed)", g.Blocked())
	}
}

func TestOutageGateTransferAtWindowEnd(t *testing.T) {
	// Windows are half-open [Start, End): a transfer landing exactly at
	// End proceeds unblocked.
	w := Window{Start: 100, Duration: 50}
	g := NewOutageGate([]Window{w}, 1)
	if n := g.Next(w.End()); n != w.End() {
		t.Fatalf("Next(End) = %v, want %v", n, w.End())
	}
	if g.Blocked() != 0 {
		t.Fatalf("blocked = %d for a transfer at the boundary", g.Blocked())
	}
	// ... and one landing at End-1 is pushed exactly to End. Queries are
	// monotone per the gate contract, so use a fresh gate.
	g2 := NewOutageGate([]Window{w}, 1)
	if n := g2.Next(w.End() - 1); n != w.End() {
		t.Fatalf("Next(End-1) = %v, want %v", n, w.End())
	}
	if g2.Blocked() != 1 {
		t.Fatalf("blocked = %d", g2.Blocked())
	}
}

func TestOutageGateCursorMonotoneScan(t *testing.T) {
	// With many windows, repeated queries after the last window must not
	// re-scan (observable: Blocked stays fixed and results are exact).
	var ws []Window
	for i := 0; i < 64; i++ {
		ws = append(ws, Window{Start: sim.Time(i * 100), Duration: 10})
	}
	g := NewOutageGate(ws, 1)
	for i := 0; i < 64; i++ {
		at := sim.Time(i * 100)
		if n := g.Next(at + 5); n != at+10 {
			t.Fatalf("window %d: Next = %v, want %v", i, n, at+10)
		}
	}
	if g.Blocked() != 64 {
		t.Fatalf("blocked = %d, want 64", g.Blocked())
	}
	if n := g.Next(1_000_000); n != 1_000_000 {
		t.Fatalf("post-windows Next = %v", n)
	}
	if g.Blocked() != 64 {
		t.Fatalf("post-windows blocked = %d", g.Blocked())
	}
}
