package inject

import (
	"testing"
)

func TestOutageGateBlocksWindow(t *testing.T) {
	g := NewOutageGate([]Window{{Start: 100, Duration: 50}}, 1)
	if n := g.Next(50); n != 50 {
		t.Fatalf("pre-outage Next = %v", n)
	}
	if n := g.Next(120); n != 150 {
		t.Fatalf("mid-outage Next = %v, want 150", n)
	}
	if n := g.Next(150); n != 150 {
		t.Fatalf("post-outage Next = %v", n)
	}
	if g.Blocked() != 1 {
		t.Fatalf("blocked = %d", g.Blocked())
	}
}

func TestOutageGateSequentialWindows(t *testing.T) {
	g := NewOutageGate([]Window{
		{Start: 100, Duration: 10},
		{Start: 105 + 5, Duration: 10}, // starts exactly at first end
	}, 1)
	// A request at 102 skips to 110, which is inside the second window,
	// so it skips to 120.
	if n := g.Next(102); n != 120 {
		t.Fatalf("chained outages Next = %v, want 120", n)
	}
}

func TestOutageGateValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewOutageGate([]Window{{Start: 0, Duration: 0}}, 1) },
		func() {
			NewOutageGate([]Window{
				{Start: 0, Duration: 100},
				{Start: 50, Duration: 10},
			}, 1)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
