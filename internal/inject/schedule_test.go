package inject

import (
	"fmt"
	"testing"

	"thymesim/internal/sim"
)

// logTarget records each fault action with its firing time.
type logTarget struct {
	k   *sim.Kernel
	log []string
}

func (t *logTarget) CrashLender() { t.log = append(t.log, fmt.Sprintf("crash@%v", t.k.Now())) }
func (t *logTarget) RestoreLender(wipe bool) {
	t.log = append(t.log, fmt.Sprintf("restore(wipe=%t)@%v", wipe, t.k.Now()))
}
func (t *logTarget) SetLenderSlowdown(f float64) {
	t.log = append(t.log, fmt.Sprintf("slowdown(%g)@%v", f, t.k.Now()))
}
func (t *logTarget) ForceBurstErrors(active bool) {
	t.log = append(t.log, fmt.Sprintf("burst(%t)@%v", active, t.k.Now()))
}

func TestScheduleValidate(t *testing.T) {
	us := func(n int) sim.Time { return sim.Time(n) * sim.Time(sim.Microsecond) }
	cases := []struct {
		name string
		s    Schedule
		ok   bool
	}{
		{"empty", Schedule{}, false},
		{"negative time", Schedule{{At: -1, Op: OpLenderCrash}, {At: us(1), Op: OpLenderRestore}}, false},
		{"restore without crash", Schedule{{At: us(1), Op: OpLenderRestore}}, false},
		{"crash without restore", Schedule{{At: us(1), Op: OpLenderCrash}}, false},
		{"double crash", Schedule{
			{At: us(1), Op: OpLenderCrash}, {At: us(2), Op: OpLenderCrash},
			{At: us(3), Op: OpLenderRestore}}, false},
		{"burst end without start", Schedule{{At: us(1), Op: OpBurstEnd}}, false},
		{"burst start unclosed", Schedule{{At: us(1), Op: OpBurstStart}}, false},
		{"brownout factor below one", Schedule{{At: us(1), Op: OpBrownout, Factor: 0.5}}, false},
		{"paired crash", Schedule{
			{At: us(1), Op: OpLenderCrash},
			{At: us(2), Op: OpLenderRestore, Wipe: true}}, true},
		{"full campaign", Schedule{
			{At: us(1), Op: OpLenderCrash},
			{At: us(2), Op: OpLenderRestore},
			{At: us(3), Op: OpBurstStart},
			{At: us(4), Op: OpBurstEnd},
			{At: us(5), Op: OpBrownout, Factor: 4},
			{At: us(6), Op: OpBrownout, Factor: 1}}, true},
	}
	for _, tc := range cases {
		err := tc.s.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: rejected: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestScheduleNeedsBurstGate(t *testing.T) {
	plain := Schedule{{At: 0, Op: OpLenderCrash}, {At: 1, Op: OpLenderRestore}}
	if plain.NeedsBurstGate() {
		t.Error("crash-only schedule claims a burst gate")
	}
	bursty := Schedule{{At: 0, Op: OpBurstStart}, {At: 1, Op: OpBurstEnd}}
	if !bursty.NeedsBurstGate() {
		t.Error("burst schedule denies needing a gate")
	}
}

// TestScheduleFaultsFiresInOrder arms a deliberately out-of-order event
// list and checks each action fires against the target at its scheduled
// instant, in time order.
func TestScheduleFaultsFiresInOrder(t *testing.T) {
	k := sim.NewKernel()
	tgt := &logTarget{k: k}
	us := func(n int) sim.Time { return sim.Time(n) * sim.Time(sim.Microsecond) }
	s := Schedule{
		{At: us(5), Op: OpBrownout, Factor: 4},
		{At: us(1), Op: OpLenderCrash},
		{At: us(7), Op: OpBrownout, Factor: 1},
		{At: us(3), Op: OpLenderRestore, Wipe: true},
		{At: us(4), Op: OpBurstStart},
		{At: us(6), Op: OpBurstEnd},
	}
	if err := ScheduleFaults(k, tgt, s); err != nil {
		t.Fatal(err)
	}
	k.Run()
	want := []string{
		"crash@1us",
		"restore(wipe=true)@3us",
		"burst(true)@4us",
		"slowdown(4)@5us",
		"burst(false)@6us",
		"slowdown(1)@7us",
	}
	if len(tgt.log) != len(want) {
		t.Fatalf("fired %d events, want %d: %v", len(tgt.log), len(want), tgt.log)
	}
	for i := range want {
		if tgt.log[i] != want[i] {
			t.Fatalf("event %d = %q, want %q", i, tgt.log[i], want[i])
		}
	}
}

// TestScheduleFaultsRejectsInvalid pins that arming validates first.
func TestScheduleFaultsRejectsInvalid(t *testing.T) {
	k := sim.NewKernel()
	tgt := &logTarget{k: k}
	if err := ScheduleFaults(k, tgt, Schedule{{At: 0, Op: OpLenderCrash}}); err == nil {
		t.Fatal("unpaired crash armed without error")
	}
	k.Run()
	if len(tgt.log) != 0 {
		t.Fatalf("invalid schedule still fired: %v", tgt.log)
	}
}
