// Gilbert–Elliott bursty bit-error model. The iid BitErrorGate spreads
// corruption uniformly, but real marginal links err in bursts: a SerDes
// losing lock, a connector vibrating, an optical module heating up. The
// classic two-state Markov model captures that — a Good state with a low
// (often zero) bit error rate and a Bad state with a high one, with
// geometric sojourn times in each — and is the standard way to make an
// ARQ layer face correlated loss instead of conveniently independent
// errors.
package inject

import (
	"fmt"
	"math"

	"thymesim/internal/axis"
	"thymesim/internal/sim"
)

// GilbertElliottConfig parameterizes the two-state burst-error chain.
type GilbertElliottConfig struct {
	// PGoodBad is the per-beat probability of transitioning Good -> Bad;
	// the mean good sojourn is 1/PGoodBad beats.
	PGoodBad float64
	// PBadGood is the per-beat probability of transitioning Bad -> Good;
	// the mean burst length is 1/PBadGood beats.
	PBadGood float64
	// BERGood and BERBad are the per-bit corruption probabilities in each
	// state (Good is typically 0 or tiny, Bad is large).
	BERGood float64
	BERBad  float64
}

// Validate checks the configuration.
func (c GilbertElliottConfig) Validate() error {
	if c.PGoodBad < 0 || c.PGoodBad > 1 {
		return fmt.Errorf("inject: P(good->bad) %g outside [0,1]", c.PGoodBad)
	}
	if c.PBadGood <= 0 || c.PBadGood > 1 {
		return fmt.Errorf("inject: P(bad->good) %g outside (0,1]", c.PBadGood)
	}
	if c.BERGood < 0 || c.BERGood >= 1 {
		return fmt.Errorf("inject: good-state BER %g outside [0,1)", c.BERGood)
	}
	if c.BERBad < 0 || c.BERBad >= 1 {
		return fmt.Errorf("inject: bad-state BER %g outside [0,1)", c.BERBad)
	}
	return nil
}

// DefaultGilbertElliottConfig is a clean link with rare, vicious bursts:
// one burst roughly every 2000 beats, ~50 beats long, corrupting most
// packets while it lasts.
func DefaultGilbertElliottConfig() GilbertElliottConfig {
	return GilbertElliottConfig{
		PGoodBad: 1.0 / 2000,
		PBadGood: 1.0 / 50,
		BERGood:  0,
		BERBad:   1e-3,
	}
}

// GilbertElliottGate corrupts transfers with a bursty, two-state bit error
// process. Each judged beat first advances the Markov chain, then flips at
// least one bit with probability 1-(1-BER_state)^bits. Force pins the
// chain in the Bad state for scheduled burst-error windows.
type GilbertElliottGate struct {
	inner axis.Gate
	cfg   GilbertElliottConfig
	rng   *sim.Rand

	bad    bool
	forced bool

	judged    uint64
	corrupted uint64
	badBeats  uint64
	bursts    uint64
}

// NewGilbertElliottGate wraps inner (nil = ungated) with the burst-error
// chain, starting in the Good state.
func NewGilbertElliottGate(inner axis.Gate, cfg GilbertElliottConfig, rng *sim.Rand) *GilbertElliottGate {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if rng == nil {
		panic("inject: nil rng")
	}
	return &GilbertElliottGate{inner: innerOrPass(inner), cfg: cfg, rng: rng}
}

// Config returns the configured chain parameters.
func (g *GilbertElliottGate) Config() GilbertElliottConfig { return g.cfg }

// Corrupted returns how many beats this gate damaged.
func (g *GilbertElliottGate) Corrupted() uint64 { return g.corrupted }

// Judged returns how many beats passed through the fault model.
func (g *GilbertElliottGate) Judged() uint64 { return g.judged }

// BadBeats returns how many judged beats saw the Bad state.
func (g *GilbertElliottGate) BadBeats() uint64 { return g.badBeats }

// Bursts returns how many Good -> Bad transitions occurred (forced
// windows count once on entry).
func (g *GilbertElliottGate) Bursts() uint64 { return g.bursts }

// Bad reports whether the chain currently sits in the Bad state.
func (g *GilbertElliottGate) Bad() bool { return g.bad || g.forced }

// Force pins the chain in the Bad state (scheduled burst-error window) or
// releases it back to its own dynamics. Releasing returns to Good: the
// window is over.
func (g *GilbertElliottGate) Force(bad bool) {
	if bad && !g.Bad() {
		g.bursts++
	}
	g.forced = bad
	if !bad {
		g.bad = false
	}
}

// Next implements axis.Gate.
func (g *GilbertElliottGate) Next(now sim.Time) sim.Time { return g.inner.Next(now) }

// Commit implements axis.Gate.
func (g *GilbertElliottGate) Commit(t sim.Time) { g.inner.Commit(t) }

// Fault implements axis.Faulter: advance the chain one beat, then corrupt
// with the current state's BER. A drop verdict from the inner gate wins —
// a beat that never reaches the far side cannot also be corrupted.
func (g *GilbertElliottGate) Fault(t sim.Time, b axis.Beat) axis.FaultAction {
	g.judged++
	if !g.forced {
		if g.bad {
			if g.rng.Float64() < g.cfg.PBadGood {
				g.bad = false
			}
		} else if g.rng.Float64() < g.cfg.PGoodBad {
			g.bad = true
			g.bursts++
		}
	}
	in := innerFault(g.inner, t, b)
	if in == axis.FaultDrop {
		return in
	}
	ber := g.cfg.BERGood
	if g.Bad() {
		g.badBeats++
		ber = g.cfg.BERBad
	}
	if ber > 0 {
		bits := float64(8 * b.Bytes)
		if g.rng.Float64() < 1-math.Pow(1-ber, bits) {
			g.corrupted++
			return axis.FaultCorrupt
		}
	}
	return in
}
