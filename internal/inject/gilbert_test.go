package inject

import (
	"testing"

	"thymesim/internal/axis"
	"thymesim/internal/sim"
)

func TestGilbertElliottValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*GilbertElliottConfig)
	}{
		{"negative p(good->bad)", func(c *GilbertElliottConfig) { c.PGoodBad = -0.1 }},
		{"p(good->bad) above one", func(c *GilbertElliottConfig) { c.PGoodBad = 1.5 }},
		{"zero p(bad->good)", func(c *GilbertElliottConfig) { c.PBadGood = 0 }},
		{"good BER at one", func(c *GilbertElliottConfig) { c.BERGood = 1 }},
		{"negative bad BER", func(c *GilbertElliottConfig) { c.BERBad = -1e-3 }},
	}
	for _, tc := range cases {
		cfg := DefaultGilbertElliottConfig()
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if err := DefaultGilbertElliottConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

// TestGilbertElliottStationaryFraction checks the chain spends roughly
// PGoodBad/(PGoodBad+PBadGood) of its beats in Bad.
func TestGilbertElliottStationaryFraction(t *testing.T) {
	cfg := GilbertElliottConfig{PGoodBad: 0.02, PBadGood: 0.08, BERGood: 0, BERBad: 0.5}
	g := NewGilbertElliottGate(nil, cfg, sim.NewRand(7))
	const n = 200000
	for i := 0; i < n; i++ {
		g.Fault(sim.Time(i), beat(64))
	}
	frac := float64(g.BadBeats()) / float64(g.Judged())
	want := cfg.PGoodBad / (cfg.PGoodBad + cfg.PBadGood) // 0.2
	if frac < want*0.9 || frac > want*1.1 {
		t.Fatalf("bad fraction %.3f, want ~%.3f", frac, want)
	}
	if g.Bursts() == 0 {
		t.Fatal("no bursts counted")
	}
	// Mean burst length ~ 1/PBadGood beats.
	mean := float64(g.BadBeats()) / float64(g.Bursts())
	if mean < 0.8/cfg.PBadGood || mean > 1.2/cfg.PBadGood {
		t.Fatalf("mean burst length %.1f, want ~%.1f", mean, 1/cfg.PBadGood)
	}
}

// TestGilbertElliottGoodStateClean pins that BERGood=0 never corrupts
// outside a burst.
func TestGilbertElliottGoodStateClean(t *testing.T) {
	cfg := GilbertElliottConfig{PGoodBad: 0, PBadGood: 1, BERGood: 0, BERBad: 0.5}
	g := NewGilbertElliottGate(nil, cfg, sim.NewRand(1))
	for i := 0; i < 10000; i++ {
		if a := g.Fault(sim.Time(i), beat(256)); a != axis.FaultNone {
			t.Fatalf("beat %d faulted (%v) with the chain pinned Good", i, a)
		}
	}
	if g.Corrupted() != 0 || g.BadBeats() != 0 {
		t.Fatalf("corrupted=%d badBeats=%d", g.Corrupted(), g.BadBeats())
	}
}

// TestGilbertElliottForce pins the scheduled burst-window semantics.
func TestGilbertElliottForce(t *testing.T) {
	cfg := GilbertElliottConfig{PGoodBad: 0, PBadGood: 1, BERGood: 0, BERBad: 0.9}
	g := NewGilbertElliottGate(nil, cfg, sim.NewRand(3))
	if g.Bad() {
		t.Fatal("starts Bad")
	}
	g.Force(true)
	if !g.Bad() || g.Bursts() != 1 {
		t.Fatalf("forced: bad=%t bursts=%d", g.Bad(), g.Bursts())
	}
	// Re-forcing an active window is not a new burst.
	g.Force(true)
	if g.Bursts() != 1 {
		t.Fatalf("re-force counted a burst: %d", g.Bursts())
	}
	corrupt := 0
	const n = 2000
	for i := 0; i < n; i++ {
		// PBadGood=1 would exit immediately if the pin were ignored.
		if g.Fault(sim.Time(i), beat(64)) == axis.FaultCorrupt {
			corrupt++
		}
	}
	if g.BadBeats() != n {
		t.Fatalf("pinned window judged %d/%d beats Bad", g.BadBeats(), n)
	}
	// BER 0.9 over 512 bits corrupts essentially every beat.
	if corrupt < n*9/10 {
		t.Fatalf("only %d/%d corrupted inside the window", corrupt, n)
	}
	g.Force(false)
	if g.Bad() {
		t.Fatal("release did not return to Good")
	}
	before := g.Corrupted()
	for i := 0; i < 1000; i++ {
		g.Fault(sim.Time(n+i), beat(64))
	}
	if g.Corrupted() != before {
		t.Fatal("corruption continued after the window closed")
	}
}

// alwaysDrop is an inner gate whose fault model discards every beat.
type alwaysDrop struct{}

func (alwaysDrop) Next(now sim.Time) sim.Time                 { return now }
func (alwaysDrop) Commit(sim.Time)                            {}
func (alwaysDrop) Fault(sim.Time, axis.Beat) axis.FaultAction { return axis.FaultDrop }

// TestGilbertElliottDropWins pins that an inner drop verdict suppresses
// corruption: a beat that never arrives cannot also be corrupted.
func TestGilbertElliottDropWins(t *testing.T) {
	cfg := GilbertElliottConfig{PGoodBad: 1, PBadGood: 0.01, BERGood: 0.9, BERBad: 0.9}
	g := NewGilbertElliottGate(alwaysDrop{}, cfg, sim.NewRand(6))
	for i := 0; i < 100; i++ {
		if a := g.Fault(sim.Time(i), beat(64)); a != axis.FaultDrop {
			t.Fatalf("beat %d: %v, want drop", i, a)
		}
	}
	if g.Corrupted() != 0 {
		t.Fatalf("corrupted %d dropped beats", g.Corrupted())
	}
}

// TestGilbertElliottDeterminism: same seed, same corruption pattern.
func TestGilbertElliottDeterminism(t *testing.T) {
	run := func() []axis.FaultAction {
		g := NewGilbertElliottGate(nil, DefaultGilbertElliottConfig(), sim.NewRand(42))
		out := make([]axis.FaultAction, 50000)
		for i := range out {
			out[i] = g.Fault(sim.Time(i), beat(64))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("beat %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
}
