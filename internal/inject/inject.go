// Package inject implements the paper's delay-injection framework.
//
// The core artifact is PeriodGate, a faithful transaction-level model of
// the FPGA module the paper inserts between the routing and multiplexer
// blocks of the ThymesisFlow compute-node egress. The hardware keeps VALID
// unchanged and rewrites READY as
//
//	READY_NEW = READY_OLD && (COUNTER % PERIOD == 0)     (Eq. 1)
//
// where COUNTER counts FPGA clock cycles since system start: a transfer may
// complete only on cycles that lie on the PERIOD grid, i.e. at most one
// transfer per PERIOD cycles, aligned to multiples of PERIOD.
//
// The package also provides the paper's stated future-work extension
// (§VII): injecting delays drawn from distributions rather than a fixed
// grid, including bursty Gilbert–Elliott behaviour and trace replay.
package inject

import (
	"fmt"
	"math"

	"thymesim/internal/sim"
)

// DefaultFPGACycle is the AlphaData 9V3 / ThymesisFlow clock period used by
// the paper's delay figures: 250 MHz => 4 ns.
const DefaultFPGACycle = 4 * sim.Nanosecond

// PeriodGate implements Eq. 1 on a simulated AXI4-Stream stage. It permits
// at most one transfer per PERIOD FPGA cycles, at instants aligned to the
// PERIOD grid. PERIOD = 1 passes every cycle through (vanilla behaviour).
type PeriodGate struct {
	period   int64
	cycle    sim.Duration
	slot     sim.Duration // period * cycle
	lastSlot int64        // index of last slot used; -1 initially
}

// NewPeriodGate returns a gate with the given PERIOD in FPGA cycles of the
// given cycle time.
func NewPeriodGate(period int64, cycle sim.Duration) *PeriodGate {
	if period < 1 {
		panic("inject: PERIOD must be >= 1")
	}
	if cycle <= 0 {
		panic("inject: cycle must be positive")
	}
	return &PeriodGate{period: period, cycle: cycle, slot: sim.Duration(period) * cycle, lastSlot: -1}
}

// Period returns the configured PERIOD.
func (g *PeriodGate) Period() int64 { return g.period }

// SlotInterval returns the time between permitted transfer instants.
func (g *PeriodGate) SlotInterval() sim.Duration { return g.slot }

// Next returns the earliest instant >= now on the PERIOD grid whose slot has
// not been used yet.
func (g *PeriodGate) Next(now sim.Time) sim.Time {
	idx := int64(now) / int64(g.slot)
	if sim.Time(idx)*sim.Time(g.slot) < now {
		idx++ // align up
	}
	if idx <= g.lastSlot {
		idx = g.lastSlot + 1
	}
	return sim.Time(idx) * sim.Time(g.slot)
}

// Commit marks the slot containing t as consumed.
func (g *PeriodGate) Commit(t sim.Time) {
	idx := int64(t) / int64(g.slot)
	if sim.Time(idx)*sim.Time(g.slot) != t {
		panic(fmt.Sprintf("inject: commit at %v off the PERIOD grid (slot %v)", t, g.slot))
	}
	if idx <= g.lastSlot {
		panic("inject: slot double-committed")
	}
	g.lastSlot = idx
}

// Dist is a distribution of non-negative delays.
type Dist interface {
	// Draw samples one delay.
	Draw(r *sim.Rand) sim.Duration
	// Mean returns the distribution mean, used for reporting.
	Mean() sim.Duration
	// Name describes the distribution for reports.
	Name() string
}

// Constant is a degenerate distribution.
type Constant struct{ D sim.Duration }

// Draw returns the constant.
func (c Constant) Draw(*sim.Rand) sim.Duration { return c.D }

// Mean returns the constant.
func (c Constant) Mean() sim.Duration { return c.D }

// Name implements Dist.
func (c Constant) Name() string { return fmt.Sprintf("constant(%v)", c.D) }

// Uniform is uniform on [Lo, Hi].
type Uniform struct{ Lo, Hi sim.Duration }

// Draw samples uniformly.
func (u Uniform) Draw(r *sim.Rand) sim.Duration {
	if u.Hi <= u.Lo {
		return u.Lo
	}
	return u.Lo + sim.Duration(r.Int63n(int64(u.Hi-u.Lo)+1))
}

// Mean returns (Lo+Hi)/2.
func (u Uniform) Mean() sim.Duration { return (u.Lo + u.Hi) / 2 }

// Name implements Dist.
func (u Uniform) Name() string { return fmt.Sprintf("uniform[%v,%v]", u.Lo, u.Hi) }

// Exponential has the given mean.
type Exponential struct{ MeanD sim.Duration }

// Draw samples an exponential variate.
func (e Exponential) Draw(r *sim.Rand) sim.Duration {
	return sim.Duration(float64(e.MeanD) * r.ExpFloat64())
}

// Mean returns the configured mean.
func (e Exponential) Mean() sim.Duration { return e.MeanD }

// Name implements Dist.
func (e Exponential) Name() string { return fmt.Sprintf("exp(mean=%v)", e.MeanD) }

// LogNormal has log-space parameters Mu (of a delay measured in
// picoseconds) and Sigma.
type LogNormal struct {
	Mu    float64
	Sigma float64
}

// LogNormalFromMedian builds a LogNormal with the given median delay and
// log-space sigma.
func LogNormalFromMedian(median sim.Duration, sigma float64) LogNormal {
	return LogNormal{Mu: math.Log(float64(median)), Sigma: sigma}
}

// Draw samples a lognormal variate.
func (l LogNormal) Draw(r *sim.Rand) sim.Duration {
	return sim.Duration(math.Exp(l.Mu + l.Sigma*r.NormFloat64()))
}

// Mean returns exp(mu + sigma^2/2).
func (l LogNormal) Mean() sim.Duration {
	return sim.Duration(math.Exp(l.Mu + l.Sigma*l.Sigma/2))
}

// Name implements Dist.
func (l LogNormal) Name() string { return fmt.Sprintf("lognormal(mu=%.3g,sigma=%.3g)", l.Mu, l.Sigma) }

// Pareto is a bounded-minimum heavy-tailed distribution with shape Alpha
// (> 1 for finite mean) and scale Xm (minimum delay).
type Pareto struct {
	Xm    sim.Duration
	Alpha float64
}

// Draw samples a Pareto variate.
func (p Pareto) Draw(r *sim.Rand) sim.Duration {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return sim.Duration(float64(p.Xm) / math.Pow(u, 1/p.Alpha))
}

// Mean returns alpha*xm/(alpha-1) for alpha > 1, else a very large value.
func (p Pareto) Mean() sim.Duration {
	if p.Alpha <= 1 {
		return sim.Duration(math.MaxInt64 / 2)
	}
	return sim.Duration(p.Alpha * float64(p.Xm) / (p.Alpha - 1))
}

// Name implements Dist.
func (p Pareto) Name() string { return fmt.Sprintf("pareto(xm=%v,alpha=%.3g)", p.Xm, p.Alpha) }

// DistGate spaces successive transfers by random draws from a distribution:
// after a transfer commits at t, the next may proceed no earlier than
// t + Draw(). This is the §VII "delays according to a distribution"
// extension.
type DistGate struct {
	dist    Dist
	rng     *sim.Rand
	readyAt sim.Time
	minGap  sim.Duration
	draws   uint64
}

// NewDistGate returns a gate drawing inter-transfer gaps from dist. minGap
// (use the FPGA cycle) lower-bounds the spacing like the physical pipeline
// would.
func NewDistGate(dist Dist, minGap sim.Duration, rng *sim.Rand) *DistGate {
	if dist == nil {
		panic("inject: nil distribution")
	}
	if rng == nil {
		panic("inject: nil rng")
	}
	return &DistGate{dist: dist, rng: rng, minGap: minGap}
}

// Draws returns the number of committed transfers.
func (g *DistGate) Draws() uint64 { return g.draws }

// Next implements axis.Gate.
func (g *DistGate) Next(now sim.Time) sim.Time {
	if g.readyAt > now {
		return g.readyAt
	}
	return now
}

// Commit implements axis.Gate.
func (g *DistGate) Commit(t sim.Time) {
	gap := g.dist.Draw(g.rng)
	if gap < g.minGap {
		gap = g.minGap
	}
	g.readyAt = t.Add(gap)
	g.draws++
}

// GilbertElliott alternates between a "good" state with low injected delay
// and a "bad" (congested/repairing) state with high delay. Transitions are
// evaluated per transfer with the given probabilities, modelling bursty
// network pathologies at short timescales.
type GilbertElliott struct {
	good, bad   Dist
	pGoodToBad  float64
	pBadToGood  float64
	rng         *sim.Rand
	inBad       bool
	readyAt     sim.Time
	minGap      sim.Duration
	badPeriods  uint64
	transitions uint64
}

// NewGilbertElliott returns a bursty gate starting in the good state.
func NewGilbertElliott(good, bad Dist, pGoodToBad, pBadToGood float64, minGap sim.Duration, rng *sim.Rand) *GilbertElliott {
	if pGoodToBad < 0 || pGoodToBad > 1 || pBadToGood < 0 || pBadToGood > 1 {
		panic("inject: transition probabilities must be in [0,1]")
	}
	return &GilbertElliott{good: good, bad: bad, pGoodToBad: pGoodToBad, pBadToGood: pBadToGood, minGap: minGap, rng: rng}
}

// InBad reports whether the gate is currently in the bad state.
func (g *GilbertElliott) InBad() bool { return g.inBad }

// Transitions returns the number of state flips so far.
func (g *GilbertElliott) Transitions() uint64 { return g.transitions }

// Next implements axis.Gate.
func (g *GilbertElliott) Next(now sim.Time) sim.Time {
	if g.readyAt > now {
		return g.readyAt
	}
	return now
}

// Commit implements axis.Gate.
func (g *GilbertElliott) Commit(t sim.Time) {
	if g.inBad {
		if g.rng.Float64() < g.pBadToGood {
			g.inBad = false
			g.transitions++
		}
	} else {
		if g.rng.Float64() < g.pGoodToBad {
			g.inBad = true
			g.transitions++
			g.badPeriods++
		}
	}
	d := g.good
	if g.inBad {
		d = g.bad
	}
	gap := d.Draw(g.rng)
	if gap < g.minGap {
		gap = g.minGap
	}
	g.readyAt = t.Add(gap)
}

// TraceGate replays a recorded sequence of inter-transfer gaps, cycling
// when exhausted. It lets experiments reproduce latency traces captured on
// production fabrics.
type TraceGate struct {
	gaps    []sim.Duration
	idx     int
	readyAt sim.Time
	minGap  sim.Duration
}

// NewTraceGate returns a gate replaying gaps (must be non-empty).
func NewTraceGate(gaps []sim.Duration, minGap sim.Duration) *TraceGate {
	if len(gaps) == 0 {
		panic("inject: empty trace")
	}
	for _, g := range gaps {
		if g < 0 {
			panic("inject: negative gap in trace")
		}
	}
	return &TraceGate{gaps: append([]sim.Duration(nil), gaps...), minGap: minGap}
}

// Next implements axis.Gate.
func (g *TraceGate) Next(now sim.Time) sim.Time {
	if g.readyAt > now {
		return g.readyAt
	}
	return now
}

// Commit implements axis.Gate.
func (g *TraceGate) Commit(t sim.Time) {
	gap := g.gaps[g.idx]
	g.idx = (g.idx + 1) % len(g.gaps)
	if gap < g.minGap {
		gap = g.minGap
	}
	g.readyAt = t.Add(gap)
}
