package inject

import (
	"math"
	"testing"
	"testing/quick"

	"thymesim/internal/axis"
	"thymesim/internal/sim"
)

func TestPeriodGateEquationOne(t *testing.T) {
	// PERIOD=5, cycle=4ns: transfers only at multiples of 20ns, one each.
	g := NewPeriodGate(5, DefaultFPGACycle)
	if g.SlotInterval() != 20*sim.Nanosecond {
		t.Fatalf("slot = %v", g.SlotInterval())
	}
	if n := g.Next(0); n != 0 {
		t.Fatalf("Next(0) = %v, want 0", n)
	}
	g.Commit(0)
	// Same slot consumed: must advance to 20ns.
	if n := g.Next(0); n != sim.Time(20*sim.Nanosecond) {
		t.Fatalf("Next after commit = %v, want 20ns", n)
	}
	// Mid-slot instant aligns up.
	if n := g.Next(sim.Time(25 * sim.Nanosecond)); n != sim.Time(40*sim.Nanosecond) {
		t.Fatalf("Next(25ns) = %v, want 40ns", n)
	}
}

func TestPeriodGatePeriodOnePassesEveryCycle(t *testing.T) {
	g := NewPeriodGate(1, DefaultFPGACycle)
	at := sim.Time(0)
	for i := 0; i < 10; i++ {
		n := g.Next(at)
		if n != at {
			t.Fatalf("iteration %d: Next(%v) = %v (PERIOD=1 must pass at cycle grid)", i, at, n)
		}
		g.Commit(n)
		at = n.Add(DefaultFPGACycle)
	}
}

func TestPeriodGateCommitOffGridPanics(t *testing.T) {
	g := NewPeriodGate(5, DefaultFPGACycle)
	defer func() {
		if recover() == nil {
			t.Error("off-grid commit did not panic")
		}
	}()
	g.Commit(sim.Time(3))
}

func TestPeriodGateDoubleCommitPanics(t *testing.T) {
	g := NewPeriodGate(5, DefaultFPGACycle)
	g.Commit(0)
	defer func() {
		if recover() == nil {
			t.Error("double commit did not panic")
		}
	}()
	g.Commit(0)
}

func TestPeriodGateBadArgsPanic(t *testing.T) {
	for _, fn := range []func(){
		func() { NewPeriodGate(0, DefaultFPGACycle) },
		func() { NewPeriodGate(5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: for any PERIOD and any ask sequence, committed instants are
// strictly increasing multiples of PERIOD*cycle with at most one commit per
// slot.
func TestPeriodGateSlotProperty(t *testing.T) {
	f := func(period8 uint8, asks []uint16) bool {
		period := int64(period8%100) + 1
		g := NewPeriodGate(period, DefaultFPGACycle)
		slot := int64(g.SlotInterval())
		var last sim.Time = -1
		now := sim.Time(0)
		for _, a := range asks {
			now = now.Add(sim.Duration(a))
			n := g.Next(now)
			if n < now {
				return false
			}
			if int64(n)%slot != 0 {
				return false
			}
			if n <= last {
				return false
			}
			g.Commit(n)
			last = n
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Integration: a pump gated by PERIOD drains a backlog at exactly one beat
// per PERIOD cycles — the saturated-throughput behaviour behind Fig. 3.
func TestPeriodGateThroughputThroughPump(t *testing.T) {
	const period = 10
	k := sim.NewKernel()
	in := axis.NewFIFO("in", 256)
	out := axis.NewFIFO("out", 256)
	g := NewPeriodGate(period, DefaultFPGACycle)
	axis.NewPump(k, in, out, DefaultFPGACycle, g)
	const n = 100
	k.At(0, func() {
		for i := 0; i < n; i++ {
			in.Push(axis.Beat{Dest: i})
		}
	})
	end := k.Run()
	if out.Len() != n {
		t.Fatalf("out = %d", out.Len())
	}
	want := sim.Time((n - 1) * period * int(DefaultFPGACycle))
	if end != want {
		t.Fatalf("drained at %v, want %v (1 beat per PERIOD cycles)", end, want)
	}
}

func TestConstantDist(t *testing.T) {
	c := Constant{D: 5 * sim.Microsecond}
	r := sim.NewRand(1)
	if c.Draw(r) != 5*sim.Microsecond || c.Mean() != 5*sim.Microsecond {
		t.Fatal("constant dist wrong")
	}
}

func TestUniformDist(t *testing.T) {
	u := Uniform{Lo: 10, Hi: 20}
	r := sim.NewRand(2)
	var sum float64
	for i := 0; i < 100000; i++ {
		d := u.Draw(r)
		if d < 10 || d > 20 {
			t.Fatalf("out of range: %v", d)
		}
		sum += float64(d)
	}
	if mean := sum / 100000; mean < 14.8 || mean > 15.2 {
		t.Fatalf("uniform mean = %v", mean)
	}
	if u.Mean() != 15 {
		t.Fatalf("Mean() = %v", u.Mean())
	}
}

func TestExponentialDist(t *testing.T) {
	e := Exponential{MeanD: 1000}
	r := sim.NewRand(3)
	var sum float64
	for i := 0; i < 200000; i++ {
		sum += float64(e.Draw(r))
	}
	if mean := sum / 200000; math.Abs(mean-1000) > 30 {
		t.Fatalf("exp mean = %v", mean)
	}
}

func TestLogNormalDist(t *testing.T) {
	l := LogNormalFromMedian(1000, 0.5)
	r := sim.NewRand(4)
	var samples []float64
	for i := 0; i < 50000; i++ {
		samples = append(samples, float64(l.Draw(r)))
	}
	// Median should be near 1000.
	var below int
	for _, s := range samples {
		if s < 1000 {
			below++
		}
	}
	frac := float64(below) / float64(len(samples))
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("median fraction = %v", frac)
	}
	wantMean := 1000 * math.Exp(0.5*0.5/2)
	if got := float64(l.Mean()); math.Abs(got-wantMean) > 1 {
		t.Fatalf("Mean() = %v, want %v", got, wantMean)
	}
}

func TestParetoDist(t *testing.T) {
	p := Pareto{Xm: 100, Alpha: 2.5}
	r := sim.NewRand(5)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		d := p.Draw(r)
		if d < 100 {
			t.Fatalf("Pareto below xm: %v", d)
		}
		sum += float64(d)
	}
	wantMean := 2.5 * 100 / 1.5
	if mean := sum / n; math.Abs(mean-wantMean) > 8 {
		t.Fatalf("pareto mean = %v, want %v", mean, wantMean)
	}
	if p.Alpha <= 1 {
		t.Fatal("unreachable")
	}
	heavy := Pareto{Xm: 100, Alpha: 0.9}
	if heavy.Mean() < sim.Duration(math.MaxInt64/4) {
		t.Fatal("alpha<=1 mean should be huge")
	}
}

func TestDistGateSpacing(t *testing.T) {
	g := NewDistGate(Constant{D: 100}, 10, sim.NewRand(6))
	if n := g.Next(0); n != 0 {
		t.Fatalf("first Next = %v", n)
	}
	g.Commit(0)
	if n := g.Next(0); n != 100 {
		t.Fatalf("spaced Next = %v, want 100", n)
	}
	g.Commit(100)
	if g.Draws() != 2 {
		t.Fatalf("draws = %d", g.Draws())
	}
	// minGap floors tiny draws.
	g2 := NewDistGate(Constant{D: 1}, 50, sim.NewRand(7))
	g2.Commit(0)
	if n := g2.Next(0); n != 50 {
		t.Fatalf("minGap not applied: %v", n)
	}
}

func TestGilbertElliottTransitions(t *testing.T) {
	g := NewGilbertElliott(Constant{D: 10}, Constant{D: 1000}, 0.5, 0.5, 1, sim.NewRand(8))
	var gaps []sim.Duration
	at := sim.Time(0)
	for i := 0; i < 2000; i++ {
		n := g.Next(at)
		g.Commit(n)
		next := g.Next(n)
		gaps = append(gaps, next.Sub(n))
		at = next
	}
	var small, large int
	for _, gp := range gaps {
		switch {
		case gp <= 10:
			small++
		case gp >= 1000:
			large++
		}
	}
	if small == 0 || large == 0 {
		t.Fatalf("GE never visited both states: small=%d large=%d", small, large)
	}
	if g.Transitions() == 0 {
		t.Fatal("no transitions recorded")
	}
}

func TestGilbertElliottStaysGoodWithZeroProb(t *testing.T) {
	g := NewGilbertElliott(Constant{D: 10}, Constant{D: 1000}, 0, 1, 1, sim.NewRand(9))
	at := sim.Time(0)
	for i := 0; i < 100; i++ {
		n := g.Next(at)
		g.Commit(n)
		at = g.Next(n)
	}
	if g.InBad() || g.Transitions() != 0 {
		t.Fatal("entered bad state with p=0")
	}
}

func TestTraceGateReplaysAndCycles(t *testing.T) {
	g := NewTraceGate([]sim.Duration{100, 200, 300}, 1)
	at := sim.Time(0)
	var gaps []sim.Duration
	for i := 0; i < 6; i++ {
		n := g.Next(at)
		g.Commit(n)
		next := g.Next(n)
		gaps = append(gaps, next.Sub(n))
		at = next
	}
	want := []sim.Duration{100, 200, 300, 100, 200, 300}
	for i, w := range want {
		if gaps[i] != w {
			t.Fatalf("gaps = %v, want %v", gaps, want)
		}
	}
}

func TestTraceGateValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewTraceGate(nil, 0) },
		func() { NewTraceGate([]sim.Duration{-1}, 0) },
		func() { NewDistGate(nil, 0, sim.NewRand(1)) },
		func() { NewDistGate(Constant{}, 0, nil) },
		func() { NewGilbertElliott(Constant{}, Constant{}, -0.1, 0.5, 0, sim.NewRand(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestDistNames(t *testing.T) {
	for _, d := range []Dist{
		Constant{D: sim.Duration(sim.Microsecond)},
		Uniform{Lo: 1, Hi: 2},
		Exponential{MeanD: 3},
		LogNormal{Mu: 1, Sigma: 2},
		Pareto{Xm: 4, Alpha: 2},
	} {
		if d.Name() == "" {
			t.Errorf("%T has empty name", d)
		}
	}
}
