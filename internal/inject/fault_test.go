package inject

import (
	"testing"

	"thymesim/internal/axis"
	"thymesim/internal/sim"
)

func beat(bytes int) axis.Beat { return axis.Beat{Bytes: bytes} }

func TestBitErrorGateCorruptionRate(t *testing.T) {
	// BER 1e-4 over 46-byte beats (368 bits): p ~= 1-(1-1e-4)^368 ~= 0.0361.
	g := NewBitErrorGate(nil, 1e-4, sim.NewRand(7))
	const n = 200000
	for i := 0; i < n; i++ {
		g.Fault(0, beat(46))
	}
	got := float64(g.Corrupted()) / n
	if got < 0.030 || got > 0.043 {
		t.Fatalf("corruption rate %g, want ~0.036", got)
	}
	if g.Judged() != n {
		t.Fatalf("judged = %d", g.Judged())
	}
}

func TestBitErrorGateZeroBER(t *testing.T) {
	g := NewBitErrorGate(nil, 0, sim.NewRand(1))
	for i := 0; i < 1000; i++ {
		if g.Fault(0, beat(174)) != axis.FaultNone {
			t.Fatal("BER 0 corrupted a beat")
		}
	}
}

func TestBitErrorGateDelegatesTiming(t *testing.T) {
	inner := NewPeriodGate(10, 1) // 10-unit slot grid
	g := NewBitErrorGate(inner, 1e-6, sim.NewRand(1))
	if got := g.Next(3); got != 10 {
		t.Fatalf("Next(3) = %v, want 10 (inner PERIOD grid)", got)
	}
	g.Commit(10)
	if got := g.Next(10); got != 20 {
		t.Fatalf("Next after commit = %v, want 20", got)
	}
}

func TestDropGateDropRate(t *testing.T) {
	g := NewDropGate(nil, 0.05, sim.NewRand(11))
	const n = 100000
	for i := 0; i < n; i++ {
		g.Fault(0, beat(46))
	}
	got := float64(g.Dropped()) / n
	if got < 0.045 || got > 0.055 {
		t.Fatalf("drop rate %g, want ~0.05", got)
	}
}

func TestFaultGatesCompose(t *testing.T) {
	// Drop over corruption over the PERIOD grid: every beat must be judged
	// by both fault models, and drop must win when both fire.
	rng := sim.NewRand(3)
	ber := NewBitErrorGate(NewPeriodGate(1, sim.Nanosecond), 0.9, rng.Split())
	drop := NewDropGate(ber, 0.5, rng.Split())
	const n = 10000
	drops, corrupts := 0, 0
	for i := 0; i < n; i++ {
		switch drop.Fault(0, beat(46)) {
		case axis.FaultDrop:
			drops++
		case axis.FaultCorrupt:
			corrupts++
		}
	}
	if drops < n/3 || drops > 2*n/3 {
		t.Fatalf("drops = %d / %d", drops, n)
	}
	if corrupts == 0 {
		t.Fatal("inner corruption never surfaced through the drop gate")
	}
	// Exactly the non-dropped beats were judged by the inner BER model.
	if ber.Judged() != uint64(n-drops) {
		t.Fatalf("inner judged = %d, want %d", ber.Judged(), n-drops)
	}
}

func TestFlapGateDeterministicWindows(t *testing.T) {
	mk := func() *FlapGate {
		return NewFlapGate(nil,
			Constant{D: 100 * sim.Nanosecond},
			Constant{D: 30 * sim.Nanosecond},
			sim.NewRand(5))
	}
	a, b := mk(), mk()
	for _, q := range []sim.Time{0, 50, 120, 131, 250, 800, 1200} {
		if ra, rb := a.Next(q), b.Next(q); ra != rb {
			t.Fatalf("Next(%v) nondeterministic: %v vs %v", q, ra, rb)
		}
	}
}

func TestFlapGateBlocksDownPhases(t *testing.T) {
	// Up 100 units, down 30: down phases are [100,130), [230,260), ...
	g := NewFlapGate(nil,
		Constant{D: 100},
		Constant{D: 30},
		sim.NewRand(5))
	if got := g.Next(50); got != 50 {
		t.Fatalf("up-phase Next = %v", got)
	}
	if got := g.Next(sim.Time(110)); got != 130 {
		t.Fatalf("down-phase Next = %v, want 130", got)
	}
	if g.Blocked() != 1 {
		t.Fatalf("blocked = %d", g.Blocked())
	}
	if !g.DownAt(240) {
		t.Fatal("DownAt(240) = false, want down phase [230,260)")
	}
	if g.DownAt(150) {
		t.Fatal("DownAt(150) = true inside an up phase")
	}
	if got := g.Next(245); got != 260 {
		t.Fatalf("second down phase Next = %v, want 260", got)
	}
	if g.Flaps() < 2 {
		t.Fatalf("flaps = %d", g.Flaps())
	}
}

func TestFlapGateIdempotentWithInnerGrid(t *testing.T) {
	// The inner PERIOD grid realigns the post-outage release; Next must
	// still be a fixpoint.
	g := NewFlapGate(NewPeriodGate(7, sim.Nanosecond),
		Constant{D: 40 * sim.Nanosecond},
		Constant{D: 25 * sim.Nanosecond},
		sim.NewRand(9))
	for _, q := range []sim.Time{0, 41, 60, 66, 120, 200, 500} {
		r1 := g.Next(q)
		r2 := g.Next(r1)
		if r1 != r2 {
			t.Fatalf("Next not idempotent at %v: %v then %v", q, r1, r2)
		}
	}
}

func TestFaultGateValidation(t *testing.T) {
	rng := sim.NewRand(1)
	for name, fn := range map[string]func(){
		"negative ber":  func() { NewBitErrorGate(nil, -0.1, rng) },
		"ber one":       func() { NewBitErrorGate(nil, 1, rng) },
		"nil ber rng":   func() { NewBitErrorGate(nil, 0.1, nil) },
		"negative drop": func() { NewDropGate(nil, -0.1, rng) },
		"nil drop rng":  func() { NewDropGate(nil, 0.1, nil) },
		"nil flap dist": func() { NewFlapGate(nil, nil, Constant{D: 1}, rng) },
		"nil flap rng":  func() { NewFlapGate(nil, Constant{D: 1}, Constant{D: 1}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// Pump-level integration: a DropGate on a pump loses beats without
// stalling the pipeline, and the drop counter matches what went missing.
func TestPumpDropsWithFaultGate(t *testing.T) {
	k := sim.NewKernel()
	in := axis.NewFIFO("in", 64)
	out := axis.NewFIFO("out", 64)
	g := NewDropGate(nil, 0.3, sim.NewRand(17))
	p := axis.NewPump(k, in, out, sim.Nanosecond, g)
	const n = 50
	for i := 0; i < n; i++ {
		in.Push(axis.Beat{Bytes: 46})
	}
	k.Run()
	if in.Len() != 0 {
		t.Fatalf("pump stalled with %d beats queued", in.Len())
	}
	if got := out.Len() + int(p.Dropped()); got != n {
		t.Fatalf("forwarded %d + dropped %d != %d", out.Len(), p.Dropped(), n)
	}
	if p.Dropped() == 0 {
		t.Fatal("no drops at p=0.3 over 50 beats")
	}
}

// Pump-level integration: corrupted beats arrive marked.
func TestPumpCorruptsWithFaultGate(t *testing.T) {
	k := sim.NewKernel()
	in := axis.NewFIFO("in", 64)
	out := axis.NewFIFO("out", 64)
	g := NewBitErrorGate(nil, 0.01, sim.NewRand(23))
	p := axis.NewPump(k, in, out, sim.Nanosecond, g)
	const n = 50
	for i := 0; i < n; i++ {
		in.Push(axis.Beat{Bytes: 174})
	}
	k.Run()
	if out.Len() != n {
		t.Fatalf("forwarded %d, want %d (corruption must not drop)", out.Len(), n)
	}
	marked := 0
	for {
		b, ok := out.Pop()
		if !ok {
			break
		}
		if b.Corrupt {
			marked++
		}
	}
	if uint64(marked) != p.Corrupted() || marked == 0 {
		t.Fatalf("marked %d, pump counted %d", marked, p.Corrupted())
	}
}
