// Link-fault injection gates. The paper's introduction motivates delay
// injection with real-world reliability events — transient network faults,
// link repair, contention collapse — but its prototype only models delay.
// The gates in this file model the misbehaviour itself: bit corruption
// (BitErrorGate), silent loss (DropGate), and link flapping (FlapGate).
// Each wraps an inner timing gate, so fault models compose freely with the
// Eq. (1) PERIOD grid or any distribution gate, and every random decision
// draws from an explicitly seeded sim.Rand for reproducible chaos runs.
package inject

import (
	"fmt"
	"math"

	"thymesim/internal/axis"
	"thymesim/internal/sim"
)

// innerOrPass returns g, or the no-op gate when g is nil.
func innerOrPass(g axis.Gate) axis.Gate {
	if g == nil {
		return axis.PassGate{}
	}
	return g
}

// innerFault delegates to the inner gate's fault model, letting fault gates
// stack (e.g. corruption over drop over the PERIOD grid).
func innerFault(g axis.Gate, t sim.Time, b axis.Beat) axis.FaultAction {
	if f, ok := g.(axis.Faulter); ok {
		return f.Fault(t, b)
	}
	return axis.FaultNone
}

// BitErrorGate corrupts transfers with a configurable bit error rate: each
// admitted beat flips at least one bit with probability 1-(1-BER)^bits,
// modelling a marginal link or SerDes. Corrupted beats keep their wire
// size; the receiver's CRC catches them (ocapi marks the packet Corrupt)
// and the lender rejects them with OpNack instead of silently answering.
type BitErrorGate struct {
	inner axis.Gate
	ber   float64
	rng   *sim.Rand

	judged    uint64
	corrupted uint64
}

// NewBitErrorGate wraps inner (nil = ungated) with per-beat corruption at
// the given bit error rate.
func NewBitErrorGate(inner axis.Gate, ber float64, rng *sim.Rand) *BitErrorGate {
	if ber < 0 || ber >= 1 {
		panic(fmt.Sprintf("inject: BER %g outside [0,1)", ber))
	}
	if rng == nil {
		panic("inject: nil rng")
	}
	return &BitErrorGate{inner: innerOrPass(inner), ber: ber, rng: rng}
}

// BER returns the configured bit error rate.
func (g *BitErrorGate) BER() float64 { return g.ber }

// Corrupted returns how many beats this gate damaged.
func (g *BitErrorGate) Corrupted() uint64 { return g.corrupted }

// Judged returns how many beats passed through the fault model.
func (g *BitErrorGate) Judged() uint64 { return g.judged }

// Next implements axis.Gate.
func (g *BitErrorGate) Next(now sim.Time) sim.Time { return g.inner.Next(now) }

// Commit implements axis.Gate.
func (g *BitErrorGate) Commit(t sim.Time) { g.inner.Commit(t) }

// Fault implements axis.Faulter: the beat is corrupted with probability
// 1-(1-BER)^(8*Bytes). A more severe verdict from the inner gate wins.
func (g *BitErrorGate) Fault(t sim.Time, b axis.Beat) axis.FaultAction {
	g.judged++
	in := innerFault(g.inner, t, b)
	if in == axis.FaultDrop {
		return in
	}
	bits := float64(8 * b.Bytes)
	pCorrupt := 1 - math.Pow(1-g.ber, bits)
	if g.rng.Float64() < pCorrupt {
		g.corrupted++
		return axis.FaultCorrupt
	}
	return in
}

// DropGate silently discards transfers with a fixed per-beat probability,
// modelling packet loss the link layer does not retransmit. A dropped
// request neither reaches the lender nor produces a response: recovery is
// the ARQ layer's job (tfnic.ARQ), and without it the transaction hangs
// until a timeout-guarded operation (the attach handshake) gives up.
type DropGate struct {
	inner axis.Gate
	p     float64
	rng   *sim.Rand

	judged  uint64
	dropped uint64
}

// NewDropGate wraps inner (nil = ungated) with per-beat loss probability p.
func NewDropGate(inner axis.Gate, p float64, rng *sim.Rand) *DropGate {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("inject: drop probability %g outside [0,1)", p))
	}
	if rng == nil {
		panic("inject: nil rng")
	}
	return &DropGate{inner: innerOrPass(inner), p: p, rng: rng}
}

// DropProb returns the configured loss probability.
func (g *DropGate) DropProb() float64 { return g.p }

// Dropped returns how many beats this gate discarded.
func (g *DropGate) Dropped() uint64 { return g.dropped }

// Judged returns how many beats passed through the fault model.
func (g *DropGate) Judged() uint64 { return g.judged }

// Next implements axis.Gate.
func (g *DropGate) Next(now sim.Time) sim.Time { return g.inner.Next(now) }

// Commit implements axis.Gate.
func (g *DropGate) Commit(t sim.Time) { g.inner.Commit(t) }

// Fault implements axis.Faulter.
func (g *DropGate) Fault(t sim.Time, b axis.Beat) axis.FaultAction {
	g.judged++
	if g.rng.Float64() < g.p {
		g.dropped++
		return axis.FaultDrop
	}
	return innerFault(g.inner, t, b)
}

// FlapGate generalizes OutageGate to an ongoing up/down renewal process:
// the link alternates between an up phase (durations drawn from Up) and a
// down phase (durations drawn from Down) during which the egress is fully
// blocked, like a cable being reseated or a switch port flapping. Windows
// are generated lazily and deterministically from the gate's own rng, so
// Next stays idempotent as axis.Gate requires.
type FlapGate struct {
	inner    axis.Gate
	up, down Dist
	rng      *sim.Rand

	// horizon is the start of the next (not yet generated) up phase; the
	// generated window list covers [0, horizon).
	windows []Window
	horizon sim.Time
	cursor  int
	blocked uint64
}

// NewFlapGate wraps inner (nil = ungated) with a flap process whose up and
// down phase durations are drawn from the given distributions. The link
// starts up; the first down phase begins after one draw from up.
func NewFlapGate(inner axis.Gate, up, down Dist, rng *sim.Rand) *FlapGate {
	if up == nil || down == nil {
		panic("inject: nil flap distribution")
	}
	if rng == nil {
		panic("inject: nil rng")
	}
	return &FlapGate{inner: innerOrPass(inner), up: up, down: down, rng: rng}
}

// Blocked returns how many transfer attempts landed in a down phase.
func (g *FlapGate) Blocked() uint64 { return g.blocked }

// Flaps returns how many down phases have been generated so far. Phases
// are generated lazily, so this lower-bounds the number the full run will
// experience.
func (g *FlapGate) Flaps() int { return len(g.windows) }

// extendTo generates flap windows until the process covers t.
func (g *FlapGate) extendTo(t sim.Time) {
	for g.horizon <= t {
		up := g.up.Draw(g.rng)
		if up < 1 {
			up = 1 // phases must advance time or generation livelocks
		}
		down := g.down.Draw(g.rng)
		if down < 1 {
			down = 1
		}
		start := g.horizon.Add(up)
		g.windows = append(g.windows, Window{Start: start, Duration: down})
		g.horizon = start.Add(down)
	}
}

// DownAt reports whether the link is in a down phase at t.
func (g *FlapGate) DownAt(t sim.Time) bool {
	g.extendTo(t)
	for i := g.cursor; i < len(g.windows); i++ {
		w := g.windows[i]
		if t < w.Start {
			return false
		}
		if t < w.End() {
			return true
		}
	}
	return false
}

// Next implements axis.Gate: the inner gate's release instant, pushed past
// any down phase it lands in. The loop runs to a fixpoint — the inner
// gate's realignment after an outage may land inside a later down phase —
// so the result is idempotent as the Gate contract requires.
func (g *FlapGate) Next(now sim.Time) sim.Time {
	t := g.inner.Next(now)
	blockedThisCall := false
	for {
		g.extendTo(t)
		moved := false
		for g.cursor < len(g.windows) {
			w := g.windows[g.cursor]
			if w.End() <= t {
				g.cursor++
				continue
			}
			if t < w.Start {
				break
			}
			t = w.End()
			moved = true
			g.extendTo(t)
			g.cursor++
		}
		if !moved {
			break
		}
		blockedThisCall = true
		t = g.inner.Next(t)
	}
	if blockedThisCall {
		g.blocked++
	}
	return t
}

// Commit implements axis.Gate.
func (g *FlapGate) Commit(t sim.Time) { g.inner.Commit(t) }

// Fault implements axis.Faulter by delegating to the inner gate, so flap
// gates stack transparently over corruption and loss models.
func (g *FlapGate) Fault(t sim.Time, b axis.Beat) axis.FaultAction {
	return innerFault(g.inner, t, b)
}
