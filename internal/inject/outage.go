package inject

import (
	"fmt"
	"sort"

	"thymesim/internal/sim"
)

// OutageGate models the reliability failures the paper's introduction
// names (link repair, transient network faults): during each configured
// window the egress is fully blocked — requests queue at the injector —
// and traffic resumes when the window ends. Whether the system survives
// depends on whether any timeout-guarded operation (the attach handshake,
// Fig. 4) spans an outage.
type OutageGate struct {
	windows []Window
	minGap  sim.Duration
	readyAt sim.Time
	// cursor indexes the first window that could still matter: windows
	// before it have ended relative to every instant Next has seen.
	// Queries are monotone (pump time never runs backwards), so scanning
	// restarts there instead of at the head of the list.
	cursor  int
	blocked uint64
}

// Window is one outage interval [Start, Start+Duration).
type Window struct {
	Start    sim.Time
	Duration sim.Duration
}

// End returns the instant the outage lifts.
func (w Window) End() sim.Time { return w.Start.Add(w.Duration) }

// NewOutageGate returns a gate that blocks during the given windows.
// Windows must not overlap; minGap (use the FPGA cycle) lower-bounds
// spacing between transfers outside outages.
func NewOutageGate(windows []Window, minGap sim.Duration) *OutageGate {
	ws := append([]Window(nil), windows...)
	sort.Slice(ws, func(i, j int) bool { return ws[i].Start < ws[j].Start })
	for i, w := range ws {
		if w.Duration <= 0 {
			panic(fmt.Sprintf("inject: outage %d has duration %v", i, w.Duration))
		}
		if i > 0 && ws[i-1].End() > w.Start {
			panic(fmt.Sprintf("inject: outages %d and %d overlap", i-1, i))
		}
	}
	return &OutageGate{windows: ws, minGap: minGap}
}

// Blocked returns how many transfer attempts landed inside an outage.
func (g *OutageGate) Blocked() uint64 { return g.blocked }

// Next implements axis.Gate. One call counts at most one blocked attempt,
// even when the release instant crosses several back-to-back windows.
func (g *OutageGate) Next(now sim.Time) sim.Time {
	t := now
	if g.readyAt > t {
		t = g.readyAt
	}
	blockedThisCall := false
	for g.cursor < len(g.windows) {
		w := g.windows[g.cursor]
		if w.End() <= t {
			g.cursor++
			continue
		}
		if t < w.Start {
			break
		}
		t = w.End()
		blockedThisCall = true
		g.cursor++
	}
	if blockedThisCall {
		g.blocked++
	}
	return t
}

// Commit implements axis.Gate.
func (g *OutageGate) Commit(t sim.Time) {
	g.readyAt = t.Add(g.minGap)
}
