// Declarative fault schedules. A chaos campaign is a timed list of fault
// events — crash the lender at t0, restore it at t1, open a burst-error
// window, ramp a brownout — validated up front and replayed against the
// testbed at exact simulated instants. Because the schedule is data, the
// same campaign definition drives the runner, the invariant audit, and the
// CSV artifact describing what was injected when.
package inject

import (
	"fmt"
	"sort"

	"thymesim/internal/sim"
)

// FaultOp enumerates the scheduled fault actions.
type FaultOp int

// Scheduled fault actions.
const (
	// OpLenderCrash stops the lender's memory service: in-flight serves
	// are lost and subsequent requests (probes included) are black-holed.
	OpLenderCrash FaultOp = iota
	// OpLenderRestore restarts the lender. With Wipe set, the window state
	// is lost too: block requests are nacked until a control-plane probe
	// re-arms the window (the supervisor's re-attach does exactly that).
	OpLenderRestore
	// OpBrownout sets the lender's memory service-time inflation to
	// Factor (>= 1); Factor 1 ends the brownout. Successive events ramp.
	OpBrownout
	// OpBurstStart pins the link's burst-error chain in its Bad state.
	OpBurstStart
	// OpBurstEnd releases the chain back to its own dynamics.
	OpBurstEnd
)

var faultOpNames = map[FaultOp]string{
	OpLenderCrash:   "lender-crash",
	OpLenderRestore: "lender-restore",
	OpBrownout:      "brownout",
	OpBurstStart:    "burst-start",
	OpBurstEnd:      "burst-end",
}

// String implements fmt.Stringer.
func (op FaultOp) String() string {
	if n, ok := faultOpNames[op]; ok {
		return n
	}
	return fmt.Sprintf("fault-op(%d)", int(op))
}

// FaultEvent is one scheduled fault action.
type FaultEvent struct {
	// At is the simulated instant the action fires.
	At sim.Time
	// Op selects the action.
	Op FaultOp
	// Factor is the brownout service-time inflation (OpBrownout only).
	Factor float64
	// Wipe loses the lender's window state across a restore
	// (OpLenderRestore only).
	Wipe bool
}

// Schedule is a validated, time-ordered fault-event list.
type Schedule []FaultEvent

// Validate checks event parameters and crash/restore pairing. Events need
// not be pre-sorted; ties resolve in list order.
func (s Schedule) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("inject: empty fault schedule")
	}
	crashed := false
	burst := false
	for i, ev := range sortedEvents(s) {
		if ev.At < 0 {
			return fmt.Errorf("inject: schedule event %d at negative time %v", i, ev.At)
		}
		switch ev.Op {
		case OpLenderCrash:
			if crashed {
				return fmt.Errorf("inject: schedule event %d crashes an already-crashed lender", i)
			}
			crashed = true
		case OpLenderRestore:
			if !crashed {
				return fmt.Errorf("inject: schedule event %d restores a lender that is up", i)
			}
			crashed = false
		case OpBrownout:
			if ev.Factor < 1 {
				return fmt.Errorf("inject: schedule event %d brownout factor %g < 1", i, ev.Factor)
			}
		case OpBurstStart:
			if burst {
				return fmt.Errorf("inject: schedule event %d opens a burst window inside one", i)
			}
			burst = true
		case OpBurstEnd:
			if !burst {
				return fmt.Errorf("inject: schedule event %d ends a burst window that is not open", i)
			}
			burst = false
		default:
			return fmt.Errorf("inject: schedule event %d has unknown op %d", i, int(ev.Op))
		}
	}
	if crashed {
		return fmt.Errorf("inject: schedule crashes the lender without restoring it")
	}
	if burst {
		return fmt.Errorf("inject: schedule opens a burst window without closing it")
	}
	return nil
}

// NeedsBurstGate reports whether the schedule contains burst-error events
// (the runner must then stack a Gilbert–Elliott gate).
func (s Schedule) NeedsBurstGate() bool {
	for _, ev := range s {
		if ev.Op == OpBurstStart || ev.Op == OpBurstEnd {
			return true
		}
	}
	return false
}

// sortedEvents returns the events in firing order without mutating s.
func sortedEvents(s Schedule) Schedule {
	out := append(Schedule(nil), s...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// FaultTarget is the slice of the testbed a schedule manipulates
// (*cluster.Testbed composed with the campaign's burst gate satisfies it).
type FaultTarget interface {
	// CrashLender stops the lender's memory service.
	CrashLender()
	// RestoreLender restarts it, optionally wiping window state.
	RestoreLender(wipe bool)
	// SetLenderSlowdown sets the lender memory service-time inflation.
	SetLenderSlowdown(factor float64)
	// ForceBurstErrors pins or releases the link's burst-error state.
	ForceBurstErrors(active bool)
}

// ScheduleFaults arms every event of a validated schedule on the kernel.
// Call it before Run; events fire at their exact instants.
func ScheduleFaults(k *sim.Kernel, target FaultTarget, s Schedule) error {
	if err := s.Validate(); err != nil {
		return err
	}
	for _, ev := range sortedEvents(s) {
		ev := ev
		k.At(ev.At, func() {
			switch ev.Op {
			case OpLenderCrash:
				target.CrashLender()
			case OpLenderRestore:
				target.RestoreLender(ev.Wipe)
			case OpBrownout:
				target.SetLenderSlowdown(ev.Factor)
			case OpBurstStart:
				target.ForceBurstErrors(true)
			case OpBurstEnd:
				target.ForceBurstErrors(false)
			}
		})
	}
	return nil
}
