package inject_test

import (
	"testing"

	"thymesim/internal/cluster"
	"thymesim/internal/control"
	"thymesim/internal/inject"
	"thymesim/internal/ocapi"
	"thymesim/internal/sim"
)

// Integration: an outage stalls remote traffic, which resumes afterwards
// with no losses — the CPU rides it out, as the paper observes for
// delays under the detection threshold.
func TestOutageStallsAndRecovers(t *testing.T) {
	outage := inject.Window{Start: sim.Time(sim.Microsecond), Duration: 200 * sim.Microsecond}
	cfg := cluster.DefaultConfig(0)
	cfg.Gate = inject.NewOutageGate([]inject.Window{outage}, inject.DefaultFPGACycle)
	tb := cluster.NewTestbed(cfg)
	h := tb.NewRemoteHierarchy()
	var completions []sim.Time
	tb.K.At(0, func() {
		for i := 0; i < 200; i++ {
			h.Access(tb.RemoteAddr(uint64(i)*ocapi.CacheLineSize), 8, false, func() {
				completions = append(completions, tb.K.Now())
			})
		}
	})
	tb.K.Run()
	if len(completions) != 200 {
		t.Fatalf("completions = %d (requests lost in outage)", len(completions))
	}
	// No fill completes in the dead zone (outage start + response drain
	// margin .. outage end).
	deadLo := outage.Start.Add(5 * sim.Microsecond)
	deadHi := outage.End()
	for _, c := range completions {
		if c > deadLo && c < deadHi {
			t.Fatalf("completion at %v inside outage [%v, %v]", c, deadLo, deadHi)
		}
	}
	// And some complete after the outage (recovery).
	last := completions[len(completions)-1]
	if last < deadHi {
		t.Fatalf("no post-outage recovery: last completion %v", last)
	}
}

// Integration: an outage longer than the detection timeout kills the
// attach (the Fig. 4 failure mode from a reliability fault rather than
// congestion); a short outage merely delays it.
func TestOutageVsAttachTimeout(t *testing.T) {
	attach := func(outageDur sim.Duration) control.AttachResult {
		cfg := cluster.DefaultConfig(0)
		cfg.Gate = inject.NewOutageGate([]inject.Window{{Start: sim.Time(10 * sim.Microsecond), Duration: outageDur}}, inject.DefaultFPGACycle)
		tb := cluster.NewTestbed(cfg)
		var res control.AttachResult
		tb.K.At(0, func() {
			control.Attach(tb, control.DefaultAttachConfig(), func(r control.AttachResult) { res = r })
		})
		tb.K.Run()
		return res
	}
	short := attach(500 * sim.Microsecond) // well under the 5ms deadline
	if !short.OK {
		t.Fatalf("short outage killed attach: %+v", short)
	}
	// The handshake straddled the window: it started before the outage and
	// can only have finished after it lifted.
	if end := sim.Time(10 * sim.Microsecond).Add(500 * sim.Microsecond); short.Elapsed < end.Sub(0) {
		t.Fatalf("attach finished in %v, inside the %v outage window", short.Elapsed, end)
	}
	long := attach(10 * sim.Millisecond) // spans the whole deadline
	if long.OK {
		t.Fatalf("attach survived a %v outage: %+v", 10*sim.Millisecond, long)
	}
}

// Integration: the link supervisor detects an outage via missed
// heartbeats, re-attaches once the link returns, and reports the
// down-to-up recovery latency.
func TestSupervisorRecoversFromOutage(t *testing.T) {
	outage := inject.Window{Start: sim.Time(100 * sim.Microsecond), Duration: 500 * sim.Microsecond}
	cfg := cluster.DefaultConfig(0)
	cfg.Gate = inject.NewOutageGate([]inject.Window{outage}, inject.DefaultFPGACycle)
	tb := cluster.NewTestbed(cfg)
	sup := control.NewSupervisor(tb, control.DefaultSupervisorConfig())
	tb.K.At(0, sup.Start)
	tb.K.At(sim.Time(3*sim.Millisecond), sup.Stop)
	tb.K.Run()

	st := sup.Stats()
	if st.Downs == 0 {
		t.Fatalf("outage not detected: %+v", st)
	}
	if st.Recoveries == 0 || sup.State() != control.LinkUp {
		t.Fatalf("no recovery: state=%v stats=%+v", sup.State(), st)
	}
	// Recovery spans the remainder of the outage plus the re-attach
	// handshake: it must be at least the time from detection to outage end.
	if st.MeanRecovery() < 200*sim.Microsecond {
		t.Fatalf("recovery latency %v implausibly small", st.MeanRecovery())
	}
}
