// Package pool implements the rack-scale memory-pooling control logic:
// per-lender segment allocators that carve a lender's DRAM reservation
// into borrower-attached regions, and placement policies that decide
// which lender serves a new attach request.
//
// The package is pure bookkeeping — it schedules nothing — so its
// invariants (no segment overlap, capacity conservation, free-list
// coalescing) are property-testable in isolation, and the same allocator
// drives both the event-accurate cluster pool and the switched-fabric
// datacenter model. The only observability hook is the optional
// metricsplane gauge bundle, refreshed after each mutation.
package pool

import (
	"fmt"
	"sort"

	"thymesim/internal/metricsplane"
)

// Segment is one carved region of a lender's reservation: lender-physical
// addresses [Base, Base+Size).
type Segment struct {
	// Lender is the allocator's lender index (pool-local, not a fabric
	// node id).
	Lender int
	Base   uint64
	Size   uint64
}

// End returns the first address past the segment.
func (s Segment) End() uint64 { return s.Base + s.Size }

// Overlaps reports whether two segments share any address.
func (s Segment) Overlaps(o Segment) bool {
	return s.Base < o.End() && o.Base < s.End()
}

// span is one free extent, kept sorted by base and always coalesced: no
// two spans touch or overlap.
type span struct {
	base, size uint64
}

// Allocator carves one lender's reservation [base, base+capacity) into
// segments. First-fit with an address-ordered, eagerly-coalesced free
// list: deterministic, and fragmentation-diagnosable via FreeSpans.
type Allocator struct {
	lender    int
	base      uint64
	capacity  uint64
	align     uint64
	free      []span
	allocated uint64
	segments  int

	mx *metricsplane.AllocMetrics // nil when the metrics plane is disabled
}

// NewAllocator builds an allocator for lender's reservation
// [base, base+capacity), with every segment base and size aligned to
// align (a power of two).
func NewAllocator(lender int, base, capacity, align uint64) (*Allocator, error) {
	if capacity == 0 {
		return nil, fmt.Errorf("pool: lender %d has zero capacity", lender)
	}
	if align == 0 || align&(align-1) != 0 {
		return nil, fmt.Errorf("pool: alignment %d not a power of two", align)
	}
	if base%align != 0 || capacity%align != 0 {
		return nil, fmt.Errorf("pool: reservation %#x+%#x unaligned to %d", base, capacity, align)
	}
	return &Allocator{
		lender:   lender,
		base:     base,
		capacity: capacity,
		align:    align,
		free:     []span{{base: base, size: capacity}},
	}, nil
}

// SetMetrics attaches the metrics plane's per-lender occupancy and
// fragmentation gauges, refreshed after every successful mutation (the
// initial state is published immediately).
func (a *Allocator) SetMetrics(m *metricsplane.AllocMetrics) {
	a.mx = m
	a.refreshMetrics()
}

// refreshMetrics republishes the allocator gauges.
func (a *Allocator) refreshMetrics() {
	if a.mx == nil {
		return
	}
	var largest uint64
	for _, s := range a.free {
		if s.size > largest {
			largest = s.size
		}
	}
	a.mx.Update(a.capacity, a.allocated, a.FreeBytes(), largest, len(a.free))
}

// Lender returns the lender index this allocator carves.
func (a *Allocator) Lender() int { return a.lender }

// Capacity returns the reservation size in bytes.
func (a *Allocator) Capacity() uint64 { return a.capacity }

// Allocated returns the bytes currently carved out.
func (a *Allocator) Allocated() uint64 { return a.allocated }

// FreeBytes returns the bytes not carved out. Allocated+FreeBytes always
// equals Capacity — the conservation invariant the property suite pins.
func (a *Allocator) FreeBytes() uint64 { return a.capacity - a.allocated }

// Segments returns the number of live segments.
func (a *Allocator) Segments() int { return a.segments }

// FreeSpans returns a copy of the free list (sorted, coalesced) for
// invariant checks and fragmentation diagnostics.
func (a *Allocator) FreeSpans() []Segment {
	out := make([]Segment, len(a.free))
	for i, s := range a.free {
		out[i] = Segment{Lender: a.lender, Base: s.base, Size: s.size}
	}
	return out
}

// Alloc carves a segment of the given size (rounded up to the alignment)
// from the first free span that fits.
func (a *Allocator) Alloc(size uint64) (Segment, error) {
	if size == 0 {
		return Segment{}, fmt.Errorf("pool: zero-size alloc on lender %d", a.lender)
	}
	size = (size + a.align - 1) &^ (a.align - 1)
	for i := range a.free {
		f := &a.free[i]
		if f.size < size {
			continue
		}
		seg := Segment{Lender: a.lender, Base: f.base, Size: size}
		f.base += size
		f.size -= size
		if f.size == 0 {
			a.free = append(a.free[:i], a.free[i+1:]...)
		}
		a.allocated += size
		a.segments++
		a.refreshMetrics()
		return seg, nil
	}
	return Segment{}, fmt.Errorf("pool: lender %d cannot fit %d bytes (%d free in %d spans)",
		a.lender, size, a.FreeBytes(), len(a.free))
}

// Free returns a segment to the free list, coalescing with neighbours.
// Foreign, misaligned, out-of-range, and double-freed segments are
// rejected — a control plane bug must surface, not corrupt the pool.
func (a *Allocator) Free(seg Segment) error {
	if err := a.checkOwned(seg); err != nil {
		return err
	}
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].base >= seg.Base })
	// Reject frees that intersect the free list (double free / bad size).
	if i < len(a.free) && seg.End() > a.free[i].base {
		return fmt.Errorf("pool: free of %#x+%#x overlaps free span %#x+%#x (double free?)",
			seg.Base, seg.Size, a.free[i].base, a.free[i].size)
	}
	if i > 0 && a.free[i-1].base+a.free[i-1].size > seg.Base {
		return fmt.Errorf("pool: free of %#x+%#x overlaps free span %#x+%#x (double free?)",
			seg.Base, seg.Size, a.free[i-1].base, a.free[i-1].size)
	}
	// Coalesce with the predecessor and/or successor when adjacent.
	joinPrev := i > 0 && a.free[i-1].base+a.free[i-1].size == seg.Base
	joinNext := i < len(a.free) && seg.End() == a.free[i].base
	switch {
	case joinPrev && joinNext:
		a.free[i-1].size += seg.Size + a.free[i].size
		a.free = append(a.free[:i], a.free[i+1:]...)
	case joinPrev:
		a.free[i-1].size += seg.Size
	case joinNext:
		a.free[i].base = seg.Base
		a.free[i].size += seg.Size
	default:
		a.free = append(a.free, span{})
		copy(a.free[i+1:], a.free[i:])
		a.free[i] = span{base: seg.Base, size: seg.Size}
	}
	a.allocated -= seg.Size
	a.segments--
	a.refreshMetrics()
	return nil
}

// Grow extends a segment in place to newSize (rounded up to the
// alignment), consuming the free span that immediately follows it. It
// fails — leaving the segment untouched — when the adjacent space is
// carved out or too small; relocation is the caller's policy decision.
func (a *Allocator) Grow(seg Segment, newSize uint64) (Segment, error) {
	if err := a.checkOwned(seg); err != nil {
		return Segment{}, err
	}
	newSize = (newSize + a.align - 1) &^ (a.align - 1)
	if newSize <= seg.Size {
		return Segment{}, fmt.Errorf("pool: grow of %#x+%#x to %d does not grow", seg.Base, seg.Size, newSize)
	}
	need := newSize - seg.Size
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].base >= seg.End() })
	if i == len(a.free) || a.free[i].base != seg.End() || a.free[i].size < need {
		return Segment{}, fmt.Errorf("pool: lender %d cannot grow %#x+%#x to %d in place",
			a.lender, seg.Base, seg.Size, newSize)
	}
	a.free[i].base += need
	a.free[i].size -= need
	if a.free[i].size == 0 {
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
	a.allocated += need
	seg.Size = newSize
	a.refreshMetrics()
	return seg, nil
}

// checkOwned validates that seg plausibly came from this allocator.
func (a *Allocator) checkOwned(seg Segment) error {
	if seg.Lender != a.lender {
		return fmt.Errorf("pool: segment of lender %d handed to lender %d", seg.Lender, a.lender)
	}
	if seg.Size == 0 || seg.Base%a.align != 0 || seg.Size%a.align != 0 {
		return fmt.Errorf("pool: malformed segment %#x+%#x", seg.Base, seg.Size)
	}
	if seg.Base < a.base || seg.End() > a.base+a.capacity {
		return fmt.Errorf("pool: segment %#x+%#x outside reservation %#x+%#x",
			seg.Base, seg.Size, a.base, a.capacity)
	}
	return nil
}
