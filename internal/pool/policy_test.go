package pool

import "testing"

// view builds a LenderView fixture.
func view(lender int, capMB, allocMB uint64, regions, distance int) LenderView {
	return LenderView{
		Lender:    lender,
		Node:      lender + 8,
		Capacity:  capMB << 20,
		Allocated: allocMB << 20,
		Regions:   regions,
		Distance:  distance,
	}
}

// TestPlacementPolicies is the table-driven policy suite: each policy
// gets fixture topologies with the expected lender choice (or an expected
// failure), pinning the deterministic tie-break order.
func TestPlacementPolicies(t *testing.T) {
	uniform := []LenderView{
		view(0, 64, 0, 0, 1),
		view(1, 64, 0, 0, 1),
		view(2, 64, 0, 0, 1),
	}
	skewed := []LenderView{
		view(0, 64, 48, 3, 0),
		view(1, 64, 16, 1, 1),
		view(2, 64, 32, 2, 2),
	}
	nearFull := []LenderView{
		view(0, 64, 63, 7, 0), // 1 MiB free: too small for an 8 MiB ask
		view(1, 64, 32, 2, 1),
	}
	tiedBytes := []LenderView{
		view(0, 64, 32, 4, 1),
		view(1, 64, 32, 1, 1), // same free bytes, fewer regions
		view(2, 64, 32, 1, 1), // tie again: lowest index wins
	}
	racks := []LenderView{
		view(0, 64, 60, 5, 2), // far and loaded
		view(1, 64, 8, 1, 1),  // near-ish
		view(2, 64, 0, 0, 1),  // same distance, emptier
		view(3, 64, 50, 6, 0), // same rack but nearly full — still fits
	}
	rackFull := []LenderView{
		view(0, 64, 60, 5, 0), // same rack, cannot fit 8 MiB
		view(1, 64, 0, 0, 2),
	}

	const ask = 8 << 20
	cases := []struct {
		name    string
		policy  Policy
		lenders []LenderView
		want    int
		wantErr bool
	}{
		{"default-pair/uniform", DefaultPair{}, uniform, 0, false},
		{"default-pair/skewed-still-pins-lender0", DefaultPair{}, skewed, 0, false},
		{"default-pair/paired-lender-full-fails", DefaultPair{}, nearFull, 0, true},
		{"default-pair/no-lenders", DefaultPair{}, nil, 0, true},

		{"least-loaded/uniform-takes-first", LeastLoaded{}, uniform, 0, false},
		{"least-loaded/picks-most-free", LeastLoaded{}, skewed, 1, false},
		{"least-loaded/skips-full", LeastLoaded{}, nearFull, 1, false},
		{"least-loaded/ties-break-by-regions-then-index", LeastLoaded{}, tiedBytes, 1, false},
		{"least-loaded/all-full-fails", LeastLoaded{}, []LenderView{view(0, 8, 8, 1, 0)}, 0, true},

		{"locality/prefers-same-rack", Locality{}, racks, 3, false},
		{"locality/equidistant-falls-back-to-load", Locality{}, skewed, 0, false},
		{"locality/full-rack-spills-outward", Locality{}, rackFull, 1, false},
		{"locality/uniform-takes-first", Locality{}, uniform, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.policy.Place(0, ask, tc.lenders)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("Place = %d, want error", got)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("%s placed on lender %d, want %d", tc.policy.Name(), got, tc.want)
			}
		})
	}
}

// TestLocalitySkewedFixture pins the locality fallback inside one rack:
// among equidistant lenders the least-loaded order applies.
func TestLocalitySkewedFixture(t *testing.T) {
	lenders := []LenderView{
		view(0, 64, 40, 3, 1),
		view(1, 64, 10, 1, 1),
	}
	got, err := Locality{}.Place(2, 4<<20, lenders)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("locality placed on %d, want 1 (least loaded among equidistant)", got)
	}
}

// TestByName pins the registry used by config surfaces.
func TestByName(t *testing.T) {
	for name, want := range map[string]string{
		"":             "default-pair",
		"default-pair": "default-pair",
		"least-loaded": "least-loaded",
		"locality":     "locality",
	} {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != want {
			t.Fatalf("ByName(%q).Name() = %q, want %q", name, p.Name(), want)
		}
	}
	if _, err := ByName("round-robin"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
