package pool

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"thymesim/internal/sim"
)

const testAlign = 1 << 12

// auditAllocator checks every structural invariant of one allocator
// against the live segment set the test tracked alongside it.
func auditAllocator(t *testing.T, a *Allocator, live []Segment) {
	t.Helper()
	// 1. No live segment overlaps another.
	for i := range live {
		for j := i + 1; j < len(live); j++ {
			if live[i].Overlaps(live[j]) {
				t.Fatalf("segments overlap: %+v and %+v", live[i], live[j])
			}
		}
	}
	// 2. Capacity conservation: allocated + free == capacity, and the
	// allocator's allocated counter matches the tracked segments.
	var liveBytes uint64
	for _, s := range live {
		liveBytes += s.Size
	}
	if a.Allocated() != liveBytes {
		t.Fatalf("allocator reports %d allocated bytes, tracking says %d", a.Allocated(), liveBytes)
	}
	if a.Allocated()+a.FreeBytes() != a.Capacity() {
		t.Fatalf("capacity leak: %d allocated + %d free != %d capacity",
			a.Allocated(), a.FreeBytes(), a.Capacity())
	}
	if a.Segments() != len(live) {
		t.Fatalf("allocator reports %d segments, tracking says %d", a.Segments(), len(live))
	}
	// 3. Free list is sorted, non-overlapping, coalesced (no two spans
	// touch), and disjoint from every live segment.
	spans := a.FreeSpans()
	var freeBytes uint64
	for i, f := range spans {
		freeBytes += f.Size
		if f.Size == 0 {
			t.Fatalf("empty free span %+v", f)
		}
		if i > 0 {
			prev := spans[i-1]
			if prev.End() > f.Base {
				t.Fatalf("free spans overlap or unsorted: %+v then %+v", prev, f)
			}
			if prev.End() == f.Base {
				t.Fatalf("free spans not coalesced: %+v touches %+v", prev, f)
			}
		}
		for _, s := range live {
			if f.Overlaps(s) {
				t.Fatalf("free span %+v overlaps live segment %+v", f, s)
			}
		}
	}
	if freeBytes != a.FreeBytes() {
		t.Fatalf("free list holds %d bytes, allocator reports %d", freeBytes, a.FreeBytes())
	}
}

// churnSeeds returns the property suite's seeds. POOL_CHURN_SEED extends
// the fixed corpus, so the nightly CI matrix explores fresh schedules
// while per-PR runs stay deterministic.
func churnSeeds(t *testing.T) []uint64 {
	seeds := []uint64{1, 2, 3, 0xDEAD}
	if env := os.Getenv("POOL_CHURN_SEED"); env != "" {
		s, err := strconv.ParseUint(env, 10, 64)
		if err != nil {
			t.Fatalf("POOL_CHURN_SEED: %v", err)
		}
		seeds = append(seeds, s)
	}
	return seeds
}

// TestAllocatorChurnProperties is the allocator property suite: randomized
// attach/detach/grow churn across M lenders, auditing after every step
// that no segments overlap, capacity is conserved (allocated + free ==
// reservation), and the free list stays sorted and coalesced. The
// schedule is purely seed-derived, so failures replay exactly.
func TestAllocatorChurnProperties(t *testing.T) {
	for _, seed := range churnSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			const lenders = 4
			rng := sim.NewRand(seed)
			allocs := make([]*Allocator, lenders)
			live := make([][]Segment, lenders)
			for l := 0; l < lenders; l++ {
				// Deliberately varied capacities and bases.
				capacity := uint64(1+l) << 22
				a, err := NewAllocator(l, uint64(l)<<40, capacity, testAlign)
				if err != nil {
					t.Fatal(err)
				}
				allocs[l] = a
			}
			steps := 4000
			if testing.Short() {
				steps = 800
			}
			for i := 0; i < steps; i++ {
				l := rng.Intn(lenders)
				a := allocs[l]
				switch op := rng.Intn(10); {
				case op < 5: // alloc
					size := uint64(rng.Intn(64)+1) * (testAlign / 2)
					seg, err := a.Alloc(size)
					if err != nil {
						break // pool full here; legal
					}
					if seg.Size < size {
						t.Fatalf("alloc of %d returned %d bytes", size, seg.Size)
					}
					live[l] = append(live[l], seg)
				case op < 8: // free a random live segment
					if len(live[l]) == 0 {
						break
					}
					j := rng.Intn(len(live[l]))
					if err := a.Free(live[l][j]); err != nil {
						t.Fatalf("free of live segment %+v: %v", live[l][j], err)
					}
					live[l] = append(live[l][:j], live[l][j+1:]...)
				default: // grow a random live segment
					if len(live[l]) == 0 {
						break
					}
					j := rng.Intn(len(live[l]))
					seg := live[l][j]
					grown, err := a.Grow(seg, seg.Size+uint64(rng.Intn(8)+1)*testAlign)
					if err != nil {
						break // neighbour carved out; legal
					}
					if grown.Base != seg.Base || grown.Size <= seg.Size {
						t.Fatalf("grow of %+v returned %+v", seg, grown)
					}
					live[l][j] = grown
				}
				auditAllocator(t, a, live[l])
			}
			// Drain everything: the free list must coalesce back to one
			// span covering the whole reservation.
			for l, a := range allocs {
				for _, seg := range live[l] {
					if err := a.Free(seg); err != nil {
						t.Fatal(err)
					}
				}
				live[l] = nil
				auditAllocator(t, a, nil)
				spans := a.FreeSpans()
				if len(spans) != 1 || spans[0].Size != a.Capacity() {
					t.Fatalf("drained lender %d free list not fully coalesced: %+v", l, spans)
				}
			}
		})
	}
}

// TestAllocatorRejectsBadFrees pins the defensive surface: double frees,
// foreign segments, and out-of-range segments must be rejected without
// corrupting the accounting.
func TestAllocatorRejectsBadFrees(t *testing.T) {
	a, err := NewAllocator(0, 0, 1<<20, testAlign)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := a.Alloc(8 * testAlign)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(seg); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(seg); err == nil {
		t.Fatal("double free accepted")
	}
	seg2, err := a.Alloc(testAlign)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(Segment{Lender: 1, Base: seg2.Base, Size: seg2.Size}); err == nil {
		t.Fatal("foreign lender's segment accepted")
	}
	if err := a.Free(Segment{Lender: 0, Base: 1 << 30, Size: testAlign}); err == nil {
		t.Fatal("out-of-range segment accepted")
	}
	if err := a.Free(Segment{Lender: 0, Base: seg2.Base + 1, Size: testAlign}); err == nil {
		t.Fatal("unaligned segment accepted")
	}
	if a.Allocated() != seg2.Size {
		t.Fatalf("accounting corrupted by rejected frees: %d allocated", a.Allocated())
	}
	auditAllocator(t, a, []Segment{seg2})
}

// TestAllocatorGrowSemantics pins in-place growth: it consumes only the
// adjacent free span and fails crisply when a neighbour blocks it.
func TestAllocatorGrowSemantics(t *testing.T) {
	a, err := NewAllocator(0, 0, 1<<20, testAlign)
	if err != nil {
		t.Fatal(err)
	}
	first, err := a.Alloc(4 * testAlign)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := a.Grow(first, 6*testAlign)
	if err != nil {
		t.Fatal(err)
	}
	if grown.Base != first.Base || grown.Size != 6*testAlign {
		t.Fatalf("grow returned %+v", grown)
	}
	// A second segment right behind blocks further growth.
	second, err := a.Alloc(testAlign)
	if err != nil {
		t.Fatal(err)
	}
	if second.Base != grown.End() {
		t.Fatalf("first-fit did not place %+v adjacent to %+v", second, grown)
	}
	if _, err := a.Grow(grown, 8*testAlign); err == nil {
		t.Fatal("grow through a live neighbour accepted")
	}
	// Shrinks and no-ops are rejected.
	if _, err := a.Grow(grown, grown.Size); err == nil {
		t.Fatal("no-op grow accepted")
	}
	auditAllocator(t, a, []Segment{grown, second})
}
