package pool

import "fmt"

// LenderView is one lender's load snapshot as a placement policy sees it.
// Views are always presented in lender-index order, so a policy that
// breaks ties by the first match is deterministic.
type LenderView struct {
	// Lender is the pool-local lender index; Node is its fabric node id.
	Lender int
	Node   int
	// Capacity and Allocated describe the lender's reservation occupancy.
	Capacity  uint64
	Allocated uint64
	// Regions counts attached regions currently served by this lender.
	Regions int
	// Distance is the topological cost from the requesting borrower
	// (0 = same rack); how it is computed is the topology's business.
	Distance int
}

// FreeBytes returns the uncarved capacity.
func (v LenderView) FreeBytes() uint64 { return v.Capacity - v.Allocated }

// Policy decides which lender serves a new attach. Place returns the
// chosen lender index; it must be a pure function of its arguments so
// placement is deterministic and replayable.
type Policy interface {
	Name() string
	Place(borrower int, size uint64, lenders []LenderView) (int, error)
}

// DefaultPair is the paper's fixed borrower/lender pairing: every attach
// goes to lender 0, reproducing the two-node testbed exactly. It is the
// default policy; anything it cannot fit is an attach failure, not a
// silent spill to another lender.
type DefaultPair struct{}

// Name implements Policy.
func (DefaultPair) Name() string { return "default-pair" }

// Place implements Policy.
func (DefaultPair) Place(borrower int, size uint64, lenders []LenderView) (int, error) {
	if len(lenders) == 0 {
		return 0, fmt.Errorf("pool: no lenders")
	}
	if lenders[0].FreeBytes() < size {
		return 0, fmt.Errorf("pool: paired lender %d cannot fit %d bytes", lenders[0].Lender, size)
	}
	return lenders[0].Lender, nil
}

// LeastLoaded places each attach on the lender with the most free bytes,
// breaking ties by fewest attached regions, then lowest lender index —
// the contention-spreading policy.
type LeastLoaded struct{}

// Name implements Policy.
func (LeastLoaded) Name() string { return "least-loaded" }

// Place implements Policy.
func (LeastLoaded) Place(borrower int, size uint64, lenders []LenderView) (int, error) {
	best := -1
	for i, v := range lenders {
		if v.FreeBytes() < size {
			continue
		}
		if best < 0 || better(v, lenders[best]) {
			best = i
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("pool: no lender fits %d bytes", size)
	}
	return lenders[best].Lender, nil
}

// better reports whether a beats b under the least-loaded order.
func better(a, b LenderView) bool {
	if a.FreeBytes() != b.FreeBytes() {
		return a.FreeBytes() > b.FreeBytes()
	}
	if a.Regions != b.Regions {
		return a.Regions < b.Regions
	}
	return a.Lender < b.Lender
}

// Locality prefers the topologically nearest lender that fits, falling
// back to least-loaded among equidistant candidates: pay switch hops only
// when the local rack is full.
type Locality struct{}

// Name implements Policy.
func (Locality) Name() string { return "locality" }

// Place implements Policy.
func (Locality) Place(borrower int, size uint64, lenders []LenderView) (int, error) {
	best := -1
	for i, v := range lenders {
		if v.FreeBytes() < size {
			continue
		}
		if best < 0 || v.Distance < lenders[best].Distance ||
			(v.Distance == lenders[best].Distance && better(v, lenders[best])) {
			best = i
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("pool: no lender fits %d bytes", size)
	}
	return lenders[best].Lender, nil
}

// ByName returns the built-in policy with the given name.
func ByName(name string) (Policy, error) {
	switch name {
	case "", "default-pair":
		return DefaultPair{}, nil
	case "least-loaded":
		return LeastLoaded{}, nil
	case "locality":
		return Locality{}, nil
	}
	return nil, fmt.Errorf("pool: unknown placement policy %q", name)
}
