package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(1)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if m := h.Mean(); math.Abs(m-50.5) > 1e-9 {
		t.Fatalf("mean = %v, want 50.5", m)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram(0.001)
	var samples []float64
	for i := 1; i <= 10000; i++ {
		v := float64(i) * 0.1
		h.Observe(v)
		samples = append(samples, v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		got := h.Quantile(q)
		want := ExactQuantile(samples, q)
		if rel := math.Abs(got-want) / want; rel > 0.06 {
			t.Errorf("q%v: got %v want %v (rel err %.3f)", q, got, want, rel)
		}
	}
}

func TestHistogramZeroSamples(t *testing.T) {
	h := NewHistogram(1)
	h.Observe(0)
	h.Observe(0)
	h.Observe(10)
	if h.Quantile(0.5) != 0 {
		t.Fatalf("median = %v, want 0", h.Quantile(0.5))
	}
	if h.Quantile(1.0) < 9 {
		t.Fatalf("p100 = %v, want ~10", h.Quantile(1.0))
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(1)
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramNegativePanics(t *testing.T) {
	h := NewHistogram(1)
	defer func() {
		if recover() == nil {
			t.Error("negative sample did not panic")
		}
	}()
	h.Observe(-1)
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(1), NewHistogram(1)
	for i := 0; i < 100; i++ {
		a.Observe(1)
		b.Observe(1000)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Max() != 1000 || a.Min() != 1 {
		t.Fatalf("merged min/max = %v/%v", a.Min(), a.Max())
	}
	med := a.Quantile(0.5)
	if med > 2 {
		t.Fatalf("median = %v, want ~1", med)
	}
}

func TestHistogramMergeGeometryMismatchPanics(t *testing.T) {
	a, b := NewHistogram(1), NewHistogram(2)
	defer func() {
		if recover() == nil {
			t.Error("geometry mismatch did not panic")
		}
	}()
	a.Merge(b)
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(1)
	h.Observe(5)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear")
	}
	h.Observe(2)
	if h.Count() != 1 {
		t.Fatal("histogram unusable after reset")
	}
}

// Property: quantile estimates are monotone in q and bounded by min/max.
func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram(1)
		for _, r := range raw {
			h.Observe(float64(r % 1000000))
		}
		prev := -1.0
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev-1e-9 {
				return false
			}
			if v < h.Min()-1e-9 || v > h.Max()+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryMoments(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Observe(v)
	}
	if s.Count() != 8 {
		t.Fatalf("count = %d", s.Count())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v", s.Mean())
	}
	// Population variance is 4; sample variance is 32/7.
	if math.Abs(s.Variance()-32.0/7.0) > 1e-9 {
		t.Fatalf("variance = %v", s.Variance())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

// Property: Summary matches direct two-pass computation.
func TestSummaryMatchesTwoPassProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		var s Summary
		var sum float64
		for _, r := range raw {
			v := float64(r)
			s.Observe(v)
			sum += v
		}
		mean := sum / float64(len(raw))
		var m2 float64
		for _, r := range raw {
			d := float64(r) - mean
			m2 += d * d
		}
		wantVar := m2 / float64(len(raw)-1)
		return math.Abs(s.Mean()-mean) < 1e-6 && math.Abs(s.Variance()-wantVar) < 1e-4*(1+wantVar)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestExactQuantile(t *testing.T) {
	s := []float64{5, 1, 3, 2, 4}
	if q := ExactQuantile(s, 0.5); q != 3 {
		t.Fatalf("median = %v", q)
	}
	if q := ExactQuantile(s, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := ExactQuantile(s, 1); q != 5 {
		t.Fatalf("q1 = %v", q)
	}
	if q := ExactQuantile(nil, 0.5); q != 0 {
		t.Fatalf("empty = %v", q)
	}
	// Input must be untouched.
	if s[0] != 5 {
		t.Fatal("ExactQuantile mutated input")
	}
}
