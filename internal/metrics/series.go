package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Point is one (x, y) observation in a Series.
type Point struct {
	X float64
	Y float64
}

// Series is an ordered list of labelled points — one curve on a figure.
type Series struct {
	Name   string
	XLabel string
	YLabel string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Points) }

// Ys returns the y values in order.
func (s *Series) Ys() []float64 {
	ys := make([]float64, len(s.Points))
	for i, p := range s.Points {
		ys[i] = p.Y
	}
	return ys
}

// Xs returns the x values in order.
func (s *Series) Xs() []float64 {
	xs := make([]float64, len(s.Points))
	for i, p := range s.Points {
		xs[i] = p.X
	}
	return xs
}

// YAt returns the y value for the first point with the given x, and whether
// one exists.
func (s *Series) YAt(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// MinMaxY returns the extrema of the y values; ok is false for an empty
// series.
func (s *Series) MinMaxY() (lo, hi float64, ok bool) {
	if len(s.Points) == 0 {
		return 0, 0, false
	}
	lo, hi = s.Points[0].Y, s.Points[0].Y
	for _, p := range s.Points[1:] {
		lo = math.Min(lo, p.Y)
		hi = math.Max(hi, p.Y)
	}
	return lo, hi, true
}

// LinearFit returns the least-squares slope, intercept and Pearson r² of the
// series. It panics with fewer than two points.
func (s *Series) LinearFit() (slope, intercept, r2 float64) {
	n := float64(len(s.Points))
	if n < 2 {
		panic("metrics: LinearFit needs at least two points")
	}
	var sx, sy, sxx, sxy, syy float64
	for _, p := range s.Points {
		sx += p.X
		sy += p.Y
		sxx += p.X * p.X
		sxy += p.X * p.Y
		syy += p.Y * p.Y
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		panic("metrics: LinearFit on degenerate x values")
	}
	slope = (n*sxy - sx*sy) / denom
	intercept = (sy - slope*sx) / n
	den2 := (n*sxx - sx*sx) * (n*syy - sy*sy)
	if den2 <= 0 {
		r2 = 1
	} else {
		r := (n*sxy - sx*sy) / math.Sqrt(den2)
		r2 = r * r
	}
	return slope, intercept, r2
}

// Figure is a named collection of series sharing axes — the in-memory form
// of one paper figure.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	LogX   bool
	LogY   bool
	Series []*Series
}

// AddSeries appends a new empty series with the figure's axis labels and
// returns it.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name, XLabel: f.XLabel, YLabel: f.YLabel}
	f.Series = append(f.Series, s)
	return s
}

// Get returns the series with the given name, or nil.
func (f *Figure) Get(name string) *Series {
	for _, s := range f.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// WriteCSV emits the figure as tidy CSV: series,x,y.
func (f *Figure) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "series,%s,%s\n", csvEscape(f.XLabel), csvEscape(f.YLabel)); err != nil {
		return err
	}
	for _, s := range f.Series {
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", csvEscape(s.Name), p.X, p.Y); err != nil {
				return err
			}
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// RenderASCII draws the figure as a crude scatter plot for terminal
// inspection: width×height character cells, one glyph per series.
func (f *Figure) RenderASCII(w io.Writer, width, height int) error {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for _, p := range s.Points {
			x, y := f.coord(p)
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	if math.IsInf(xmin, 1) {
		_, err := fmt.Fprintf(w, "%s: (no data)\n", f.Title)
		return err
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range f.Series {
		g := glyphs[si%len(glyphs)]
		for _, p := range s.Points {
			x, y := f.coord(p)
			cx := int((x - xmin) / (xmax - xmin) * float64(width-1))
			cy := int((y - ymin) / (ymax - ymin) * float64(height-1))
			grid[height-1-cy][cx] = g
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	fmt.Fprintf(&b, "y: %s%s\n", f.YLabel, logNote(f.LogY))
	for _, row := range grid {
		b.WriteString("  |")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("  +" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, "x: %s%s  [%.4g .. %.4g]\n", f.XLabel, logNote(f.LogX), unlog(xmin, f.LogX), unlog(xmax, f.LogX))
	for si, s := range f.Series {
		fmt.Fprintf(&b, "   %c %s\n", glyphs[si%len(glyphs)], s.Name)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *Figure) coord(p Point) (x, y float64) {
	x, y = p.X, p.Y
	if f.LogX {
		x = safeLog10(x)
	}
	if f.LogY {
		y = safeLog10(y)
	}
	return x, y
}

func safeLog10(v float64) float64 {
	if v <= 0 {
		return -12
	}
	return math.Log10(v)
}

func unlog(v float64, logged bool) float64 {
	if logged {
		return math.Pow(10, v)
	}
	return v
}

func logNote(on bool) string {
	if on {
		return " (log)"
	}
	return ""
}

// Table is a simple labelled grid — the in-memory form of one paper table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row; it must match the column count.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("metrics: row has %d cells, table has %d columns", len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// Cell returns the cell at (row, col).
func (t *Table) Cell(row, col int) string { return t.Rows[row][col] }

// Lookup returns the cell in the named column of the first row whose first
// column equals key.
func (t *Table) Lookup(key, column string) (string, bool) {
	ci := -1
	for i, c := range t.Columns {
		if c == column {
			ci = i
		}
	}
	if ci < 0 {
		return "", false
	}
	for _, r := range t.Rows {
		if r[0] == key {
			return r[ci], true
		}
	}
	return "", false
}

// WriteCSV emits the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	esc := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		esc[i] = csvEscape(c)
	}
	if _, err := fmt.Fprintln(w, strings.Join(esc, ",")); err != nil {
		return err
	}
	for _, r := range t.Rows {
		cells := make([]string, len(r))
		for i, c := range r {
			cells[i] = csvEscape(c)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Render draws the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "| %-*s ", widths[i], c)
		}
		b.WriteString("|\n")
	}
	line(t.Columns)
	total := 1
	for _, wd := range widths {
		total += wd + 3
	}
	b.WriteString(strings.Repeat("-", total) + "\n")
	for _, r := range t.Rows {
		line(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// SortSeriesByX sorts the points of a series by ascending x.
func SortSeriesByX(s *Series) {
	sort.Slice(s.Points, func(i, j int) bool { return s.Points[i].X < s.Points[j].X })
}
