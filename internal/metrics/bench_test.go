package metrics

import "testing"

// BenchmarkHistogramObserve measures the per-sample recording cost every
// simulated fill pays.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(0.001)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%10000) * 0.1)
	}
}

// BenchmarkHistogramQuantile measures quantile extraction.
func BenchmarkHistogramQuantile(b *testing.B) {
	h := NewHistogram(0.001)
	for i := 0; i < 100000; i++ {
		h.Observe(float64(i % 10000))
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += h.Quantile(0.99)
	}
	_ = sink
}

// BenchmarkSummaryObserve measures the online-moment accumulator.
func BenchmarkSummaryObserve(b *testing.B) {
	var s Summary
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(float64(i))
	}
}
