package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestCounterSetDeclareAddMerge(t *testing.T) {
	c := NewCounterSet()
	c.Declare("retransmits", "dead")
	c.Add("retransmits", 3)
	c.Add("poisoned", 1) // lazily created, appended after declared names
	c.Set("dead", 7)
	if got := c.Get("retransmits"); got != 3 {
		t.Fatalf("retransmits = %d", got)
	}
	if got := c.Get("dead"); got != 7 {
		t.Fatalf("dead = %d", got)
	}
	if got := c.Get("unknown"); got != 0 {
		t.Fatalf("unknown = %d", got)
	}
	want := []string{"retransmits", "dead", "poisoned"}
	names := c.Names()
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}

	other := NewCounterSet()
	other.Add("retransmits", 2)
	other.Add("downs", 5)
	c.Merge(other)
	if c.Get("retransmits") != 5 || c.Get("downs") != 5 || c.Get("dead") != 7 {
		t.Fatalf("after merge: %v %v %v", c.Get("retransmits"), c.Get("downs"), c.Get("dead"))
	}
}

func TestCounterSetDeclareIdempotent(t *testing.T) {
	c := NewCounterSet()
	c.Add("a", 4)
	c.Declare("a", "b")
	if c.Get("a") != 4 {
		t.Fatalf("Declare reset a to %d", c.Get("a"))
	}
	if len(c.Names()) != 2 {
		t.Fatalf("names = %v", c.Names())
	}
}

// TestCounterSetConcurrent hammers one set from many goroutines — the
// shape a cross-testbed aggregate sees under parallel sweeps. Run with
// -race; the final tally also checks no increment was lost.
func TestCounterSetConcurrent(t *testing.T) {
	c := NewCounterSet()
	c.Declare("shared")
	const goroutines, each = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Add("shared", 1)
				c.Add(string(rune('a'+g)), 1) // per-goroutine lazy registration
				_ = c.Get("shared")
				_ = c.Names()
			}
		}(g)
	}
	wg.Wait()
	if got := c.Get("shared"); got != goroutines*each {
		t.Fatalf("shared = %d, want %d", got, goroutines*each)
	}
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestCounterSetTableAndCSV(t *testing.T) {
	c := NewCounterSet()
	c.Add("drops", 11)
	c.Add("corruptions", 2)
	tab := c.Table("chaos counters")
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if v, ok := tab.Lookup("drops", "value"); !ok || v != "11" {
		t.Fatalf("lookup drops = %q, %v", v, ok)
	}
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "counter,value\n") || !strings.Contains(out, "drops,11\n") {
		t.Fatalf("csv = %q", out)
	}
}
