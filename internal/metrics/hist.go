// Package metrics provides the measurement primitives used across the
// simulator: log-bucketed latency histograms, online summaries, labelled
// series, and text/CSV rendering for the experiment harness.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is a log-bucketed histogram of non-negative float64 samples
// (typically latencies in microseconds or nanoseconds). Buckets grow
// geometrically so that relative quantile error is bounded (~5% with the
// default growth), matching the resolution of an HDR-style recorder while
// staying allocation-light.
type Histogram struct {
	growth  float64
	invLog  float64
	first   float64 // upper bound of bucket 0
	counts  []uint64
	zero    uint64 // samples equal to zero
	total   uint64
	sum     float64
	min     float64
	max     float64
	hasData bool
}

// NewHistogram returns a histogram with ~5% relative bucket resolution
// starting at firstBound (the upper edge of the first bucket). firstBound
// must be positive.
func NewHistogram(firstBound float64) *Histogram {
	return NewHistogramGrowth(firstBound, 1.05)
}

// NewHistogramGrowth returns a histogram with the given first bucket bound
// and geometric growth factor (> 1).
func NewHistogramGrowth(firstBound, growth float64) *Histogram {
	if firstBound <= 0 {
		panic("metrics: firstBound must be positive")
	}
	if growth <= 1 {
		panic("metrics: growth must exceed 1")
	}
	return &Histogram{
		growth: growth,
		invLog: 1 / math.Log(growth),
		first:  firstBound,
	}
}

// bucketFor maps a positive sample to its bucket index.
func (h *Histogram) bucketFor(v float64) int {
	if v <= h.first {
		return 0
	}
	return 1 + int(math.Log(v/h.first)*h.invLog)
}

// boundOf returns the upper bound of bucket i.
func (h *Histogram) boundOf(i int) float64 {
	return h.first * math.Pow(h.growth, float64(i))
}

// Observe records one sample. Negative samples panic: latencies cannot be
// negative and a negative value indicates a model bug.
func (h *Histogram) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		panic(fmt.Sprintf("metrics: invalid sample %v", v))
	}
	if !h.hasData || v < h.min {
		h.min = v
	}
	if !h.hasData || v > h.max {
		h.max = v
	}
	h.hasData = true
	h.total++
	h.sum += v
	if v == 0 {
		h.zero++
		return
	}
	idx := h.bucketFor(v)
	for len(h.counts) <= idx {
		h.counts = append(h.counts, 0)
	}
	h.counts[idx]++
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.total }

// Sum returns the sum of recorded samples.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the sample mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() float64 {
	if !h.hasData {
		return 0
	}
	return h.min
}

// Max returns the largest sample, or 0 with no samples.
func (h *Histogram) Max() float64 {
	if !h.hasData {
		return 0
	}
	return h.max
}

// Quantile returns an estimate of the q-quantile (0 <= q <= 1). The estimate
// is the upper bound of the bucket containing the target rank, clamped to
// the observed min/max so small sample sets stay sensible.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("metrics: quantile %v out of range", q))
	}
	if h.total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	if rank <= h.zero {
		return 0
	}
	seen := h.zero
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := h.boundOf(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// Percentile is Quantile with p in [0,100].
func (h *Histogram) Percentile(p float64) float64 { return h.Quantile(p / 100) }

// Merge adds all samples of other into h. The histograms must share bucket
// geometry.
func (h *Histogram) Merge(other *Histogram) {
	if other.growth != h.growth || other.first != h.first {
		panic("metrics: merging histograms with different geometry")
	}
	if other.total == 0 {
		return
	}
	if !h.hasData || other.min < h.min {
		h.min = other.min
	}
	if !h.hasData || other.max > h.max {
		h.max = other.max
	}
	h.hasData = true
	h.total += other.total
	h.sum += other.sum
	h.zero += other.zero
	for len(h.counts) < len(other.counts) {
		h.counts = append(h.counts, 0)
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
}

// Reset discards all samples, keeping the bucket geometry.
func (h *Histogram) Reset() {
	h.counts = h.counts[:0]
	h.zero, h.total = 0, 0
	h.sum, h.min, h.max = 0, 0, 0
	h.hasData = false
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.4g p50=%.4g p99=%.4g max=%.4g",
		h.total, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
}

// Summary accumulates count/mean/variance/min/max online (Welford) without
// retaining samples.
type Summary struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Observe records one sample.
func (s *Summary) Observe(v float64) {
	if math.IsNaN(v) {
		panic("metrics: NaN sample")
	}
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	d := v - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (v - s.mean)
}

// Count returns the number of samples.
func (s *Summary) Count() uint64 { return s.n }

// Mean returns the sample mean, or 0 with no samples.
func (s *Summary) Mean() float64 { return s.mean }

// Sum returns n*mean.
func (s *Summary) Sum() float64 { return s.mean * float64(s.n) }

// Variance returns the unbiased sample variance, or 0 with <2 samples.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest sample, or 0 with no samples.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest sample, or 0 with no samples.
func (s *Summary) Max() float64 { return s.max }

// ExactQuantile computes the q-quantile of a sample slice by sorting a copy
// (nearest-rank). It is a test/verification helper, not a hot path.
func ExactQuantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	cp := append([]float64(nil), samples...)
	sort.Float64s(cp)
	rank := int(math.Ceil(q*float64(len(cp)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(cp) {
		rank = len(cp) - 1
	}
	return cp[rank]
}
