package metrics

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"testing"
)

// TestCounterSetWriteCSVRoundTrip proves WriteCSV output parses back into
// an equivalent counter set with a standards-compliant CSV reader,
// including names that require quoting.
func TestCounterSetWriteCSVRoundTrip(t *testing.T) {
	orig := NewCounterSet()
	orig.Declare("drops", "retransmits")
	orig.Add("drops", 17)
	orig.Add("weird,name", 3) // needs csvEscape quoting
	orig.Add(`quote"name`, 5)
	orig.Set("retransmits", 0)

	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}

	rows, err := csv.NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
	if err != nil {
		t.Fatalf("WriteCSV output does not re-parse: %v", err)
	}
	if len(rows) != 5 || rows[0][0] != "counter" || rows[0][1] != "value" {
		t.Fatalf("rows = %v", rows)
	}
	back := NewCounterSet()
	for _, row := range rows[1:] {
		v, err := strconv.ParseUint(row[1], 10, 64)
		if err != nil {
			t.Fatalf("value %q: %v", row[1], err)
		}
		back.Set(row[0], v)
	}
	names := orig.Names()
	if got := back.Names(); len(got) != len(names) {
		t.Fatalf("round-trip names = %v, want %v", got, names)
	}
	for i, n := range names {
		if back.Names()[i] != n {
			t.Fatalf("name order changed: %v vs %v", back.Names(), names)
		}
		if back.Get(n) != orig.Get(n) {
			t.Fatalf("counter %q = %d after round trip, want %d", n, back.Get(n), orig.Get(n))
		}
	}
}

// TestHistogramQuantileSingleSample checks that every quantile of a
// one-sample distribution is that sample (the bucket upper bound must be
// clamped to the observed max, not rounded up).
func TestHistogramQuantileSingleSample(t *testing.T) {
	h := NewHistogram(0.001)
	h.Observe(3.7)
	for _, q := range []float64{0, 0.01, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 3.7 {
			t.Fatalf("Quantile(%v) = %v with single sample 3.7", q, got)
		}
	}
	if h.Min() != 3.7 || h.Max() != 3.7 || h.Mean() != 3.7 {
		t.Fatalf("min/max/mean = %v/%v/%v", h.Min(), h.Max(), h.Mean())
	}
}

// TestHistogramQuantileAllZero checks the zero-bucket path: a
// distribution of only zeros reports zero at every quantile.
func TestHistogramQuantileAllZero(t *testing.T) {
	h := NewHistogram(0.001)
	for i := 0; i < 100; i++ {
		h.Observe(0)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("Quantile(%v) = %v for all-zero samples", q, got)
		}
	}
	if h.Count() != 100 || h.Sum() != 0 || h.Max() != 0 {
		t.Fatalf("count/sum/max = %d/%v/%v", h.Count(), h.Sum(), h.Max())
	}
}
