package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSeriesLinearFit(t *testing.T) {
	s := &Series{Name: "lin"}
	for x := 1.0; x <= 10; x++ {
		s.Add(x, 3*x+2)
	}
	slope, intercept, r2 := s.LinearFit()
	if math.Abs(slope-3) > 1e-9 || math.Abs(intercept-2) > 1e-9 {
		t.Fatalf("fit = %v, %v", slope, intercept)
	}
	if r2 < 0.999999 {
		t.Fatalf("r2 = %v, want ~1", r2)
	}
}

func TestSeriesLinearFitNoise(t *testing.T) {
	s := &Series{}
	// y = 2x with deterministic +/-1 noise: r2 should remain high.
	for i := 0; i < 100; i++ {
		n := 1.0
		if i%2 == 0 {
			n = -1.0
		}
		s.Add(float64(i), 2*float64(i)+n)
	}
	slope, _, r2 := s.LinearFit()
	if math.Abs(slope-2) > 0.01 {
		t.Fatalf("slope = %v", slope)
	}
	if r2 < 0.99 {
		t.Fatalf("r2 = %v", r2)
	}
}

func TestSeriesAccessors(t *testing.T) {
	s := &Series{}
	s.Add(1, 10)
	s.Add(2, 20)
	if v, ok := s.YAt(2); !ok || v != 20 {
		t.Fatalf("YAt(2) = %v, %v", v, ok)
	}
	if _, ok := s.YAt(3); ok {
		t.Fatal("YAt(3) should miss")
	}
	lo, hi, ok := s.MinMaxY()
	if !ok || lo != 10 || hi != 20 {
		t.Fatalf("MinMaxY = %v %v %v", lo, hi, ok)
	}
	if xs := s.Xs(); len(xs) != 2 || xs[1] != 2 {
		t.Fatalf("Xs = %v", xs)
	}
	if ys := s.Ys(); len(ys) != 2 || ys[0] != 10 {
		t.Fatalf("Ys = %v", ys)
	}
}

func TestSortSeriesByX(t *testing.T) {
	s := &Series{}
	s.Add(3, 30)
	s.Add(1, 10)
	s.Add(2, 20)
	SortSeriesByX(s)
	for i, p := range s.Points {
		if p.X != float64(i+1) {
			t.Fatalf("not sorted: %v", s.Points)
		}
	}
}

func TestFigureCSV(t *testing.T) {
	f := &Figure{Title: "Fig", XLabel: "period", YLabel: "latency,us"}
	a := f.AddSeries("stream")
	a.Add(1, 1.2)
	a.Add(10, 5.0)
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "series,period,\"latency,us\"\n") {
		t.Fatalf("header wrong: %q", out)
	}
	if !strings.Contains(out, "stream,1,1.2") || !strings.Contains(out, "stream,10,5") {
		t.Fatalf("rows wrong: %q", out)
	}
}

func TestFigureGet(t *testing.T) {
	f := &Figure{}
	f.AddSeries("a")
	b := f.AddSeries("b")
	if f.Get("b") != b {
		t.Fatal("Get(b) wrong")
	}
	if f.Get("zzz") != nil {
		t.Fatal("Get(zzz) should be nil")
	}
}

func TestFigureRenderASCII(t *testing.T) {
	f := &Figure{Title: "T", XLabel: "x", YLabel: "y", LogY: true}
	s := f.AddSeries("s")
	for x := 1.0; x <= 32; x *= 2 {
		s.Add(x, x*x)
	}
	var buf bytes.Buffer
	if err := f.RenderASCII(&buf, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "*") {
		t.Fatalf("render missing content:\n%s", out)
	}
	// Empty figure renders gracefully.
	var buf2 bytes.Buffer
	if err := (&Figure{Title: "E"}).RenderASCII(&buf2, 40, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf2.String(), "no data") {
		t.Fatalf("empty render: %q", buf2.String())
	}
}

func TestTableRenderAndLookup(t *testing.T) {
	tb := &Table{Title: "Table I", Columns: []string{"workload", "PERIOD=1", "PERIOD=1000"}}
	tb.AddRow("Redis", "1.01x", "1.73x")
	tb.AddRow("Graph500 BFS", "6x", "2209x")
	if v, ok := tb.Lookup("Redis", "PERIOD=1000"); !ok || v != "1.73x" {
		t.Fatalf("lookup = %v %v", v, ok)
	}
	if _, ok := tb.Lookup("Redis", "nope"); ok {
		t.Fatal("lookup of missing column should fail")
	}
	if _, ok := tb.Lookup("nope", "PERIOD=1"); ok {
		t.Fatal("lookup of missing row should fail")
	}
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Graph500 BFS") {
		t.Fatalf("render: %q", buf.String())
	}
	var csv bytes.Buffer
	if err := tb.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "Redis,1.01x,1.73x") {
		t.Fatalf("csv: %q", csv.String())
	}
}

func TestTableRowMismatchPanics(t *testing.T) {
	tb := &Table{Columns: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Error("row mismatch did not panic")
		}
	}()
	tb.AddRow("only one")
}
