package metrics

import (
	"fmt"
	"io"
	"sync"
)

// CounterSet is an ordered collection of named cumulative counters — the
// fault/retransmit/recovery accounting that the chaos harness aggregates
// across runs and exports through the report pipeline. Counters are
// declared (or lazily created) by name and keep their declaration order,
// so CSV and table output are stable across runs.
//
// All methods are safe for concurrent use: parallel sweeps run one testbed
// per goroutine, and a set that aggregates across testbeds (or feeds
// telemetry probes while a run mutates it) must not race. The mutex is
// uncontended in the common single-testbed case.
type CounterSet struct {
	mu    sync.Mutex
	names []string
	vals  map[string]uint64
}

// NewCounterSet returns an empty counter set.
func NewCounterSet() *CounterSet {
	return &CounterSet{vals: make(map[string]uint64)}
}

// Declare registers names at zero; already-known names are left untouched.
// Declaring up front fixes output order and lets telemetry register probes
// before any event fires.
func (c *CounterSet) Declare(names ...string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range names {
		c.ensure(n)
	}
}

// ensure must be called with c.mu held.
func (c *CounterSet) ensure(name string) {
	if _, ok := c.vals[name]; !ok {
		c.names = append(c.names, name)
		c.vals[name] = 0
	}
}

// Add increments a counter, creating it at zero first if needed.
func (c *CounterSet) Add(name string, delta uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensure(name)
	c.vals[name] += delta
}

// Set overwrites a counter's value, creating it if needed — for counters
// mirrored from an external cumulative source.
func (c *CounterSet) Set(name string, v uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensure(name)
	c.vals[name] = v
}

// Get returns a counter's value (zero for unknown names).
func (c *CounterSet) Get(name string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vals[name]
}

// Names returns the counter names in declaration order.
func (c *CounterSet) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.names))
	copy(out, c.names)
	return out
}

// Merge adds every counter of other into c, declaring missing names.
func (c *CounterSet) Merge(other *CounterSet) {
	for _, n := range other.Names() {
		c.Add(n, other.Get(n))
	}
}

// snapshot returns a consistent copy of names and values.
func (c *CounterSet) snapshot() ([]string, map[string]uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, len(c.names))
	copy(names, c.names)
	vals := make(map[string]uint64, len(c.vals))
	for k, v := range c.vals {
		vals[k] = v
	}
	return names, vals
}

// Table renders the set as a two-column table.
func (c *CounterSet) Table(title string) *Table {
	names, vals := c.snapshot()
	t := &Table{Title: title, Columns: []string{"counter", "value"}}
	for _, n := range names {
		t.AddRow(n, fmt.Sprintf("%d", vals[n]))
	}
	return t
}

// WriteCSV emits the set as counter,value rows.
func (c *CounterSet) WriteCSV(w io.Writer) error {
	names, vals := c.snapshot()
	if _, err := fmt.Fprintln(w, "counter,value"); err != nil {
		return err
	}
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "%s,%d\n", csvEscape(n), vals[n]); err != nil {
			return err
		}
	}
	return nil
}
