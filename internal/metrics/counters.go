package metrics

import (
	"fmt"
	"io"
)

// CounterSet is an ordered collection of named cumulative counters — the
// fault/retransmit/recovery accounting that the chaos harness aggregates
// across runs and exports through the report pipeline. Counters are
// declared (or lazily created) by name and keep their declaration order,
// so CSV and table output are stable across runs.
type CounterSet struct {
	names []string
	vals  map[string]uint64
}

// NewCounterSet returns an empty counter set.
func NewCounterSet() *CounterSet {
	return &CounterSet{vals: make(map[string]uint64)}
}

// Declare registers names at zero; already-known names are left untouched.
// Declaring up front fixes output order and lets telemetry register probes
// before any event fires.
func (c *CounterSet) Declare(names ...string) {
	for _, n := range names {
		c.ensure(n)
	}
}

func (c *CounterSet) ensure(name string) {
	if _, ok := c.vals[name]; !ok {
		c.names = append(c.names, name)
		c.vals[name] = 0
	}
}

// Add increments a counter, creating it at zero first if needed.
func (c *CounterSet) Add(name string, delta uint64) {
	c.ensure(name)
	c.vals[name] += delta
}

// Set overwrites a counter's value, creating it if needed — for counters
// mirrored from an external cumulative source.
func (c *CounterSet) Set(name string, v uint64) {
	c.ensure(name)
	c.vals[name] = v
}

// Get returns a counter's value (zero for unknown names).
func (c *CounterSet) Get(name string) uint64 { return c.vals[name] }

// Names returns the counter names in declaration order.
func (c *CounterSet) Names() []string {
	out := make([]string, len(c.names))
	copy(out, c.names)
	return out
}

// Merge adds every counter of other into c, declaring missing names.
func (c *CounterSet) Merge(other *CounterSet) {
	for _, n := range other.Names() {
		c.Add(n, other.Get(n))
	}
}

// Table renders the set as a two-column table.
func (c *CounterSet) Table(title string) *Table {
	t := &Table{Title: title, Columns: []string{"counter", "value"}}
	for _, n := range c.names {
		t.AddRow(n, fmt.Sprintf("%d", c.vals[n]))
	}
	return t
}

// WriteCSV emits the set as counter,value rows.
func (c *CounterSet) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "counter,value"); err != nil {
		return err
	}
	for _, n := range c.names {
		if _, err := fmt.Fprintf(w, "%s,%d\n", csvEscape(n), c.vals[n]); err != nil {
			return err
		}
	}
	return nil
}
