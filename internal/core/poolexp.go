package core

import (
	"fmt"

	"thymesim/internal/cluster"
	"thymesim/internal/memport"
	"thymesim/internal/metrics"
	"thymesim/internal/ocapi"
	"thymesim/internal/pool"
	"thymesim/internal/sim"
	"thymesim/internal/sweep"
	"thymesim/internal/tfnic"
	"thymesim/internal/workloads/stream"
)

// PoolContention holds the rack-scale pooling experiment: mean per-borrower
// STREAM bandwidth as the borrower population grows, under each placement
// policy. Default-pair funnels every borrower onto one lender (the paper's
// fixed pairing scaled up — worst-case MCLN-style contention); least-loaded
// and locality spread regions across the pool.
type PoolContention struct {
	Figure   *metrics.Figure
	Policies []string
	Counts   []int
	// Bps[p][i] is the mean per-borrower bandwidth with Counts[i]
	// borrowers under Policies[p].
	Bps [][]float64
}

// streamRegionBytes returns the region size a borrower needs for one
// STREAM instance (three arrays plus slack), line-aligned.
func streamRegionBytes(elements int) uint64 {
	span := (uint64(elements)*8 + ocapi.CacheLineSize - 1) &^ uint64(ocapi.CacheLineSize-1)
	return 4 * span
}

// RunPoolContention sweeps borrower counts × placement policies on a
// rack with the given lender count. Each point is an independent pool:
// every borrower attaches one region through the policy and runs STREAM
// against it, all concurrently over the shared switch.
func (o Options) RunPoolContention(counts []int, lenders int) *PoolContention {
	policies := []string{"default-pair", "least-loaded", "locality"}
	pc := &PoolContention{
		Figure: &metrics.Figure{
			Title:  fmt.Sprintf("Pool contention: %d-lender rack, per-borrower STREAM bandwidth by placement policy", lenders),
			XLabel: "concurrent borrowers",
			YLabel: "per-borrower bandwidth (GB/s)",
		},
		Policies: policies,
		Counts:   counts,
	}
	flat := sweep.Map(o.Workers, len(policies)*len(counts), func(idx int) float64 {
		return o.runPoolPoint(policies[idx/len(counts)], counts[idx%len(counts)], lenders)
	})
	pc.Bps = make([][]float64, len(policies))
	for pi, name := range policies {
		s := pc.Figure.AddSeries(name)
		pc.Bps[pi] = flat[pi*len(counts) : (pi+1)*len(counts)]
		for ci, n := range counts {
			s.Add(float64(n), pc.Bps[pi][ci]/1e9)
		}
	}
	return pc
}

// runPoolPoint measures one (policy, borrower-count) point.
func (o Options) runPoolPoint(policy string, borrowers, lenders int) float64 {
	pol, err := pool.ByName(policy)
	if err != nil {
		panic(err)
	}
	region := streamRegionBytes(o.StreamElements)
	p := cluster.NewPool(cluster.PoolConfig{
		Borrowers: borrowers,
		Lenders:   lenders,
		Base:      o.TestbedConfig(1),
		Placement: pol,
		Shards:    o.Shards,
		// Sized so even default-pair can funnel every borrower onto
		// lender 0: contention, not allocation failure, is the measured
		// effect.
		LenderCapacity: region * uint64(borrowers),
		// Two racks: locality has a real distance gradient to exploit.
		RackSize: (borrowers + lenders + 1) / 2,
	})
	var runners []*stream.Runner
	for i := 0; i < borrowers; i++ {
		r, err := p.Attach(i, region)
		if err != nil {
			panic(err)
		}
		cfg := stream.DefaultConfig(r.Addr(0))
		cfg.Elements = o.StreamElements
		// Each runner lives on its borrower's kernel: in sharded mode the
		// borrowers advance in parallel, so both the runner's events and
		// its completion callback stay shard-local.
		runners = append(runners, stream.New(p.Borrowers[i].K, p.Borrowers[i].NewRemoteHierarchy(), cfg))
	}
	// Results land in per-borrower slots — callbacks on different shards
	// run concurrently, so no shared append.
	all := make([][]stream.Result, borrowers)
	for i, r := range runners {
		i, r := i, r
		p.Borrowers[i].K.At(0, func() {
			r.Run(func(res []stream.Result) { all[i] = res })
		})
	}
	p.Run()
	var sum float64
	n := 0
	for _, res := range all {
		if res == nil {
			continue
		}
		bw, _ := stream.Summary(res)
		sum += bw
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// PoolChaosConfig parameterizes the pool chaos campaign.
type PoolChaosConfig struct {
	Seed      uint64
	Borrowers int
	Lenders   int
	// Rounds of interleaved churn (attach/detach/grow), lender
	// crash/restore, and traffic bursts.
	Rounds int
	// TagSpace, when > 0, overrides the per-borrower transaction tag
	// space (the default 256 sizes every switch input queue at
	// 2*TagSpace*Borrowers; rack-scale campaigns shrink it to keep the
	// fabric realistic). MSHRs are capped to fit.
	TagSpace int
}

// DefaultPoolChaosConfig returns the nightly campaign shape.
func DefaultPoolChaosConfig() PoolChaosConfig {
	return PoolChaosConfig{Seed: 1, Borrowers: 4, Lenders: 3, Rounds: 24}
}

// Validate checks the configuration.
func (c PoolChaosConfig) Validate() error {
	if c.Borrowers < 1 || c.Lenders < 1 {
		return fmt.Errorf("core: pool chaos %dx%d", c.Borrowers, c.Lenders)
	}
	if c.Rounds < 1 {
		return fmt.Errorf("core: pool chaos rounds = %d", c.Rounds)
	}
	return nil
}

// PoolChaos is the campaign result plus its invariant audit.
type PoolChaos struct {
	Seed   uint64
	Rounds int

	Attaches, Detaches, Grows uint64
	AttachRejected            uint64
	Crashes, Restores         uint64

	Issued, Completed uint64
	Poisoned, Expired uint64
	TranslationFaults uint64

	Violations []string
}

// OK reports whether every invariant held.
func (r *PoolChaos) OK() bool { return len(r.Violations) == 0 }

// RunPoolChaos churns a live pool: every round each borrower randomly
// attaches, detaches, or grows regions and bursts reads/writes at one of
// them, while lenders randomly crash and come back wiped (a control probe
// re-arms them). The deadline+ARQ stack keeps every transaction resolving;
// afterwards the audit checks the invariants that churn must never bend:
// exactly-once port accounting, ARQ conservation, allocator conservation
// against the live region set, full completion, and a clean fabric.
func (o Options) RunPoolChaos(cfg PoolChaosConfig) *PoolChaos {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	arq := tfnic.DefaultARQConfig()
	base := o.TestbedConfig(1)
	base.ARQ = &arq
	base.FillDeadline = 200 * sim.Microsecond
	if cfg.TagSpace > 0 {
		base.TagSpace = cfg.TagSpace
		if base.MSHRs > cfg.TagSpace {
			base.MSHRs = cfg.TagSpace
		}
	}
	p := cluster.NewPool(cluster.PoolConfig{
		Borrowers: cfg.Borrowers,
		Lenders:   cfg.Lenders,
		Base:      base,
		Placement: pool.LeastLoaded{},
		Shards:    o.Shards,
		// Small reservations so the campaign actually exercises
		// allocation pressure and attach rejection.
		LenderCapacity: 4 << 20,
	})
	rng := sim.NewRand(cfg.Seed ^ 0x900C)
	res := &PoolChaos{Seed: cfg.Seed, Rounds: cfg.Rounds}

	live := make([][]cluster.Region, cfg.Borrowers)
	hs := make([]*memport.Hierarchy, cfg.Borrowers)
	for i := range hs {
		hs[i] = p.Borrowers[i].NewRemoteHierarchy()
	}
	// Completion callbacks run on the borrower's kernel; with the pool
	// sharded those kernels advance concurrently, so each borrower counts
	// into its own slot and the driver sums after the run.
	completed := make([]uint64, cfg.Borrowers)
	crashed := -1
	const roundGap = 500 * sim.Microsecond
	// The campaign is a StepTo-barrier driver: each round the pool runs to
	// the round boundary, then — with every kernel parked — the driver
	// applies the control-plane phases single-threaded. The same code is
	// deterministic in legacy and sharded modes.
	for round := 0; round < cfg.Rounds; round++ {
		p.StepTo(sim.Time(round) * sim.Time(roundGap))
		// Fault phase: restore last round's casualty wiped (a probe
		// re-arms its window state), or fell a fresh lender.
		if crashed >= 0 {
			l := crashed
			crashed = -1
			p.RestoreLender(l, true)
			res.Restores++
			p.Borrowers[0].ProbeLender(p.Lenders[l], 100*sim.Microsecond,
				func(bool, sim.Duration) {})
		} else if rng.Float64() < 0.25 {
			crashed = rng.Intn(cfg.Lenders)
			p.CrashLender(crashed)
			res.Crashes++
		}
		// Churn phase: pure control-plane work against the allocators.
		for b := 0; b < cfg.Borrowers; b++ {
			switch op := rng.Intn(10); {
			case op < 4:
				size := uint64(rng.Intn(16)+1) * (64 << 10)
				r, err := p.Attach(b, size)
				if err != nil {
					res.AttachRejected++ // pool full here; legal
					break
				}
				live[b] = append(live[b], r)
				res.Attaches++
			case op < 6:
				if len(live[b]) == 0 {
					break
				}
				j := rng.Intn(len(live[b]))
				if err := p.Detach(live[b][j]); err != nil {
					panic(err)
				}
				live[b] = append(live[b][:j], live[b][j+1:]...)
				res.Detaches++
			case op < 7:
				if len(live[b]) == 0 {
					break
				}
				j := rng.Intn(len(live[b]))
				grown, err := p.Grow(live[b][j], live[b][j].Size+64<<10)
				if err != nil {
					break // neighbour carved out; legal
				}
				live[b][j] = grown
				res.Grows++
			}
			// Traffic phase: a burst at one random live region.
			if len(live[b]) == 0 {
				continue
			}
			r := live[b][rng.Intn(len(live[b]))]
			lines := int(r.Size / ocapi.CacheLineSize)
			slot := &completed[b]
			for a := rng.Intn(24) + 8; a > 0; a-- {
				off := uint64(rng.Intn(lines)) * ocapi.CacheLineSize
				res.Issued++
				hs[b].Access(r.Addr(off), 8, rng.Intn(2) == 0,
					func() { *slot++ })
			}
		}
	}
	p.Run()
	for _, c := range completed {
		res.Completed += c
	}

	viol := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}
	if res.Issued != res.Completed {
		viol("completion: %d accesses issued, %d completed", res.Issued, res.Completed)
	}
	for b := 0; b < cfg.Borrowers; b++ {
		bn := p.Borrowers[b]
		be := bn.Backend()
		res.Poisoned += be.Poisoned()
		res.Expired += be.Expired()
		res.TranslationFaults += bn.NIC.Stats().TranslationFaults
		st := bn.ARQ.Stats()
		if got := be.Reads() + be.Writes(); got != st.Tracked+be.ExpiredUnsent() {
			viol("borrower %d exactly-once: port completed %d, ARQ tracked %d + expired-unsent %d",
				b, got, st.Tracked, be.ExpiredUnsent())
		}
		if st.Tracked != st.Completed+st.Dead {
			viol("borrower %d ARQ accounting: tracked %d != completed %d + dead %d",
				b, st.Tracked, st.Completed, st.Dead)
		}
	}
	liveOn := make([]uint64, cfg.Lenders)
	for b := range live {
		for _, r := range live[b] {
			liveOn[r.Lender] += r.Segment.Size
		}
	}
	for l, ln := range p.Lenders {
		a := ln.Alloc
		if a.Allocated()+a.FreeBytes() != a.Capacity() {
			viol("lender %d capacity leak: %d allocated + %d free != %d",
				l, a.Allocated(), a.FreeBytes(), a.Capacity())
		}
		if a.Allocated() != liveOn[l] {
			viol("lender %d allocator holds %d bytes, live regions sum to %d",
				l, a.Allocated(), liveOn[l])
		}
	}
	if p.Switch != nil && p.Switch.Dropped() != 0 {
		viol("switch dropped %d beats", p.Switch.Dropped())
	}
	if len(res.Violations) > 0 {
		o.Metrics.DumpOnAuditFailure("pool-chaos", res.Violations)
	}
	return res
}
