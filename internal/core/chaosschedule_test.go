package core

import (
	"bytes"
	"fmt"
	"testing"

	"thymesim/internal/control"
	"thymesim/internal/inject"
	"thymesim/internal/sim"
)

// TestChaosScheduleCampaign runs the default crash+wipe+burst+brownout
// campaign and requires a green audit with real breaker activity.
func TestChaosScheduleCampaign(t *testing.T) {
	o := Default()
	o.Workers = 1
	rep, err := o.RunChaosSchedule(DefaultChaosScheduleConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Result
	if !rep.OK() {
		t.Fatalf("campaign not OK: completed=%t violations=%v", res.Completed, res.Violations)
	}
	if res.Trips == 0 {
		t.Fatal("lender crash never tripped the breaker")
	}
	if res.Closes == 0 {
		t.Fatal("breaker never re-closed")
	}
	if res.FinalBreaker != control.BreakerClosed.String() {
		t.Fatalf("breaker ended %s", res.FinalBreaker)
	}
	if res.RecoveryUs <= 0 || res.TripUs <= 0 {
		t.Fatalf("recovery not measured: trip %g us, recovery %g us", res.TripUs, res.RecoveryUs)
	}
	if res.CrashDrops == 0 {
		t.Fatal("crash window black-holed nothing")
	}
	if res.WipeNacks == 0 {
		t.Fatal("window wipe nacked nothing before re-arm")
	}
	if res.Bursts == 0 || res.Corrupted == 0 {
		t.Fatalf("burst window inert: %d bursts, %d corrupted", res.Bursts, res.Corrupted)
	}
	if res.Expired == 0 {
		t.Fatal("no transaction ever expired at its deadline")
	}
	if res.GateLocalized == 0 {
		t.Fatal("open breaker never localized a page")
	}
}

// TestChaosScheduleConfigErrors exercises the harness-path validation:
// zero windows and thresholds must come back as errors, not as silently
// inert supervision.
func TestChaosScheduleConfigErrors(t *testing.T) {
	o := Default()
	o.Workers = 1
	cases := []struct {
		name string
		mut  func(*ChaosScheduleConfig)
	}{
		{"zero breaker window", func(c *ChaosScheduleConfig) { c.Breaker.Window = 0 }},
		{"zero breaker min samples", func(c *ChaosScheduleConfig) { c.Breaker.MinSamples = 0 }},
		{"zero breaker dwell", func(c *ChaosScheduleConfig) { c.Breaker.OpenTimeout = 0 }},
		{"zero supervisor heartbeat", func(c *ChaosScheduleConfig) { c.Supervisor.Heartbeat = 0 }},
		{"zero supervisor threshold", func(c *ChaosScheduleConfig) { c.Supervisor.MissThreshold = 0 }},
		{"zero deadline", func(c *ChaosScheduleConfig) { c.Deadline = 0 }},
		{"empty schedule", func(c *ChaosScheduleConfig) { c.Schedule = nil }},
		{"unpaired crash", func(c *ChaosScheduleConfig) {
			c.Schedule = inject.Schedule{{At: 0, Op: inject.OpLenderRestore}}
		}},
		{"bad burst chain", func(c *ChaosScheduleConfig) { c.Burst.PBadGood = 0 }},
		{"poison bound", func(c *ChaosScheduleConfig) { c.MaxPoisonedFrac = 0 }},
	}
	for _, tc := range cases {
		cfg := DefaultChaosScheduleConfig()
		tc.mut(&cfg)
		if _, err := o.RunChaosSchedule(cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := control.NewBreaker(sim.NewKernel(), control.BreakerConfig{}); err == nil {
		t.Error("zero breaker config accepted")
	}
	if _, err := control.NewSupervisorChecked(nil, control.SupervisorConfig{}); err == nil {
		t.Error("zero supervisor config accepted")
	}
}

// breakerRecoveryCSV renders the sweep the same way the report does.
func breakerRecoveryCSV(br *BreakerRecovery) string {
	var buf bytes.Buffer
	for _, p := range br.Points {
		fmt.Fprintf(&buf, "%+v\n", p)
	}
	return buf.String()
}

// TestBreakerRecoveryDeterminism requires the sweep to be byte-identical
// across worker counts and across repeated same-seed runs.
func TestBreakerRecoveryDeterminism(t *testing.T) {
	run := func(workers int) string {
		o := Default()
		o.Workers = workers
		br, err := o.RunBreakerRecovery()
		if err != nil {
			t.Fatal(err)
		}
		return breakerRecoveryCSV(br)
	}
	j1 := run(1)
	if j8 := run(8); j8 != j1 {
		t.Fatalf("-j 8 diverged from -j 1:\n%s\nvs\n%s", j8, j1)
	}
	if again := run(1); again != j1 {
		t.Fatal("repeated same-seed run diverged")
	}
}

// TestChaosScheduleConcurrentSeeds drives campaigns across several seeds
// in one parallel sweep (run under -race in CI): per-seed results must not
// leak across points, and each seed's audit must hold independently.
func TestChaosScheduleConcurrentSeeds(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5, 6}
	type out struct {
		seed  uint64
		fills uint64
		viol  []string
	}
	results := make([]out, len(seeds))
	run := func(workers int) []out {
		o := Default()
		o.Workers = workers
		got := make([]out, len(seeds))
		done := make(chan int, len(seeds))
		for i, seed := range seeds {
			i, seed := i, seed
			go func() {
				cfg := DefaultChaosScheduleConfig()
				cfg.Seed = seed
				rep, err := o.RunChaosSchedule(cfg)
				if err != nil {
					t.Error(err)
					done <- i
					return
				}
				got[i] = out{seed: seed, fills: rep.Result.Fills, viol: rep.Result.Violations}
				done <- i
			}()
		}
		for range seeds {
			<-done
		}
		return got
	}
	results = run(1)
	for i, r := range results {
		if len(r.viol) > 0 {
			t.Fatalf("seed %d violated invariants: %v", r.seed, r.viol)
		}
		if r.fills == 0 {
			t.Fatalf("seed %d completed no fills", r.seed)
		}
		if i > 0 && r.fills == 0 {
			t.Fatalf("cross-point leakage suspected at seed %d", r.seed)
		}
	}
	// Same seeds again, concurrently: byte-identical per-seed outcomes.
	again := run(4)
	for i := range seeds {
		if again[i].fills != results[i].fills {
			t.Fatalf("seed %d: fills %d != %d across runs (cross-point leakage)",
				seeds[i], again[i].fills, results[i].fills)
		}
	}
}
