package core

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// writeReportDir renders a report's CSVs into a temp dir and returns its
// files as name -> contents.
func writeReportDir(t *testing.T, rep *Report) map[string][]byte {
	t.Helper()
	dir := t.TempDir()
	if err := rep.WriteCSVDir(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]byte{}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = b
	}
	return out
}

// TestParallelSweepDeterminism is the tentpole regression guarantee: the
// worker count is a throughput knob, never a results knob. The same seed
// must produce byte-identical CSVs at -j 1 and -j 8.
func TestParallelSweepDeterminism(t *testing.T) {
	periods := []int64{1, 10, 50, 100}
	counts := []int{0, 1, 2}
	build := func(workers int) *Report {
		o := fastOptions()
		o.Workers = workers
		return &Report{
			Options:    o,
			Validation: o.RunDelayValidation(periods),
			MCBN:       o.RunMCBN(counts),
			MCLN:       o.RunMCLN(counts),
			PoolCont:   o.RunPoolContention([]int{1, 2, 4}, 2),
			Breakdown:  o.RunLatencyBreakdown(periods, 4),
		}
	}
	serial := writeReportDir(t, build(1))
	parallel := writeReportDir(t, build(8))
	if len(serial) == 0 {
		t.Fatal("no CSV files written")
	}
	if len(serial) != len(parallel) {
		t.Fatalf("file sets differ: %d serial vs %d parallel", len(serial), len(parallel))
	}
	for name, want := range serial {
		got, ok := parallel[name]
		if !ok {
			t.Fatalf("%s missing from parallel run", name)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s differs between -j 1 and -j 8:\nserial:\n%s\nparallel:\n%s", name, want, got)
		}
	}
}

// TestPoolContentionDeterminism pins the pool experiment's determinism
// contract on its own: two same-seed invocations are byte-identical, and
// the serial/parallel CSVs match (the N×M pool points are independent
// testbeds, so worker scheduling must never leak into results).
func TestPoolContentionDeterminism(t *testing.T) {
	run := func(workers int) map[string][]byte {
		o := fastOptions()
		o.Workers = workers
		rep := &Report{Options: o, PoolCont: o.RunPoolContention([]int{1, 2, 4, 8}, 4)}
		return writeReportDir(t, rep)
	}
	first := run(1)
	again := run(1)
	wide := run(8)
	csv, ok := first["fig_pool_contention.csv"]
	if !ok || len(csv) == 0 {
		t.Fatal("fig_pool_contention.csv missing or empty")
	}
	if !bytes.Equal(csv, again["fig_pool_contention.csv"]) {
		t.Error("two same-seed serial runs differ")
	}
	if !bytes.Equal(csv, wide["fig_pool_contention.csv"]) {
		t.Errorf("-j 1 and -j 8 differ:\nserial:\n%s\nparallel:\n%s", csv, wide["fig_pool_contention.csv"])
	}
}

// TestPoolChaosAuditHolds runs the pool chaos campaign across seeds and
// checks determinism (same seed, same counters) plus the invariant audit.
func TestPoolChaosAuditHolds(t *testing.T) {
	run := func(seed uint64) *PoolChaos {
		o := fastOptions()
		cfg := DefaultPoolChaosConfig()
		cfg.Seed = seed
		return o.RunPoolChaos(cfg)
	}
	for seed := uint64(1); seed <= 3; seed++ {
		r := run(seed)
		if !r.OK() {
			t.Fatalf("seed %d: %v", seed, r.Violations)
		}
		if r.Issued == 0 || r.Attaches == 0 {
			t.Fatalf("seed %d: campaign idle (%d issued, %d attaches)", seed, r.Issued, r.Attaches)
		}
		again := run(seed)
		if r.Issued != again.Issued || r.Completed != again.Completed ||
			r.Attaches != again.Attaches || r.Detaches != again.Detaches ||
			r.Crashes != again.Crashes || r.Poisoned != again.Poisoned {
			t.Fatalf("seed %d not deterministic: %+v vs %+v", seed, r, again)
		}
	}
}

// TestConcurrentSweepsUnderRace runs two full sweeps side by side — each
// internally parallel, each registering telemetry probes and counter sets —
// to prove (under -race) that concurrent testbeds share no mutable state.
func TestConcurrentSweepsUnderRace(t *testing.T) {
	run := func(seed uint64) *ChaosReport {
		o := fastOptions()
		o.Seed = seed
		o.Workers = 2
		cfg := DefaultChaosConfig()
		cfg.Seed = seed
		cfg.Workloads = []string{"stream", "kvstore"}
		return o.RunChaos(cfg)
	}
	var wg sync.WaitGroup
	reps := make([]*ChaosReport, 2)
	for i := range reps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reps[i] = run(uint64(i + 1))
		}(i)
	}
	wg.Wait()
	for i, rep := range reps {
		if !rep.OK() {
			t.Errorf("sweep %d: chaos invariants violated: %+v", i, rep.Results)
		}
	}
}

// TestMCBNZeroCountNoNaN pins the divide-by-zero fix: a zero instance
// count must contribute 0 GB/s, not NaN, to Fig. 6.
func TestMCBNZeroCountNoNaN(t *testing.T) {
	o := fastOptions()
	c := o.RunMCBN([]int{0, 1})
	if len(c.BorrowerBps) != 2 {
		t.Fatalf("points = %d, want 2", len(c.BorrowerBps))
	}
	if math.IsNaN(c.BorrowerBps[0]) || c.BorrowerBps[0] != 0 {
		t.Fatalf("n=0 bandwidth = %v, want 0", c.BorrowerBps[0])
	}
	if c.BorrowerBps[1] <= 0 || math.IsNaN(c.BorrowerBps[1]) {
		t.Fatalf("n=1 bandwidth = %v, want > 0", c.BorrowerBps[1])
	}
	for _, pt := range c.Figure.Series[0].Points {
		if math.IsNaN(pt.Y) {
			t.Fatalf("NaN leaked into the figure: %+v", c.Figure.Series[0].Points)
		}
	}
}
