package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"thymesim/internal/obs"
)

// TestBreakdownSumsToEndToEnd checks the decomposition's accounting: per
// PERIOD, the stage mean_us column sums to the end_to_end mean exactly,
// and the end_to_end mean agrees with the untraced STREAM fill latency
// (fig2's value) to well within 1%.
func TestBreakdownSumsToEndToEnd(t *testing.T) {
	o := fastOptions()
	sb := o.RunLatencyBreakdown([]int64{1, 100}, 1)
	if len(sb.Points) != 2 || sb.Tracer == nil {
		t.Fatalf("points = %d, tracer = %v", len(sb.Points), sb.Tracer)
	}
	for _, pt := range sb.Points {
		if pt.Spans == 0 || len(pt.Rows) == 0 {
			t.Fatalf("PERIOD=%d: no spans traced (%+v)", pt.Period, pt)
		}
		sum := 0.0
		for _, r := range pt.Rows {
			sum += r.MeanUs
		}
		if math.Abs(sum-pt.EndToEndUs) > 1e-9*pt.EndToEndUs {
			t.Errorf("PERIOD=%d: stage means sum to %v, end_to_end %v",
				pt.Period, sum, pt.EndToEndUs)
		}
		if dev := math.Abs(pt.EndToEndUs-pt.FillLatUs) / pt.FillLatUs; dev > 0.01 {
			t.Errorf("PERIOD=%d: tracer e2e %v vs STREAM fill %v (%.2f%% off, want <1%%)",
				pt.Period, pt.EndToEndUs, pt.FillLatUs, 100*dev)
		}
	}
	// More delay injection must show up as more injector stall share.
	inj := func(pt BreakdownPoint) float64 {
		for _, r := range pt.Rows {
			if r.Stage == obs.StageInjector {
				return r.SharePct
			}
		}
		return 0
	}
	if inj(sb.Points[1]) <= inj(sb.Points[0]) {
		t.Errorf("injector share did not grow with PERIOD: %v%% -> %v%%",
			inj(sb.Points[0]), inj(sb.Points[1]))
	}

	var buf bytes.Buffer
	if err := sb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "period,stage,count,mean_us,p99_us,share_pct\n") {
		t.Fatalf("csv header: %q", out)
	}
	if strings.Count(out, ",end_to_end,") != 2 {
		t.Fatalf("csv missing end_to_end rows: %q", out)
	}
}

// TestTracingIsTimingNeutral pins the tracer's core contract: enabling it
// must not change any measurement. The traced and untraced runs must be
// numerically identical, not merely close.
func TestTracingIsTimingNeutral(t *testing.T) {
	o := fastOptions()
	for _, period := range []int64{1, 200} {
		plain := o.StreamRemote(period)
		traced, tr := o.StreamRemoteTraced(period, obs.Config{Sample: 1})
		if tr == nil || tr.Finished() == 0 {
			t.Fatalf("PERIOD=%d: tracer recorded nothing", period)
		}
		if plain.BandwidthBps != traced.BandwidthBps || plain.FillLatUs != traced.FillLatUs {
			t.Errorf("PERIOD=%d: tracing perturbed timing: %v/%v vs %v/%v",
				period, plain.BandwidthBps, plain.FillLatUs,
				traced.BandwidthBps, traced.FillLatUs)
		}
		for i := range plain.PerKernel {
			if plain.PerKernel[i] != traced.PerKernel[i] {
				t.Errorf("PERIOD=%d kernel %s: traced run differs: %+v vs %+v",
					period, plain.PerKernel[i].Kernel, plain.PerKernel[i], traced.PerKernel[i])
			}
		}
	}
}

// TestTracedWrappersRun exercises the graph and KV traced entry points
// used by tfsim -trace.
func TestTracedWrappersRun(t *testing.T) {
	o := fastOptions()
	gm, gtr := o.GraphRemoteTraced(1, obs.Config{Sample: 4})
	if gtr.Finished() == 0 || gm.BFSTeps <= 0 {
		t.Fatalf("graph traced: %d spans, %v TEPS", gtr.Finished(), gm.BFSTeps)
	}
	km, ktr := o.KVRemoteTraced(1, obs.Config{Sample: 4})
	if ktr.Finished() == 0 || km.Throughput <= 0 {
		t.Fatalf("kv traced: %d spans, %v req/s", ktr.Finished(), km.Throughput)
	}
}
