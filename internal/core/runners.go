package core

import (
	"thymesim/internal/cluster"
	"thymesim/internal/memport"
	"thymesim/internal/sim"
	"thymesim/internal/workloads/graph500"
	"thymesim/internal/workloads/kvstore"
	"thymesim/internal/workloads/stream"
)

// StreamMeasurement is one STREAM execution's summary.
type StreamMeasurement struct {
	BandwidthBps float64
	FillLatUs    float64
	Elapsed      sim.Duration
	PerKernel    []stream.Result
}

// runStream executes STREAM on the given hierarchy (remote or local) and
// returns its summary. It runs inside a fresh kernel pass: callers own the
// testbed and must not have other traffic scheduled unless intentionally
// creating contention.
func (o Options) runStream(tb *cluster.Testbed, h *memport.Hierarchy, base uint64) StreamMeasurement {
	cfg := stream.DefaultConfig(base)
	cfg.Elements = o.StreamElements
	r := stream.New(tb.K, h, cfg)
	var out []stream.Result
	start := tb.K.Now()
	tb.K.At(start, func() { r.Run(func(res []stream.Result) { out = res }) })
	tb.K.Run()
	bw, lat := stream.Summary(out)
	var elapsed sim.Duration
	for _, res := range out {
		elapsed += res.Elapsed
	}
	return StreamMeasurement{BandwidthBps: bw, FillLatUs: lat, Elapsed: elapsed, PerKernel: out}
}

// StreamRemote runs STREAM against disaggregated memory at the given
// PERIOD.
func (o Options) StreamRemote(period int64) StreamMeasurement {
	tb := o.Testbed(period)
	return o.runStream(tb, tb.NewRemoteHierarchy(), tb.RemoteAddr(0))
}

// StreamLocal runs the local-memory baseline.
func (o Options) StreamLocal() StreamMeasurement {
	tb := o.Testbed(1)
	return o.runStream(tb, tb.NewLocalHierarchy(), 0)
}

// GraphMeasurement summarizes a Graph500 execution.
type GraphMeasurement struct {
	BFSTime  sim.Duration
	SSSPTime sim.Duration
	BFSTeps  float64
	SSSPTeps float64
}

func (o Options) graphConfig(base uint64) graph500.Config {
	cfg := graph500.DefaultConfig(base)
	cfg.Scale = o.GraphScale
	cfg.EdgeFactor = o.GraphEdgeFactor
	cfg.Roots = o.GraphRoots
	cfg.Seed = o.Seed
	cfg.Check = o.GraphScale <= 12 // validation cost grows with scale
	return cfg
}

func (o Options) runGraph(tb *cluster.Testbed, h *memport.Hierarchy, base uint64) GraphMeasurement {
	r := graph500.New(tb.K, h, o.graphConfig(base))
	var out *graph500.RunResult
	tb.K.At(tb.K.Now(), func() { r.Run(func(res *graph500.RunResult) { out = res }) })
	tb.K.Run()
	m := GraphMeasurement{BFSTime: out.MeanBFSTime, SSSPTime: out.MeanSSSPTime}
	if len(out.BFS) > 0 {
		m.BFSTeps = out.BFS[0].TEPS
	}
	if len(out.SSSP) > 0 {
		m.SSSPTeps = out.SSSP[0].TEPS
	}
	return m
}

// GraphRemote runs Graph500 against disaggregated memory.
func (o Options) GraphRemote(period int64) GraphMeasurement {
	tb := o.Testbed(period)
	return o.runGraph(tb, tb.NewRemoteHierarchy(), tb.RemoteAddr(0))
}

// GraphLocal runs the local baseline.
func (o Options) GraphLocal() GraphMeasurement {
	tb := o.Testbed(1)
	return o.runGraph(tb, tb.NewLocalHierarchy(), 0)
}

// KVMeasurement summarizes a Memtier run.
type KVMeasurement struct {
	Throughput float64
	MeanLatUs  float64
	P99LatUs   float64
}

func (o Options) kvBenchConfig() kvstore.BenchConfig {
	cfg := kvstore.DefaultBenchConfig()
	cfg.Threads = o.KVThreads
	cfg.ConnsPerThread = o.KVConns
	cfg.RequestsPerClient = o.KVRequests
	cfg.KeySpace = o.KVKeySpace
	cfg.ValueBytes = o.KVValueBytes
	cfg.Seed = o.Seed ^ 0xFEED
	return cfg
}

func (o Options) runKV(tb *cluster.Testbed, h *memport.Hierarchy, base uint64) KVMeasurement {
	scfg := kvstore.DefaultConfig(base)
	store := kvstore.NewStore(scfg)
	srv := kvstore.NewServer(tb.K, h, store, kvstore.DefaultServerConfig())
	var out kvstore.BenchResult
	tb.K.At(tb.K.Now(), func() {
		kvstore.RunBench(tb.K, srv, o.kvBenchConfig(), func(r kvstore.BenchResult) { out = r })
	})
	tb.K.Run()
	return KVMeasurement{
		Throughput: out.Throughput,
		MeanLatUs:  out.LatencyUs.Mean(),
		P99LatUs:   out.LatencyUs.Quantile(0.99),
	}
}

// KVRemote runs Redis+Memtier with the store's heap in disaggregated
// memory.
func (o Options) KVRemote(period int64) KVMeasurement {
	tb := o.Testbed(period)
	return o.runKV(tb, tb.NewRemoteHierarchy(), tb.RemoteAddr(0))
}

// KVLocal runs the local baseline.
func (o Options) KVLocal() KVMeasurement {
	tb := o.Testbed(1)
	return o.runKV(tb, tb.NewLocalHierarchy(), 0)
}
