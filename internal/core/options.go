// Package core is the paper's characterization framework: it composes the
// testbed, workloads, and delay-injection framework into the experiments
// of §IV, regenerating every figure and table — delay-injection validation
// (Figs. 2–3), resilience assessment (Fig. 4, Table I), application
// performance impact (Fig. 5), and resource contention (Figs. 6–7) — plus
// the §V/§VII extension studies (memory pooling, distribution-based
// injection).
package core

import (
	"fmt"

	"thymesim/internal/cluster"
	"thymesim/internal/dram"
	"thymesim/internal/metricsplane"
)

// Options scales the experiments. Defaults run the full suite in seconds
// of wall time; Paper() reproduces the paper's sizes (slower but the same
// code path).
type Options struct {
	// StreamElements per array (paper: 10M).
	StreamElements int
	// GraphScale / GraphEdgeFactor / GraphRoots for Graph500 (paper: 20 /
	// 16 / 64 roots).
	GraphScale      int
	GraphEdgeFactor int
	GraphRoots      int
	// KVClients x KVRequests drive Memtier (paper: 200 x 10000).
	KVThreads    int
	KVConns      int
	KVRequests   int
	KVKeySpace   int
	KVValueBytes int
	// LLCBytes sizes the per-hierarchy cache so the scaled working sets
	// still stream (paper: 120 MiB against GB-scale sets).
	LLCBytes int
	LLCWays  int
	// Seed drives all generators.
	Seed uint64
	// Workers bounds how many sweep points run concurrently (< 1 means one
	// per CPU). Every sweep point owns its testbed and derives its
	// randomness from Seed, so the worker count changes wall clock only:
	// results are byte-identical at any setting.
	Workers int
	// Metrics, when non-nil, attaches the labeled metrics plane to every
	// testbed and pool the runners build. The plane is shared across
	// sweep points (instruments with equal labels merge), and it only
	// observes: simulated results are identical with it on or off.
	Metrics *metricsplane.Plane
	// Shards selects intra-run parallelism for the pool experiments: each
	// pool's event kernel is split into Shards conservatively synchronized
	// shards (switch on one, nodes round-robin on the rest). 0 or 1 keeps
	// the legacy single-kernel path. Like Workers, this changes wall clock
	// only: results are byte-identical at any setting.
	Shards int
}

// Default returns the scaled-down experiment sizes.
func Default() Options {
	return Options{
		StreamElements:  1 << 15,
		GraphScale:      12,
		GraphEdgeFactor: 16,
		GraphRoots:      1,
		KVThreads:       2,
		KVConns:         10,
		KVRequests:      10,
		KVKeySpace:      1 << 12,
		KVValueBytes:    512,
		// The LLC is scaled with the working sets to preserve the paper's
		// LLC:working-set ratio (120 MiB against 0.2-4 GB sets => a few
		// percent resident).
		LLCBytes: 64 << 10,
		LLCWays:  4,
		Seed:     1,
	}
}

// Paper returns the paper's experiment sizes (§IV-A). Expect minutes of
// wall time per experiment.
func Paper() Options {
	o := Default()
	o.StreamElements = 10_000_000
	o.GraphScale = 20
	o.GraphRoots = 4
	o.KVThreads = 4
	o.KVConns = 50
	o.KVRequests = 10000
	o.KVKeySpace = 1 << 23
	o.LLCBytes = 128 << 20
	o.LLCWays = 16
	return o
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.StreamElements < 16 {
		return fmt.Errorf("core: StreamElements = %d", o.StreamElements)
	}
	if o.GraphScale < 1 || o.GraphRoots < 1 {
		return fmt.Errorf("core: graph scale/roots %d/%d", o.GraphScale, o.GraphRoots)
	}
	if o.KVThreads < 1 || o.KVConns < 1 || o.KVRequests < 1 {
		return fmt.Errorf("core: kv clients %d x %d x %d", o.KVThreads, o.KVConns, o.KVRequests)
	}
	if o.LLCBytes < 1<<12 {
		return fmt.Errorf("core: LLC %d too small", o.LLCBytes)
	}
	if o.Shards < 0 {
		return fmt.Errorf("core: Shards = %d (want >= 0; 0 is the single-kernel path)", o.Shards)
	}
	return nil
}

// Testbed builds the two-node system with the given injector PERIOD and
// this option set's cache geometry.
func (o Options) Testbed(period int64) *cluster.Testbed {
	cfg := o.TestbedConfig(period)
	return cluster.NewTestbed(cfg)
}

// TestbedConfig returns the cluster configuration used by Testbed, for
// experiments that need to customize it further.
func (o Options) TestbedConfig(period int64) cluster.Config {
	cfg := cluster.DefaultConfig(period)
	cfg.LLC.SizeBytes = o.LLCBytes
	cfg.LLC.Ways = o.LLCWays
	cfg.Metrics = o.Metrics
	return cfg
}

// PoolTestbedConfig returns a testbed whose lender is a CPU-less memory
// pool with the given device bandwidth (§V discussion).
func (o Options) PoolTestbedConfig(period int64, poolBps float64) cluster.Config {
	cfg := o.TestbedConfig(period)
	cfg.LenderDRAM = dram.PoolConfig(poolBps)
	return cfg
}

// DefaultPeriods is the validation sweep of Figs. 2–3: PERIOD values whose
// induced latency spans ~1.2–150 µs.
func DefaultPeriods() []int64 {
	return []int64{1, 2, 5, 10, 25, 50, 100, 200, 300}
}

// ResiliencePeriods is the exponential stress sweep of Fig. 4.
func ResiliencePeriods() []int64 { return []int64{1, 10, 100, 1000, 10000} }

// Fig5Periods is the application-impact sweep of Fig. 5.
func Fig5Periods() []int64 { return []int64{1, 10, 30, 60, 125, 250, 500, 1000} }
