package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"thymesim/internal/sim"
)

// fastOptions shrinks everything for tests that only check plumbing.
func fastOptions() Options {
	o := Default()
	o.StreamElements = 1 << 13
	o.GraphScale = 9
	o.KVRequests = 5
	return o
}

func TestOptionsValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Paper().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Default()
	bad.StreamElements = 1
	if err := bad.Validate(); err == nil {
		t.Error("bad stream elements accepted")
	}
	bad = Default()
	bad.GraphRoots = 0
	if err := bad.Validate(); err == nil {
		t.Error("bad roots accepted")
	}
	bad = Default()
	bad.LLCBytes = 16
	if err := bad.Validate(); err == nil {
		t.Error("bad LLC accepted")
	}
}

func TestDelayValidationLinearAndBDP(t *testing.T) {
	o := fastOptions()
	v := o.RunDelayValidation([]int64{1, 10, 50, 100, 200})
	// §III-B: strong linear correlation between PERIOD and latency.
	if v.R2 < 0.99 {
		t.Fatalf("r^2 = %v, want > 0.99", v.R2)
	}
	if v.Slope <= 0 {
		t.Fatalf("slope = %v", v.Slope)
	}
	// Latency range covers the paper's 1.2-150us regime endpoints.
	lat := v.Latency.Series[0]
	if first := lat.Points[0].Y; first < 0.5 || first > 5 {
		t.Fatalf("PERIOD=1 latency = %v us, want ~1.2", first)
	}
	// BDP constant near 16.5 kB.
	lo, hi, _ := v.BDP.Series[0].MinMaxY()
	if lo < 10 || hi > 25 {
		t.Fatalf("BDP range [%v, %v] kB, want ~16.5", lo, hi)
	}
	if hi/lo > 1.3 {
		t.Fatalf("BDP not constant: [%v, %v]", lo, hi)
	}
	// Bandwidth decreases monotonically with PERIOD.
	bws := v.Bandwidth.Series[0].Ys()
	for i := 1; i < len(bws); i++ {
		if bws[i] >= bws[i-1] {
			t.Fatalf("bandwidth not decreasing: %v", bws)
		}
	}
}

func TestResilienceCliff(t *testing.T) {
	o := fastOptions()
	r := o.RunResilience([]int64{1, 1000, 10000})
	if len(r.Points) != 3 {
		t.Fatal("missing points")
	}
	// PERIOD=1 and PERIOD=1000 survive; PERIOD=10000 fails detection —
	// the Fig. 4 cliff.
	if !r.Points[0].AttachOK || !r.Points[1].AttachOK {
		t.Fatalf("low periods failed attach: %+v", r.Points)
	}
	if r.Points[2].AttachOK {
		t.Fatal("PERIOD=10000 attached; expected FPGA detection timeout")
	}
	if !strings.Contains(r.Points[2].AttachReason, "not detected") {
		t.Fatalf("reason = %q", r.Points[2].AttachReason)
	}
	// PERIOD=1000 latency lands in the paper's ~400us regime.
	if l := r.Points[1].LatencyUs; l < 150 || l > 900 {
		t.Fatalf("PERIOD=1000 latency = %v us, want ~350-500", l)
	}
}

func TestTable1Regimes(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table I run")
	}
	o := Default()
	tab := o.RunTable1()
	// Redis: ~1x at PERIOD=1, mild at PERIOD=1000.
	if tab.RedisLow > 1.3 {
		t.Errorf("Redis PERIOD=1 = %vx, want ~1x", tab.RedisLow)
	}
	if tab.RedisHigh < 1.1 || tab.RedisHigh > 4 {
		t.Errorf("Redis PERIOD=1000 = %vx, want ~1.7x regime", tab.RedisHigh)
	}
	// Graph500: several-x at PERIOD=1, hundreds-x+ at PERIOD=1000.
	if tab.BFSLow < 3 || tab.BFSLow > 20 {
		t.Errorf("BFS PERIOD=1 = %vx, want ~6x regime", tab.BFSLow)
	}
	if tab.BFSHigh < 200 {
		t.Errorf("BFS PERIOD=1000 = %vx, want catastrophic", tab.BFSHigh)
	}
	if tab.SSSPLow < 2 || tab.SSSPLow > 20 {
		t.Errorf("SSSP PERIOD=1 = %vx", tab.SSSPLow)
	}
	if tab.SSSPHigh < 150 {
		t.Errorf("SSSP PERIOD=1000 = %vx", tab.SSSPHigh)
	}
	// Ordering: Graph500 suffers far more than Redis (the QoS insight).
	if tab.BFSHigh < 20*tab.RedisHigh {
		t.Errorf("BFS (%vx) not >> Redis (%vx)", tab.BFSHigh, tab.RedisHigh)
	}
	if v, ok := tab.Table.Lookup("Redis", "PERIOD=1000"); !ok || v == "" {
		t.Error("table missing Redis row")
	}
}

func TestAppDegradationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	o := fastOptions()
	o.GraphScale = 11
	d := o.RunAppDegradation([]int64{1, 125, 1000})
	redis := d.Figure.Get("redis")
	bfs := d.Figure.Get("graph500-bfs")
	if redis == nil || bfs == nil {
		t.Fatal("series missing")
	}
	// At every delay point, graph degradation dominates Redis degradation.
	for i := range redis.Points {
		if bfs.Points[i].Y < redis.Points[i].Y {
			t.Errorf("at x=%v: bfs %v < redis %v", redis.Points[i].X, bfs.Points[i].Y, redis.Points[i].Y)
		}
	}
	// Redis stays within a few x even at the top of the sweep.
	if _, hi, _ := redis.MinMaxY(); hi > 5 {
		t.Errorf("redis max degradation %v, want moderate", hi)
	}
	// BFS grows with delay.
	ys := bfs.Ys()
	if ys[len(ys)-1] < 10*ys[0] {
		t.Errorf("bfs not growing: %v", ys)
	}
}

func TestMCBNEqualDivision(t *testing.T) {
	o := fastOptions()
	c := o.RunMCBN([]int{1, 2, 4})
	if len(c.BorrowerBps) != 3 {
		t.Fatal("missing points")
	}
	one := c.BorrowerBps[0]
	for i, n := range c.Counts {
		want := one / float64(n)
		got := c.BorrowerBps[i]
		if got < 0.8*want || got > 1.2*want {
			t.Errorf("n=%d per-instance %v, want ~%v (equal division)", n, got, want)
		}
	}
}

func TestMCLNFlat(t *testing.T) {
	o := fastOptions()
	c := o.RunMCLN([]int{0, 1, 4})
	base := c.BorrowerBps[0]
	for i, n := range c.Counts {
		if got := c.BorrowerBps[i]; got < 0.9*base {
			t.Errorf("n=%d borrower %v vs idle %v: lender contention leaked", n, got, base)
		}
	}
}

func TestMCLNPoolShiftsBottleneck(t *testing.T) {
	o := fastOptions()
	c := o.RunMCLNPool([]int{0, 4}, 20e9)
	if c.BorrowerBps[1] > 0.8*c.BorrowerBps[0] {
		t.Errorf("pool contention invisible: %v vs %v", c.BorrowerBps[1], c.BorrowerBps[0])
	}
}

func TestDistImpactTails(t *testing.T) {
	o := fastOptions()
	d := o.RunDistImpact(2 * sim.Microsecond)
	if len(d.Table.Rows) != 5 {
		t.Fatalf("rows = %d", len(d.Table.Rows))
	}
	constP99, ok1 := d.Table.Lookup("constant", "p99 fill latency (us)")
	paretoP99, ok2 := d.Table.Lookup("pareto", "p99 fill latency (us)")
	if !ok1 || !ok2 {
		t.Fatal("lookup failed")
	}
	var c, p float64
	if _, err := fmt.Sscan(constP99, &c); err != nil {
		t.Fatal(err)
	}
	if _, err := fmt.Sscan(paretoP99, &p); err != nil {
		t.Fatal(err)
	}
	if p <= c {
		t.Errorf("pareto p99 %v not heavier than constant %v", p, c)
	}
}

func TestReportRenderAndCSV(t *testing.T) {
	o := fastOptions()
	r := &Report{
		Options:    o,
		Validation: o.RunDelayValidation([]int64{1, 50}),
		Resilience: o.RunResilience([]int64{1, 10000}),
		MCBN:       o.RunMCBN([]int{1, 2}),
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 2", "Figure 4", "FAILED", "Figure 6"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	dir := t.TempDir()
	if err := r.WriteCSVDir(dir); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"fig2_latency.csv", "fig4_attach.csv", "fig6_mcbn.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if len(data) == 0 {
			t.Errorf("%s empty", f)
		}
	}
}

func TestQoSPriorityProtectsSensitiveFlow(t *testing.T) {
	o := fastOptions()
	q := o.RunQoSPriority(100)
	// FIFO sharing inflates the chase's per-hop latency by an order of
	// magnitude; priority classes restore it to near-alone levels while
	// the bulk flow keeps most of its bandwidth.
	if q.ChaseFIFOUs < 5*q.ChaseAloneUs {
		t.Errorf("FIFO sharing too gentle: %v vs alone %v", q.ChaseFIFOUs, q.ChaseAloneUs)
	}
	if q.ChasePrioUs > 2*q.ChaseAloneUs {
		t.Errorf("priority did not protect the chase: %v vs alone %v", q.ChasePrioUs, q.ChaseAloneUs)
	}
	if q.BulkPrioBps < 0.5*q.BulkFIFOBps {
		t.Errorf("priority starved the bulk flow: %v vs %v", q.BulkPrioBps, q.BulkFIFOBps)
	}
	if len(q.Table.Rows) != 3 {
		t.Errorf("table rows = %d", len(q.Table.Rows))
	}
}

func TestMigrationImprovesHotChase(t *testing.T) {
	o := fastOptions()
	m := o.RunMigration(100)
	if m.Promotions == 0 {
		t.Fatal("no pages promoted")
	}
	if m.WithMigrationUs >= m.NoMigrationUs/2 {
		t.Fatalf("migration gained too little: %v vs %v us", m.WithMigrationUs, m.NoMigrationUs)
	}
	if len(m.Table.Rows) != 2 {
		t.Fatalf("table rows = %d", len(m.Table.Rows))
	}
}

func TestInterconnectComparisonShape(t *testing.T) {
	o := fastOptions()
	r := o.RunInterconnectComparison()
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	ocp, cxl := r.Rows[0], r.Rows[1]
	if cxl.ChaseUs >= ocp.ChaseUs {
		t.Errorf("CXL-like chase %v not faster than OpenCAPI %v", cxl.ChaseUs, ocp.ChaseUs)
	}
	if cxl.StreamGBs <= ocp.StreamGBs {
		t.Errorf("CXL-like STREAM %v not faster than OpenCAPI %v", cxl.StreamGBs, ocp.StreamGBs)
	}
	// But the advantage is incremental (tens of percent), not the orders
	// of magnitude that delay injection produces: framing overhead is a
	// second-order effect at 128B payloads.
	if cxl.StreamGBs > 2*ocp.StreamGBs {
		t.Errorf("framing advantage implausibly large: %v vs %v", cxl.StreamGBs, ocp.StreamGBs)
	}
}

func TestPrefetchAblationShape(t *testing.T) {
	o := fastOptions()
	r := o.RunPrefetchAblation(250)
	// Vanilla: prefetch hides most of the RTT.
	if r.OnVanillaUs > 0.6*r.OffVanillaUs {
		t.Errorf("vanilla gain too small: %v vs %v", r.OnVanillaUs, r.OffVanillaUs)
	}
	// Delayed: the injector rate floor (PERIOD*4ns = 1us) bounds the
	// prefetched scan from below.
	if r.OnDelayedUs < 0.9 {
		t.Errorf("delayed prefetch beat the injector floor: %v us", r.OnDelayedUs)
	}
	if r.OnDelayedUs > r.OffDelayedUs {
		t.Errorf("prefetch hurt under delay: %v vs %v", r.OnDelayedUs, r.OffDelayedUs)
	}
}
