package core

import (
	"fmt"

	"thymesim/internal/axis"
	"thymesim/internal/cluster"
	"thymesim/internal/control"
	"thymesim/internal/inject"
	"thymesim/internal/metrics"
	"thymesim/internal/sim"
	"thymesim/internal/sweep"
	"thymesim/internal/workloads/stream"
)

// DelayValidation holds the Figs. 2–3 results.
type DelayValidation struct {
	// Latency is Fig. 2: STREAM-measured fill latency (us) vs PERIOD.
	Latency *metrics.Figure
	// Bandwidth is Fig. 3: STREAM bandwidth (GB/s) vs PERIOD.
	Bandwidth *metrics.Figure
	// BDP is the bandwidth-delay product (kB) vs PERIOD (Fig. 3's
	// constancy claim).
	BDP *metrics.Figure
	// Slope/Intercept/R2 quantify §III-B's "strong linear correlation
	// between PERIOD and application-level latency".
	Slope, Intercept, R2 float64
}

// RunDelayValidation reproduces Figs. 2 and 3: STREAM on the borrower,
// lender idle, sweeping the injector PERIOD.
func (o Options) RunDelayValidation(periods []int64) *DelayValidation {
	v := &DelayValidation{
		Latency:   &metrics.Figure{Title: "Figure 2: STREAM latency vs delay injection", XLabel: "PERIOD (FPGA cycles)", YLabel: "latency (us)", LogX: true, LogY: true},
		Bandwidth: &metrics.Figure{Title: "Figure 3: STREAM bandwidth vs delay injection", XLabel: "PERIOD (FPGA cycles)", YLabel: "bandwidth (GB/s)", LogX: true, LogY: true},
		BDP:       &metrics.Figure{Title: "Figure 3 (inset): bandwidth-delay product", XLabel: "PERIOD (FPGA cycles)", YLabel: "BDP (kB)", LogX: true},
	}
	lat := v.Latency.AddSeries("stream")
	bw := v.Bandwidth.AddSeries("stream")
	bdp := v.BDP.AddSeries("stream")
	ms := sweep.Map(o.Workers, len(periods), func(i int) StreamMeasurement {
		return o.StreamRemote(periods[i])
	})
	for i, p := range periods {
		m := ms[i]
		lat.Add(float64(p), m.FillLatUs)
		bw.Add(float64(p), m.BandwidthBps/1e9)
		bdp.Add(float64(p), m.BandwidthBps*m.FillLatUs/1e6/1e3)
	}
	if lat.Len() >= 2 {
		v.Slope, v.Intercept, v.R2 = lat.LinearFit()
	}
	return v
}

// ResiliencePoint is one row of the Fig. 4 stress test.
type ResiliencePoint struct {
	Period int64
	// AttachOK reports whether the FPGA hot-plug handshake completed
	// within the detection timeout.
	AttachOK     bool
	AttachReason string
	// LatencyUs is the STREAM-measured latency (only when attached).
	LatencyUs float64
	// Crashed marks the system-level failure mode (detection timeout).
	Crashed bool
}

// Resilience holds the Fig. 4 results.
type Resilience struct {
	Points []ResiliencePoint
	Figure *metrics.Figure
}

// RunResilience reproduces Fig. 4: exponentially increasing PERIOD, with
// the libthymesisflow attach handshake deciding whether the system
// survives, then STREAM measuring latency on survivors.
func (o Options) RunResilience(periods []int64) *Resilience {
	res := &Resilience{
		Figure: &metrics.Figure{Title: "Figure 4: reliability under heavy delay injection", XLabel: "PERIOD (FPGA cycles)", YLabel: "latency (us)", LogX: true, LogY: true},
	}
	s := res.Figure.AddSeries("stream")
	res.Points = sweep.Map(o.Workers, len(periods), func(i int) ResiliencePoint {
		p := periods[i]
		tb := o.Testbed(p)
		var attach control.AttachResult
		// Start the handshake off the slot grid, as a real attach would
		// land at an arbitrary counter phase.
		tb.K.At(sim.Time(7*sim.Microsecond), func() {
			control.Attach(tb, control.DefaultAttachConfig(), func(r control.AttachResult) { attach = r })
		})
		tb.K.Run()
		pt := ResiliencePoint{Period: p, AttachOK: attach.OK, AttachReason: attach.Reason, Crashed: !attach.OK}
		if attach.OK {
			m := o.runStream(tb, tb.NewRemoteHierarchy(), tb.RemoteAddr(0))
			pt.LatencyUs = m.FillLatUs
		}
		return pt
	})
	for _, pt := range res.Points {
		if pt.AttachOK {
			s.Add(float64(pt.Period), pt.LatencyUs)
		}
	}
	return res
}

// Table1 holds the Table I reproduction: slowdown relative to local memory
// at PERIOD=1 and PERIOD=1000.
type Table1 struct {
	RedisLow, RedisHigh float64
	BFSLow, BFSHigh     float64
	SSSPLow, SSSPHigh   float64
	Table               *metrics.Table
}

// RunTable1 reproduces Table I.
func (o Options) RunTable1() *Table1 {
	t := &Table1{}
	// Six independent single-testbed measurements; fan them across the
	// pool. Each job writes only its own variable, and sweep.Run's join
	// orders all writes before the reads below.
	var kvLocal, kvLow, kvHigh KVMeasurement
	var gLocal, gLow, gHigh GraphMeasurement
	jobs := []func(){
		func() { kvLocal = o.KVLocal() },
		func() { kvLow = o.KVRemote(1) },
		func() { kvHigh = o.KVRemote(1000) },
		func() { gLocal = o.GraphLocal() },
		func() { gLow = o.GraphRemote(1) },
		func() { gHigh = o.GraphRemote(1000) },
	}
	sweep.Run(o.Workers, len(jobs), func(i int) { jobs[i]() })
	t.RedisLow = kvLocal.Throughput / kvLow.Throughput
	t.RedisHigh = kvLocal.Throughput / kvHigh.Throughput

	t.BFSLow = float64(gLow.BFSTime) / float64(gLocal.BFSTime)
	t.BFSHigh = float64(gHigh.BFSTime) / float64(gLocal.BFSTime)
	t.SSSPLow = float64(gLow.SSSPTime) / float64(gLocal.SSSPTime)
	t.SSSPHigh = float64(gHigh.SSSPTime) / float64(gLocal.SSSPTime)

	t.Table = &metrics.Table{
		Title:   "Table I: impact of high delay on application performance (slowdown vs local)",
		Columns: []string{"workload", "PERIOD=1", "PERIOD=1000"},
	}
	row := func(name string, lo, hi float64) {
		t.Table.AddRow(name, fmt.Sprintf("%.3gx", lo), fmt.Sprintf("%.4gx", hi))
	}
	row("Redis", t.RedisLow, t.RedisHigh)
	row("Graph500 BFS", t.BFSLow, t.BFSHigh)
	row("Graph500 SSSP", t.SSSPLow, t.SSSPHigh)
	return t
}

// AppDegradation holds the Fig. 5 results: per-application slowdown vs
// injected delay.
type AppDegradation struct {
	Figure *metrics.Figure
}

// RunAppDegradation reproduces Fig. 5, sweeping PERIOD and normalizing to
// each application's vanilla-remote (PERIOD=1) performance, the paper's
// "original baseline runtime when running on vanilla ThymesisFlow".
func (o Options) RunAppDegradation(periods []int64) *AppDegradation {
	fig := &metrics.Figure{
		Title:  "Figure 5: application performance degradation vs injected delay",
		XLabel: "injected delay, STREAM-measured (us)",
		YLabel: "slowdown vs vanilla ThymesisFlow",
		LogX:   true, LogY: true,
	}
	redis := fig.AddSeries("redis")
	bfs := fig.AddSeries("graph500-bfs")
	sssp := fig.AddSeries("graph500-sssp")

	var kvBase KVMeasurement
	var gBase GraphMeasurement
	base := []func(){
		func() { kvBase = o.KVRemote(1) },
		func() { gBase = o.GraphRemote(1) },
	}
	sweep.Run(o.Workers, len(base), func(i int) { base[i]() })
	type degPoint struct {
		x  float64
		kv KVMeasurement
		g  GraphMeasurement
	}
	pts := sweep.Map(o.Workers, len(periods), func(i int) degPoint {
		p := periods[i]
		// The paper quantifies injected delay by the latency STREAM
		// measures at that PERIOD (Fig. 2's calibration); do the same.
		return degPoint{
			x:  o.StreamRemote(p).FillLatUs,
			kv: o.KVRemote(p),
			g:  o.GraphRemote(p),
		}
	})
	for _, pt := range pts {
		redis.Add(pt.x, kvBase.Throughput/pt.kv.Throughput)
		bfs.Add(pt.x, float64(pt.g.BFSTime)/float64(gBase.BFSTime))
		sssp.Add(pt.x, float64(pt.g.SSSPTime)/float64(gBase.SSSPTime))
	}
	return &AppDegradation{Figure: fig}
}

// Contention holds a Fig. 6 or Fig. 7 style result: per-instance STREAM
// bandwidth at the borrower vs concurrency.
type Contention struct {
	Figure *metrics.Figure
	// BorrowerBps[i] is the borrower-observed bandwidth with Counts[i]
	// concurrent instances.
	Counts      []int
	BorrowerBps []float64
}

// RunMCBN reproduces Fig. 6: N STREAM instances on the borrower node, all
// using disaggregated memory, reporting mean per-instance bandwidth.
func (o Options) RunMCBN(counts []int) *Contention {
	return o.runMCBN(counts, o.TestbedConfig)
}

func (o Options) runMCBN(counts []int, mkCfg func(int64) cluster.Config) *Contention {
	c := &Contention{
		Figure: &metrics.Figure{Title: "Figure 6: contention for bandwidth at borrower node (MCBN)", XLabel: "concurrent STREAM instances", YLabel: "per-instance bandwidth (GB/s)"},
		Counts: counts,
	}
	s := c.Figure.AddSeries("per-instance")
	c.BorrowerBps = sweep.Map(o.Workers, len(counts), func(idx int) float64 {
		n := counts[idx]
		tb := cluster.NewTestbed(mkCfg(1))
		var runners []*stream.Runner
		for i := 0; i < n; i++ {
			cfg := stream.DefaultConfig(tb.RemoteAddr(uint64(i) * (1 << 30)))
			cfg.Elements = o.StreamElements
			runners = append(runners, stream.New(tb.K, tb.NewRemoteHierarchy(), cfg))
		}
		var all [][]stream.Result
		tb.K.At(0, func() {
			for _, r := range runners {
				r := r
				r.Run(func(res []stream.Result) { all = append(all, res) })
			}
		})
		tb.K.Run()
		// n == 0 runs no instances; the mean over zero runs is zero
		// bandwidth, not 0/0 (which would put a NaN into the figure).
		if len(all) == 0 {
			return 0
		}
		var sum float64
		for _, res := range all {
			bw, _ := stream.Summary(res)
			sum += bw
		}
		return sum / float64(len(all))
	})
	for i, n := range counts {
		s.Add(float64(n), c.BorrowerBps[i]/1e9)
	}
	return c
}

// RunMCLN reproduces Fig. 7: one STREAM on the borrower using
// disaggregated memory while N STREAM instances run locally on the lender,
// contending for the lender's memory bus.
func (o Options) RunMCLN(counts []int) *Contention {
	return o.runMCLN(counts, o.TestbedConfig, "Figure 7: contention for bandwidth at lender node (MCLN)")
}

// RunMCLNPool is the §V ablation: the lender is a CPU-less memory pool
// with constrained device bandwidth, shifting the bottleneck from the
// network to the pool.
func (o Options) RunMCLNPool(counts []int, poolBps float64) *Contention {
	mk := func(period int64) cluster.Config { return o.PoolTestbedConfig(period, poolBps) }
	return o.runMCLN(counts, mk, fmt.Sprintf("Ablation (§V): MCLN against a %.0f GB/s memory pool", poolBps/1e9))
}

func (o Options) runMCLN(counts []int, mkCfg func(int64) cluster.Config, title string) *Contention {
	c := &Contention{
		Figure: &metrics.Figure{Title: title, XLabel: "concurrent lender-local STREAM instances", YLabel: "borrower bandwidth (GB/s)"},
		Counts: counts,
	}
	s := c.Figure.AddSeries("borrower")
	c.BorrowerBps = sweep.Map(o.Workers, len(counts), func(idx int) float64 {
		n := counts[idx]
		tb := cluster.NewTestbed(mkCfg(1))
		// Borrower's remote STREAM.
		bCfg := stream.DefaultConfig(tb.RemoteAddr(0))
		bCfg.Elements = o.StreamElements
		borrower := stream.New(tb.K, tb.NewRemoteHierarchy(), bCfg)
		// Lender-local contenders, sized to outlast the borrower run.
		var lenders []*stream.Runner
		for i := 0; i < n; i++ {
			lCfg := stream.DefaultConfig(cluster.LenderBase + uint64(64+i)<<30)
			lCfg.Elements = o.StreamElements
			lCfg.Iterations = 4
			lenders = append(lenders, stream.New(tb.K, tb.NewLenderLocalHierarchy(), lCfg))
		}
		var bRes []stream.Result
		tb.K.At(0, func() {
			for _, l := range lenders {
				l.Run(func([]stream.Result) {})
			}
			borrower.Run(func(res []stream.Result) { bRes = res })
		})
		tb.K.Run()
		bw, _ := stream.Summary(bRes)
		return bw
	})
	for i, n := range counts {
		s.Add(float64(n), c.BorrowerBps[i]/1e9)
	}
	return c
}

// DistImpact is the §VII extension: STREAM under distribution-based
// injection gates with equal mean delay.
type DistImpact struct {
	Figure *metrics.Figure
	// Rows maps distribution name to measured (bandwidth GB/s, mean fill
	// latency us).
	Table *metrics.Table
}

// RunDistImpact compares injection distributions at a fixed mean
// per-transaction delay.
func (o Options) RunDistImpact(meanDelay sim.Duration) *DistImpact {
	cycle := inject.DefaultFPGACycle
	rng := sim.NewRand(o.Seed ^ 0xD157)
	gates := []struct {
		name string
		gate axis.Gate
	}{
		{"period-grid", inject.NewPeriodGate(int64(meanDelay/cycle), cycle)},
		{"constant", inject.NewDistGate(inject.Constant{D: meanDelay}, cycle, rng.Split())},
		{"exponential", inject.NewDistGate(inject.Exponential{MeanD: meanDelay}, cycle, rng.Split())},
		{"pareto", inject.NewDistGate(inject.Pareto{Xm: meanDelay / 3, Alpha: 1.5}, cycle, rng.Split())},
		{"gilbert-elliott", inject.NewGilbertElliott(
			inject.Constant{D: meanDelay / 4},
			inject.Constant{D: 4 * meanDelay},
			0.05, 0.2, cycle, rng.Split())},
	}
	d := &DistImpact{
		Figure: &metrics.Figure{Title: "Extension (§VII): injection distributions at equal mean delay", XLabel: "distribution index", YLabel: "bandwidth (GB/s)"},
		Table:  &metrics.Table{Title: "Extension (§VII): distribution-based injection", Columns: []string{"distribution", "bandwidth (GB/s)", "mean fill latency (us)", "p99 fill latency (us)"}},
	}
	s := d.Figure.AddSeries("stream")
	// The gates above were drawn serially from the shared rng, so their
	// seeds are fixed before the pool starts; each point then owns its
	// gate and testbed outright.
	type distPoint struct {
		m   StreamMeasurement
		p99 float64
	}
	pts := sweep.Map(o.Workers, len(gates), func(i int) distPoint {
		cfg := o.TestbedConfig(0)
		cfg.Gate = gates[i].gate
		cfg.Period = 0
		tb := cluster.NewTestbed(cfg)
		h := tb.NewRemoteHierarchy()
		m := o.runStream(tb, h, tb.RemoteAddr(0))
		return distPoint{m: m, p99: h.FillLatency().Quantile(0.99)}
	})
	for i, g := range gates {
		pt := pts[i]
		s.Add(float64(i), pt.m.BandwidthBps/1e9)
		d.Table.AddRow(g.name,
			fmt.Sprintf("%.3f", pt.m.BandwidthBps/1e9),
			fmt.Sprintf("%.2f", pt.m.FillLatUs),
			fmt.Sprintf("%.2f", pt.p99))
	}
	return d
}
