// Chaos harness: randomized link-fault sequences against the paper's three
// workloads with the full recovery stack active (ARQ retransmission, link
// supervision, re-attach, degraded mode), plus the resilience-recovery
// sweep behind results/fig_resilience_recovery.csv. Every random decision
// derives from the configured seed, so a chaos run is a reproducible
// experiment, not a flake generator: the same seed gives the same fault
// schedule, the same retransmissions, and the same counters.
package core

import (
	"fmt"
	"strings"

	"thymesim/internal/axis"
	"thymesim/internal/cache"
	"thymesim/internal/cluster"
	"thymesim/internal/control"
	"thymesim/internal/inject"
	"thymesim/internal/memport"
	"thymesim/internal/metrics"
	"thymesim/internal/migrate"
	"thymesim/internal/sim"
	"thymesim/internal/sweep"
	"thymesim/internal/telemetry"
	"thymesim/internal/tfnic"
	"thymesim/internal/workloads/graph500"
	"thymesim/internal/workloads/kvstore"
	"thymesim/internal/workloads/latmem"
	"thymesim/internal/workloads/stream"
)

// ChaosWorkloads are the workloads the chaos runner can drive.
var ChaosWorkloads = []string{"stream", "kvstore", "graph500"}

// ChaosFaults is one fault mix applied at the borrower egress, composed
// over the Eq. (1) delay grid: silent loss, bit corruption, and link
// flapping, each independently optional.
type ChaosFaults struct {
	// BER is the per-bit corruption probability (0 disables).
	BER float64
	// DropProb silently discards each egress beat with this probability.
	DropProb float64
	// FlapMeanUp/FlapMeanDown, when both positive, run a link-flap renewal
	// process with exponentially distributed phase durations.
	FlapMeanUp   sim.Duration
	FlapMeanDown sim.Duration
}

func (f ChaosFaults) flapping() bool { return f.FlapMeanUp > 0 && f.FlapMeanDown > 0 }

// Enabled reports whether any fault model is active.
func (f ChaosFaults) Enabled() bool { return f.BER > 0 || f.DropProb > 0 || f.flapping() }

// Validate checks the fault mix.
func (f ChaosFaults) Validate() error {
	if f.BER < 0 || f.BER >= 1 {
		return fmt.Errorf("core: chaos BER %g outside [0,1)", f.BER)
	}
	if f.DropProb < 0 || f.DropProb >= 1 {
		return fmt.Errorf("core: chaos drop probability %g outside [0,1)", f.DropProb)
	}
	if (f.FlapMeanUp > 0) != (f.FlapMeanDown > 0) {
		return fmt.Errorf("core: flap needs both phase means (up %v, down %v)", f.FlapMeanUp, f.FlapMeanDown)
	}
	return nil
}

// DefaultChaosFaults is a hostile but survivable mix: ~2% loss, a BER that
// corrupts a few percent of packets, and ~100us flaps every couple of
// milliseconds.
func DefaultChaosFaults() ChaosFaults {
	return ChaosFaults{
		BER:          1e-5,
		DropProb:     0.02,
		FlapMeanUp:   2 * sim.Millisecond,
		FlapMeanDown: 100 * sim.Microsecond,
	}
}

// ChaosConfig parameterizes one chaos campaign.
type ChaosConfig struct {
	// Seed drives every fault draw, backoff jitter, and flap schedule.
	Seed uint64
	// Period is the inner delay-injection PERIOD (1 = vanilla timing).
	Period int64
	// Faults is the fault mix layered over the delay gate.
	Faults ChaosFaults
	// ARQ parameterizes the retransmission layer (always on in chaos runs —
	// without it a dropped request is an unrecoverable hang).
	ARQ tfnic.ARQConfig
	// Supervisor parameterizes heartbeat link supervision and re-attach.
	Supervisor control.SupervisorConfig
	// SampleEvery is the telemetry sampling interval for the live
	// fault/recovery counters.
	SampleEvery sim.Duration
	// Workloads selects which workloads to run (subset of ChaosWorkloads).
	Workloads []string
}

// DefaultChaosConfig runs all three workloads under the default fault mix.
func DefaultChaosConfig() ChaosConfig {
	arq := tfnic.DefaultARQConfig()
	// Snappier than the standalone default so chaos runs stay short: the
	// testbed RTT is ~2us, so 30us already clears a heavily queued link.
	arq.Timeout = 30 * sim.Microsecond
	arq.MaxRetries = 8
	return ChaosConfig{
		Seed:        1,
		Period:      1,
		Faults:      DefaultChaosFaults(),
		ARQ:         arq,
		Supervisor:  control.DefaultSupervisorConfig(),
		SampleEvery: 20 * sim.Microsecond,
		Workloads:   ChaosWorkloads,
	}
}

// Validate checks the configuration.
func (c ChaosConfig) Validate() error {
	if c.Period < 1 {
		return fmt.Errorf("core: chaos PERIOD %d", c.Period)
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if err := c.ARQ.Validate(); err != nil {
		return err
	}
	if err := c.Supervisor.Validate(); err != nil {
		return err
	}
	if c.SampleEvery <= 0 {
		return fmt.Errorf("core: chaos sample interval %v", c.SampleEvery)
	}
	if len(c.Workloads) == 0 {
		return fmt.Errorf("core: no chaos workloads")
	}
	for _, w := range c.Workloads {
		known := false
		for _, k := range ChaosWorkloads {
			known = known || w == k
		}
		if !known {
			return fmt.Errorf("core: unknown chaos workload %q", w)
		}
	}
	return nil
}

// chaosGates holds the composed fault stack for counter readout.
type chaosGates struct {
	drop *inject.DropGate
	bits *inject.BitErrorGate
	flap *inject.FlapGate
}

func (g *chaosGates) dropped() uint64 {
	if g.drop == nil {
		return 0
	}
	return g.drop.Dropped()
}

func (g *chaosGates) corrupted() uint64 {
	if g.bits == nil {
		return 0
	}
	return g.bits.Corrupted()
}

func (g *chaosGates) flapBlocked() uint64 {
	if g.flap == nil {
		return 0
	}
	return g.flap.Blocked()
}

// chaosTestbed builds a testbed whose egress gate stacks the fault mix
// over the PERIOD grid (flap outermost so outages also stall retransmitted
// beats, then corruption over loss so a dropped beat is never also
// corrupted), with the ARQ layer interposed.
func (o Options) chaosTestbed(cfg ChaosConfig) (*cluster.Testbed, *chaosGates) {
	rng := sim.NewRand(cfg.Seed ^ 0xC4A05)
	var gate axis.Gate = inject.NewPeriodGate(cfg.Period, inject.DefaultFPGACycle)
	gs := &chaosGates{}
	if cfg.Faults.DropProb > 0 {
		gs.drop = inject.NewDropGate(gate, cfg.Faults.DropProb, rng.Split())
		gate = gs.drop
	}
	if cfg.Faults.BER > 0 {
		gs.bits = inject.NewBitErrorGate(gate, cfg.Faults.BER, rng.Split())
		gate = gs.bits
	}
	if cfg.Faults.flapping() {
		gs.flap = inject.NewFlapGate(gate,
			inject.Exponential{MeanD: cfg.Faults.FlapMeanUp},
			inject.Exponential{MeanD: cfg.Faults.FlapMeanDown},
			rng.Split())
		gate = gs.flap
	}
	ccfg := o.TestbedConfig(0)
	ccfg.Period = 0
	ccfg.Gate = gate
	arq := cfg.ARQ
	ccfg.ARQ = &arq
	return cluster.NewTestbed(ccfg), gs
}

// ChaosResult is one workload's outcome under one fault schedule.
type ChaosResult struct {
	Workload  string
	Completed bool
	ElapsedUs float64
	// Fault activity at the egress.
	Dropped, Corrupted, FlapBlocked uint64
	// Recovery activity.
	Retransmits, Timeouts, NackRetries, Dead, Poisoned uint64
	Downs, Recoveries                                  uint64
	MeanRecoveryUs                                     float64
	FinalLink                                          string
	// Samples is how many telemetry rounds observed the counters.
	Samples uint64
	// Violations lists failed end-to-end invariants (empty = run passed).
	Violations []string
}

// chaosCounterNames fixes the counter order shared by telemetry probes,
// aggregate tables, and CSV output.
var chaosCounterNames = []string{
	"gate_dropped", "gate_corrupted", "flap_blocked",
	"arq_retransmits", "arq_timeouts", "arq_nack_retries", "arq_dead",
	"backend_poisoned", "sup_downs", "sup_recoveries",
}

// runChaosWorkload drives one workload to completion under the fault mix,
// then audits the end-to-end invariants.
func (o Options) runChaosWorkload(cfg ChaosConfig, name string) ChaosResult {
	tb, gs := o.chaosTestbed(cfg)
	sup := control.NewSupervisor(tb, cfg.Supervisor)

	counters := metrics.NewCounterSet()
	counters.Declare(chaosCounterNames...)
	refresh := func() {
		st := tb.ARQ.Stats()
		ss := sup.Stats()
		counters.Set("gate_dropped", gs.dropped())
		counters.Set("gate_corrupted", gs.corrupted())
		counters.Set("flap_blocked", gs.flapBlocked())
		counters.Set("arq_retransmits", st.Retransmits)
		counters.Set("arq_timeouts", st.Timeouts)
		counters.Set("arq_nack_retries", st.NackRetries)
		counters.Set("arq_dead", st.Dead)
		counters.Set("backend_poisoned", tb.RemoteBackend().Poisoned())
		counters.Set("sup_downs", ss.Downs)
		counters.Set("sup_recoveries", ss.Recoveries)
	}
	sampler := telemetry.NewSampler(tb.K, cfg.SampleEvery)
	telemetry.RegisterCounterSet(sampler, "chaos_", counters)

	done := false
	var doneAt sim.Time
	finish := func() {
		done = true
		doneAt = tb.K.Now()
		sup.Stop()
		sampler.Stop()
	}

	tb.K.At(0, func() {
		// Refresh before each sampling round so the probes read live values.
		tb.K.Ticker(cfg.SampleEvery, func() bool {
			refresh()
			return !done
		})
		sampler.Start()
		sup.Start()
		o.launchChaosWorkload(tb, name, finish)
	})
	tb.K.Run()
	refresh()

	res := ChaosResult{
		Workload:       name,
		Completed:      done,
		ElapsedUs:      doneAt.Micros(),
		Dropped:        gs.dropped(),
		Corrupted:      gs.corrupted(),
		FlapBlocked:    gs.flapBlocked(),
		Samples:        sampler.Samples(),
		FinalLink:      sup.State().String(),
		MeanRecoveryUs: sup.Stats().MeanRecovery().Micros(),
		Downs:          sup.Stats().Downs,
		Recoveries:     sup.Stats().Recoveries,
	}
	st := tb.ARQ.Stats()
	res.Retransmits, res.Timeouts, res.NackRetries, res.Dead = st.Retransmits, st.Timeouts, st.NackRetries, st.Dead
	b := tb.RemoteBackend()
	res.Poisoned = b.Poisoned()

	viol := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}
	if !done {
		viol("workload %s did not complete", name)
	}
	// No leaked transactions: everything issued resolved before the kernel
	// drained.
	if n := tb.ARQ.Outstanding(); n != 0 {
		viol("%d ARQ transactions leaked", n)
	}
	if n := tb.ARQ.QueuedRetries(); n != 0 {
		viol("%d retransmissions stuck in the retry queue", n)
	}
	if n := b.Outstanding(); n != 0 {
		viol("%d port commands leaked", n)
	}
	if n := b.QueuedSends(); n != 0 {
		viol("%d port sends never entered the NIC", n)
	}
	if n := tb.BorrowerNIC.InjectorBacklog(); n != 0 {
		viol("borrower injector backlog %d not drained", n)
	}
	if n := tb.LenderNIC.InjectorBacklog(); n != 0 {
		viol("lender injector backlog %d not drained", n)
	}
	// Accounting balances: every tracked transaction completed or died, and
	// every port line op (128B each way) got exactly one completion.
	if st.Tracked != st.Completed+st.Dead {
		viol("ARQ accounting: tracked %d != completed %d + dead %d", st.Tracked, st.Completed, st.Dead)
	}
	if got := b.Reads() + b.Writes(); got != st.Tracked {
		viol("line accounting: port completed %d ops, ARQ tracked %d", got, st.Tracked)
	}
	// A fault-free run must look exactly like the vanilla datapath.
	if !cfg.Faults.Enabled() && (res.Poisoned != 0 || st.Retransmits != 0 || st.Dead != 0) {
		viol("fault-free run saw recovery activity: %d retransmits, %d poisoned", st.Retransmits, res.Poisoned)
	}
	if len(res.Violations) > 0 {
		o.Metrics.DumpOnAuditFailure("chaos-"+name, res.Violations)
	}
	return res
}

// launchChaosWorkload schedules one workload and calls finish on its
// completion callback.
func (o Options) launchChaosWorkload(tb *cluster.Testbed, name string, finish func()) {
	switch name {
	case "stream":
		cfg := stream.DefaultConfig(tb.RemoteAddr(0))
		cfg.Elements = o.StreamElements
		r := stream.New(tb.K, tb.NewRemoteHierarchy(), cfg)
		r.Run(func([]stream.Result) { finish() })
	case "kvstore":
		store := kvstore.NewStore(kvstore.DefaultConfig(tb.RemoteAddr(0)))
		srv := kvstore.NewServer(tb.K, tb.NewRemoteHierarchy(), store, kvstore.DefaultServerConfig())
		kvstore.RunBench(tb.K, srv, o.kvBenchConfig(), func(kvstore.BenchResult) { finish() })
	case "graph500":
		r := graph500.New(tb.K, tb.NewRemoteHierarchy(), o.graphConfig(tb.RemoteAddr(0)))
		r.Run(func(*graph500.RunResult) { finish() })
	default:
		panic(fmt.Sprintf("core: unknown chaos workload %q", name))
	}
}

// ChaosReport is one chaos campaign across the selected workloads.
type ChaosReport struct {
	Results []ChaosResult
	// Counters aggregates fault/recovery activity across all runs.
	Counters *metrics.CounterSet
	Table    *metrics.Table
}

// OK reports whether every workload completed with all invariants held.
func (r *ChaosReport) OK() bool {
	for _, res := range r.Results {
		if !res.Completed || len(res.Violations) > 0 {
			return false
		}
	}
	return len(r.Results) > 0
}

// RunChaos executes the chaos campaign: each selected workload runs to
// completion under the seeded fault schedule, with recovery active and
// invariants audited.
func (o Options) RunChaos(cfg ChaosConfig) *ChaosReport {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	rep := &ChaosReport{Counters: metrics.NewCounterSet()}
	rep.Counters.Declare(chaosCounterNames...)
	rep.Table = &metrics.Table{
		Title:   "Chaos harness: workloads under corruption+drop+flap",
		Columns: []string{"workload", "completed", "elapsed (us)", "retransmits", "dead", "poisoned", "downs", "recoveries", "violations"},
	}
	// Each trial owns its testbed, fault gates, and counters; fan the
	// workloads out and aggregate in input order.
	rep.Results = sweep.Map(o.Workers, len(cfg.Workloads), func(i int) ChaosResult {
		return o.runChaosWorkload(cfg, cfg.Workloads[i])
	})
	for _, res := range rep.Results {
		rep.Counters.Add("gate_dropped", res.Dropped)
		rep.Counters.Add("gate_corrupted", res.Corrupted)
		rep.Counters.Add("flap_blocked", res.FlapBlocked)
		rep.Counters.Add("arq_retransmits", res.Retransmits)
		rep.Counters.Add("arq_timeouts", res.Timeouts)
		rep.Counters.Add("arq_nack_retries", res.NackRetries)
		rep.Counters.Add("arq_dead", res.Dead)
		rep.Counters.Add("backend_poisoned", res.Poisoned)
		rep.Counters.Add("sup_downs", res.Downs)
		rep.Counters.Add("sup_recoveries", res.Recoveries)
		rep.Table.AddRow(res.Workload,
			fmt.Sprintf("%t", res.Completed),
			fmt.Sprintf("%.1f", res.ElapsedUs),
			fmt.Sprintf("%d", res.Retransmits),
			fmt.Sprintf("%d", res.Dead),
			fmt.Sprintf("%d", res.Poisoned),
			fmt.Sprintf("%d", res.Downs),
			fmt.Sprintf("%d", res.Recoveries),
			strings.Join(res.Violations, "; "))
	}
	return rep
}

// DegradedFailover is the dead-link fallback experiment: a pointer chase
// whose link dies mid-run, where the supervisor's dead declaration flips
// the migrator into degraded (local-only) mode instead of letting every
// access die poisoned.
type DegradedFailover struct {
	Completed     bool
	DeadDeclared  bool
	Degraded      bool
	DegradedPages uint64
	LocalAccesses uint64
	Poisoned      uint64
	ElapsedUs     float64
}

// RunDegradedFailover wires Supervisor.OnStateChange to migrate.Degrade:
// the link goes down permanently mid-chase, re-attach exhausts its budget,
// the link is declared dead, and the remaining accesses run against fresh
// local frames — bounded degradation instead of a hang.
func (o Options) RunDegradedFailover() *DegradedFailover {
	const outageStart = 200 * sim.Microsecond
	cfg := o.TestbedConfig(0)
	cfg.Gate = inject.NewOutageGate(
		[]inject.Window{{Start: sim.Time(outageStart), Duration: 50 * sim.Millisecond}},
		inject.DefaultFPGACycle)
	// Fast-failing recovery so the dead declaration lands mid-run.
	arq := tfnic.DefaultARQConfig()
	arq.Timeout = 20 * sim.Microsecond
	arq.MaxRetries = 2
	cfg.ARQ = &arq
	tb := cluster.NewTestbed(cfg)

	scfg := control.DefaultSupervisorConfig()
	scfg.Attach.Timeout = 200 * sim.Microsecond
	scfg.ReattachPause = 50 * sim.Microsecond
	scfg.ReattachCap = 200 * sim.Microsecond
	scfg.MaxReattach = 3
	sup := control.NewSupervisor(tb, scfg)

	mig := migrate.New(tb.K, tb.RemoteBackend(), memport.NewDRAMBackend(tb.BorrowerMem),
		migrate.DefaultConfig(0x40_0000_0000))
	if o.Metrics != nil {
		mig.SetMetrics(o.Metrics.MigrateMetricsFor(cluster.BorrowerID))
	}
	res := &DegradedFailover{}
	sup.OnStateChange = func(_, to control.LinkState) {
		if to == control.LinkDead {
			res.DeadDeclared = true
			mig.Degrade()
		}
	}

	h := memport.NewHierarchy(tb.K, cache.New(cfg.LLC), mig, cfg.MSHRs)
	ccfg := latmem.DefaultConfig(tb.RemoteAddr(0))
	ccfg.BufferBytes = 256 << 10
	ccfg.Hops = 6 * ccfg.BufferBytes / 128
	chase := latmem.New(tb.K, h, ccfg)
	tb.K.At(0, func() {
		sup.Start()
		chase.Run(func(latmem.Result) {
			res.Completed = true
			res.ElapsedUs = tb.K.Now().Micros()
			sup.Stop()
		})
	})
	tb.K.Run()

	res.Degraded = mig.Degraded()
	res.DegradedPages = mig.Stats().DegradedPages
	res.LocalAccesses = mig.Stats().LocalAccesses
	res.Poisoned = tb.RemoteBackend().Poisoned()
	return res
}

// RecoveryPoint is one scenario of the resilience-recovery sweep.
type RecoveryPoint struct {
	// Scenario is the fault family: drop, ber, or flap.
	Scenario string
	// Level is the fault intensity: drop probability, bit error rate, or
	// mean down-phase duration in microseconds.
	Level float64
	// BandwidthGBs is STREAM's delivered bandwidth under the faults.
	BandwidthGBs float64
	// MeanRecoveryUs is the supervisor's mean down-to-up latency (0 when
	// the link never went down).
	MeanRecoveryUs              float64
	Retransmits, Dead, Poisoned uint64
	Downs, Recoveries           uint64
}

// ResilienceRecovery holds the fig_resilience_recovery sweep: delivered
// bandwidth and recovery latency vs fault intensity, per fault family.
type ResilienceRecovery struct {
	// Baseline is the fault-free bandwidth the sweep normalizes against.
	Baseline RecoveryPoint
	Points   []RecoveryPoint
	Figure   *metrics.Figure
	// Counters aggregates recovery activity across the sweep.
	Counters *metrics.CounterSet
}

// recoveryFaults maps a scenario to its fault mix.
func recoveryFaults(scenario string, level float64) ChaosFaults {
	switch scenario {
	case "drop":
		return ChaosFaults{DropProb: level}
	case "ber":
		return ChaosFaults{BER: level}
	case "flap":
		return ChaosFaults{
			FlapMeanUp:   300 * sim.Microsecond,
			FlapMeanDown: sim.Duration(level * float64(sim.Microsecond)),
		}
	default:
		panic(fmt.Sprintf("core: unknown recovery scenario %q", scenario))
	}
}

// recoveryPoint measures STREAM under one fault mix with supervision on.
func (o Options) recoveryPoint(scenario string, level float64) RecoveryPoint {
	cfg := DefaultChaosConfig()
	cfg.Seed = o.Seed
	cfg.Faults = ChaosFaults{}
	if scenario != "baseline" {
		cfg.Faults = recoveryFaults(scenario, level)
	}
	tb, _ := o.chaosTestbed(cfg)
	sup := control.NewSupervisor(tb, cfg.Supervisor)

	scfg := stream.DefaultConfig(tb.RemoteAddr(0))
	scfg.Elements = o.StreamElements
	// Size the run to a fixed traffic volume (~4 MB) regardless of scale, so
	// it spans several flap cycles and the supervisor has time to detect and
	// re-attach; one iteration moves ~80 bytes per element.
	scfg.Iterations = 1 + (4<<20)/(80*o.StreamElements)
	r := stream.New(tb.K, tb.NewRemoteHierarchy(), scfg)
	var out []stream.Result
	tb.K.At(0, func() {
		sup.Start()
		r.Run(func(res []stream.Result) {
			out = res
			sup.Stop()
		})
	})
	tb.K.Run()

	bw, _ := stream.Summary(out)
	st := tb.ARQ.Stats()
	ss := sup.Stats()
	return RecoveryPoint{
		Scenario:       scenario,
		Level:          level,
		BandwidthGBs:   bw / 1e9,
		MeanRecoveryUs: ss.MeanRecovery().Micros(),
		Retransmits:    st.Retransmits,
		Dead:           st.Dead,
		Poisoned:       tb.RemoteBackend().Poisoned(),
		Downs:          ss.Downs,
		Recoveries:     ss.Recoveries,
	}
}

// RunResilienceRecovery sweeps each fault family over increasing intensity
// and measures what the system still delivers and how fast it recovers —
// the robustness counterpart of Fig. 4's delay-only stress test.
func (o Options) RunResilienceRecovery() *ResilienceRecovery {
	families := []struct {
		scenario string
		levels   []float64
	}{
		{"drop", []float64{0.01, 0.05, 0.1}},
		{"ber", []float64{1e-5, 1e-4, 1e-3}},
		// Mean down-phase microseconds, against a 300us mean up phase.
		{"flap", []float64{50, 100, 200}},
	}
	rr := &ResilienceRecovery{
		Figure: &metrics.Figure{
			Title:  "Resilience & recovery: delivered bandwidth under link faults",
			XLabel: "fault intensity (drop prob / BER / mean down us)",
			YLabel: "bandwidth (GB/s)",
			LogX:   true,
		},
		Counters: metrics.NewCounterSet(),
	}
	rr.Counters.Declare("retransmits", "dead", "poisoned", "downs", "recoveries")
	// Flatten the baseline plus every (scenario, level) pair into one
	// sweep so the whole grid shares the pool.
	type job struct {
		scenario string
		level    float64
	}
	jobs := []job{{"baseline", 0}}
	for _, f := range families {
		for _, level := range f.levels {
			jobs = append(jobs, job{f.scenario, level})
		}
	}
	pts := sweep.Map(o.Workers, len(jobs), func(i int) RecoveryPoint {
		return o.recoveryPoint(jobs[i].scenario, jobs[i].level)
	})
	account := func(p RecoveryPoint) {
		rr.Counters.Add("retransmits", p.Retransmits)
		rr.Counters.Add("dead", p.Dead)
		rr.Counters.Add("poisoned", p.Poisoned)
		rr.Counters.Add("downs", p.Downs)
		rr.Counters.Add("recoveries", p.Recoveries)
	}
	rr.Baseline = pts[0]
	account(rr.Baseline)
	next := 1
	for _, f := range families {
		series := rr.Figure.AddSeries(f.scenario)
		for range f.levels {
			p := pts[next]
			next++
			rr.Points = append(rr.Points, p)
			series.Add(p.Level, p.BandwidthGBs)
			account(p)
		}
	}
	return rr
}
