package core

import (
	"strconv"

	"thymesim/internal/cluster"
	"thymesim/internal/metrics"
	"thymesim/internal/sim"
	"thymesim/internal/workloads/latmem"
	"thymesim/internal/workloads/stream"
)

// QoSResult quantifies the packet-prioritization mechanism §IV-D calls
// for: a latency-sensitive pointer chase sharing the borrower NIC with a
// bulk STREAM under injected delay, with and without priority classes at
// the injector.
type QoSResult struct {
	// ChaseAloneUs is the chase's per-hop latency with an idle NIC.
	ChaseAloneUs float64
	// ChaseFIFOUs is per-hop when sharing a single-class (FIFO) injector
	// with the bulk flow — the paper's unmodified hardware.
	ChaseFIFOUs float64
	// ChasePrioUs is per-hop when the chase is class 0 and the bulk flow
	// class 1 at a two-class injector.
	ChasePrioUs float64
	// BulkFIFOBps / BulkPrioBps report what prioritization costs the bulk
	// flow.
	BulkFIFOBps float64
	BulkPrioBps float64
	Table       *metrics.Table
}

// RunQoSPriority measures the experiment at the given injector PERIOD.
func (o Options) RunQoSPriority(period int64) *QoSResult {
	res := &QoSResult{}
	res.ChaseAloneUs = o.chaseUs(period, false, false)

	res.ChaseFIFOUs, res.BulkFIFOBps = o.chaseWithBulk(period, 1)
	res.ChasePrioUs, res.BulkPrioBps = o.chaseWithBulk(period, 2)

	res.Table = &metrics.Table{
		Title:   "QoS packet prioritization at the delay injector",
		Columns: []string{"configuration", "chase per-hop (us)", "bulk STREAM (GB/s)"},
	}
	res.Table.AddRow("chase alone", fmtF(res.ChaseAloneUs), "-")
	res.Table.AddRow("shared, FIFO injector", fmtF(res.ChaseFIFOUs), fmtF(res.BulkFIFOBps/1e9))
	res.Table.AddRow("shared, priority injector", fmtF(res.ChasePrioUs), fmtF(res.BulkPrioBps/1e9))
	return res
}

func fmtF(v float64) string {
	return metricsFormat(v)
}

// chaseUs measures the pointer chase alone.
func (o Options) chaseUs(period int64, _, _ bool) float64 {
	tb := o.Testbed(period)
	h := tb.NewRemoteHierarchy()
	cfg := latmem.DefaultConfig(tb.RemoteAddr(0))
	cfg.BufferBytes = 1 << 18
	cfg.Hops = 300
	r := latmem.New(tb.K, h, cfg)
	var out latmem.Result
	tb.K.At(0, func() { r.Run(func(res latmem.Result) { out = res }) })
	tb.K.Run()
	return out.PerHop.Micros()
}

// chaseWithBulk runs the chase (class 0) against a saturating STREAM
// (class 1) with the given number of injector classes.
func (o Options) chaseWithBulk(period int64, classes int) (chaseUs float64, bulkBps float64) {
	cfg := o.TestbedConfig(period)
	cfg.InjectClasses = classes
	tb := cluster.NewTestbed(cfg)

	// Bulk flow: repeated STREAM keeping the injector saturated for the
	// whole chase.
	bulkH := tb.NewRemoteHierarchyPrio(1)
	sCfg := stream.DefaultConfig(tb.RemoteAddr(1 << 30))
	sCfg.Elements = o.StreamElements
	sCfg.Iterations = 50
	bulk := stream.New(tb.K, bulkH, sCfg)

	chaseH := tb.NewRemoteHierarchyPrio(0)
	lCfg := latmem.DefaultConfig(tb.RemoteAddr(0))
	lCfg.BufferBytes = 1 << 18
	lCfg.Hops = 300
	chase := latmem.New(tb.K, chaseH, lCfg)

	var chaseRes latmem.Result
	tb.K.At(0, func() {
		// The bulk flow exists only as background pressure; the run stops
		// when the chase completes.
		bulk.Run(func([]stream.Result) {})
		chase.Run(func(r latmem.Result) {
			chaseRes = r
			tb.K.Stop()
		})
	})
	tb.K.Run()
	// Bulk bandwidth over the chase window: bytes moved so far / time.
	bulkBytes := bulkH.Stats().BytesMoved
	return chaseRes.PerHop.Micros(), sim.PerSecond(float64(bulkBytes), sim.Duration(tb.K.Now()))
}

// metricsFormat renders a float compactly for tables.
func metricsFormat(v float64) string {
	prec := 4
	switch {
	case v >= 100:
		prec = 0
	case v >= 1:
		prec = 2
	}
	return strconv.FormatFloat(v, 'f', prec, 64)
}
