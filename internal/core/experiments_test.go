package core

import (
	"os"
	"strings"
	"testing"
)

// The experiment list lives in exactly one place (Experiments()); the
// characterize usage string and README's experiment table are derived
// views. These tests fail with a pointer to whichever copy drifted.

func TestExperimentNamesUniqueAndNonEmpty(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Experiments() {
		if e.Name == "" || e.Summary == "" {
			t.Fatalf("experiment %+v has an empty field", e)
		}
		if e.Name != strings.ToLower(e.Name) || strings.ContainsAny(e.Name, " |") {
			t.Fatalf("experiment name %q is not a clean flag value", e.Name)
		}
		if seen[e.Name] {
			t.Fatalf("duplicate experiment %q", e.Name)
		}
		seen[e.Name] = true
	}
}

func TestREADMEExperimentTableMatches(t *testing.T) {
	data, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	const begin, end = "<!-- experiments:begin", "<!-- experiments:end -->"
	text := string(data)
	i := strings.Index(text, begin)
	j := strings.Index(text, end)
	if i < 0 || j < i {
		t.Fatalf("README.md missing the %q / %q experiment-table markers", begin, end)
	}
	var rows [][2]string
	for _, line := range strings.Split(text[i:j], "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "| `") {
			continue // header, separator, markers
		}
		cells := strings.Split(strings.Trim(line, "|"), "|")
		if len(cells) != 2 {
			t.Fatalf("README experiment row %q does not have 2 cells", line)
		}
		name := strings.Trim(strings.TrimSpace(cells[0]), "`")
		if name == "-experiment" {
			continue // table header
		}
		rows = append(rows, [2]string{name, strings.TrimSpace(cells[1])})
	}
	exps := Experiments()
	if len(rows) != len(exps) {
		t.Fatalf("README table has %d experiments, core.Experiments() has %d — regenerate the table", len(rows), len(exps))
	}
	for k, e := range exps {
		if rows[k][0] != e.Name || rows[k][1] != e.Summary {
			t.Errorf("README row %d = %q / %q, want %q / %q", k, rows[k][0], rows[k][1], e.Name, e.Summary)
		}
	}
}

func TestCharacterizeUsageListsAllExperiments(t *testing.T) {
	data, err := os.ReadFile("../../cmd/characterize/main.go")
	if err != nil {
		t.Fatal(err)
	}
	want := "all|" + strings.Join(ExperimentNames(), "|")
	if !strings.Contains(string(data), want) {
		t.Fatalf("cmd/characterize/main.go usage does not list %q — update the doc comment", want)
	}
}
