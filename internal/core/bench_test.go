package core

import (
	"runtime"
	"testing"

	"thymesim/internal/cluster"
	"thymesim/internal/control"
	"thymesim/internal/ocapi"
	"thymesim/internal/sim"
	"thymesim/internal/tfnic"
)

// benchOptions shrinks the workloads so one sweep point is cheap enough to
// iterate.
func benchOptions() Options {
	o := Default()
	o.StreamElements = 1 << 12
	return o
}

// BenchmarkStreamRemotePoint measures one validation sweep point end to
// end: testbed construction plus a full STREAM run over the simulated
// datapath. This is the unit of work the sweep pool schedules.
func BenchmarkStreamRemotePoint(b *testing.B) {
	o := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := o.StreamRemote(50)
		if m.BandwidthBps <= 0 {
			b.Fatal("no bandwidth measured")
		}
	}
}

// BenchmarkBreakerRemoteFill measures a single remote line fill through
// the full robustness stack — breaker admission gate, deadline-armed
// backend, ARQ tracking, outcome feedback into the breaker window — once
// every pool on the path is warm. Guards the steady-state overhead the
// deadline/breaker layers add to the datapath (allocs/op must stay 0).
func BenchmarkBreakerRemoteFill(b *testing.B) {
	cfg := cluster.DefaultConfig(1)
	arq := tfnic.DefaultARQConfig()
	cfg.ARQ = &arq
	cfg.FillDeadline = 10 * sim.Millisecond
	tb := cluster.NewTestbed(cfg)
	brk, err := control.NewBreaker(tb.K, control.DefaultBreakerConfig())
	if err != nil {
		b.Fatal(err)
	}
	tb.SetFillOutcomeObserver(brk.Record)
	h := tb.NewRemoteHierarchy()
	fills := 0
	done := func() { fills++ }
	next := uint64(0)
	fill := func() {
		if !brk.Allow() {
			b.Fatal("breaker tripped on a healthy lender")
		}
		h.Access(tb.RemoteAddr(next*ocapi.CacheLineSize), ocapi.CacheLineSize, false, done)
		next++
		tb.K.Run()
	}
	for i := 0; i < 512; i++ {
		fill()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fill()
	}
	b.StopTimer()
	if fills != 512+b.N {
		b.Fatalf("fills = %d", fills)
	}
}

// benchPoolChaos64 runs the rack-scale chaos campaign — 48 borrowers and
// 16 lenders on one switch (a 64-node rack), region churn, lender
// crash/restore, and audited traffic under the deadline+ARQ stack — once
// per iteration. The legacy/sharded pair measures the sharded runtime's
// speedup on one run (not sweep parallelism: this is a single simulation
// spread over all cores).
func benchPoolChaos64(b *testing.B, shards int) {
	o := benchOptions()
	o.Shards = shards
	cfg := PoolChaosConfig{Seed: 1, Borrowers: 48, Lenders: 16, Rounds: 6, TagSpace: 64}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := o.RunPoolChaos(cfg)
		if !r.OK() {
			b.Fatal(r.Violations)
		}
	}
}

// BenchmarkPoolChaos64 is the rack-scale campaign on the legacy single
// kernel: the baseline the sharded variant is compared against.
func BenchmarkPoolChaos64(b *testing.B) { benchPoolChaos64(b, 0) }

// BenchmarkPoolChaos64Sharded is the same campaign with the event kernel
// sharded one-per-core; the ratio to the legacy variant is the sharded
// runtime's speedup on this machine. At least 2 shards even on one core,
// so the conservative-window protocol is always the thing measured.
func BenchmarkPoolChaos64Sharded(b *testing.B) {
	shards := runtime.GOMAXPROCS(0)
	if shards < 2 {
		shards = 2
	}
	benchPoolChaos64(b, shards)
}

// BenchmarkValidationSweepSerial is the Figs. 2-3 sweep with the pool
// disabled: the serial reference the parallel variant is compared against.
func BenchmarkValidationSweepSerial(b *testing.B) {
	o := benchOptions()
	o.Workers = 1
	periods := []int64{1, 10, 50, 100}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.RunDelayValidation(periods)
	}
}

// BenchmarkValidationSweepParallel is the same sweep with one worker per
// CPU; the ratio to the serial variant is the sweep harness's speedup on
// this machine.
func BenchmarkValidationSweepParallel(b *testing.B) {
	o := benchOptions()
	o.Workers = 0 // GOMAXPROCS
	periods := []int64{1, 10, 50, 100}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.RunDelayValidation(periods)
	}
}
