package core

import "testing"

// benchOptions shrinks the workloads so one sweep point is cheap enough to
// iterate.
func benchOptions() Options {
	o := Default()
	o.StreamElements = 1 << 12
	return o
}

// BenchmarkStreamRemotePoint measures one validation sweep point end to
// end: testbed construction plus a full STREAM run over the simulated
// datapath. This is the unit of work the sweep pool schedules.
func BenchmarkStreamRemotePoint(b *testing.B) {
	o := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := o.StreamRemote(50)
		if m.BandwidthBps <= 0 {
			b.Fatal("no bandwidth measured")
		}
	}
}

// BenchmarkValidationSweepSerial is the Figs. 2-3 sweep with the pool
// disabled: the serial reference the parallel variant is compared against.
func BenchmarkValidationSweepSerial(b *testing.B) {
	o := benchOptions()
	o.Workers = 1
	periods := []int64{1, 10, 50, 100}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.RunDelayValidation(periods)
	}
}

// BenchmarkValidationSweepParallel is the same sweep with one worker per
// CPU; the ratio to the serial variant is the sweep harness's speedup on
// this machine.
func BenchmarkValidationSweepParallel(b *testing.B) {
	o := benchOptions()
	o.Workers = 0 // GOMAXPROCS
	periods := []int64{1, 10, 50, 100}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.RunDelayValidation(periods)
	}
}
