package core

import (
	"thymesim/internal/memport"
	"thymesim/internal/metrics"
	"thymesim/internal/ocapi"
	"thymesim/internal/sim"
)

// PrefetchResult quantifies hardware stream prefetching on disaggregated
// memory: a dependent sequential scan (the pattern prefetchers exist for)
// with the prefetcher off and on, vanilla and under injected delay.
// Prefetching hides the base remote round trip almost entirely, but under
// delay injection the injector's release rate bounds everything the
// prefetcher issues too — latency hiding cannot buy back throttled
// bandwidth.
type PrefetchResult struct {
	// Per-hop latency of the dependent sequential scan, microseconds.
	OffVanillaUs float64
	OnVanillaUs  float64
	OffDelayedUs float64
	OnDelayedUs  float64
	Table        *metrics.Table
}

// RunPrefetchAblation measures the four configurations; delayedPeriod sets
// the injected PERIOD for the delayed pair.
func (o Options) RunPrefetchAblation(delayedPeriod int64) *PrefetchResult {
	scan := func(period int64, degree int) float64 {
		tb := o.Testbed(period)
		h := tb.NewRemoteHierarchy()
		memport.AttachPrefetcher(h, degree)
		const lines = 400
		var done sim.Time
		tb.K.At(0, func() {
			var next func(i int)
			next = func(i int) {
				if i == lines {
					done = tb.K.Now()
					return
				}
				h.Access(tb.RemoteAddr(uint64(i)*ocapi.CacheLineSize), 8, false, func() { next(i + 1) })
			}
			next(0)
		})
		tb.K.Run()
		return (sim.Duration(done) / lines).Micros()
	}
	r := &PrefetchResult{
		OffVanillaUs: scan(1, 0),
		OnVanillaUs:  scan(1, 8),
		OffDelayedUs: scan(delayedPeriod, 0),
		OnDelayedUs:  scan(delayedPeriod, 8),
	}
	r.Table = &metrics.Table{
		Title:   "Stream prefetching on disaggregated memory (dependent sequential scan)",
		Columns: []string{"configuration", "per-line (us), vanilla", "per-line (us), delayed"},
	}
	r.Table.AddRow("prefetch off", metricsFormat(r.OffVanillaUs), metricsFormat(r.OffDelayedUs))
	r.Table.AddRow("prefetch degree 8", metricsFormat(r.OnVanillaUs), metricsFormat(r.OnDelayedUs))
	return r
}
