package core

import (
	"bytes"
	"fmt"
	"testing"
)

// TestPoolShardsInvariant is the sharded-runtime determinism contract at
// the experiment level: Options.Shards is a throughput knob, never a
// results knob. Across seeds, every pool experiment must produce
// byte-identical CSVs and campaign counters on the legacy single kernel,
// at 2 shards (switch/nodes split), and at 8 (every node its own shard).
func TestPoolShardsInvariant(t *testing.T) {
	shardCounts := []int{1, 2, 8}
	for _, seed := range []uint64{1, 42} {
		seed := seed
		t.Run(fmt.Sprintf("contention-seed%d", seed), func(t *testing.T) {
			run := func(shards int) map[string][]byte {
				o := fastOptions()
				o.Seed = seed
				o.Shards = shards
				rep := &Report{Options: o, PoolCont: o.RunPoolContention([]int{1, 3}, 2)}
				return writeReportDir(t, rep)
			}
			want := run(shardCounts[0])
			csv, ok := want["fig_pool_contention.csv"]
			if !ok || len(csv) == 0 {
				t.Fatal("fig_pool_contention.csv missing or empty")
			}
			for _, shards := range shardCounts[1:] {
				got := run(shards)
				if !bytes.Equal(got["fig_pool_contention.csv"], csv) {
					t.Errorf("shards=%d differs from legacy:\nlegacy:\n%s\nsharded:\n%s",
						shards, csv, got["fig_pool_contention.csv"])
				}
			}
		})
		t.Run(fmt.Sprintf("chaos-seed%d", seed), func(t *testing.T) {
			run := func(shards int) string {
				o := fastOptions()
				o.Shards = shards
				cfg := DefaultPoolChaosConfig()
				cfg.Seed = seed
				r := o.RunPoolChaos(cfg)
				if !r.OK() {
					t.Fatalf("shards=%d: %v", shards, r.Violations)
				}
				return fmt.Sprintf("%+v", *r)
			}
			want := run(shardCounts[0])
			for _, shards := range shardCounts[1:] {
				if got := run(shards); got != want {
					t.Errorf("shards=%d counters diverged:\nlegacy:  %s\nsharded: %s", shards, want, got)
				}
			}
		})
	}
}
