package core

import (
	"fmt"
	"io"

	"thymesim/internal/metrics"
	"thymesim/internal/obs"
	"thymesim/internal/sweep"
)

// BreakdownPoint is one PERIOD's per-stage latency decomposition.
type BreakdownPoint struct {
	Period int64
	// FillLatUs is the STREAM-reported mean fill latency (the fig2 value).
	FillLatUs float64
	// EndToEndUs is the tracer's mean end-to-end span latency; the stage
	// means in Rows sum to it exactly.
	EndToEndUs float64
	P99Us      float64
	Spans      uint64
	Rows       []obs.BreakdownRow
}

// StageBreakdown is the Table-I-style critical-path decomposition across
// the fig2 PERIOD sweep: where each microsecond of a remote line fill is
// spent, per injector setting.
type StageBreakdown struct {
	Points []BreakdownPoint
	Table  *metrics.Table
	// Tracer is the first period's tracer, retained so the caller can
	// export its raw spans as a Chrome trace.
	Tracer *obs.Tracer
}

// RunLatencyBreakdown runs the STREAM remote workload at each PERIOD with
// span tracing enabled and decomposes the mean fill latency into datapath
// stages. sample traces every Nth fill (<=1 traces all). Tracing is
// observation-only, so the runs produce the same timing as the untraced
// fig2 sweep; the decomposition's end_to_end row must match fig2's
// latency at the same PERIOD.
func (o Options) RunLatencyBreakdown(periods []int64, sample int) *StageBreakdown {
	sb := &StageBreakdown{Table: &metrics.Table{
		Title:   "Table I (simulated): per-stage decomposition of a remote line fill",
		Columns: []string{"PERIOD", "stage", "count", "mean (us)", "p99 (us)", "share (%)"},
	}}
	type traced struct {
		pt BreakdownPoint
		tr *obs.Tracer
	}
	runs := sweep.Map(o.Workers, len(periods), func(i int) traced {
		period := periods[i]
		tb := o.Testbed(period)
		tr := tb.EnableTracing(obs.Config{Sample: sample})
		m := o.runStream(tb, tb.NewRemoteHierarchy(), tb.RemoteAddr(0))
		return traced{
			pt: BreakdownPoint{
				Period:     period,
				FillLatUs:  m.FillLatUs,
				EndToEndUs: tr.EndToEndMeanUs(),
				P99Us:      tr.EndToEnd().Quantile(0.99),
				Spans:      tr.Finished(),
				Rows:       tr.Breakdown(),
			},
			tr: tr,
		}
	})
	for i, period := range periods {
		pt := runs[i].pt
		sb.Points = append(sb.Points, pt)
		for _, r := range pt.Rows {
			sb.Table.AddRow(fmt.Sprintf("%d", period), r.Stage.String(),
				fmt.Sprintf("%d", r.Count),
				fmt.Sprintf("%.4f", r.MeanUs),
				fmt.Sprintf("%.4f", r.P99Us),
				fmt.Sprintf("%.1f", r.SharePct))
		}
		sb.Table.AddRow(fmt.Sprintf("%d", period), "end_to_end",
			fmt.Sprintf("%d", pt.Spans),
			fmt.Sprintf("%.4f", pt.EndToEndUs),
			fmt.Sprintf("%.4f", pt.P99Us),
			"100.0")
		if i == 0 {
			sb.Tracer = runs[i].tr
		}
	}
	return sb
}

// WriteCSV emits the decomposition as tidy machine-readable rows. The
// end_to_end row per PERIOD is the sum of that PERIOD's stage mean_us
// column (and matches fig2_latency.csv at the same PERIOD).
func (sb *StageBreakdown) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "period,stage,count,mean_us,p99_us,share_pct"); err != nil {
		return err
	}
	for _, pt := range sb.Points {
		for _, r := range pt.Rows {
			if _, err := fmt.Fprintf(w, "%d,%s,%d,%g,%g,%g\n",
				pt.Period, r.Stage, r.Count, r.MeanUs, r.P99Us, r.SharePct); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%d,end_to_end,%d,%g,%g,100\n",
			pt.Period, pt.Spans, pt.EndToEndUs, pt.P99Us); err != nil {
			return err
		}
	}
	return nil
}

// StreamRemoteTraced is StreamRemote with span tracing enabled; it
// returns the run's tracer alongside the measurement.
func (o Options) StreamRemoteTraced(period int64, cfg obs.Config) (StreamMeasurement, *obs.Tracer) {
	tb := o.Testbed(period)
	tr := tb.EnableTracing(cfg)
	return o.runStream(tb, tb.NewRemoteHierarchy(), tb.RemoteAddr(0)), tr
}

// GraphRemoteTraced is GraphRemote with span tracing enabled.
func (o Options) GraphRemoteTraced(period int64, cfg obs.Config) (GraphMeasurement, *obs.Tracer) {
	tb := o.Testbed(period)
	tr := tb.EnableTracing(cfg)
	return o.runGraph(tb, tb.NewRemoteHierarchy(), tb.RemoteAddr(0)), tr
}

// KVRemoteTraced is KVRemote with span tracing enabled.
func (o Options) KVRemoteTraced(period int64, cfg obs.Config) (KVMeasurement, *obs.Tracer) {
	tb := o.Testbed(period)
	tr := tb.EnableTracing(cfg)
	return o.runKV(tb, tb.NewRemoteHierarchy(), tb.RemoteAddr(0)), tr
}
