package core

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// chaosOptions shrinks the workloads so a chaos campaign runs in well under
// a second of wall time.
func chaosOptions() Options {
	o := fastOptions()
	o.StreamElements = 1 << 12
	o.GraphScale = 9
	return o
}

func TestChaosConfigValidation(t *testing.T) {
	if err := DefaultChaosConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	muts := []func(*ChaosConfig){
		func(c *ChaosConfig) { c.Period = 0 },
		func(c *ChaosConfig) { c.Faults.BER = 1 },
		func(c *ChaosConfig) { c.Faults.DropProb = -0.1 },
		func(c *ChaosConfig) { c.Faults.FlapMeanDown = 0 },
		func(c *ChaosConfig) { c.ARQ.Timeout = 0 },
		func(c *ChaosConfig) { c.Supervisor.Heartbeat = 0 },
		func(c *ChaosConfig) { c.SampleEvery = 0 },
		func(c *ChaosConfig) { c.Workloads = nil },
		func(c *ChaosConfig) { c.Workloads = []string{"memtier"} },
	}
	for i, mut := range muts {
		cfg := DefaultChaosConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestChaosAllWorkloadsSurviveFaults(t *testing.T) {
	o := chaosOptions()
	cfg := DefaultChaosConfig()
	rep := o.RunChaos(cfg)
	if len(rep.Results) != 3 {
		t.Fatalf("results = %d", len(rep.Results))
	}
	if !rep.OK() {
		for _, r := range rep.Results {
			t.Errorf("%s: completed=%t violations=%v", r.Workload, r.Completed, r.Violations)
		}
		t.Fatal("chaos campaign failed")
	}
	// The fault mix actually fired, and recovery actually worked.
	if rep.Counters.Get("gate_dropped") == 0 {
		t.Error("no drops under the default mix")
	}
	if rep.Counters.Get("gate_corrupted") == 0 {
		t.Error("no corruption under the default mix")
	}
	if rep.Counters.Get("arq_retransmits") == 0 {
		t.Error("no retransmissions despite loss")
	}
	for _, r := range rep.Results {
		if r.Samples == 0 {
			t.Errorf("%s: telemetry never sampled", r.Workload)
		}
	}
	if len(rep.Table.Rows) != 3 {
		t.Errorf("table rows = %d", len(rep.Table.Rows))
	}
}

func TestChaosDeterministicAcrossRuns(t *testing.T) {
	o := chaosOptions()
	cfg := DefaultChaosConfig()
	cfg.Workloads = []string{"stream", "kvstore"}
	a := o.RunChaos(cfg)
	b := o.RunChaos(cfg)
	if !reflect.DeepEqual(a.Results, b.Results) {
		t.Fatalf("same seed diverged:\n%+v\nvs\n%+v", a.Results, b.Results)
	}
	cfg.Seed = 99
	c := o.RunChaos(cfg)
	if reflect.DeepEqual(a.Results, c.Results) {
		t.Fatal("different seeds produced identical fault schedules")
	}
	if !c.OK() {
		t.Fatalf("seed 99 campaign failed: %+v", c.Results)
	}
}

func TestChaosFaultFreeRunIsClean(t *testing.T) {
	o := chaosOptions()
	cfg := DefaultChaosConfig()
	cfg.Faults = ChaosFaults{}
	cfg.Workloads = []string{"stream"}
	rep := o.RunChaos(cfg)
	if !rep.OK() {
		t.Fatalf("fault-free run failed: %+v", rep.Results[0].Violations)
	}
	r := rep.Results[0]
	if r.Retransmits != 0 || r.Dead != 0 || r.Poisoned != 0 || r.Dropped != 0 {
		t.Fatalf("fault-free run saw recovery activity: %+v", r)
	}
}

func TestDegradedFailover(t *testing.T) {
	o := chaosOptions()
	r := o.RunDegradedFailover()
	if !r.Completed {
		t.Fatal("chase never completed — dead link back to a hang")
	}
	if !r.DeadDeclared || !r.Degraded {
		t.Fatalf("link not declared dead / migrator not degraded: %+v", r)
	}
	if r.DegradedPages == 0 {
		t.Fatalf("no pages localized after degrade: %+v", r)
	}
	if r.LocalAccesses == 0 {
		t.Fatalf("no local accesses after degrade: %+v", r)
	}
	// Accesses issued while the link was dying died poisoned — visible, not
	// silent.
	if r.Poisoned == 0 {
		t.Fatalf("no poisoned completions before the dead declaration: %+v", r)
	}
}

func TestResilienceRecoverySweep(t *testing.T) {
	o := chaosOptions()
	rr := o.RunResilienceRecovery()
	if len(rr.Points) != 9 {
		t.Fatalf("points = %d", len(rr.Points))
	}
	if rr.Baseline.BandwidthGBs <= 0 {
		t.Fatalf("baseline bandwidth %v", rr.Baseline.BandwidthGBs)
	}
	// Bandwidth degrades monotonically-ish with fault intensity within each
	// family; assert the endpoints at least.
	for _, fam := range []string{"drop", "ber", "flap"} {
		s := rr.Figure.Get(fam)
		if s == nil || s.Len() != 3 {
			t.Fatalf("series %s missing or short", fam)
		}
		ys := s.Ys()
		if ys[2] >= rr.Baseline.BandwidthGBs {
			t.Errorf("%s at max intensity (%v GB/s) not below baseline (%v)", fam, ys[2], rr.Baseline.BandwidthGBs)
		}
		if ys[2] > ys[0] {
			t.Errorf("%s bandwidth grew with intensity: %v", fam, ys)
		}
	}
	// Flap scenarios exercise detection/recovery.
	var flapDowns uint64
	for _, p := range rr.Points {
		if p.Scenario == "flap" {
			flapDowns += p.Downs
		}
	}
	if flapDowns == 0 {
		t.Error("flap sweep never took the link down")
	}
	if rr.Counters.Get("retransmits") == 0 {
		t.Error("sweep saw no retransmissions")
	}
}

func TestResilienceRecoveryDeterministic(t *testing.T) {
	o := chaosOptions()
	a := o.recoveryPoint("drop", 0.05)
	b := o.recoveryPoint("drop", 0.05)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("recovery point nondeterministic:\n%+v\nvs\n%+v", a, b)
	}
}

func TestReportRecoveryAndChaosSections(t *testing.T) {
	o := chaosOptions()
	cfg := DefaultChaosConfig()
	cfg.Workloads = []string{"stream"}
	r := &Report{
		Options:  o,
		Recovery: o.RunResilienceRecovery(),
		Chaos:    o.RunChaos(cfg),
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Link-fault resilience", "baseline:", "all invariants held", "chaos fault/recovery counters"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	dir := t.TempDir()
	if err := r.WriteCSVDir(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig_resilience_recovery.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if lines[0] != "scenario,level,bandwidth_gbs,mean_recovery_us,retransmits,dead,poisoned,downs,recoveries" {
		t.Errorf("header = %q", lines[0])
	}
	// Header + baseline + 9 sweep points.
	if len(lines) != 11 {
		t.Errorf("rows = %d, want 11", len(lines))
	}
	if !strings.HasPrefix(lines[1], "baseline,") {
		t.Errorf("first data row = %q", lines[1])
	}
	for _, f := range []string{"chaos_table.csv", "chaos_counters.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if len(data) == 0 {
			t.Errorf("%s empty", f)
		}
	}
}

func TestChaosElapsedReflectsFaultPressure(t *testing.T) {
	o := chaosOptions()
	clean := DefaultChaosConfig()
	clean.Faults = ChaosFaults{}
	clean.Workloads = []string{"stream"}
	faulty := DefaultChaosConfig()
	faulty.Workloads = []string{"stream"}
	tClean := o.RunChaos(clean).Results[0].ElapsedUs
	tFaulty := o.RunChaos(faulty).Results[0].ElapsedUs
	if tFaulty <= tClean {
		t.Fatalf("faults did not cost time: %v us vs %v us", tFaulty, tClean)
	}
}
