package core

// Experiment is one named characterize experiment: the -experiment flag
// value and a one-line summary.
type Experiment struct {
	Name    string
	Summary string
}

// Experiments is the single source of truth for the experiment list the
// characterize command accepts, in run order under -experiment all. The
// command's flag validation, its usage string, and README's experiment
// table are all tested against this list — edit it here and the tests
// point at every place that must follow.
func Experiments() []Experiment {
	return []Experiment{
		{"validation", "delay-injection validation sweep (Figs. 2-3)"},
		{"resilience", "extreme-delay resilience (Fig. 4)"},
		{"table1", "local vs remote workload comparison (Table I)"},
		{"fig5", "application impact across PERIOD (Fig. 5)"},
		{"mcbn", "multiple clients at the borrower node (Fig. 6)"},
		{"mcln", "contending applications at the lender node (Fig. 7)"},
		{"pool", "CPU-less memory-pool ablation (§V)"},
		{"pool-contention", "rack-scale pool contention (N borrowers × M lenders)"},
		{"dists", "distribution-based delay injection (§VII)"},
		{"qos", "QoS packet prioritization"},
		{"migration", "hot-page migration to local memory"},
		{"interconnect", "interconnect profile comparison (§V)"},
		{"prefetch", "prefetch ablation"},
		{"recovery", "link-fault recovery sweep"},
		{"chaos", "randomized fault-injection campaign"},
		{"schedule", "scheduled lender-fault campaign (crash/wipe/burst/brownout)"},
		{"breaker-recovery", "breaker recovery sweep (outage length vs re-close time)"},
		{"breakdown", "per-stage latency breakdown (Table I decomposition)"},
	}
}

// ExperimentNames returns the experiment names in run order.
func ExperimentNames() []string {
	exps := Experiments()
	names := make([]string, len(exps))
	for i, e := range exps {
		names[i] = e.Name
	}
	return names
}
