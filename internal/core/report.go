package core

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"thymesim/internal/metrics"
	"thymesim/internal/sim"
)

// Report aggregates one full characterization run.
type Report struct {
	Options    Options
	Validation *DelayValidation
	Resilience *Resilience
	Table1     *Table1
	Fig5       *AppDegradation
	MCBN       *Contention
	MCLN       *Contention
	Pool       *Contention
	PoolCont   *PoolContention
	Dists      *DistImpact
	QoS        *QoSResult
	Migration  *MigrationResult
	Xconnect   *InterconnectResult
	Prefetch   *PrefetchResult
	Recovery   *ResilienceRecovery
	Chaos      *ChaosReport
	Schedule   *ChaosScheduleReport
	BreakerRec *BreakerRecovery
	Breakdown  *StageBreakdown
}

// RunAll executes every experiment with default sweeps.
func (o Options) RunAll() *Report {
	ccfg := DefaultChaosConfig()
	ccfg.Seed = o.Seed
	scfg := DefaultChaosScheduleConfig()
	scfg.Seed = o.Seed
	sched, err := o.RunChaosSchedule(scfg)
	if err != nil {
		panic(err)
	}
	brec, err := o.RunBreakerRecovery()
	if err != nil {
		panic(err)
	}
	return &Report{
		Options:    o,
		Validation: o.RunDelayValidation(DefaultPeriods()),
		Resilience: o.RunResilience(ResiliencePeriods()),
		Table1:     o.RunTable1(),
		Fig5:       o.RunAppDegradation(Fig5Periods()),
		MCBN:       o.RunMCBN([]int{1, 2, 4, 8}),
		MCLN:       o.RunMCLN([]int{0, 1, 2, 4, 8}),
		Pool:       o.RunMCLNPool([]int{0, 1, 2, 4, 8}, 25e9),
		PoolCont:   o.RunPoolContention([]int{1, 2, 4, 8}, 4),
		Dists:      o.RunDistImpact(2 * sim.Microsecond),
		QoS:        o.RunQoSPriority(100),
		Migration:  o.RunMigration(100),
		Xconnect:   o.RunInterconnectComparison(),
		Prefetch:   o.RunPrefetchAblation(250),
		Recovery:   o.RunResilienceRecovery(),
		Chaos:      o.RunChaos(ccfg),
		Schedule:   sched,
		BreakerRec: brec,
		Breakdown:  o.RunLatencyBreakdown(DefaultPeriods(), 1),
	}
}

// figures returns every figure with a stable file stem.
func (r *Report) figures() map[string]*metrics.Figure {
	out := map[string]*metrics.Figure{}
	if r.Validation != nil {
		out["fig2_latency"] = r.Validation.Latency
		out["fig3_bandwidth"] = r.Validation.Bandwidth
		out["fig3_bdp"] = r.Validation.BDP
	}
	if r.Resilience != nil {
		out["fig4_resilience"] = r.Resilience.Figure
	}
	if r.Fig5 != nil {
		out["fig5_degradation"] = r.Fig5.Figure
	}
	if r.MCBN != nil {
		out["fig6_mcbn"] = r.MCBN.Figure
	}
	if r.MCLN != nil {
		out["fig7_mcln"] = r.MCLN.Figure
	}
	if r.Pool != nil {
		out["ablation_pool"] = r.Pool.Figure
	}
	if r.PoolCont != nil {
		out["fig_pool_contention"] = r.PoolCont.Figure
	}
	if r.Dists != nil {
		out["ablation_dists"] = r.Dists.Figure
	}
	return out
}

// WriteCSVDir writes every figure and table as CSV files under dir.
func (r *Report) WriteCSVDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return fn(f)
	}
	for stem, fig := range r.figures() {
		fig := fig
		if err := write(stem+".csv", fig.WriteCSV); err != nil {
			return err
		}
	}
	if r.Table1 != nil {
		if err := write("table1.csv", r.Table1.Table.WriteCSV); err != nil {
			return err
		}
	}
	if r.Dists != nil {
		if err := write("ablation_dists_table.csv", r.Dists.Table.WriteCSV); err != nil {
			return err
		}
	}
	if r.QoS != nil {
		if err := write("ablation_qos.csv", r.QoS.Table.WriteCSV); err != nil {
			return err
		}
	}
	if r.Migration != nil {
		if err := write("ablation_migration.csv", r.Migration.Table.WriteCSV); err != nil {
			return err
		}
	}
	if r.Xconnect != nil {
		if err := write("ablation_interconnect.csv", r.Xconnect.Table.WriteCSV); err != nil {
			return err
		}
	}
	if r.Prefetch != nil {
		if err := write("ablation_prefetch.csv", r.Prefetch.Table.WriteCSV); err != nil {
			return err
		}
	}
	if r.Resilience != nil {
		err := write("fig4_attach.csv", func(w io.Writer) error {
			if _, err := fmt.Fprintln(w, "period,attach_ok,latency_us,reason"); err != nil {
				return err
			}
			for _, p := range r.Resilience.Points {
				if _, err := fmt.Fprintf(w, "%d,%t,%g,%s\n", p.Period, p.AttachOK, p.LatencyUs, strings.ReplaceAll(p.AttachReason, ",", ";")); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	if r.Recovery != nil {
		err := write("fig_resilience_recovery.csv", func(w io.Writer) error {
			if _, err := fmt.Fprintln(w, "scenario,level,bandwidth_gbs,mean_recovery_us,retransmits,dead,poisoned,downs,recoveries"); err != nil {
				return err
			}
			row := func(p RecoveryPoint) error {
				_, err := fmt.Fprintf(w, "%s,%g,%g,%g,%d,%d,%d,%d,%d\n",
					p.Scenario, p.Level, p.BandwidthGBs, p.MeanRecoveryUs,
					p.Retransmits, p.Dead, p.Poisoned, p.Downs, p.Recoveries)
				return err
			}
			if err := row(r.Recovery.Baseline); err != nil {
				return err
			}
			for _, p := range r.Recovery.Points {
				if err := row(p); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	if r.Chaos != nil {
		if err := write("chaos_table.csv", r.Chaos.Table.WriteCSV); err != nil {
			return err
		}
		if err := write("chaos_counters.csv", r.Chaos.Counters.WriteCSV); err != nil {
			return err
		}
	}
	if r.Schedule != nil {
		if err := write("chaos_schedule_table.csv", r.Schedule.Events.WriteCSV); err != nil {
			return err
		}
		if err := write("chaos_schedule_campaign.csv", r.Schedule.Table.WriteCSV); err != nil {
			return err
		}
	}
	if r.BreakerRec != nil {
		err := write("fig_breaker_recovery.csv", func(w io.Writer) error {
			if _, err := fmt.Fprintln(w, "outage_us,wipe,completed,trip_us,recovery_us,expired,poisoned,short_circuited,localized,trips,reopens,violations"); err != nil {
				return err
			}
			for _, p := range r.BreakerRec.Points {
				if _, err := fmt.Fprintf(w, "%g,%t,%t,%g,%g,%d,%d,%d,%d,%d,%d,%d\n",
					p.OutageUs, p.Wipe, p.Completed, p.TripUs, p.RecoveryUs,
					p.Expired, p.Poisoned, p.ShortCircuited, p.GateLocalized,
					p.Trips, p.Reopens, p.Violations); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	if r.Breakdown != nil {
		if err := write("table1_breakdown.csv", r.Breakdown.WriteCSV); err != nil {
			return err
		}
	}
	return nil
}

// Render writes a human-readable summary of every experiment.
func (r *Report) Render(w io.Writer) error {
	p := func(format string, args ...any) {
		fmt.Fprintf(w, format, args...)
	}
	p("thymesim characterization report\n")
	p("================================\n\n")
	if v := r.Validation; v != nil {
		p("Delay-injection validation (Figs. 2-3)\n")
		p("  latency(PERIOD) linear fit: %.4g us/period + %.4g us, r^2 = %.4f\n", v.Slope, v.Intercept, v.R2)
		if lo, hi, ok := boundsY(v.BDP); ok {
			p("  BDP across sweep: %.3g - %.3g kB (paper: ~16.5 kB, constant)\n", lo, hi)
		}
		p("\n")
		for _, fig := range []*metrics.Figure{v.Latency, v.Bandwidth, v.BDP} {
			if err := fig.RenderASCII(w, 60, 12); err != nil {
				return err
			}
			p("\n")
		}
	}
	if res := r.Resilience; res != nil {
		p("Resilience assessment (Fig. 4)\n")
		for _, pt := range res.Points {
			status := "functional"
			detail := fmt.Sprintf("latency %.4g us", pt.LatencyUs)
			if pt.Crashed {
				status = "FAILED"
				detail = pt.AttachReason
			}
			p("  PERIOD=%-6d %-10s %s\n", pt.Period, status, detail)
		}
		p("\n")
		if err := res.Figure.RenderASCII(w, 60, 10); err != nil {
			return err
		}
		p("\n")
	}
	if r.Table1 != nil {
		if err := r.Table1.Table.Render(w); err != nil {
			return err
		}
		p("  (paper: Redis 1.01x/1.73x, BFS 6x/2209x, SSSP 5.3x/1800x)\n\n")
	}
	if r.Fig5 != nil {
		if err := r.Fig5.Figure.RenderASCII(w, 60, 12); err != nil {
			return err
		}
		p("\n")
	}
	for _, c := range []*Contention{r.MCBN, r.MCLN, r.Pool} {
		if c == nil {
			continue
		}
		if err := c.Figure.RenderASCII(w, 60, 10); err != nil {
			return err
		}
		for i, n := range c.Counts {
			p("  n=%d: %.3f GB/s\n", n, c.BorrowerBps[i]/1e9)
		}
		p("\n")
	}
	if pc := r.PoolCont; pc != nil {
		if err := pc.Figure.RenderASCII(w, 60, 10); err != nil {
			return err
		}
		for pi, name := range pc.Policies {
			p("  %-12s:", name)
			for ci, n := range pc.Counts {
				p(" n=%d %.3f GB/s", n, pc.Bps[pi][ci]/1e9)
			}
			p("\n")
		}
		p("\n")
	}
	if r.Dists != nil {
		if err := r.Dists.Table.Render(w); err != nil {
			return err
		}
		p("\n")
	}
	if r.QoS != nil {
		if err := r.QoS.Table.Render(w); err != nil {
			return err
		}
		p("  (sensitive flow protected %.1fx at %.0f%% bulk cost)\n\n",
			r.QoS.ChaseFIFOUs/r.QoS.ChasePrioUs,
			100*(1-r.QoS.BulkPrioBps/r.QoS.BulkFIFOBps))
	}
	if r.Migration != nil {
		if err := r.Migration.Table.Render(w); err != nil {
			return err
		}
		p("  (%d pages promoted, %d lines copied, %.1fx per-hop improvement)\n\n",
			r.Migration.Promotions, r.Migration.CopiedLines,
			r.Migration.NoMigrationUs/r.Migration.WithMigrationUs)
	}
	if r.Xconnect != nil {
		if err := r.Xconnect.Table.Render(w); err != nil {
			return err
		}
		p("\n")
	}
	if r.Prefetch != nil {
		if err := r.Prefetch.Table.Render(w); err != nil {
			return err
		}
		p("  (prefetching hides the base RTT %.1fx but cannot beat the injector's release rate)\n\n",
			r.Prefetch.OffVanillaUs/r.Prefetch.OnVanillaUs)
	}
	if rec := r.Recovery; rec != nil {
		p("Link-fault resilience & recovery (fig_resilience_recovery)\n")
		p("  baseline: %.3f GB/s fault-free\n", rec.Baseline.BandwidthGBs)
		for _, pt := range rec.Points {
			p("  %-5s level=%-8g %.3f GB/s  retrans=%-5d dead=%-3d downs=%-2d mean recovery %.4g us\n",
				pt.Scenario, pt.Level, pt.BandwidthGBs, pt.Retransmits, pt.Dead, pt.Downs, pt.MeanRecoveryUs)
		}
		p("\n")
		if err := rec.Figure.RenderASCII(w, 60, 10); err != nil {
			return err
		}
		p("\n")
	}
	if b := r.Breakdown; b != nil {
		if err := b.Table.Render(w); err != nil {
			return err
		}
		for _, pt := range b.Points {
			p("  PERIOD=%-6d spans=%-8d stages sum to %.4f us (STREAM fill %.4f us)\n",
				pt.Period, pt.Spans, pt.EndToEndUs, pt.FillLatUs)
		}
		p("\n")
	}
	if c := r.Chaos; c != nil {
		if err := c.Table.Render(w); err != nil {
			return err
		}
		status := "all invariants held"
		if !c.OK() {
			status = "INVARIANT VIOLATIONS — see table"
		}
		p("  (%s)\n\n", status)
		if err := c.Counters.Table("chaos fault/recovery counters").Render(w); err != nil {
			return err
		}
		p("\n")
	}
	if s := r.Schedule; s != nil {
		if err := s.Events.Render(w); err != nil {
			return err
		}
		if err := s.Table.Render(w); err != nil {
			return err
		}
		status := "all invariants held"
		if !s.OK() {
			status = "INVARIANT VIOLATIONS — see table"
		}
		p("  (%s; breaker ended %s after %d transitions)\n\n",
			status, s.Result.FinalBreaker, len(s.Result.Transitions))
	}
	if br := r.BreakerRec; br != nil {
		p("Breaker recovery vs lender outage (fig_breaker_recovery)\n")
		for _, pt := range br.Points {
			p("  outage=%-6gus wipe=%-5t trip %.4g us, re-promotion %.4g us (%d expired, %d localized)\n",
				pt.OutageUs, pt.Wipe, pt.TripUs, pt.RecoveryUs, pt.Expired, pt.GateLocalized)
		}
		p("\n")
		if err := br.Figure.RenderASCII(w, 60, 10); err != nil {
			return err
		}
		p("\n")
	}
	return nil
}

func boundsY(f *metrics.Figure) (lo, hi float64, ok bool) {
	if len(f.Series) == 0 {
		return 0, 0, false
	}
	return f.Series[0].MinMaxY()
}
