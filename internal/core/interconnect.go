package core

import (
	"thymesim/internal/cluster"
	"thymesim/internal/metrics"
	"thymesim/internal/ocapi"
	"thymesim/internal/sim"
	"thymesim/internal/workloads/latmem"
)

// InterconnectResult is the §V comparison the paper defers to future
// work: the same characterization under ThymesisFlow's
// OpenCAPI-over-Ethernet framing vs a CXL-like native fabric (smaller
// per-packet framing, shallower port/serializer pipelines).
type InterconnectResult struct {
	// Per profile: uncontended dependent-load latency and saturated
	// STREAM bandwidth.
	Rows  []InterconnectRow
	Table *metrics.Table
}

// InterconnectRow is one profile's measurements.
type InterconnectRow struct {
	Name         string
	ChaseUs      float64
	StreamGBs    float64
	DelayedChase float64 // per-hop at PERIOD=250 — does framing change delay sensitivity?
}

// RunInterconnectComparison measures both profiles.
func (o Options) RunInterconnectComparison() *InterconnectResult {
	profiles := []struct {
		name   string
		mutate func(*cluster.Config)
	}{
		{"opencapi-ethernet", func(c *cluster.Config) {
			c.Profile = ocapi.DefaultProfile
		}},
		{"cxl-native", func(c *cluster.Config) {
			c.Profile = ocapi.CXLProfile
			// CXL ports avoid the FPGA serializer depth and the OpenCAPI
			// transport layer's latency.
			c.NICPipeline = 80 * sim.Nanosecond
			c.PortLatency = 80 * sim.Nanosecond
		}},
	}
	res := &InterconnectResult{
		Table: &metrics.Table{
			Title:   "Interconnect comparison (§V): OpenCAPI-over-Ethernet vs CXL-like",
			Columns: []string{"profile", "dependent load (us)", "STREAM (GB/s)", "dependent load @P=250 (us)"},
		},
	}
	for _, prof := range profiles {
		row := InterconnectRow{Name: prof.name}
		row.ChaseUs = o.profileChase(1, prof.mutate)
		row.DelayedChase = o.profileChase(250, prof.mutate)
		cfg := o.TestbedConfig(1)
		prof.mutate(&cfg)
		tb := cluster.NewTestbed(cfg)
		m := o.runStream(tb, tb.NewRemoteHierarchy(), tb.RemoteAddr(0))
		row.StreamGBs = m.BandwidthBps / 1e9
		res.Rows = append(res.Rows, row)
		res.Table.AddRow(row.Name,
			metricsFormat(row.ChaseUs),
			metricsFormat(row.StreamGBs),
			metricsFormat(row.DelayedChase))
	}
	return res
}

func (o Options) profileChase(period int64, mutate func(*cluster.Config)) float64 {
	cfg := o.TestbedConfig(period)
	mutate(&cfg)
	tb := cluster.NewTestbed(cfg)
	h := tb.NewRemoteHierarchy()
	lCfg := latmem.DefaultConfig(tb.RemoteAddr(0))
	lCfg.BufferBytes = 1 << 18
	lCfg.Hops = 400
	r := latmem.New(tb.K, h, lCfg)
	var out latmem.Result
	tb.K.At(0, func() { r.Run(func(res latmem.Result) { out = res }) })
	tb.K.Run()
	return out.PerHop.Micros()
}
