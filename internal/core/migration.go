package core

import (
	"thymesim/internal/cache"
	"thymesim/internal/cluster"
	"thymesim/internal/memport"
	"thymesim/internal/metrics"
	"thymesim/internal/migrate"
	"thymesim/internal/workloads/latmem"
)

// MigrationResult quantifies the page-migration mechanism §IV-D proposes:
// a pointer chase repeatedly walking a hot remote buffer under injected
// delay, with and without OS page migration to local memory.
type MigrationResult struct {
	// NoMigrationUs is the mean per-hop latency with all accesses remote.
	NoMigrationUs float64
	// WithMigrationUs is the mean per-hop latency when hot pages are
	// promoted to local frames during the run.
	WithMigrationUs float64
	// Promotions and CopiedLines report the migration work performed.
	Promotions  uint64
	CopiedLines uint64
	Table       *metrics.Table
}

// RunMigration measures the chase at the given injector PERIOD. The
// buffer is sized to a handful of pages so promotion happens within the
// first laps and the remaining laps run local.
func (o Options) RunMigration(period int64) *MigrationResult {
	const bufBytes = 256 << 10 // 4 pages of 64 KiB
	laps := 6
	hops := laps * bufBytes / 128

	run := func(withMigration bool) (perHopUs float64, st migrate.Stats) {
		tb := o.Testbed(period)
		var backend memport.LineBackend = tb.RemoteBackend()
		var mig *migrate.Migrator
		if withMigration {
			mig = migrate.New(tb.K, backend, memport.NewDRAMBackend(tb.BorrowerMem), migrate.DefaultConfig(0x40_0000_0000))
			if o.Metrics != nil {
				mig.SetMetrics(o.Metrics.MigrateMetricsFor(cluster.BorrowerID))
			}
			backend = mig
		}
		h := memport.NewHierarchy(tb.K, cache.New(tb.Config().LLC), backend, tb.Config().MSHRs)
		cfg := latmem.DefaultConfig(tb.RemoteAddr(0))
		cfg.BufferBytes = bufBytes
		cfg.Hops = hops
		r := latmem.New(tb.K, h, cfg)
		var out latmem.Result
		tb.K.At(0, func() { r.Run(func(res latmem.Result) { out = res }) })
		tb.K.Run()
		if mig != nil {
			st = mig.Stats()
		}
		return out.PerHop.Micros(), st
	}

	res := &MigrationResult{}
	res.NoMigrationUs, _ = run(false)
	var st migrate.Stats
	res.WithMigrationUs, st = run(true)
	res.Promotions = st.Promotions
	res.CopiedLines = st.CopiedLines

	res.Table = &metrics.Table{
		Title:   "OS page migration under injected delay",
		Columns: []string{"configuration", "chase per-hop (us)"},
	}
	res.Table.AddRow("remote only", metricsFormat(res.NoMigrationUs))
	res.Table.AddRow("with page migration", metricsFormat(res.WithMigrationUs))
	return res
}
