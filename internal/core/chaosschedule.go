// Scheduled chaos campaigns: lender fault domains (crash/restore,
// brownout), burst-error windows, deadline-bounded transactions, and the
// circuit breaker, driven by a declarative inject.Schedule and audited
// end to end. Where the randomized chaos harness (chaos.go) asks "does
// the recovery stack survive an adversarial mix", the scheduled campaign
// asks the robustness questions the paper's prototype cannot: what is the
// blast radius of a lender crash, how fast does the breaker fail over and
// re-promote, and does every transaction still complete exactly once.
package core

import (
	"fmt"
	"strings"

	"thymesim/internal/axis"
	"thymesim/internal/cache"
	"thymesim/internal/cluster"
	"thymesim/internal/control"
	"thymesim/internal/inject"
	"thymesim/internal/memport"
	"thymesim/internal/metrics"
	"thymesim/internal/migrate"
	"thymesim/internal/sim"
	"thymesim/internal/sweep"
	"thymesim/internal/telemetry"
	"thymesim/internal/tfnic"
	"thymesim/internal/workloads/latmem"
	"thymesim/internal/workloads/stream"
)

// ChaosScheduleConfig parameterizes one scheduled chaos campaign.
type ChaosScheduleConfig struct {
	// Seed drives the burst-error chain, ARQ jitter, and supervisor jitter.
	Seed uint64
	// Period is the inner delay-injection PERIOD (1 = vanilla timing).
	Period int64
	// Schedule is the declarative fault-event list replayed against the
	// testbed.
	Schedule inject.Schedule
	// Burst parameterizes the Gilbert–Elliott burst-error chain; it is
	// stacked onto the egress gate whenever the schedule opens burst
	// windows (and left out otherwise, keeping the datapath untouched).
	Burst inject.GilbertElliottConfig
	// ARQ parameterizes the retransmission layer (always on: a crashed
	// lender black-holes requests, and without ARQ those are hangs).
	ARQ tfnic.ARQConfig
	// Supervisor parameterizes heartbeat supervision and re-attach.
	Supervisor control.SupervisorConfig
	// Breaker parameterizes the circuit breaker fed by fill outcomes.
	Breaker control.BreakerConfig
	// Deadline bounds every borrower-port transaction end to end; it must
	// be positive — an unbounded transaction under a crashed lender is a
	// hang, and the breaker would starve for outcomes.
	Deadline sim.Duration
	// SampleEvery is the telemetry sampling interval.
	SampleEvery sim.Duration
	// MaxPoisonedFrac bounds the fraction of transactions that may
	// complete poisoned before the audit flags the campaign (the breaker's
	// fast-fail should keep the damage well below it).
	MaxPoisonedFrac float64
}

// DefaultChaosScheduleConfig is a full campaign: a 400us lender crash with
// window wipe, then a burst-error window, then a brownout ramp.
func DefaultChaosScheduleConfig() ChaosScheduleConfig {
	arq := tfnic.DefaultARQConfig()
	arq.Timeout = 30 * sim.Microsecond
	arq.MaxRetries = 6
	sup := control.DefaultSupervisorConfig()
	// Retry re-attach for as long as the outage lasts: the campaign
	// restores the lender, so a dead declaration would be premature. The
	// attach watchdog must be much shorter than the outage — an attach
	// started mid-crash stalls on a black-holed probe until the watchdog
	// fires, and only the next attempt can re-arm the wiped window.
	sup.MaxReattach = 0
	sup.Attach.Timeout = 200 * sim.Microsecond
	sup.ReattachPause = 50 * sim.Microsecond
	sup.ReattachCap = 200 * sim.Microsecond
	return ChaosScheduleConfig{
		Seed:   1,
		Period: 1,
		Schedule: inject.Schedule{
			{At: sim.Time(200 * sim.Microsecond), Op: inject.OpLenderCrash},
			{At: sim.Time(600 * sim.Microsecond), Op: inject.OpLenderRestore, Wipe: true},
			{At: sim.Time(900 * sim.Microsecond), Op: inject.OpBurstStart},
			{At: sim.Time(1000 * sim.Microsecond), Op: inject.OpBurstEnd},
			{At: sim.Time(1100 * sim.Microsecond), Op: inject.OpBrownout, Factor: 4},
			{At: sim.Time(1300 * sim.Microsecond), Op: inject.OpBrownout, Factor: 1},
		},
		Burst:           inject.DefaultGilbertElliottConfig(),
		ARQ:             arq,
		Supervisor:      sup,
		Breaker:         control.DefaultBreakerConfig(),
		Deadline:        25 * sim.Microsecond,
		SampleEvery:     20 * sim.Microsecond,
		MaxPoisonedFrac: 0.5,
	}
}

// Validate checks the configuration.
func (c ChaosScheduleConfig) Validate() error {
	if c.Period < 1 {
		return fmt.Errorf("core: schedule PERIOD %d", c.Period)
	}
	if len(c.Schedule) == 0 {
		return fmt.Errorf("core: empty fault schedule")
	}
	if err := c.Schedule.Validate(); err != nil {
		return err
	}
	if c.Schedule.NeedsBurstGate() {
		if err := c.Burst.Validate(); err != nil {
			return err
		}
	}
	if err := c.ARQ.Validate(); err != nil {
		return err
	}
	if err := c.Supervisor.Validate(); err != nil {
		return err
	}
	if err := c.Breaker.Validate(); err != nil {
		return err
	}
	if c.Deadline <= 0 {
		return fmt.Errorf("core: schedule campaign needs a positive Deadline, got %v", c.Deadline)
	}
	if c.SampleEvery <= 0 {
		return fmt.Errorf("core: schedule sample interval %v", c.SampleEvery)
	}
	if c.MaxPoisonedFrac <= 0 || c.MaxPoisonedFrac > 1 {
		return fmt.Errorf("core: MaxPoisonedFrac %g outside (0,1]", c.MaxPoisonedFrac)
	}
	return nil
}

// scheduleTarget adapts the testbed plus the campaign's burst gate to
// inject.FaultTarget (the gate lives outside the testbed, so neither
// satisfies the interface alone).
type scheduleTarget struct {
	tb *cluster.Testbed
	ge *inject.GilbertElliottGate
}

func (t scheduleTarget) CrashLender()                     { t.tb.CrashLender() }
func (t scheduleTarget) RestoreLender(wipe bool)          { t.tb.RestoreLender(wipe) }
func (t scheduleTarget) SetLenderSlowdown(factor float64) { t.tb.SetLenderSlowdown(factor) }
func (t scheduleTarget) ForceBurstErrors(active bool) {
	if t.ge == nil {
		panic("core: schedule forces burst errors without a burst gate")
	}
	t.ge.Force(active)
}

// ChaosScheduleResult is one campaign's outcome.
type ChaosScheduleResult struct {
	Completed bool
	ElapsedUs float64
	// Transaction accounting.
	Fills, Poisoned, Expired, ExpiredUnsent, LateResponses uint64
	PoisonedFrac                                           float64
	// Lender fault-domain activity.
	CrashDrops, ServesLost, WipeNacks uint64
	// Burst-error activity (zero without burst windows).
	Bursts, BadBeats, Corrupted uint64
	// Recovery-stack activity.
	Retransmits, Dead, Downs, Recoveries uint64
	// Breaker activity.
	Trips, Reopens, Closes, ShortCircuited uint64
	GateLocalized                          uint64
	FinalBreaker                           string
	Transitions                            []control.BreakerTransition
	// RecoveryUs is the lender-restore-to-breaker-reclose latency: how
	// long after service returned the remote path was re-promoted.
	RecoveryUs float64
	// TripUs is the crash-to-trip latency: how long poisoned fills
	// accumulated before the breaker started fast-failing.
	TripUs float64
	// Samples is how many telemetry rounds observed the counters.
	Samples uint64
	// Violations lists failed invariants (empty = campaign passed).
	Violations []string
}

// chaosScheduleCounterNames fixes the telemetry counter order.
var chaosScheduleCounterNames = []string{
	"backend_poisoned", "backend_expired", "backend_late",
	"lender_crash_drops", "lender_serves_lost", "lender_wipe_nacks",
	"ge_bursts", "ge_corrupted",
	"arq_retransmits", "arq_dead",
	"breaker_short_circuit", "gate_localized",
	"sup_downs", "sup_recoveries",
}

// runChaosSchedule executes one campaign: a latency-sensitive pointer
// chase behind the migrator+breaker (the protected consumer) and a STREAM
// kernel on the raw remote path (the traffic that keeps feeding the
// breaker outcomes), with the fault schedule replayed against the lender.
func (o Options) runChaosSchedule(cfg ChaosScheduleConfig) (*ChaosScheduleResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var gate axis.Gate = inject.NewPeriodGate(cfg.Period, inject.DefaultFPGACycle)
	var ge *inject.GilbertElliottGate
	if cfg.Schedule.NeedsBurstGate() {
		rng := sim.NewRand(cfg.Seed ^ 0x6EB5)
		ge = inject.NewGilbertElliottGate(gate, cfg.Burst, rng.Split())
		gate = ge
	}
	ccfg := o.TestbedConfig(0)
	ccfg.Period = 0
	ccfg.Gate = gate
	arq := cfg.ARQ
	ccfg.ARQ = &arq
	ccfg.FillDeadline = cfg.Deadline
	tb := cluster.NewTestbed(ccfg)

	sup, err := control.NewSupervisorChecked(tb, cfg.Supervisor)
	if err != nil {
		return nil, err
	}
	brk, err := control.NewBreaker(tb.K, cfg.Breaker)
	if err != nil {
		return nil, err
	}
	tb.SetFillOutcomeObserver(brk.Record)

	mig := migrate.New(tb.K, tb.RemoteBackend(), memport.NewDRAMBackend(tb.BorrowerMem),
		migrate.DefaultConfig(0x40_0000_0000))
	mig.SetRemoteGate(brk)
	if o.Metrics != nil {
		brk.SetMetrics(o.Metrics.BreakerMetricsFor(cluster.BorrowerID))
		mig.SetMetrics(o.Metrics.MigrateMetricsFor(cluster.BorrowerID))
	}
	sup.OnStateChange = func(_, to control.LinkState) {
		if to == control.LinkDead {
			mig.Degrade()
		}
	}

	if err := inject.ScheduleFaults(tb.K, scheduleTarget{tb: tb, ge: ge}, cfg.Schedule); err != nil {
		return nil, err
	}

	counters := metrics.NewCounterSet()
	counters.Declare(chaosScheduleCounterNames...)
	refresh := func() {
		b := tb.RemoteBackend()
		ls := tb.LenderNIC.Stats()
		st := tb.ARQ.Stats()
		bs := brk.Stats()
		ss := sup.Stats()
		counters.Set("backend_poisoned", b.Poisoned())
		counters.Set("backend_expired", b.Expired())
		counters.Set("backend_late", b.LateResponses())
		counters.Set("lender_crash_drops", ls.CrashDrops)
		counters.Set("lender_serves_lost", ls.ServesLost)
		counters.Set("lender_wipe_nacks", ls.WipeNacks)
		if ge != nil {
			counters.Set("ge_bursts", ge.Bursts())
			counters.Set("ge_corrupted", ge.Corrupted())
		}
		counters.Set("arq_retransmits", st.Retransmits)
		counters.Set("arq_dead", st.Dead)
		counters.Set("breaker_short_circuit", bs.ShortCircuited)
		counters.Set("gate_localized", mig.Stats().GateLocalized)
		counters.Set("sup_downs", ss.Downs)
		counters.Set("sup_recoveries", ss.Recoveries)
	}
	sampler := telemetry.NewSampler(tb.K, cfg.SampleEvery)
	telemetry.RegisterCounterSet(sampler, "sched_", counters)

	// The campaign finishes when both the protected chase and the raw
	// STREAM traffic complete.
	res := &ChaosScheduleResult{}
	remaining := 2
	var doneAt sim.Time
	finish := func() {
		remaining--
		if remaining > 0 {
			return
		}
		res.Completed = true
		doneAt = tb.K.Now()
		sup.Stop()
		sampler.Stop()
	}

	tb.K.At(0, func() {
		tb.K.Ticker(cfg.SampleEvery, func() bool {
			refresh()
			return remaining > 0
		})
		sampler.Start()
		sup.Start()

		// Protected consumer: pointer chase through migrator + breaker.
		h := memport.NewHierarchy(tb.K, cache.New(ccfg.LLC), mig, ccfg.MSHRs)
		lcfg := latmem.DefaultConfig(tb.RemoteAddr(0))
		lcfg.BufferBytes = 256 << 10
		lcfg.Hops = 8 * lcfg.BufferBytes / 128
		latmem.New(tb.K, h, lcfg).Run(func(latmem.Result) { finish() })

		// Raw remote traffic: STREAM against a disjoint window region,
		// sized to span the whole schedule so the breaker keeps seeing
		// outcomes through every fault phase.
		scfg := stream.DefaultConfig(tb.RemoteAddr(1 << 30))
		scfg.Elements = o.StreamElements
		scfg.Iterations = 1 + (8<<20)/(80*o.StreamElements)
		stream.New(tb.K, tb.NewRemoteHierarchy(), scfg).Run(func([]stream.Result) { finish() })
	})
	tb.K.Run()
	refresh()

	b := tb.RemoteBackend()
	st := tb.ARQ.Stats()
	ls := tb.LenderNIC.Stats()
	bs := brk.Stats()
	ss := sup.Stats()
	res.ElapsedUs = doneAt.Micros()
	res.Fills = b.Reads() + b.Writes()
	res.Poisoned = b.Poisoned()
	res.Expired = b.Expired()
	res.ExpiredUnsent = b.ExpiredUnsent()
	res.LateResponses = b.LateResponses()
	if res.Fills > 0 {
		res.PoisonedFrac = float64(res.Poisoned) / float64(res.Fills)
	}
	res.CrashDrops, res.ServesLost, res.WipeNacks = ls.CrashDrops, ls.ServesLost, ls.WipeNacks
	if ge != nil {
		res.Bursts, res.BadBeats, res.Corrupted = ge.Bursts(), ge.BadBeats(), ge.Corrupted()
	}
	res.Retransmits, res.Dead = st.Retransmits, st.Dead
	res.Downs, res.Recoveries = ss.Downs, ss.Recoveries
	res.Trips, res.Reopens, res.Closes = bs.Trips, bs.Reopens, bs.Closes
	res.ShortCircuited = bs.ShortCircuited
	res.GateLocalized = mig.Stats().GateLocalized
	res.FinalBreaker = brk.State().String()
	res.Transitions = brk.Transitions()
	res.Samples = sampler.Samples()

	o.auditChaosSchedule(cfg, tb, brk, res)
	if len(res.Violations) > 0 {
		o.Metrics.DumpOnAuditFailure("chaos-schedule", res.Violations)
	}
	return res, nil
}

// auditChaosSchedule checks the campaign invariants.
func (o Options) auditChaosSchedule(cfg ChaosScheduleConfig, tb *cluster.Testbed, brk *control.Breaker, res *ChaosScheduleResult) {
	viol := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}
	if !res.Completed {
		viol("campaign did not complete")
	}
	b := tb.RemoteBackend()
	st := tb.ARQ.Stats()

	// No leaked transactions anywhere in the stack.
	if n := tb.ARQ.Outstanding(); n != 0 {
		viol("%d ARQ transactions leaked", n)
	}
	if n := tb.ARQ.QueuedRetries(); n != 0 {
		viol("%d retransmissions stuck in the retry queue", n)
	}
	if n := b.Outstanding(); n != 0 {
		viol("%d port commands leaked", n)
	}
	if n := b.QueuedSends(); n != 0 {
		viol("%d port sends never entered the NIC", n)
	}
	// Exactly-once accounting under deadlines: every completion is either
	// an ARQ-tracked wire transaction or a withdrawal that never reached
	// the NIC — and nothing completed twice.
	if st.Tracked != st.Completed+st.Dead {
		viol("ARQ accounting: tracked %d != completed %d + dead %d", st.Tracked, st.Completed, st.Dead)
	}
	if res.Fills != st.Tracked+res.ExpiredUnsent {
		viol("line accounting: %d completions != %d tracked + %d expired-unsent",
			res.Fills, st.Tracked, res.ExpiredUnsent)
	}
	// Bounded blast radius.
	if res.PoisonedFrac > cfg.MaxPoisonedFrac {
		viol("poisoned fraction %.3f exceeds bound %.3f", res.PoisonedFrac, cfg.MaxPoisonedFrac)
	}
	// Breaker transition legality: the log must chain from Closed through
	// legal edges only.
	prev := control.BreakerClosed
	for i, tr := range res.Transitions {
		if tr.From != prev {
			viol("breaker transition %d starts at %v, expected %v", i, tr.From, prev)
		}
		if !control.ValidBreakerTransition(tr.From, tr.To) {
			viol("breaker transition %d illegal: %v -> %v", i, tr.From, tr.To)
		}
		prev = tr.To
	}
	if brk.State() != prev {
		viol("breaker state %v disagrees with transition log end %v", brk.State(), prev)
	}

	// Recovery measurement: a campaign with a crash must trip the breaker
	// and re-promote after the restore.
	var crashAt, restoreAt sim.Time
	haveCrash := false
	for _, ev := range cfg.Schedule {
		switch ev.Op {
		case inject.OpLenderCrash:
			if !haveCrash {
				crashAt, haveCrash = ev.At, true
			}
		case inject.OpLenderRestore:
			if haveCrash && restoreAt == 0 {
				restoreAt = ev.At
			}
		}
	}
	if haveCrash {
		tripAt, closedAt := sim.Time(0), sim.Time(0)
		for _, tr := range res.Transitions {
			if tripAt == 0 && tr.To == control.BreakerOpen && tr.At >= crashAt {
				tripAt = tr.At
			}
			if closedAt == 0 && tr.To == control.BreakerClosed && tr.At >= restoreAt {
				closedAt = tr.At
			}
		}
		if tripAt == 0 {
			viol("lender crash at %v never tripped the breaker", crashAt)
		} else {
			res.TripUs = tripAt.Sub(crashAt).Micros()
		}
		if closedAt == 0 {
			viol("breaker never re-closed after the restore at %v", restoreAt)
		} else {
			res.RecoveryUs = closedAt.Sub(restoreAt).Micros()
		}
		if res.Completed && res.FinalBreaker != control.BreakerClosed.String() {
			viol("campaign ended with breaker %s, expected closed", res.FinalBreaker)
		}
	}
}

// ChaosScheduleReport is the campaign result plus its renderings.
type ChaosScheduleReport struct {
	Config ChaosScheduleConfig
	Result *ChaosScheduleResult
	// Events tabulates the schedule itself (chaos_schedule_table.csv).
	Events *metrics.Table
	Table  *metrics.Table
}

// OK reports whether the campaign completed with all invariants held.
func (r *ChaosScheduleReport) OK() bool {
	return r.Result != nil && r.Result.Completed && len(r.Result.Violations) == 0
}

// RunChaosSchedule executes the scheduled chaos campaign and audits it.
func (o Options) RunChaosSchedule(cfg ChaosScheduleConfig) (*ChaosScheduleReport, error) {
	res, err := o.runChaosSchedule(cfg)
	if err != nil {
		return nil, err
	}
	rep := &ChaosScheduleReport{Config: cfg, Result: res}
	rep.Events = &metrics.Table{
		Title:   "Chaos schedule: injected fault events",
		Columns: []string{"at_us", "op", "factor", "wipe"},
	}
	for _, ev := range cfg.Schedule {
		rep.Events.AddRow(
			fmt.Sprintf("%g", ev.At.Micros()),
			ev.Op.String(),
			fmt.Sprintf("%g", ev.Factor),
			fmt.Sprintf("%t", ev.Wipe))
	}
	rep.Table = &metrics.Table{
		Title: "Scheduled chaos campaign: lender faults vs deadline+breaker",
		Columns: []string{"completed", "fills", "poisoned", "expired", "trips",
			"reopens", "short_circuited", "localized", "trip_us", "recovery_us", "violations"},
	}
	rep.Table.AddRow(
		fmt.Sprintf("%t", res.Completed),
		fmt.Sprintf("%d", res.Fills),
		fmt.Sprintf("%d", res.Poisoned),
		fmt.Sprintf("%d", res.Expired),
		fmt.Sprintf("%d", res.Trips),
		fmt.Sprintf("%d", res.Reopens),
		fmt.Sprintf("%d", res.ShortCircuited),
		fmt.Sprintf("%d", res.GateLocalized),
		fmt.Sprintf("%.1f", res.TripUs),
		fmt.Sprintf("%.1f", res.RecoveryUs),
		strings.Join(res.Violations, "; "))
	return rep, nil
}

// BreakerRecoveryPoint is one outage duration of the breaker-recovery
// sweep.
type BreakerRecoveryPoint struct {
	// OutageUs is the lender crash duration.
	OutageUs float64
	// Wipe marks outages that also lose the lender's window state.
	Wipe      bool
	Completed bool
	// TripUs and RecoveryUs are crash-to-trip and restore-to-reclose.
	TripUs, RecoveryUs float64
	// DwellUs is the breaker's final open dwell (hysteresis footprint).
	Expired, Poisoned, ShortCircuited, GateLocalized uint64
	Trips, Reopens                                   uint64
	Violations                                       int
}

// BreakerRecovery holds the fig_breaker_recovery sweep: breaker failover
// and re-promotion latency vs lender outage duration.
type BreakerRecovery struct {
	Points []BreakerRecoveryPoint
	Figure *metrics.Figure
}

// RunBreakerRecovery sweeps lender outage durations and measures how fast
// the breaker trips (fails over to the local path) and how fast it
// re-promotes the remote path after the restore.
func (o Options) RunBreakerRecovery() (*BreakerRecovery, error) {
	outages := []sim.Duration{
		100 * sim.Microsecond,
		200 * sim.Microsecond,
		400 * sim.Microsecond,
		800 * sim.Microsecond,
	}
	base := DefaultChaosScheduleConfig()
	if err := base.Validate(); err != nil {
		return nil, err
	}
	type outcome struct {
		pt  BreakerRecoveryPoint
		err error
	}
	outs := sweep.Map(o.Workers, len(outages), func(i int) outcome {
		const crashAt = 200 * sim.Microsecond
		cfg := base
		cfg.Seed = o.Seed
		wipe := i%2 == 1 // alternate clean restores with window wipes
		cfg.Schedule = inject.Schedule{
			{At: sim.Time(crashAt), Op: inject.OpLenderCrash},
			{At: sim.Time(crashAt + outages[i]), Op: inject.OpLenderRestore, Wipe: wipe},
		}
		res, err := o.runChaosSchedule(cfg)
		if err != nil {
			return outcome{err: err}
		}
		return outcome{pt: BreakerRecoveryPoint{
			OutageUs:       outages[i].Micros(),
			Wipe:           wipe,
			Completed:      res.Completed,
			TripUs:         res.TripUs,
			RecoveryUs:     res.RecoveryUs,
			Expired:        res.Expired,
			Poisoned:       res.Poisoned,
			ShortCircuited: res.ShortCircuited,
			GateLocalized:  res.GateLocalized,
			Trips:          res.Trips,
			Reopens:        res.Reopens,
			Violations:     len(res.Violations),
		}}
	})
	br := &BreakerRecovery{
		Figure: &metrics.Figure{
			Title:  "Breaker recovery: failover/re-promotion vs lender outage",
			XLabel: "outage (us)",
			YLabel: "latency (us)",
		},
	}
	trip := br.Figure.AddSeries("trip")
	rec := br.Figure.AddSeries("recovery")
	for _, out := range outs {
		if out.err != nil {
			return nil, out.err
		}
		br.Points = append(br.Points, out.pt)
		trip.Add(out.pt.OutageUs, out.pt.TripUs)
		rec.Add(out.pt.OutageUs, out.pt.RecoveryUs)
	}
	return br, nil
}
