// Package migrate implements the OS-level page-migration mechanism the
// paper's §IV-D proposes for latency-sensitive workloads: "applications
// with higher sensitivity to remote memory access latency can benefit
// from additional resource allocation such as ... page migration to local
// memory."
//
// A Migrator interposes on the line-backend interface: it tracks per-page
// remote access counts and, once a page crosses the hotness threshold,
// copies it line by line into a local frame (charging the copy's traffic
// to both memories) and retargets subsequent accesses. Migration is
// asynchronous — accesses issued mid-copy still go remote — and bounded by
// a local-frame budget, like a real kernel's promotion pool.
package migrate

import (
	"fmt"

	"thymesim/internal/memport"
	"thymesim/internal/metricsplane"
	"thymesim/internal/ocapi"
	"thymesim/internal/sim"
)

// Config parameterizes the migrator.
type Config struct {
	// PageBytes is the migration granularity (a power of two multiple of
	// the cache line).
	PageBytes int
	// HotThreshold is the number of remote line accesses after which a
	// page is promoted.
	HotThreshold int
	// MaxPages bounds resident local frames (the promotion budget).
	MaxPages int
	// LocalFrameBase is where promoted frames live in the local physical
	// address space.
	LocalFrameBase uint64
}

// DefaultConfig promotes 64 KiB pages after 32 remote touches.
func DefaultConfig(localFrameBase uint64) Config {
	return Config{
		PageBytes:      64 << 10,
		HotThreshold:   32,
		MaxPages:       1 << 14,
		LocalFrameBase: localFrameBase,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.PageBytes < ocapi.CacheLineSize || c.PageBytes%ocapi.CacheLineSize != 0 {
		return fmt.Errorf("migrate: page size %d", c.PageBytes)
	}
	if c.PageBytes&(c.PageBytes-1) != 0 {
		return fmt.Errorf("migrate: page size %d not a power of two", c.PageBytes)
	}
	if c.HotThreshold < 1 {
		return fmt.Errorf("migrate: threshold %d", c.HotThreshold)
	}
	if c.MaxPages < 1 {
		return fmt.Errorf("migrate: max pages %d", c.MaxPages)
	}
	if c.LocalFrameBase%uint64(c.PageBytes) != 0 {
		return fmt.Errorf("migrate: frame base %#x unaligned", c.LocalFrameBase)
	}
	return nil
}

// Stats counts migrator events.
type Stats struct {
	RemoteAccesses uint64
	LocalAccesses  uint64
	Promotions     uint64
	// CopiedLines counts the migration traffic itself.
	CopiedLines uint64
	// Rejected counts promotions skipped for lack of frame budget.
	Rejected uint64
	// DegradedPages counts pages localized after Degrade: fresh frames
	// handed out without copy traffic (there is no link to copy over).
	DegradedPages uint64
	// GateLocalized counts pages localized because the remote gate refused
	// the access (circuit breaker open): same fresh-frame fallback as
	// Degrade, but the remote path may come back.
	GateLocalized uint64
}

type pageState struct {
	touches   int
	migrating bool
	local     bool
	frame     uint64 // local frame base when resident
}

// Migrator is a LineBackend that starts remote and promotes hot pages to
// the local backend.
type Migrator struct {
	k      *sim.Kernel
	remote memport.LineBackend
	local  memport.LineBackend
	cfg    Config

	pages     map[uint64]*pageState
	nextFrame uint64
	resident  int
	degraded  bool
	// deadRanges holds page-aligned address ranges whose remote backing
	// died (one lender of a pool), while the rest stays healthy.
	deadRanges []addrRange
	gate       Gate
	stats      Stats
	mx         *metricsplane.MigrateMetrics // nil when the metrics plane is disabled
}

// addrRange is a half-open [base, end) address range.
type addrRange struct{ base, end uint64 }

// Gate is consulted before each remote access (the circuit breaker's
// Allow satisfies it). A refusal localizes the page — the access is served
// from a fresh local frame instead of hanging on a sick remote path.
type Gate interface {
	Allow() bool
}

// New builds a migrator in front of the two backends.
func New(k *sim.Kernel, remote, local memport.LineBackend, cfg Config) *Migrator {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Migrator{
		k:      k,
		remote: remote,
		local:  local,
		cfg:    cfg,
		pages:  make(map[uint64]*pageState),
	}
}

// Stats returns the counters so far.
func (m *Migrator) Stats() Stats { return m.stats }

// SetMetrics attaches the metrics plane's migration counters
// (observe-only; nil disables).
func (m *Migrator) SetMetrics(mx *metricsplane.MigrateMetrics) { m.mx = mx }

// Resident returns the number of promoted pages.
func (m *Migrator) Resident() int { return m.resident }

// Degraded reports whether the migrator has abandoned the remote backend.
func (m *Migrator) Degraded() bool { return m.degraded }

// SetRemoteGate installs g in front of the remote path (nil removes it).
// Unlike Degrade, a gate refusal is per access: Half-Open trial
// transactions still reach the remote backend once the gate admits them.
func (m *Migrator) SetRemoteGate(g Gate) { m.gate = g }

// Degrade switches to local-only operation after the link is declared
// dead. Pages already promoted keep their frames; every other page gets a
// fresh zero-filled local frame on its next touch — the data borrowed on
// the lender is lost, which is exactly the blast radius the caller accepts
// by degrading instead of hanging. Frame allocation ignores MaxPages here:
// refusing a frame would turn a dead link back into a hang.
func (m *Migrator) Degrade() { m.degraded = true }

// DegradeRange abandons the remote backing for [base, base+size) only —
// the blast radius of one dead lender in a multi-lender pool, where
// Degrade's all-or-nothing surrender would needlessly localize regions
// served by healthy lenders. The range is widened to page boundaries
// (localization is per page); pages outside every degraded range keep
// their remote path. Semantics within the range match Degrade: promoted
// pages keep their frames, everything else gets a fresh zero-filled frame
// on its next touch, ignoring MaxPages.
func (m *Migrator) DegradeRange(base, size uint64) {
	start := m.pageOf(base)
	end := base + size
	if r := end & uint64(m.cfg.PageBytes-1); r != 0 {
		end += uint64(m.cfg.PageBytes) - r
	}
	m.deadRanges = append(m.deadRanges, addrRange{base: start, end: end})
}

// rangeDegraded reports whether addr falls in a degraded range.
func (m *Migrator) rangeDegraded(addr uint64) bool {
	for _, r := range m.deadRanges {
		if addr >= r.base && addr < r.end {
			return true
		}
	}
	return false
}

// localize gives a page a resident frame without any copy traffic.
func (m *Migrator) localize(st *pageState) {
	st.local = true
	st.migrating = false
	st.frame = m.cfg.LocalFrameBase + m.nextFrame
	m.nextFrame += uint64(m.cfg.PageBytes)
	m.resident++
}

func (m *Migrator) pageOf(addr uint64) uint64 { return addr &^ uint64(m.cfg.PageBytes-1) }

// state returns (allocating) the tracking entry for addr's page.
func (m *Migrator) state(addr uint64) *pageState {
	pg := m.pageOf(addr)
	st, ok := m.pages[pg]
	if !ok {
		st = &pageState{}
		m.pages[pg] = st
	}
	return st
}

// ReadLine implements memport.LineBackend.
func (m *Migrator) ReadLine(addr uint64, done func()) { m.access(addr, false, done) }

// WriteLine implements memport.LineBackend.
func (m *Migrator) WriteLine(addr uint64, done func()) { m.access(addr, true, done) }

func (m *Migrator) access(addr uint64, write bool, done func()) {
	st := m.state(addr)
	if !st.local {
		if m.degraded || m.rangeDegraded(addr) {
			m.localize(st)
			m.stats.DegradedPages++
			m.mx.Degraded(1)
		} else if m.gate != nil && !m.gate.Allow() {
			m.localize(st)
			m.stats.GateLocalized++
			m.mx.GateLocalized()
		}
	}
	if st.local {
		m.stats.LocalAccesses++
		m.mx.Localized()
		local := st.frame + (addr & uint64(m.cfg.PageBytes-1))
		if write {
			m.local.WriteLine(local, done)
		} else {
			m.local.ReadLine(local, done)
		}
		return
	}
	m.stats.RemoteAccesses++
	st.touches++
	if !st.migrating && st.touches >= m.cfg.HotThreshold {
		m.promote(m.pageOf(addr), st)
	}
	if write {
		m.remote.WriteLine(addr, done)
	} else {
		m.remote.ReadLine(addr, done)
	}
}

// promote copies the page to a local frame, then flips residency. The copy
// streams line by line: each remote read completion issues the local write
// and the next read, so the copy consumes bounded resources and its
// traffic contends honestly with demand accesses.
func (m *Migrator) promote(pg uint64, st *pageState) {
	if m.resident >= m.cfg.MaxPages {
		m.stats.Rejected++
		return
	}
	st.migrating = true
	m.resident++
	frame := m.cfg.LocalFrameBase + m.nextFrame
	m.nextFrame += uint64(m.cfg.PageBytes)
	lines := m.cfg.PageBytes / ocapi.CacheLineSize
	var wg sim.WaitGroup
	wg.Add(lines)
	// Up to 4 copy streams in flight, like a kernel migration worker.
	const copyWindow = 4
	next := 0
	var launch func()
	launch = func() {
		if next >= lines {
			return
		}
		off := uint64(next * ocapi.CacheLineSize)
		next++
		m.remote.ReadLine(pg+off, func() {
			m.stats.CopiedLines++
			m.local.WriteLine(frame+off, func() {
				wg.Done()
				launch()
			})
		})
	}
	for i := 0; i < copyWindow && i < lines; i++ {
		launch()
	}
	wg.OnZero(func() {
		if st.local {
			return // localized by Degrade while the copy was in flight
		}
		st.migrating = false
		st.local = true
		st.frame = frame
		m.stats.Promotions++
		m.mx.Promotion()
	})
}
