package migrate

import (
	"testing"

	"thymesim/internal/ocapi"
	"thymesim/internal/sim"
)

// countBackend completes after a fixed latency and records addresses.
type countBackend struct {
	k       *sim.Kernel
	latency sim.Duration
	reads   int
	writes  int
	addrs   []uint64
}

func (f *countBackend) ReadLine(addr uint64, done func()) {
	f.reads++
	f.addrs = append(f.addrs, addr)
	f.k.After(f.latency, func() {
		if done != nil {
			done()
		}
	})
}

func (f *countBackend) WriteLine(addr uint64, done func()) {
	f.writes++
	f.addrs = append(f.addrs, addr)
	f.k.After(f.latency, func() {
		if done != nil {
			done()
		}
	})
}

func smallConfig() Config {
	return Config{
		PageBytes:      1024, // 8 lines
		HotThreshold:   4,
		MaxPages:       2,
		LocalFrameBase: 0x4000_0000,
	}
}

func setup() (*sim.Kernel, *Migrator, *countBackend, *countBackend) {
	k := sim.NewKernel()
	remote := &countBackend{k: k, latency: sim.Duration(sim.Microsecond)}
	local := &countBackend{k: k, latency: 100 * sim.Nanosecond}
	return k, New(k, remote, local, smallConfig()), remote, local
}

func TestColdAccessesGoRemote(t *testing.T) {
	k, m, remote, local := setup()
	done := 0
	k.At(0, func() {
		m.ReadLine(0, func() { done++ })
		m.WriteLine(128, func() { done++ })
	})
	k.Run()
	if done != 2 || remote.reads != 1 || remote.writes != 1 || local.reads+local.writes != 0 {
		t.Fatalf("done=%d remote=%d/%d local=%d/%d", done, remote.reads, remote.writes, local.reads, local.writes)
	}
	if m.Stats().RemoteAccesses != 2 {
		t.Fatalf("stats = %+v", m.Stats())
	}
}

func TestHotPagePromotes(t *testing.T) {
	k, m, remote, local := setup()
	k.At(0, func() {
		var touch func(i int)
		touch = func(i int) {
			if i == 4 {
				return
			}
			m.ReadLine(uint64(i)*128, func() { touch(i + 1) })
		}
		touch(0)
	})
	k.Run()
	if m.Stats().Promotions != 1 || m.Resident() != 1 {
		t.Fatalf("promotions = %+v", m.Stats())
	}
	// Copy traffic: 8 remote reads + 8 local writes beyond the 4 demand
	// reads.
	if m.Stats().CopiedLines != 8 {
		t.Fatalf("copied = %d", m.Stats().CopiedLines)
	}
	if remote.reads != 4+8 {
		t.Fatalf("remote reads = %d", remote.reads)
	}
	if local.writes != 8 {
		t.Fatalf("local writes = %d", local.writes)
	}
	// Post-promotion accesses are local, at the remapped frame.
	before := local.reads
	k.At(k.Now(), func() { m.ReadLine(256, nil) })
	k.Run()
	if local.reads != before+1 {
		t.Fatal("post-promotion access not local")
	}
	last := local.addrs[len(local.addrs)-1]
	if last != smallConfig().LocalFrameBase+256 {
		t.Fatalf("remapped addr = %#x", last)
	}
	if m.Stats().LocalAccesses != 1 {
		t.Fatalf("stats = %+v", m.Stats())
	}
}

func TestMidMigrationAccessesStayRemote(t *testing.T) {
	k, m, remote, _ := setup()
	k.At(0, func() {
		for i := 0; i < 4; i++ {
			m.ReadLine(uint64(i)*128, nil) // trips the threshold, starts copy
		}
	})
	// Immediately access again while the copy (1us per line) is running.
	k.At(sim.Time(100), func() { m.ReadLine(0, nil) })
	k.RunUntil(sim.Time(200))
	if got := remote.reads; got < 5 {
		t.Fatalf("mid-migration access not remote: remote reads = %d", got)
	}
	k.Run()
	if m.Stats().Promotions != 1 {
		t.Fatal("promotion never completed")
	}
}

func TestFrameBudgetRejects(t *testing.T) {
	k, m, _, _ := setup() // MaxPages = 2
	k.At(0, func() {
		for pg := 0; pg < 3; pg++ {
			base := uint64(pg) * 1024
			for i := 0; i < 4; i++ {
				m.ReadLine(base+uint64(i)*128, nil)
			}
		}
	})
	k.Run()
	if m.Resident() != 2 {
		t.Fatalf("resident = %d, want 2 (budget)", m.Resident())
	}
	if m.Stats().Rejected == 0 {
		t.Fatal("no rejection recorded")
	}
}

func TestDistinctFramesPerPage(t *testing.T) {
	k, m, _, local := setup()
	k.At(0, func() {
		for pg := 0; pg < 2; pg++ {
			base := uint64(pg) * 1024
			for i := 0; i < 4; i++ {
				m.ReadLine(base+uint64(i)*128, nil)
			}
		}
	})
	k.Run()
	if m.Stats().Promotions != 2 {
		t.Fatalf("promotions = %d", m.Stats().Promotions)
	}
	// Local writes must cover two disjoint frames.
	frames := map[uint64]bool{}
	for _, a := range local.addrs {
		frames[a&^uint64(1023)] = true
	}
	if len(frames) != 2 {
		t.Fatalf("frames = %v", frames)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{PageBytes: 100, HotThreshold: 1, MaxPages: 1},
		{PageBytes: 3 * ocapi.CacheLineSize, HotThreshold: 1, MaxPages: 1},
		{PageBytes: 1024, HotThreshold: 0, MaxPages: 1},
		{PageBytes: 1024, HotThreshold: 1, MaxPages: 0},
		{PageBytes: 1024, HotThreshold: 1, MaxPages: 1, LocalFrameBase: 100},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := DefaultConfig(0).Validate(); err != nil {
		t.Error(err)
	}
}

func TestDegradeLocalizesNewPages(t *testing.T) {
	k, m, remote, local := setup()
	done := 0
	k.At(0, func() {
		m.Degrade()
		if !m.Degraded() {
			t.Error("Degraded() false after Degrade")
		}
		// Two pages, never seen before: both must be served locally with
		// zero remote traffic and zero copy traffic.
		m.ReadLine(0, func() { done++ })
		m.WriteLine(1024, func() { done++ })
		m.ReadLine(64, func() { done++ }) // same page as the first
	})
	k.Run()
	if done != 3 {
		t.Fatalf("done = %d", done)
	}
	if remote.reads+remote.writes != 0 {
		t.Fatalf("remote traffic after degrade: %d/%d", remote.reads, remote.writes)
	}
	if local.reads != 2 || local.writes != 1 {
		t.Fatalf("local traffic = %d/%d", local.reads, local.writes)
	}
	st := m.Stats()
	if st.DegradedPages != 2 || st.CopiedLines != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if m.Resident() != 2 {
		t.Fatalf("resident = %d", m.Resident())
	}
}

func TestDegradeExceedsFrameBudget(t *testing.T) {
	// MaxPages is 2, but a dead link must never refuse a frame.
	k, m, _, _ := setup()
	done := 0
	k.At(0, func() {
		m.Degrade()
		for i := 0; i < 4; i++ {
			m.ReadLine(uint64(i)*1024, func() { done++ })
		}
	})
	k.Run()
	if done != 4 || m.Resident() != 4 {
		t.Fatalf("done=%d resident=%d", done, m.Resident())
	}
}

func TestDegradePreservesPromotedPages(t *testing.T) {
	k, m, remote, local := setup()
	k.At(0, func() {
		// Heat page 0 past the threshold so it promotes (frame copy).
		var touch func(i int)
		touch = func(i int) {
			if i == 16 {
				m.Degrade()
				// Subsequent accesses stay on the promoted frame.
				m.ReadLine(0, nil)
				return
			}
			m.ReadLine(uint64(i%8)*128, func() { touch(i + 1) })
		}
		touch(0)
	})
	k.Run()
	if m.Stats().Promotions != 1 {
		t.Fatalf("promotions = %d", m.Stats().Promotions)
	}
	if m.Stats().DegradedPages != 0 {
		t.Fatalf("degraded pages = %d for an already-promoted page", m.Stats().DegradedPages)
	}
	if local.reads == 0 {
		t.Fatal("promoted page not read locally")
	}
	_ = remote
}

func TestDegradeMidMigrationDoesNotDoubleAssign(t *testing.T) {
	k, m, remote, _ := setup()
	k.At(0, func() {
		// Cross the threshold to start a copy, then degrade immediately:
		// the in-flight copy completion must not clobber the degraded
		// frame assignment.
		var touch func(i int)
		touch = func(i int) {
			if i == 4 {
				m.Degrade()
				m.ReadLine(0, nil) // localizes while the copy is in flight
				return
			}
			m.ReadLine(uint64(i)*128, func() { touch(i + 1) })
		}
		touch(0)
	})
	k.Run()
	st := m.Stats()
	if st.Promotions != 0 {
		t.Fatalf("promotion completed after degrade localized the page: %+v", st)
	}
	if st.DegradedPages != 1 {
		t.Fatalf("stats = %+v", st)
	}
	_ = remote
}

// TestDegradeRangeLocalizesOnlyThatRange is the regression test for the
// pool-era fault model: when one lender of several dies, only its region
// must localize — accesses to regions on healthy lenders keep going
// remote. The all-or-nothing Degrade used to be the only option.
func TestDegradeRangeLocalizesOnlyThatRange(t *testing.T) {
	k, m, remote, local := setup()
	const pageA = uint64(0x10000) // dies
	const pageB = uint64(0x20000) // stays healthy
	m.DegradeRange(pageA, 1024)
	k.At(0, func() {
		m.ReadLine(pageA, nil)
		m.ReadLine(pageA+ocapi.CacheLineSize, nil)
		m.ReadLine(pageB, nil)
	})
	k.Run()
	if remote.reads != 1 {
		t.Fatalf("remote reads = %d, want 1 (only the healthy page)", remote.reads)
	}
	if remote.addrs[0] != pageB {
		t.Fatalf("remote access at %#x, want %#x", remote.addrs[0], pageB)
	}
	if local.reads != 2 {
		t.Fatalf("local reads = %d, want 2 (the dead page's lines)", local.reads)
	}
	if m.Stats().DegradedPages != 1 {
		t.Fatalf("degraded pages = %d, want 1", m.Stats().DegradedPages)
	}
	if m.Degraded() {
		t.Fatal("range degrade must not flip the global degraded state")
	}
}

// TestDegradeRangeWidensToPages pins the page-boundary widening: a range
// that straddles a page edge localizes both touched pages, including an
// unaligned tail.
func TestDegradeRangeWidensToPages(t *testing.T) {
	k, m, remote, local := setup()
	// 1024-byte pages: the range covers the last line of page 0x10000 and
	// one byte of page 0x10400.
	m.DegradeRange(0x10000+1024-ocapi.CacheLineSize, ocapi.CacheLineSize+1)
	k.At(0, func() {
		m.ReadLine(0x10000, nil) // head of first touched page: localized
		m.ReadLine(0x10400, nil) // second touched page: localized
		m.ReadLine(0x10800, nil) // past the widened range: remote
	})
	k.Run()
	if local.reads != 2 || remote.reads != 1 {
		t.Fatalf("local=%d remote=%d, want 2/1", local.reads, remote.reads)
	}
}
