package migrate

import "testing"

// boolGate is a settable remote-admission gate.
type boolGate struct {
	allow   bool
	queried int
}

func (g *boolGate) Allow() bool { g.queried++; return g.allow }

func TestGateDeniedLocalizesNewPages(t *testing.T) {
	k, m, remote, local := setup()
	gate := &boolGate{allow: false}
	m.SetRemoteGate(gate)
	done := 0
	k.At(0, func() {
		m.ReadLine(0, func() { done++ })
		m.ReadLine(64, func() { done++ })    // same page, already localized
		m.WriteLine(1024, func() { done++ }) // second page
	})
	k.Run()
	if done != 3 {
		t.Fatalf("done = %d", done)
	}
	if remote.reads+remote.writes != 0 {
		t.Fatalf("denied gate let remote traffic through: %d/%d", remote.reads, remote.writes)
	}
	if local.reads != 2 || local.writes != 1 {
		t.Fatalf("local traffic = %d/%d", local.reads, local.writes)
	}
	st := m.Stats()
	if st.GateLocalized != 2 {
		t.Fatalf("gate localized %d pages, want 2", st.GateLocalized)
	}
	if st.DegradedPages != 0 {
		t.Fatalf("gate localization misattributed to degrade: %+v", st)
	}
	// Only the first touch of each page consults the gate; localized pages
	// bypass it.
	if gate.queried != 2 {
		t.Fatalf("gate queried %d times, want 2", gate.queried)
	}
}

func TestGateAllowedKeepsRemotePath(t *testing.T) {
	k, m, remote, local := setup()
	gate := &boolGate{allow: true}
	m.SetRemoteGate(gate)
	done := 0
	k.At(0, func() { m.ReadLine(0, func() { done++ }) })
	k.Run()
	if done != 1 || remote.reads != 1 || local.reads != 0 {
		t.Fatalf("done=%d remote=%d local=%d", done, remote.reads, local.reads)
	}
	if st := m.Stats(); st.GateLocalized != 0 {
		t.Fatalf("allowing gate localized: %+v", st)
	}
}

// TestGateReopenRestoresRemote flips the gate closed then open: pages
// localized while closed stay local (their data lives there now), but new
// pages go remote again.
func TestGateReopenRestoresRemote(t *testing.T) {
	k, m, remote, local := setup()
	gate := &boolGate{allow: false}
	m.SetRemoteGate(gate)
	done := 0
	k.At(0, func() { m.ReadLine(0, func() { done++ }) })
	k.Run()
	if local.reads != 1 {
		t.Fatalf("local reads = %d", local.reads)
	}
	gate.allow = true
	k.Post(func() {
		m.ReadLine(64, func() { done++ })   // page localized while open: stays local
		m.ReadLine(1024, func() { done++ }) // new page: remote again
	})
	k.Run()
	if done != 3 {
		t.Fatalf("done = %d", done)
	}
	if local.reads != 2 {
		t.Fatalf("localized page left home: local reads = %d", local.reads)
	}
	if remote.reads != 1 {
		t.Fatalf("re-opened gate remote reads = %d", remote.reads)
	}
}

// TestDegradePrecedesGate pins precedence: a degraded (link-dead) migrator
// localizes regardless of what the gate would say, and counts the page
// under DegradedPages.
func TestDegradePrecedesGate(t *testing.T) {
	k, m, remote, _ := setup()
	gate := &boolGate{allow: true}
	m.SetRemoteGate(gate)
	done := 0
	k.At(0, func() {
		m.Degrade()
		m.ReadLine(0, func() { done++ })
	})
	k.Run()
	if done != 1 || remote.reads != 0 {
		t.Fatalf("done=%d remote=%d", done, remote.reads)
	}
	st := m.Stats()
	if st.DegradedPages != 1 || st.GateLocalized != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if gate.queried != 0 {
		t.Fatalf("degraded migrator consulted the gate %d times", gate.queried)
	}
}

// TestGatePromotedPageUnaffected checks a page promoted while the gate was
// open keeps serving locally when the gate closes (it is already home).
func TestGatePromotedPageUnaffected(t *testing.T) {
	k, m, remote, local := setup()
	gate := &boolGate{allow: true}
	m.SetRemoteGate(gate)
	done := 0
	k.At(0, func() {
		// HotThreshold=4 touches promote the page.
		for i := 0; i < 5; i++ {
			m.ReadLine(0, func() { done++ })
		}
	})
	k.Run()
	if m.Resident() == 0 {
		t.Fatal("page never promoted")
	}
	gate.allow = false
	before := remote.reads + remote.writes
	localBefore := local.reads
	k.Post(func() { m.ReadLine(64, func() { done++ }) })
	k.Run()
	if remote.reads+remote.writes != before {
		t.Fatal("promoted page went remote under a closed gate")
	}
	if local.reads != localBefore+1 {
		t.Fatalf("local reads = %d, want %d", local.reads, localBefore+1)
	}
	if st := m.Stats(); st.GateLocalized != 0 {
		t.Fatalf("resident page re-localized: %+v", st)
	}
}
