// Package telemetry samples simulated-system observables (injector
// backlog, link utilization, MSHR occupancy, DRAM utilization) into time
// series, the counterpart of the hardware performance counters related
// work (§VI) uses to characterize memory subsystems.
//
// Concurrency contract: there is no package-global probe registry — every
// Sampler belongs to one kernel and is driven only by that kernel's
// (single-threaded) event loop, so concurrent testbeds in a parallel
// sweep never share sampler state. A probe's closure may, however, read a
// metrics.CounterSet that is also aggregated across testbeds; CounterSet
// is mutex-protected for exactly that case.
package telemetry

import (
	"fmt"
	"io"
	"sort"

	"thymesim/internal/metrics"
	"thymesim/internal/sim"
)

// Sampler periodically reads registered probes and accumulates one series
// per probe (x = time in microseconds).
type Sampler struct {
	k        *sim.Kernel
	interval sim.Duration
	probes   []probe
	running  bool
	stopped  bool
	samples  uint64
}

type probe struct {
	name   string
	fn     func() float64
	series *metrics.Series
}

// NewSampler creates a sampler with the given period.
func NewSampler(k *sim.Kernel, interval sim.Duration) *Sampler {
	if interval <= 0 {
		panic("telemetry: interval must be positive")
	}
	return &Sampler{k: k, interval: interval}
}

// Register adds a probe; duplicate names panic. Must be called before
// Start.
func (s *Sampler) Register(name string, fn func() float64) {
	if s.running {
		panic("telemetry: Register after Start")
	}
	for _, p := range s.probes {
		if p.name == name {
			panic(fmt.Sprintf("telemetry: duplicate probe %q", name))
		}
	}
	s.probes = append(s.probes, probe{
		name:   name,
		fn:     fn,
		series: &metrics.Series{Name: name, XLabel: "time (us)", YLabel: name},
	})
}

// Start begins sampling on the kernel's clock until Stop is called.
func (s *Sampler) Start() {
	if s.running {
		panic("telemetry: already started")
	}
	if len(s.probes) == 0 {
		panic("telemetry: no probes registered")
	}
	s.running = true
	s.k.Ticker(s.interval, func() bool {
		if s.stopped {
			return false
		}
		s.sample()
		return true
	})
}

// Stop ends sampling after the next tick. Stopping a sampler that is not
// running is a documented no-op, so callers may pair Stop with Start
// unconditionally (e.g. in deferred cleanup) without poisoning a later
// Start: a premature Stop must not leave the stop flag set, or the first
// tick after Start would silently cancel sampling.
func (s *Sampler) Stop() {
	if !s.running {
		return
	}
	s.stopped = true
}

func (s *Sampler) sample() {
	now := s.k.Now().Micros()
	for i := range s.probes {
		s.probes[i].series.Add(now, s.probes[i].fn())
	}
	s.samples++
}

// Samples returns the number of sampling rounds taken.
func (s *Sampler) Samples() uint64 { return s.samples }

// Series returns the named probe's series, or nil.
func (s *Sampler) Series(name string) *metrics.Series {
	for i := range s.probes {
		if s.probes[i].name == name {
			return s.probes[i].series
		}
	}
	return nil
}

// Names returns the registered probe names, sorted.
func (s *Sampler) Names() []string {
	out := make([]string, 0, len(s.probes))
	for _, p := range s.probes {
		out = append(out, p.name)
	}
	sort.Strings(out)
	return out
}

// WriteCSV emits all series as tidy CSV: probe,time_us,value.
func (s *Sampler) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "probe,time_us,value"); err != nil {
		return err
	}
	for _, name := range s.Names() {
		series := s.Series(name)
		for _, pt := range series.Points {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", name, pt.X, pt.Y); err != nil {
				return err
			}
		}
	}
	return nil
}
