package telemetry

import (
	"strconv"

	"thymesim/internal/metrics"
)

// RegisterCounterSet registers one probe per counter declared in cs, named
// prefix+counter, each sampling the counter's current value. Counters must
// be declared before the call (and the sampler not yet started); values may
// keep changing throughout the run — each tick records the instantaneous
// cumulative count, turning event counters into rate-inspectable series.
func RegisterCounterSet(s *Sampler, prefix string, cs *metrics.CounterSet) {
	for _, name := range cs.Names() {
		name := name
		s.Register(prefix+name, func() float64 { return float64(cs.Get(name)) })
	}
}

// RegisterCounterSetPerNode is RegisterCounterSet with a node-qualified
// prefix: probes are named prefix+"node<id>_"+counter, so several nodes'
// counter sets coexist in one sampler without colliding — the CSV
// analogue of the metrics plane's node label.
func RegisterCounterSetPerNode(s *Sampler, prefix string, node int, cs *metrics.CounterSet) {
	RegisterCounterSet(s, prefix+"node"+strconv.Itoa(node)+"_", cs)
}
