package telemetry

import "thymesim/internal/metrics"

// RegisterCounterSet registers one probe per counter declared in cs, named
// prefix+counter, each sampling the counter's current value. Counters must
// be declared before the call (and the sampler not yet started); values may
// keep changing throughout the run — each tick records the instantaneous
// cumulative count, turning event counters into rate-inspectable series.
func RegisterCounterSet(s *Sampler, prefix string, cs *metrics.CounterSet) {
	for _, name := range cs.Names() {
		name := name
		s.Register(prefix+name, func() float64 { return float64(cs.Get(name)) })
	}
}
