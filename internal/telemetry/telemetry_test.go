package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"thymesim/internal/sim"
)

func TestSamplerCollectsAtInterval(t *testing.T) {
	k := sim.NewKernel()
	s := NewSampler(k, sim.Duration(sim.Microsecond))
	v := 0.0
	s.Register("counter", func() float64 { v++; return v })
	s.Start()
	// Something must keep the clock moving; run bounded.
	k.RunUntil(sim.Time(10 * sim.Microsecond))
	s.Stop()
	k.RunUntil(sim.Time(20 * sim.Microsecond))
	series := s.Series("counter")
	if series == nil {
		t.Fatal("series missing")
	}
	if s.Samples() < 10 || s.Samples() > 11 {
		t.Fatalf("samples = %d, want ~10", s.Samples())
	}
	// x values advance by 1us.
	for i := 1; i < series.Len(); i++ {
		if series.Points[i].X-series.Points[i-1].X != 1 {
			t.Fatalf("sampling interval wrong: %v", series.Points)
		}
	}
	// y values reflect probe reads in order.
	if series.Points[0].Y != 1 {
		t.Fatalf("first sample = %v", series.Points[0].Y)
	}
}

func TestSamplerMultipleProbesAndCSV(t *testing.T) {
	k := sim.NewKernel()
	s := NewSampler(k, sim.Duration(sim.Microsecond))
	s.Register("b-probe", func() float64 { return 2 })
	s.Register("a-probe", func() float64 { return 1 })
	s.Start()
	k.RunUntil(sim.Time(3 * sim.Microsecond))
	s.Stop()
	k.Run()
	if got := s.Names(); got[0] != "a-probe" || got[1] != "b-probe" {
		t.Fatalf("names = %v", got)
	}
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "probe,time_us,value\n") {
		t.Fatalf("csv header: %q", out)
	}
	if !strings.Contains(out, "a-probe,1,1") || !strings.Contains(out, "b-probe,2,2") {
		t.Fatalf("csv rows: %q", out)
	}
}

// A Stop before Start must be a no-op: it used to leave the stop flag
// set, so the first tick after a later Start silently cancelled sampling
// and every series came back empty.
func TestSamplerStopBeforeStartIsNoOp(t *testing.T) {
	k := sim.NewKernel()
	s := NewSampler(k, sim.Duration(sim.Microsecond))
	s.Register("x", func() float64 { return 1 })
	s.Stop() // premature: nothing running yet
	s.Stop() // and it must stay idempotent
	s.Start()
	k.RunUntil(sim.Time(5 * sim.Microsecond))
	s.Stop()
	k.Run()
	if s.Samples() < 4 {
		t.Fatalf("samples = %d after premature Stop, want sampling to run", s.Samples())
	}
	if got := s.Series("x").Len(); got < 4 {
		t.Fatalf("series has %d points, want sampling to run", got)
	}
}

func TestSamplerValidation(t *testing.T) {
	k := sim.NewKernel()
	for _, fn := range []func(){
		func() { NewSampler(k, 0) },
		func() {
			s := NewSampler(k, 1)
			s.Start() // no probes
		},
		func() {
			s := NewSampler(k, 1)
			s.Register("x", func() float64 { return 0 })
			s.Register("x", func() float64 { return 0 })
		},
		func() {
			s := NewSampler(k, 1)
			s.Register("x", func() float64 { return 0 })
			s.Start()
			s.Register("y", func() float64 { return 0 })
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
	if s := NewSampler(k, 1); s.Series("missing") != nil {
		t.Error("missing series not nil")
	}
}
