package telemetry

import (
	"testing"

	"thymesim/internal/metrics"
	"thymesim/internal/sim"
)

func TestRegisterCounterSetSamplesLiveValues(t *testing.T) {
	k := sim.NewKernel()
	cs := metrics.NewCounterSet()
	cs.Declare("retransmits", "dead")

	s := NewSampler(k, sim.Duration(sim.Microsecond))
	RegisterCounterSet(s, "chaos_", cs)

	k.At(0, s.Start)
	// Counter advances mid-run; later samples must see the new value.
	k.At(sim.Time(3*sim.Microsecond+sim.Nanosecond), func() { cs.Add("retransmits", 5) })
	k.At(sim.Time(6*sim.Microsecond+sim.Nanosecond), s.Stop)
	k.Run()

	series := s.Series("chaos_retransmits")
	if series == nil {
		t.Fatal("probe not registered")
	}
	first, last := series.Points[0].Y, series.Points[len(series.Points)-1].Y
	if first != 0 || last != 5 {
		t.Fatalf("retransmits series %v .. %v, want 0 .. 5", first, last)
	}
	if dead := s.Series("chaos_dead"); dead == nil || dead.Points[len(dead.Points)-1].Y != 0 {
		t.Fatalf("dead series missing or nonzero")
	}
}
