package telemetry

import (
	"testing"

	"thymesim/internal/metrics"
	"thymesim/internal/sim"
)

func TestRegisterCounterSetSamplesLiveValues(t *testing.T) {
	k := sim.NewKernel()
	cs := metrics.NewCounterSet()
	cs.Declare("retransmits", "dead")

	s := NewSampler(k, sim.Duration(sim.Microsecond))
	RegisterCounterSet(s, "chaos_", cs)

	k.At(0, s.Start)
	// Counter advances mid-run; later samples must see the new value.
	k.At(sim.Time(3*sim.Microsecond+sim.Nanosecond), func() { cs.Add("retransmits", 5) })
	k.At(sim.Time(6*sim.Microsecond+sim.Nanosecond), s.Stop)
	k.Run()

	series := s.Series("chaos_retransmits")
	if series == nil {
		t.Fatal("probe not registered")
	}
	first, last := series.Points[0].Y, series.Points[len(series.Points)-1].Y
	if first != 0 || last != 5 {
		t.Fatalf("retransmits series %v .. %v, want 0 .. 5", first, last)
	}
	if dead := s.Series("chaos_dead"); dead == nil || dead.Points[len(dead.Points)-1].Y != 0 {
		t.Fatalf("dead series missing or nonzero")
	}
}

func TestRegisterCounterSetPerNodeQualifiesNames(t *testing.T) {
	k := sim.NewKernel()
	s := NewSampler(k, sim.Duration(sim.Microsecond))
	// Two nodes with identically named counters must not collide.
	for node := 0; node < 2; node++ {
		cs := metrics.NewCounterSet()
		cs.Declare("fills")
		cs.Add("fills", uint64(10*(node+1)))
		RegisterCounterSetPerNode(s, "pool_", node, cs)
	}

	k.At(0, s.Start)
	k.At(sim.Time(2*sim.Microsecond+sim.Nanosecond), s.Stop)
	k.Run()

	for node, want := range []float64{10, 20} {
		name := "pool_node" + string(rune('0'+node)) + "_fills"
		series := s.Series(name)
		if series == nil {
			t.Fatalf("probe %q not registered (have %v)", name, s.Names())
		}
		if got := series.Points[len(series.Points)-1].Y; got != want {
			t.Fatalf("%s = %v, want %v", name, got, want)
		}
	}
}
