// Package trace provides a compact on-disk format for memory-access
// traces: capture a workload's access stream from a live simulation, store
// it compressed, and replay it later against any memory configuration —
// the standard methodology for comparing memory-system designs on
// identical inputs.
//
// Format (gzip-compressed): the magic header, then a sequence of records.
// Each record is a kind byte followed by fields in little-endian varint
// encoding; addresses are delta-encoded against the previous op to keep
// sequential scans near one byte per op.
package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"thymesim/internal/memport"
	"thymesim/internal/sim"
)

// Magic identifies the format (and its version).
const Magic = "TSIMTRC1"

// Record kinds.
const (
	kindRead    = 0
	kindWrite   = 1
	kindBarrier = 2
	kindEnd     = 3
)

// Errors.
var (
	ErrBadMagic  = errors.New("trace: bad magic")
	ErrCorrupt   = errors.New("trace: corrupt record")
	ErrTruncated = errors.New("trace: truncated stream (missing end marker)")
)

// Writer streams records to an underlying writer.
type Writer struct {
	gz     *gzip.Writer
	w      *bufio.Writer
	buf    []byte
	prev   uint64
	ops    uint64
	phases uint64
	closed bool
}

// NewWriter starts a trace on w.
func NewWriter(w io.Writer) (*Writer, error) {
	gz := gzip.NewWriter(w)
	bw := bufio.NewWriter(gz)
	if _, err := bw.WriteString(Magic); err != nil {
		return nil, err
	}
	return &Writer{gz: gz, w: bw, buf: make([]byte, binary.MaxVarintLen64)}, nil
}

func (w *Writer) uvarint(v uint64) error {
	n := binary.PutUvarint(w.buf, v)
	_, err := w.w.Write(w.buf[:n])
	return err
}

// Op appends one memory operation.
func (w *Writer) Op(op memport.Op) error {
	if w.closed {
		return errors.New("trace: write after Close")
	}
	kind := byte(kindRead)
	if op.Write {
		kind = kindWrite
	}
	if err := w.w.WriteByte(kind); err != nil {
		return err
	}
	// Zig-zag delta against the previous address.
	delta := int64(op.Addr - w.prev)
	w.prev = op.Addr
	if err := w.uvarint(uint64((delta<<1)^(delta>>63)) ^ 0); err != nil {
		return err
	}
	if err := w.uvarint(uint64(op.Size)); err != nil {
		return err
	}
	w.ops++
	return nil
}

// Barrier marks a phase boundary (dependency point) in the trace.
func (w *Writer) Barrier() error {
	if w.closed {
		return errors.New("trace: write after Close")
	}
	w.phases++
	return w.w.WriteByte(kindBarrier)
}

// Ops returns operations written so far.
func (w *Writer) Ops() uint64 { return w.ops }

// Close writes the end marker and flushes. The underlying writer is not
// closed.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.w.WriteByte(kindEnd); err != nil {
		return err
	}
	if err := w.w.Flush(); err != nil {
		return err
	}
	return w.gz.Close()
}

// Reader decodes a trace.
type Reader struct {
	gz   *gzip.Reader
	r    *bufio.Reader
	prev uint64
	done bool
}

// Event is one decoded record.
type Event struct {
	// Barrier is true for phase boundaries; otherwise Op holds the
	// operation.
	Barrier bool
	Op      memport.Op
}

// NewReader opens a trace and validates the magic.
func NewReader(r io.Reader) (*Reader, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReader(gz)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	if string(magic) != Magic {
		return nil, ErrBadMagic
	}
	return &Reader{gz: gz, r: br}, nil
}

// Next returns the next event, or io.EOF after the end marker.
func (r *Reader) Next() (Event, error) {
	if r.done {
		return Event{}, io.EOF
	}
	kind, err := r.r.ReadByte()
	if err != nil {
		return Event{}, ErrTruncated
	}
	switch kind {
	case kindEnd:
		r.done = true
		return Event{}, io.EOF
	case kindBarrier:
		return Event{Barrier: true}, nil
	case kindRead, kindWrite:
		zz, err := binary.ReadUvarint(r.r)
		if err != nil {
			return Event{}, ErrTruncated
		}
		delta := int64(zz>>1) ^ -int64(zz&1)
		addr := r.prev + uint64(delta)
		r.prev = addr
		size, err := binary.ReadUvarint(r.r)
		if err != nil {
			return Event{}, ErrTruncated
		}
		return Event{Op: memport.Op{Addr: addr, Size: int32(size), Write: kind == kindWrite}}, nil
	default:
		return Event{}, fmt.Errorf("%w: kind %d", ErrCorrupt, kind)
	}
}

// Load reads an entire trace into memport phases (a barrier ends a phase;
// the final phase needs no trailing barrier).
func Load(r io.Reader) ([][]memport.Op, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var phases [][]memport.Op
	var cur []memport.Op
	for {
		ev, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if ev.Barrier {
			phases = append(phases, cur)
			cur = nil
			continue
		}
		cur = append(cur, ev.Op)
	}
	if len(cur) > 0 {
		phases = append(phases, cur)
	}
	return phases, nil
}

// Source adapts loaded phases to memport.TraceSource with zero compute.
type Source struct {
	Phases [][]memport.Op
}

// NumPhases implements memport.TraceSource.
func (s *Source) NumPhases() int { return len(s.Phases) }

// Phase implements memport.TraceSource.
func (s *Source) Phase(i int) []memport.Op { return s.Phases[i] }

// ComputeTime implements memport.TraceSource.
func (s *Source) ComputeTime(int) sim.Duration { return 0 }
