package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"thymesim/internal/memport"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ops := []memport.Op{
		{Addr: 0x1000, Size: 8},
		{Addr: 0x1080, Size: 128, Write: true},
		{Addr: 0x20, Size: 64},
	}
	for i, op := range ops {
		if err := w.Op(op); err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			if err := w.Barrier(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if w.Ops() != 3 {
		t.Fatalf("ops = %d", w.Ops())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var got []Event
	for {
		ev, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, ev)
	}
	if len(got) != 4 {
		t.Fatalf("events = %d", len(got))
	}
	if got[0].Op != ops[0] || got[1].Op != ops[1] || got[3].Op != ops[2] {
		t.Fatalf("ops mismatch: %+v", got)
	}
	if !got[2].Barrier {
		t.Fatal("barrier lost")
	}
}

func TestLoadPhases(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Op(memport.Op{Addr: 1 * 128, Size: 8})
	w.Op(memport.Op{Addr: 2 * 128, Size: 8})
	w.Barrier()
	w.Op(memport.Op{Addr: 3 * 128, Size: 8, Write: true})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	phases, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 2 || len(phases[0]) != 2 || len(phases[1]) != 1 {
		t.Fatalf("phases = %v", phases)
	}
	if !phases[1][0].Write {
		t.Fatal("write flag lost")
	}
	src := &Source{Phases: phases}
	if src.NumPhases() != 2 || len(src.Phase(0)) != 2 || src.ComputeTime(0) != 0 {
		t.Fatal("Source adapter wrong")
	}
}

func TestBadMagic(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Close()
	raw := buf.Bytes()
	// Corrupt by re-wrapping different content.
	if _, err := NewReader(bytes.NewReader([]byte("not gzip"))); err == nil {
		t.Fatal("accepted non-gzip")
	}
	_ = raw
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := 0; i < 100; i++ {
		w.Op(memport.Op{Addr: uint64(i) * 128, Size: 8})
	}
	w.Close()
	full := buf.Bytes()
	// A truncated gzip stream must not round-trip cleanly.
	_, err := Load(bytes.NewReader(full[:len(full)/2]))
	if err == nil {
		t.Fatal("truncated trace loaded cleanly")
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Close()
	if err := w.Op(memport.Op{}); err == nil {
		t.Fatal("Op after Close succeeded")
	}
	if err := w.Barrier(); err == nil {
		t.Fatal("Barrier after Close succeeded")
	}
	if err := w.Close(); err != nil {
		t.Fatal("double Close errored")
	}
}

// Property: arbitrary op sequences round-trip exactly (delta encoding
// handles forward and backward address jumps).
func TestRoundTripProperty(t *testing.T) {
	f := func(addrs []uint64, sizes []uint16) bool {
		n := len(addrs)
		if len(sizes) < n {
			n = len(sizes)
		}
		var ops []memport.Op
		for i := 0; i < n; i++ {
			ops = append(ops, memport.Op{Addr: addrs[i], Size: int32(sizes[i]%4096) + 1, Write: i%3 == 0})
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for _, op := range ops {
			if w.Op(op) != nil {
				return false
			}
		}
		if w.Close() != nil {
			return false
		}
		phases, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		if n == 0 {
			return len(phases) == 0
		}
		if len(phases) != 1 || len(phases[0]) != n {
			return false
		}
		for i, op := range ops {
			if phases[0][i] != op {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressionIsEffective(t *testing.T) {
	// A sequential scan should compress far below 13 bytes/op.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	const n = 10000
	for i := 0; i < n; i++ {
		w.Op(memport.Op{Addr: uint64(i) * 128, Size: 128})
	}
	w.Close()
	perOp := float64(buf.Len()) / n
	if perOp > 2.0 {
		t.Fatalf("%.2f bytes/op, want < 2 for sequential scan", perOp)
	}
}
