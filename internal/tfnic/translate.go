package tfnic

import (
	"fmt"
	"sort"

	"thymesim/internal/ocapi"
)

// Window is one address-translation mapping configured by the control
// plane: borrower physical addresses [BorrowerBase, BorrowerBase+Size) map
// to lender addresses [LenderBase, LenderBase+Size). This is the
// translation step Fig. 1 places inside the disaggregated-memory NIC.
type Window struct {
	BorrowerBase uint64
	LenderBase   uint64
	Size         uint64
	LenderNode   int
}

// Contains reports whether borrower address a falls inside the window.
func (w Window) Contains(a uint64) bool {
	return a >= w.BorrowerBase && a-w.BorrowerBase < w.Size
}

// Translator holds the NIC's configured windows, sorted by borrower base.
type Translator struct {
	windows []Window
}

// AddWindow installs a mapping. Overlapping borrower ranges and unaligned
// windows are rejected: the control plane must never program them.
func (t *Translator) AddWindow(w Window) error {
	if w.Size == 0 {
		return fmt.Errorf("tfnic: empty window")
	}
	if w.BorrowerBase%ocapi.CacheLineSize != 0 || w.LenderBase%ocapi.CacheLineSize != 0 || w.Size%ocapi.CacheLineSize != 0 {
		return fmt.Errorf("tfnic: window not line-aligned: %+v", w)
	}
	for _, ex := range t.windows {
		if w.BorrowerBase < ex.BorrowerBase+ex.Size && ex.BorrowerBase < w.BorrowerBase+w.Size {
			return fmt.Errorf("tfnic: window %+v overlaps %+v", w, ex)
		}
	}
	t.windows = append(t.windows, w)
	sort.Slice(t.windows, func(i, j int) bool {
		return t.windows[i].BorrowerBase < t.windows[j].BorrowerBase
	})
	return nil
}

// RemoveWindow drops the mapping whose borrower base matches, reporting
// whether one was found.
func (t *Translator) RemoveWindow(borrowerBase uint64) bool {
	for i, w := range t.windows {
		if w.BorrowerBase == borrowerBase {
			t.windows = append(t.windows[:i], t.windows[i+1:]...)
			return true
		}
	}
	return false
}

// Windows returns a copy of the installed windows.
func (t *Translator) Windows() []Window {
	return append([]Window(nil), t.windows...)
}

// Translate maps a borrower address to (lenderNode, lenderAddr).
func (t *Translator) Translate(addr uint64) (node int, lenderAddr uint64, ok bool) {
	// Binary search over sorted, non-overlapping windows.
	i := sort.Search(len(t.windows), func(i int) bool {
		return t.windows[i].BorrowerBase+t.windows[i].Size > addr
	})
	if i < len(t.windows) && t.windows[i].Contains(addr) {
		w := t.windows[i]
		return w.LenderNode, w.LenderBase + (addr - w.BorrowerBase), true
	}
	return 0, 0, false
}
