// ARQ retransmission for the borrower NIC. The hardware prototype has no
// end-to-end recovery: a request lost or corrupted on the wire stalls the
// issuing load forever. ARQ interposes between the memory port and the NIC
// and turns link faults into bounded-latency events — sequence-numbered
// attempts, per-transaction timeouts, exponential backoff with jitter, and
// after retry exhaustion a poisoned completion instead of a hang.
package tfnic

import (
	"fmt"

	"thymesim/internal/metricsplane"
	"thymesim/internal/ocapi"
	"thymesim/internal/sim"
)

// ARQConfig parameterizes the retransmission layer.
type ARQConfig struct {
	// Timeout is the first attempt's response deadline.
	Timeout sim.Duration
	// MaxRetries bounds retransmissions per transaction; the transaction
	// dies (poisoned completion) after 1+MaxRetries failed attempts.
	MaxRetries int
	// BackoffMult scales the timeout per retry (>= 1).
	BackoffMult float64
	// BackoffCap bounds the grown timeout (0 = uncapped).
	BackoffCap sim.Duration
	// JitterFrac spreads each backoff uniformly over [1-j, 1+j] to
	// desynchronize retry storms; 0 disables jitter.
	JitterFrac float64
	// Seed feeds the jitter stream (determinism).
	Seed uint64
}

// Validate checks the configuration.
func (c ARQConfig) Validate() error {
	if c.Timeout <= 0 {
		return fmt.Errorf("tfnic: ARQ timeout %v", c.Timeout)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("tfnic: ARQ max retries %d", c.MaxRetries)
	}
	if c.BackoffMult < 1 {
		return fmt.Errorf("tfnic: ARQ backoff multiplier %g < 1", c.BackoffMult)
	}
	if c.BackoffCap < 0 {
		return fmt.Errorf("tfnic: negative ARQ backoff cap")
	}
	if c.JitterFrac < 0 || c.JitterFrac >= 1 {
		return fmt.Errorf("tfnic: ARQ jitter fraction %g outside [0,1)", c.JitterFrac)
	}
	return nil
}

// DefaultARQConfig returns a recovery profile tuned to the testbed's RTTs:
// the first timeout comfortably exceeds a loaded round trip, and five
// doubling retries cover outages up to a few milliseconds.
func DefaultARQConfig() ARQConfig {
	return ARQConfig{
		Timeout:     100 * sim.Microsecond,
		MaxRetries:  5,
		BackoffMult: 2,
		BackoffCap:  2 * sim.Millisecond,
		JitterFrac:  0.1,
		Seed:        1,
	}
}

// ARQStats counts retransmission-layer events.
type ARQStats struct {
	Tracked     uint64 // block transactions accepted for tracking
	Completed   uint64 // transactions finished with a genuine response
	Retransmits uint64 // retry attempts sent (or queued) after a failure
	NackRetries uint64 // retries triggered by an explicit lender nack
	Timeouts    uint64 // retries triggered by a response deadline
	Dead        uint64 // transactions that exhausted retries (poisoned)
	StaleDrops  uint64 // responses for unknown tags or superseded attempts
	CorruptResp uint64 // responses discarded because they arrived damaged
}

type arqTxn struct {
	pkt      ocapi.Packet // as given by the port, pre-translation
	attempts int          // transmissions so far; Seq of the live attempt is attempts-1
	timer    sim.TimerID  // the live attempt's response deadline
	next     *arqTxn      // free-list link while recycled
}

// Handle implements sim.Handler: the attempt whose tag rides in arg hit
// its response deadline. The kernel's timer wheel cancels deadlines for
// real (OnResponse/recycle call CancelTimer), so a firing timer always
// belongs to the live attempt — no generation bookkeeping per site.
func (a *ARQ) Handle(arg uint64) {
	tag := uint32(arg)
	t, ok := a.txns[tag]
	if !ok {
		return // unreachable: resolution cancels the deadline
	}
	a.stats.Timeouts++
	a.mx.Timeout()
	a.retryOrDie(tag, t)
}

// ARQ wraps a NIC with go-back-on-timeout retransmission for block
// operations. It implements the memport.Sender surface, so it slots in
// front of RemoteBackend unchanged; probes pass through untracked (the
// attach handshake's own deadline is their recovery). Wire NIC responses to
// OnResponse, and consume resolved transactions from OnComplete.
type ARQ struct {
	k   *sim.Kernel
	nic arqLink
	cfg ARQConfig
	rng *sim.Rand

	txns map[uint32]*arqTxn
	// freeTxns recycles transaction entries so a warmed-up ARQ layer
	// tracks and times out without allocating. Timeout deadlines live on
	// the kernel's timer wheel (ArmTimer/CancelTimer), which supplies the
	// stale-timer protection the old per-transaction generation counter
	// existed for.
	freeTxns *arqTxn
	// retryQ holds retransmissions waiting for NIC command-queue space;
	// they take precedence over new sends so recovery cannot starve.
	retryQ []ocapi.Packet

	// OnComplete receives every resolved transaction: genuine responses,
	// and poisoned ones synthesized for dead transactions. Probe responses
	// pass through here too.
	OnComplete func(ocapi.Packet)

	stats ARQStats
	mx    *metricsplane.ARQMetrics // nil when the metrics plane is disabled
}

// arqLink is the slice of the NIC the retransmission layer drives
// (satisfied by *NIC; narrowed for testability).
type arqLink interface {
	TrySend(p ocapi.Packet) bool
	OnCmdSpace(fn func())
	CmdSpace() int
}

// NewARQ wraps nic with retransmission.
func NewARQ(k *sim.Kernel, nic arqLink, cfg ARQConfig) *ARQ {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	a := &ARQ{
		k:    k,
		nic:  nic,
		cfg:  cfg,
		rng:  sim.NewRand(cfg.Seed),
		txns: make(map[uint32]*arqTxn),
	}
	nic.OnCmdSpace(a.drainRetries)
	return a
}

// SetMetrics attaches the metrics plane's per-node ARQ counters
// (observe-only; nil keeps the zero-overhead path).
func (a *ARQ) SetMetrics(m *metricsplane.ARQMetrics) { a.mx = m }

// Stats returns the retransmission counters.
func (a *ARQ) Stats() ARQStats { return a.stats }

// Outstanding returns tracked transactions awaiting resolution.
func (a *ARQ) Outstanding() int { return len(a.txns) }

// QueuedRetries returns retransmissions waiting for NIC space.
func (a *ARQ) QueuedRetries() int { return len(a.retryQ) }

// TrySend implements memport.Sender. Block requests are tracked and
// retransmitted on loss; other requests (probes) pass straight through.
func (a *ARQ) TrySend(p ocapi.Packet) bool {
	if p.Op != ocapi.OpReadBlock && p.Op != ocapi.OpWriteBlock {
		return a.nic.TrySend(p)
	}
	if len(a.retryQ) > 0 && a.nic.CmdSpace() <= len(a.retryQ) {
		return false // leave the remaining space to pending retransmissions
	}
	if _, dup := a.txns[p.Tag]; dup {
		panic(fmt.Sprintf("tfnic: ARQ send with live tag %d", p.Tag))
	}
	p.Seq = 0
	if !a.nic.TrySend(p) {
		return false
	}
	t := a.freeTxns
	if t == nil {
		t = &arqTxn{}
	} else {
		a.freeTxns = t.next
		t.next = nil
	}
	t.pkt = p
	t.attempts = 1
	a.txns[p.Tag] = t
	a.stats.Tracked++
	a.mx.Tracked()
	a.armTimeout(p.Tag, t)
	return true
}

// recycle returns a resolved transaction entry to the free list. Any
// still-armed deadline is cancelled for real on the wheel; on death paths
// (where the deadline itself fired) the cancel is a stale-id no-op.
func (a *ARQ) recycle(t *arqTxn) {
	a.k.CancelTimer(t.timer)
	t.timer = sim.TimerID{}
	t.pkt = ocapi.Packet{}
	t.next = a.freeTxns
	a.freeTxns = t
}

// OnCmdSpace implements memport.Sender.
func (a *ARQ) OnCmdSpace(fn func()) { a.nic.OnCmdSpace(fn) }

// OnResponse consumes a response delivered by the NIC. Genuine completions
// resolve their transaction; nacks and damaged responses trigger a retry;
// stale or unknown responses are counted and dropped.
func (a *ARQ) OnResponse(p ocapi.Packet) {
	if p.Op == ocapi.OpProbeResp {
		a.deliver(p)
		return
	}
	t, ok := a.txns[p.Tag]
	if !ok {
		a.stats.StaleDrops++ // duplicate after resolution, or never ours
		a.mx.StaleDrop()
		return
	}
	if p.Seq != uint16(t.attempts-1) {
		a.stats.StaleDrops++ // reply to a superseded attempt
		a.mx.StaleDrop()
		return
	}
	switch {
	case p.Corrupt:
		// The response itself was damaged in flight; discard it and let
		// the attempt's timeout drive the retry (the lender did answer, so
		// an immediate retransmit would race its duplicate detection).
		a.stats.CorruptResp++
		a.mx.CorruptResp(a.k.Now().Micros())
	case p.Op == ocapi.OpNack:
		a.stats.NackRetries++
		a.mx.NackRetry()
		a.k.CancelTimer(t.timer) // the nack supersedes the attempt's timeout
		a.retryOrDie(p.Tag, t)
	default:
		delete(a.txns, p.Tag)
		a.recycle(t)
		a.stats.Completed++
		a.mx.Completed()
		a.deliver(p)
	}
}

// armTimeout schedules the live attempt's response deadline on the
// kernel's timer wheel.
func (a *ARQ) armTimeout(tag uint32, t *arqTxn) {
	t.timer = a.k.ArmTimer(a.timeoutFor(t.attempts-1), a, uint64(tag))
}

// maxBackoff bounds an uncapped backoff (~13 simulated days): the growth
// loop multiplies a float64, and an unbounded product would overflow the
// Duration conversion into a negative delay at high attempt counts.
const maxBackoff = float64(uint64(1) << 60)

// timeoutFor returns attempt's deadline: Timeout * BackoffMult^attempt,
// capped, with +-JitterFrac spread.
func (a *ARQ) timeoutFor(attempt int) sim.Duration {
	d := float64(a.cfg.Timeout)
	for i := 0; i < attempt; i++ {
		d *= a.cfg.BackoffMult
		if a.cfg.BackoffCap > 0 && d > float64(a.cfg.BackoffCap) {
			d = float64(a.cfg.BackoffCap)
			break
		}
		if d >= maxBackoff {
			d = maxBackoff
			break
		}
	}
	if a.cfg.JitterFrac > 0 {
		d *= 1 + a.cfg.JitterFrac*(2*a.rng.Float64()-1)
	}
	if d < 1 {
		d = 1
	}
	return sim.Duration(d)
}

// retryOrDie retransmits the transaction or, past the retry budget, kills
// it with a poisoned completion.
func (a *ARQ) retryOrDie(tag uint32, t *arqTxn) {
	if t.attempts > a.cfg.MaxRetries {
		delete(a.txns, tag)
		a.stats.Dead++
		a.mx.Dead(uint64(t.pkt.Seq), a.k.Now().Micros())
		r := t.pkt.Response()
		r.Poison = true
		a.recycle(t)
		a.deliver(r)
		return
	}
	a.stats.Retransmits++
	a.mx.Retransmit(uint64(t.attempts), a.k.Now().Micros())
	p := t.pkt
	p.Seq = uint16(t.attempts)
	t.attempts++
	if a.nic.TrySend(p) {
		a.armTimeout(tag, t)
		return
	}
	a.retryQ = append(a.retryQ, p)
}

// drainRetries pushes queued retransmissions when NIC space frees.
func (a *ARQ) drainRetries() {
	for len(a.retryQ) > 0 {
		p := a.retryQ[0]
		t, ok := a.txns[p.Tag]
		if !ok || uint16(t.attempts-1) != p.Seq {
			a.retryQ = a.retryQ[1:] // resolved or superseded while queued
			continue
		}
		if !a.nic.TrySend(p) {
			return
		}
		a.retryQ = a.retryQ[1:]
		a.armTimeout(p.Tag, t)
	}
}

func (a *ARQ) deliver(p ocapi.Packet) {
	if a.OnComplete != nil {
		a.OnComplete(p)
	}
}
