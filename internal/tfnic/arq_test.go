package tfnic

import (
	"testing"

	"thymesim/internal/ocapi"
	"thymesim/internal/sim"
)

// fakeLink records sends and lets tests control space and responses.
type fakeLink struct {
	sent    []ocapi.Packet
	space   int
	onSpace []func()
}

func (f *fakeLink) TrySend(p ocapi.Packet) bool {
	if f.space == 0 {
		return false
	}
	f.space--
	f.sent = append(f.sent, p)
	return true
}

func (f *fakeLink) OnCmdSpace(fn func()) { f.onSpace = append(f.onSpace, fn) }
func (f *fakeLink) CmdSpace() int        { return f.space }

func (f *fakeLink) free(n int) {
	f.space += n
	for _, fn := range f.onSpace {
		fn()
	}
}

func arqConfig() ARQConfig {
	return ARQConfig{
		Timeout:     10 * sim.Microsecond,
		MaxRetries:  2,
		BackoffMult: 2,
		BackoffCap:  100 * sim.Microsecond,
		Seed:        1,
	}
}

func readReq(tag uint32) ocapi.Packet {
	return ocapi.Packet{
		Op: ocapi.OpReadBlock, Tag: tag, Addr: uint64(tag) * ocapi.CacheLineSize,
		Size: ocapi.CacheLineSize, Src: 0, Dst: 1,
	}
}

func TestARQCompletesOnResponse(t *testing.T) {
	k := sim.NewKernel()
	link := &fakeLink{space: 8}
	a := NewARQ(k, link, arqConfig())
	var got []ocapi.Packet
	a.OnComplete = func(p ocapi.Packet) { got = append(got, p) }

	if !a.TrySend(readReq(1)) {
		t.Fatal("send refused")
	}
	resp := link.sent[0].Response()
	k.After(sim.Microsecond, func() { a.OnResponse(resp) })
	k.Run()

	if len(got) != 1 || got[0].Op != ocapi.OpReadResp || got[0].Poison {
		t.Fatalf("completions = %+v", got)
	}
	if a.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", a.Outstanding())
	}
	s := a.Stats()
	if s.Tracked != 1 || s.Completed != 1 || s.Retransmits != 0 || s.Dead != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestARQRetransmitsOnTimeout(t *testing.T) {
	k := sim.NewKernel()
	link := &fakeLink{space: 8}
	a := NewARQ(k, link, arqConfig())
	var got []ocapi.Packet
	a.OnComplete = func(p ocapi.Packet) { got = append(got, p) }

	a.TrySend(readReq(1))
	// Answer only the second attempt (Seq 1).
	k.Ticker(sim.Microsecond, func() bool {
		for _, p := range link.sent {
			if p.Seq == 1 {
				a.OnResponse(p.Response())
				return false
			}
		}
		return true
	})
	k.Run()

	if len(got) != 1 || got[0].Poison {
		t.Fatalf("completions = %+v", got)
	}
	s := a.Stats()
	if s.Retransmits != 1 || s.Timeouts != 1 || s.Completed != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if a.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", a.Outstanding())
	}
}

func TestARQDeadAfterRetryExhaustion(t *testing.T) {
	k := sim.NewKernel()
	link := &fakeLink{space: 64}
	a := NewARQ(k, link, arqConfig())
	var got []ocapi.Packet
	a.OnComplete = func(p ocapi.Packet) { got = append(got, p) }

	a.TrySend(readReq(7)) // never answered
	k.Run()

	if len(got) != 1 {
		t.Fatalf("completions = %d, want 1 poisoned", len(got))
	}
	if !got[0].Poison || got[0].Op != ocapi.OpReadResp || got[0].Tag != 7 {
		t.Fatalf("dead completion = %+v", got[0])
	}
	s := a.Stats()
	if s.Dead != 1 || s.Retransmits != uint64(arqConfig().MaxRetries) {
		t.Fatalf("stats = %+v", s)
	}
	if len(link.sent) != 1+arqConfig().MaxRetries {
		t.Fatalf("attempts = %d", len(link.sent))
	}
	// Attempt sequence numbers are 0,1,2.
	for i, p := range link.sent {
		if p.Seq != uint16(i) {
			t.Fatalf("attempt %d seq = %d", i, p.Seq)
		}
	}
	if a.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", a.Outstanding())
	}
}

func TestARQBackoffGrowsBetweenAttempts(t *testing.T) {
	k := sim.NewKernel()
	link := &fakeLink{space: 64}
	a := NewARQ(k, link, arqConfig()) // no jitter: deterministic deadlines
	a.OnComplete = func(ocapi.Packet) {}

	var sendTimes []sim.Time
	k.At(0, func() { a.TrySend(readReq(1)) })
	k.Run()
	_ = sendTimes

	// Attempts at 0, ~10us, ~10+20us (timeout then doubled timeout).
	if len(link.sent) != 3 {
		t.Fatalf("attempts = %d", len(link.sent))
	}
	if now := k.Now(); now < sim.Time(70*sim.Microsecond) || now > sim.Time(71*sim.Microsecond) {
		// 10 + 20 + 40 us of deadlines drain the kernel at 70us.
		t.Fatalf("final time %v, want ~70us (10+20+40)", now)
	}
}

func TestARQNackTriggersImmediateRetry(t *testing.T) {
	k := sim.NewKernel()
	link := &fakeLink{space: 8}
	a := NewARQ(k, link, arqConfig())
	var got []ocapi.Packet
	a.OnComplete = func(p ocapi.Packet) { got = append(got, p) }

	a.TrySend(readReq(3))
	k.After(sim.Microsecond, func() {
		a.OnResponse(link.sent[0].Nack())
	})
	k.After(2*sim.Microsecond, func() {
		// The retry (Seq 1) went out well before the 10us timeout.
		if len(link.sent) != 2 || link.sent[1].Seq != 1 {
			t.Fatalf("sent = %+v", link.sent)
		}
		a.OnResponse(link.sent[1].Response())
	})
	k.Run()

	if len(got) != 1 || got[0].Poison {
		t.Fatalf("completions = %+v", got)
	}
	if s := a.Stats(); s.NackRetries != 1 || s.Timeouts != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestARQDropsStaleAndDuplicateResponses(t *testing.T) {
	k := sim.NewKernel()
	link := &fakeLink{space: 8}
	a := NewARQ(k, link, arqConfig())
	var got []ocapi.Packet
	a.OnComplete = func(p ocapi.Packet) { got = append(got, p) }

	a.TrySend(readReq(5))
	first := link.sent[0]
	k.After(sim.Microsecond, func() {
		a.OnResponse(first.Nack()) // attempt 0 fails; retry has Seq 1
	})
	k.After(2*sim.Microsecond, func() {
		stale := first.Response() // late reply to superseded attempt 0
		a.OnResponse(stale)
		a.OnResponse(link.sent[1].Response()) // genuine
		a.OnResponse(link.sent[1].Response()) // duplicate after resolution
		a.OnResponse(ocapi.Packet{Op: ocapi.OpReadResp, Tag: 999, Size: ocapi.CacheLineSize})
	})
	k.Run()

	if len(got) != 1 {
		t.Fatalf("completions = %d, want 1", len(got))
	}
	if s := a.Stats(); s.StaleDrops != 3 {
		t.Fatalf("stale drops = %d, want 3", s.StaleDrops)
	}
}

func TestARQCorruptResponseDiscardedThenTimeoutRecovers(t *testing.T) {
	k := sim.NewKernel()
	link := &fakeLink{space: 8}
	a := NewARQ(k, link, arqConfig())
	var got []ocapi.Packet
	a.OnComplete = func(p ocapi.Packet) { got = append(got, p) }

	a.TrySend(readReq(2))
	k.After(sim.Microsecond, func() {
		r := link.sent[0].Response()
		r.Corrupt = true
		a.OnResponse(r) // discarded; timeout drives the retry
	})
	k.Ticker(sim.Microsecond, func() bool {
		for _, p := range link.sent {
			if p.Seq == 1 {
				a.OnResponse(p.Response())
				return false
			}
		}
		return true
	})
	k.Run()

	if len(got) != 1 || got[0].Poison {
		t.Fatalf("completions = %+v", got)
	}
	if s := a.Stats(); s.CorruptResp != 1 || s.Timeouts != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestARQQueuesRetryWhenLinkFull(t *testing.T) {
	k := sim.NewKernel()
	link := &fakeLink{space: 1}
	a := NewARQ(k, link, arqConfig())
	var got []ocapi.Packet
	a.OnComplete = func(p ocapi.Packet) { got = append(got, p) }

	a.TrySend(readReq(1)) // consumes the only slot; first attempt times out
	k.After(15*sim.Microsecond, func() {
		if a.QueuedRetries() != 1 {
			t.Fatalf("queued retries = %d after timeout with full link", a.QueuedRetries())
		}
		link.free(1)
		if a.QueuedRetries() != 0 || len(link.sent) != 2 {
			t.Fatalf("retry not drained: queued=%d sent=%d", a.QueuedRetries(), len(link.sent))
		}
		a.OnResponse(link.sent[1].Response())
	})
	k.Run()

	if len(got) != 1 || got[0].Poison {
		t.Fatalf("completions = %+v", got)
	}
}

func TestARQProbePassThrough(t *testing.T) {
	k := sim.NewKernel()
	link := &fakeLink{space: 8}
	a := NewARQ(k, link, arqConfig())
	var got []ocapi.Packet
	a.OnComplete = func(p ocapi.Packet) { got = append(got, p) }

	probe := ocapi.Packet{Op: ocapi.OpProbe, Tag: 0xFFFF0000, Src: 0, Dst: 1}
	if !a.TrySend(probe) {
		t.Fatal("probe refused")
	}
	if a.Outstanding() != 0 {
		t.Fatal("probe tracked by ARQ")
	}
	a.OnResponse(probe.Response())
	if len(got) != 1 || got[0].Op != ocapi.OpProbeResp {
		t.Fatalf("probe completion = %+v", got)
	}
	k.Run()
}

func TestARQConfigValidation(t *testing.T) {
	base := arqConfig()
	bad := []func(*ARQConfig){
		func(c *ARQConfig) { c.Timeout = 0 },
		func(c *ARQConfig) { c.MaxRetries = -1 },
		func(c *ARQConfig) { c.BackoffMult = 0.5 },
		func(c *ARQConfig) { c.BackoffCap = -1 },
		func(c *ARQConfig) { c.JitterFrac = 1 },
	}
	for i, mut := range bad {
		c := base
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
	}
	if err := DefaultARQConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

// TestARQRecycledTxnImmuneToStaleTimer pins the stale-timer immunity of a
// recycled entry: a transaction whose retry is acked returns its entry to
// the free list while the retry's own deadline would still be scheduled.
// Reusing the same tag immediately pops that same entry; the superseded
// deadline must never fire against it — neither retransmitting nor killing
// the new transaction, and never mutating the already-delivered response.
// (The timer wheel enforces this by construction: completion cancels the
// deadline for real, and the wheel's own generation guard inert-izes any
// id that survives into a recycled cell — see the sim.TimerWheel suite.)
func TestARQRecycledTxnImmuneToStaleTimer(t *testing.T) {
	k := sim.NewKernel()
	link := &fakeLink{space: 64}
	a := NewARQ(k, link, arqConfig()) // 10us timeout, x2 backoff, no jitter
	var got []ocapi.Packet
	a.OnComplete = func(p ocapi.Packet) { got = append(got, p) }

	// Transaction 1: attempt 0 is never answered; the 10us deadline
	// retransmits Seq 1 and arms a 20us deadline (fires at 30us).
	if !a.TrySend(readReq(1)) {
		t.Fatal("send refused")
	}
	k.At(sim.Time(11*sim.Microsecond), func() {
		var retry ocapi.Packet
		for _, p := range link.sent {
			if p.Seq == 1 {
				retry = p
			}
		}
		if retry.Op == ocapi.OpInvalid {
			t.Fatal("no retransmission by 11us")
		}
		a.OnResponse(retry.Response()) // completes + recycles the entry
		recycled := a.freeTxns
		if recycled == nil {
			t.Fatal("completed transaction was not recycled")
		}
		// Reuse the tag while the 30us timer still holds the old
		// generation of the very same entry.
		if !a.TrySend(readReq(1)) {
			t.Fatal("reissue refused")
		}
		if a.txns[1] != recycled {
			t.Fatal("reissue did not pop the recycled entry")
		}
	})
	// Transaction 2 times out at 21us and retransmits (Seq 1, deadline
	// 41us); ack that retry at 32us — after the stale 30us timer fired
	// against the live recycled entry.
	k.At(sim.Time(32*sim.Microsecond), func() {
		a.OnResponse(link.sent[len(link.sent)-1].Response())
	})
	k.Run()

	if len(got) != 2 {
		t.Fatalf("completions = %d, want 2", len(got))
	}
	for i, p := range got {
		if p.Op != ocapi.OpReadResp || p.Tag != 1 || p.Poison {
			t.Fatalf("completion %d mutated or poisoned: %+v", i, p)
		}
	}
	s := a.Stats()
	// Exactly two genuine timeouts (one per transaction's first attempt):
	// had the stale timer matched the recycled entry it would have added a
	// third timeout and retransmit, or killed the live transaction.
	if s.Tracked != 2 || s.Completed != 2 || s.Timeouts != 2 || s.Retransmits != 2 || s.Dead != 0 || s.StaleDrops != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if a.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", a.Outstanding())
	}
}

// TestARQTimeoutForBackoffGrowth pins the backoff schedule at high attempt
// counts: capped configurations saturate at BackoffCap, and the uncapped
// BackoffCap == 0 configuration must keep growing monotonically without
// ever overflowing into a non-positive delay (the float64 product is
// clamped before the Duration conversion).
func TestARQTimeoutForBackoffGrowth(t *testing.T) {
	k := sim.NewKernel()

	capped := arqConfig() // 10us timeout, x2 backoff, 10ms cap, no jitter
	a := NewARQ(k, &fakeLink{space: 64}, capped)
	for attempt := 0; attempt < 512; attempt++ {
		d := a.timeoutFor(attempt)
		if d <= 0 {
			t.Fatalf("capped: attempt %d delay %v <= 0", attempt, d)
		}
		if d > capped.BackoffCap {
			t.Fatalf("capped: attempt %d delay %v exceeds cap %v", attempt, d, capped.BackoffCap)
		}
	}
	// The first attempts double exactly until the cap.
	for attempt, want := 0, capped.Timeout; want <= capped.BackoffCap; attempt, want = attempt+1, 2*want {
		if d := a.timeoutFor(attempt); d != want {
			t.Fatalf("capped: attempt %d delay %v, want %v", attempt, d, want)
		}
	}

	uncapped := arqConfig()
	uncapped.BackoffCap = 0
	u := NewARQ(k, &fakeLink{space: 64}, uncapped)
	prev := sim.Duration(0)
	for attempt := 0; attempt < 2048; attempt++ {
		d := u.timeoutFor(attempt)
		if d <= 0 {
			t.Fatalf("uncapped: attempt %d delay %v <= 0 (overflow)", attempt, d)
		}
		if d < prev {
			t.Fatalf("uncapped: attempt %d delay %v < previous %v (non-monotonic)", attempt, d, prev)
		}
		prev = d
	}
	// Saturated delays must still be armable: the kernel accepts them
	// (heap fallback beyond the wheel span) rather than panicking.
	id := k.ArmTimer(u.timeoutFor(2048), u, 0)
	if !k.CancelTimer(id) {
		t.Fatal("saturated backoff delay not armable/cancellable")
	}

	// Jitter at the saturation point keeps the delay positive and finite.
	j := arqConfig()
	j.BackoffCap = 0
	j.JitterFrac = 0.5
	aj := NewARQ(k, &fakeLink{space: 64}, j)
	for attempt := 2040; attempt < 2060; attempt++ {
		if d := aj.timeoutFor(attempt); d <= 0 {
			t.Fatalf("jittered uncapped: attempt %d delay %v <= 0", attempt, d)
		}
	}
}
