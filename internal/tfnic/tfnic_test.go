package tfnic

import (
	"testing"
	"testing/quick"

	"thymesim/internal/axis"
	"thymesim/internal/dram"
	"thymesim/internal/inject"
	"thymesim/internal/ocapi"
	"thymesim/internal/sim"
)

func TestTranslatorBasics(t *testing.T) {
	var tr Translator
	w := Window{BorrowerBase: 0x1000, LenderBase: 0x8000, Size: 0x1000, LenderNode: 2}
	if err := tr.AddWindow(w); err != nil {
		t.Fatal(err)
	}
	node, addr, ok := tr.Translate(0x1080)
	if !ok || node != 2 || addr != 0x8080 {
		t.Fatalf("translate = %d %#x %v", node, addr, ok)
	}
	if _, _, ok := tr.Translate(0x0FFF); ok {
		t.Fatal("below window translated")
	}
	if _, _, ok := tr.Translate(0x2000); ok {
		t.Fatal("past window translated")
	}
	// Edges.
	if _, a, ok := tr.Translate(0x1000); !ok || a != 0x8000 {
		t.Fatal("window base mistranslated")
	}
	if _, a, ok := tr.Translate(0x1FFF); !ok || a != 0x8FFF {
		t.Fatal("window last byte mistranslated")
	}
}

func TestTranslatorRejectsBadWindows(t *testing.T) {
	var tr Translator
	if err := tr.AddWindow(Window{BorrowerBase: 0, LenderBase: 0, Size: 0}); err == nil {
		t.Error("empty window accepted")
	}
	if err := tr.AddWindow(Window{BorrowerBase: 5, LenderBase: 0, Size: 128}); err == nil {
		t.Error("unaligned base accepted")
	}
	if err := tr.AddWindow(Window{BorrowerBase: 0, LenderBase: 0, Size: 100}); err == nil {
		t.Error("unaligned size accepted")
	}
	must := func(w Window) {
		if err := tr.AddWindow(w); err != nil {
			t.Fatal(err)
		}
	}
	must(Window{BorrowerBase: 0x1000, LenderBase: 0, Size: 0x1000})
	if err := tr.AddWindow(Window{BorrowerBase: 0x1800, LenderBase: 0, Size: 0x1000}); err == nil {
		t.Error("overlapping window accepted")
	}
	must(Window{BorrowerBase: 0x2000, LenderBase: 0, Size: 0x1000}) // adjacent OK
}

func TestTranslatorRemove(t *testing.T) {
	var tr Translator
	if err := tr.AddWindow(Window{BorrowerBase: 0x1000, LenderBase: 0, Size: 0x1000}); err != nil {
		t.Fatal(err)
	}
	if !tr.RemoveWindow(0x1000) {
		t.Fatal("remove failed")
	}
	if tr.RemoveWindow(0x1000) {
		t.Fatal("double remove succeeded")
	}
	if _, _, ok := tr.Translate(0x1000); ok {
		t.Fatal("translated after removal")
	}
	if len(tr.Windows()) != 0 {
		t.Fatal("windows not empty")
	}
}

// Property: translation is a bijection offset-preserving map inside each
// window and fails outside all windows.
func TestTranslatorOffsetProperty(t *testing.T) {
	f := func(off uint16) bool {
		var tr Translator
		w := Window{BorrowerBase: 0x10000, LenderBase: 0x50000, Size: 0x10000, LenderNode: 1}
		if err := tr.AddWindow(w); err != nil {
			return false
		}
		addr := w.BorrowerBase + uint64(off)
		_, la, ok := tr.Translate(addr)
		return ok && la-w.LenderBase == uint64(off)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// loopNICs wires a borrower and lender NIC back to back with ideal links
// (direct FIFO moves) and returns both plus the kernel.
func loopNICs(t *testing.T, gate axis.Gate) (*sim.Kernel, *NIC, *NIC) {
	t.Helper()
	k := sim.NewKernel()
	mem := dram.New(k, dram.Config{Channels: 2, AccessLatency: 50 * sim.Nanosecond, BandwidthBps: 20e9, QueueDepth: 16})
	b := New(k, DefaultConfig(0), gate, nil)
	l := New(k, DefaultConfig(1), nil, mem)
	// Ideal wire: anything in TxQ moves to the peer RxQ immediately.
	connect := func(tx, rx *axis.FIFO) {
		move := func() {
			for tx.Len() > 0 && rx.Space() > 0 {
				beat, _ := tx.Pop()
				rx.Push(beat)
			}
		}
		tx.OnData(move)
		rx.OnSpace(move)
	}
	connect(b.TxQ, l.RxQ)
	connect(l.TxQ, b.RxQ)
	return k, b, l
}

func TestNICReadRoundTrip(t *testing.T) {
	k, b, l := loopNICs(t, nil)
	if err := b.Translator().AddWindow(Window{BorrowerBase: 0x10000, LenderBase: 0x80000, Size: 0x10000, LenderNode: 1}); err != nil {
		t.Fatal(err)
	}
	var got ocapi.Packet
	b.OnDeliver = func(p ocapi.Packet) { got = p }
	k.At(0, func() {
		ok := b.TrySend(ocapi.Packet{
			Op: ocapi.OpReadBlock, Tag: 5, Addr: 0x10000 + 256,
			Size: ocapi.CacheLineSize, Src: 0, Dst: 1, Issued: 0,
		})
		if !ok {
			t.Error("send rejected")
		}
	})
	k.Run()
	if got.Op != ocapi.OpReadResp || got.Tag != 5 {
		t.Fatalf("response = %+v", got)
	}
	// Borrower-side translation: lender must have served 0x80000+256.
	if l.Stats().RequestsServed != 1 {
		t.Fatalf("lender served = %d", l.Stats().RequestsServed)
	}
	if b.Stats().TranslationFaults != 0 {
		t.Fatalf("faults = %d", b.Stats().TranslationFaults)
	}
	if b.Stats().ResponsesDelivered != 1 {
		t.Fatalf("delivered = %d", b.Stats().ResponsesDelivered)
	}
}

func TestNICTranslationFaultCounted(t *testing.T) {
	k, b, _ := loopNICs(t, nil)
	done := false
	b.OnDeliver = func(ocapi.Packet) { done = true }
	k.At(0, func() {
		b.TrySend(ocapi.Packet{Op: ocapi.OpReadBlock, Tag: 1, Addr: 0xdead00, Size: ocapi.CacheLineSize, Src: 0, Dst: 1})
	})
	k.Run()
	if b.Stats().TranslationFaults != 1 {
		t.Fatalf("faults = %d", b.Stats().TranslationFaults)
	}
	if !done {
		t.Fatal("unmapped request not served at raw address")
	}
}

func TestNICWriteAck(t *testing.T) {
	k, b, l := loopNICs(t, nil)
	var got ocapi.Packet
	b.OnDeliver = func(p ocapi.Packet) { got = p }
	k.At(0, func() {
		b.TrySend(ocapi.Packet{Op: ocapi.OpWriteBlock, Tag: 9, Addr: 0, Size: ocapi.CacheLineSize, Src: 0, Dst: 1})
	})
	k.Run()
	if got.Op != ocapi.OpWriteAck || got.Tag != 9 {
		t.Fatalf("ack = %+v", got)
	}
	if l.Stats().RequestsServed != 1 {
		t.Fatal("write not served")
	}
}

func TestNICProbeServedWithoutMemory(t *testing.T) {
	k, b, l := loopNICs(t, nil)
	var got ocapi.Packet
	b.OnDeliver = func(p ocapi.Packet) { got = p }
	k.At(0, func() {
		b.TrySend(ocapi.Packet{Op: ocapi.OpProbe, Tag: 1, Src: 0, Dst: 1})
	})
	k.Run()
	if got.Op != ocapi.OpProbeResp {
		t.Fatalf("probe response = %+v", got)
	}
	if l.Stats().ProbesServed != 1 {
		t.Fatal("probe not counted")
	}
}

func TestNICInjectorThrottlesRequests(t *testing.T) {
	gate := inject.NewPeriodGate(100, inject.DefaultFPGACycle) // 400ns slots
	k, b, _ := loopNICs(t, gate)
	delivered := 0
	b.OnDeliver = func(ocapi.Packet) { delivered++ }
	const n = 50
	k.At(0, func() {
		for i := 0; i < n; i++ {
			if !b.TrySend(ocapi.Packet{Op: ocapi.OpReadBlock, Tag: uint32(i), Addr: uint64(i) * 128, Size: ocapi.CacheLineSize, Src: 0, Dst: 1}) {
				t.Fatal("cmdQ overflow")
			}
		}
	})
	end := k.Run()
	if delivered != n {
		t.Fatalf("delivered = %d", delivered)
	}
	// The injector bounds egress to one request per 400ns.
	minTime := sim.Time((n - 1) * 400 * int(sim.Nanosecond))
	if end < minTime {
		t.Fatalf("completed at %v, injector floor %v", end, minTime)
	}
	if b.InjectorTransfers() != n {
		t.Fatalf("injector transfers = %d", b.InjectorTransfers())
	}
}

func TestNICBackpressureWhenCmdQFull(t *testing.T) {
	cfg := DefaultConfig(0)
	cfg.QueueDepth = 2
	k := sim.NewKernel()
	gate := inject.NewPeriodGate(1000000, inject.DefaultFPGACycle) // ~never releases
	b := New(k, cfg, gate, nil)
	sent := 0
	k.At(0, func() {
		for i := 0; i < 10; i++ {
			if b.TrySend(ocapi.Packet{Op: ocapi.OpReadBlock, Tag: uint32(i), Addr: 0, Size: ocapi.CacheLineSize, Src: 0, Dst: 1}) {
				sent++
			}
		}
	})
	k.RunUntil(sim.Time(sim.Microsecond))
	if sent >= 10 {
		t.Fatalf("sent = %d, expected backpressure", sent)
	}
}

func TestNICResponsesBypassInjector(t *testing.T) {
	// A lender NIC with a pathological injector gate still returns
	// responses promptly: the injector only gates the request class.
	k := sim.NewKernel()
	mem := dram.New(k, dram.Config{Channels: 1, AccessLatency: 10 * sim.Nanosecond, BandwidthBps: 100e9, QueueDepth: 8})
	blockedGate := inject.NewPeriodGate(1_000_000, inject.DefaultFPGACycle)
	l := New(k, DefaultConfig(1), blockedGate, mem)
	// Push a request directly into the lender's RxQ, as if off the wire.
	k.At(0, func() {
		p := &ocapi.Packet{Op: ocapi.OpReadBlock, Tag: 3, Addr: 0, Size: ocapi.CacheLineSize, Src: 0, Dst: 1}
		l.RxQ.Push(axis.Beat{Bytes: p.WireBytes(), Dest: 0, Meta: p})
	})
	end := k.RunUntil(sim.Time(10 * sim.Microsecond))
	if l.TxQ.Len() != 1 {
		t.Fatalf("response not egressed (TxQ=%d) by %v", l.TxQ.Len(), end)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{FPGACycle: 0, PipelineLatency: 1, QueueDepth: 1},
		{FPGACycle: 1, PipelineLatency: -1, QueueDepth: 1},
		{FPGACycle: 1, PipelineLatency: 1, QueueDepth: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := DefaultConfig(0).Validate(); err != nil {
		t.Error(err)
	}
}

// A request corrupted on the wire must be rejected by the lender's CRC
// check with a nack, never executed against memory.
func TestNICNacksCorruptRequests(t *testing.T) {
	// BER 0.5 over a 46-byte request makes corruption a near-certainty.
	gate := inject.NewBitErrorGate(nil, 0.5, sim.NewRand(3))
	k, b, l := loopNICs(t, gate)
	var got []ocapi.Packet
	b.OnDeliver = func(p ocapi.Packet) { got = append(got, p) }
	const n = 20
	k.At(0, func() {
		for i := 0; i < n; i++ {
			b.TrySend(ocapi.Packet{
				Op: ocapi.OpReadBlock, Tag: uint32(i), Addr: uint64(i) * ocapi.CacheLineSize,
				Size: ocapi.CacheLineSize, Src: 0, Dst: 1,
			})
		}
	})
	k.Run()
	if len(got) != n {
		t.Fatalf("deliveries = %d, want %d", len(got), n)
	}
	for _, p := range got {
		if p.Op != ocapi.OpNack || !p.Poison {
			t.Fatalf("delivery = %+v, want poisoned nack", p)
		}
	}
	if l.Stats().NacksSent != n || l.Stats().RequestsServed != 0 {
		t.Fatalf("lender stats = %+v", l.Stats())
	}
}

// TestTrySendRoutesByWindowLender is the regression test for the latent
// single-pair assumption where TrySend translated the address but dropped
// the window's lender node, so every block op went to the backend's
// statically stamped destination. With windows on different lenders, the
// packet destination must follow the address.
func TestTrySendRoutesByWindowLender(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, DefaultConfig(0), nil, nil)
	must := func(w Window) {
		if err := n.Translator().AddWindow(w); err != nil {
			t.Fatal(err)
		}
	}
	must(Window{BorrowerBase: 0x10_000, LenderBase: 0x1000, Size: 0x1000, LenderNode: 3})
	must(Window{BorrowerBase: 0x20_000, LenderBase: 0x2000, Size: 0x1000, LenderNode: 7})

	send := func(addr uint64) {
		ok := n.TrySend(ocapi.Packet{
			Op: ocapi.OpReadBlock, Tag: uint32(addr >> 12), Addr: addr,
			Size: ocapi.CacheLineSize, Src: 0, Dst: 1, // stale pair destination
		})
		if !ok {
			t.Fatalf("TrySend(%#x) rejected", addr)
		}
	}
	send(0x10_000) // window 1 -> lender node 3
	send(0x20_080) // window 2 -> lender node 7
	k.Run()

	var got []int
	for {
		b, ok := n.TxQ.Pop()
		if !ok {
			break
		}
		p := b.Meta.(*ocapi.Packet)
		got = append(got, int(p.Dst))
	}
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("egress destinations = %v, want [3 7]", got)
	}

	// Untranslated traffic keeps its stamped destination (and counts a
	// fault), preserving the pre-pool behaviour for unmapped addresses.
	send(0xFFF_000)
	k.Run()
	b, ok := n.TxQ.Pop()
	if !ok {
		t.Fatal("untranslated request did not egress")
	}
	if p := b.Meta.(*ocapi.Packet); p.Dst != 1 {
		t.Fatalf("untranslated request rerouted to %d", p.Dst)
	}
	if n.Stats().TranslationFaults != 1 {
		t.Fatalf("TranslationFaults = %d, want 1", n.Stats().TranslationFaults)
	}
}
