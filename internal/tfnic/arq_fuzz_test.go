package tfnic

import (
	"testing"

	"thymesim/internal/ocapi"
	"thymesim/internal/sim"
)

// FuzzARQResponseStream feeds the ARQ layer an adversarial interleaving of
// sends, genuine responses, duplicate/stale/wrapped sequence numbers,
// nacks, corrupt responses, unknown tags, and NIC space churn. Whatever the
// script, the accounting invariants must hold once the kernel drains:
// every tracked transaction resolves exactly once (completed or dead),
// nothing stays outstanding, and completions only fire for live tags.
func FuzzARQResponseStream(f *testing.F) {
	// Seed corpus: each byte is one action (see the switch below).
	f.Add([]byte{0, 8, 1, 9, 1})              // two sends, two responses
	f.Add([]byte{0, 3, 3, 3})                 // nack storm to death
	f.Add([]byte{0, 2, 1, 2})                 // stale around a completion
	f.Add([]byte{0, 4, 4, 4, 1})              // corrupt, recover on retry
	f.Add([]byte{0, 7, 7, 1})                 // wrapped sequence numbers
	f.Add([]byte{0, 8, 16, 24, 32, 5, 6, 1})  // tag churn + unknown + free
	f.Add([]byte{0, 0, 1, 0, 1})              // reuse a tag after completion
	f.Add([]byte{6, 6, 0, 8, 16, 24, 32, 40}) // overflow the command queue

	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 512 {
			t.Skip("bounded scripts keep the timer cascade small")
		}
		k := sim.NewKernel()
		link := &fakeLink{space: 3} // tight: forces retryQ traffic
		a := NewARQ(k, link, arqConfig())

		// Mirror of the tracked set, maintained from the outside: TrySend
		// successes add, completions remove. The ARQ must agree with it.
		live := map[uint32]bool{}
		completions := 0
		a.OnComplete = func(p ocapi.Packet) {
			if !live[p.Tag] {
				t.Fatalf("completion for tag %d which is not live", p.Tag)
			}
			delete(live, p.Tag)
			completions++
		}

		// minLive picks the lowest live tag — deterministic regardless of
		// map iteration order.
		minLive := func() (uint32, bool) {
			found := false
			var min uint32
			for tag := range live {
				if !found || tag < min {
					min, found = tag, true
				}
			}
			return min, found
		}
		// respond builds a response to tag's current live attempt, with the
		// sequence number offset by dSeq (0 = genuine).
		respond := func(tag uint32, dSeq uint16, nack, corrupt bool) {
			tx, ok := a.txns[tag]
			if !ok {
				return
			}
			p := tx.pkt
			p.Seq = uint16(tx.attempts-1) + dSeq
			if nack {
				p.NackInPlace()
			} else {
				p.RespondInPlace()
			}
			p.Corrupt = corrupt
			a.OnResponse(p)
		}

		// One action per byte, at strictly increasing instants so ARQ
		// timeouts (10us, then backoff) interleave with the script.
		for i, b := range script {
			b := b
			k.At(sim.Time(i+1)*sim.Time(3*sim.Microsecond), func() {
				switch b % 8 {
				case 0: // send a new transaction (tag derived from the byte)
					tag := uint32(b)
					if live[tag] {
						return // TrySend panics on live tags by contract
					}
					if a.TrySend(readReq(tag)) {
						live[tag] = true
					}
				case 1: // genuine response to the lowest live tag
					if tag, ok := minLive(); ok {
						respond(tag, 0, false, false)
					}
				case 2: // stale response: superseded attempt number
					if tag, ok := minLive(); ok {
						respond(tag, 1, false, false)
					}
				case 3: // lender nack
					if tag, ok := minLive(); ok {
						respond(tag, 0, true, false)
					}
				case 4: // response damaged in flight
					if tag, ok := minLive(); ok {
						respond(tag, 0, false, true)
					}
				case 5: // response for a tag that was never ours
					p := readReq(0xDEAD0000 + uint32(b))
					p.RespondInPlace()
					a.OnResponse(p)
				case 6: // NIC command-queue space frees
					link.free(1)
				case 7: // wrapped sequence number (wildly stale duplicate)
					if tag, ok := minLive(); ok {
						respond(tag, 0x8000, false, false)
					}
				}
			})
		}
		// After the script, open the floodgates so queued retransmissions
		// can drain and every survivor marches to completion or death.
		k.At(sim.Time(len(script)+2)*sim.Time(3*sim.Microsecond), func() {
			link.free(1 << 20)
		})
		k.Run()

		st := a.Stats()
		if a.Outstanding() != 0 {
			t.Fatalf("%d transactions never resolved (stats %+v)", a.Outstanding(), st)
		}
		if a.QueuedRetries() != 0 {
			t.Fatalf("%d retransmissions stuck in the queue", a.QueuedRetries())
		}
		if len(live) != 0 {
			t.Fatalf("mirror still has %d live tags the ARQ forgot", len(live))
		}
		if st.Tracked != st.Completed+st.Dead {
			t.Fatalf("accounting leak: tracked %d != completed %d + dead %d",
				st.Tracked, st.Completed, st.Dead)
		}
		if uint64(completions) != st.Tracked {
			t.Fatalf("delivered %d completions for %d tracked transactions",
				completions, st.Tracked)
		}
	})
}
