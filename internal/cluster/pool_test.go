package cluster

import (
	"testing"

	"thymesim/internal/obs"
	"thymesim/internal/ocapi"
	"thymesim/internal/pool"
	"thymesim/internal/sim"
	"thymesim/internal/tfnic"
)

// poolConfig returns a small N×M pool for tests: least-loaded placement
// and a modest per-lender reservation so attaches spread deterministically.
func poolConfig(borrowers, lenders int) PoolConfig {
	cfg := DefaultPoolConfig(borrowers, lenders, 1)
	cfg.Placement = pool.LeastLoaded{}
	cfg.LenderCapacity = 1 << 30
	return cfg
}

// TestPoolPairMatchesTestbed pins the compatibility contract: the 1×1 pool
// with the default pairing IS the two-node testbed — same RTT, same lender
// window, fills served by the paired lender's DRAM.
func TestPoolPairMatchesTestbed(t *testing.T) {
	tb := NewTestbed(DefaultConfig(1))
	regions := tb.Pool().Regions(0)
	if len(regions) != 1 {
		t.Fatalf("testbed pool has %d regions", len(regions))
	}
	r := regions[0]
	if r.Base != RemoteBase || r.Segment.Base != LenderBase || r.Size != tb.Config().WindowSize {
		t.Fatalf("testbed region %+v does not match the fixed window", r)
	}
	if got := tb.Pool().Lenders[0].Alloc.Allocated(); got != tb.Config().WindowSize {
		t.Fatalf("lender reservation carved %d bytes", got)
	}
	h := tb.NewRemoteHierarchy()
	tb.K.At(0, func() { h.Access(tb.RemoteAddr(0), 8, false, nil) })
	tb.K.Run()
	if tb.LenderMem.Reads() != 1 {
		t.Fatalf("lender reads = %d", tb.LenderMem.Reads())
	}
}

// TestPoolFanoutAcrossLenders drives one borrower with two regions placed
// on different lenders and checks that fills fan out by address: each
// lender's DRAM serves exactly the lines of its own region.
func TestPoolFanoutAcrossLenders(t *testing.T) {
	p := NewPool(poolConfig(2, 3))
	r0, err := p.Attach(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := p.Attach(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if r0.Lender == r1.Lender {
		t.Fatalf("least-loaded placed both regions on lender %d", r0.Lender)
	}
	b := p.Borrowers[0]
	h := b.NewRemoteHierarchy()
	const lines = 16
	done := 0
	p.K.At(0, func() {
		for i := 0; i < lines; i++ {
			off := uint64(i) * ocapi.CacheLineSize
			h.Access(r0.Addr(off), 8, false, func() { done++ })
			h.Access(r1.Addr(off), 8, false, func() { done++ })
		}
	})
	p.K.Run()
	if done != 2*lines {
		t.Fatalf("completed %d of %d accesses", done, 2*lines)
	}
	if got := p.Lenders[r0.Lender].Mem.Reads(); got != lines {
		t.Fatalf("lender %d served %d reads, want %d", r0.Lender, got, lines)
	}
	if got := p.Lenders[r1.Lender].Mem.Reads(); got != lines {
		t.Fatalf("lender %d served %d reads, want %d", r1.Lender, got, lines)
	}
	for l := 0; l < 3; l++ {
		if l != r0.Lender && l != r1.Lender && p.Lenders[l].Mem.Reads() != 0 {
			t.Fatalf("idle lender %d served %d reads", l, p.Lenders[l].Mem.Reads())
		}
	}
	if faults := b.NIC.Stats().TranslationFaults; faults != 0 {
		t.Fatalf("translation faults: %d", faults)
	}
}

// TestPoolRegionLifecycle exercises attach → grow → detach against the
// lender allocators: growth extends the window in place, detach returns
// the carving, and a drained lender coalesces back to one free span.
func TestPoolRegionLifecycle(t *testing.T) {
	p := NewPool(poolConfig(1, 2))
	r, err := p.Attach(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := p.Grow(r, 2<<20)
	if err != nil {
		t.Fatal(err)
	}
	if grown.Base != r.Base || grown.Size != 2<<20 || grown.Lender != r.Lender {
		t.Fatalf("grow returned %+v", grown)
	}
	// The grown tail is reachable and served by the same lender.
	h := p.Borrowers[0].NewRemoteHierarchy()
	p.K.At(0, func() { h.Access(grown.Addr(grown.Size-ocapi.CacheLineSize), 8, false, nil) })
	p.K.Run()
	if got := p.Lenders[grown.Lender].Mem.Reads(); got != 1 {
		t.Fatalf("lender %d reads = %d", grown.Lender, got)
	}
	// Growing past the reservation fails crisply.
	if _, err := p.Grow(grown, p.Config().lenderCapacity()+1<<20); err == nil {
		t.Fatal("grow beyond the lender reservation accepted")
	}
	// Stale handles are rejected: the pre-grow region no longer exists.
	if err := p.Detach(r); err == nil {
		t.Fatal("detach of stale (pre-grow) region accepted")
	}
	if err := p.Detach(grown); err != nil {
		t.Fatal(err)
	}
	if n := len(p.Regions(0)); n != 0 {
		t.Fatalf("%d regions left after detach", n)
	}
	a := p.Lenders[grown.Lender].Alloc
	if a.Allocated() != 0 {
		t.Fatalf("lender still has %d bytes carved after detach", a.Allocated())
	}
	if spans := a.FreeSpans(); len(spans) != 1 || spans[0].Size != a.Capacity() {
		t.Fatalf("drained lender free list not coalesced: %+v", spans)
	}
	// The window is gone: the address no longer translates.
	if _, _, ok := p.Borrowers[0].NIC.Translator().Translate(grown.Base); ok {
		t.Fatal("detached region still translates")
	}
}

// TestPoolExactlyOnceAccounting is the fan-out accounting audit: with ARQ
// and a fill deadline configured, every block op the borrower port issued
// is accounted exactly once — tracked by ARQ or expired before entering
// the NIC — even when fills spread across two lenders.
func TestPoolExactlyOnceAccounting(t *testing.T) {
	cfg := poolConfig(1, 2)
	arq := tfnic.DefaultARQConfig()
	cfg.Base.ARQ = &arq
	cfg.Base.FillDeadline = 200 * sim.Microsecond
	p := NewPool(cfg)
	r0, err := p.Attach(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := p.Attach(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if r0.Lender == r1.Lender {
		t.Fatalf("both regions on lender %d", r0.Lender)
	}
	b := p.Borrowers[0]
	h := b.NewRemoteHierarchy()
	const lines = 32
	p.K.At(0, func() {
		for i := 0; i < lines; i++ {
			off := uint64(i) * ocapi.CacheLineSize
			h.Access(r0.Addr(off), 8, i%2 == 0, nil)
			h.Access(r1.Addr(off), 8, i%2 == 1, nil)
		}
	})
	p.K.Run()
	be := b.Backend()
	issued := be.Reads() + be.Writes()
	st := b.ARQ.Stats()
	if issued != st.Tracked+be.ExpiredUnsent() {
		t.Fatalf("exactly-once violation: port completed %d ops, ARQ tracked %d + expired-unsent %d",
			issued, st.Tracked, be.ExpiredUnsent())
	}
	if st.Tracked != st.Completed+st.Dead {
		t.Fatalf("ARQ accounting: tracked %d != completed %d + dead %d", st.Tracked, st.Completed, st.Dead)
	}
	if p.Lenders[0].Mem.Reads()+p.Lenders[0].Mem.Writes() == 0 ||
		p.Lenders[1].Mem.Reads()+p.Lenders[1].Mem.Writes() == 0 {
		t.Fatal("fills did not fan across both lenders")
	}
}

// TestPoolManyBorrowers drives an 8×4 pool end to end: every borrower
// attaches through least-loaded placement (two regions per lender) and
// streams reads concurrently; everything completes across the shared
// switch without starving any node.
func TestPoolManyBorrowers(t *testing.T) {
	const B, M = 8, 4
	p := NewPool(poolConfig(B, M))
	if p.Switch == nil {
		t.Fatal("multi-node pool has no switch")
	}
	regions := make([]Region, B)
	perLender := make([]int, M)
	for i := 0; i < B; i++ {
		r, err := p.Attach(i, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		regions[i] = r
		perLender[r.Lender]++
	}
	for l, n := range perLender {
		if n != B/M {
			t.Fatalf("lender %d serves %d regions, want %d", l, n, B/M)
		}
	}
	const lines = 64
	done := make([]int, B)
	for i := 0; i < B; i++ {
		i := i
		h := p.Borrowers[i].NewRemoteHierarchy()
		p.K.At(0, func() {
			for j := 0; j < lines; j++ {
				h.Access(regions[i].Addr(uint64(j)*ocapi.CacheLineSize), 8, false, func() { done[i]++ })
			}
		})
	}
	p.K.Run()
	for i := 0; i < B; i++ {
		if done[i] != lines {
			t.Fatalf("borrower %d completed %d of %d reads", i, done[i], lines)
		}
		if faults := p.Borrowers[i].NIC.Stats().TranslationFaults; faults != 0 {
			t.Fatalf("borrower %d translation faults: %d", i, faults)
		}
	}
	if p.Switch.Dropped() != 0 {
		t.Fatalf("switch dropped %d beats", p.Switch.Dropped())
	}
}

// TestPoolProbeAndCrashOverFabric checks the per-pair control plane on the
// switched fabric: a borrower probes a specific lender, loses it to a
// crash (probe deadline fires), and finds it again after restore.
func TestPoolProbeAndCrashOverFabric(t *testing.T) {
	p := NewPool(poolConfig(2, 2))
	b := p.Borrowers[1]
	target := p.Lenders[1]

	var okRTT sim.Duration
	crashSeen, restoredSeen := false, false
	deadline := 100 * sim.Microsecond

	p.K.At(0, func() {
		if !b.ProbeLender(target, deadline, func(ok bool, rtt sim.Duration) {
			if !ok {
				t.Error("healthy lender failed the probe")
			}
			okRTT = rtt
		}) {
			t.Error("probe not enqueued")
		}
	})
	p.K.At(sim.Time(200*sim.Microsecond), func() {
		p.CrashLender(1)
		if !b.ProbeLender(target, deadline, func(ok bool, rtt sim.Duration) {
			crashSeen = !ok
		}) {
			t.Error("probe not enqueued")
		}
	})
	p.K.At(sim.Time(400*sim.Microsecond), func() {
		p.RestoreLender(1, false)
		if !b.ProbeLender(target, deadline, func(ok bool, rtt sim.Duration) {
			restoredSeen = ok
		}) {
			t.Error("probe not enqueued")
		}
	})
	p.K.Run()
	if okRTT == 0 {
		t.Fatal("healthy probe never completed")
	}
	if !crashSeen {
		t.Fatal("probe to crashed lender did not miss its deadline")
	}
	if !restoredSeen {
		t.Fatal("probe after restore failed")
	}
	if b.StaleProbeResponses() != 0 {
		t.Fatalf("stale probe responses: %d", b.StaleProbeResponses())
	}
}

// TestPoolHierarchyVariants drives every hierarchy flavour a pool node
// offers — prioritized remote, borrower-local, lender-local — with tracing
// enabled, and checks each lands on the right memory.
func TestPoolHierarchyVariants(t *testing.T) {
	p := NewPool(poolConfig(2, 2))
	tr := p.EnableTracing(obs.Config{Sample: 1})
	if tr == nil || p.Tracer() != tr {
		t.Fatal("tracer not installed")
	}
	if p.Policy().Name() != (pool.LeastLoaded{}).Name() {
		t.Fatalf("policy = %s", p.Policy().Name())
	}
	if p.Kernel() != p.K {
		t.Fatal("Kernel() mismatch")
	}
	r, err := p.Attach(1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	b := p.Borrowers[1]
	other := 1 - r.Lender
	hRemote := b.NewRemoteHierarchyPrio(3)
	hLocal := b.NewLocalHierarchy()
	hLender := p.NewLenderLocalHierarchy(other)
	done := 0
	p.K.At(0, func() {
		hRemote.Access(r.Addr(0), 8, false, func() { done++ })
		hLocal.Access(0x1000, 8, true, func() { done++ })
		hLender.Access(0x2000, 8, false, func() { done++ })
	})
	p.K.Run()
	if done != 3 {
		t.Fatalf("completed %d of 3 accesses", done)
	}
	if got := p.Lenders[r.Lender].Mem.Reads(); got != 1 {
		t.Fatalf("remote lender reads = %d", got)
	}
	// The write-back LLC fills on a write miss; the dirty line stays cached.
	if got := b.Mem.Reads(); got != 1 {
		t.Fatalf("borrower-local fills = %d", got)
	}
	if got := p.Lenders[other].Mem.Reads(); got != 1 {
		t.Fatalf("lender-local fills = %d", got)
	}
	// The prio hierarchy created a second backend on the borrower.
	if got := len(b.Backends()); got != 2 {
		t.Fatalf("borrower has %d backends", got)
	}
}

// TestPoolProberAdapter checks the control-plane adapter (SendProbe and
// deadline Probe against an arbitrary pair) and that a lender brownout
// stretches fill latency through SetLenderSlowdown.
func TestPoolProberAdapter(t *testing.T) {
	p := NewPool(poolConfig(2, 2))
	pp := p.Prober(1, 0)
	if pp.Kernel() != p.K {
		t.Fatal("prober kernel mismatch")
	}
	var plain, deadline sim.Duration
	p.K.At(0, func() {
		if !pp.SendProbe(func(rtt sim.Duration) { plain = rtt }) {
			t.Error("SendProbe not enqueued")
		}
	})
	p.K.At(sim.Time(100*sim.Microsecond), func() {
		if !pp.Probe(sim.Millisecond, func(ok bool, rtt sim.Duration) {
			if !ok {
				t.Error("healthy probe missed a 1ms deadline")
			}
			deadline = rtt
		}) {
			t.Error("Probe not enqueued")
		}
	})
	// Brownout: the same fill takes longer once the lender's memory slows.
	r, err := p.Attach(1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	h := p.Borrowers[1].NewRemoteHierarchy()
	var nominal, slowed sim.Duration
	start2 := sim.Time(400 * sim.Microsecond)
	p.K.At(sim.Time(200*sim.Microsecond), func() {
		t0 := p.K.Now()
		h.Access(r.Addr(0), 8, false, func() { nominal = sim.Duration(p.K.Now() - t0) })
	})
	p.K.At(sim.Time(300*sim.Microsecond), func() { p.SetLenderSlowdown(r.Lender, 8) })
	p.K.At(start2, func() {
		t0 := p.K.Now()
		h.Access(r.Addr(ocapi.CacheLineSize), 8, false, func() { slowed = sim.Duration(p.K.Now() - t0) })
	})
	p.K.Run()
	if plain == 0 || deadline == 0 {
		t.Fatalf("probes did not complete (plain %v, deadline %v)", plain, deadline)
	}
	if nominal == 0 || slowed <= nominal {
		t.Fatalf("brownout fill %v not above nominal %v", slowed, nominal)
	}
}

// TestPoolLocalityPlacement pins the rack metric end to end: with two
// racks, locality placement keeps a borrower's region in its own rack
// while least-loaded would have spread further.
func TestPoolLocalityPlacement(t *testing.T) {
	cfg := poolConfig(2, 4)
	cfg.Placement = pool.Locality{}
	cfg.RackSize = 3 // rack 0: borrowers 0,1 + lender 0; rack 1: lenders 1-3
	p := NewPool(cfg)
	for i := 0; i < 2; i++ {
		r, err := p.Attach(i, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if r.Lender != 0 {
			t.Fatalf("borrower %d placed cross-rack on lender %d", i, r.Lender)
		}
	}
	// Rack 0's lender is full once capacity runs out; locality spills to
	// the next rack instead of failing.
	cfg2 := poolConfig(1, 2)
	cfg2.Placement = pool.Locality{}
	cfg2.RackSize = 2
	cfg2.LenderCapacity = 1 << 20
	p2 := NewPool(cfg2)
	r0, err := p2.Attach(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := p2.Attach(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if r0.Lender != 0 || r1.Lender != 1 {
		t.Fatalf("locality spill placed %d then %d", r0.Lender, r1.Lender)
	}
}

// TestTestbedSurface covers the Testbed facade over the 1×1 pool: gate,
// tracing, prioritized and lender-local hierarchies.
func TestTestbedSurface(t *testing.T) {
	tb := NewTestbed(DefaultConfig(1))
	if tb.Gate() == nil {
		t.Fatal("testbed has no gate")
	}
	tr := tb.EnableTracing(obs.Config{Sample: 1})
	if tr == nil || tb.Tracer() != tr {
		t.Fatal("testbed tracer not installed")
	}
	hPrio := tb.NewRemoteHierarchyPrio(1)
	hLender := tb.NewLenderLocalHierarchy()
	done := 0
	tb.K.At(0, func() {
		hPrio.Access(tb.RemoteAddr(0), 8, false, func() { done++ })
		hLender.Access(0x3000, 8, true, func() { done++ })
	})
	tb.K.Run()
	if done != 2 {
		t.Fatalf("completed %d of 2", done)
	}
	// One remote fill plus one local write-allocate fill.
	if tb.LenderMem.Reads() != 2 {
		t.Fatalf("lender saw %d reads", tb.LenderMem.Reads())
	}
}

// TestRegionAddrBounds pins the Region.Addr guard.
func TestRegionAddrBounds(t *testing.T) {
	r := Region{Base: 0x1000, Size: 0x100}
	if got := r.Addr(0xff); got != 0x10ff {
		t.Fatalf("Addr = %#x", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range offset did not panic")
		}
	}()
	r.Addr(0x100)
}

// TestPoolConfigValidate pins the pool configuration surface.
func TestPoolConfigValidate(t *testing.T) {
	if err := DefaultPoolConfig(2, 2, 1).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultPoolConfig(0, 1, 1)
	if err := bad.Validate(); err == nil {
		t.Error("0 borrowers accepted")
	}
	bad = DefaultPoolConfig(1, 0, 1)
	if err := bad.Validate(); err == nil {
		t.Error("0 lenders accepted")
	}
	bad = DefaultPoolConfig(2, 2, 1)
	bad.LenderCapacity = 100
	if err := bad.Validate(); err == nil {
		t.Error("unaligned lender capacity accepted")
	}
}
