package cluster

import (
	"fmt"
	"strconv"

	"thymesim/internal/axis"
	"thymesim/internal/cache"
	"thymesim/internal/dram"
	"thymesim/internal/fabric"
	"thymesim/internal/inject"
	"thymesim/internal/memport"
	"thymesim/internal/metricsplane"
	"thymesim/internal/netlink"
	"thymesim/internal/obs"
	"thymesim/internal/ocapi"
	"thymesim/internal/pool"
	"thymesim/internal/sim"
	"thymesim/internal/tfnic"
)

// PoolConfig parameterizes a rack-scale memory pool: Borrowers compute
// nodes borrowing memory from Lenders memory nodes. The 1×1 pool with the
// default placement wires the paper's point-to-point testbed exactly;
// larger pools connect every node through a switched fabric.
type PoolConfig struct {
	Borrowers int
	Lenders   int
	// Base carries the per-node datapath parameters (NIC, DRAM, LLC,
	// link, ARQ, deadline). Period/Gate configure each borrower's
	// egress delay injector.
	Base Config
	// Placement chooses the lender for each attach (nil = pool.DefaultPair,
	// the paper's fixed pairing).
	Placement pool.Policy
	// LenderCapacity is each lender's carvable reservation in bytes
	// (0 = Base.WindowSize). Borrower windows are spaced LenderCapacity
	// apart in borrower physical space, so any region can grow to the
	// full reservation without colliding.
	LenderCapacity uint64
	// RackSize groups consecutive fabric node ids into racks for the
	// locality policy's distance metric (0 = everything in one rack).
	RackSize int
	// Switch overrides the derived fabric configuration (ignored by the
	// 1×1 pool, which has no switch).
	Switch *fabric.SwitchConfig
	// GateFor overrides the per-borrower injection gate; nil derives a
	// fresh PeriodGate per borrower (or uses Base.Gate for the 1×1 pool,
	// preserving the two-node testbed's behaviour).
	GateFor func(borrower int) axis.Gate
	// Shards selects intra-run parallelism: 0 or 1 runs the whole pool on
	// one kernel (the legacy path); >= 2 partitions the rack across that
	// many event kernels — the switch on shard 0, nodes round-robin over
	// the rest (capped at one shard per node plus the switch) — and the
	// node-to-switch cable propagation becomes the conservative lookahead
	// window. Results are byte-identical at any value: the cut FIFOs (the
	// switch input queues and NIC response queues) are sized past the
	// worst-case outstanding-tag population so cross-shard credit flow
	// control never engages, and cross-shard deliveries merge in wiring
	// order. The 1×1 pool has no fabric to cut and always runs legacy.
	Shards int
}

// DefaultPoolConfig returns an N×M pool of AC922-like nodes at the given
// injector PERIOD.
func DefaultPoolConfig(borrowers, lenders int, period int64) PoolConfig {
	return PoolConfig{
		Borrowers: borrowers,
		Lenders:   lenders,
		Base:      DefaultConfig(period),
	}
}

// Validate checks the configuration.
func (c PoolConfig) Validate() error {
	if c.Borrowers < 1 || c.Lenders < 1 {
		return fmt.Errorf("cluster: pool of %d borrowers x %d lenders", c.Borrowers, c.Lenders)
	}
	if c.RackSize < 0 {
		return fmt.Errorf("cluster: RackSize = %d", c.RackSize)
	}
	if c.Shards < 0 {
		return fmt.Errorf("cluster: Shards = %d", c.Shards)
	}
	if c.Shards >= 2 && c.Base.LinkPropagation <= 0 {
		return fmt.Errorf("cluster: sharding requires positive link propagation (it is the lookahead)")
	}
	if c.LenderCapacity%ocapi.CacheLineSize != 0 {
		return fmt.Errorf("cluster: LenderCapacity %d not line-aligned", c.LenderCapacity)
	}
	if c.Switch != nil {
		if err := c.Switch.Validate(); err != nil {
			return err
		}
		if got, want := c.Switch.Ports, c.Borrowers+c.Lenders; got < want {
			return fmt.Errorf("cluster: switch has %d ports for %d nodes", got, want)
		}
	}
	return c.Base.Validate()
}

// lenderCapacity returns the effective per-lender reservation.
func (c PoolConfig) lenderCapacity() uint64 {
	if c.LenderCapacity != 0 {
		return c.LenderCapacity
	}
	return c.Base.WindowSize
}

// Region is one borrower-attached remote-memory region: borrower physical
// addresses [Base, Base+Size) served by one lender's segment.
type Region struct {
	Borrower int
	// Lender is the pool-local lender index serving the region.
	Lender int
	// Base and Size describe the borrower-side window.
	Base uint64
	Size uint64
	// Segment is the lender-side carving backing the window.
	Segment pool.Segment
}

// Addr maps an offset within the region to a borrower physical address.
func (r Region) Addr(offset uint64) uint64 {
	if offset >= r.Size {
		panic(fmt.Sprintf("cluster: offset %#x beyond region %#x", offset, r.Size))
	}
	return r.Base + offset
}

// BorrowerNode is one compute node of the pool: a CPU-side port feeding a
// gated NIC, local DRAM for baselines, and the per-node control plane
// (probe waiters, tag ranges, attached regions).
type BorrowerNode struct {
	p *Pool
	// ID is the fabric node id (== switch port); K the kernel the node's
	// components live on (the pool kernel, or the node's shard).
	ID  int
	K   *sim.Kernel
	NIC *tfnic.NIC
	Mem *dram.DRAM
	// ARQ is the node's retransmission layer (nil unless Base.ARQ set).
	ARQ  *tfnic.ARQ
	gate axis.Gate

	backend   *memport.RemoteBackend
	backends  []*memport.RemoteBackend
	tagCursor uint32
	// sender is what backends send through: the ARQ layer when
	// configured, else the NIC directly.
	sender memport.Sender

	probeWaiters map[uint32]func(ocapi.Packet)
	probeCursor  uint32
	staleProbes  uint64

	nextWindow uint64
	regions    []Region
}

// LenderNode is one memory node: a NIC serving requests against its DRAM,
// and the allocator carving its reservation.
type LenderNode struct {
	// ID is the fabric node id; Index is the pool-local lender index; K
	// the kernel the node's components live on.
	ID    int
	Index int
	K     *sim.Kernel
	NIC   *tfnic.NIC
	Mem   *dram.DRAM
	Alloc *pool.Allocator
}

// Pool is the composed N-borrower × M-lender system: the node-graph
// generalization of the two-node Testbed.
type Pool struct {
	// K is the single event kernel (nil when the pool is sharded — use
	// NodeKernel / Run / StepTo instead, which work in both modes).
	K   *sim.Kernel
	cfg PoolConfig

	Borrowers []*BorrowerNode
	Lenders   []*LenderNode

	// Switch is the shared fabric (nil for the 1×1 pool); Link is the
	// 1×1 pool's point-to-point cable (nil otherwise).
	Switch *fabric.Switch
	Link   *netlink.Link
	// links holds each node's cable to the switch, indexed by port
	// (empty for the 1×1 pool); xlinks the same when the pool is sharded
	// and cables cross shard boundaries.
	links  []*netlink.Link
	xlinks []*netlink.CrossLink

	// sk coordinates the shard kernels (nil on the legacy path);
	// shardOf maps fabric node id to its shard.
	sk      *sim.ShardedKernel
	shardOf []int

	policy    pool.Policy
	regionsOn []int // live regions per lender, for placement views

	tracer *obs.Tracer
	plane  *metricsplane.Plane
}

// NewPool wires the node-graph. The 1×1 pool reproduces the two-node
// testbed's component graph exactly (same constructors, same order, no
// switch), which is what keeps the paper's CSVs byte-identical; larger
// pools attach every NIC to a shared switch, port i serving node i
// (borrowers first, then lenders).
func NewPool(cfg PoolConfig) *Pool {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	p := &Pool{cfg: cfg, regionsOn: make([]int, cfg.Lenders)}
	p.policy = cfg.Placement
	if p.policy == nil {
		p.policy = pool.DefaultPair{}
	}
	base := cfg.Base
	pair := cfg.Borrowers == 1 && cfg.Lenders == 1
	nodes := cfg.Borrowers + cfg.Lenders
	sharded := cfg.Shards >= 2 && !pair
	if !sharded {
		p.K = sim.NewKernel()
	}

	gateFor := cfg.GateFor
	if gateFor == nil {
		gateFor = func(int) axis.Gate {
			if pair && base.Gate != nil {
				return base.Gate
			}
			return inject.NewPeriodGate(base.Period, base.FPGACycle)
		}
	}

	nicCfg := func(id, queueScale int) tfnic.Config {
		return tfnic.Config{
			NodeID:          id,
			FPGACycle:       base.FPGACycle,
			PipelineLatency: base.NICPipeline,
			QueueDepth:      2 * base.TagSpace * queueScale,
			InjectClasses:   base.InjectClasses,
			Profile:         base.Profile,
		}
	}

	if pair {
		// The two-node testbed, constructor for constructor: borrower
		// memory, lender memory, both NICs, the point-to-point link.
		k := p.K
		b := &BorrowerNode{p: p, ID: BorrowerID, K: k, gate: gateFor(0)}
		b.Mem = dram.New(k, base.BorrowerDRAM)
		lMem := dram.New(k, base.LenderDRAM)
		b.NIC = tfnic.New(k, nicCfg(BorrowerID, 1), b.gate, nil)
		lNIC := tfnic.New(k, nicCfg(LenderID, 1), nil, lMem)
		p.Link = netlink.NewLink(k,
			b.NIC.TxQ, lNIC.RxQ,
			lNIC.TxQ, b.NIC.RxQ,
			base.LinkBandwidthBps, base.LinkPropagation)
		b.finishWiring()
		p.Borrowers = append(p.Borrowers, b)
		p.Lenders = append(p.Lenders, p.newLender(LenderID, 0, k, lNIC, lMem))
		p.EnableMetrics(base.Metrics)
		return p
	}

	swCfg := fabric.SwitchConfig{
		Ports:            nodes,
		LinkBandwidthBps: base.LinkBandwidthBps,
		LinkPropagation:  base.LinkPropagation,
		SwitchLatency:    300 * sim.Nanosecond,
		OutputQueue:      256,
		// The cut-sizing contract: each input queue absorbs the deepest
		// possible in-flight population (every borrower's full tag space
		// converging on one lender port, plus control-plane slack), so a
		// node-to-switch cable never backpressures. This holds in BOTH
		// modes — it is what makes sharded runs byte-identical to legacy
		// ones, since cross-shard credit flow control then never engages.
		InputQueue: 2*base.TagSpace*cfg.Borrowers + 64,
	}
	if cfg.Switch != nil {
		swCfg = *cfg.Switch
	}

	// Shard layout and plumbing. The switch owns shard 0; nodes go
	// round-robin over the remaining shards; every cable's streams are
	// created in node-id order so cross-shard merge keys — and therefore
	// results — do not depend on the shard count.
	var shardFor func(node int) *sim.Kernel
	var streamsFor func(node int) (toSwitch, toNode *sim.Stream)
	var swK *sim.Kernel
	if sharded {
		eff := cfg.Shards
		if eff > nodes+1 {
			eff = nodes + 1
		}
		p.sk = sim.NewShardedKernel(eff)
		p.shardOf = make([]int, nodes)
		swK = p.sk.Shard(0)
		shardPop := make([]int, eff)
		for n := 0; n < nodes; n++ {
			s := 1 + n%(eff-1)
			p.shardOf[n] = s
			shardPop[s]++
			p.sk.Connect(s, 0, swCfg.LinkPropagation)
			p.sk.Connect(0, s, swCfg.LinkPropagation)
		}
		shardFor = func(node int) *sim.Kernel { return p.sk.Shard(p.shardOf[node]) }
		streamsFor = func(node int) (*sim.Stream, *sim.Stream) {
			// Every node on a shard shares the pair's inbox ring with the
			// switch shard, so size it for the whole shard's worst-case
			// in-flight window: one outstanding tag window each way per
			// node plus barrier-round slack.
			s := p.shardOf[node]
			hint := (2*base.TagSpace + 64) * shardPop[s]
			return p.sk.NewStreamCap(s, 0, hint), p.sk.NewStreamCap(0, s, hint)
		}
	} else {
		swK = p.K
		shardFor = func(int) *sim.Kernel { return p.K }
	}

	attach := func(id int, nk *sim.Kernel, nic *tfnic.NIC) {
		ports := fabric.NICPorts{TxQ: nic.TxQ, RxQ: nic.RxQ}
		if sharded {
			ab, ba := streamsFor(id)
			p.xlinks = append(p.xlinks, p.Switch.AttachRemoteNIC(id, ports, nk, ab, ba))
			return
		}
		p.links = append(p.links, p.Switch.AttachNIC(id, ports))
	}

	p.Switch = fabric.NewSwitch(swK, swCfg)
	for i := 0; i < cfg.Borrowers; i++ {
		nk := shardFor(i)
		b := &BorrowerNode{p: p, ID: i, K: nk, gate: gateFor(i)}
		b.Mem = dram.New(nk, base.BorrowerDRAM)
		b.NIC = tfnic.New(nk, nicCfg(i, 1), b.gate, nil)
		attach(i, nk, b.NIC)
		b.finishWiring()
		p.Borrowers = append(p.Borrowers, b)
	}
	for l := 0; l < cfg.Lenders; l++ {
		id := cfg.Borrowers + l
		nk := shardFor(id)
		mem := dram.New(nk, base.LenderDRAM)
		// The lender's response queue must absorb every borrower's
		// outstanding tags at once, so depth scales with borrower count.
		nic := tfnic.New(nk, nicCfg(id, cfg.Borrowers), nil, mem)
		attach(id, nk, nic)
		p.Lenders = append(p.Lenders, p.newLender(id, l, nk, nic, mem))
	}
	p.EnableMetrics(base.Metrics)
	return p
}

// newLender builds the lender bookkeeping around its wired components.
func (p *Pool) newLender(id, index int, k *sim.Kernel, nic *tfnic.NIC, mem *dram.DRAM) *LenderNode {
	a, err := pool.NewAllocator(index, LenderBase, p.cfg.lenderCapacity(), ocapi.CacheLineSize)
	if err != nil {
		panic(err)
	}
	return &LenderNode{ID: id, Index: index, K: k, NIC: nic, Mem: mem, Alloc: a}
}

// finishWiring installs the borrower's control plane and shared backend
// once its NIC is cabled: probe routing, the ARQ layer when configured,
// and the first tag-range backend.
func (b *BorrowerNode) finishWiring() {
	base := b.p.cfg.Base
	b.probeWaiters = make(map[uint32]func(ocapi.Packet))
	b.sender = b.NIC
	if base.ARQ != nil {
		b.ARQ = tfnic.NewARQ(b.K, b.NIC, *base.ARQ)
		b.ARQ.OnComplete = b.route
		b.sender = b.ARQ
		b.NIC.OnDeliver = b.ARQ.OnResponse
	} else {
		b.NIC.OnDeliver = b.route
	}
	b.nextWindow = RemoteBase
	b.backend = b.newBackend()
}

// Config returns the pool configuration.
func (p *Pool) Config() PoolConfig { return p.cfg }

// Kernel returns the simulation kernel (nil when sharded).
func (p *Pool) Kernel() *sim.Kernel { return p.K }

// Sharded reports whether the pool runs on partitioned kernels.
func (p *Pool) Sharded() bool { return p.sk != nil }

// ShardedKernel returns the shard coordinator (nil on the legacy path).
func (p *Pool) ShardedKernel() *sim.ShardedKernel { return p.sk }

// NodeKernel returns the kernel that owns fabric node id — the node's
// shard, or the pool kernel on the legacy path. Schedule a node's traffic
// and timers here; in sharded mode touching another node's components
// from this kernel's events is a data race.
func (p *Pool) NodeKernel(node int) *sim.Kernel {
	if p.sk != nil {
		return p.sk.Shard(p.shardOf[node])
	}
	return p.K
}

// Run dispatches events until every kernel drains, in whichever mode the
// pool was built, and returns the final simulated time.
func (p *Pool) Run() sim.Time {
	if p.sk != nil {
		return p.sk.Run()
	}
	return p.K.Run()
}

// StepTo dispatches every event strictly before t and advances all clocks
// to exactly t. Between StepTo calls the caller runs single-threaded and
// may touch any node's components — the barrier the experiment drivers
// use for control-plane phases (Attach/Detach/Grow, fault injection,
// probes) so the same driver code is deterministic in both modes.
func (p *Pool) StepTo(t sim.Time) {
	if p.sk != nil {
		p.sk.StepTo(t)
		return
	}
	p.K.RunBelow(t)
	p.K.AdvanceTo(t)
}

// Now returns the current simulated time: the single kernel's clock, or —
// when sharded — the driver-side clock of the last completed Run/StepTo.
// There is no global instant while shards advance in parallel, so code
// running inside an event must read its own node kernel's clock instead.
func (p *Pool) Now() sim.Time {
	if p.sk != nil {
		return p.sk.Now()
	}
	return p.K.Now()
}

// Processed returns total events dispatched across all kernels.
func (p *Pool) Processed() uint64 {
	if p.sk != nil {
		return p.sk.Processed()
	}
	return p.K.Processed()
}

// rackDistance is the locality metric: 0 within a rack, 1 across racks.
func (p *Pool) rackDistance(a, b int) int {
	if p.cfg.RackSize <= 0 || a/p.cfg.RackSize == b/p.cfg.RackSize {
		return 0
	}
	return 1
}

// views snapshots every lender's load for a placement decision, in
// lender-index order.
func (p *Pool) views(borrower int) []pool.LenderView {
	out := make([]pool.LenderView, len(p.Lenders))
	for i, l := range p.Lenders {
		out[i] = pool.LenderView{
			Lender:    l.Index,
			Node:      l.ID,
			Capacity:  l.Alloc.Capacity(),
			Allocated: l.Alloc.Allocated(),
			Regions:   p.regionsOn[i],
			Distance:  p.rackDistance(p.Borrowers[borrower].ID, l.ID),
		}
	}
	return out
}

// Attach carves a region for the borrower: the placement policy picks a
// lender, its allocator carves a segment, and the borrower NIC's
// translator maps a fresh window onto it. Fills to the region then fan to
// that lender by address.
func (p *Pool) Attach(borrower int, size uint64) (Region, error) {
	if borrower < 0 || borrower >= len(p.Borrowers) {
		return Region{}, fmt.Errorf("cluster: borrower %d of %d", borrower, len(p.Borrowers))
	}
	b := p.Borrowers[borrower]
	l, err := p.policy.Place(borrower, size, p.views(borrower))
	if err != nil {
		return Region{}, err
	}
	if l < 0 || l >= len(p.Lenders) {
		return Region{}, fmt.Errorf("cluster: policy %s placed on lender %d of %d", p.policy.Name(), l, len(p.Lenders))
	}
	ln := p.Lenders[l]
	seg, err := ln.Alloc.Alloc(size)
	if err != nil {
		return Region{}, err
	}
	w := tfnic.Window{
		BorrowerBase: b.nextWindow,
		LenderBase:   seg.Base,
		Size:         seg.Size,
		LenderNode:   ln.ID,
	}
	if err := b.NIC.Translator().AddWindow(w); err != nil {
		if ferr := ln.Alloc.Free(seg); ferr != nil {
			panic(ferr)
		}
		return Region{}, err
	}
	r := Region{Borrower: borrower, Lender: l, Base: w.BorrowerBase, Size: w.Size, Segment: seg}
	// Windows are spaced a full reservation apart so in-place growth can
	// never collide with the next region in borrower space.
	b.nextWindow += max(w.Size, p.cfg.lenderCapacity())
	b.regions = append(b.regions, r)
	p.regionsOn[l]++
	return r, nil
}

// Detach unmaps a region and returns its segment to the lender. Accesses
// issued after Detach fault (and fall back to the backend's paired
// destination), so quiesce traffic first — as a real hot-unplug would.
func (p *Pool) Detach(r Region) error {
	b := p.Borrowers[r.Borrower]
	idx := -1
	for i, reg := range b.regions {
		if reg.Base == r.Base && reg.Segment == r.Segment {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("cluster: detach of unknown region %+v", r)
	}
	if !b.NIC.Translator().RemoveWindow(r.Base) {
		return fmt.Errorf("cluster: region %+v has no window", r)
	}
	if err := p.Lenders[r.Lender].Alloc.Free(r.Segment); err != nil {
		return err
	}
	b.regions = append(b.regions[:idx], b.regions[idx+1:]...)
	p.regionsOn[r.Lender]--
	return nil
}

// Grow extends a region in place on its current lender, returning the
// enlarged region. It fails crisply when the adjacent lender space is
// carved out; spilling to another lender is a new Attach, not a Grow.
func (p *Pool) Grow(r Region, newSize uint64) (Region, error) {
	b := p.Borrowers[r.Borrower]
	idx := -1
	for i, reg := range b.regions {
		if reg.Base == r.Base && reg.Segment == r.Segment {
			idx = i
			break
		}
	}
	if idx < 0 {
		return Region{}, fmt.Errorf("cluster: grow of unknown region %+v", r)
	}
	if newSize > p.cfg.lenderCapacity() {
		return Region{}, fmt.Errorf("cluster: grow to %d exceeds lender reservation %d", newSize, p.cfg.lenderCapacity())
	}
	seg, err := p.Lenders[r.Lender].Alloc.Grow(r.Segment, newSize)
	if err != nil {
		return Region{}, err
	}
	if !b.NIC.Translator().RemoveWindow(r.Base) {
		panic(fmt.Sprintf("cluster: region %+v lost its window", r))
	}
	w := tfnic.Window{BorrowerBase: r.Base, LenderBase: seg.Base, Size: seg.Size, LenderNode: p.Lenders[r.Lender].ID}
	if err := b.NIC.Translator().AddWindow(w); err != nil {
		panic(err) // window spacing guarantees the grown window fits
	}
	grown := Region{Borrower: r.Borrower, Lender: r.Lender, Base: r.Base, Size: seg.Size, Segment: seg}
	b.regions[idx] = grown
	return grown, nil
}

// Regions returns a copy of the borrower's attached regions.
func (p *Pool) Regions(borrower int) []Region {
	return append([]Region(nil), p.Borrowers[borrower].regions...)
}

// Policy returns the active placement policy.
func (p *Pool) Policy() pool.Policy { return p.policy }

// EnableTracing builds a span tracer and installs its taps on every NIC
// and every existing backend. Tracing only observes — timing is
// bit-identical with it on or off.
func (p *Pool) EnableTracing(cfg obs.Config) *obs.Tracer {
	if p.tracer != nil {
		panic("cluster: tracing already enabled")
	}
	if p.sk != nil {
		// The tracer's span pool and clock belong to one kernel; taps
		// firing concurrently from shard goroutines would race on it.
		panic("cluster: tracing is single-kernel only; run with Shards <= 1")
	}
	p.tracer = obs.New(p.K, cfg)
	for _, b := range p.Borrowers {
		b.NIC.SetTracer(p.tracer)
		for _, be := range b.backends {
			be.SetTracer(p.tracer)
		}
	}
	for _, l := range p.Lenders {
		l.NIC.SetTracer(p.tracer)
	}
	p.wireStageRollups()
	return p.tracer
}

// Tracer returns the span tracer, or nil when tracing is disabled.
func (p *Pool) Tracer() *obs.Tracer { return p.tracer }

// EnableMetrics threads the metrics plane through every wired component:
// per-node NIC/ARQ/DRAM instruments, per-backend fill latency histograms,
// per-lender allocator gauges, per-cable link counters, and the switch's
// per-port queue gauges. Like tracing, the plane only observes — simulated
// results are identical with it on or off. nil is a no-op, so NewPool can
// call it unconditionally.
func (p *Pool) EnableMetrics(pl *metricsplane.Plane) {
	if pl == nil {
		return
	}
	if p.plane != nil {
		panic("cluster: metrics already enabled")
	}
	p.plane = pl
	for _, b := range p.Borrowers {
		b.NIC.SetMetrics(pl.NICMetricsFor(b.ID))
		b.Mem.SetMetrics(pl.DRAMMetricsFor(b.ID))
		if b.ARQ != nil {
			b.ARQ.SetMetrics(pl.ARQMetricsFor(b.ID))
		}
		for i, be := range b.backends {
			be.SetMetrics(pl.FillMetricsFor(b.ID, backendTenant(i)))
		}
	}
	for _, l := range p.Lenders {
		l.NIC.SetMetrics(pl.NICMetricsFor(l.ID))
		l.Mem.SetMetrics(pl.DRAMMetricsFor(l.ID))
		l.Alloc.SetMetrics(pl.AllocMetricsFor(l.Index))
	}
	if p.Link != nil {
		// The 1×1 pool's point-to-point cable: link 0 is each node's
		// transmit direction.
		p.Link.AtoB.SetMetrics(pl.LinkMetricsFor(BorrowerID, 0))
		p.Link.BtoA.SetMetrics(pl.LinkMetricsFor(LenderID, 0))
	}
	for port, ln := range p.links {
		// Node-to-switch cables: link 0 = toward the switch, 1 = from it.
		ln.AtoB.SetMetrics(pl.LinkMetricsFor(port, 0))
		ln.BtoA.SetMetrics(pl.LinkMetricsFor(port, 1))
	}
	for port, ln := range p.xlinks {
		// Same cables when the pool is sharded; the plane's instruments
		// are lock-free atomics, so cross-shard updates are safe.
		ln.AtoB.SetMetrics(pl.LinkMetricsFor(port, 0))
		ln.BtoA.SetMetrics(pl.LinkMetricsFor(port, 1))
	}
	if p.Switch != nil {
		ports := make([]*metricsplane.SwitchPortMetrics, p.Switch.Ports())
		for i := range ports {
			ports[i] = pl.SwitchPortMetricsFor(i)
		}
		p.Switch.SetMetrics(ports, pl.SwitchDropCounter())
	}
	p.wireStageRollups()
}

// Metrics returns the attached metrics plane, or nil when disabled.
func (p *Pool) Metrics() *metricsplane.Plane { return p.plane }

// wireStageRollups connects the tracer's per-stage completions to the
// plane's stage-time counters. It is a no-op until both tracing and
// metrics are enabled, and is called from each enabler so order does not
// matter.
func (p *Pool) wireStageRollups() {
	if p.tracer == nil || p.plane == nil {
		return
	}
	p.tracer.SetStageObserver(p.plane.StageObserver(metricsplane.Unset, obs.StageNames()))
}

// backendTenant labels a borrower's i-th port backend: the shared port is
// the node's unlabeled tenant (it feeds the SLO tracker); later backends —
// one per dedicated hierarchy — carry their creation index.
func backendTenant(i int) string {
	if i == 0 {
		return ""
	}
	return "be" + strconv.Itoa(i)
}

// CrashLender stops lender l's memory service (inject.FaultTarget
// semantics: requests black-holed, in-flight serves lost).
func (p *Pool) CrashLender(l int) { p.Lenders[l].NIC.Crash() }

// RestoreLender restarts lender l; with wipe, block requests nack until a
// probe re-arms the window state.
func (p *Pool) RestoreLender(l int, wipe bool) { p.Lenders[l].NIC.Restore(wipe) }

// SetLenderSlowdown sets lender l's memory service-time inflation factor
// (brownout injection); 1 restores nominal service.
func (p *Pool) SetLenderSlowdown(l int, factor float64) { p.Lenders[l].Mem.SetSlowdown(factor) }

// newBackend allocates a borrower-port backend with a fresh tag range.
// The destination it stamps is the paired lender (the pool's lender 0);
// translation reroutes block ops per window.
func (b *BorrowerNode) newBackend() *memport.RemoteBackend {
	base := b.tagCursor
	cfg := b.p.cfg.Base
	b.tagCursor += uint32(cfg.TagSpace)
	if base+uint32(cfg.TagSpace) > ProbeTagBase {
		panic("cluster: backend tag range collides with probe tags")
	}
	be := memport.NewRemoteBackendTags(b.K, b.sender, base, cfg.TagSpace, cfg.PortLatency,
		uint16(b.ID), uint16(b.p.pairedLenderNode()))
	if cfg.FillDeadline > 0 {
		be.SetDeadline(cfg.FillDeadline)
	}
	if b.p.tracer != nil {
		be.SetTracer(b.p.tracer)
	}
	if b.p.plane != nil {
		be.SetMetrics(b.p.plane.FillMetricsFor(b.ID, backendTenant(len(b.backends))))
	}
	b.backends = append(b.backends, be)
	return be
}

// pairedLenderNode is the default-destination node for every borrower's
// backends: lender 0, the two-node pairing. Computed from the id layout
// (borrowers first) because backends are wired before lender nodes exist.
func (p *Pool) pairedLenderNode() int { return p.cfg.Borrowers }

// Backend exposes the borrower's shared port backend (diagnostics).
func (b *BorrowerNode) Backend() *memport.RemoteBackend { return b.backend }

// Backends returns all port backends the borrower has created.
func (b *BorrowerNode) Backends() []*memport.RemoteBackend {
	return append([]*memport.RemoteBackend(nil), b.backends...)
}

// route delivers a resolved response to its consumer: probe waiters by
// probe tag, block completions to the owning backend.
func (b *BorrowerNode) route(p ocapi.Packet) {
	if IsProbeTag(p.Tag) {
		fn, ok := b.probeWaiters[p.Tag]
		if !ok {
			b.staleProbes++ // expired or abandoned probe; drop
			return
		}
		delete(b.probeWaiters, p.Tag)
		fn(p)
		return
	}
	for _, be := range b.backends {
		if be.Owns(p.Tag) {
			be.Deliver(p)
			return
		}
	}
	panic(fmt.Sprintf("cluster: response with unowned tag %d", p.Tag))
}

// ProbeWaiters returns control-plane probes awaiting a response.
func (b *BorrowerNode) ProbeWaiters() int { return len(b.probeWaiters) }

// StaleProbeResponses returns probe responses that arrived after their
// waiter expired or was abandoned.
func (b *BorrowerNode) StaleProbeResponses() uint64 { return b.staleProbes }

// nextProbeTag allocates a unique probe tag, skipping live waiters.
func (b *BorrowerNode) nextProbeTag() uint32 {
	for {
		tag := ProbeTagBase + b.probeCursor
		b.probeCursor = (b.probeCursor + 1) & 0xFFFF
		if _, live := b.probeWaiters[tag]; !live {
			return tag
		}
	}
}

// ProbeLender transmits a control-plane probe to the given lender through
// the gated egress with an explicit response deadline: done(false, 0)
// fires if no healthy response arrives within it (0 = wait forever). It
// reports false if the probe could not even be enqueued.
func (b *BorrowerNode) ProbeLender(lender *LenderNode, deadline sim.Duration, done func(ok bool, rtt sim.Duration)) bool {
	p := ocapi.Packet{
		Op:     ocapi.OpProbe,
		Tag:    b.nextProbeTag(),
		Src:    uint16(b.ID),
		Dst:    uint16(lender.ID),
		Issued: b.K.Now(),
	}
	start := b.K.Now()
	if !b.sender.TrySend(p) {
		return false
	}
	tag := p.Tag
	b.probeWaiters[tag] = func(resp ocapi.Packet) {
		if resp.Poison || resp.Op != ocapi.OpProbeResp {
			done(false, 0) // nacked probe: the lender could not trust it
			return
		}
		done(true, b.K.Now().Sub(start))
	}
	if deadline > 0 {
		b.K.After(deadline, func() {
			if _, live := b.probeWaiters[tag]; !live {
				return // already answered
			}
			delete(b.probeWaiters, tag)
			done(false, 0)
		})
	}
	return true
}

// NewRemoteHierarchy returns a CPU-side hierarchy on this borrower whose
// misses traverse the full disaggregated datapath. Hierarchies share the
// node's NIC and tag space — the MCBN contention mechanism.
func (b *BorrowerNode) NewRemoteHierarchy() *memport.Hierarchy {
	cfg := b.p.cfg.Base
	h := memport.NewHierarchy(b.K, b.newLLC(), b.backend, cfg.MSHRs)
	h.SetTracer(b.p.tracer)
	return h
}

// newLLC builds a hierarchy's cache, attaching the metrics plane's
// hit/miss counters when enabled.
func (b *BorrowerNode) newLLC() *cache.Cache {
	c := cache.New(b.p.cfg.Base.LLC)
	if b.p.plane != nil {
		c.SetMetrics(b.p.plane.CacheMetricsFor(b.ID))
	}
	return c
}

// NewRemoteHierarchyPrio is NewRemoteHierarchy with a dedicated backend
// stamping the given QoS class on its requests.
func (b *BorrowerNode) NewRemoteHierarchyPrio(prio uint8) *memport.Hierarchy {
	cfg := b.p.cfg.Base
	be := b.newBackend()
	be.SetPriority(prio)
	h := memport.NewHierarchy(b.K, b.newLLC(), be, cfg.MSHRs)
	h.SetTracer(b.p.tracer)
	return h
}

// NewLocalHierarchy returns a hierarchy against the borrower's own DRAM.
func (b *BorrowerNode) NewLocalHierarchy() *memport.Hierarchy {
	cfg := b.p.cfg.Base
	backend := memport.NewDRAMBackend(b.Mem)
	if b.p.tracer != nil {
		backend.SetTracer(b.p.tracer)
	}
	h := memport.NewHierarchy(b.K, b.newLLC(), backend, cfg.MSHRs)
	h.SetTracer(b.p.tracer)
	return h
}

// NewLenderLocalHierarchy returns a hierarchy for applications running on
// lender l against its own DRAM — the MCLN contenders.
func (p *Pool) NewLenderLocalHierarchy(l int) *memport.Hierarchy {
	cfg := p.cfg.Base
	backend := memport.NewDRAMBackend(p.Lenders[l].Mem)
	if p.tracer != nil {
		backend.SetTracer(p.tracer)
	}
	c := cache.New(cfg.LLC)
	if p.plane != nil {
		c.SetMetrics(p.plane.CacheMetricsFor(p.Lenders[l].ID))
	}
	h := memport.NewHierarchy(p.Lenders[l].K, c, backend, cfg.MSHRs)
	h.SetTracer(p.tracer)
	return h
}

// PairProber adapts one borrower/lender pair to the control-plane Prober
// interface (structurally satisfies control.Prober), so the attach
// handshake and link supervisor run unchanged against any pool pair.
type PairProber struct {
	B *BorrowerNode
	L *LenderNode
}

// SendProbe implements the control-plane probe primitive.
func (pp PairProber) SendProbe(done func(rtt sim.Duration)) bool {
	return pp.B.ProbeLender(pp.L, 0, func(ok bool, rtt sim.Duration) {
		if ok {
			done(rtt)
		}
	})
}

// Probe is SendProbe with an explicit deadline (control.DeadlineProber).
func (pp PairProber) Probe(deadline sim.Duration, done func(ok bool, rtt sim.Duration)) bool {
	return pp.B.ProbeLender(pp.L, deadline, done)
}

// Kernel returns the simulation kernel for timers.
func (pp PairProber) Kernel() *sim.Kernel { return pp.B.K }

// Prober returns the control-plane adapter for a borrower/lender pair.
func (p *Pool) Prober(borrower, lender int) PairProber {
	return PairProber{B: p.Borrowers[borrower], L: p.Lenders[lender]}
}
