package cluster

import (
	"testing"

	"thymesim/internal/memport"
	"thymesim/internal/metricsplane"
	"thymesim/internal/ocapi"
	"thymesim/internal/sim"
	"thymesim/internal/tfnic"
)

// remoteFillLoop returns a function driving one always-miss remote line
// fill end to end (hierarchy -> backend -> NIC -> injector -> link ->
// lender NIC -> DRAM -> response) and running the kernel to completion.
// The completion callback is created once, outside the measured region.
func remoteFillLoop(tb *Testbed, h *memport.Hierarchy, fills *uint64) func() {
	k := tb.Kernel()
	done := func() { *fills++ }
	next := uint64(0)
	return func() {
		// A fresh line every call: always a cold miss, never a dirty victim.
		addr := tb.RemoteAddr(next * ocapi.CacheLineSize)
		next++
		h.Access(addr, ocapi.CacheLineSize, false, done)
		k.Run()
	}
}

// TestRemoteFillSteadyStateAllocs proves the pooled datapath end to end:
// once the free lists and queues are warm, a remote line fill allocates
// nothing on the heap.
func TestRemoteFillSteadyStateAllocs(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"vanilla", DefaultConfig(1)},
		{"delayed", DefaultConfig(50)},
		{"arq", func() Config {
			c := DefaultConfig(1)
			arq := tfnic.DefaultARQConfig()
			c.ARQ = &arq
			return c
		}()},
		{"deadline+breaker", func() Config {
			// The robustness stack: ARQ plus a per-transaction deadline,
			// with the outcome observer attached below (the breaker's feed).
			c := DefaultConfig(1)
			arq := tfnic.DefaultARQConfig()
			c.ARQ = &arq
			c.FillDeadline = 10 * sim.Millisecond
			return c
		}()},
		{"metrics", func() Config {
			// The metrics plane is observe-only: with every instrument
			// attached the warm fill path must still allocate nothing.
			c := DefaultConfig(1)
			c.Metrics = metricsplane.New()
			return c
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tb := NewTestbed(tc.cfg)
			if tc.cfg.FillDeadline > 0 {
				ok := uint64(0)
				tb.SetFillOutcomeObserver(func(healthy bool) {
					if healthy {
						ok++
					}
				})
			}
			h := tb.NewRemoteHierarchy()
			var fills uint64
			fill := remoteFillLoop(tb, h, &fills)
			// Warm every pool on the path: event heap, packet/transaction
			// free lists, ARQ timers, queues.
			for i := 0; i < 512; i++ {
				fill()
			}
			warm := fills
			if warm == 0 {
				t.Fatal("warm-up completed no fills")
			}
			before := tb.Kernel().TimerStats()
			avg := testing.AllocsPerRun(200, fill)
			if avg != 0 {
				t.Errorf("steady-state remote fill: %.2f allocs/op, want 0", avg)
			}
			if fills <= warm {
				t.Fatal("measured region completed no fills")
			}
			// The ARQ and deadline cases ride the kernel's timer wheel: the
			// allocation-free region above must have been arming wheel
			// timers and cancelling them for real on healthy completion —
			// otherwise the 0-alloc result isn't covering the wheel path.
			after := tb.Kernel().TimerStats()
			if tc.cfg.ARQ != nil || tc.cfg.FillDeadline > 0 {
				if after.Armed == before.Armed {
					t.Error("measured region armed no wheel timers")
				}
				if after.Cancelled == before.Cancelled {
					t.Error("measured region cancelled no wheel timers")
				}
			}
			if after.Pending != 0 {
				t.Errorf("drained kernel still has %d pending wheel timers", after.Pending)
			}
		})
	}
}

// TestRemoteWriteSteadyStateAllocs covers the writeback/write path: dirty
// line writes through the remote backend also run allocation-free once
// warm.
func TestRemoteWriteSteadyStateAllocs(t *testing.T) {
	tb := NewTestbed(DefaultConfig(1))
	h := tb.NewRemoteHierarchy()
	k := tb.Kernel()
	var fills uint64
	done := func() { fills++ }
	next := uint64(0)
	fill := func() {
		addr := tb.RemoteAddr(next * ocapi.CacheLineSize)
		next++
		h.Access(addr, ocapi.CacheLineSize, true, done)
		k.Run()
	}
	for i := 0; i < 512; i++ {
		fill()
	}
	if avg := testing.AllocsPerRun(200, fill); avg != 0 {
		t.Errorf("steady-state remote write: %.2f allocs/op, want 0", avg)
	}
}
