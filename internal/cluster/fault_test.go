package cluster

import (
	"testing"

	"thymesim/internal/ocapi"
	"thymesim/internal/sim"
	"thymesim/internal/tfnic"
)

// arqConfig gives fast, bounded retransmission so fault tests converge
// quickly.
func faultARQConfig() *tfnic.ARQConfig {
	return &tfnic.ARQConfig{
		Timeout:     20 * sim.Microsecond,
		MaxRetries:  3,
		BackoffMult: 2,
		BackoffCap:  100 * sim.Microsecond,
		Seed:        1,
	}
}

// TestCrashBlackHolesRequests pins the crash fault domain: requests (and
// probes) vanish without a response, and the borrower only learns through
// ARQ death.
func TestCrashBlackHolesRequests(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.ARQ = faultARQConfig()
	tb := NewTestbed(cfg)
	h := tb.NewRemoteHierarchy()

	probeOK := true
	tb.K.At(0, func() {
		tb.CrashLender()
		h.Access(tb.RemoteAddr(0), 8, false, nil)
		tb.Probe(sim.Millisecond, func(ok bool, _ sim.Duration) { probeOK = ok })
	})
	tb.K.Run()

	ls := tb.LenderNIC.Stats()
	if ls.CrashDrops == 0 {
		t.Fatal("crashed lender served requests")
	}
	if probeOK {
		t.Fatal("probe succeeded against a crashed lender")
	}
	st := tb.ARQ.Stats()
	if st.Dead != 1 || st.Retransmits == 0 {
		t.Fatalf("dead=%d retransmits=%d (ARQ must retry then give up)", st.Dead, st.Retransmits)
	}
	if tb.backend.Poisoned() != 1 {
		t.Fatalf("poisoned fills = %d", tb.backend.Poisoned())
	}
	if tb.LenderMem.Reads() != 0 {
		t.Fatalf("crashed lender touched DRAM: %d reads", tb.LenderMem.Reads())
	}
}

// TestCrashLosesInFlightServes crashes the lender after a request reaches
// it but before the DRAM access completes: the serve must be lost, not
// answered by a ghost.
func TestCrashLosesInFlightServes(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.ARQ = faultARQConfig()
	// A 10us DRAM access gives a wide, deterministic serve window to crash
	// inside of.
	cfg.LenderDRAM.AccessLatency = 10 * sim.Microsecond
	tb := NewTestbed(cfg)
	h := tb.NewRemoteHierarchy()

	tb.K.At(0, func() { h.Access(tb.RemoteAddr(0), 8, false, nil) })
	// The request reaches the lender well under 5us; its DRAM serve is
	// still pending at 5us when the crash hits.
	tb.K.At(sim.Time(5*sim.Microsecond), func() { tb.CrashLender() })
	// Restore (no wipe) before the ARQ backoff retry at ~60us lands.
	tb.K.At(sim.Time(40*sim.Microsecond), func() { tb.RestoreLender(false) })
	tb.K.Run()

	ls := tb.LenderNIC.Stats()
	if ls.ServesLost == 0 {
		t.Fatal("in-flight serve survived the crash")
	}
	st := tb.ARQ.Stats()
	if st.Retransmits == 0 {
		t.Fatal("lost serve never retransmitted")
	}
	if st.Completed != 1 || st.Dead != 0 {
		t.Fatalf("completed=%d dead=%d (retry after restore must succeed)", st.Completed, st.Dead)
	}
	if tb.backend.Poisoned() != 0 {
		t.Fatalf("poisoned = %d", tb.backend.Poisoned())
	}
}

// TestWipeNacksUntilProbeReArms pins the wiped-restore domain: block ops
// nack until a probe re-arms the window, then service resumes.
func TestWipeNacksUntilProbeReArms(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.ARQ = faultARQConfig()
	tb := NewTestbed(cfg)
	h := tb.NewRemoteHierarchy()

	tb.K.At(0, func() {
		tb.CrashLender()
		tb.RestoreLender(true) // instant restart, window state lost
		h.Access(tb.RemoteAddr(0), 8, false, nil)
	})
	tb.K.Run()
	ls := tb.LenderNIC.Stats()
	if ls.WipeNacks == 0 {
		t.Fatal("wiped lender served a block request")
	}
	if st := tb.ARQ.Stats(); st.Dead != 1 || st.NackRetries == 0 {
		t.Fatalf("dead=%d nackRetries=%d (every retry must nack until death)", st.Dead, st.NackRetries)
	}

	// A probe re-arms the window; the next access serves normally.
	probed := false
	tb.K.Post(func() { tb.Probe(sim.Millisecond, func(ok bool, _ sim.Duration) { probed = ok }) })
	tb.K.Run()
	if !probed {
		t.Fatal("probe failed against a restored lender")
	}
	if tb.LenderNIC.Wiped() {
		t.Fatal("probe did not re-arm the window")
	}
	tb.K.Post(func() { h.Access(tb.RemoteAddr(ocapi.CacheLineSize), 8, false, nil) })
	tb.K.Run()
	if tb.LenderMem.Reads() != 1 {
		t.Fatalf("post-re-arm access did not reach lender DRAM: %d reads", tb.LenderMem.Reads())
	}
}

// TestBrownoutInflatesRemoteRTT pins that lender DRAM slowdown shows up in
// the end-to-end fill latency and then clears.
func TestBrownoutInflatesRemoteRTT(t *testing.T) {
	rtt := func(slow float64) sim.Duration {
		tb := NewTestbed(DefaultConfig(1))
		tb.SetLenderSlowdown(slow)
		h := tb.NewRemoteHierarchy()
		var done sim.Time
		tb.K.At(0, func() {
			h.Access(tb.RemoteAddr(0), 8, false, func() { done = tb.K.Now() })
		})
		tb.K.Run()
		return sim.Duration(done)
	}
	base, browned := rtt(1), rtt(8)
	if browned <= base {
		t.Fatalf("brownout RTT %v <= nominal %v", browned, base)
	}
	// The DRAM share of the RTT grew 8x; the wire share is unchanged, so
	// the total sits strictly between 1x and 8x.
	if browned >= 8*base {
		t.Fatalf("brownout RTT %v implausibly large vs %v", browned, base)
	}

	// Recovery: a fresh testbed browned then restored behaves nominally.
	tb := NewTestbed(DefaultConfig(1))
	tb.SetLenderSlowdown(8)
	tb.SetLenderSlowdown(1)
	h := tb.NewRemoteHierarchy()
	var done sim.Time
	tb.K.At(0, func() { h.Access(tb.RemoteAddr(0), 8, false, func() { done = tb.K.Now() }) })
	tb.K.Run()
	if sim.Duration(done) != base {
		t.Fatalf("post-recovery RTT %v, want %v", sim.Duration(done), base)
	}
}

// TestDeadlineBoundsCrashOutage pins the deadline integration: with a
// FillDeadline configured, a fill issued into a crash completes (poisoned)
// within the deadline instead of waiting out full ARQ death.
func TestDeadlineBoundsCrashOutage(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.ARQ = faultARQConfig()
	cfg.FillDeadline = 30 * sim.Microsecond
	tb := NewTestbed(cfg)
	h := tb.NewRemoteHierarchy()

	var doneAt sim.Time
	tb.K.At(0, func() {
		tb.CrashLender()
		h.Access(tb.RemoteAddr(0), 8, false, func() { doneAt = tb.K.Now() })
	})
	tb.K.Run()
	if doneAt != sim.Time(cfg.FillDeadline) {
		t.Fatalf("completed at %v, want the %v deadline", doneAt, cfg.FillDeadline)
	}
	if tb.backend.Expired() != 1 || tb.backend.Poisoned() != 1 {
		t.Fatalf("expired=%d poisoned=%d", tb.backend.Expired(), tb.backend.Poisoned())
	}
}
