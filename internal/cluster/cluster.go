// Package cluster composes the simulated testbed: nodes with CPU-side
// cache hierarchies, DRAM, disaggregated-memory NICs, and the
// point-to-point link between them — the two-AC922 ThymesisFlow setup of
// the paper's §III-A, with the delay injector configurable at the borrower
// egress.
package cluster

import (
	"fmt"

	"thymesim/internal/axis"
	"thymesim/internal/cache"
	"thymesim/internal/dram"
	"thymesim/internal/inject"
	"thymesim/internal/memport"
	"thymesim/internal/metricsplane"
	"thymesim/internal/netlink"
	"thymesim/internal/obs"
	"thymesim/internal/ocapi"
	"thymesim/internal/sim"
	"thymesim/internal/tfnic"
)

// Node IDs of the two-node testbed.
const (
	BorrowerID = 0
	LenderID   = 1
)

// RemoteBase is the borrower physical address where the hot-plugged remote
// memory window begins; LenderBase is where the reservation sits in lender
// memory.
const (
	RemoteBase uint64 = 0x1000_0000_0000
	LenderBase uint64 = 0x20_0000_0000
)

// ProbeTagBase is the start of the tag range reserved for control-plane
// probe packets. Each probe gets a unique tag from this range, so a stale
// response (from an abandoned attach, or one delayed past its deadline)
// can never be mistaken for the reply to a newer probe.
const ProbeTagBase uint32 = 0xFFFF_0000

// IsProbeTag reports whether a tag belongs to the probe range.
func IsProbeTag(tag uint32) bool { return tag >= ProbeTagBase }

// Config parameterizes the testbed.
type Config struct {
	// Period is the delay injector PERIOD in FPGA cycles; 1 reproduces
	// vanilla ThymesisFlow (every cycle passes).
	Period int64
	// Gate, when non-nil, overrides Period with a custom injection gate
	// (distribution-based injection, trace replay, ...).
	Gate axis.Gate
	// FPGACycle is the NIC datapath clock (COUNTER granularity).
	FPGACycle sim.Duration
	// PortLatency is the CPU<->NIC OpenCAPI transport per direction.
	PortLatency sim.Duration
	// NICPipeline is the NIC serializer/PHY fixed latency per direction.
	NICPipeline sim.Duration
	// LinkBandwidthBps and LinkPropagation describe the cable.
	LinkBandwidthBps float64
	LinkPropagation  sim.Duration
	// MSHRs bounds outstanding line fills per hierarchy; TagSpace bounds
	// outstanding OpenCAPI commands at the shared borrower port.
	MSHRs    int
	TagSpace int
	// InjectClasses is the number of QoS priority classes at the delay
	// injector (1 = the paper's single-queue hardware).
	InjectClasses int
	// ARQ, when non-nil, interposes a retransmission layer between the
	// borrower port and the NIC: block operations become sequence-numbered
	// transactions that survive drops, nacks, and flaps (or fail crisply
	// with a poisoned completion). Nil reproduces the prototype's
	// recovery-free datapath.
	ARQ *tfnic.ARQConfig
	// FillDeadline, when positive, bounds every borrower-port transaction
	// end to end: a fill or writeback that has not resolved within it
	// completes poisoned immediately instead of waiting out ARQ death or a
	// hung lender. 0 reproduces the unbounded prototype.
	FillDeadline sim.Duration
	// Profile sets interconnect wire overheads (zero value = OpenCAPI
	// over Ethernet).
	Profile ocapi.Profile
	// Metrics, when non-nil, threads the labeled metrics plane through
	// every wired component (NICs, ARQ, backends, DRAM, caches, links,
	// allocators). The plane only observes: simulated results are
	// identical with it enabled or disabled.
	Metrics *metricsplane.Plane
	// WindowSize is the remote memory reservation size in bytes.
	WindowSize uint64
	// LenderDRAM configures the lender's memory subsystem.
	LenderDRAM dram.Config
	// BorrowerDRAM configures the borrower's local memory (baselines).
	BorrowerDRAM dram.Config
	// LLC configures per-hierarchy last-level cache geometry.
	LLC cache.Config
}

// DefaultConfig returns AC922-testbed-like parameters with the injector at
// the given PERIOD.
func DefaultConfig(period int64) Config {
	return Config{
		Period:           period,
		FPGACycle:        inject.DefaultFPGACycle,
		PortLatency:      150 * sim.Nanosecond,
		NICPipeline:      150 * sim.Nanosecond,
		LinkBandwidthBps: netlink.DefaultBandwidthBps,
		LinkPropagation:  netlink.DefaultPropagation,
		MSHRs:            memport.DefaultMSHRs,
		TagSpace:         256,
		InjectClasses:    1,
		WindowSize:       64 << 30,
		LenderDRAM:       dram.AC922Config(),
		BorrowerDRAM:     dram.AC922Config(),
		LLC:              cache.Config{SizeBytes: 4 << 20, Ways: 16, LineSize: ocapi.CacheLineSize},
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Period < 0 {
		return fmt.Errorf("cluster: PERIOD = %d", c.Period)
	}
	if c.Gate == nil && c.Period == 0 {
		return fmt.Errorf("cluster: need Period >= 1 or a Gate")
	}
	if c.MSHRs <= 0 || c.TagSpace < c.MSHRs {
		return fmt.Errorf("cluster: MSHRs=%d TagSpace=%d (tags must cover MSHRs)", c.MSHRs, c.TagSpace)
	}
	if c.InjectClasses < 1 {
		return fmt.Errorf("cluster: InjectClasses = %d", c.InjectClasses)
	}
	if c.ARQ != nil {
		if err := c.ARQ.Validate(); err != nil {
			return err
		}
	}
	if c.FillDeadline < 0 {
		return fmt.Errorf("cluster: negative FillDeadline")
	}
	if c.WindowSize == 0 || c.WindowSize%ocapi.CacheLineSize != 0 {
		return fmt.Errorf("cluster: window size %d", c.WindowSize)
	}
	if err := c.LenderDRAM.Validate(); err != nil {
		return err
	}
	if err := c.BorrowerDRAM.Validate(); err != nil {
		return err
	}
	return c.LLC.Validate()
}

// Testbed is the composed two-node system: a 1-borrower × 1-lender Pool
// with the paper's fixed pairing, kept as the convenience surface every
// experiment and test drives. Pool() exposes the underlying node-graph.
type Testbed struct {
	K   *sim.Kernel
	cfg Config

	BorrowerNIC *tfnic.NIC
	LenderNIC   *tfnic.NIC
	LenderMem   *dram.DRAM
	BorrowerMem *dram.DRAM
	Link        *netlink.Link

	// ARQ is the borrower-side retransmission layer (nil unless
	// Config.ARQ was set).
	ARQ *tfnic.ARQ

	pool     *Pool
	borrower *BorrowerNode
	backend  *memport.RemoteBackend
}

// NewTestbed wires the system and programs the remote-memory window. It is
// exactly NewPool(1×1) with the default pairing plus one full-reservation
// attach, so the two-node experiments are a special case of the pool.
func NewTestbed(cfg Config) *Testbed {
	p := NewPool(PoolConfig{Borrowers: 1, Lenders: 1, Base: cfg})
	if _, err := p.Attach(0, cfg.WindowSize); err != nil {
		panic(err)
	}
	b := p.Borrowers[0]
	l := p.Lenders[0]
	return &Testbed{
		K:           p.K,
		cfg:         cfg,
		BorrowerNIC: b.NIC,
		LenderNIC:   l.NIC,
		LenderMem:   l.Mem,
		BorrowerMem: b.Mem,
		Link:        p.Link,
		ARQ:         b.ARQ,
		pool:        p,
		borrower:    b,
		backend:     b.backend,
	}
}

// Config returns the testbed configuration.
func (tb *Testbed) Config() Config { return tb.cfg }

// Kernel returns the simulation kernel (satisfies control.Prober).
func (tb *Testbed) Kernel() *sim.Kernel { return tb.K }

// Pool returns the underlying 1×1 node-graph.
func (tb *Testbed) Pool() *Pool { return tb.pool }

// Gate returns the active injection gate.
func (tb *Testbed) Gate() axis.Gate { return tb.borrower.gate }

// EnableTracing builds a span tracer on the testbed's kernel and installs
// its taps across the datapath (both NICs, every existing backend). Call
// it before creating hierarchies so they pick up the tracer at
// construction; hierarchies created earlier stay untraced. Tracing only
// observes — timing is bit-identical with it on or off.
func (tb *Testbed) EnableTracing(cfg obs.Config) *obs.Tracer {
	return tb.pool.EnableTracing(cfg)
}

// Tracer returns the span tracer, or nil when tracing is disabled.
func (tb *Testbed) Tracer() *obs.Tracer { return tb.pool.Tracer() }

// EnableMetrics threads the metrics plane through the testbed's wired
// components (equivalent to setting Config.Metrics before construction,
// for callers that build the plane late). Call it before creating
// hierarchies so their caches pick up counters at construction.
func (tb *Testbed) EnableMetrics(pl *metricsplane.Plane) { tb.pool.EnableMetrics(pl) }

// Metrics returns the attached metrics plane, or nil when disabled.
func (tb *Testbed) Metrics() *metricsplane.Plane { return tb.pool.Metrics() }

// RemoteBackend exposes the shared borrower port (diagnostics).
func (tb *Testbed) RemoteBackend() *memport.RemoteBackend { return tb.backend }

// ProbeWaiters returns control-plane probes awaiting a response.
func (tb *Testbed) ProbeWaiters() int { return tb.borrower.ProbeWaiters() }

// StaleProbeResponses returns probe responses that arrived after their
// waiter expired or was abandoned.
func (tb *Testbed) StaleProbeResponses() uint64 { return tb.borrower.StaleProbeResponses() }

// NewRemoteHierarchy returns a CPU-side hierarchy whose misses traverse the
// full disaggregated datapath (borrower NIC -> injector -> link -> lender
// DRAM). Multiple hierarchies share the NIC and tag space, which is how
// MCBN contention arises.
func (tb *Testbed) NewRemoteHierarchy() *memport.Hierarchy {
	return tb.borrower.NewRemoteHierarchy()
}

// NewRemoteHierarchyPrio is NewRemoteHierarchy with a dedicated backend
// stamping the given QoS class on its requests (0 = highest priority;
// classes beyond Config.InjectClasses-1 are clamped by the NIC).
func (tb *Testbed) NewRemoteHierarchyPrio(prio uint8) *memport.Hierarchy {
	return tb.borrower.NewRemoteHierarchyPrio(prio)
}

// NewLocalHierarchy returns a hierarchy against the borrower's own DRAM —
// the "local memory" baseline of Table I.
func (tb *Testbed) NewLocalHierarchy() *memport.Hierarchy {
	return tb.borrower.NewLocalHierarchy()
}

// NewLenderLocalHierarchy returns a hierarchy for applications running on
// the lender node against lender DRAM — the contending applications of the
// MCLN scenario (Fig. 7).
func (tb *Testbed) NewLenderLocalHierarchy() *memport.Hierarchy {
	return tb.pool.NewLenderLocalHierarchy(0)
}

// SendProbe transmits a control-plane probe through the (gated) egress
// path and calls done with the response when it returns. It reports false
// if the NIC command queue is saturated and the probe could not even be
// enqueued. A probe rejected by the lender (corrupted on the wire) never
// calls done — the caller's own deadline is its recovery.
func (tb *Testbed) SendProbe(done func(rtt sim.Duration)) bool {
	return tb.Probe(0, func(ok bool, rtt sim.Duration) {
		if ok {
			done(rtt)
		}
	})
}

// Probe is SendProbe with an explicit response deadline: done(false, 0)
// fires if no healthy response arrives within it (0 = wait forever). This
// is the heartbeat primitive the link supervisor drives re-attach from.
func (tb *Testbed) Probe(deadline sim.Duration, done func(ok bool, rtt sim.Duration)) bool {
	return tb.borrower.ProbeLender(tb.pool.Lenders[0], deadline, done)
}

// CrashLender stops the lender's memory service: in-flight serves are
// lost and subsequent requests — probes included — are black-holed, so the
// borrower sees a silent peer, not an error (inject.FaultTarget).
func (tb *Testbed) CrashLender() { tb.pool.CrashLender(0) }

// RestoreLender restarts the lender. With wipe, the window state was lost
// across the crash: block requests are nacked until a control-plane probe
// re-arms the window (the supervisor's re-attach does exactly that).
func (tb *Testbed) RestoreLender(wipe bool) { tb.pool.RestoreLender(0, wipe) }

// SetLenderSlowdown sets the lender memory service-time inflation factor
// (brownout injection); 1 restores nominal service.
func (tb *Testbed) SetLenderSlowdown(factor float64) { tb.pool.SetLenderSlowdown(0, factor) }

// SetFillOutcomeObserver registers fn on the shared borrower-port backend
// to observe every transaction outcome exactly once (the circuit breaker's
// feed). Per-priority backends created later are unaffected.
func (tb *Testbed) SetFillOutcomeObserver(fn func(ok bool)) {
	tb.backend.SetOutcomeObserver(fn)
}

// RemoteAddr maps an offset within the reservation to a borrower physical
// address in the hot-plugged window.
func (tb *Testbed) RemoteAddr(offset uint64) uint64 {
	if offset >= tb.cfg.WindowSize {
		panic(fmt.Sprintf("cluster: offset %#x beyond window %#x", offset, tb.cfg.WindowSize))
	}
	return RemoteBase + offset
}

// BaseRTT estimates the uncontended line-fill round trip from the
// configuration — used to parameterize FastPort so that fast-mode sweeps
// share the event-mode timing. The estimate mirrors the stage costs of the
// event datapath at PERIOD=1.
func (tb *Testbed) BaseRTT() sim.Duration {
	cfg := tb.cfg
	cyc := cfg.FPGACycle
	reqWire := sim.Duration(float64(ocapi.HeaderBytes+ocapi.CmdBytes) / cfg.LinkBandwidthBps * 1e12)
	respWire := sim.Duration(float64(ocapi.HeaderBytes+ocapi.CmdBytes+ocapi.CacheLineSize) / cfg.LinkBandwidthBps * 1e12)
	dramChan := cfg.LenderDRAM.BandwidthBps / float64(cfg.LenderDRAM.Channels)
	dramBurst := sim.Duration(float64(ocapi.CacheLineSize) / dramChan * 1e12)
	// Per direction: port latency, ~4 pipeline pumps, NIC pipeline, wire,
	// propagation; plus the lender memory access in the middle.
	oneWay := cfg.PortLatency + 4*cyc + cfg.NICPipeline + cfg.LinkPropagation
	return 2*oneWay + reqWire + respWire + cfg.LenderDRAM.AccessLatency + dramBurst
}
