// Package cluster composes the simulated testbed: nodes with CPU-side
// cache hierarchies, DRAM, disaggregated-memory NICs, and the
// point-to-point link between them — the two-AC922 ThymesisFlow setup of
// the paper's §III-A, with the delay injector configurable at the borrower
// egress.
package cluster

import (
	"fmt"

	"thymesim/internal/axis"
	"thymesim/internal/cache"
	"thymesim/internal/dram"
	"thymesim/internal/inject"
	"thymesim/internal/memport"
	"thymesim/internal/netlink"
	"thymesim/internal/obs"
	"thymesim/internal/ocapi"
	"thymesim/internal/sim"
	"thymesim/internal/tfnic"
)

// Node IDs of the two-node testbed.
const (
	BorrowerID = 0
	LenderID   = 1
)

// RemoteBase is the borrower physical address where the hot-plugged remote
// memory window begins; LenderBase is where the reservation sits in lender
// memory.
const (
	RemoteBase uint64 = 0x1000_0000_0000
	LenderBase uint64 = 0x20_0000_0000
)

// ProbeTagBase is the start of the tag range reserved for control-plane
// probe packets. Each probe gets a unique tag from this range, so a stale
// response (from an abandoned attach, or one delayed past its deadline)
// can never be mistaken for the reply to a newer probe.
const ProbeTagBase uint32 = 0xFFFF_0000

// IsProbeTag reports whether a tag belongs to the probe range.
func IsProbeTag(tag uint32) bool { return tag >= ProbeTagBase }

// Config parameterizes the testbed.
type Config struct {
	// Period is the delay injector PERIOD in FPGA cycles; 1 reproduces
	// vanilla ThymesisFlow (every cycle passes).
	Period int64
	// Gate, when non-nil, overrides Period with a custom injection gate
	// (distribution-based injection, trace replay, ...).
	Gate axis.Gate
	// FPGACycle is the NIC datapath clock (COUNTER granularity).
	FPGACycle sim.Duration
	// PortLatency is the CPU<->NIC OpenCAPI transport per direction.
	PortLatency sim.Duration
	// NICPipeline is the NIC serializer/PHY fixed latency per direction.
	NICPipeline sim.Duration
	// LinkBandwidthBps and LinkPropagation describe the cable.
	LinkBandwidthBps float64
	LinkPropagation  sim.Duration
	// MSHRs bounds outstanding line fills per hierarchy; TagSpace bounds
	// outstanding OpenCAPI commands at the shared borrower port.
	MSHRs    int
	TagSpace int
	// InjectClasses is the number of QoS priority classes at the delay
	// injector (1 = the paper's single-queue hardware).
	InjectClasses int
	// ARQ, when non-nil, interposes a retransmission layer between the
	// borrower port and the NIC: block operations become sequence-numbered
	// transactions that survive drops, nacks, and flaps (or fail crisply
	// with a poisoned completion). Nil reproduces the prototype's
	// recovery-free datapath.
	ARQ *tfnic.ARQConfig
	// FillDeadline, when positive, bounds every borrower-port transaction
	// end to end: a fill or writeback that has not resolved within it
	// completes poisoned immediately instead of waiting out ARQ death or a
	// hung lender. 0 reproduces the unbounded prototype.
	FillDeadline sim.Duration
	// Profile sets interconnect wire overheads (zero value = OpenCAPI
	// over Ethernet).
	Profile ocapi.Profile
	// WindowSize is the remote memory reservation size in bytes.
	WindowSize uint64
	// LenderDRAM configures the lender's memory subsystem.
	LenderDRAM dram.Config
	// BorrowerDRAM configures the borrower's local memory (baselines).
	BorrowerDRAM dram.Config
	// LLC configures per-hierarchy last-level cache geometry.
	LLC cache.Config
}

// DefaultConfig returns AC922-testbed-like parameters with the injector at
// the given PERIOD.
func DefaultConfig(period int64) Config {
	return Config{
		Period:           period,
		FPGACycle:        inject.DefaultFPGACycle,
		PortLatency:      150 * sim.Nanosecond,
		NICPipeline:      150 * sim.Nanosecond,
		LinkBandwidthBps: netlink.DefaultBandwidthBps,
		LinkPropagation:  netlink.DefaultPropagation,
		MSHRs:            memport.DefaultMSHRs,
		TagSpace:         256,
		InjectClasses:    1,
		WindowSize:       64 << 30,
		LenderDRAM:       dram.AC922Config(),
		BorrowerDRAM:     dram.AC922Config(),
		LLC:              cache.Config{SizeBytes: 4 << 20, Ways: 16, LineSize: ocapi.CacheLineSize},
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Period < 0 {
		return fmt.Errorf("cluster: PERIOD = %d", c.Period)
	}
	if c.Gate == nil && c.Period == 0 {
		return fmt.Errorf("cluster: need Period >= 1 or a Gate")
	}
	if c.MSHRs <= 0 || c.TagSpace < c.MSHRs {
		return fmt.Errorf("cluster: MSHRs=%d TagSpace=%d (tags must cover MSHRs)", c.MSHRs, c.TagSpace)
	}
	if c.InjectClasses < 1 {
		return fmt.Errorf("cluster: InjectClasses = %d", c.InjectClasses)
	}
	if c.ARQ != nil {
		if err := c.ARQ.Validate(); err != nil {
			return err
		}
	}
	if c.FillDeadline < 0 {
		return fmt.Errorf("cluster: negative FillDeadline")
	}
	if c.WindowSize == 0 || c.WindowSize%ocapi.CacheLineSize != 0 {
		return fmt.Errorf("cluster: window size %d", c.WindowSize)
	}
	if err := c.LenderDRAM.Validate(); err != nil {
		return err
	}
	if err := c.BorrowerDRAM.Validate(); err != nil {
		return err
	}
	return c.LLC.Validate()
}

// Testbed is the composed two-node system.
type Testbed struct {
	K   *sim.Kernel
	cfg Config

	BorrowerNIC *tfnic.NIC
	LenderNIC   *tfnic.NIC
	LenderMem   *dram.DRAM
	BorrowerMem *dram.DRAM
	Link        *netlink.Link

	// ARQ is the borrower-side retransmission layer (nil unless
	// Config.ARQ was set).
	ARQ *tfnic.ARQ

	backend   *memport.RemoteBackend
	backends  []*memport.RemoteBackend
	tagCursor uint32
	gate      axis.Gate
	// sender is what backends send through: the ARQ layer when configured,
	// else the borrower NIC directly.
	sender memport.Sender

	probeWaiters map[uint32]func(ocapi.Packet)
	probeCursor  uint32
	staleProbes  uint64

	tracer *obs.Tracer // nil when tracing is disabled
}

// NewTestbed wires the system and programs the remote-memory window.
func NewTestbed(cfg Config) *Testbed {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	k := sim.NewKernel()
	tb := &Testbed{K: k, cfg: cfg}

	gate := cfg.Gate
	if gate == nil {
		gate = inject.NewPeriodGate(cfg.Period, cfg.FPGACycle)
	}
	tb.gate = gate

	tb.BorrowerMem = dram.New(k, cfg.BorrowerDRAM)
	tb.LenderMem = dram.New(k, cfg.LenderDRAM)

	nicCfg := func(id int) tfnic.Config {
		return tfnic.Config{
			NodeID:          id,
			FPGACycle:       cfg.FPGACycle,
			PipelineLatency: cfg.NICPipeline,
			QueueDepth:      2 * cfg.TagSpace,
			InjectClasses:   cfg.InjectClasses,
			Profile:         cfg.Profile,
		}
	}
	tb.BorrowerNIC = tfnic.New(k, nicCfg(BorrowerID), gate, nil)
	tb.LenderNIC = tfnic.New(k, nicCfg(LenderID), nil, tb.LenderMem)

	tb.Link = netlink.NewLink(k,
		tb.BorrowerNIC.TxQ, tb.LenderNIC.RxQ,
		tb.LenderNIC.TxQ, tb.BorrowerNIC.RxQ,
		cfg.LinkBandwidthBps, cfg.LinkPropagation)

	tb.probeWaiters = make(map[uint32]func(ocapi.Packet))
	tb.sender = tb.BorrowerNIC
	if cfg.ARQ != nil {
		tb.ARQ = tfnic.NewARQ(k, tb.BorrowerNIC, *cfg.ARQ)
		tb.ARQ.OnComplete = tb.route
		tb.sender = tb.ARQ
		// Raw NIC deliveries feed the ARQ layer, which forwards resolved
		// transactions (and probe responses) to the router.
		tb.BorrowerNIC.OnDeliver = tb.ARQ.OnResponse
	} else {
		tb.BorrowerNIC.OnDeliver = tb.route
	}
	tb.backend = tb.newBackend()

	if err := tb.BorrowerNIC.Translator().AddWindow(tfnic.Window{
		BorrowerBase: RemoteBase,
		LenderBase:   LenderBase,
		Size:         cfg.WindowSize,
		LenderNode:   LenderID,
	}); err != nil {
		panic(err)
	}
	return tb
}

// Config returns the testbed configuration.
func (tb *Testbed) Config() Config { return tb.cfg }

// Kernel returns the simulation kernel (satisfies control.Prober).
func (tb *Testbed) Kernel() *sim.Kernel { return tb.K }

// Gate returns the active injection gate.
func (tb *Testbed) Gate() axis.Gate { return tb.gate }

// EnableTracing builds a span tracer on the testbed's kernel and installs
// its taps across the datapath (both NICs, every existing backend). Call
// it before creating hierarchies so they pick up the tracer at
// construction; hierarchies created earlier stay untraced. Tracing only
// observes — timing is bit-identical with it on or off.
func (tb *Testbed) EnableTracing(cfg obs.Config) *obs.Tracer {
	if tb.tracer != nil {
		panic("cluster: tracing already enabled")
	}
	tb.tracer = obs.New(tb.K, cfg)
	tb.BorrowerNIC.SetTracer(tb.tracer)
	tb.LenderNIC.SetTracer(tb.tracer)
	for _, b := range tb.backends {
		b.SetTracer(tb.tracer)
	}
	return tb.tracer
}

// Tracer returns the span tracer, or nil when tracing is disabled.
func (tb *Testbed) Tracer() *obs.Tracer { return tb.tracer }

// RemoteBackend exposes the shared borrower port (diagnostics).
func (tb *Testbed) RemoteBackend() *memport.RemoteBackend { return tb.backend }

// route delivers a resolved response to its consumer: probe waiters by
// probe tag, block completions to the owning backend. With ARQ configured
// it consumes ARQ completions; otherwise raw NIC deliveries.
func (tb *Testbed) route(p ocapi.Packet) {
	if IsProbeTag(p.Tag) {
		fn, ok := tb.probeWaiters[p.Tag]
		if !ok {
			tb.staleProbes++ // expired or abandoned probe; drop
			return
		}
		delete(tb.probeWaiters, p.Tag)
		fn(p)
		return
	}
	for _, b := range tb.backends {
		if b.Owns(p.Tag) {
			b.Deliver(p)
			return
		}
	}
	panic(fmt.Sprintf("cluster: response with unowned tag %d", p.Tag))
}

// ProbeWaiters returns control-plane probes awaiting a response.
func (tb *Testbed) ProbeWaiters() int { return len(tb.probeWaiters) }

// StaleProbeResponses returns probe responses that arrived after their
// waiter expired or was abandoned.
func (tb *Testbed) StaleProbeResponses() uint64 { return tb.staleProbes }

// newBackend allocates a borrower-port backend with a fresh tag range.
func (tb *Testbed) newBackend() *memport.RemoteBackend {
	base := tb.tagCursor
	tb.tagCursor += uint32(tb.cfg.TagSpace)
	if base+uint32(tb.cfg.TagSpace) > ProbeTagBase {
		panic("cluster: backend tag range collides with probe tags")
	}
	b := memport.NewRemoteBackendTags(tb.K, tb.sender, base, tb.cfg.TagSpace, tb.cfg.PortLatency, BorrowerID, LenderID)
	if tb.cfg.FillDeadline > 0 {
		b.SetDeadline(tb.cfg.FillDeadline)
	}
	if tb.tracer != nil {
		b.SetTracer(tb.tracer)
	}
	tb.backends = append(tb.backends, b)
	return b
}

// NewRemoteHierarchy returns a CPU-side hierarchy whose misses traverse the
// full disaggregated datapath (borrower NIC -> injector -> link -> lender
// DRAM). Multiple hierarchies share the NIC and tag space, which is how
// MCBN contention arises.
func (tb *Testbed) NewRemoteHierarchy() *memport.Hierarchy {
	h := memport.NewHierarchy(tb.K, cache.New(tb.cfg.LLC), tb.backend, tb.cfg.MSHRs)
	h.SetTracer(tb.tracer)
	return h
}

// NewRemoteHierarchyPrio is NewRemoteHierarchy with a dedicated backend
// stamping the given QoS class on its requests (0 = highest priority;
// classes beyond Config.InjectClasses-1 are clamped by the NIC).
func (tb *Testbed) NewRemoteHierarchyPrio(prio uint8) *memport.Hierarchy {
	b := tb.newBackend()
	b.SetPriority(prio)
	h := memport.NewHierarchy(tb.K, cache.New(tb.cfg.LLC), b, tb.cfg.MSHRs)
	h.SetTracer(tb.tracer)
	return h
}

// NewLocalHierarchy returns a hierarchy against the borrower's own DRAM —
// the "local memory" baseline of Table I.
func (tb *Testbed) NewLocalHierarchy() *memport.Hierarchy {
	backend := memport.NewDRAMBackend(tb.BorrowerMem)
	if tb.tracer != nil {
		backend.SetTracer(tb.tracer)
	}
	h := memport.NewHierarchy(tb.K, cache.New(tb.cfg.LLC), backend, tb.cfg.MSHRs)
	h.SetTracer(tb.tracer)
	return h
}

// NewLenderLocalHierarchy returns a hierarchy for applications running on
// the lender node against lender DRAM — the contending applications of the
// MCLN scenario (Fig. 7).
func (tb *Testbed) NewLenderLocalHierarchy() *memport.Hierarchy {
	backend := memport.NewDRAMBackend(tb.LenderMem)
	if tb.tracer != nil {
		backend.SetTracer(tb.tracer)
	}
	h := memport.NewHierarchy(tb.K, cache.New(tb.cfg.LLC), backend, tb.cfg.MSHRs)
	h.SetTracer(tb.tracer)
	return h
}

// nextProbeTag allocates a unique probe tag, skipping any still awaiting a
// response.
func (tb *Testbed) nextProbeTag() uint32 {
	for {
		tag := ProbeTagBase + tb.probeCursor
		tb.probeCursor = (tb.probeCursor + 1) & 0xFFFF
		if _, live := tb.probeWaiters[tag]; !live {
			return tag
		}
	}
}

// SendProbe transmits a control-plane probe through the (gated) egress
// path and calls done with the response when it returns. It reports false
// if the NIC command queue is saturated and the probe could not even be
// enqueued. A probe rejected by the lender (corrupted on the wire) never
// calls done — the caller's own deadline is its recovery.
func (tb *Testbed) SendProbe(done func(rtt sim.Duration)) bool {
	return tb.Probe(0, func(ok bool, rtt sim.Duration) {
		if ok {
			done(rtt)
		}
	})
}

// Probe is SendProbe with an explicit response deadline: done(false, 0)
// fires if no healthy response arrives within it (0 = wait forever). This
// is the heartbeat primitive the link supervisor drives re-attach from.
func (tb *Testbed) Probe(deadline sim.Duration, done func(ok bool, rtt sim.Duration)) bool {
	p := ocapi.Packet{
		Op:     ocapi.OpProbe,
		Tag:    tb.nextProbeTag(),
		Src:    BorrowerID,
		Dst:    LenderID,
		Issued: tb.K.Now(),
	}
	start := tb.K.Now()
	if !tb.sender.TrySend(p) {
		return false
	}
	tag := p.Tag
	tb.probeWaiters[tag] = func(resp ocapi.Packet) {
		if resp.Poison || resp.Op != ocapi.OpProbeResp {
			done(false, 0) // nacked probe: the lender could not trust it
			return
		}
		done(true, tb.K.Now().Sub(start))
	}
	if deadline > 0 {
		tb.K.After(deadline, func() {
			if _, live := tb.probeWaiters[tag]; !live {
				return // already answered
			}
			delete(tb.probeWaiters, tag)
			done(false, 0)
		})
	}
	return true
}

// CrashLender stops the lender's memory service: in-flight serves are
// lost and subsequent requests — probes included — are black-holed, so the
// borrower sees a silent peer, not an error (inject.FaultTarget).
func (tb *Testbed) CrashLender() { tb.LenderNIC.Crash() }

// RestoreLender restarts the lender. With wipe, the window state was lost
// across the crash: block requests are nacked until a control-plane probe
// re-arms the window (the supervisor's re-attach does exactly that).
func (tb *Testbed) RestoreLender(wipe bool) { tb.LenderNIC.Restore(wipe) }

// SetLenderSlowdown sets the lender memory service-time inflation factor
// (brownout injection); 1 restores nominal service.
func (tb *Testbed) SetLenderSlowdown(factor float64) { tb.LenderMem.SetSlowdown(factor) }

// SetFillOutcomeObserver registers fn on the shared borrower-port backend
// to observe every transaction outcome exactly once (the circuit breaker's
// feed). Per-priority backends created later are unaffected.
func (tb *Testbed) SetFillOutcomeObserver(fn func(ok bool)) {
	tb.backend.SetOutcomeObserver(fn)
}

// RemoteAddr maps an offset within the reservation to a borrower physical
// address in the hot-plugged window.
func (tb *Testbed) RemoteAddr(offset uint64) uint64 {
	if offset >= tb.cfg.WindowSize {
		panic(fmt.Sprintf("cluster: offset %#x beyond window %#x", offset, tb.cfg.WindowSize))
	}
	return RemoteBase + offset
}

// BaseRTT estimates the uncontended line-fill round trip from the
// configuration — used to parameterize FastPort so that fast-mode sweeps
// share the event-mode timing. The estimate mirrors the stage costs of the
// event datapath at PERIOD=1.
func (tb *Testbed) BaseRTT() sim.Duration {
	cfg := tb.cfg
	cyc := cfg.FPGACycle
	reqWire := sim.Duration(float64(ocapi.HeaderBytes+ocapi.CmdBytes) / cfg.LinkBandwidthBps * 1e12)
	respWire := sim.Duration(float64(ocapi.HeaderBytes+ocapi.CmdBytes+ocapi.CacheLineSize) / cfg.LinkBandwidthBps * 1e12)
	dramChan := cfg.LenderDRAM.BandwidthBps / float64(cfg.LenderDRAM.Channels)
	dramBurst := sim.Duration(float64(ocapi.CacheLineSize) / dramChan * 1e12)
	// Per direction: port latency, ~4 pipeline pumps, NIC pipeline, wire,
	// propagation; plus the lender memory access in the middle.
	oneWay := cfg.PortLatency + 4*cyc + cfg.NICPipeline + cfg.LinkPropagation
	return 2*oneWay + reqWire + respWire + cfg.LenderDRAM.AccessLatency + dramBurst
}
