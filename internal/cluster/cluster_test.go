package cluster

import (
	"testing"
	"testing/quick"

	"thymesim/internal/inject"
	"thymesim/internal/ocapi"
	"thymesim/internal/sim"
	"thymesim/internal/tfnic"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(1).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig(1)
	bad.Period = 0
	if err := bad.Validate(); err == nil {
		t.Error("period 0 without gate accepted")
	}
	bad = DefaultConfig(1)
	bad.TagSpace = 4
	if err := bad.Validate(); err == nil {
		t.Error("tag space below MSHRs accepted")
	}
	bad = DefaultConfig(1)
	bad.WindowSize = 100
	if err := bad.Validate(); err == nil {
		t.Error("unaligned window accepted")
	}
}

func TestSingleRemoteReadRTT(t *testing.T) {
	tb := NewTestbed(DefaultConfig(1))
	h := tb.NewRemoteHierarchy()
	var doneAt sim.Time
	tb.K.At(0, func() {
		h.Access(tb.RemoteAddr(0), 8, false, func() { doneAt = tb.K.Now() })
	})
	tb.K.Run()
	if doneAt == 0 {
		t.Fatal("read never completed")
	}
	rtt := sim.Duration(doneAt)
	// The paper's vanilla remote access is ~1.2us; the model should land
	// in the same regime (0.8–2us).
	if rtt < 800*sim.Nanosecond || rtt > 2*sim.Microsecond {
		t.Fatalf("base RTT = %v, want ~1.2us", rtt)
	}
	// The analytic estimate should be close to the measured value.
	est := tb.BaseRTT()
	ratio := float64(est) / float64(rtt)
	if ratio < 0.7 || ratio > 1.3 {
		t.Fatalf("BaseRTT estimate %v vs measured %v", est, rtt)
	}
}

func TestRemoteReadGoesThroughLenderDRAM(t *testing.T) {
	tb := NewTestbed(DefaultConfig(1))
	h := tb.NewRemoteHierarchy()
	tb.K.At(0, func() { h.Access(tb.RemoteAddr(0), 8, false, nil) })
	tb.K.Run()
	if tb.LenderMem.Reads() != 1 {
		t.Fatalf("lender reads = %d", tb.LenderMem.Reads())
	}
	if tb.BorrowerMem.Reads() != 0 {
		t.Fatalf("borrower DRAM touched: %d", tb.BorrowerMem.Reads())
	}
	if tb.BorrowerNIC.Stats().TranslationFaults != 0 {
		t.Fatalf("translation faults: %d", tb.BorrowerNIC.Stats().TranslationFaults)
	}
}

func TestLocalHierarchyUsesBorrowerDRAM(t *testing.T) {
	tb := NewTestbed(DefaultConfig(1))
	h := tb.NewLocalHierarchy()
	tb.K.At(0, func() { h.Access(0, 8, false, nil) })
	tb.K.Run()
	if tb.BorrowerMem.Reads() != 1 || tb.LenderMem.Reads() != 0 {
		t.Fatalf("borrower=%d lender=%d", tb.BorrowerMem.Reads(), tb.LenderMem.Reads())
	}
}

func TestInjectionSlowsFills(t *testing.T) {
	measure := func(period int64) sim.Duration {
		tb := NewTestbed(DefaultConfig(period))
		h := tb.NewRemoteHierarchy()
		var done sim.Time
		tb.K.At(0, func() {
			// Dependent chain of 10 distinct lines.
			var next func(i int)
			next = func(i int) {
				if i == 10 {
					done = tb.K.Now()
					return
				}
				h.Access(tb.RemoteAddr(uint64(i)*ocapi.CacheLineSize), 8, false, func() { next(i + 1) })
			}
			next(0)
		})
		tb.K.Run()
		return sim.Duration(done)
	}
	base := measure(1)
	slow := measure(2500) // 10us slots
	// Each dependent fill waits for its own slot: >= 9 full slots beyond
	// the first (which may land on slot 0 of the grid).
	if slow < 9*10*sim.Microsecond {
		t.Fatalf("period=2500 chain %v vs base %v: injection not delaying", slow, base)
	}
	if slow < 2*base {
		t.Fatalf("period=2500 chain %v not clearly slower than base %v", slow, base)
	}
}

func TestSaturatedBandwidthMatchesPeriod(t *testing.T) {
	// Saturated independent misses: the injector releases one request per
	// PERIOD cycles => line bandwidth = 128B / (PERIOD*4ns).
	const period = 50
	tb := NewTestbed(DefaultConfig(period))
	h := tb.NewRemoteHierarchy()
	const n = 2000
	tb.K.At(0, func() {
		for i := 0; i < n; i++ {
			h.Access(tb.RemoteAddr(uint64(i)*ocapi.CacheLineSize), 8, false, nil)
		}
	})
	end := tb.K.Run()
	bw := float64(n*ocapi.CacheLineSize) / sim.Time(end).Seconds()
	want := 128.0 / (float64(period) * 4e-9)
	if bw < 0.9*want || bw > 1.1*want {
		t.Fatalf("bandwidth = %.3g B/s, want ~%.3g", bw, want)
	}
}

func TestBDPRoughlyConstantAcrossPeriods(t *testing.T) {
	bdp := func(period int64) float64 {
		tb := NewTestbed(DefaultConfig(period))
		h := tb.NewRemoteHierarchy()
		const n = 3000
		tb.K.At(0, func() {
			for i := 0; i < n; i++ {
				h.Access(tb.RemoteAddr(uint64(i)*ocapi.CacheLineSize), 8, false, nil)
			}
		})
		end := tb.K.Run()
		bw := float64(n*ocapi.CacheLineSize) / sim.Time(end).Seconds()
		latUs := h.FillLatency().Mean()
		return bw * latUs / 1e6
	}
	a := bdp(20)
	b := bdp(100)
	ratio := a / b
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("BDP not constant: %v vs %v (ratio %v)", a, b, ratio)
	}
}

func TestProbeRoundTrip(t *testing.T) {
	tb := NewTestbed(DefaultConfig(1))
	var rtt sim.Duration
	tb.K.At(0, func() {
		if !tb.SendProbe(func(d sim.Duration) { rtt = d }) {
			t.Error("probe not accepted")
		}
	})
	tb.K.Run()
	if rtt <= 0 {
		t.Fatal("probe never returned")
	}
	if tb.LenderNIC.Stats().ProbesServed != 1 {
		t.Fatalf("probes served = %d", tb.LenderNIC.Stats().ProbesServed)
	}
}

func TestProbeDelayedByInjection(t *testing.T) {
	rtt := func(period int64) sim.Duration {
		tb := NewTestbed(DefaultConfig(period))
		var d sim.Duration
		// Issue off the slot grid: a probe arriving mid-slot waits for
		// the next COUNTER%PERIOD==0 instant.
		tb.K.At(sim.Time(3*sim.Microsecond), func() { tb.SendProbe(func(r sim.Duration) { d = r }) })
		tb.K.Run()
		return d
	}
	fast := rtt(1)
	slow := rtt(10000) // 40us slots
	if slow < fast+30*sim.Microsecond {
		t.Fatalf("probe not delayed: %v vs %v", slow, fast)
	}
}

func TestRemoteAddrBounds(t *testing.T) {
	tb := NewTestbed(DefaultConfig(1))
	if a := tb.RemoteAddr(0); a != RemoteBase {
		t.Fatalf("RemoteAddr(0) = %#x", a)
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-window offset did not panic")
		}
	}()
	tb.RemoteAddr(tb.Config().WindowSize)
}

func TestSharedPortFairnessAcrossHierarchies(t *testing.T) {
	// Two hierarchies on the borrower sharing the NIC should split
	// bandwidth roughly evenly (MCBN mechanism).
	tb := NewTestbed(DefaultConfig(20))
	h1 := tb.NewRemoteHierarchy()
	h2 := tb.NewRemoteHierarchy()
	const n = 1500
	tb.K.At(0, func() {
		for i := 0; i < n; i++ {
			h1.Access(tb.RemoteAddr(uint64(i)*ocapi.CacheLineSize), 8, false, nil)
			h2.Access(tb.RemoteAddr(uint64(n+i)*ocapi.CacheLineSize), 8, false, nil)
		}
	})
	tb.K.Run()
	f1 := h1.Stats().LineFills
	f2 := h2.Stats().LineFills
	if f1 != n || f2 != n {
		t.Fatalf("fills = %d/%d", f1, f2)
	}
	// Completion times interleaved: check per-hierarchy mean latency within 2x.
	l1 := h1.FillLatency().Mean()
	l2 := h2.FillLatency().Mean()
	ratio := l1 / l2
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("latency imbalance: %v vs %v", l1, l2)
	}
}

// Property: for arbitrary access patterns and PERIODs, the full datapath
// conserves transactions — every access completes, every request gets
// exactly one response, lender served = borrower sent, and no translation
// faults occur inside the window.
func TestDatapathConservationProperty(t *testing.T) {
	f := func(pattern []uint16, period8 uint8) bool {
		period := int64(period8%64) + 1
		tb := NewTestbed(DefaultConfig(period))
		h := tb.NewRemoteHierarchy()
		completions := 0
		tb.K.At(0, func() {
			for _, p := range pattern {
				addr := tb.RemoteAddr(uint64(p) * 512)
				h.Access(addr, 8, p%5 == 0, func() { completions++ })
			}
		})
		tb.K.Run()
		if completions != len(pattern) {
			return false
		}
		bs := tb.BorrowerNIC.Stats()
		ls := tb.LenderNIC.Stats()
		if bs.TranslationFaults != 0 {
			return false
		}
		// Every borrower request is served and answered exactly once.
		if bs.RequestsSent != ls.RequestsServed || ls.ResponsesSent != bs.ResponsesDelivered {
			return false
		}
		if bs.RequestsSent != bs.ResponsesDelivered {
			return false
		}
		// Lender memory saw exactly the fills + writebacks.
		st := h.Stats()
		return tb.LenderMem.Reads()+tb.LenderMem.Writes() == st.LineFills+st.Writebacks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// End-to-end recovery: with a lossy egress and ARQ, every access completes
// genuinely — drops become retransmissions, never hangs or poisons.
func TestARQRecoversThroughLossyLink(t *testing.T) {
	cfg := DefaultConfig(0)
	rng := sim.NewRand(41)
	cfg.Gate = inject.NewDropGate(inject.NewPeriodGate(1, cfg.FPGACycle), 0.2, rng)
	arq := tfnic.DefaultARQConfig()
	arq.Timeout = 20 * sim.Microsecond
	arq.MaxRetries = 10
	cfg.ARQ = &arq
	tb := NewTestbed(cfg)
	h := tb.NewRemoteHierarchy()
	const n = 300
	completed := 0
	tb.K.At(0, func() {
		for i := 0; i < n; i++ {
			h.Access(tb.RemoteAddr(uint64(i)*ocapi.CacheLineSize), 8, false, func() { completed++ })
		}
	})
	tb.K.Run()
	if completed != n {
		t.Fatalf("completed %d/%d under 20%% loss with ARQ", completed, n)
	}
	s := tb.ARQ.Stats()
	if s.Retransmits == 0 {
		t.Fatal("no retransmissions under 20% loss")
	}
	if s.Dead != 0 {
		t.Fatalf("dead transactions = %d with a generous retry budget", s.Dead)
	}
	if tb.ARQ.Outstanding() != 0 || tb.ARQ.QueuedRetries() != 0 {
		t.Fatalf("leaked txns: outstanding=%d queued=%d", tb.ARQ.Outstanding(), tb.ARQ.QueuedRetries())
	}
	if p := tb.RemoteBackend().Poisoned(); p != 0 {
		t.Fatalf("poisoned completions = %d", p)
	}
}

// With corruption and ARQ, nacked requests are retransmitted until a clean
// copy gets through.
func TestARQRecoversThroughCorruptingLink(t *testing.T) {
	cfg := DefaultConfig(0)
	cfg.Gate = inject.NewBitErrorGate(inject.NewPeriodGate(1, cfg.FPGACycle), 1e-3, sim.NewRand(7))
	arq := tfnic.DefaultARQConfig()
	cfg.ARQ = &arq
	tb := NewTestbed(cfg)
	h := tb.NewRemoteHierarchy()
	const n = 200
	completed := 0
	tb.K.At(0, func() {
		for i := 0; i < n; i++ {
			h.Access(tb.RemoteAddr(uint64(i)*ocapi.CacheLineSize), 8, false, func() { completed++ })
		}
	})
	tb.K.Run()
	if completed != n {
		t.Fatalf("completed %d/%d", completed, n)
	}
	if tb.ARQ.Stats().NackRetries == 0 {
		t.Fatal("no nack-driven retries at BER 1e-3")
	}
	if tb.LenderNIC.Stats().NacksSent == 0 {
		t.Fatal("lender sent no nacks")
	}
	if tb.RemoteBackend().Poisoned() != 0 {
		t.Fatalf("poisoned = %d", tb.RemoteBackend().Poisoned())
	}
}

// Without ARQ, a lossy link loses transactions: the run must still
// terminate (kernel drains) but with missing completions — the failure
// mode the recovery layer exists to fix.
func TestLossWithoutARQLosesAccesses(t *testing.T) {
	cfg := DefaultConfig(0)
	cfg.Gate = inject.NewDropGate(inject.NewPeriodGate(1, cfg.FPGACycle), 0.3, sim.NewRand(13))
	tb := NewTestbed(cfg)
	h := tb.NewRemoteHierarchy()
	const n = 100
	completed := 0
	tb.K.At(0, func() {
		for i := 0; i < n; i++ {
			h.Access(tb.RemoteAddr(uint64(i)*ocapi.CacheLineSize), 8, false, func() { completed++ })
		}
	})
	tb.K.Run()
	if completed >= n {
		t.Fatalf("all %d accesses completed through a 30%% lossy link without ARQ", n)
	}
}

// A probe that times out must free its waiter; a late response is counted
// stale, not delivered to a newer probe.
func TestProbeDeadlineExpiry(t *testing.T) {
	// Block the egress entirely for a while so the probe response can't
	// arrive before the deadline.
	cfg := DefaultConfig(0)
	cfg.Gate = inject.NewOutageGate([]inject.Window{{Start: 0, Duration: 100 * sim.Microsecond}}, cfg.FPGACycle)
	tb := NewTestbed(cfg)
	var outcomes []bool
	tb.K.At(0, func() {
		if !tb.Probe(10*sim.Microsecond, func(ok bool, _ sim.Duration) {
			outcomes = append(outcomes, ok)
		}) {
			t.Error("probe refused")
		}
	})
	tb.K.Run()
	if len(outcomes) != 1 || outcomes[0] {
		t.Fatalf("outcomes = %v, want one failure", outcomes)
	}
	if tb.ProbeWaiters() != 0 {
		t.Fatalf("leaked probe waiters: %d", tb.ProbeWaiters())
	}
	// The response eventually arrived after the outage with nobody waiting.
	if tb.StaleProbeResponses() != 1 {
		t.Fatalf("stale probe responses = %d", tb.StaleProbeResponses())
	}
}

// Unique probe tags: overlapping probes each get their own answer.
func TestConcurrentProbesDoNotStealResponses(t *testing.T) {
	tb := NewTestbed(DefaultConfig(1))
	answered := 0
	tb.K.At(0, func() {
		for i := 0; i < 8; i++ {
			if !tb.SendProbe(func(rtt sim.Duration) {
				if rtt <= 0 {
					t.Error("non-positive probe RTT")
				}
				answered++
			}) {
				t.Fatal("probe refused")
			}
		}
	})
	tb.K.Run()
	if answered != 8 {
		t.Fatalf("answered = %d/8", answered)
	}
	if tb.ProbeWaiters() != 0 {
		t.Fatalf("leaked waiters: %d", tb.ProbeWaiters())
	}
}
