package cluster

import (
	"fmt"
	"runtime"
	"testing"

	"thymesim/internal/obs"
	"thymesim/internal/ocapi"
	"thymesim/internal/sim"
)

// shardedFillTrace drives the same remote-fill workload on a pool built
// with the given shard count and returns per-borrower completion-time
// traces. Shards==0 is the legacy single-kernel path.
func shardedFillTrace(t *testing.T, shards, borrowers, lenders, accesses int) [][]sim.Time {
	t.Helper()
	cfg := DefaultPoolConfig(borrowers, lenders, 1)
	cfg.Shards = shards
	cfg.LenderCapacity = 1 << 20
	p := NewPool(cfg)
	traces := make([][]sim.Time, borrowers)
	for b := 0; b < borrowers; b++ {
		r, err := p.Attach(b, 64<<10)
		if err != nil {
			t.Fatal(err)
		}
		bn := p.Borrowers[b]
		h := bn.NewRemoteHierarchy()
		b := b
		bn.K.At(0, func() {
			for i := 0; i < accesses; i++ {
				off := uint64(i%512) * ocapi.CacheLineSize
				bn := bn
				h.Access(r.Addr(off), 8, i%3 == 0, func() {
					traces[b] = append(traces[b], bn.K.Now())
				})
			}
		})
	}
	p.Run()
	return traces
}

// TestPoolShardedFillsMatchLegacy: the full disaggregated datapath —
// hierarchy, NIC, cable, switch, lender DRAM and back — completes every
// fill at byte-identical instants on the legacy kernel, at 2 shards, and
// fully sharded.
func TestPoolShardedFillsMatchLegacy(t *testing.T) {
	const borrowers, lenders, accesses = 3, 2, 160
	want := shardedFillTrace(t, 0, borrowers, lenders, accesses)
	for _, shards := range []int{2, 3, borrowers + lenders + 1, 64} {
		if shards == 3 {
			// Force the goroutine-per-shard executor for one shard count
			// even on a single-CPU host (it is the default on multi-core);
			// under -race this is the full-datapath stress of the
			// cross-shard rings and barrier ordering.
			old := runtime.GOMAXPROCS(2)
			defer runtime.GOMAXPROCS(old)
		}
		got := shardedFillTrace(t, shards, borrowers, lenders, accesses)
		for b := range want {
			if len(want[b]) != accesses {
				t.Fatalf("legacy borrower %d completed %d of %d", b, len(want[b]), accesses)
			}
			if fmt.Sprint(got[b]) != fmt.Sprint(want[b]) {
				t.Fatalf("shards=%d borrower %d completion trace diverged\n got %v\nwant %v",
					shards, b, got[b], want[b])
			}
		}
	}
}

// TestPoolShardedControlPlane: StepTo-barrier driver churn — attach,
// probe, crash/restore, grow, detach — lands identically in both modes.
func TestPoolShardedControlPlane(t *testing.T) {
	// Three log streams: one per borrower for in-event notes (each written
	// only by the kernel goroutine that owns that borrower), one for the
	// driver phases. In-event append order across shards is wall-clock
	// interleaving, not simulation order, so byte-identity is asserted per
	// stream — within a stream, order is simulation order in both modes.
	run := func(shards int) [3][]string {
		cfg := DefaultPoolConfig(2, 2, 1)
		cfg.Shards = shards
		cfg.LenderCapacity = 1 << 20
		cfg.Base.ARQ = faultARQConfig()
		cfg.Base.FillDeadline = 200 * sim.Microsecond
		p := NewPool(cfg)
		var logs [3][]string
		// Driver-phase notes read the pool clock (shards parked at the step
		// boundary); in-event notes read the clock of the kernel they run
		// on — there is no global "now" while shards advance in parallel.
		note := func(format string, args ...any) {
			logs[2] = append(logs[2], fmt.Sprintf("%v: ", p.Now())+fmt.Sprintf(format, args...))
		}
		noteAt := func(b int, k *sim.Kernel, format string, args ...any) {
			logs[b] = append(logs[b], fmt.Sprintf("%v: ", k.Now())+fmt.Sprintf(format, args...))
		}
		regions := make([]Region, 2)
		hs := make([]interface {
			Access(addr uint64, size int, write bool, done func())
		}, 2)
		for b := 0; b < 2; b++ {
			r, err := p.Attach(b, 64<<10)
			if err != nil {
				t.Fatal(err)
			}
			regions[b] = r
			hs[b] = p.Borrowers[b].NewRemoteHierarchy()
		}
		step := 50 * sim.Microsecond
		for round := 1; round <= 6; round++ {
			p.StepTo(sim.Time(round) * sim.Time(step))
			switch round {
			case 1:
				for b := 0; b < 2; b++ {
					b := b
					bn := p.Borrowers[b]
					bn.ProbeLender(p.Lenders[b%len(p.Lenders)], 20*sim.Microsecond,
						func(ok bool, rtt sim.Duration) { noteAt(b, bn.K, "probe b%d ok=%t rtt=%v", b, ok, rtt) })
				}
			case 2:
				p.CrashLender(1)
				note("crashed lender 1")
			case 3:
				p.RestoreLender(1, true)
				note("restored lender 1 (wiped)")
			case 4:
				g, err := p.Grow(regions[0], 128<<10)
				note("grow: err=%v size=%d", err, g.Size)
				if err == nil {
					regions[0] = g
				}
			case 5:
				note("detach: err=%v", p.Detach(regions[1]))
			}
			// A traffic burst after every control phase.
			for b := 0; b < 2; b++ {
				if round >= 5 && b == 1 {
					continue // detached
				}
				b := b
				bn := p.Borrowers[b]
				for i := 0; i < 8; i++ {
					hs[b].Access(regions[b].Addr(uint64(i)*ocapi.CacheLineSize), 8, i%2 == 0,
						func() { noteAt(b, bn.K, "fill b%d done", b) })
				}
			}
		}
		p.Run()
		return logs
	}
	want := run(0)
	if len(want[0]) == 0 || len(want[2]) == 0 {
		t.Fatal("legacy run produced no events")
	}
	for _, shards := range []int{2, 5} {
		got := run(shards)
		for s := range want {
			if len(got[s]) != len(want[s]) {
				t.Fatalf("shards=%d stream %d: %d log lines, want %d\nfull got %v\nfull want %v",
					shards, s, len(got[s]), len(want[s]), got[s], want[s])
			}
			for i := range want[s] {
				if got[s][i] != want[s][i] {
					t.Fatalf("shards=%d stream %d line %d:\n got %s\nwant %s", shards, s, i, got[s][i], want[s][i])
				}
			}
		}
	}
}

// TestPoolShardedAccessors: mode plumbing.
func TestPoolShardedAccessors(t *testing.T) {
	cfg := DefaultPoolConfig(2, 2, 1)
	cfg.Shards = 3
	p := NewPool(cfg)
	if !p.Sharded() || p.Kernel() != nil || p.ShardedKernel() == nil {
		t.Fatal("sharded pool accessors inconsistent")
	}
	if p.NodeKernel(0) == p.NodeKernel(1) {
		t.Fatal("nodes 0 and 1 should land on different shards at Shards=3")
	}
	if p.NodeKernel(0) != p.Borrowers[0].K || p.NodeKernel(2) != p.Lenders[0].K {
		t.Fatal("NodeKernel does not match node K fields")
	}

	legacy := NewPool(DefaultPoolConfig(2, 2, 1))
	if legacy.Sharded() || legacy.Kernel() == nil || legacy.NodeKernel(3) != legacy.Kernel() {
		t.Fatal("legacy pool accessors inconsistent")
	}

	// The 1×1 pair has no fabric to cut: Shards is ignored.
	pairCfg := DefaultPoolConfig(1, 1, 1)
	pairCfg.Shards = 8
	if NewPool(pairCfg).Sharded() {
		t.Fatal("1x1 pool must stay legacy")
	}
}

// TestPoolShardedTracingPanics: the span tracer is single-kernel only.
func TestPoolShardedTracingPanics(t *testing.T) {
	cfg := DefaultPoolConfig(2, 2, 1)
	cfg.Shards = 2
	p := NewPool(cfg)
	defer func() {
		if recover() == nil {
			t.Fatal("EnableTracing on a sharded pool did not panic")
		}
	}()
	p.EnableTracing(obs.Config{Sample: 1})
}
