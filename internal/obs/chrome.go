// Chrome trace-event export: retained spans become "X" (complete) events
// nested under one event per transaction, loadable in chrome://tracing or
// Perfetto for visual inspection of a single remote access.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the trace-event JSON format. Timestamps and
// durations are in (possibly fractional) microseconds of simulated time.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace emits the retained spans (and instant events) as Chrome
// trace-event JSON. Each span becomes an enclosing complete event on its
// own track plus one nested complete event per stage, so the per-stage
// decomposition of a transaction is directly visible on the timeline.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	trace := chromeTrace{DisplayTimeUnit: "ns", TraceEvents: []chromeEvent{
		{Name: "process_name", Phase: "M", PID: 0,
			Args: map[string]any{"name": "thymesim datapath"}},
	}}
	if t != nil {
		// Spans are laid out on tracks by span-slot id: slots are recycled
		// only after their span finishes, so events on one track never
		// overlap and concurrent transactions land on different tracks.
		tracks := make(map[int]int) // pool slot -> compact track id
		track := func(slot int) int {
			id, ok := tracks[slot]
			if !ok {
				id = len(tracks) + 1
				tracks[slot] = id
			}
			return id
		}
		for i := range t.retained {
			sp := &t.retained[i]
			tid := track(int(sp.slot))
			dur := sp.end.Sub(sp.start).Micros()
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: sp.kind.String(), Phase: "X",
				TS: sp.start.Micros(), Dur: &dur, PID: 0, TID: tid,
				Args: map[string]any{"addr": fmt.Sprintf("%#x", sp.addr)},
			})
			for j := range sp.tr {
				from := sp.tr[j].at
				if j == 0 {
					from = sp.start
				}
				to := sp.end
				if j+1 < len(sp.tr) {
					to = sp.tr[j+1].at
				}
				d := to.Sub(from).Micros()
				trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
					Name: sp.tr[j].stage.String(), Phase: "X",
					TS: from.Micros(), Dur: &d, PID: 0, TID: tid,
				})
			}
		}
		for _, ev := range t.instants {
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: ev.name, Phase: "i", TS: ev.at.Micros(),
				PID: 0, TID: 0, Scope: "p",
				Args: map[string]any{"addr": fmt.Sprintf("%#x", ev.addr)},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(trace)
}
