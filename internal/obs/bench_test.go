package obs

import (
	"testing"

	"thymesim/internal/sim"
)

// TestDisabledTracerPathAllocatesNothing pins the design contract that
// lets the datapath call the tracer unconditionally: with a nil tracer
// the whole Start/Enter/Finish sequence must not allocate.
func TestDisabledTracerPathAllocatesNothing(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		id := tr.Start(KindRead, 0x1000)
		tr.Enter(id, StageMSHR)
		tr.Enter(id, StageDRAMAccess)
		tr.Finish(id)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer path allocates %v bytes/op, want 0", allocs)
	}
}

func BenchmarkDisabledSpan(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := tr.Start(KindRead, uint64(i))
		tr.Enter(id, StageMSHR)
		tr.Finish(id)
	}
}

// BenchmarkSpanRecordFinish measures the enabled steady state: the span
// pool is warm (slots recycle), retention is capped, so per-span cost is
// the aggregation arithmetic.
func BenchmarkSpanRecordFinish(b *testing.B) {
	k := sim.NewKernel()
	tr := New(k, Config{MaxRetained: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := tr.Start(KindRead, uint64(i))
		tr.Enter(id, StageMSHR)
		tr.Enter(id, StagePortTx)
		tr.Enter(id, StageLinkRequest)
		tr.Enter(id, StageDRAMAccess)
		tr.Enter(id, StageLinkResponse)
		tr.Finish(id)
	}
}

func BenchmarkSpanSampled(b *testing.B) {
	k := sim.NewKernel()
	tr := New(k, Config{Sample: 100, MaxRetained: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := tr.Start(KindRead, uint64(i))
		tr.Enter(id, StageMSHR)
		tr.Finish(id)
	}
}
