package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"thymesim/internal/sim"
	"thymesim/internal/telemetry"
)

func TestNilTracerIsDisabledNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	id := tr.Start(KindRead, 0x40)
	if id != 0 {
		t.Fatalf("nil tracer Start = %d, want 0", id)
	}
	tr.Enter(id, StageMSHR)
	tr.Finish(id)
	tr.Instant("evict", 0)
	tr.RegisterProbes(nil)
	if tr.Started() != 0 || tr.Finished() != 0 || tr.Live() != 0 ||
		tr.Skipped() != 0 || tr.Truncated() != 0 || tr.Retained() != 0 {
		t.Fatal("nil tracer counters nonzero")
	}
	if tr.EndToEnd() != nil || tr.StageHist(StageMSHR) != nil {
		t.Fatal("nil tracer histograms nonzero")
	}
	if tr.StageMeanUs(StageMSHR) != 0 || tr.EndToEndMeanUs() != 0 {
		t.Fatal("nil tracer means nonzero")
	}
	if tr.Breakdown() != nil {
		t.Fatal("nil tracer breakdown nonzero")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("nil tracer trace not valid JSON: %s", buf.Bytes())
	}
}

func TestSamplingIsDeterministicEveryNth(t *testing.T) {
	k := sim.NewKernel()
	tr := New(k, Config{Sample: 3})
	traced := 0
	for i := 0; i < 9; i++ {
		if id := tr.Start(KindRead, uint64(i)); id != 0 {
			traced++
			tr.Finish(id)
		}
	}
	if traced != 3 {
		t.Fatalf("Sample=3 traced %d of 9, want 3", traced)
	}
	if tr.Skipped() != 6 {
		t.Fatalf("Skipped = %d, want 6", tr.Skipped())
	}
	if tr.Started() != 3 || tr.Finished() != 3 {
		t.Fatalf("started/finished = %d/%d", tr.Started(), tr.Finished())
	}
}

// TestStageSumIdentity drives one span across simulated time and checks
// the invariant the breakdown table depends on: per-stage means sum to
// the end-to-end mean exactly, with the first stage absorbing any gap
// back to the span start.
func TestStageSumIdentity(t *testing.T) {
	k := sim.NewKernel()
	tr := New(k, Config{})
	var id SpanID
	us := func(n int64) sim.Time { return sim.Time(sim.Duration(n) * sim.Microsecond) }
	k.At(us(0), func() { id = tr.Start(KindRead, 0x1000) })
	k.At(us(3), func() { tr.Enter(id, StageMSHR) }) // stage 0 backdates to start
	k.At(us(4), func() { tr.Enter(id, StagePortTx) })
	k.At(us(10), func() { tr.Enter(id, StageDRAMAccess) })
	k.At(us(12), func() { tr.Finish(id) })
	k.Run()

	if tr.Finished() != 1 || tr.Live() != 0 {
		t.Fatalf("finished/live = %d/%d", tr.Finished(), tr.Live())
	}
	want := map[Stage]float64{StageMSHR: 4, StagePortTx: 6, StageDRAMAccess: 2}
	sum := 0.0
	for st := Stage(0); st < NumStages; st++ {
		m := tr.StageMeanUs(st)
		sum += m
		if w, ok := want[st]; ok && m != w {
			t.Errorf("StageMeanUs(%v) = %v, want %v", st, m, w)
		} else if !ok && m != 0 {
			t.Errorf("StageMeanUs(%v) = %v, want 0", st, m)
		}
	}
	if e2e := tr.EndToEndMeanUs(); e2e != 12 {
		t.Fatalf("EndToEndMeanUs = %v, want 12", e2e)
	}
	if math.Abs(sum-12) > 1e-12 {
		t.Fatalf("stage means sum to %v, want exactly the end-to-end 12", sum)
	}
}

func TestStaleAndRecycledIDsAreNoOps(t *testing.T) {
	k := sim.NewKernel()
	tr := New(k, Config{})
	old := tr.Start(KindRead, 1)
	tr.Finish(old)
	// The slot is recycled: a fresh span must not be reachable via the
	// stale id (generation mismatch).
	fresh := tr.Start(KindWrite, 2)
	if fresh == old {
		t.Fatalf("recycled span got identical id %d", fresh)
	}
	tr.Enter(old, StageDRAMQueue)
	tr.Finish(old) // double finish: no-op
	if tr.Finished() != 1 {
		t.Fatalf("Finished = %d after stale double-finish, want 1", tr.Finished())
	}
	tr.Finish(fresh)
	if tr.Finished() != 2 {
		t.Fatalf("Finished = %d, want 2", tr.Finished())
	}
	// Garbage ids beyond the pool are ignored too.
	tr.Enter(SpanID(1<<40|9999), StageMSHR)
	tr.Finish(SpanID(1<<40 | 9999))
	if tr.Finished() != 2 {
		t.Fatalf("Finished = %d after garbage id, want 2", tr.Finished())
	}
}

func TestTransitionOverflowTruncates(t *testing.T) {
	k := sim.NewKernel()
	tr := New(k, Config{})
	id := tr.Start(KindRead, 0)
	for i := 0; i < maxTransitions+8; i++ {
		tr.Enter(id, StageInjector)
	}
	tr.Finish(id)
	if tr.Truncated() != 1 {
		t.Fatalf("Truncated = %d, want 1", tr.Truncated())
	}
	rows := tr.Breakdown()
	if len(rows) != 1 || rows[0].Stage != StageInjector {
		t.Fatalf("breakdown = %+v", rows)
	}
	if rows[0].Count != maxTransitions {
		t.Fatalf("injector occurrences = %d, want %d", rows[0].Count, maxTransitions)
	}
}

func TestSpanWithoutTransitionsLandsInOther(t *testing.T) {
	k := sim.NewKernel()
	tr := New(k, Config{})
	var id SpanID
	k.At(0, func() { id = tr.Start(KindRead, 0) })
	k.At(sim.Time(5*sim.Microsecond), func() { tr.Finish(id) })
	k.Run()
	if m := tr.StageMeanUs(StageOther); m != 5 {
		t.Fatalf("StageMeanUs(other) = %v, want 5", m)
	}
	if e2e := tr.EndToEndMeanUs(); e2e != 5 {
		t.Fatalf("EndToEndMeanUs = %v, want 5", e2e)
	}
}

func TestBreakdownRowsAndTable(t *testing.T) {
	k := sim.NewKernel()
	tr := New(k, Config{})
	var id SpanID
	us := func(n int64) sim.Time { return sim.Time(sim.Duration(n) * sim.Microsecond) }
	k.At(us(0), func() { id = tr.Start(KindRead, 0) })
	k.At(us(1), func() { tr.Enter(id, StageLinkRequest) })
	k.At(us(4), func() { tr.Enter(id, StageDRAMAccess) })
	k.At(us(5), func() { tr.Finish(id) })
	k.Run()

	rows := tr.Breakdown()
	if len(rows) != 2 {
		t.Fatalf("breakdown rows = %+v, want 2 visited stages", rows)
	}
	// Pipeline order, shares out of the 5us total.
	if rows[0].Stage != StageLinkRequest || rows[1].Stage != StageDRAMAccess {
		t.Fatalf("row order = %v,%v", rows[0].Stage, rows[1].Stage)
	}
	if rows[0].MeanUs != 4 || rows[0].SharePct != 80 {
		t.Fatalf("link_request row = %+v", rows[0])
	}
	if rows[1].MeanUs != 1 || rows[1].SharePct != 20 {
		t.Fatalf("dram_access row = %+v", rows[1])
	}

	tbl := tr.BreakdownTable("t")
	if got := len(tbl.Rows); got != 3 { // 2 stages + end_to_end
		t.Fatalf("table rows = %d, want 3", got)
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[0] != "end_to_end" || last[2] != "5.0000" || last[4] != "100.0" {
		t.Fatalf("end_to_end row = %v", last)
	}
}

func TestWriteChromeTraceShape(t *testing.T) {
	k := sim.NewKernel()
	tr := New(k, Config{MaxRetained: 2})
	var id SpanID
	us := func(n int64) sim.Time { return sim.Time(sim.Duration(n) * sim.Microsecond) }
	k.At(us(0), func() { id = tr.Start(KindRead, 0xbeef) })
	k.At(us(1), func() { tr.Enter(id, StageLinkRequest) })
	k.At(us(2), func() { tr.Enter(id, StageDRAMAccess) })
	k.At(us(3), func() { tr.Finish(id) })
	k.At(us(4), func() {
		tr.Instant("llc_evict", 1)
		tr.Instant("llc_evict", 2)
		tr.Instant("llc_evict", 3) // over MaxRetained: dropped
	})
	k.Run()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	// 1 metadata + 1 enclosing span + 2 stage events + 2 retained instants.
	if len(parsed.TraceEvents) != 6 {
		t.Fatalf("trace has %d events, want 6: %s", len(parsed.TraceEvents), buf.Bytes())
	}
	counts := map[string]int{}
	for _, ev := range parsed.TraceEvents {
		counts[ev.Phase]++
	}
	if counts["M"] != 1 || counts["X"] != 3 || counts["i"] != 2 {
		t.Fatalf("phase counts = %v", counts)
	}
	if parsed.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", parsed.DisplayTimeUnit)
	}
}

func TestRegisterProbesNames(t *testing.T) {
	k := sim.NewKernel()
	tr := New(k, Config{})
	s := telemetry.NewSampler(k, sim.Duration(sim.Microsecond))
	tr.RegisterProbes(s)
	names := map[string]bool{}
	for _, n := range s.Names() {
		names[n] = true
	}
	if !names["span_finished"] || !names["span_live"] {
		t.Fatalf("probe names = %v", s.Names())
	}
	for st := Stage(0); st < StageOther; st++ {
		if !names["span_"+st.String()+"_mean_us"] {
			t.Fatalf("missing probe for stage %v in %v", st, s.Names())
		}
	}
	// 2 counters + one mean per real stage.
	if got, want := len(s.Names()), 2+int(StageOther); got != want {
		t.Fatalf("probe count = %d, want %d", got, want)
	}
}
