// Package obs is the simulation-time span tracer: it follows individual
// transactions (borrower cache miss -> memport -> NIC egress -> delay
// injector -> link -> lender ingress -> DRAM -> response) and records
// per-stage enter/exit timestamps, the decomposition the paper's Table I
// reports from hardware counters.
//
// Design constraints, in order:
//
//  1. Zero cost when disabled. Every public method is nil-safe, so callers
//     hold a possibly-nil *Tracer and call it unconditionally; the disabled
//     fast path is one nil check and allocates nothing.
//  2. Timing-neutral when enabled. The tracer schedules no events and
//     consumes no randomness — enabling it cannot perturb the simulation,
//     so traced and untraced runs produce bit-identical measurements.
//  3. Bounded memory on long runs. Span records are pooled and recycled,
//     a sampling rate bounds how many transactions are traced at all, and
//     raw spans retained for Chrome-trace export are capped; aggregation
//     (per-stage histograms) continues past the cap.
//
// A Tracer is bound to one kernel and holds no package-global state, so
// concurrent testbeds in a parallel sweep each trace independently; do not
// share one Tracer across kernels.
package obs

import (
	"fmt"

	"thymesim/internal/metrics"
	"thymesim/internal/sim"
	"thymesim/internal/telemetry"
)

// Stage identifies one segment of the datapath a transaction traverses.
// The values are ordered along the request/response pipeline; breakdown
// output follows this order.
type Stage uint8

// Datapath stages, in pipeline order.
const (
	// StageMSHR is the wait for an MSHR slot at the CPU side.
	StageMSHR Stage = iota
	// StagePortTx is the CPU -> NIC OpenCAPI transport of the request.
	StagePortTx
	// StageTagWait is the wait for a command tag and NIC queue space.
	StageTagWait
	// StageNICEgress is the borrower NIC command queue and routing block.
	StageNICEgress
	// StageInjector is the delay/fault gate at the injection point.
	StageInjector
	// StageNICTx is the egress multiplexer and serializer/PHY to the wire.
	StageNICTx
	// StageLinkRequest is the request on the wire (serialization +
	// propagation, including any TX queueing at the link).
	StageLinkRequest
	// StageLenderIngress is the lender NIC ingress pipeline and dispatch.
	StageLenderIngress
	// StageDRAMQueue is the memory-controller queue wait.
	StageDRAMQueue
	// StageDRAMAccess is the device access latency plus data-bus burst.
	StageDRAMAccess
	// StageLenderEgress is the lender NIC response egress pipeline.
	StageLenderEgress
	// StageLinkResponse is the response on the wire.
	StageLinkResponse
	// StageBorrowerIngress is the borrower NIC ingress and response
	// routing (including the ARQ layer when configured).
	StageBorrowerIngress
	// StagePortRx is the NIC -> CPU transport of the response.
	StagePortRx
	// StageOther absorbs time the instrumentation could not attribute
	// (spans finished without any stage transition).
	StageOther

	// NumStages is the number of defined stages.
	NumStages
)

var stageNames = [NumStages]string{
	"mshr_wait",
	"port_tx",
	"tag_wait",
	"nic_egress",
	"injector",
	"nic_tx",
	"link_request",
	"lender_ingress",
	"dram_queue",
	"dram_access",
	"lender_egress",
	"link_response",
	"borrower_ingress",
	"port_rx",
	"other",
}

// String implements fmt.Stringer.
func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", uint8(s))
}

// Kind labels what a span measures.
type Kind uint8

// Span kinds.
const (
	KindRead Kind = iota
	KindWrite
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == KindWrite {
		return "write"
	}
	return "read_fill"
}

// SpanID names a live span. The zero value means "untraced" and makes
// every tracer method a no-op, so sampling decisions propagate for free
// through the datapath (the id rides in ocapi.Packet.Trace).
type SpanID uint64

// Config parameterizes a Tracer.
type Config struct {
	// Sample traces every Nth eligible transaction (<= 1 traces all).
	// Sampling is deterministic (a modular counter, no randomness).
	Sample int
	// MaxRetained caps raw spans (and instant events) kept in memory for
	// Chrome-trace export; 0 means DefaultMaxRetained. Aggregation into
	// histograms continues past the cap.
	MaxRetained int
}

// DefaultMaxRetained bounds raw spans retained for export by default.
const DefaultMaxRetained = 8192

// maxTransitions bounds stage transitions recorded per span. A clean
// remote line fill uses 14; the headroom absorbs ARQ retransmissions.
// Overflowing spans attribute their tail to the last recorded stage and
// are counted in Truncated.
const maxTransitions = 32

type transition struct {
	at    sim.Time
	stage Stage
}

// span is a pooled in-flight record.
type span struct {
	gen   uint32
	live  bool
	kind  Kind
	n     uint8
	trunc uint16
	addr  uint64
	start sim.Time
	tr    [maxTransitions]transition
}

// retainedSpan is a finished span kept for Chrome-trace export.
type retainedSpan struct {
	slot  uint32 // pool slot: reused only after finish, so it makes a track
	kind  Kind
	addr  uint64
	start sim.Time
	end   sim.Time
	tr    []transition
}

type instantEvent struct {
	name string
	addr uint64
	at   sim.Time
}

// Tracer records transaction spans against one simulation kernel. A nil
// *Tracer is valid and disabled; all methods are nil-safe.
type Tracer struct {
	k         *sim.Kernel
	sample    uint64
	tick      uint64
	maxRetain int

	slots []span
	free  []uint32

	started   uint64
	finished  uint64
	skipped   uint64
	truncated uint64

	e2eSum     sim.Duration
	e2e        *metrics.Histogram
	stageSum   [NumStages]sim.Duration
	stageCount [NumStages]uint64
	stageHist  [NumStages]*metrics.Histogram

	retained     []retainedSpan
	instants     []instantEvent
	droppedSpans uint64
	droppedInst  uint64

	// onStage, when set, observes every per-stage duration as Finish
	// attributes it — the metrics plane's stage-rollup feed. Decoupled by
	// a plain func so obs does not depend on the plane.
	onStage func(stage int, durUs float64)
}

// New builds an enabled tracer on k.
func New(k *sim.Kernel, cfg Config) *Tracer {
	if k == nil {
		panic("obs: nil kernel")
	}
	sample := cfg.Sample
	if sample < 1 {
		sample = 1
	}
	maxRetain := cfg.MaxRetained
	if maxRetain <= 0 {
		maxRetain = DefaultMaxRetained
	}
	t := &Tracer{
		k:         k,
		sample:    uint64(sample),
		maxRetain: maxRetain,
		e2e:       metrics.NewHistogram(0.001),
	}
	for i := range t.stageHist {
		t.stageHist[i] = metrics.NewHistogram(0.001)
	}
	return t
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// SetStageObserver registers fn to receive every per-stage duration as
// spans finish (nil-safe; nil fn clears). The observer must be
// observe-only: it runs inside Finish on the simulation's critical path.
func (t *Tracer) SetStageObserver(fn func(stage int, durUs float64)) {
	if t != nil {
		t.onStage = fn
	}
}

// StageNames returns the datapath stage names indexed by Stage value,
// for observers that label rollups by stage.
func StageNames() []string {
	out := make([]string, NumStages)
	for i := range out {
		out[i] = Stage(i).String()
	}
	return out
}

// Start opens a span for one transaction at the current instant and
// returns its id, or 0 when the tracer is disabled or the transaction is
// sampled out.
func (t *Tracer) Start(kind Kind, addr uint64) SpanID {
	if t == nil {
		return 0
	}
	t.tick++
	if t.sample > 1 && t.tick%t.sample != 0 {
		t.skipped++
		return 0
	}
	var slot uint32
	if n := len(t.free); n > 0 {
		slot = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		t.slots = append(t.slots, span{})
		slot = uint32(len(t.slots) - 1)
	}
	sp := &t.slots[slot]
	gen := sp.gen + 1
	if gen == 0 {
		gen = 1
	}
	*sp = span{gen: gen, live: true, kind: kind, addr: addr, start: t.k.Now()}
	t.started++
	return SpanID(uint64(gen)<<32 | uint64(slot+1))
}

// lookup resolves an id to its live span, or nil for stale/foreign ids.
func (t *Tracer) lookup(id SpanID) *span {
	slot := uint32(id) - 1
	if int(slot) >= len(t.slots) {
		return nil
	}
	sp := &t.slots[slot]
	if !sp.live || sp.gen != uint32(id>>32) {
		return nil
	}
	return sp
}

// Enter records that span id moved into stage st at the current instant,
// implicitly ending the previous stage. No-op for disabled tracers and
// zero ids.
func (t *Tracer) Enter(id SpanID, st Stage) {
	if t == nil || id == 0 {
		return
	}
	sp := t.lookup(id)
	if sp == nil {
		return
	}
	if int(sp.n) == len(sp.tr) {
		sp.trunc++
		return
	}
	sp.tr[sp.n] = transition{at: t.k.Now(), stage: st}
	sp.n++
}

// Finish closes the span at the current instant, aggregates its per-stage
// durations, retains the raw record for export (up to MaxRetained), and
// recycles the span slot.
func (t *Tracer) Finish(id SpanID) {
	if t == nil || id == 0 {
		return
	}
	sp := t.lookup(id)
	if sp == nil {
		return
	}
	end := t.k.Now()
	total := end.Sub(sp.start)
	t.finished++
	if sp.trunc > 0 {
		t.truncated++
	}
	t.e2eSum += total
	t.e2e.Observe(total.Micros())
	if sp.n == 0 {
		// Nothing attributed; keep the sum-of-stages identity anyway.
		t.stageSum[StageOther] += total
		t.stageCount[StageOther]++
		t.stageHist[StageOther].Observe(total.Micros())
	}
	for i := 0; i < int(sp.n); i++ {
		// Stage i runs from its transition (the span start for the first,
		// absorbing any leading gap) to the next transition or span end,
		// so per-span stage durations sum to the end-to-end latency
		// exactly, truncation or not.
		d := t.stageSpan(sp, i, end)
		st := sp.tr[i].stage
		t.stageSum[st] += d
		t.stageCount[st]++
		t.stageHist[st].Observe(d.Micros())
	}
	if t.onStage != nil {
		// Replay the attribution for the observer in a second pass, so the
		// common no-observer case costs one branch per span, not per stage.
		if sp.n == 0 {
			t.onStage(int(StageOther), total.Micros())
		}
		for i := 0; i < int(sp.n); i++ {
			t.onStage(int(sp.tr[i].stage), t.stageSpan(sp, i, end).Micros())
		}
	}
	if len(t.retained) < t.maxRetain {
		t.retained = append(t.retained, retainedSpan{
			slot:  uint32(id) - 1,
			kind:  sp.kind,
			addr:  sp.addr,
			start: sp.start,
			end:   end,
			tr:    append([]transition(nil), sp.tr[:sp.n]...),
		})
	} else {
		t.droppedSpans++
	}
	sp.live = false
	t.free = append(t.free, uint32(id)-1)
}

// stageSpan returns the duration of the span's i-th attributed stage:
// from its transition (the span start for the first, absorbing any
// leading gap) to the next transition or the span end.
func (t *Tracer) stageSpan(sp *span, i int, end sim.Time) sim.Duration {
	from := sp.tr[i].at
	if i == 0 {
		from = sp.start
	}
	to := end
	if i+1 < int(sp.n) {
		to = sp.tr[i+1].at
	}
	return to.Sub(from)
}

// Instant records a point event (e.g. an LLC eviction) for the Chrome
// trace. Bounded by MaxRetained; overflow is counted and dropped.
func (t *Tracer) Instant(name string, addr uint64) {
	if t == nil {
		return
	}
	if len(t.instants) >= t.maxRetain {
		t.droppedInst++
		return
	}
	t.instants = append(t.instants, instantEvent{name: name, addr: addr, at: t.k.Now()})
}

// Started returns spans opened (post-sampling).
func (t *Tracer) Started() uint64 {
	if t == nil {
		return 0
	}
	return t.started
}

// Finished returns spans closed and aggregated.
func (t *Tracer) Finished() uint64 {
	if t == nil {
		return 0
	}
	return t.finished
}

// Live returns spans currently in flight.
func (t *Tracer) Live() uint64 {
	if t == nil {
		return 0
	}
	return t.started - t.finished
}

// Skipped returns transactions sampled out.
func (t *Tracer) Skipped() uint64 {
	if t == nil {
		return 0
	}
	return t.skipped
}

// Truncated returns finished spans that overflowed their transition
// budget (their tail time is attributed to the last recorded stage).
func (t *Tracer) Truncated() uint64 {
	if t == nil {
		return 0
	}
	return t.truncated
}

// Retained returns raw spans available for Chrome-trace export.
func (t *Tracer) Retained() int {
	if t == nil {
		return 0
	}
	return len(t.retained)
}

// EndToEnd returns the end-to-end latency histogram (microseconds).
func (t *Tracer) EndToEnd() *metrics.Histogram {
	if t == nil {
		return nil
	}
	return t.e2e
}

// StageHist returns the per-occurrence duration histogram of one stage
// (microseconds).
func (t *Tracer) StageHist(st Stage) *metrics.Histogram {
	if t == nil {
		return nil
	}
	return t.stageHist[st]
}

// StageMeanUs returns the stage's mean contribution per finished span, in
// microseconds. Averaging over all finished spans (not just the spans
// that visited the stage) makes the per-stage means sum to the
// end-to-end mean exactly.
func (t *Tracer) StageMeanUs(st Stage) float64 {
	if t == nil || t.finished == 0 {
		return 0
	}
	return t.stageSum[st].Micros() / float64(t.finished)
}

// EndToEndMeanUs returns the mean end-to-end span latency in
// microseconds.
func (t *Tracer) EndToEndMeanUs() float64 {
	if t == nil || t.finished == 0 {
		return 0
	}
	return t.e2eSum.Micros() / float64(t.finished)
}

// BreakdownRow is one stage of the critical-path decomposition.
type BreakdownRow struct {
	Stage Stage
	// Count is how many stage occurrences were recorded (>= Finished when
	// retransmissions revisit a stage).
	Count uint64
	// MeanUs is the stage's mean contribution per finished span; the
	// column sums to the end-to-end mean exactly.
	MeanUs float64
	// P99Us is the per-occurrence 99th-percentile duration.
	P99Us float64
	// SharePct is MeanUs as a percentage of the end-to-end mean.
	SharePct float64
}

// Breakdown returns the per-stage decomposition in pipeline order,
// omitting stages never visited.
func (t *Tracer) Breakdown() []BreakdownRow {
	if t == nil || t.finished == 0 {
		return nil
	}
	e2e := t.EndToEndMeanUs()
	var rows []BreakdownRow
	for st := Stage(0); st < NumStages; st++ {
		if t.stageCount[st] == 0 {
			continue
		}
		mean := t.StageMeanUs(st)
		share := 0.0
		if e2e > 0 {
			share = 100 * mean / e2e
		}
		rows = append(rows, BreakdownRow{
			Stage:    st,
			Count:    t.stageCount[st],
			MeanUs:   mean,
			P99Us:    t.stageHist[st].Quantile(0.99),
			SharePct: share,
		})
	}
	return rows
}

// BreakdownTable renders the decomposition (plus an end_to_end summary
// row) as a metrics table.
func (t *Tracer) BreakdownTable(title string) *metrics.Table {
	tbl := &metrics.Table{
		Title:   title,
		Columns: []string{"stage", "count", "mean (us)", "p99 (us)", "share (%)"},
	}
	if t == nil {
		return tbl
	}
	for _, r := range t.Breakdown() {
		tbl.AddRow(r.Stage.String(),
			fmt.Sprintf("%d", r.Count),
			fmt.Sprintf("%.4f", r.MeanUs),
			fmt.Sprintf("%.4f", r.P99Us),
			fmt.Sprintf("%.1f", r.SharePct))
	}
	tbl.AddRow("end_to_end",
		fmt.Sprintf("%d", t.finished),
		fmt.Sprintf("%.4f", t.EndToEndMeanUs()),
		fmt.Sprintf("%.4f", t.e2e.Quantile(0.99)),
		"100.0")
	return tbl
}

// RegisterProbes registers span observables on a telemetry sampler: the
// finished/live span counts and each stage's running mean contribution.
// Call before s.Start.
func (t *Tracer) RegisterProbes(s *telemetry.Sampler) {
	if t == nil {
		return
	}
	s.Register("span_finished", func() float64 { return float64(t.Finished()) })
	s.Register("span_live", func() float64 { return float64(t.Live()) })
	for st := Stage(0); st < StageOther; st++ {
		st := st
		s.Register("span_"+st.String()+"_mean_us", func() float64 { return t.StageMeanUs(st) })
	}
}
