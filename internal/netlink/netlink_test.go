package netlink

import (
	"testing"

	"thymesim/internal/axis"
	"thymesim/internal/sim"
)

func TestChannelSerializationAndPropagation(t *testing.T) {
	k := sim.NewKernel()
	tx := axis.NewFIFO("tx", 16)
	rx := axis.NewFIFO("rx", 16)
	// 1 GB/s, 100ns propagation: 1000 bytes => 1us wire + 100ns prop.
	c := NewChannel(k, tx, rx, 1e9, 100*sim.Nanosecond)
	var deliveredAt sim.Time
	rx.OnData(func() { deliveredAt = k.Now() })
	k.At(0, func() { tx.Push(axis.Beat{Bytes: 1000}) })
	k.Run()
	want := sim.Time(sim.Microsecond + 100*sim.Nanosecond)
	if deliveredAt != want {
		t.Fatalf("delivered at %v, want %v", deliveredAt, want)
	}
	if c.Delivered() != 1 || c.Bytes() != 1000 {
		t.Fatalf("delivered=%d bytes=%d", c.Delivered(), c.Bytes())
	}
}

func TestChannelPipelining(t *testing.T) {
	k := sim.NewKernel()
	tx := axis.NewFIFO("tx", 16)
	rx := axis.NewFIFO("rx", 16)
	// Propagation is pipelined with serialization of the next beat.
	NewChannel(k, tx, rx, 1e9, sim.Duration(10*sim.Microsecond))
	k.At(0, func() {
		for i := 0; i < 4; i++ {
			tx.Push(axis.Beat{Bytes: 1000})
		}
	})
	end := k.Run()
	// 4 serializations back to back (4us) + one propagation (10us).
	want := sim.Time(4*sim.Microsecond + 10*sim.Microsecond)
	if end != want {
		t.Fatalf("end = %v, want %v", end, want)
	}
	if rx.Len() != 4 {
		t.Fatalf("rx = %d", rx.Len())
	}
}

func TestChannelBackpressure(t *testing.T) {
	k := sim.NewKernel()
	tx := axis.NewFIFO("tx", 16)
	rx := axis.NewFIFO("rx", 2)
	NewChannel(k, tx, rx, 1e12, 0)
	k.At(0, func() {
		for i := 0; i < 6; i++ {
			tx.Push(axis.Beat{Bytes: 100, Dest: i})
		}
	})
	k.Run()
	if rx.Len() != 2 || tx.Len() != 4 {
		t.Fatalf("backpressure: rx=%d tx=%d", rx.Len(), tx.Len())
	}
	k.At(k.Now(), func() { rx.Pop(); rx.Pop() })
	k.Run()
	if rx.Len() != 2 || tx.Len() != 2 {
		t.Fatalf("resume: rx=%d tx=%d", rx.Len(), tx.Len())
	}
}

func TestChannelInFlightDoesNotOverflowRx(t *testing.T) {
	k := sim.NewKernel()
	tx := axis.NewFIFO("tx", 16)
	rx := axis.NewFIFO("rx", 1)
	// Long propagation: several beats could be in flight without credit
	// accounting; rx capacity 1 means at most one may be.
	NewChannel(k, tx, rx, 1e12, sim.Duration(sim.Millisecond))
	k.At(0, func() {
		for i := 0; i < 3; i++ {
			tx.Push(axis.Beat{Bytes: 100})
		}
	})
	// Never pop: exactly one beat may be delivered; a Push to a full FIFO
	// would panic.
	k.Run()
	if rx.Len() != 1 || tx.Len() != 2 {
		t.Fatalf("rx=%d tx=%d", rx.Len(), tx.Len())
	}
}

func TestChannelBandwidthSaturation(t *testing.T) {
	k := sim.NewKernel()
	tx := axis.NewFIFO("tx", 4096)
	rx := axis.NewFIFO("rx", 4096)
	c := NewChannel(k, tx, rx, DefaultBandwidthBps, DefaultPropagation)
	const n = 1000
	const beatBytes = 1250 // 100ns each at 100Gb/s
	k.At(0, func() {
		for i := 0; i < n; i++ {
			tx.Push(axis.Beat{Bytes: beatBytes})
		}
	})
	end := k.Run()
	gotBps := float64(c.Bytes()) / sim.Time(end).Seconds()
	if gotBps < 0.9*DefaultBandwidthBps || gotBps > 1.01*DefaultBandwidthBps {
		t.Fatalf("achieved %v B/s, want ~%v", gotBps, DefaultBandwidthBps)
	}
	if u := c.Utilization(); u < 0.95 {
		t.Fatalf("utilization = %v", u)
	}
}

func TestChannelSerializationTime(t *testing.T) {
	k := sim.NewKernel()
	c := NewChannel(k, axis.NewFIFO("tx", 1), axis.NewFIFO("rx", 1), 12.5e9, 0)
	if got := c.SerializationTime(1250); got != 100*sim.Nanosecond {
		t.Fatalf("serialization = %v, want 100ns", got)
	}
}

func TestLinkFullDuplex(t *testing.T) {
	k := sim.NewKernel()
	txA := axis.NewFIFO("txA", 16)
	rxA := axis.NewFIFO("rxA", 16)
	txB := axis.NewFIFO("txB", 16)
	rxB := axis.NewFIFO("rxB", 16)
	l := NewLink(k, txA, rxB, txB, rxA, 1e9, 0)
	k.At(0, func() {
		txA.Push(axis.Beat{Bytes: 1000})
		txB.Push(axis.Beat{Bytes: 2000})
	})
	end := k.Run()
	// Directions are independent: both complete at their own serialization
	// times; end = max(1us, 2us).
	if end != sim.Time(2*sim.Microsecond) {
		t.Fatalf("end = %v", end)
	}
	if rxB.Len() != 1 || rxA.Len() != 1 {
		t.Fatalf("rxB=%d rxA=%d", rxB.Len(), rxA.Len())
	}
	if l.String() == "" {
		t.Error("empty link summary")
	}
}

func TestChannelValidation(t *testing.T) {
	k := sim.NewKernel()
	for _, fn := range []func(){
		func() { NewChannel(k, axis.NewFIFO("a", 1), axis.NewFIFO("b", 1), 0, 0) },
		func() { NewChannel(k, axis.NewFIFO("a", 1), axis.NewFIFO("b", 1), 1e9, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
