// Package netlink models the network between disaggregated-memory NICs.
//
// The paper's prototype replaces the datacenter network with a 100 Gb/s
// point-to-point copper cable (§III-A); Channel models one direction of
// such a link with store-and-forward serialization and propagation delay.
// Link pairs two channels into a full-duplex cable.
package netlink

import (
	"fmt"

	"thymesim/internal/axis"
	"thymesim/internal/metricsplane"
	"thymesim/internal/sim"
)

// Default parameters for the prototype's cable.
const (
	// DefaultBandwidthBps is 100 Gb/s in bytes per second.
	DefaultBandwidthBps = 100e9 / 8
	// DefaultPropagation covers the copper cable plus PHY latency.
	DefaultPropagation = 100 * sim.Nanosecond
)

// Channel moves beats from a TX FIFO to an RX FIFO in one direction:
// serialization time bytes/bandwidth on a shared wire (FIFO order), then
// propagation delay, then delivery. Delivery into a full RX FIFO applies
// backpressure by pausing the wire (credit-based link-layer flow control).
type Channel struct {
	k           *sim.Kernel
	tx, rx      *axis.FIFO
	wire        *sim.Server
	propagation sim.Duration
	bytesPerSec float64
	armed       bool
	inflight    int // beats past the wire, still propagating

	delivered uint64
	bytes     uint64
	mx        *metricsplane.LinkMetrics // nil when the metrics plane is disabled
	// free is an intrusive free list of per-beat wire contexts; a warmed-up
	// channel serves and propagates without allocating.
	free *wireFlight
}

// wireFlight carries one beat across the channel's two stages: arg 0 fires
// at serialization end (launch propagation, unarm, admit the next beat),
// arg 1 at propagation end (deliver and return to the pool).
type wireFlight struct {
	c    *Channel
	b    axis.Beat
	next *wireFlight
}

// Handle implements sim.Handler.
func (f *wireFlight) Handle(stage uint64) {
	c := f.c
	if stage == 0 {
		// Order matters for determinism: the propagation event is
		// scheduled before the next beat can reach the wire, exactly as
		// the closure-based code did.
		c.k.AfterH(c.propagation, f, 1)
		c.armed = false
		c.kick()
		return
	}
	c.inflight--
	c.delivered++
	c.bytes += uint64(f.b.Bytes)
	if c.mx != nil {
		c.mx.Delivered(uint64(f.b.Bytes), c.wire.Utilization())
	}
	b := f.b
	f.b = axis.Beat{} // drop payload refs before pooling
	f.next = c.free
	c.free = f
	c.rx.Push(b)
}

// NewChannel wires a unidirectional channel between tx and rx.
func NewChannel(k *sim.Kernel, tx, rx *axis.FIFO, bandwidthBps float64, propagation sim.Duration) *Channel {
	if bandwidthBps <= 0 {
		panic("netlink: bandwidth must be positive")
	}
	if propagation < 0 {
		panic("netlink: negative propagation")
	}
	c := &Channel{
		k: k, tx: tx, rx: rx,
		wire:        sim.NewServer(k),
		propagation: propagation,
		bytesPerSec: bandwidthBps,
	}
	tx.OnData(c.kick)
	rx.OnSpace(c.kick)
	return c
}

// Delivered returns the number of beats delivered to the RX FIFO.
func (c *Channel) Delivered() uint64 { return c.delivered }

// SetMetrics attaches the metrics plane's per-channel delivery counters
// and utilization gauge (observe-only; nil disables).
func (c *Channel) SetMetrics(m *metricsplane.LinkMetrics) { c.mx = m }

// Bytes returns the cumulative wire bytes delivered.
func (c *Channel) Bytes() uint64 { return c.bytes }

// Utilization returns the wire's busy fraction since simulation start.
func (c *Channel) Utilization() float64 { return c.wire.Utilization() }

// SerializationTime returns the wire time for n bytes.
func (c *Channel) SerializationTime(n int) sim.Duration {
	return sim.Duration(float64(n) / c.bytesPerSec * 1e12)
}

func (c *Channel) kick() {
	if c.armed || c.tx.Len() == 0 {
		return
	}
	// Model link-layer credits: put the head on the wire only when the
	// receiver can accept it, counting beats already in the propagation
	// pipe so the receiver cannot be overflowed.
	if c.rx.Space()-c.inflight <= 0 {
		return
	}
	b, _ := c.tx.Pop()
	c.armed = true
	c.inflight++
	ser := c.SerializationTime(b.Bytes)
	f := c.free
	if f == nil {
		f = &wireFlight{c: c}
	} else {
		c.free = f.next
		f.next = nil
	}
	f.b = b
	c.wire.ServeH(ser, f, 0)
}

// Link is a full-duplex point-to-point cable: direction A→B and B→A.
type Link struct {
	AtoB *Channel
	BtoA *Channel
}

// NewLink builds a full-duplex link over the four endpoint FIFOs.
func NewLink(k *sim.Kernel, txA, rxB, txB, rxA *axis.FIFO, bandwidthBps float64, propagation sim.Duration) *Link {
	return &Link{
		AtoB: NewChannel(k, txA, rxB, bandwidthBps, propagation),
		BtoA: NewChannel(k, txB, rxA, bandwidthBps, propagation),
	}
}

// String summarizes delivery counts.
func (l *Link) String() string {
	return fmt.Sprintf("link{a->b: %d beats/%d B, b->a: %d beats/%d B}",
		l.AtoB.Delivered(), l.AtoB.Bytes(), l.BtoA.Delivered(), l.BtoA.Bytes())
}
