package netlink

import (
	"sync/atomic"

	"thymesim/internal/axis"
	"thymesim/internal/metricsplane"
	"thymesim/internal/sim"
)

// CrossChannel is Channel's cross-shard twin: the TX FIFO, wire server,
// and admission logic live on the source shard; the RX FIFO and delivery
// accounting live on the destination shard; and the cable's propagation
// delay is the conservative lookahead that lets the two shards run
// concurrently. Behavior matches Channel exactly as long as the RX FIFO
// never fills (the pool sizes cut queues so it cannot — see
// cluster.PoolConfig), because the only semantic difference is flow
// control: Channel reads the receiver's free space instantly, while a
// CrossChannel claims link-layer credits at admission and gets them back
// one propagation delay after the receiver drains a beat. If pressure
// does reach the cut, the credit loop still applies correct (merely more
// conservative) backpressure instead of overflowing the receiver.
type CrossChannel struct {
	// TX half — touched only by the source shard.
	ks          *sim.Kernel
	tx          *axis.FIFO
	wire        *sim.Server
	propagation sim.Duration
	bytesPerSec float64
	armed       bool
	credits     int
	pending     axis.Beat // the beat on the wire (at most one; armed gates)
	fwd         *sim.Stream

	// RX half — touched only by the destination shard.
	kd        *sim.Kernel
	rx        *axis.FIFO
	rev       *sim.Stream
	delivered uint64
	bytes     uint64
	mx        *metricsplane.LinkMetrics

	// ring hands beats (and the wire's busy time for the utilization
	// gauge) from the TX to the RX shard. Sized to the credit count, so it
	// can never fill: a slot is reused only after its credit completed the
	// full claim → deliver → drain → return loop.
	ring beatRing
}

// Dispatch stages for CrossChannel.Handle. Serialization end runs on the
// source shard; delivery and credit return arrive via the two streams.
const (
	xDeliver = iota // destination shard: beat reaches the RX FIFO
	xCredit         // source shard: receiver drained a beat
	xSerEnd         // source shard: wire finished serializing
)

// NewCrossChannel wires a unidirectional channel whose endpoints live on
// different shards. fwd must be a stream from the TX shard to the RX
// shard and rev the reverse; both shards must be connected with lookahead
// <= propagation (the cable itself is the Connect edge).
func NewCrossChannel(ks, kd *sim.Kernel, fwd, rev *sim.Stream, tx, rx *axis.FIFO, bandwidthBps float64, propagation sim.Duration) *CrossChannel {
	if bandwidthBps <= 0 {
		panic("netlink: bandwidth must be positive")
	}
	if propagation <= 0 {
		panic("netlink: cross-shard propagation must be positive (it is the lookahead)")
	}
	c := &CrossChannel{
		ks: ks, kd: kd, fwd: fwd, rev: rev, tx: tx, rx: rx,
		wire:        sim.NewServer(ks),
		propagation: propagation,
		bytesPerSec: bandwidthBps,
		credits:     rx.Space(),
	}
	c.ring.init(rx.Cap())
	tx.OnData(c.kick)
	rx.OnSpace(c.onRxSpace)
	return c
}

// Handle implements sim.Handler across both shards; the stage argument
// says which side is running.
func (c *CrossChannel) Handle(stage uint64) {
	switch stage {
	case xSerEnd:
		// Source shard, serialization complete: hand the beat to the
		// cross-shard ring and schedule its arrival on the destination.
		// The busy sample rides along so the utilization gauge can be
		// computed at delivery time without touching the TX shard.
		b := c.pending
		c.pending = axis.Beat{}
		c.ring.push(b, c.wire.BusyTime())
		c.fwd.Send(c.ks.Now().Add(c.propagation), c, xDeliver)
		c.armed = false
		c.kick()
	case xDeliver:
		// Destination shard: deliveries arrive in serialization order
		// (FIFO wire, constant propagation, order-preserving stream), so
		// the ring head is this event's beat.
		b, busy := c.ring.pop()
		c.delivered++
		c.bytes += uint64(b.Bytes)
		if c.mx != nil {
			c.mx.Delivered(uint64(b.Bytes), busy.Seconds()/sim.Time(c.kd.Now()).Seconds())
		}
		c.rx.Push(b)
	case xCredit:
		// Source shard: a receiver slot freed one propagation delay ago.
		c.credits++
		c.kick()
	}
}

// kick admits the TX head onto the wire when the channel is idle and the
// receiver has a free (credited) slot — Channel.kick with the instant
// rx.Space()-inflight check replaced by the credit count.
func (c *CrossChannel) kick() {
	if c.armed || c.tx.Len() == 0 {
		return
	}
	if c.credits <= 0 {
		return
	}
	b, _ := c.tx.Pop()
	c.armed = true
	c.credits--
	c.pending = b
	c.wire.ServeH(c.SerializationTime(b.Bytes), c, xSerEnd)
}

// onRxSpace runs on the destination shard whenever the receiver drains a
// beat; the freed slot travels back as a credit with the cable's own
// latency.
func (c *CrossChannel) onRxSpace() {
	c.rev.Send(c.kd.Now().Add(c.propagation), c, xCredit)
}

// Delivered returns the number of beats delivered to the RX FIFO.
func (c *CrossChannel) Delivered() uint64 { return c.delivered }

// Bytes returns the cumulative wire bytes delivered.
func (c *CrossChannel) Bytes() uint64 { return c.bytes }

// Utilization returns the wire's busy fraction. Call only between runs
// (the wire lives on the TX shard).
func (c *CrossChannel) Utilization() float64 { return c.wire.Utilization() }

// SetMetrics attaches the metrics plane's per-channel delivery counters
// (observe-only; nil disables). The utilization gauge is sampled at
// serialization end rather than Channel's delivery instant — counters are
// identical, the gauge may trail by beats admitted during propagation.
func (c *CrossChannel) SetMetrics(m *metricsplane.LinkMetrics) { c.mx = m }

// SerializationTime returns the wire time for n bytes.
func (c *CrossChannel) SerializationTime(n int) sim.Duration {
	return sim.Duration(float64(n) / c.bytesPerSec * 1e12)
}

// CrossLink is a full-duplex cable whose two endpoints live on different
// shards. ab must be a stream from shard A to shard B and ba the reverse;
// each stream carries one direction's deliveries and the other
// direction's credit returns.
type CrossLink struct {
	AtoB *CrossChannel
	BtoA *CrossChannel
}

// NewCrossLink builds the full-duplex cross-shard link over the four
// endpoint FIFOs (same argument order as NewLink).
func NewCrossLink(ka, kb *sim.Kernel, ab, ba *sim.Stream, txA, rxB, txB, rxA *axis.FIFO, bandwidthBps float64, propagation sim.Duration) *CrossLink {
	return &CrossLink{
		AtoB: NewCrossChannel(ka, kb, ab, ba, txA, rxB, bandwidthBps, propagation),
		BtoA: NewCrossChannel(kb, ka, ba, ab, txB, rxA, bandwidthBps, propagation),
	}
}

// beatRing is a fixed-capacity SPSC ring carrying in-flight beats between
// the TX and RX shards. Unlike the coordinator's inbox rings it is read
// and written concurrently (both shards are inside the same conservative
// window), so the cursors are atomic: the producer publishes a slot with
// the tail store, the consumer releases it with the head store. Capacity
// equals the link-layer credit count, so push can never find it full.
type beatRing struct {
	slots      []beatSlot
	mask       uint64
	head, tail atomic.Uint64
}

type beatSlot struct {
	b    axis.Beat
	busy sim.Duration
}

func (r *beatRing) init(capacity int) {
	c := 1
	for c < capacity {
		c <<= 1
	}
	r.slots = make([]beatSlot, c)
	r.mask = uint64(c - 1)
}

// push publishes a beat from the TX shard.
func (r *beatRing) push(b axis.Beat, busy sim.Duration) {
	t := r.tail.Load()
	if t-r.head.Load() == uint64(len(r.slots)) {
		panic("netlink: cross-shard beat ring overflow (credit accounting broken)")
	}
	r.slots[t&r.mask] = beatSlot{b: b, busy: busy}
	r.tail.Store(t + 1)
}

// pop consumes the oldest beat on the RX shard. The caller's delivery
// event is proof the ring is non-empty.
func (r *beatRing) pop() (axis.Beat, sim.Duration) {
	h := r.head.Load()
	if h == r.tail.Load() {
		panic("netlink: cross-shard delivery with empty beat ring")
	}
	s := r.slots[h&r.mask]
	r.slots[h&r.mask] = beatSlot{}
	r.head.Store(h + 1)
	return s.b, s.busy
}
