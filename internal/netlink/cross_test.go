package netlink

import (
	"fmt"
	"testing"

	"thymesim/internal/axis"
	"thymesim/internal/sim"
)

// crossPair builds a full-duplex cross-shard link between shard 0 and
// shard 1 of a fresh 2-shard kernel, with a simple consumer on each RX
// FIFO that pops after a fixed think time and records delivery instants.
func crossPair(bw float64, prop sim.Duration, rxCap int) (*sim.ShardedKernel, *CrossLink, *axis.FIFO, *axis.FIFO, *axis.FIFO, *axis.FIFO) {
	sk := sim.NewShardedKernel(2)
	sk.Connect(0, 1, prop)
	sk.Connect(1, 0, prop)
	ab := sk.NewStream(0, 1)
	ba := sk.NewStream(1, 0)
	txA := axis.NewFIFO("txA", 64)
	rxB := axis.NewFIFO("rxB", rxCap)
	txB := axis.NewFIFO("txB", 64)
	rxA := axis.NewFIFO("rxA", rxCap)
	l := NewCrossLink(sk.Shard(0), sk.Shard(1), ab, ba, txA, rxB, txB, rxA, bw, prop)
	return sk, l, txA, rxB, txB, rxA
}

// TestCrossChannelMatchesChannel: with roomy receivers (the pool's sizing
// contract), a cross-shard channel delivers every beat at exactly the
// instants the single-kernel Channel does.
func TestCrossChannelMatchesChannel(t *testing.T) {
	const bw, prop, beats = 1e9, 100 * sim.Nanosecond, 20

	// Legacy single-kernel reference.
	k := sim.NewKernel()
	tx := axis.NewFIFO("tx", 64)
	rx := axis.NewFIFO("rx", 64)
	NewChannel(k, tx, rx, bw, prop)
	var want []sim.Time
	rx.OnData(func() {
		want = append(want, k.Now())
		rx.Pop()
	})
	k.At(0, func() {
		for i := 0; i < beats; i++ {
			tx.Push(axis.Beat{Bytes: 100 * (i + 1), Dest: i})
		}
	})
	k.Run()

	// Cross-shard run, same traffic.
	sk, _, txA, rxB, _, _ := crossPair(bw, prop, 64)
	var got []sim.Time
	rxB.OnData(func() {
		got = append(got, sk.Shard(1).Now())
		rxB.Pop()
	})
	sk.Shard(0).At(0, func() {
		for i := 0; i < beats; i++ {
			txA.Push(axis.Beat{Bytes: 100 * (i + 1), Dest: i})
		}
	})
	sk.Run()

	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("delivery instants diverged:\n got %v\nwant %v", got, want)
	}
}

// TestCrossChannelFullDuplex: both directions run concurrently on their
// own shards and deliver everything.
func TestCrossChannelFullDuplex(t *testing.T) {
	sk, l, txA, rxB, txB, rxA := crossPair(1e9, 100*sim.Nanosecond, 64)
	rxB.OnData(func() { rxB.Pop() })
	rxA.OnData(func() { rxA.Pop() })
	sk.Shard(0).At(0, func() {
		for i := 0; i < 10; i++ {
			txA.Push(axis.Beat{Bytes: 256})
		}
	})
	sk.Shard(1).At(0, func() {
		for i := 0; i < 10; i++ {
			txB.Push(axis.Beat{Bytes: 256})
		}
	})
	sk.Run()
	if l.AtoB.Delivered() != 10 || l.BtoA.Delivered() != 10 {
		t.Fatalf("delivered a->b=%d b->a=%d, want 10/10", l.AtoB.Delivered(), l.BtoA.Delivered())
	}
	if l.AtoB.Bytes() != 2560 || l.BtoA.Bytes() != 2560 {
		t.Fatalf("bytes a->b=%d b->a=%d", l.AtoB.Bytes(), l.BtoA.Bytes())
	}
}

// TestCrossChannelCreditBackpressure: when the receiver does fill, the
// credit loop bounds in-flight beats at the RX capacity instead of
// overflowing, and drains resume the flow.
func TestCrossChannelCreditBackpressure(t *testing.T) {
	const rxCap = 2
	sk, l, txA, rxB, _, _ := crossPair(1e12, 100*sim.Nanosecond, rxCap)
	sk.Shard(0).At(0, func() {
		for i := 0; i < 6; i++ {
			txA.Push(axis.Beat{Bytes: 100, Dest: i})
		}
	})
	sk.Run()
	if rxB.Len() != rxCap || txA.Len() != 6-rxCap {
		t.Fatalf("stalled: rx=%d tx=%d, want %d/%d", rxB.Len(), txA.Len(), rxCap, 6-rxCap)
	}
	// Drain on the RX shard; credits flow back and release the rest.
	rxB.OnData(func() { rxB.Pop() })
	sk.Shard(1).At(sk.Shard(1).Now(), func() {
		for rxB.Len() > 0 {
			rxB.Pop()
		}
	})
	sk.Run()
	if txA.Len() != 0 || l.AtoB.Delivered() != 6 {
		t.Fatalf("resume: tx=%d delivered=%d, want 0/6", txA.Len(), l.AtoB.Delivered())
	}
}

// TestCrossChannelValidation: zero propagation has no lookahead and must
// be rejected.
func TestCrossChannelValidation(t *testing.T) {
	sk := sim.NewShardedKernel(2)
	sk.Connect(0, 1, 1)
	sk.Connect(1, 0, 1)
	ab, ba := sk.NewStream(0, 1), sk.NewStream(1, 0)
	tx, rx := axis.NewFIFO("tx", 4), axis.NewFIFO("rx", 4)
	defer func() {
		if recover() == nil {
			t.Fatal("zero propagation did not panic")
		}
	}()
	NewCrossChannel(sk.Shard(0), sk.Shard(1), ab, ba, tx, rx, 1e9, 0)
}
