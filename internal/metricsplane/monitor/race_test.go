package monitor

// This file's tests exist for the race detector as much as for their
// assertions: a -j 8 pool sweep writes every instrument kind through one
// shared plane while the exposition endpoint scrapes mid-run, which is
// exactly the concurrency the live monitor sees in production. Run with
// `go test -race ./internal/metricsplane/...`.

import (
	"io"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"thymesim/internal/core"
	"thymesim/internal/metricsplane"
)

func TestConcurrentSweepWithLiveScrapes(t *testing.T) {
	plane := metricsplane.New()
	plane.SetRun("race test")
	srv := httptest.NewServer(Handler(plane))
	defer srv.Close()

	scrape := func() string {
		resp, err := srv.Client().Get(srv.URL + "/metrics")
		if err != nil {
			t.Error(err)
			return ""
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Error(err)
			return ""
		}
		return string(body)
	}

	opts := core.Default()
	opts.Workers = 8
	opts.Metrics = plane

	// Scrapers hammer the endpoint for the whole sweep; every body must
	// parse as well-formed exposition even when sampled mid-update.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				body := scrape()
				if body == "" {
					return
				}
				if _, err := metricsplane.ParseExposition(body); err != nil {
					t.Errorf("mid-run scrape invalid: %v", err)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}

	// Eight concurrent sweep points share the plane: borrower node ids
	// repeat across points, so the same instruments are written from
	// several kernels at once.
	pc := opts.RunPoolContention([]int{1, 2}, 2)
	close(stop)
	wg.Wait()

	if len(pc.Bps) == 0 || pc.Bps[0][0] <= 0 {
		t.Fatalf("sweep produced no bandwidth: %+v", pc.Bps)
	}

	final := scrape()
	parsed, err := metricsplane.ParseExposition(final)
	if err != nil {
		t.Fatalf("final scrape invalid: %v", err)
	}
	fills, ok := parsed.Value("thymesim_fill_reads_total", map[string]string{"node": "0"})
	if !ok || fills <= 0 {
		t.Fatalf("borrower 0 recorded no fills (ok=%v, fills=%v)", ok, fills)
	}
	if v, ok := parsed.Value("thymesim_fill_latency_us_count", map[string]string{"node": "0"}); !ok || v <= 0 {
		t.Fatalf("fill latency histogram empty (ok=%v, count=%v)", ok, v)
	}
	if v, ok := parsed.Value("thymesim_alloc_capacity_bytes", map[string]string{"lender": "0"}); !ok || v <= 0 {
		t.Fatalf("lender 0 allocator gauges missing (ok=%v, capacity=%v)", ok, v)
	}
}

func TestScrapesSeeMonotonicCounters(t *testing.T) {
	plane := metricsplane.New()
	srv := httptest.NewServer(Handler(plane))
	defer srv.Close()

	opts := core.Default()
	opts.Workers = 8
	opts.Metrics = plane

	read := func() float64 {
		resp, err := srv.Client().Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		parsed, err := metricsplane.ParseExposition(string(body))
		if err != nil {
			t.Fatal(err)
		}
		v, _ := parsed.Value("thymesim_fill_reads_total", map[string]string{"node": "0"})
		return v
	}

	before := read()
	opts.RunPoolContention([]int{1}, 1)
	mid := read()
	opts.RunPoolContention([]int{1}, 1)
	after := read()
	if !(before <= mid && mid <= after && after > before) {
		t.Fatalf("counter not monotonic across runs: %v, %v, %v", before, mid, after)
	}
}
