// Package monitor is the metrics plane's live HTTP run monitor. It is a
// separate package so that only the binaries link the net/http stack:
// the simulation packages depend on metricsplane alone, keeping the
// datapath's allocation profile (and the bench gate) free of the HTTP
// runtime's background work.
package monitor

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"thymesim/internal/metricsplane"
)

// Server is the live run monitor: an HTTP listener serving the plane
// while a campaign executes. Endpoints:
//
//	/metrics  Prometheus text exposition v0.0.4
//	/healthz  200 "ok"
//	/status   JSON RunStatus (run, phase, sweep progress, SLOs)
//	/stream   NDJSON snapshots (one per second; ?n=K stops after K)
//	/events   NDJSON flight-recorder contents
type Server struct {
	plane *metricsplane.Plane
	ln    net.Listener
	srv   *http.Server
}

// Handler returns the monitor's routes for p, for embedding or tests.
func Handler(p *metricsplane.Plane) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		metricsplane.WritePrometheus(w, p.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(p.Status())
	})
	mux.HandleFunc("/stream", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		n := 0
		if v := r.URL.Query().Get("n"); v != "" {
			n, _ = strconv.Atoi(v)
		}
		flusher, _ := w.(http.Flusher)
		for i := 0; n <= 0 || i < n; i++ {
			if i > 0 {
				select {
				case <-r.Context().Done():
					return
				case <-time.After(time.Second):
				}
			}
			if err := metricsplane.WriteNDJSON(w, p.Snapshot()); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		p.Recorder().WriteNDJSON(w)
	})
	return mux
}

// Serve starts the monitor on addr (e.g. ":9464" or "127.0.0.1:0") and
// returns once the listener is bound; requests are served on a
// background goroutine. Scrapes observe the run live — the simulation
// keeps executing on its own goroutines and all reads are atomic.
func Serve(addr string, p *metricsplane.Plane) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{plane: p, ln: ln, srv: &http.Server{Handler: Handler(p)}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener.
func (s *Server) Close() error { return s.srv.Close() }
