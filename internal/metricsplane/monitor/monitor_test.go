package monitor

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"thymesim/internal/metricsplane"
)

func get(t *testing.T, srv *httptest.Server, path string) (string, *http.Response) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp
}

func TestMonitorEndpoints(t *testing.T) {
	p := metricsplane.New()
	p.SetRun("unit run")
	p.SetPhase("scraping")
	p.SweepPlanned(4)
	p.SweepPointDone()
	fm := p.FillMetricsFor(0, "")
	fm.FillDone(12.5, false, false, 1)
	fm.FillDone(14, true, true, 2)

	srv := httptest.NewServer(Handler(p))
	defer srv.Close()

	body, resp := get(t, srv, "/healthz")
	if resp.StatusCode != 200 || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz %d %q", resp.StatusCode, body)
	}

	body, resp = get(t, srv, "/metrics")
	if got := resp.Header.Get("Content-Type"); got != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/metrics content type %q", got)
	}
	parsed, err := metricsplane.ParseExposition(body)
	if err != nil {
		t.Fatalf("/metrics invalid: %v\n%s", err, body)
	}
	if v, ok := parsed.Value("thymesim_fill_poisoned_total", map[string]string{"node": "0"}); !ok || v != 1 {
		t.Fatalf("poisoned = %v ok=%v\n%s", v, ok, body)
	}

	body, _ = get(t, srv, "/status")
	var st metricsplane.RunStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/status not JSON: %v\n%s", err, body)
	}
	if st.Run != "unit run" || st.Phase != "scraping" || st.SweepDone != 1 || st.SweepPlanned != 4 {
		t.Fatalf("/status %+v", st)
	}
	if len(st.SLO) != 1 || st.SLO[0].Fills != 2 {
		t.Fatalf("/status SLO %+v", st.SLO)
	}

	body, _ = get(t, srv, "/stream?n=2")
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) < 2 {
		t.Fatalf("/stream returned %d lines", len(lines))
	}
	for _, ln := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(ln), &obj); err != nil {
			t.Fatalf("/stream line %q: %v", ln, err)
		}
	}

	body, _ = get(t, srv, "/events")
	if !strings.Contains(body, metricsplane.EvFillPoisoned) {
		t.Fatalf("/events missing recorded poison event:\n%s", body)
	}
}

func TestServeBindsAndCloses(t *testing.T) {
	p := metricsplane.New()
	srv, err := Serve("127.0.0.1:0", p)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
