package metricsplane

import (
	"fmt"
	"sort"
	"sync"
)

// Kind discriminates the metric families a Registry holds.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindFloatCounter
	KindHistogram
)

// String names the kind in Prometheus TYPE terms.
func (k Kind) String() string {
	switch k {
	case KindCounter, KindFloatCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// family is one metric name with all its label children.
type family struct {
	name     string
	help     string
	kind     Kind
	counters map[Labels]*Counter
	floats   map[Labels]*FloatCounter
	gauges   map[Labels]*Gauge
	hists    map[Labels]*Histogram
}

// Registry is a concurrency-safe get-or-create store of labeled metric
// families. Instrument handles are resolved once at wiring time (under
// the registry mutex) and then updated lock-free through atomics, so the
// hot path never takes the lock; exporters take it only to walk the
// family maps, reading values atomically.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// familyFor fetches or creates the named family, checking kind.
func (r *Registry) familyFor(name, help string, kind Kind) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		switch kind {
		case KindCounter:
			f.counters = make(map[Labels]*Counter)
		case KindFloatCounter:
			f.floats = make(map[Labels]*FloatCounter)
		case KindGauge:
			f.gauges = make(map[Labels]*Gauge)
		case KindHistogram:
			f.hists = make(map[Labels]*Histogram)
		}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metricsplane: %s registered as %v, requested as %v", name, f.kind, kind))
	}
	return f
}

// Counter returns the counter for (name, labels), creating family and
// child as needed. Safe for concurrent use; the returned handle is
// shared by every caller using the same key.
func (r *Registry) Counter(name, help string, l Labels) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, KindCounter)
	c, ok := f.counters[l]
	if !ok {
		c = &Counter{}
		f.counters[l] = c
	}
	return c
}

// FloatCounter returns the float counter for (name, labels).
func (r *Registry) FloatCounter(name, help string, l Labels) *FloatCounter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, KindFloatCounter)
	c, ok := f.floats[l]
	if !ok {
		c = &FloatCounter{}
		f.floats[l] = c
	}
	return c
}

// Gauge returns the gauge for (name, labels).
func (r *Registry) Gauge(name, help string, l Labels) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, KindGauge)
	g, ok := f.gauges[l]
	if !ok {
		g = &Gauge{}
		f.gauges[l] = g
	}
	return g
}

// Histogram returns the histogram for (name, labels) with the default
// latency geometry.
func (r *Registry) Histogram(name, help string, l Labels) *Histogram {
	return r.HistogramWith(name, help, l, DefaultLatencyFirstUs, DefaultLatencyGrowth, DefaultLatencyBuckets)
}

// HistogramWith returns the histogram for (name, labels) with explicit
// geometry. Geometry is fixed by the first creation; later callers get
// the existing child regardless of the geometry they pass.
func (r *Registry) HistogramWith(name, help string, l Labels, first, growth float64, n int) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, KindHistogram)
	h, ok := f.hists[l]
	if !ok {
		h = NewHistogram(first, growth, n)
		f.hists[l] = h
	}
	return h
}

// Sample is one exported child: a (name, labels) pair with its current
// value. Exactly one of Value / Hist carries the payload depending on
// Kind.
type Sample struct {
	Name   string
	Help   string
	Kind   Kind
	Labels Labels
	Value  float64
	Hist   *HistSnapshot
}

// Snapshot returns every child of every family, sorted by name then by
// label tuple — a deterministic order for all exporters. Values are read
// atomically, so a snapshot taken mid-run is internally consistent per
// metric (not across metrics, which live scraping cannot promise).
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []Sample
	for _, name := range names {
		f := r.families[name]
		labels := f.labelSets()
		for _, l := range labels {
			s := Sample{Name: f.name, Help: f.help, Kind: f.kind, Labels: l}
			switch f.kind {
			case KindCounter:
				s.Value = float64(f.counters[l].Value())
			case KindFloatCounter:
				s.Value = f.floats[l].Value()
			case KindGauge:
				s.Value = f.gauges[l].Value()
			case KindHistogram:
				snap := f.hists[l].snapshot()
				s.Hist = &snap
			}
			out = append(out, s)
		}
	}
	return out
}

// labelSets returns the family's children sorted by label tuple.
func (f *family) labelSets() []Labels {
	var out []Labels
	switch f.kind {
	case KindCounter:
		for l := range f.counters {
			out = append(out, l)
		}
	case KindFloatCounter:
		for l := range f.floats {
			out = append(out, l)
		}
	case KindGauge:
		for l := range f.gauges {
			out = append(out, l)
		}
	case KindHistogram:
		for l := range f.hists {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}
