package metricsplane

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in Prometheus text exposition
// format v0.0.4: one HELP/TYPE header per family, children sorted by
// label tuple, histogram buckets cumulative with an explicit +Inf bucket
// plus _sum and _count series.
func WritePrometheus(w io.Writer, samples []Sample) error {
	bw := bufio.NewWriter(w)
	lastName := ""
	for i := range samples {
		s := &samples[i]
		if s.Name != lastName {
			if s.Help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", s.Name, escapeHelp(s.Help))
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", s.Name, s.Kind)
			lastName = s.Name
		}
		if s.Kind == KindHistogram {
			writePromHistogram(bw, s)
			continue
		}
		fmt.Fprintf(bw, "%s%s %s\n", s.Name, renderLabels(s.Labels.pairs(), "", ""), formatValue(s.Value))
	}
	return bw.Flush()
}

func writePromHistogram(w io.Writer, s *Sample) {
	pairs := s.Labels.pairs()
	var cum uint64
	for i, c := range s.Hist.Counts {
		cum += c
		le := "+Inf"
		if !math.IsInf(s.Hist.Bounds[i], 1) {
			le = formatValue(s.Hist.Bounds[i])
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name, renderLabels(pairs, "le", le), cum)
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, renderLabels(pairs, "", ""), formatValue(s.Hist.Sum))
	fmt.Fprintf(w, "%s_count%s %d\n", s.Name, renderLabels(pairs, "", ""), cum)
}

// renderLabels renders {k="v",...}, appending an extra pair (the
// histogram "le") when extraName is non-empty. Returns "" for no labels.
func renderLabels(pairs []LabelPair, extraName, extraValue string) string {
	if len(pairs) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.Value))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(pairs) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatValue renders a float the way Prometheus clients do: integers
// without a fractional part, everything else in shortest round-trip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ParsedSample is one series line from a parsed exposition.
type ParsedSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParsedExposition is the result of validating an exposition body.
type ParsedExposition struct {
	// Types maps family name to its TYPE declaration.
	Types map[string]string
	// Samples holds every series line in document order.
	Samples []ParsedSample
}

// Value returns the value of the first series matching name and the
// given label subset, and whether one was found.
func (p *ParsedExposition) Value(name string, labels map[string]string) (float64, bool) {
	for i := range p.Samples {
		s := &p.Samples[i]
		if s.Name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// ParseExposition is a small strict parser/validator for Prometheus text
// exposition v0.0.4, used by the CI metrics-smoke job. It checks:
//
//   - every non-comment line parses as name[{labels}] value;
//   - metric and label names are well-formed identifiers;
//   - label values are properly quoted and escaped;
//   - every series' family has a preceding # TYPE line;
//   - histogram _bucket series are cumulative (non-decreasing in le,
//     ending at +Inf with a value equal to _count).
func ParseExposition(body string) (*ParsedExposition, error) {
	out := &ParsedExposition{Types: make(map[string]string)}
	type histState struct {
		last    float64
		lastLe  float64
		sawInf  bool
		infVal  float64
		baseKey string
	}
	hists := make(map[string]*histState)
	lineNo := 0
	for _, line := range strings.Split(body, "\n") {
		lineNo++
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
				}
				if _, dup := out.Types[fields[2]]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, fields[2])
				}
				out.Types[fields[2]] = fields[3]
			}
			continue
		}
		name, labels, value, err := parseSeriesLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && out.Types[base] == "histogram" {
				family = base
				break
			}
		}
		typ, ok := out.Types[family]
		if !ok {
			return nil, fmt.Errorf("line %d: series %s has no preceding TYPE line", lineNo, name)
		}
		if typ == "counter" && value < 0 {
			return nil, fmt.Errorf("line %d: counter %s is negative (%g)", lineNo, name, value)
		}
		if family != name && strings.HasSuffix(name, "_bucket") {
			le, ok := labels["le"]
			if !ok {
				return nil, fmt.Errorf("line %d: histogram bucket %s missing le label", lineNo, line)
			}
			key := family + "|" + labelKeyWithout(labels, "le")
			st := hists[key]
			if st == nil {
				st = &histState{lastLe: math.Inf(-1), baseKey: key}
				hists[key] = st
			}
			bound := math.Inf(1)
			if le != "+Inf" {
				bound, err = strconv.ParseFloat(le, 64)
				if err != nil {
					return nil, fmt.Errorf("line %d: bad le %q", lineNo, le)
				}
			}
			if bound <= st.lastLe {
				return nil, fmt.Errorf("line %d: histogram %s le out of order (%g after %g)", lineNo, family, bound, st.lastLe)
			}
			if value < st.last {
				return nil, fmt.Errorf("line %d: histogram %s buckets not cumulative (%g < %g)", lineNo, family, value, st.last)
			}
			st.last = value
			st.lastLe = bound
			if math.IsInf(bound, 1) {
				st.sawInf = true
				st.infVal = value
			}
		}
		if family != name && strings.HasSuffix(name, "_count") {
			key := family + "|" + labelKeyWithout(labels, "le")
			if st := hists[key]; st != nil {
				if !st.sawInf {
					return nil, fmt.Errorf("line %d: histogram %s has no +Inf bucket before _count", lineNo, family)
				}
				if st.infVal != value {
					return nil, fmt.Errorf("line %d: histogram %s +Inf bucket (%g) != _count (%g)", lineNo, family, st.infVal, value)
				}
			}
		}
		out.Samples = append(out.Samples, ParsedSample{Name: name, Labels: labels, Value: value})
	}
	return out, nil
}

// labelKeyWithout serializes a label map minus one key, for grouping
// histogram buckets by their non-le identity.
func labelKeyWithout(labels map[string]string, drop string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != drop {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
		b.WriteByte(';')
	}
	return b.String()
}

// parseSeriesLine parses `name[{k="v",...}] value`.
func parseSeriesLine(line string) (string, map[string]string, float64, error) {
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return "", nil, 0, fmt.Errorf("no metric name in %q", line)
	}
	name := line[:i]
	labels := make(map[string]string)
	if i < len(line) && line[i] == '{' {
		i++
		for {
			if i >= len(line) {
				return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
			}
			if line[i] == '}' {
				i++
				break
			}
			j := i
			for j < len(line) && isNameChar(line[j], j == i) {
				j++
			}
			if j == i {
				return "", nil, 0, fmt.Errorf("bad label name at %q", line[i:])
			}
			lname := line[i:j]
			if j >= len(line) || line[j] != '=' || j+1 >= len(line) || line[j+1] != '"' {
				return "", nil, 0, fmt.Errorf("label %s not followed by =\" in %q", lname, line)
			}
			j += 2
			var val strings.Builder
			for {
				if j >= len(line) {
					return "", nil, 0, fmt.Errorf("unterminated label value in %q", line)
				}
				if line[j] == '\\' {
					if j+1 >= len(line) {
						return "", nil, 0, fmt.Errorf("dangling escape in %q", line)
					}
					switch line[j+1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return "", nil, 0, fmt.Errorf("bad escape \\%c in %q", line[j+1], line)
					}
					j += 2
					continue
				}
				if line[j] == '"' {
					j++
					break
				}
				val.WriteByte(line[j])
				j++
			}
			if _, dup := labels[lname]; dup {
				return "", nil, 0, fmt.Errorf("duplicate label %s in %q", lname, line)
			}
			labels[lname] = val.String()
			i = j
			if i < len(line) && line[i] == ',' {
				i++
			}
		}
	}
	rest := strings.TrimSpace(line[i:])
	if rest == "" {
		return "", nil, 0, fmt.Errorf("no value in %q", line)
	}
	// A timestamp field after the value is legal in v0.0.4; we never emit
	// one, so reject it to keep the validator strict about our output.
	if strings.ContainsAny(rest, " \t") {
		return "", nil, 0, fmt.Errorf("unexpected trailing fields in %q", line)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q: %v", rest, err)
	}
	return name, labels, v, nil
}

func isNameChar(c byte, first bool) bool {
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' {
		return true
	}
	return !first && c >= '0' && c <= '9'
}
