package metricsplane

import (
	"bufio"
	"fmt"
	"io"
	"sync"
)

// Event is one flight-recorder entry: a notable datapath event with its
// simulated timestamp. Kind is always a static string (no formatting on
// the record path) and Detail is a free-form numeric payload whose
// meaning depends on Kind, so recording is allocation-free.
type Event struct {
	TimeUs float64
	Node   int
	Kind   string
	Detail uint64
}

// Flight-recorder event kinds.
const (
	EvFillPoisoned      = "fill_poisoned"
	EvFillExpired       = "fill_deadline_expired"
	EvFillExpiredUnsent = "fill_expired_unsent"
	EvFillLate          = "fill_late_response"
	EvARQRetransmit     = "arq_retransmit"
	EvARQDead           = "arq_dead"
	EvARQCorrupt        = "arq_corrupt_response"
	EvBreakerTransition = "breaker_transition"
	EvNICCrashDrop      = "nic_crash_drop"
	EvNICWipeNack       = "nic_wipe_nack"
	EvNICServeLost      = "nic_serve_lost"
)

// DefaultRecorderSize bounds the flight-recorder ring.
const DefaultRecorderSize = 4096

// FlightRecorder is a bounded ring of recent Events. Record is mutex
// protected (events arrive from every sweep worker) and allocation-free:
// the ring is preallocated and entries are value types. When full, the
// oldest entry is overwritten.
type FlightRecorder struct {
	mu    sync.Mutex
	ring  []Event
	next  int
	total uint64
}

// NewFlightRecorder returns a recorder holding the last n events
// (DefaultRecorderSize if n <= 0).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = DefaultRecorderSize
	}
	return &FlightRecorder{ring: make([]Event, 0, n)}
}

// Record appends an event. Nil-receiver safe no-op, like every
// instrument method.
func (r *FlightRecorder) Record(timeUs float64, node int, kind string, detail uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, Event{TimeUs: timeUs, Node: node, Kind: kind, Detail: detail})
	} else {
		r.ring[r.next] = Event{TimeUs: timeUs, Node: node, Kind: kind, Detail: detail}
	}
	r.next = (r.next + 1) % cap(r.ring)
	r.total++
	r.mu.Unlock()
}

// Total returns how many events were ever recorded (including
// overwritten ones).
func (r *FlightRecorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Events returns a copy of the retained events, oldest first.
func (r *FlightRecorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.ring))
	if len(r.ring) == cap(r.ring) {
		out = append(out, r.ring[r.next:]...)
		out = append(out, r.ring[:r.next]...)
	} else {
		out = append(out, r.ring...)
	}
	return out
}

// WriteNDJSON dumps the retained events, oldest first, one JSON object
// per line.
func (r *FlightRecorder) WriteNDJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range r.Events() {
		if _, err := fmt.Fprintf(bw, `{"t_us":%g,"node":%d,"kind":%q,"detail":%d}`+"\n",
			e.TimeUs, e.Node, e.Kind, e.Detail); err != nil {
			return err
		}
	}
	return bw.Flush()
}
