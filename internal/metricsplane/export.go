package metricsplane

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// ndjsonSample is the wire form of one series line in NDJSON export.
type ndjsonSample struct {
	Metric string            `json:"metric"`
	Type   string            `json:"type"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
	// Histogram-only fields.
	Count   uint64    `json:"count,omitempty"`
	Sum     float64   `json:"sum,omitempty"`
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []uint64  `json:"buckets,omitempty"`
	P50     float64   `json:"p50,omitempty"`
	P99     float64   `json:"p99,omitempty"`
	// Optional simulated-time stamp (window streaming).
	SimTimeUs float64 `json:"sim_time_us,omitempty"`
	// Optional per-window delta for counters (window streaming).
	Delta float64 `json:"delta,omitempty"`
}

// WriteNDJSON renders one JSON object per series line. Histograms carry
// their full bucket vector (finite bounds; the last bucket is the +Inf
// overflow) plus derived p50/p99.
func WriteNDJSON(w io.Writer, samples []Sample) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range samples {
		if err := enc.Encode(sampleToNDJSON(&samples[i], 0, math.NaN())); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func sampleToNDJSON(s *Sample, simTimeUs float64, delta float64) *ndjsonSample {
	out := &ndjsonSample{
		Metric:    s.Name,
		Type:      s.Kind.String(),
		Value:     s.Value,
		SimTimeUs: simTimeUs,
	}
	if !math.IsNaN(delta) {
		out.Delta = delta
	}
	pairs := s.Labels.pairs()
	if len(pairs) > 0 {
		out.Labels = make(map[string]string, len(pairs))
		for _, p := range pairs {
			out.Labels[p.Name] = p.Value
		}
	}
	if s.Hist != nil {
		out.Count = s.Hist.Count
		out.Sum = s.Hist.Sum
		out.Value = float64(s.Hist.Count)
		n := len(s.Hist.Bounds)
		if n > 0 {
			out.Bounds = s.Hist.Bounds[:n-1] // drop +Inf: implied overflow
		}
		out.Buckets = s.Hist.Counts
		out.P50 = histQuantile(s.Hist, 0.50)
		out.P99 = histQuantile(s.Hist, 0.99)
	}
	return out
}

// histQuantile estimates a quantile from a snapshot (mirror of
// Histogram.Quantile over copied buckets).
func histQuantile(h *HistSnapshot, q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.Bounds[i-1]
			}
			hi := h.Bounds[i]
			if math.IsInf(hi, 1) {
				return lo
			}
			return lo + float64(rank-cum)/float64(c)*(hi-lo)
		}
		cum += c
	}
	return 0
}

// WriteCSV renders the snapshot through the repo's CSV convention: a
// header row then one row per series with the label schema flattened
// into fixed columns. Histograms export count/sum/p50/p99 columns.
func WriteCSV(w io.Writer, samples []Sample) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"metric", "type", "node", "lender", "link", "tenant", "stage", "value", "count", "sum", "p50", "p99"}); err != nil {
		return err
	}
	for i := range samples {
		s := &samples[i]
		row := []string{
			s.Name, s.Kind.String(),
			labelCol(s.Labels.Node), labelCol(s.Labels.Lender), labelCol(s.Labels.Link),
			s.Labels.Tenant, s.Labels.Stage,
			"", "", "", "", "",
		}
		if s.Hist != nil {
			row[8] = strconv.FormatUint(s.Hist.Count, 10)
			row[9] = formatValue(s.Hist.Sum)
			row[10] = formatValue(histQuantile(s.Hist, 0.50))
			row[11] = formatValue(histQuantile(s.Hist, 0.99))
		} else {
			row[7] = formatValue(s.Value)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func labelCol(v int) string {
	if v == Unset {
		return ""
	}
	return fmt.Sprint(v)
}
