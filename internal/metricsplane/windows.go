package metricsplane

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"

	"thymesim/internal/sim"
)

// WindowStream performs simulated-time windowed aggregation: bound to
// one kernel, it snapshots the registry every window and emits one
// NDJSON line per changed series, carrying the simulated timestamp and
// the per-window delta for counters and histograms. Because windows ride
// the kernel's own Ticker, the emitted timeline is deterministic for a
// given run; the writer is mutex-protected so several kernels (sweep
// workers) can share one output stream.
type WindowStream struct {
	plane  *Plane
	mu     *sync.Mutex
	w      *bufio.Writer
	enc    *json.Encoder
	window sim.Duration
	last   map[string]float64 // series key -> last value (counters)
	stop   bool
}

// streamMu serializes all WindowStreams targeting the same writer.
var (
	streamWriters   = map[io.Writer]*sync.Mutex{}
	streamWritersMu sync.Mutex
)

func lockFor(w io.Writer) *sync.Mutex {
	streamWritersMu.Lock()
	defer streamWritersMu.Unlock()
	mu, ok := streamWriters[w]
	if !ok {
		mu = &sync.Mutex{}
		streamWriters[w] = mu
	}
	return mu
}

// StreamWindows attaches a windowed NDJSON stream to a kernel. Emission
// starts one window in and continues until Stop or the kernel runs dry.
// Returns nil on a nil plane (disabled).
func (p *Plane) StreamWindows(k *sim.Kernel, window sim.Duration, w io.Writer) *WindowStream {
	if p == nil || window <= 0 {
		return nil
	}
	bw := bufio.NewWriter(w)
	ws := &WindowStream{
		plane:  p,
		mu:     lockFor(w),
		w:      bw,
		enc:    json.NewEncoder(bw),
		window: window,
		last:   make(map[string]float64),
	}
	k.Ticker(window, func() bool {
		if ws.stop {
			return false
		}
		ws.emit(k.Now().Micros())
		return true
	})
	return ws
}

// Stop ends emission at the next tick and flushes.
func (ws *WindowStream) Stop() {
	if ws == nil {
		return
	}
	ws.stop = true
	ws.mu.Lock()
	ws.w.Flush()
	ws.mu.Unlock()
}

// emit writes one window: every series whose value changed since the
// previous window, with per-window deltas for monotonic kinds.
func (ws *WindowStream) emit(simTimeUs float64) {
	samples := ws.plane.Snapshot()
	ws.mu.Lock()
	defer ws.mu.Unlock()
	for i := range samples {
		s := &samples[i]
		key := seriesKey(s)
		cur := s.Value
		if s.Hist != nil {
			cur = float64(s.Hist.Count)
		}
		prev, seen := ws.last[key]
		if seen && cur == prev {
			continue
		}
		ws.last[key] = cur
		delta := cur - prev
		if s.Kind == KindGauge || !seen {
			delta = cur
		}
		ws.enc.Encode(sampleToNDJSON(s, simTimeUs, delta))
	}
	ws.w.Flush()
}

func seriesKey(s *Sample) string {
	key := s.Name
	for _, p := range s.Labels.pairs() {
		key += "|" + p.Name + "=" + p.Value
	}
	return key
}
