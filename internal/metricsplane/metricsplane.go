// Package metricsplane is the rack-scale labeled metrics plane: a
// registry of counters, gauges, and log-bucketed latency histograms keyed
// by the {node, lender, link, tenant, stage} label schema, with
// Prometheus text exposition, streaming NDJSON, CSV export, an SLO
// tracker, and a bounded flight recorder of recent datapath events.
//
// Design constraints, in priority order (the same contract as the span
// tracer in internal/obs):
//
//  1. Zero cost when disabled. Components hold possibly-nil instrument
//     bundles whose methods are nil-receiver no-ops, so the disabled
//     datapath pays one pointer test per event and allocates nothing —
//     the warmed remote-fill path stays at 0 allocs/op.
//  2. Observation only. Instruments never schedule events, draw
//     randomness, or touch component state: simulated results are
//     bit-identical with the plane on or off.
//  3. Scrape-safe under concurrency. Metric values are atomics, so an
//     HTTP exposition goroutine can read mid-run while any number of
//     sweep workers (each owning its kernel) write. Points that share a
//     label set share the instrument: counters and histogram buckets sum
//     across concurrent sweep points deterministically; gauges are
//     last-write-wins and therefore diagnostic-only under -j > 1.
package metricsplane

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Unset marks an integer label as absent. The zero Labels value would
// otherwise claim node 0; build label sets with NewLabels / ForNode / the
// With* chain so absent dimensions stay absent.
const Unset = -1

// Labels is the fixed label schema every metric is keyed by. Integer
// labels use Unset (-1) for "not applicable"; string labels use "".
type Labels struct {
	// Node is the fabric node id (borrower or lender NIC port).
	Node int
	// Lender is the pool-local lender index (allocator scope).
	Lender int
	// Link is the link or switch-port id.
	Link int
	// Tenant distinguishes workloads or QoS classes sharing a node.
	Tenant string
	// Stage is the datapath stage name (obs.Stage rollups).
	Stage string
}

// NewLabels returns the empty label set (every dimension absent).
func NewLabels() Labels { return Labels{Node: Unset, Lender: Unset, Link: Unset} }

// ForNode returns a label set carrying only a node id.
func ForNode(node int) Labels { return NewLabels().WithNode(node) }

// WithNode returns a copy with the node label set.
func (l Labels) WithNode(node int) Labels { l.Node = node; return l }

// WithLender returns a copy with the lender label set.
func (l Labels) WithLender(lender int) Labels { l.Lender = lender; return l }

// WithLink returns a copy with the link label set.
func (l Labels) WithLink(link int) Labels { l.Link = link; return l }

// WithTenant returns a copy with the tenant label set.
func (l Labels) WithTenant(tenant string) Labels { l.Tenant = tenant; return l }

// WithStage returns a copy with the stage label set.
func (l Labels) WithStage(stage string) Labels { l.Stage = stage; return l }

// pairs returns the set label dimensions in schema order.
func (l Labels) pairs() []LabelPair {
	out := make([]LabelPair, 0, 5)
	if l.Node != Unset {
		out = append(out, LabelPair{"node", fmt.Sprint(l.Node)})
	}
	if l.Lender != Unset {
		out = append(out, LabelPair{"lender", fmt.Sprint(l.Lender)})
	}
	if l.Link != Unset {
		out = append(out, LabelPair{"link", fmt.Sprint(l.Link)})
	}
	if l.Tenant != "" {
		out = append(out, LabelPair{"tenant", l.Tenant})
	}
	if l.Stage != "" {
		out = append(out, LabelPair{"stage", l.Stage})
	}
	return out
}

// LabelPair is one rendered label dimension.
type LabelPair struct{ Name, Value string }

// less orders label sets deterministically for exposition.
func (l Labels) less(o Labels) bool {
	if l.Node != o.Node {
		return l.Node < o.Node
	}
	if l.Lender != o.Lender {
		return l.Lender < o.Lender
	}
	if l.Link != o.Link {
		return l.Link < o.Link
	}
	if l.Tenant != o.Tenant {
		return l.Tenant < o.Tenant
	}
	return l.Stage < o.Stage
}

// Counter is a monotonic event counter. All methods are nil-receiver
// safe, atomic, and allocation-free.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// FloatCounter is a monotonic float accumulator (e.g. summed
// microseconds), exposed as a Prometheus counter. Adds use a CAS loop;
// writers are per-kernel so contention is scrape-only.
type FloatCounter struct{ bits atomic.Uint64 }

// Add accumulates v (negative adds are ignored to keep monotonicity).
func (c *FloatCounter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	addFloat(&c.bits, v)
}

// Value returns the accumulated total (0 on nil).
func (c *FloatCounter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a last-write-wins instantaneous value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the stored value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-geometry log-bucketed latency histogram with
// atomic bucket counts: bucket 0 covers (-inf, first]; bucket i covers
// (first*growth^(i-1), first*growth^i]; the last bucket is open-ended.
// Observe is allocation-free and race-safe, so concurrent sweep points
// sharing a label set merge by construction.
type Histogram struct {
	first  float64
	growth float64
	invLog float64
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// NewHistogram builds a histogram whose first bucket boundary is first
// and whose boundaries grow geometrically by growth across n buckets
// (n >= 2; the n-th bucket is the +Inf overflow).
func NewHistogram(first, growth float64, n int) *Histogram {
	if first <= 0 || growth <= 1 || n < 2 {
		panic(fmt.Sprintf("metricsplane: histogram geometry first=%g growth=%g buckets=%d", first, growth, n))
	}
	return &Histogram{
		first:  first,
		growth: growth,
		invLog: 1 / math.Log(growth),
		counts: make([]atomic.Uint64, n),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[h.bucketOf(v)].Add(1)
	h.count.Add(1)
	addFloat(&h.sum, v)
}

// bucketOf maps a sample to its bucket index.
func (h *Histogram) bucketOf(v float64) int {
	if v <= h.first {
		return 0
	}
	i := 1 + int(math.Log(v/h.first)*h.invLog)
	if i >= len(h.counts) {
		return len(h.counts) - 1
	}
	return i
}

// UpperBound returns bucket i's inclusive upper boundary (+Inf for the
// last bucket).
func (h *Histogram) UpperBound(i int) float64 {
	if i >= len(h.counts)-1 {
		return math.Inf(1)
	}
	return h.first * math.Pow(h.growth, float64(i))
}

// Count returns total observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the summed samples (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (0 on nil or empty) by linear
// interpolation within the owning bucket, like metrics.Histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.UpperBound(i - 1)
			}
			hi := h.UpperBound(i)
			if math.IsInf(hi, 1) {
				return lo
			}
			frac := float64(rank-cum) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	return h.UpperBound(len(h.counts) - 1)
}

// snapshot copies the bucket state for exporters.
func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: make([]float64, len(h.counts)),
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		s.Bounds[i] = h.UpperBound(i)
		s.Counts[i] = h.counts[i].Load()
		s.Count += s.Counts[i]
	}
	// The atomic count/sum pair may be mid-update during a live scrape;
	// derive the count from the bucket copy so buckets and count agree.
	s.Sum = math.Float64frombits(h.sum.Load())
	return s
}

// HistSnapshot is a point-in-time histogram copy: per-bucket (not
// cumulative) counts with their inclusive upper bounds.
type HistSnapshot struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// addFloat atomically adds v to a float64 stored as bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Default latency-histogram geometry: ~1 µs resolution at the low end,
// geometric 1.5 growth, spanning far past the longest deadline-bounded
// fill.
const (
	DefaultLatencyFirstUs = 1.0
	DefaultLatencyGrowth  = 1.5
	DefaultLatencyBuckets = 40
)
