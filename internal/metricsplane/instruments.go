package metricsplane

// Instrument bundles: typed groups of pre-resolved metric handles that
// datapath components hold as possibly-nil pointers. Every observe
// method is nil-receiver safe, allocation-free, and touches only
// atomics, so the disabled path costs one pointer test and the enabled
// path never perturbs simulated results.

// FillMetrics instruments one borrower's remote-fill port (memport):
// end-to-end fill latency plus poisoned / deadline-expiry accounting.
type FillMetrics struct {
	node     int
	latency  *Histogram
	reads    *Counter
	writes   *Counter
	poisoned *Counter
	expired  *Counter
	unsent   *Counter
	late     *Counter
	rec      *FlightRecorder
}

// FillDone records a completed (non-expired) fill.
func (m *FillMetrics) FillDone(latencyUs float64, write, poisoned bool, nowUs float64) {
	if m == nil {
		return
	}
	m.latency.Observe(latencyUs)
	if write {
		m.writes.Inc()
	} else {
		m.reads.Inc()
	}
	if poisoned {
		m.poisoned.Inc()
		m.rec.Record(nowUs, m.node, EvFillPoisoned, 0)
	}
}

// FillExpired records a deadline expiry (always also poisoned).
func (m *FillMetrics) FillExpired(write bool, nowUs float64) {
	if m == nil {
		return
	}
	if write {
		m.writes.Inc()
	} else {
		m.reads.Inc()
	}
	m.expired.Inc()
	m.poisoned.Inc()
	m.rec.Record(nowUs, m.node, EvFillExpired, 0)
}

// FillExpiredUnsent records a queued send withdrawn at expiry.
func (m *FillMetrics) FillExpiredUnsent(nowUs float64) {
	if m == nil {
		return
	}
	m.unsent.Inc()
	m.rec.Record(nowUs, m.node, EvFillExpiredUnsent, 0)
}

// FillLate records a straggler response for an already-expired fill.
func (m *FillMetrics) FillLate(nowUs float64) {
	if m == nil {
		return
	}
	m.late.Inc()
	m.rec.Record(nowUs, m.node, EvFillLate, 0)
}

// ARQMetrics instruments one borrower NIC's ARQ engine (tfnic).
type ARQMetrics struct {
	node        int
	tracked     *Counter
	completed   *Counter
	retransmits *Counter
	nackRetries *Counter
	timeouts    *Counter
	dead        *Counter
	staleDrops  *Counter
	corrupt     *Counter
	rec         *FlightRecorder
}

// Tracked records a transaction entering ARQ tracking.
func (m *ARQMetrics) Tracked() {
	if m != nil {
		m.tracked.Inc()
	}
}

// Completed records a transaction acknowledged and released.
func (m *ARQMetrics) Completed() {
	if m != nil {
		m.completed.Inc()
	}
}

// Timeout records a retransmit-timer expiry.
func (m *ARQMetrics) Timeout() {
	if m != nil {
		m.timeouts.Inc()
	}
}

// NackRetry records a nack-triggered retry.
func (m *ARQMetrics) NackRetry() {
	if m != nil {
		m.nackRetries.Inc()
	}
}

// StaleDrop records a response dropped for a stale sequence/tag.
func (m *ARQMetrics) StaleDrop() {
	if m != nil {
		m.staleDrops.Inc()
	}
}

// Retransmit records a retransmission (recorded event: seq in Detail).
func (m *ARQMetrics) Retransmit(seq uint64, nowUs float64) {
	if m == nil {
		return
	}
	m.retransmits.Inc()
	m.rec.Record(nowUs, m.node, EvARQRetransmit, seq)
}

// Dead records a transaction exhausting its retry budget.
func (m *ARQMetrics) Dead(seq uint64, nowUs float64) {
	if m == nil {
		return
	}
	m.dead.Inc()
	m.rec.Record(nowUs, m.node, EvARQDead, seq)
}

// CorruptResp records a response dropped for CRC corruption.
func (m *ARQMetrics) CorruptResp(nowUs float64) {
	if m == nil {
		return
	}
	m.corrupt.Inc()
	m.rec.Record(nowUs, m.node, EvARQCorrupt, 0)
}

// NICMetrics instruments one NIC's packet plane (tfnic), borrower or
// lender side.
type NICMetrics struct {
	node               int
	requestsSent       *Counter
	responsesSent      *Counter
	requestsServed     *Counter
	responsesDelivered *Counter
	probesServed       *Counter
	translationFaults  *Counter
	nacksSent          *Counter
	crashDrops         *Counter
	servesLost         *Counter
	wipeNacks          *Counter
	rec                *FlightRecorder
}

// RequestSent counts an egress request put on the wire.
func (m *NICMetrics) RequestSent() {
	if m != nil {
		m.requestsSent.Inc()
	}
}

// ResponseSent counts an egress response.
func (m *NICMetrics) ResponseSent() {
	if m != nil {
		m.responsesSent.Inc()
	}
}

// RequestServed counts a lender-side DRAM serve completion.
func (m *NICMetrics) RequestServed() {
	if m != nil {
		m.requestsServed.Inc()
	}
}

// ResponseDelivered counts an ingress response handed to the port.
func (m *NICMetrics) ResponseDelivered() {
	if m != nil {
		m.responsesDelivered.Inc()
	}
}

// ProbeServed counts an OpProbe answered.
func (m *NICMetrics) ProbeServed() {
	if m != nil {
		m.probesServed.Inc()
	}
}

// TranslationFault counts an egress address-translation miss.
func (m *NICMetrics) TranslationFault() {
	if m != nil {
		m.translationFaults.Inc()
	}
}

// NackSent counts a nack response.
func (m *NICMetrics) NackSent() {
	if m != nil {
		m.nacksSent.Inc()
	}
}

// CrashDrop counts a packet black-holed by a crashed NIC.
func (m *NICMetrics) CrashDrop(nowUs float64) {
	if m == nil {
		return
	}
	m.crashDrops.Inc()
	m.rec.Record(nowUs, m.node, EvNICCrashDrop, 0)
}

// ServeLost counts an in-flight serve lost to a crash epoch.
func (m *NICMetrics) ServeLost(nowUs float64) {
	if m == nil {
		return
	}
	m.servesLost.Inc()
	m.rec.Record(nowUs, m.node, EvNICServeLost, 0)
}

// WipeNack counts a block op nacked by a wiped window.
func (m *NICMetrics) WipeNack(nowUs float64) {
	if m == nil {
		return
	}
	m.wipeNacks.Inc()
	m.rec.Record(nowUs, m.node, EvNICWipeNack, 0)
}

// BreakerMetrics instruments one circuit breaker (control).
type BreakerMetrics struct {
	node           int
	state          *Gauge
	transitions    *Counter
	trips          *Counter
	reopens        *Counter
	closes         *Counter
	shortCircuited *Counter
	rec            *FlightRecorder
}

// Transition records a legal state change. from/to are the numeric
// breaker states (0 Closed, 1 Open, 2 Half-Open); the recorder Detail
// packs from<<8|to.
func (m *BreakerMetrics) Transition(from, to int, nowUs float64) {
	if m == nil {
		return
	}
	m.state.Set(float64(to))
	m.transitions.Inc()
	const closed, open, halfOpen = 0, 1, 2
	switch {
	case from == closed && to == open:
		m.trips.Inc()
	case from == halfOpen && to == open:
		m.reopens.Inc()
	case to == closed:
		m.closes.Inc()
	}
	m.rec.Record(nowUs, m.node, EvBreakerTransition, uint64(from)<<8|uint64(to))
}

// ShortCircuit records an access fast-failed while open.
func (m *BreakerMetrics) ShortCircuit() {
	if m != nil {
		m.shortCircuited.Inc()
	}
}

// AllocMetrics instruments one lender's segment allocator (pool).
type AllocMetrics struct {
	capacity      *Gauge
	allocated     *Gauge
	freeBytes     *Gauge
	freeSpans     *Gauge
	largestFree   *Gauge
	fragmentation *Gauge
}

// Update refreshes the allocator gauges after a mutation.
// Fragmentation is 1 - largestFree/freeBytes (0 when fully coalesced or
// empty).
func (m *AllocMetrics) Update(capacity, allocated, freeBytes, largestFree uint64, freeSpans int) {
	if m == nil {
		return
	}
	m.capacity.Set(float64(capacity))
	m.allocated.Set(float64(allocated))
	m.freeBytes.Set(float64(freeBytes))
	m.freeSpans.Set(float64(freeSpans))
	m.largestFree.Set(float64(largestFree))
	frag := 0.0
	if freeBytes > 0 {
		frag = 1 - float64(largestFree)/float64(freeBytes)
	}
	m.fragmentation.Set(frag)
}

// LinkMetrics instruments one directed netlink channel.
type LinkMetrics struct {
	delivered   *Counter
	bytes       *Counter
	utilization *Gauge
}

// Delivered records one flit delivery and the wire's running
// utilization.
func (m *LinkMetrics) Delivered(bytes uint64, utilization float64) {
	if m == nil {
		return
	}
	m.delivered.Inc()
	m.bytes.Add(bytes)
	m.utilization.Set(utilization)
}

// SwitchPortMetrics instruments one switch output port (fabric).
type SwitchPortMetrics struct {
	forwarded *Counter
	depth     *Gauge
	peak      *Gauge
}

// Forwarded records a forward completion with the port's current and
// peak queue depth.
func (m *SwitchPortMetrics) Forwarded(depth, peak int) {
	if m == nil {
		return
	}
	m.forwarded.Inc()
	m.depth.Set(float64(depth))
	m.peak.Set(float64(peak))
}

// DRAMMetrics instruments one DRAM device.
type DRAMMetrics struct {
	reads       *Counter
	writes      *Counter
	bytes       *Counter
	utilization *Gauge
}

// Access records one completed DRAM access.
func (m *DRAMMetrics) Access(write bool, bytes uint64, utilization float64) {
	if m == nil {
		return
	}
	if write {
		m.writes.Inc()
	} else {
		m.reads.Inc()
	}
	m.bytes.Add(bytes)
	m.utilization.Set(utilization)
}

// CacheMetrics instruments one LLC instance (cache).
type CacheMetrics struct {
	hits       *Counter
	misses     *Counter
	evictions  *Counter
	writebacks *Counter
}

// Access records one cache lookup outcome.
func (m *CacheMetrics) Access(hit, evicted, writeback bool) {
	if m == nil {
		return
	}
	if hit {
		m.hits.Inc()
	} else {
		m.misses.Inc()
	}
	if evicted {
		m.evictions.Inc()
	}
	if writeback {
		m.writebacks.Inc()
	}
}

// MigrateMetrics instruments one page migrator (migrate).
type MigrateMetrics struct {
	promotions    *Counter
	degradedPages *Counter
	localized     *Counter
	gateLocalized *Counter
}

// Promotion counts a page promoted to local memory.
func (m *MigrateMetrics) Promotion() {
	if m != nil {
		m.promotions.Inc()
	}
}

// Degraded counts pages force-localized by Degrade/DegradeRange.
func (m *MigrateMetrics) Degraded(pages uint64) {
	if m != nil {
		m.degradedPages.Add(pages)
	}
}

// Localized counts an access served locally post-migration.
func (m *MigrateMetrics) Localized() {
	if m != nil {
		m.localized.Inc()
	}
}

// GateLocalized counts an access localized by the admission gate.
func (m *MigrateMetrics) GateLocalized() {
	if m != nil {
		m.gateLocalized.Inc()
	}
}
