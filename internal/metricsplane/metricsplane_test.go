package metricsplane

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestLabelsRenderInSchemaOrder(t *testing.T) {
	l := NewLabels().WithStage("nic_pipe").WithNode(3).WithTenant("be1").WithLink(1).WithLender(2)
	got := l.pairs()
	want := []LabelPair{
		{"node", "3"}, {"lender", "2"}, {"link", "1"}, {"tenant", "be1"}, {"stage", "nic_pipe"},
	}
	if len(got) != len(want) {
		t.Fatalf("pairs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pair %d = %v, want %v", i, got[i], want[i])
		}
	}
	if n := len(NewLabels().pairs()); n != 0 {
		t.Fatalf("empty label set renders %d pairs", n)
	}
}

func TestRegistryGetOrCreateShares(t *testing.T) {
	r := NewRegistry()
	l := NewLabels().WithNode(1)
	a := r.Counter("thymesim_x_total", "x", l)
	b := r.Counter("thymesim_x_total", "x", l)
	if a != b {
		t.Fatal("same name+labels produced distinct counters")
	}
	if c := r.Counter("thymesim_x_total", "x", NewLabels().WithNode(2)); c == a {
		t.Fatal("distinct labels shared a counter")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("thymesim_y_total", "y", NewLabels())
	defer func() {
		if recover() == nil {
			t.Fatal("gauge under a counter family did not panic")
		}
	}()
	r.Gauge("thymesim_y_total", "y", NewLabels())
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	// Register out of order; snapshot must sort by name, then label tuple.
	r.Counter("thymesim_b_total", "b", NewLabels().WithNode(2))
	r.Counter("thymesim_b_total", "b", NewLabels().WithNode(1))
	r.Gauge("thymesim_a", "a", NewLabels())
	s := r.Snapshot()
	if len(s) != 3 {
		t.Fatalf("%d samples", len(s))
	}
	if s[0].Name != "thymesim_a" || s[1].Labels.Node != 1 || s[2].Labels.Node != 2 {
		t.Fatalf("unsorted snapshot: %+v", s)
	}
}

func TestHistogramQuantilesAndBounds(t *testing.T) {
	h := NewHistogram(1, 1.5, 40)
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i%100) + 0.5)
	}
	if h.Count() != 1000 {
		t.Fatalf("count %d", h.Count())
	}
	p50, p99 := h.Quantile(0.5), h.Quantile(0.99)
	if p50 < 20 || p50 > 80 {
		t.Fatalf("p50 = %g, want ~50 within bucket resolution", p50)
	}
	if p99 < p50 || p99 > 150 {
		t.Fatalf("p99 = %g out of range (p50 %g)", p99, p50)
	}
	// Overflow goes to the +Inf bucket, keeping count consistent.
	h.Observe(1e12)
	if h.Count() != 1001 {
		t.Fatalf("overflow lost: count %d", h.Count())
	}
	if !math.IsInf(h.UpperBound(DefaultLatencyBuckets-1), 1) {
		t.Fatal("last bucket bound is not +Inf")
	}
}

func TestHistogramSubMinimumObservation(t *testing.T) {
	h := NewHistogram(1, 1.5, 10)
	h.Observe(0.01) // below the first bound lands in bucket 0
	if h.Count() != 1 {
		t.Fatalf("count %d", h.Count())
	}
	if q := h.Quantile(0.5); q < 0 || q > 1 {
		t.Fatalf("median %g outside first bucket", q)
	}
}

func TestPrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("thymesim_fills_total", "Remote fills.", NewLabels().WithNode(0)).Add(42)
	r.Gauge("thymesim_alloc_fragmentation", "Frag.", NewLabels().WithLender(1)).Set(0.25)
	h := r.Histogram("thymesim_fill_latency_us", "Latency.", NewLabels().WithNode(0))
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	r.Counter("thymesim_escape_total", "quote \" backslash \\ newline.",
		NewLabels().WithTenant("a\"b\\c\nd")).Inc()

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	parsed, err := ParseExposition(body)
	if err != nil {
		t.Fatalf("self-emitted exposition rejected: %v\n%s", err, body)
	}
	if v, ok := parsed.Value("thymesim_fills_total", map[string]string{"node": "0"}); !ok || v != 42 {
		t.Fatalf("fills_total = %v ok=%v", v, ok)
	}
	if v, ok := parsed.Value("thymesim_alloc_fragmentation", map[string]string{"lender": "1"}); !ok || v != 0.25 {
		t.Fatalf("fragmentation = %v ok=%v", v, ok)
	}
	if v, ok := parsed.Value("thymesim_fill_latency_us_count", map[string]string{"node": "0"}); !ok || v != 10 {
		t.Fatalf("histogram _count = %v ok=%v", v, ok)
	}
	if parsed.Types["thymesim_fill_latency_us"] != "histogram" {
		t.Fatalf("TYPE = %q", parsed.Types["thymesim_fill_latency_us"])
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"series before TYPE":     "thymesim_x_total 1\n",
		"negative counter":       "# TYPE thymesim_x_total counter\nthymesim_x_total -1\n",
		"non-cumulative buckets": "# TYPE thymesim_h histogram\nthymesim_h_bucket{le=\"1\"} 5\nthymesim_h_bucket{le=\"2\"} 3\nthymesim_h_bucket{le=\"+Inf\"} 5\nthymesim_h_sum 1\nthymesim_h_count 5\n",
		"missing +Inf bucket":    "# TYPE thymesim_h histogram\nthymesim_h_bucket{le=\"1\"} 5\nthymesim_h_sum 1\nthymesim_h_count 5\n",
		"count != +Inf":          "# TYPE thymesim_h histogram\nthymesim_h_bucket{le=\"+Inf\"} 5\nthymesim_h_sum 1\nthymesim_h_count 6\n",
		"trailing timestamp":     "# TYPE thymesim_x_total counter\nthymesim_x_total 1 1700000000\n",
		"garbage value":          "# TYPE thymesim_x_total counter\nthymesim_x_total one\n",
		"unterminated label":     "# TYPE thymesim_x_total counter\nthymesim_x_total{node=\"1 2\n",
	}
	for name, body := range cases {
		if _, err := ParseExposition(body); err == nil {
			t.Errorf("%s: accepted:\n%s", name, body)
		}
	}
}

func TestNDJSONExport(t *testing.T) {
	r := NewRegistry()
	r.Counter("thymesim_fills_total", "f", NewLabels().WithNode(2).WithTenant("be1")).Add(7)
	r.Histogram("thymesim_lat_us", "l", NewLabels()).Observe(3)
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines", len(lines))
	}
	for _, ln := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(ln), &obj); err != nil {
			t.Fatalf("invalid NDJSON line %q: %v", ln, err)
		}
		if obj["metric"] == "thymesim_fills_total" {
			labels := obj["labels"].(map[string]any)
			if labels["node"] != "2" || labels["tenant"] != "be1" {
				t.Fatalf("labels %v", labels)
			}
			if obj["value"].(float64) != 7 {
				t.Fatalf("value %v", obj["value"])
			}
		}
	}
}

func TestCSVExport(t *testing.T) {
	r := NewRegistry()
	r.Counter("thymesim_fills_total", "f", NewLabels().WithNode(1)).Add(3)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d CSV lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "metric,type,node,") {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "thymesim_fills_total,counter,1,") {
		t.Fatalf("row %q", lines[1])
	}
}

func TestFlightRecorderWrap(t *testing.T) {
	fr := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		fr.Record(float64(i), i, EvFillPoisoned, 0)
	}
	if fr.Total() != 10 {
		t.Fatalf("total %d", fr.Total())
	}
	evs := fr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d", len(evs))
	}
	for i, ev := range evs {
		if want := 6 + i; ev.Node != want {
			t.Fatalf("event %d node %d, want %d (oldest-first after wrap)", i, ev.Node, want)
		}
	}
	var buf bytes.Buffer
	fr.WriteNDJSON(&buf)
	for _, ln := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var obj map[string]any
		if err := json.Unmarshal([]byte(ln), &obj); err != nil {
			t.Fatalf("recorder NDJSON line %q: %v", ln, err)
		}
	}
	// Nil recorder is inert.
	var nilRec *FlightRecorder
	nilRec.Record(0, 0, EvFillLate, 0)
	if nilRec.Total() != 0 || nilRec.Events() != nil {
		t.Fatal("nil recorder not inert")
	}
}

func TestNilPlaneAndInstrumentsAreInert(t *testing.T) {
	var p *Plane
	p.SetRun("x")
	p.SetPhase("y")
	p.SweepPlanned(3)
	p.SweepPointDone()
	p.DumpOnAuditFailure("c", []string{"v"})
	if p.Snapshot() != nil || p.Registry() != nil || p.Recorder() != nil {
		t.Fatal("nil plane leaked state")
	}
	if p.FillMetricsFor(0, "") != nil || p.ARQMetricsFor(0) != nil || p.NICMetricsFor(0) != nil ||
		p.BreakerMetricsFor(0) != nil || p.AllocMetricsFor(0) != nil || p.LinkMetricsFor(0, 0) != nil ||
		p.SwitchPortMetricsFor(0) != nil || p.DRAMMetricsFor(0) != nil || p.CacheMetricsFor(0) != nil ||
		p.MigrateMetricsFor(0) != nil {
		t.Fatal("nil plane built instruments")
	}

	// Nil bundles absorb every call.
	var fm *FillMetrics
	fm.FillDone(1, false, false, 0)
	fm.FillExpired(false, 0)
	fm.FillExpiredUnsent(0)
	fm.FillLate(0)
	var am *ARQMetrics
	am.Tracked()
	am.Completed()
	am.Retransmit(1, 0)
	am.Dead(1, 0)
	var nm *NICMetrics
	nm.RequestSent()
	nm.CrashDrop(0)
	var bm *BreakerMetrics
	bm.Transition(0, 1, 0)
	bm.ShortCircuit()
	var alm *AllocMetrics
	alm.Update(1, 0, 1, 1, 1)
	var lm *LinkMetrics
	lm.Delivered(64, 0.5)
	var sm *SwitchPortMetrics
	sm.Forwarded(1, 2)
	var dm *DRAMMetrics
	dm.Access(false, 64, 0.1)
	var cm *CacheMetrics
	cm.Access(true, false, false)
	var mm *MigrateMetrics
	mm.Promotion()
	mm.Degraded(1)
}

func TestPlaneSLOTracking(t *testing.T) {
	p := New()
	p.SetSLO(SLOConfig{FillP99Us: 10, PoisonedBudget: 0.1})
	fm := p.FillMetricsFor(0, "")
	for i := 0; i < 99; i++ {
		fm.FillDone(1, false, false, float64(i))
	}
	fm.FillDone(1, false, true, 99) // one poisoned fill: 1% of 100
	slo := p.SLO()
	if len(slo) != 1 {
		t.Fatalf("%d SLO rows", len(slo))
	}
	st := slo[0]
	if st.Node != 0 || st.Fills != 100 {
		t.Fatalf("SLO row %+v", st)
	}
	if !st.LatencyOK {
		t.Fatalf("1us fills violate a 10us target: %+v", st)
	}
	if st.PoisonedFraction != 0.01 || !st.BudgetOK {
		t.Fatalf("poisoned accounting %+v", st)
	}
	if math.Abs(st.BudgetBurn-0.1) > 1e-9 {
		t.Fatalf("budget burn %g, want 0.1", st.BudgetBurn)
	}

	p.SetSLO(SLOConfig{FillP99Us: 0.5, PoisonedBudget: 0.001})
	st = p.SLO()[0]
	if st.LatencyOK || st.BudgetOK {
		t.Fatalf("tightened SLO still passes: %+v", st)
	}
}

func TestDumpOnAuditFailureWritesRecorderAndSLO(t *testing.T) {
	p := New()
	var buf bytes.Buffer
	p.SetDumpWriter(&buf)
	fm := p.FillMetricsFor(1, "")
	fm.FillDone(3, false, true, 42)
	p.DumpOnAuditFailure("unit", []string{"thing broke"})
	out := buf.String()
	for _, want := range []string{"campaign=\"unit\"", "violation: thing broke", EvFillPoisoned, "slo node=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestStageObserverRollsUp(t *testing.T) {
	p := New()
	obs := p.StageObserver(2, []string{"port", "nic_pipe"})
	obs(0, 1.5)
	obs(0, 2.5)
	obs(1, 4)
	obs(99, 1) // out-of-range stage must be dropped, not panic
	parsed := parseSnapshot(t, p)
	if v, ok := parsed.Value("thymesim_stage_spans_total", map[string]string{"node": "2", "stage": "port"}); !ok || v != 2 {
		t.Fatalf("port spans = %v ok=%v", v, ok)
	}
	if v, ok := parsed.Value("thymesim_stage_time_us_total", map[string]string{"node": "2", "stage": "nic_pipe"}); !ok || v != 4 {
		t.Fatalf("nic_pipe time = %v ok=%v", v, ok)
	}
}

func parseSnapshot(t *testing.T, p *Plane) *ParsedExposition {
	t.Helper()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, p.Snapshot()); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseExposition(buf.String())
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	return parsed
}
