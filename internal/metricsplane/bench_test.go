package metricsplane

import "testing"

// The plane's contract is that instrumentation is free when disabled and
// allocation-free when enabled: a nil bundle costs one pointer test, a
// live one only atomics (plus a fixed-ring recorder write on rare
// events). TestHotPathAllocs enforces the alloc half of the contract;
// the benchmarks quantify the per-op cost.

func TestHotPathAllocs(t *testing.T) {
	p := New()
	fill := p.FillMetricsFor(0, "")
	arq := p.ARQMetricsFor(0)
	nic := p.NICMetricsFor(0)
	link := p.LinkMetricsFor(0, 0)
	dram := p.DRAMMetricsFor(0)
	cch := p.CacheMetricsFor(0)
	alloc := p.AllocMetricsFor(0)
	brk := p.BreakerMetricsFor(0)
	var nilFill *FillMetrics

	sw := p.SwitchPortMetricsFor(0)
	mig := p.MigrateMetricsFor(0)

	cases := []struct {
		name string
		op   func()
	}{
		{"nil FillDone", func() { nilFill.FillDone(1, false, false, 0) }},
		{"FillDone", func() { fill.FillDone(12.5, false, false, 1) }},
		{"FillDone poisoned", func() { fill.FillDone(12.5, false, true, 1) }},
		{"FillDone write", func() { fill.FillDone(12.5, true, false, 1) }},
		{"FillExpired", func() { fill.FillExpired(true, 2) }},
		{"FillExpiredUnsent", func() { fill.FillExpiredUnsent(2) }},
		{"FillLate", func() { fill.FillLate(2) }},
		{"ARQ Tracked", arq.Tracked},
		{"ARQ Completed", arq.Completed},
		{"ARQ Timeout", arq.Timeout},
		{"ARQ NackRetry", arq.NackRetry},
		{"ARQ StaleDrop", arq.StaleDrop},
		{"ARQ Retransmit", func() { arq.Retransmit(7, 3) }},
		{"ARQ Dead", func() { arq.Dead(7, 3) }},
		{"ARQ CorruptResp", func() { arq.CorruptResp(3) }},
		{"NIC RequestSent", nic.RequestSent},
		{"NIC ResponseSent", nic.ResponseSent},
		{"NIC RequestServed", nic.RequestServed},
		{"NIC ResponseDelivered", nic.ResponseDelivered},
		{"NIC ProbeServed", nic.ProbeServed},
		{"NIC TranslationFault", nic.TranslationFault},
		{"NIC NackSent", nic.NackSent},
		{"NIC CrashDrop", func() { nic.CrashDrop(4) }},
		{"NIC ServeLost", func() { nic.ServeLost(4) }},
		{"NIC WipeNack", func() { nic.WipeNack(4) }},
		{"Link Delivered", func() { link.Delivered(64, 0.5) }},
		{"Switch Forwarded", func() { sw.Forwarded(2, 5) }},
		{"DRAM Access", func() { dram.Access(true, 64, 0.25) }},
		{"Cache Access", func() { cch.Access(false, true, true) }},
		{"Cache hit", func() { cch.Access(true, false, false) }},
		{"Alloc Update", func() { alloc.Update(1<<30, 1<<20, 1<<29, 1<<28, 3) }},
		{"Alloc Update empty", func() { alloc.Update(1<<30, 1<<30, 0, 0, 0) }},
		{"Breaker Transition trip", func() { brk.Transition(0, 1, 4) }},
		{"Breaker Transition probe", func() { brk.Transition(1, 2, 5) }},
		{"Breaker Transition reopen", func() { brk.Transition(2, 1, 6) }},
		{"Breaker Transition close", func() { brk.Transition(2, 0, 7) }},
		{"Breaker ShortCircuit", brk.ShortCircuit},
		{"Migrate Promotion", mig.Promotion},
		{"Migrate Degraded", func() { mig.Degraded(3) }},
		{"Migrate Localized", mig.Localized},
		{"Migrate GateLocalized", mig.GateLocalized},
	}
	for _, c := range cases {
		c.op() // warm: first recorder write may grow nothing, but be safe
		if n := testing.AllocsPerRun(100, c.op); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", c.name, n)
		}
	}
}

func BenchmarkFillDoneNil(b *testing.B) {
	var m *FillMetrics
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.FillDone(12.5, false, false, 1)
	}
}

func BenchmarkFillDone(b *testing.B) {
	m := New().FillMetricsFor(0, "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.FillDone(12.5, false, false, 1)
	}
}

func BenchmarkFillDonePoisoned(b *testing.B) {
	m := New().FillMetricsFor(0, "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.FillDone(12.5, false, true, 1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(DefaultLatencyFirstUs, DefaultLatencyGrowth, DefaultLatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 1000))
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
