package metricsplane

import (
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// Plane bundles one run's registry, flight recorder, SLO tracking, and
// run status. A nil *Plane disables everything: factory methods return
// nil instrument bundles whose methods are no-ops.
type Plane struct {
	reg *Registry
	rec *FlightRecorder

	mu        sync.Mutex
	slo       SLOConfig
	fills     map[int]*FillMetrics // node -> fill bundle, for SLO eval
	run       string
	phase     string
	started   time.Time
	dumpTo    io.Writer
	stageObs  map[string]stageHandles
	sweepDone *Counter
	sweepAll  *Gauge
}

type stageHandles struct {
	count *Counter
	sumUs *FloatCounter
}

// New returns an enabled plane with a default-size flight recorder.
func New() *Plane {
	p := &Plane{
		reg:     NewRegistry(),
		rec:     NewFlightRecorder(0),
		slo:     DefaultSLOConfig(),
		fills:   make(map[int]*FillMetrics),
		started: time.Now(),
		dumpTo:  os.Stderr,
	}
	p.sweepDone = p.reg.Counter("thymesim_sweep_points_done_total", "Sweep points completed this run.", NewLabels())
	p.sweepAll = p.reg.Gauge("thymesim_sweep_points_total", "Sweep points planned this run.", NewLabels())
	return p
}

// Registry returns the plane's registry (nil on a nil plane).
func (p *Plane) Registry() *Registry {
	if p == nil {
		return nil
	}
	return p.reg
}

// Recorder returns the plane's flight recorder (nil on a nil plane).
func (p *Plane) Recorder() *FlightRecorder {
	if p == nil {
		return nil
	}
	return p.rec
}

// Snapshot returns the registry snapshot (nil on a nil plane).
func (p *Plane) Snapshot() []Sample {
	if p == nil {
		return nil
	}
	return p.reg.Snapshot()
}

// SetSLO replaces the SLO targets.
func (p *Plane) SetSLO(cfg SLOConfig) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.slo = cfg
	p.mu.Unlock()
}

// SetRun names the run shown by the status endpoint.
func (p *Plane) SetRun(run string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.run = run
	p.mu.Unlock()
}

// SetPhase updates the status endpoint's current-phase string.
func (p *Plane) SetPhase(phase string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.phase = phase
	p.mu.Unlock()
}

// SetDumpWriter redirects flight-recorder dumps (default os.Stderr).
func (p *Plane) SetDumpWriter(w io.Writer) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.dumpTo = w
	p.mu.Unlock()
}

// SweepPlanned records how many sweep points the run will execute.
func (p *Plane) SweepPlanned(n int) {
	if p != nil {
		p.sweepAll.Set(float64(n))
	}
}

// SweepPointDone counts a finished sweep point.
func (p *Plane) SweepPointDone() {
	if p != nil {
		p.sweepDone.Inc()
	}
}

// --- instrument factories -------------------------------------------------
//
// Each factory resolves every handle once under the registry lock and
// returns a bundle the component keeps. Factories are idempotent in
// effect: two bundles built with the same labels share the underlying
// metric children, so concurrent sweep points merge.

// FillMetricsFor builds the remote-fill bundle for a borrower node.
func (p *Plane) FillMetricsFor(node int, tenant string) *FillMetrics {
	if p == nil {
		return nil
	}
	l := ForNode(node).WithTenant(tenant)
	m := &FillMetrics{
		node:     node,
		latency:  p.reg.Histogram("thymesim_fill_latency_us", "End-to-end remote-fill latency in microseconds.", l),
		reads:    p.reg.Counter("thymesim_fill_reads_total", "Completed remote read fills.", l),
		writes:   p.reg.Counter("thymesim_fill_writes_total", "Completed remote write fills.", l),
		poisoned: p.reg.Counter("thymesim_fill_poisoned_total", "Fills completed poisoned (CRC-dead or deadline-expired).", l),
		expired:  p.reg.Counter("thymesim_fill_deadline_expired_total", "Fills that hit their end-to-end deadline.", l),
		unsent:   p.reg.Counter("thymesim_fill_expired_unsent_total", "Queued sends withdrawn at deadline expiry.", l),
		late:     p.reg.Counter("thymesim_fill_late_responses_total", "Straggler responses for already-expired fills.", l),
		rec:      p.rec,
	}
	if tenant == "" {
		p.mu.Lock()
		if _, ok := p.fills[node]; !ok {
			p.fills[node] = m
		}
		p.mu.Unlock()
	}
	return m
}

// ARQMetricsFor builds the ARQ bundle for a borrower node.
func (p *Plane) ARQMetricsFor(node int) *ARQMetrics {
	if p == nil {
		return nil
	}
	l := ForNode(node)
	return &ARQMetrics{
		node:        node,
		tracked:     p.reg.Counter("thymesim_arq_tracked_total", "Transactions entering ARQ tracking.", l),
		completed:   p.reg.Counter("thymesim_arq_completed_total", "Transactions acknowledged and released.", l),
		retransmits: p.reg.Counter("thymesim_arq_retransmits_total", "ARQ retransmissions.", l),
		nackRetries: p.reg.Counter("thymesim_arq_nack_retries_total", "Nack-triggered retries.", l),
		timeouts:    p.reg.Counter("thymesim_arq_timeouts_total", "Retransmit-timer expiries.", l),
		dead:        p.reg.Counter("thymesim_arq_dead_total", "Transactions that exhausted their retry budget.", l),
		staleDrops:  p.reg.Counter("thymesim_arq_stale_drops_total", "Responses dropped for stale sequence or tag.", l),
		corrupt:     p.reg.Counter("thymesim_arq_corrupt_responses_total", "Responses dropped for CRC corruption.", l),
		rec:         p.rec,
	}
}

// NICMetricsFor builds the packet-plane bundle for a NIC node.
func (p *Plane) NICMetricsFor(node int) *NICMetrics {
	if p == nil {
		return nil
	}
	l := ForNode(node)
	return &NICMetrics{
		node:               node,
		requestsSent:       p.reg.Counter("thymesim_nic_requests_sent_total", "Egress requests put on the wire.", l),
		responsesSent:      p.reg.Counter("thymesim_nic_responses_sent_total", "Egress responses.", l),
		requestsServed:     p.reg.Counter("thymesim_nic_requests_served_total", "Lender-side serve completions.", l),
		responsesDelivered: p.reg.Counter("thymesim_nic_responses_delivered_total", "Ingress responses delivered to the port.", l),
		probesServed:       p.reg.Counter("thymesim_nic_probes_served_total", "OpProbes answered.", l),
		translationFaults:  p.reg.Counter("thymesim_nic_translation_faults_total", "Egress address-translation misses.", l),
		nacksSent:          p.reg.Counter("thymesim_nic_nacks_sent_total", "Nack responses sent.", l),
		crashDrops:         p.reg.Counter("thymesim_nic_crash_drops_total", "Packets black-holed by a crashed NIC.", l),
		servesLost:         p.reg.Counter("thymesim_nic_serves_lost_total", "In-flight serves lost to a crash epoch.", l),
		wipeNacks:          p.reg.Counter("thymesim_nic_wipe_nacks_total", "Block ops nacked by a wiped window.", l),
		rec:                p.rec,
	}
}

// BreakerMetricsFor builds the circuit-breaker bundle for a node.
func (p *Plane) BreakerMetricsFor(node int) *BreakerMetrics {
	if p == nil {
		return nil
	}
	l := ForNode(node)
	return &BreakerMetrics{
		node:           node,
		state:          p.reg.Gauge("thymesim_breaker_state", "Breaker state (0 closed, 1 open, 2 half-open).", l),
		transitions:    p.reg.Counter("thymesim_breaker_transitions_total", "Breaker state transitions.", l),
		trips:          p.reg.Counter("thymesim_breaker_trips_total", "Closed-to-open trips.", l),
		reopens:        p.reg.Counter("thymesim_breaker_reopens_total", "Half-open probes that failed back to open.", l),
		closes:         p.reg.Counter("thymesim_breaker_closes_total", "Transitions back to closed.", l),
		shortCircuited: p.reg.Counter("thymesim_breaker_short_circuited_total", "Accesses fast-failed while open.", l),
		rec:            p.rec,
	}
}

// AllocMetricsFor builds the allocator bundle for a lender index.
func (p *Plane) AllocMetricsFor(lender int) *AllocMetrics {
	if p == nil {
		return nil
	}
	l := NewLabels().WithLender(lender)
	return &AllocMetrics{
		capacity:      p.reg.Gauge("thymesim_alloc_capacity_bytes", "Lender lendable capacity.", l),
		allocated:     p.reg.Gauge("thymesim_alloc_allocated_bytes", "Bytes currently allocated.", l),
		freeBytes:     p.reg.Gauge("thymesim_alloc_free_bytes", "Bytes currently free.", l),
		freeSpans:     p.reg.Gauge("thymesim_alloc_free_spans", "Free spans after coalescing.", l),
		largestFree:   p.reg.Gauge("thymesim_alloc_largest_free_bytes", "Largest single free span.", l),
		fragmentation: p.reg.Gauge("thymesim_alloc_fragmentation", "1 - largest_free/free_bytes (0 when coalesced or empty).", l),
	}
}

// LinkMetricsFor builds the channel bundle for a directed link. node is
// the transmitting endpoint; link identifies the cable or switch port.
func (p *Plane) LinkMetricsFor(node, link int) *LinkMetrics {
	if p == nil {
		return nil
	}
	l := ForNode(node).WithLink(link)
	return &LinkMetrics{
		delivered:   p.reg.Counter("thymesim_link_flits_delivered_total", "Flits delivered on this directed channel.", l),
		bytes:       p.reg.Counter("thymesim_link_bytes_total", "Bytes delivered on this directed channel.", l),
		utilization: p.reg.Gauge("thymesim_link_utilization", "Wire busy fraction since start.", l),
	}
}

// SwitchPortMetricsFor builds the bundle for one switch output port.
func (p *Plane) SwitchPortMetricsFor(port int) *SwitchPortMetrics {
	if p == nil {
		return nil
	}
	l := NewLabels().WithLink(port)
	return &SwitchPortMetrics{
		forwarded: p.reg.Counter("thymesim_switch_forwarded_total", "Buffers forwarded out this port.", l),
		depth:     p.reg.Gauge("thymesim_switch_queue_depth", "Output queue depth at last forward.", l),
		peak:      p.reg.Gauge("thymesim_switch_peak_queue_depth", "Peak output queue depth.", l),
	}
}

// SwitchDropCounter builds the switch-wide drop counter.
func (p *Plane) SwitchDropCounter() *Counter {
	if p == nil {
		return nil
	}
	return p.reg.Counter("thymesim_switch_dropped_total", "Buffers dropped at full output queues.", NewLabels())
}

// DRAMMetricsFor builds the DRAM bundle for a node.
func (p *Plane) DRAMMetricsFor(node int) *DRAMMetrics {
	if p == nil {
		return nil
	}
	l := ForNode(node)
	return &DRAMMetrics{
		reads:       p.reg.Counter("thymesim_dram_reads_total", "DRAM read accesses completed.", l),
		writes:      p.reg.Counter("thymesim_dram_writes_total", "DRAM write accesses completed.", l),
		bytes:       p.reg.Counter("thymesim_dram_bytes_total", "Bytes moved through DRAM.", l),
		utilization: p.reg.Gauge("thymesim_dram_utilization", "Mean channel busy fraction since start.", l),
	}
}

// CacheMetricsFor builds the LLC bundle for a node.
func (p *Plane) CacheMetricsFor(node int) *CacheMetrics {
	if p == nil {
		return nil
	}
	l := ForNode(node)
	return &CacheMetrics{
		hits:       p.reg.Counter("thymesim_llc_hits_total", "LLC hits.", l),
		misses:     p.reg.Counter("thymesim_llc_misses_total", "LLC misses.", l),
		evictions:  p.reg.Counter("thymesim_llc_evictions_total", "LLC evictions.", l),
		writebacks: p.reg.Counter("thymesim_llc_writebacks_total", "Dirty-line writebacks.", l),
	}
}

// MigrateMetricsFor builds the migrator bundle for a node.
func (p *Plane) MigrateMetricsFor(node int) *MigrateMetrics {
	if p == nil {
		return nil
	}
	l := ForNode(node)
	return &MigrateMetrics{
		promotions:    p.reg.Counter("thymesim_migrate_promotions_total", "Pages promoted to local memory.", l),
		degradedPages: p.reg.Counter("thymesim_migrate_degraded_pages_total", "Pages force-localized by degradation.", l),
		localized:     p.reg.Counter("thymesim_migrate_localized_total", "Accesses served locally post-migration.", l),
		gateLocalized: p.reg.Counter("thymesim_migrate_gate_localized_total", "Accesses localized by the admission gate.", l),
	}
}

// StageCounters resolves the per-stage rollup handles for a node. The
// returned closure is handed to obs.Tracer.SetStageObserver; it indexes
// by stage name into pre-resolved handles, so observing stays lock-free
// and allocation-free.
func (p *Plane) StageObserver(node int, stageNames []string) func(stage int, durUs float64) {
	if p == nil {
		return nil
	}
	counts := make([]*Counter, len(stageNames))
	sums := make([]*FloatCounter, len(stageNames))
	for i, name := range stageNames {
		l := ForNode(node).WithStage(name)
		counts[i] = p.reg.Counter("thymesim_stage_spans_total", "Span visits per datapath stage.", l)
		sums[i] = p.reg.FloatCounter("thymesim_stage_time_us_total", "Summed span time per datapath stage in microseconds.", l)
	}
	return func(stage int, durUs float64) {
		if stage < 0 || stage >= len(counts) {
			return
		}
		counts[stage].Inc()
		sums[stage].Add(durUs)
	}
}

// --- SLO tracking ---------------------------------------------------------

// SLOConfig sets per-borrower targets evaluated at scrape time.
type SLOConfig struct {
	// FillP99Us is the p99 remote-fill latency target in microseconds.
	FillP99Us float64
	// PoisonedBudget is the tolerated poisoned fraction of all fills
	// (the error budget).
	PoisonedBudget float64
}

// DefaultSLOConfig targets p99 <= 500 µs (comfortably above the longest
// paper-sweep delay point) and a 1% poisoned-fill error budget.
func DefaultSLOConfig() SLOConfig {
	return SLOConfig{FillP99Us: 500, PoisonedBudget: 0.01}
}

// SLOStatus is one borrower's SLO evaluation.
type SLOStatus struct {
	Node             int     `json:"node"`
	Fills            uint64  `json:"fills"`
	FillP99Us        float64 `json:"fill_p99_us"`
	TargetP99Us      float64 `json:"target_p99_us"`
	LatencyOK        bool    `json:"latency_ok"`
	PoisonedFraction float64 `json:"poisoned_fraction"`
	PoisonedBudget   float64 `json:"poisoned_budget"`
	// BudgetBurn is PoisonedFraction / PoisonedBudget: 1.0 means the
	// error budget is exactly consumed.
	BudgetBurn float64 `json:"budget_burn"`
	BudgetOK   bool    `json:"budget_ok"`
}

// SLO evaluates every tracked borrower against the configured targets,
// sorted by node id.
func (p *Plane) SLO() []SLOStatus {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	cfg := p.slo
	nodes := make([]int, 0, len(p.fills))
	for n := range p.fills {
		nodes = append(nodes, n)
	}
	fills := make([]*FillMetrics, 0, len(nodes))
	sort.Ints(nodes)
	for _, n := range nodes {
		fills = append(fills, p.fills[n])
	}
	p.mu.Unlock()

	out := make([]SLOStatus, 0, len(fills))
	for i, m := range fills {
		total := m.reads.Value() + m.writes.Value()
		st := SLOStatus{
			Node:        nodes[i],
			Fills:       total,
			FillP99Us:   m.latency.Quantile(0.99),
			TargetP99Us: cfg.FillP99Us,
		}
		st.LatencyOK = st.FillP99Us <= cfg.FillP99Us
		if total > 0 {
			st.PoisonedFraction = float64(m.poisoned.Value()) / float64(total)
		}
		st.PoisonedBudget = cfg.PoisonedBudget
		if cfg.PoisonedBudget > 0 {
			st.BudgetBurn = st.PoisonedFraction / cfg.PoisonedBudget
		}
		st.BudgetOK = st.PoisonedFraction <= cfg.PoisonedBudget
		out = append(out, st)
	}
	return out
}

// --- run status + dump ----------------------------------------------------

// RunStatus is the payload of the /status endpoint.
type RunStatus struct {
	Run            string      `json:"run"`
	Phase          string      `json:"phase"`
	UptimeSeconds  float64     `json:"uptime_s"`
	SweepDone      uint64      `json:"sweep_points_done"`
	SweepPlanned   float64     `json:"sweep_points_planned"`
	RecorderEvents uint64      `json:"recorder_events"`
	SLO            []SLOStatus `json:"slo"`
}

// Status assembles the current run status.
func (p *Plane) Status() RunStatus {
	if p == nil {
		return RunStatus{}
	}
	p.mu.Lock()
	st := RunStatus{
		Run:           p.run,
		Phase:         p.phase,
		UptimeSeconds: time.Since(p.started).Seconds(),
	}
	p.mu.Unlock()
	st.SweepDone = p.sweepDone.Value()
	st.SweepPlanned = p.sweepAll.Value()
	st.RecorderEvents = p.rec.Total()
	st.SLO = p.SLO()
	return st
}

// DumpOnAuditFailure writes the flight recorder and SLO summary to the
// configured dump writer — called by the chaos runners when an
// invariant audit fails, so the last datapath events leading up to the
// violation are preserved.
func (p *Plane) DumpOnAuditFailure(campaign string, violations []string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	w := p.dumpTo
	p.mu.Unlock()
	if w == nil {
		return
	}
	fmt.Fprintf(w, "metricsplane: flight-recorder dump: campaign=%q violations=%d retained_events=%d total_events=%d\n",
		campaign, len(violations), len(p.rec.Events()), p.rec.Total())
	for _, v := range violations {
		fmt.Fprintf(w, "metricsplane: violation: %s\n", v)
	}
	p.rec.WriteNDJSON(w)
	for _, st := range p.SLO() {
		fmt.Fprintf(w, "metricsplane: slo node=%d fills=%d p99=%.1fus(target %.1f ok=%v) poisoned=%.4f(budget %.4f burn=%.2f ok=%v)\n",
			st.Node, st.Fills, st.FillP99Us, st.TargetP99Us, st.LatencyOK,
			st.PoisonedFraction, st.PoisonedBudget, st.BudgetBurn, st.BudgetOK)
	}
}
