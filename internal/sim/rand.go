package sim

import "math"

// Rand is a small, fast, deterministic pseudo-random generator
// (SplitMix64). Every stochastic component of the simulator draws from an
// explicitly seeded Rand so that runs are reproducible; the global
// math/rand source is never used.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Split derives an independent generator from r's current state. It is the
// preferred way to hand child components their own stream.
func (r *Rand) Split() *Rand { return NewRand(r.Uint64() ^ 0x9e3779b97f4a7c15) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *Rand) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u <= 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// ExpFloat64 returns an exponential variate with mean 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}
