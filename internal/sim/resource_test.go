package sim

import (
	"testing"
	"testing/quick"
)

func TestServerSerializesFIFO(t *testing.T) {
	k := NewKernel()
	s := NewServer(k)
	var done []Time
	k.At(0, func() {
		s.Serve(10, func() { done = append(done, k.Now()) })
		s.Serve(5, func() { done = append(done, k.Now()) })
	})
	k.At(3, func() {
		s.Serve(7, func() { done = append(done, k.Now()) })
	})
	k.Run()
	want := []Time{10, 15, 22}
	if len(done) != 3 {
		t.Fatalf("completions = %v", done)
	}
	for i, w := range want {
		if done[i] != w {
			t.Fatalf("completions = %v, want %v", done, want)
		}
	}
	if s.Served() != 3 {
		t.Errorf("served = %d", s.Served())
	}
	if s.BusyTime() != 22 {
		t.Errorf("busy = %v, want 22", s.BusyTime())
	}
}

func TestServerIdleGap(t *testing.T) {
	k := NewKernel()
	s := NewServer(k)
	k.At(0, func() { s.Serve(10, nil) })
	var at Time
	k.At(100, func() { s.Serve(10, func() { at = k.Now() }) })
	k.Run()
	if at != 110 {
		t.Fatalf("second job finished at %v, want 110 (server idles between jobs)", at)
	}
	if s.MaxWait() != 0 {
		t.Errorf("max wait = %v, want 0", s.MaxWait())
	}
}

func TestServerUtilization(t *testing.T) {
	k := NewKernel()
	s := NewServer(k)
	k.At(0, func() { s.Serve(Duration(500*Millisecond), nil) })
	k.RunUntil(Time(Second))
	u := s.Utilization()
	if u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
}

func TestServerNegativeServicePanics(t *testing.T) {
	k := NewKernel()
	s := NewServer(k)
	defer func() {
		if recover() == nil {
			t.Error("negative service did not panic")
		}
	}()
	s.Serve(-1, nil)
}

func TestCreditPoolImmediateAndQueued(t *testing.T) {
	k := NewKernel()
	p := NewCreditPool(k, 2)
	var got []int
	take := func(id int) { p.Acquire(func() { got = append(got, id) }) }
	k.At(0, func() {
		take(1)
		take(2)
		take(3) // must wait
		if p.Available() != 0 || p.Waiting() != 1 {
			t.Errorf("avail=%d waiting=%d", p.Available(), p.Waiting())
		}
	})
	k.At(10, func() { p.Release() })
	k.Run()
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("grants = %v", got)
	}
	if p.InUse() != 2 {
		t.Errorf("in use = %d, want 2", p.InUse())
	}
	if p.PeakWaiting() != 1 {
		t.Errorf("peak waiting = %d, want 1", p.PeakWaiting())
	}
}

func TestCreditPoolTryAcquire(t *testing.T) {
	k := NewKernel()
	p := NewCreditPool(k, 1)
	if !p.TryAcquire() {
		t.Fatal("first TryAcquire failed")
	}
	if p.TryAcquire() {
		t.Fatal("second TryAcquire succeeded on empty pool")
	}
	p.Release()
	if !p.TryAcquire() {
		t.Fatal("TryAcquire after release failed")
	}
}

func TestCreditPoolOverReleasePanics(t *testing.T) {
	k := NewKernel()
	p := NewCreditPool(k, 1)
	defer func() {
		if recover() == nil {
			t.Error("over-release did not panic")
		}
	}()
	p.Release()
}

func TestCreditPoolFIFOGrants(t *testing.T) {
	k := NewKernel()
	p := NewCreditPool(k, 1)
	var got []int
	k.At(0, func() {
		for i := 0; i < 5; i++ {
			i := i
			p.Acquire(func() {
				got = append(got, i)
				k.After(10, p.Release)
			})
		}
	})
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("grant order = %v, not FIFO", got)
		}
	}
}

// Property: a server is work-conserving — total completion time of n
// back-to-back jobs equals the sum of service times.
func TestServerWorkConservingProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		k := NewKernel()
		s := NewServer(k)
		var sum Duration
		var last Time
		k.At(0, func() {
			for _, r := range raw {
				d := Duration(r)
				sum += d
				last = s.Serve(d, func() {})
			}
		})
		end := k.Run()
		if len(raw) == 0 {
			return end == 0
		}
		return end == Time(sum) && last == Time(sum) && s.FreeAt() == Time(sum)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a credit pool never grants more than capacity concurrently.
func TestCreditPoolCapacityProperty(t *testing.T) {
	f := func(cap8 uint8, jobs uint8) bool {
		capacity := int(cap8%16) + 1
		n := int(jobs)
		k := NewKernel()
		p := NewCreditPool(k, capacity)
		inUse, maxUse := 0, 0
		k.At(0, func() {
			for i := 0; i < n; i++ {
				p.Acquire(func() {
					inUse++
					if inUse > maxUse {
						maxUse = inUse
					}
					k.After(Duration(1+i%7), func() {
						inUse--
						p.Release()
					})
				})
			}
		})
		k.Run()
		return maxUse <= capacity && inUse == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := true
	a2 := NewRand(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRandUniformity(t *testing.T) {
	r := NewRand(7)
	const n = 100000
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		buckets[r.Intn(10)]++
	}
	for i, b := range buckets {
		if b < n/10-n/50 || b > n/10+n/50 {
			t.Errorf("bucket %d = %d, expected ~%d", i, b, n/10)
		}
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / n
	if mean < 0.97 || mean > 1.03 {
		t.Fatalf("exp mean = %v, want ~1", mean)
	}
}

func TestRandNormMoments(t *testing.T) {
	r := NewRand(13)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if mean < -0.02 || mean > 0.02 {
		t.Fatalf("norm mean = %v, want ~0", mean)
	}
	if variance < 0.95 || variance > 1.05 {
		t.Fatalf("norm var = %v, want ~1", variance)
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	r := NewRand(17)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRandSplitIndependence(t *testing.T) {
	parent := NewRand(21)
	a := parent.Split()
	b := parent.Split()
	equal := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			equal++
		}
	}
	if equal > 2 {
		t.Fatalf("split streams overlap: %d equal draws", equal)
	}
}

func TestRandPanics(t *testing.T) {
	r := NewRand(1)
	for _, fn := range []func(){
		func() { r.Intn(0) },
		func() { r.Int63n(-5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
